// cyclotop: live ring health for a cyclo-join on the rt backend — `top`
// for the Data Roundabout.
//
//   cmake -B build && cmake --build build -j
//   ./build/examples/cyclotop                # live view of a demo join
//   ./build/examples/cyclotop --slowdown=3   # watch host 0 get flagged
//   ./build/examples/cyclotop --once         # one page, no ANSI (CI smoke)
//
// The rt runner's LiveSampler snapshots the always-on flight recorder and
// the metrics registry on an interval; cyclotop hooks its on_sample
// callback and redraws a per-host table — rolling mean chunk residency,
// straggler z-score, flag count — while the join is actually running on
// this machine's cores. After the run it prints the final metrics as a
// Prometheus text exposition page (the same page a scrape endpoint would
// serve). Schema: docs/OBSERVABILITY.md.
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/units.h"
#include "cyclo/cyclo_join.h"
#include "obs/export.h"
#include "obs/journey.h"
#include "obs/sampler.h"
#include "rel/generator.h"

namespace {

// One redraw, called from the sampler thread every interval.
void render(const cj::obs::LiveSampler& sampler, int hosts, bool ansi) {
  const auto point = sampler.latest();
  const auto& det = sampler.detector();
  std::string screen;
  if (ansi) screen += "\x1b[2J\x1b[H";  // clear + home
  char line[160];
  std::snprintf(line, sizeof(line),
                "cyclotop — t=%.2fs  sample #%llu  straggler flags %llu\n\n",
                static_cast<double>(point.ts_ns) / 1e9,
                static_cast<unsigned long long>(sampler.samples_taken()),
                static_cast<unsigned long long>(det.total_flags()));
  screen += line;
  std::snprintf(line, sizeof(line), "%6s  %16s  %8s  %8s  %s\n", "host",
                "residency[us]", "z", "flags", "state");
  screen += line;
  for (int h = 0; h < hosts; ++h) {
    const bool hot = det.hottest() == h && det.flags(h) > 0;
    std::snprintf(line, sizeof(line), "%6d  %16.1f  %8.2f  %8llu  %s\n", h,
                  det.mean_residency_us(h), det.last_z(h),
                  static_cast<unsigned long long>(det.flags(h)),
                  hot ? "STRAGGLER" : "ok");
    screen += line;
  }
  std::fputs(screen.c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cj;
  auto parsed = Flags::parse(argc, argv);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "flag error: %s\n",
                 parsed.status().to_string().c_str());
    return 2;
  }
  Flags flags = std::move(parsed).value();
  const bool once = flags.get_bool("once", false);
  const std::int64_t rows = flags.get_int("rows", once ? 60'000 : 400'000);
  const int hosts = static_cast<int>(flags.get_int("hosts", 4));
  const double slowdown = flags.get_double("slowdown", 1.0);
  const std::int64_t interval_ms = flags.get_int("interval_ms", 250);

  rel::Relation r = rel::generate(
      {.rows = static_cast<std::uint64_t>(rows), .seed = 1}, "R", 1);
  rel::Relation s = rel::generate(
      {.rows = static_cast<std::uint64_t>(rows), .seed = 2}, "S", 2);

  cyclo::ClusterConfig cluster;
  cluster.backend = cyclo::Backend::kRt;
  cluster.num_hosts = hosts;
  cluster.cores_per_host = 2;
  cluster.node.buffer_bytes = 64 * 1024;  // many chunks → live signal
  // Frames on the wire: journeys stitch, revolutions count. Wide ack
  // timeout: this run wants tracing, not recovery — a --slowdown straggler
  // must not trip re-injection.
  cluster.fault.force_resilient = true;
  cluster.node.resilience.ack_timeout = 60 * kSecond;
  cluster.sampler.interval = std::chrono::milliseconds(interval_ms);
  if (slowdown > 1.0) {
    cluster.per_host_cpu_scale.assign(static_cast<std::size_t>(hosts), 1.0);
    cluster.per_host_cpu_scale[0] = slowdown;
  }
  if (!once) {
    cluster.sampler.on_sample = [hosts](const obs::LiveSampler& sampler) {
      render(sampler, hosts, /*ansi=*/true);
    };
  }

  cyclo::CycloJoin join(cluster, {.algorithm = cyclo::Algorithm::kHashJoin});
  const cyclo::RunReport report = join.run(r, s);

  // ----- final page ------------------------------------------------------
  std::printf("\nR ⋈ S on %d rt hosts: %llu matches in %s wall time\n", hosts,
              static_cast<unsigned long long>(report.matches),
              human_duration(report.total_wall).c_str());
  if (report.flight != nullptr) {
    const auto journeys = obs::reconstruct_journeys(*report.flight);
    const obs::JourneySummary summary =
        obs::summarize_journeys(journeys, hosts);
    std::printf("chunk journeys: %zu stitched, %zu retired, max %d hops\n",
                summary.journeys, summary.retired, summary.max_hops);
  }
  std::printf("\n%s",
              obs::prometheus_text(report.metrics).c_str());
  return 0;
}
