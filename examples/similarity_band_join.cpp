// Band join for similarity matching — the paper notes cyclo-join "is not
// bound to equality predicates" and names band joins and similarity joins
// (data cleaning / integration) as the motivating use cases (Sec. IV-A).
//
// Scenario: two sensor arrays timestamp events with clocks that disagree
// by up to ±3 ticks. Matching events across arrays is a band join
// |t1 - t2| <= 3, which the sort-merge kernel evaluates in one merge pass —
// something the hash join cannot do at all.
#include <cstdio>

#include "cyclo/cyclo_join.h"
#include "rel/generator.h"

int main() {
  using namespace cj;

  // Events from two sensor arrays over a shared epoch of 500k ticks.
  rel::Relation array_a = rel::generate(
      {.rows = 1'500'000, .key_domain = 500'000, .seed = 21}, "array_a", 1);
  rel::Relation array_b = rel::generate(
      {.rows = 1'500'000, .key_domain = 500'000, .seed = 22}, "array_b", 2);

  cyclo::ClusterConfig cluster;
  cluster.num_hosts = 4;

  std::printf("similarity join: |a.ts - b.ts| <= band, 4-host ring, "
              "sort-merge band join\n\n");
  std::printf("%6s  %10s  %10s  %16s  %18s\n", "band", "setup", "join",
              "matches", "matches/event");
  for (const std::uint32_t band : {0u, 1u, 3u, 10u}) {
    cyclo::JoinSpec spec;
    spec.algorithm = cyclo::Algorithm::kSortMergeJoin;
    spec.band = band;
    cyclo::CycloJoin join(cluster, spec);
    const cyclo::RunReport report = join.run(array_a, array_b);
    std::printf("%6u  %10s  %10s  %16llu  %18.2f\n", band,
                human_duration(report.setup_wall).c_str(),
                human_duration(report.join_wall).c_str(),
                static_cast<unsigned long long>(report.matches),
                static_cast<double>(report.matches) /
                    static_cast<double>(array_a.rows()));
  }

  // Materialize a small variant to show actual matched pairs.
  rel::Relation few_a = rel::generate(
      {.rows = 8, .key_domain = 40, .seed = 23}, "few_a", 1);
  rel::Relation few_b = rel::generate(
      {.rows = 8, .key_domain = 40, .seed = 24}, "few_b", 2);
  cyclo::JoinSpec spec;
  spec.algorithm = cyclo::Algorithm::kSortMergeJoin;
  spec.band = 2;
  spec.materialize = true;
  cyclo::CycloJoin join(cluster, spec);
  const cyclo::RunReport sample = join.run(few_a, few_b);

  std::printf("\nsample pairs at band 2 (timestamps within +-2 ticks):\n");
  for (const auto& frag : sample.output_fragments()) {
    std::printf("  host partition: %llu pairs (%s)\n",
                static_cast<unsigned long long>(frag.rows),
                human_bytes(frag.bytes).c_str());
  }
  for (const auto& host_result : sample.host_results) {
    for (const auto& match : host_result.output()) {
      std::printf("  event a#%llu <-> event b#%llu (ts bucket %u)\n",
                  static_cast<unsigned long long>(match.r_payload & 0xFFFF),
                  static_cast<unsigned long long>(match.s_payload & 0xFFFF),
                  match.key);
    }
  }
  return 0;
}
