// Quickstart: the smallest complete cyclo-join program.
//
// Generates two relations, runs a distributed hash join on a simulated
// 4-host Data Roundabout, and prints the report. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "cyclo/cyclo_join.h"
#include "rel/generator.h"

int main() {
  using namespace cj;

  // 1. Two relations: one million 12-byte tuples each, uniform 4-byte keys.
  rel::Relation r = rel::generate({.rows = 1'000'000, .seed = 1}, "R", 1);
  rel::Relation s = rel::generate({.rows = 1'000'000, .seed = 2}, "S", 2);

  // 2. A cluster: four quad-core hosts on a 10 GbE RDMA ring.
  cyclo::ClusterConfig cluster;
  cluster.num_hosts = 4;
  cluster.cores_per_host = 4;

  // 3. The join: R rotates, S stays; partitioned hash join per host.
  cyclo::JoinSpec spec;
  spec.algorithm = cyclo::Algorithm::kHashJoin;

  cyclo::CycloJoin join(cluster, spec);
  const cyclo::RunReport report = join.run(r, s);

  // 4. The result is a distributed table: each host holds R ⋈ S_i.
  std::printf("R ⋈ S: %llu matches (checksum %016llx)\n",
              static_cast<unsigned long long>(report.matches),
              static_cast<unsigned long long>(report.checksum));
  std::printf("setup %s | join %s | %s over the wire\n",
              human_duration(report.setup_wall).c_str(),
              human_duration(report.join_wall).c_str(),
              human_bytes(report.bytes_on_wire).c_str());
  for (std::size_t i = 0; i < report.hosts.size(); ++i) {
    const auto& host = report.hosts[i];
    std::printf("  host %zu: %llu matches, join CPU load %.0f%%, sync %s\n", i,
                static_cast<unsigned long long>(host.matches),
                host.cpu_load_join * 100.0, human_duration(host.sync).c_str());
  }
  return 0;
}
