// Quickstart: the smallest complete cyclo-join program.
//
// Generates two relations, runs a distributed hash join on a 4-host Data
// Roundabout, and prints the report. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart                 # simulated cluster
//   ./build/examples/quickstart --backend=rt    # real threads, wall clock
//
// The two backends run the identical protocol and print identical matches
// and checksum; only the meaning of the times differs (virtual time on the
// calibrated simulated testbed vs this machine's wall clock).
#include <cstdio>
#include <string>
#include <utility>

#include "common/flags.h"
#include "cyclo/cyclo_join.h"
#include "rel/generator.h"

int main(int argc, char** argv) {
  using namespace cj;

  auto parsed = Flags::parse(argc, argv);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "flag error: %s\n",
                 parsed.status().to_string().c_str());
    return 2;
  }
  Flags flags = std::move(parsed).value();
  const std::string backend = flags.get_string("backend", "sim");
  if (backend != "sim" && backend != "rt") {
    std::fprintf(stderr, "unknown --backend=%s (expected sim or rt)\n",
                 backend.c_str());
    return 2;
  }

  // 1. Two relations: one million 12-byte tuples each, uniform 4-byte keys.
  rel::Relation r = rel::generate({.rows = 1'000'000, .seed = 1}, "R", 1);
  rel::Relation s = rel::generate({.rows = 1'000'000, .seed = 2}, "S", 2);

  // 2. A cluster: four quad-core hosts on a 10 GbE RDMA ring.
  cyclo::ClusterConfig cluster;
  cluster.backend =
      backend == "rt" ? cyclo::Backend::kRt : cyclo::Backend::kSim;
  cluster.num_hosts = 4;
  cluster.cores_per_host = 4;

  // 3. The join: R rotates, S stays; partitioned hash join per host.
  cyclo::JoinSpec spec;
  spec.algorithm = cyclo::Algorithm::kHashJoin;

  cyclo::CycloJoin join(cluster, spec);
  const cyclo::RunReport report = join.run(r, s);

  // 4. The result is a distributed table: each host holds R ⋈ S_i.
  std::printf("R ⋈ S: %llu matches (checksum %016llx) [%s backend]\n",
              static_cast<unsigned long long>(report.matches),
              static_cast<unsigned long long>(report.checksum),
              backend.c_str());
  std::printf("setup %s | join %s | %s over the wire\n",
              human_duration(report.setup_wall).c_str(),
              human_duration(report.join_wall).c_str(),
              human_bytes(report.bytes_on_wire).c_str());
  for (std::size_t i = 0; i < report.hosts.size(); ++i) {
    const auto& host = report.hosts[i];
    std::printf("  host %zu: %llu matches, join CPU load %.0f%%, sync %s\n", i,
                static_cast<unsigned long long>(host.matches),
                host.cpu_load_join * 100.0, human_duration(host.sync).c_str());
  }
  return 0;
}
