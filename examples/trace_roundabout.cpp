// Tracing the Data Roundabout: record a full span/instant trace of a
// 3-host cyclo-join and export it as Chrome trace-event JSON.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/trace_roundabout --out=roundabout_trace.json
//
// Open the file in ui.perfetto.dev (or chrome://tracing): one process row
// per host, one thread row per simulated entity (cores, transmitter, ring,
// RDMA queue pairs), all on the virtual-time axis. The program also runs
// the two derived analyses — per-host communication/computation overlap
// and the critical path of the slowest host — and dumps the run's metric
// snapshot. Schema and name catalogs: docs/OBSERVABILITY.md.
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "cyclo/cyclo_join.h"
#include "obs/analysis.h"
#include "rel/generator.h"

int main(int argc, char** argv) {
  using namespace cj;
  auto parsed = Flags::parse(argc, argv);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "flag error: %s\n",
                 parsed.status().to_string().c_str());
    return 2;
  }
  Flags flags = std::move(parsed).value();
  const std::string out = flags.get_string("out", "roundabout_trace.json");
  const std::int64_t rows = flags.get_int("rows", 200'000);

  rel::Relation r = rel::generate({.rows = static_cast<std::uint64_t>(rows),
                                   .seed = 1}, "R", 1);
  rel::Relation s = rel::generate({.rows = static_cast<std::uint64_t>(rows),
                                   .seed = 2}, "S", 2);

  // A 3-host RDMA ring with tracing on: the runner installs a Tracer on
  // the engine and hands it back through the report.
  cyclo::ClusterConfig cluster;
  cluster.num_hosts = 3;
  cluster.cores_per_host = 4;
  cluster.trace.enabled = true;

  cyclo::CycloJoin join(cluster, {.algorithm = cyclo::Algorithm::kHashJoin});
  const cyclo::RunReport report = join.run(r, s);

  std::printf("R ⋈ S: %llu matches in %s virtual time (%zu trace events)\n\n",
              static_cast<unsigned long long>(report.matches),
              human_duration(report.total_wall).c_str(),
              report.trace->events().size());

  // ----- overlap: join work happening while the NIC is sending ----------
  std::printf("communication/computation overlap per host:\n");
  for (const auto& ov : obs::overlap_by_host(*report.trace)) {
    std::printf("  host %d: transfer %s, join-busy-in-transfer %s, "
                "ratio %.2f\n", ov.host,
                human_duration(ov.transfer_time).c_str(),
                human_duration(ov.join_busy_in_transfer).c_str(), ov.ratio);
  }

  // ----- critical path of the host that finishes last -------------------
  const obs::CriticalPath cp = obs::critical_path(*report.trace);
  std::printf("\ncritical path (host %d, makespan %s):\n", cp.host,
              human_duration(cp.end).c_str());
  std::printf("  %-14s %s\n", "idle", human_duration(cp.idle).c_str());
  for (const auto& [tag, dur] : cp.by_tag) {
    std::printf("  %-14s %s\n", tag.c_str(), human_duration(dur).c_str());
  }

  // ----- metrics snapshot ----------------------------------------------
  std::printf("\nmetrics: %s\n", report.metrics.to_json().c_str());

  // ----- Chrome trace export -------------------------------------------
  const std::string json = report.trace->chrome_json();
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s — open it in ui.perfetto.dev or chrome://tracing\n",
              out.c_str());
  return 0;
}
