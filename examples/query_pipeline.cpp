// Multi-join query pipeline — the paper: "the join output could naturally
// be used as input to subsequent processing in a larger query plan. The
// ternary join (R ⋈ S) ⋈ T could, for example, be evaluated by using two
// runs of cyclo-join" (Sec. IV-A).
//
// This example compiles two query shapes with the cost-based planner
// (src/plan) and executes them as sequences of cyclo-join rounds where
// every intermediate stays distributed: round k's per-host output
// partitions are projected in place and rebalanced by key over the ring
// to become round k+1's fragments. Nothing is ever concatenated at a
// coordinator.
//
//   1. A three-table chain: lineitems ⋈ orders ⋈ shipments (on order id).
//   2. A four-table star: sales against three dimensions of very
//      different sizes — the case where join order matters most, and the
//      DP's pick visibly beats the naive declaration order.
#include <cstdio>

#include "plan/plan_exec.h"
#include "plan/plan_gen.h"
#include "rel/generator.h"

namespace {

using namespace cj;

void print_report(const plan::Plan& plan, const plan::QueryGraph& graph,
                  const plan::PlanRunReport& report) {
  std::printf("%s\n", plan.to_string(graph).c_str());
  for (std::size_t k = 0; k < report.rounds.size(); ++k) {
    const plan::RoundReport& round = report.rounds[k];
    std::printf(
        "  round %zu: ⋈ %-10s %s rotates  -> %9llu rows  "
        "(rotation %s, redistribute %s)\n",
        k, graph.name(round.relation).c_str(),
        round.intermediate_rotated ? "intermediate" : "base relation",
        static_cast<unsigned long long>(round.matches),
        human_bytes(round.rotation_bytes).c_str(),
        human_bytes(round.redistribute_bytes).c_str());
    std::printf("           per-host rows entering next round:");
    for (const std::uint64_t rows : round.rows_per_host) {
      std::printf(" %llu", static_cast<unsigned long long>(rows));
    }
    std::printf("\n");
  }
  std::printf("  result: %llu rows, %s total on the wire\n\n",
              static_cast<unsigned long long>(report.matches),
              human_bytes(report.wire_bytes).c_str());
}

void three_table_chain(const plan::ExecConfig& cfg,
                       const model::PlanCostParams& params) {
  std::printf("--- chain: lineitems ⋈ orders ⋈ shipments ---\n");
  const std::uint64_t kOrders = 500'000;
  rel::Relation lineitems = rel::generate(
      {.rows = 2'000'000, .key_domain = kOrders, .seed = 41}, "lineitems", 1);
  rel::Relation orders = rel::generate(
      {.rows = kOrders, .key_domain = kOrders, .seed = 42}, "orders", 2);
  rel::Relation shipments = rel::generate(
      {.rows = 800'000, .key_domain = kOrders, .seed = 43}, "shipments", 3);

  plan::QueryGraph graph;
  const int l = graph.add_relation("lineitems", rel::collect_stats(lineitems));
  const int o = graph.add_relation("orders", rel::collect_stats(orders));
  const int s = graph.add_relation("shipments", rel::collect_stats(shipments));
  graph.add_join(l, o);  // order id
  graph.add_join(o, s);  // order id

  plan::PlanGen gen(graph, params);
  const plan::Plan plan = gen.best();

  const int hosts = cfg.cluster.num_hosts;
  std::vector<rel::PartitionedRelation> inputs;
  inputs.push_back(rel::PartitionedRelation::split(lineitems, hosts));
  inputs.push_back(rel::PartitionedRelation::split(orders, hosts));
  inputs.push_back(rel::PartitionedRelation::split(shipments, hosts));

  plan::PlanExecutor exec(cfg);
  const plan::PlanRunReport report =
      exec.execute(plan, graph, std::move(inputs));
  print_report(plan, graph, report);
}

void four_table_star(const plan::ExecConfig& cfg,
                     const model::PlanCostParams& params) {
  std::printf("--- star: sales ⋈ {customers, products, promotions} ---\n");
  rel::Relation sales = rel::generate(
      {.rows = 1'500'000, .key_domain = 400'000, .seed = 51}, "sales", 1);
  rel::Relation customers = rel::generate(
      {.rows = 400'000, .key_domain = 400'000, .seed = 52}, "customers", 2);
  rel::Relation products = rel::generate(
      {.rows = 60'000, .key_domain = 400'000, .seed = 53}, "products", 3);
  rel::Relation promotions = rel::generate(
      {.rows = 4'000, .key_domain = 400'000, .seed = 54}, "promotions", 4);

  plan::QueryGraph graph;
  const int f = graph.add_relation("sales", rel::collect_stats(sales));
  const int c = graph.add_relation("customers", rel::collect_stats(customers));
  const int p = graph.add_relation("products", rel::collect_stats(products));
  const int m = graph.add_relation("promotions",
                                   rel::collect_stats(promotions));
  graph.add_join(f, c);
  graph.add_join(f, p);
  graph.add_join(f, m);

  plan::PlanGen gen(graph, params);
  const plan::Plan best = gen.best();
  const std::vector<plan::Plan> all = gen.enumerate();
  std::printf("planner picked the cheapest of %zu connected orders "
              "(modeled %.2fx cheaper than the worst)\n",
              all.size(), all.back().total_ns / best.total_ns);

  const int hosts = cfg.cluster.num_hosts;
  std::vector<rel::PartitionedRelation> inputs;
  inputs.push_back(rel::PartitionedRelation::split(sales, hosts));
  inputs.push_back(rel::PartitionedRelation::split(customers, hosts));
  inputs.push_back(rel::PartitionedRelation::split(products, hosts));
  inputs.push_back(rel::PartitionedRelation::split(promotions, hosts));

  plan::PlanExecutor exec(cfg);
  const plan::PlanRunReport report =
      exec.execute(best, graph, std::move(inputs));
  print_report(best, graph, report);
}

}  // namespace

int main() {
  using namespace cj;

  plan::ExecConfig cfg;
  cfg.cluster.num_hosts = 5;
  // Final round counts only — a pipeline tail (aggregation, top-k) would
  // consume the distributed partitions; this example reports cardinality.
  cfg.materialize_final = false;

  model::PlanCostParams params;
  params.num_hosts = cfg.cluster.num_hosts;

  three_table_chain(cfg, params);
  four_table_star(cfg, params);

  std::printf("every intermediate stayed as per-host partitions on the "
              "ring; no round collected rows at a coordinator\n");
  return 0;
}
