// Multi-join query pipeline — the paper: "the join output could naturally
// be used as input to subsequent processing in a larger query plan. The
// ternary join (R ⋈ S) ⋈ T could, for example, be evaluated by using two
// runs of cyclo-join" (Sec. IV-A).
//
// Scenario: a three-table chain typical of a star-ish schema —
//   lineitems ⋈ orders        (on order id)
//   (result)  ⋈ shipments     (on order id)
// The first run materializes its distributed result; a projection of it
// becomes the rotating relation of the second run.
#include <cstdio>

#include "cyclo/cyclo_join.h"
#include "rel/generator.h"

int main() {
  using namespace cj;

  const std::uint64_t kOrders = 500'000;
  rel::Relation lineitems = rel::generate(
      {.rows = 2'000'000, .key_domain = kOrders, .seed = 41}, "lineitems", 1);
  rel::Relation orders = rel::generate(
      {.rows = kOrders, .key_domain = kOrders, .seed = 42}, "orders", 2);
  rel::Relation shipments = rel::generate(
      {.rows = 800'000, .key_domain = kOrders, .seed = 43}, "shipments", 3);

  cyclo::ClusterConfig cluster;
  cluster.num_hosts = 5;

  // --- run 1: lineitems ⋈ orders, materialized per host -----------------
  cyclo::JoinSpec first_spec;
  first_spec.algorithm = cyclo::Algorithm::kHashJoin;
  first_spec.materialize = true;
  cyclo::CycloJoin first(cluster, first_spec);
  const cyclo::RunReport r1 = first.run(lineitems, orders);
  std::printf("run 1: lineitems ⋈ orders -> %llu rows, setup %s, join %s\n",
              static_cast<unsigned long long>(r1.matches),
              human_duration(r1.setup_wall).c_str(),
              human_duration(r1.join_wall).c_str());

  // --- projection: keep (order id, lineitem payload) --------------------
  // In a full system this stays distributed; the API hands us the per-host
  // partitions, which we concatenate here because the next run re-splits.
  rel::Relation intermediate("lineitems_orders");
  for (const auto& host_result : r1.host_results) {
    for (const auto& row : host_result.output()) {
      intermediate.push_back(rel::Tuple{row.key, row.r_payload});
    }
  }
  std::printf("       intermediate: %llu rows (%s)\n",
              static_cast<unsigned long long>(intermediate.rows()),
              human_bytes(intermediate.bytes()).c_str());

  // --- run 2: (lineitems ⋈ orders) ⋈ shipments --------------------------
  cyclo::JoinSpec second_spec;
  second_spec.algorithm = cyclo::Algorithm::kHashJoin;
  cyclo::CycloJoin second(cluster, second_spec);
  const cyclo::RunReport r2 = second.run(intermediate, shipments);
  std::printf("run 2: (⋈) ⋈ shipments -> %llu rows, setup %s, join %s\n",
              static_cast<unsigned long long>(r2.matches),
              human_duration(r2.setup_wall).c_str(),
              human_duration(r2.join_wall).c_str());

  std::printf("\nternary join evaluated as two cyclo-join revolutions; "
              "%s total moved over the ring\n",
              human_bytes(r1.bytes_on_wire + r2.bytes_on_wire).c_str());
  return 0;
}
