// Ad-hoc warehouse analytics — the workload the paper's introduction
// motivates: a data-warehouse hot set spread over a commodity ring, hit by
// ad-hoc join queries that no a-priori partitioning anticipated.
//
// Scenario: `orders` reference `customers` by customer id. Customer
// popularity is heavily skewed (a few big accounts dominate — Zipf), which
// is exactly where cyclo-join shines (paper Fig. 9). We answer the query
// once with each local algorithm and compare the phase economics.
#include <cstdio>

#include "cyclo/cyclo_join.h"
#include "rel/generator.h"

int main() {
  using namespace cj;

  // 8 M orders against 2 M customers; customer ids in orders are Zipf(0.8).
  const std::uint64_t kCustomers = 2'000'000;
  rel::Relation orders = rel::generate(
      {.rows = 8'000'000, .key_domain = kCustomers, .zipf_z = 0.8, .seed = 11},
      "orders", 1);
  rel::Relation customers = rel::generate(
      {.rows = kCustomers, .key_domain = kCustomers, .seed = 12}, "customers", 2);

  cyclo::ClusterConfig cluster;
  cluster.num_hosts = 6;
  cluster.cores_per_host = 4;

  std::printf("ad-hoc query: orders ⋈ customers  (%llu x %llu rows, "
              "Zipf-0.8 customer popularity, 6-host ring)\n\n",
              static_cast<unsigned long long>(orders.rows()),
              static_cast<unsigned long long>(customers.rows()));
  std::printf("%-12s  %10s  %10s  %10s  %14s\n", "algorithm", "setup", "join",
              "sync", "matches");

  std::uint64_t checksum = 0;
  for (const auto algorithm :
       {cyclo::Algorithm::kHashJoin, cyclo::Algorithm::kSortMergeJoin}) {
    cyclo::JoinSpec spec;
    spec.algorithm = algorithm;
    // Rotate the *smaller* relation (paper Sec. IV-B): customers spin,
    // orders stay partitioned as the stationary side.
    cyclo::CycloJoin join(cluster, spec);
    const cyclo::RunReport report = join.run(customers, orders);

    SimDuration sync = 0;
    for (const auto& host : report.hosts) sync = std::max(sync, host.sync);
    std::printf("%-12s  %10s  %10s  %10s  %14llu\n",
                algorithm == cyclo::Algorithm::kHashJoin ? "hash" : "sort-merge",
                human_duration(report.setup_wall).c_str(),
                human_duration(report.join_wall - sync).c_str(),
                human_duration(sync).c_str(),
                static_cast<unsigned long long>(report.matches));

    if (checksum == 0) {
      checksum = report.checksum;
    } else if (checksum != report.checksum) {
      std::printf("!! algorithms disagree — this is a bug\n");
      return 1;
    }
  }

  std::printf("\nBoth algorithms return the identical distributed result; "
              "the hash join wins on setup,\nthe sort-merge join on join-phase "
              "speed — the trade-off of paper Sec. V-E.\n");
  return 0;
}
