// Elastic scaling — "such scaling may even be performed at runtime and as
// application workloads demand" (paper Sec. VII). The Data Roundabout has
// no a-priori partitioning scheme, so growing or shrinking the ring is just
// re-running with a different host count.
//
// This example keeps one fixed query and shows what adding commodity hosts
// buys: setup cost melts away ~1/n (it is perfectly distributable), the
// hash join phase stays flat (Equation (*)), and the ring's aggregate
// memory grows so ever-larger hot sets stay in RAM.
#include <cstdio>

#include "cyclo/cyclo_join.h"
#include "rel/generator.h"

int main() {
  using namespace cj;

  rel::Relation r = rel::generate({.rows = 4'000'000, .seed = 31}, "R", 1);
  rel::Relation s = rel::generate({.rows = 4'000'000, .seed = 32}, "S", 2);

  std::printf("elastic ring: same query (%s per relation), growing the ring\n\n",
              human_bytes(r.bytes()).c_str());
  std::printf("%6s  %10s  %10s  %10s  %14s  %16s\n", "hosts", "setup", "join",
              "total", "per-host data", "speedup(total)");

  double baseline = 0.0;
  for (const int hosts : {1, 2, 4, 8, 12}) {
    cyclo::ClusterConfig cluster;
    cluster.num_hosts = hosts;
    cluster.cores_per_host = 4;
    cyclo::CycloJoin join(cluster, cyclo::JoinSpec{});
    const cyclo::RunReport report = join.run(r, s);

    const double total = to_seconds(report.setup_wall + report.join_wall);
    if (hosts == 1) baseline = total;
    std::printf("%6d  %10s  %10s  %9.3fs  %14s  %15.2fx\n", hosts,
                human_duration(report.setup_wall).c_str(),
                human_duration(report.join_wall).c_str(), total,
                human_bytes((r.bytes() + s.bytes()) /
                            static_cast<std::uint64_t>(hosts))
                    .c_str(),
                baseline / total);
  }

  std::printf("\nNo data was re-partitioned between runs — the ring does not "
              "care how many members it has.\n");
  return 0;
}
