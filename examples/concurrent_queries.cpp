// Concurrent queries on a shared rotation — a taste of the Data Cyclotron
// (the paper's ongoing-work direction, Sec. VII): the warehouse's hot
// `events` table spins in the ring once, and several analysts' joins hook
// into the same stream.
#include <cstdio>

#include "cyclo/cyclo_join.h"
#include "rel/generator.h"

int main() {
  using namespace cj;

  // The hot relation: 6 M events.
  rel::Relation events = rel::generate({.rows = 6'000'000, .seed = 51}, "events", 1);

  // Three analysts join against their own dimension tables.
  rel::Relation users = rel::generate(
      {.rows = 2'000'000, .key_domain = 6'000'000, .seed = 52}, "users", 2);
  rel::Relation devices = rel::generate(
      {.rows = 1'000'000, .key_domain = 6'000'000, .seed = 53}, "devices", 3);
  rel::Relation alerts = rel::generate(
      {.rows = 50'000, .key_domain = 6'000'000, .seed = 54}, "alerts", 4);

  cyclo::ClusterConfig cluster;
  cluster.num_hosts = 6;

  cyclo::CycloJoin engine(cluster, cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kHashJoin});
  const cyclo::SharedRunReport shared = engine.run_shared(
      events, {cyclo::SharedQuery{.stationary = &users},
               cyclo::SharedQuery{.stationary = &devices},
               cyclo::SharedQuery{.stationary = &alerts}});

  std::printf("one revolution of 'events' (%s) answered three joins:\n\n",
              human_bytes(events.bytes()).c_str());
  const char* names[] = {"events ⋈ users", "events ⋈ devices", "events ⋈ alerts"};
  for (std::size_t q = 0; q < shared.queries.size(); ++q) {
    std::printf("  %-18s %12llu matches\n", names[q],
                static_cast<unsigned long long>(shared.queries[q].matches));
  }
  std::printf("\nsetup %s | join %s | %s over the wire — paid once, "
              "not once per query\n",
              human_duration(shared.setup_wall).c_str(),
              human_duration(shared.join_wall).c_str(),
              human_bytes(shared.bytes_on_wire).c_str());

  // The same three queries as separate runs, for comparison.
  SimDuration separate = 0;
  for (const rel::Relation* table : {&users, &devices, &alerts}) {
    const cyclo::RunReport solo = engine.run(events, *table);
    separate += solo.setup_wall + solo.join_wall;
  }
  std::printf("separate runs would take %s — %.2fx the shared rotation\n",
              human_duration(separate).c_str(),
              to_seconds(separate) /
                  to_seconds(shared.setup_wall + shared.join_wall));
  return 0;
}
