// Concurrent queries through the serving layer — the Data Cyclotron
// direction (paper Sec. VII) with an operator's knobs on top: the
// warehouse's hot `events` table spins in the ring while analysts' joins
// arrive over time, and serve::QueryScheduler batches them into waves,
// splitting wave slots by tenant weight. One revolution answers a whole
// wave, so the wire cost is paid per wave, not per query.
#include <cstdio>

#include "rel/generator.h"
#include "serve/scheduler.h"

int main() {
  using namespace cj;

  // The hot relation: 3 M events.
  rel::Relation events = rel::generate({.rows = 3'000'000, .seed = 51}, "events", 1);

  // Dimension tables the analysts join against.
  rel::Relation users = rel::generate(
      {.rows = 1'000'000, .key_domain = 3'000'000, .seed = 52}, "users", 2);
  rel::Relation devices = rel::generate(
      {.rows = 500'000, .key_domain = 3'000'000, .seed = 53}, "devices", 3);
  rel::Relation alerts = rel::generate(
      {.rows = 50'000, .key_domain = 3'000'000, .seed = 54}, "alerts", 4);

  serve::ServeConfig cfg;
  cfg.cluster.num_hosts = 6;
  cfg.spec = cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kHashJoin};
  cfg.max_inflight = 3;              // wave width: 3 queries per revolution
  cfg.slo_target = 2 * kSecond;      // flag anything slower than 2 s
  serve::QueryScheduler scheduler(cfg);

  // Two teams share the ring: dashboards carry 3x the weight of ad-hoc
  // analysts, so a full wave gives them slots 3:1. Queries arrive
  // staggered, 10 ms apart — faster than a revolution serves them, so a
  // queue builds and later waves multiplex several queries.
  struct Arrival {
    const char* name;
    const rel::Relation* table;
    const char* tenant;
    double weight;
  };
  const Arrival arrivals[] = {
      {"events ⋈ users", &users, "dashboards", 3.0},
      {"events ⋈ alerts", &alerts, "adhoc", 1.0},
      {"events ⋈ devices", &devices, "dashboards", 3.0},
      {"events ⋈ users", &users, "dashboards", 3.0},
      {"events ⋈ devices", &devices, "adhoc", 1.0},
      {"events ⋈ alerts", &alerts, "dashboards", 3.0},
      {"events ⋈ devices", &devices, "dashboards", 3.0},
      {"events ⋈ alerts", &alerts, "adhoc", 1.0},
      {"events ⋈ users", &users, "adhoc", 1.0},
  };
  SimTime when = 0;
  for (const Arrival& a : arrivals) {
    scheduler.submit(serve::QuerySpec{.stationary = a.table,
                                      .tenant = a.tenant,
                                      .weight = a.weight},
                     when);
    when += 10 * kMillisecond;
  }

  const serve::ServeReport report = scheduler.drain(events);

  std::printf("%zu queries served in %d waves — each wave one revolution of "
              "'events' (%s):\n\n",
              report.queries.size(), report.waves,
              human_bytes(events.bytes()).c_str());
  std::printf("  %3s  %-18s  %-10s  %4s  %10s  %10s  %12s\n", "id", "query",
              "tenant", "wave", "wait", "latency", "matches");
  for (const serve::QueryRecord& q : report.queries) {
    const Arrival& a = arrivals[q.id];
    std::printf("  %3llu  %-18s  %-10s  %4d  %10s  %10s  %12llu%s\n",
                static_cast<unsigned long long>(q.id), a.name,
                q.tenant.c_str(), q.wave,
                human_duration(q.queue_wait()).c_str(),
                human_duration(q.latency()).c_str(),
                static_cast<unsigned long long>(q.result.matches),
                q.slo_violated ? "  (SLO!)" : "");
  }

  const obs::HistogramSummary& lat =
      report.metrics.histograms.at("serve.latency_ns");
  std::printf("\nlatency p50 %s | p99 %s | %s over the wire for %zu queries\n",
              human_duration(lat.p50).c_str(), human_duration(lat.p99).c_str(),
              human_bytes(report.bytes_on_wire).c_str(),
              report.queries.size());

  std::printf("achieved busy share:");
  for (const auto& [tenant, share] : report.share_by_tenant) {
    std::printf("  %s %.0f%%", tenant.c_str(), share * 100.0);
  }
  std::printf("  (weights 3:1, wave slots split to match)\n");
  return 0;
}
