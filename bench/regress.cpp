// Noise-aware perf-regression gate over the kernel A/B baseline.
//
// Loads a BENCH_kernels.json written by micro_kernels (or by this binary's
// --write_baseline), re-measures the same kernel x variant x size cases
// median-of-N, and compares. Two defenses against noise:
//
//   * machine-speed normalization: the median measured/baseline ratio
//     across all matched cases is treated as this machine's speed relative
//     to the baseline machine, and divided out before judging any single
//     kernel. A checked-in baseline from a different machine (or a
//     thermally throttled run) shifts every kernel together; a real
//     regression shifts one kernel against the rest.
//   * two-sided thresholds: a kernel regresses only if its normalized time
//     exceeds baseline * (1 + tolerance) AND by at least min_abs_ns —
//     relative noise on microsecond kernels and absolute jitter on
//     millisecond kernels both stay below the gate.
//
// Two refusals guard the comparison itself (exit 2, nothing judged): a
// baseline tagged with a different backend (sim vs rt wall time) and a
// baseline row whose recorded SIMD dispatch tier differs from the tier
// this run resolves — cross-tier times are different code paths, not a
// regression signal.
//
// Exit codes: 0 clean (improvements included), 1 regression, 2 usage.
// Writes REGRESS_report.json (the verdict table, machine-readable) and
// REGRESS_profile.json (per-phase counters of one profiled rep).
//
// A second mode gates the serving layer: --serve_baseline + --serve_current
// compare two BENCH_serve.json files (from bench/serve_throughput) row by
// row, keyed by wave width. The same two defenses apply, made
// direction-aware: qps regresses when it drops, p99_ms / wait_p99_ms when
// they rise, and the median slowness ratio over every (row, metric) pair is
// divided out first. Cross-backend files are refused like kernel baselines.
//
// A third mode gates the query planner: --plan_baseline + --plan_current
// compare two BENCH_plan.json files (from bench/abl_plan) row by row,
// keyed by (shape, variant). total_s regresses upward with the machine-
// speed normalization computed over the time ratios alone; wire_mb is a
// deterministic byte count — the executor moved more data, no speed to
// normalize away — so it is judged raw. Cross-backend files are refused.
//
// Flags:
//   --baseline=PATH        baseline BENCH_kernels.json (required for gating)
//   --rows=a,b,...         restrict to these sizes (default: all in baseline)
//   --reps=N               median-of-N repetitions        (default 5)
//   --tolerance=F          relative threshold             (default 0.25)
//   --min_abs_ns=N         absolute threshold             (default 50000)
//   --inject_slowdown=kernel[/variant]:PCT   multiply that kernel's measured
//                          time by (1+PCT/100) — gate self-test hook
//   --write_baseline=PATH  measure and write a fresh baseline, no gating
//   --self_check           deterministic in-process test of the gate logic
//   --report_out=PATH      verdict table    (default REGRESS_report.json)
//   --profile_out=PATH     kernel profile   (default REGRESS_profile.json)
//   --serve_baseline=PATH  baseline BENCH_serve.json  (enables serve mode)
//   --serve_current=PATH   current  BENCH_serve.json  (required with above)
//   --serve_min_abs_ms=F   absolute latency threshold, serve mode (default 1)
//   --serve_min_abs_qps=F  absolute qps threshold, serve mode   (default 0.5)
//   --plan_baseline=PATH   baseline BENCH_plan.json   (enables plan mode)
//   --plan_current=PATH    current  BENCH_plan.json   (required with above)
//   --plan_min_abs_s=F     absolute time threshold, plan mode (default 0.01)
//   --plan_min_abs_mb=F    absolute wire threshold, plan mode (default 1)
#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/cputime.h"
#include "common/flags.h"
#include "harness.h"
#include "kernels_ab.h"
#include "obs/prof.h"

namespace {

using namespace cj;

// ----------------------------------------------------------- JSON reader
//
// Minimal recursive-descent parser for the machine-written BENCH_*.json
// files (objects, arrays, strings, numbers, bools, null). Good enough for
// input this binary's sibling wrote; rejects anything malformed.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : p_(text.data()), end_(p_ + text.size()) {}

  std::optional<JsonValue> parse() {
    auto v = value();
    skip_ws();
    if (!v.has_value() || p_ != end_) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }
  bool consume(char c) {
    skip_ws();
    if (p_ == end_ || *p_ != c) return false;
    ++p_;
    return true;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (static_cast<std::size_t>(end_ - p_) < n || std::memcmp(p_, lit, n) != 0)
      return false;
    p_ += n;
    return true;
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (p_ == end_) return std::nullopt;
    JsonValue v;
    switch (*p_) {
      case '{': {
        ++p_;
        v.kind = JsonValue::Kind::kObject;
        if (consume('}')) return v;
        while (true) {
          skip_ws();
          auto key = string_body();
          if (!key.has_value() || !consume(':')) return std::nullopt;
          auto member = value();
          if (!member.has_value()) return std::nullopt;
          v.object.emplace(std::move(*key), std::move(*member));
          if (consume(',')) continue;
          if (consume('}')) return v;
          return std::nullopt;
        }
      }
      case '[': {
        ++p_;
        v.kind = JsonValue::Kind::kArray;
        if (consume(']')) return v;
        while (true) {
          auto element = value();
          if (!element.has_value()) return std::nullopt;
          v.array.push_back(std::move(*element));
          if (consume(',')) continue;
          if (consume(']')) return v;
          return std::nullopt;
        }
      }
      case '"': {
        auto s = string_body();
        if (!s.has_value()) return std::nullopt;
        v.kind = JsonValue::Kind::kString;
        v.string = std::move(*s);
        return v;
      }
      case 't':
        if (!literal("true")) return std::nullopt;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!literal("false")) return std::nullopt;
        v.kind = JsonValue::Kind::kBool;
        return v;
      case 'n':
        if (!literal("null")) return std::nullopt;
        return v;
      default: {
        char* num_end = nullptr;
        v.number = std::strtod(p_, &num_end);
        if (num_end == p_ || num_end > end_) return std::nullopt;
        v.kind = JsonValue::Kind::kNumber;
        p_ = num_end;
        return v;
      }
    }
  }

  std::optional<std::string> string_body() {
    if (p_ == end_ || *p_ != '"') return std::nullopt;
    ++p_;
    std::string out;
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return std::nullopt;
      }
      out += *p_++;
    }
    if (p_ == end_) return std::nullopt;
    ++p_;  // closing quote
    return out;
  }

  const char* p_;
  const char* end_;
};

// ------------------------------------------------------------ gate logic

struct CaseKey {
  std::string kernel;
  std::string variant;
  std::int64_t rows = 0;

  bool operator<(const CaseKey& o) const {
    return std::tie(kernel, variant, rows) < std::tie(o.kernel, o.variant, o.rows);
  }
  std::string to_string() const {
    return kernel + "/" + variant + "@" + std::to_string(rows);
  }
};

struct Sample {
  double cpu_ns = 0;
  int radix_bits = 0;
  std::string tier;  ///< resolved SIMD dispatch tier ("" in pre-tier files)
};

using Table = std::map<CaseKey, Sample>;

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

/// Parses a BENCH_kernels.json trajectory into a Table (rows that carry a
/// "kernel" label; anything else in the file is ignored). `backend_out`
/// receives the file's top-level "backend" tag; files from before the tag
/// existed are sim measurements, so that is the default.
std::optional<Table> load_baseline(const std::string& path,
                                   std::string* backend_out) {
  auto text = read_file(path);
  if (!text.has_value()) return std::nullopt;
  auto root = JsonParser(*text).parse();
  if (!root.has_value()) return std::nullopt;
  *backend_out = "sim";
  if (const JsonValue* backend = root->find("backend")) {
    if (backend->kind == JsonValue::Kind::kString) {
      *backend_out = backend->string;
    }
  }
  const JsonValue* trajectory = root->find("trajectory");
  if (trajectory == nullptr || trajectory->kind != JsonValue::Kind::kArray)
    return std::nullopt;
  Table table;
  for (const JsonValue& row : trajectory->array) {
    const JsonValue* kernel = row.find("kernel");
    const JsonValue* variant = row.find("variant");
    const JsonValue* rows = row.find("rows");
    const JsonValue* cpu_ns = row.find("cpu_ns");
    if (kernel == nullptr || variant == nullptr || rows == nullptr ||
        cpu_ns == nullptr) {
      continue;
    }
    CaseKey key{kernel->string, variant->string,
                static_cast<std::int64_t>(rows->number)};
    Sample sample;
    sample.cpu_ns = cpu_ns->number;
    if (const JsonValue* bits = row.find("radix_bits")) {
      sample.radix_bits = static_cast<int>(bits->number);
    }
    if (const JsonValue* tier = row.find("tier")) {
      if (tier->kind == JsonValue::Kind::kString) sample.tier = tier->string;
    }
    table.emplace(std::move(key), sample);
  }
  return table;
}

double median(std::vector<double> xs) {
  CJ_CHECK(!xs.empty());
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  return xs.size() % 2 == 1 ? xs[mid] : 0.5 * (xs[mid - 1] + xs[mid]);
}

/// Median-of-`reps` measurement of every A/B case at the given sizes.
/// Checksums cross-validate legacy vs optimized per (kernel, size); a
/// mismatch means the kernels disagree and no timing can be trusted.
/// When `profiler` is non-null, one extra (untimed) profiled rep per case
/// attributes per-phase counters under entity = "kernel/variant".
Table measure(const std::vector<std::int64_t>& sizes, int reps,
              obs::prof::KernelProfiler* profiler) {
  Table out;
  for (const std::int64_t rows : sizes) {
    std::map<std::string, std::uint64_t> checksums;  // kernel -> checksum
    for (const bench::KernelCase& c : bench::make_kernel_cases(rows)) {
      // Untimed warm-up rep (faults in freshly generated inputs, primes the
      // arena); when profiling, it doubles as the attributed counter rep.
      if (profiler != nullptr) {
        const std::string entity = c.label();
        obs::prof::ScopedContext ctx(profiler, /*host=*/0, entity);
        c.run();
      } else {
        c.run();
      }
      std::vector<double> times;
      times.reserve(static_cast<std::size_t>(reps));
      std::uint64_t checksum = 0;
      for (int i = 0; i < reps; ++i) {
        times.push_back(
            static_cast<double>(measure_cpu([&] { checksum = c.run(); })));
      }
      if (c.cross_validate) {
        auto [it, inserted] = checksums.emplace(c.kernel, checksum);
        CJ_CHECK_MSG(inserted || it->second == checksum,
                     "kernel A/B checksum mismatch: the variants disagree");
      }
      out[CaseKey{c.kernel, c.variant, rows}] =
          Sample{median(times), c.radix_bits, c.tier};
    }
  }
  return out;
}

enum class Status { kOk, kRegression, kImprovement, kNoBaseline };

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kRegression: return "regression";
    case Status::kImprovement: return "improvement";
    case Status::kNoBaseline: return "no-baseline";
  }
  return "?";
}

struct Verdict {
  CaseKey key;
  double baseline_ns = 0;
  double measured_ns = 0;
  double normalized_ns = 0;  ///< measured / machine speed ratio
  Status status = Status::kOk;
};

struct GateResult {
  double speed_ratio = 1.0;  ///< median measured/baseline over matched cases
  std::vector<Verdict> verdicts;
  int regressions = 0;
  int improvements = 0;
};

GateResult apply_gate(const Table& baseline, const Table& measured,
                      double tolerance, double min_abs_ns) {
  GateResult result;
  std::vector<double> ratios;
  for (const auto& [key, sample] : measured) {
    auto it = baseline.find(key);
    if (it != baseline.end() && it->second.cpu_ns > 0) {
      ratios.push_back(sample.cpu_ns / it->second.cpu_ns);
    }
  }
  if (!ratios.empty()) result.speed_ratio = median(ratios);

  for (const auto& [key, sample] : measured) {
    Verdict v;
    v.key = key;
    v.measured_ns = sample.cpu_ns;
    v.normalized_ns = sample.cpu_ns / result.speed_ratio;
    auto it = baseline.find(key);
    if (it == baseline.end()) {
      v.status = Status::kNoBaseline;  // new case: informational only
    } else {
      v.baseline_ns = it->second.cpu_ns;
      const double delta = v.normalized_ns - v.baseline_ns;
      if (delta > v.baseline_ns * tolerance && delta > min_abs_ns) {
        v.status = Status::kRegression;
        ++result.regressions;
      } else if (-delta > v.baseline_ns * tolerance && -delta > min_abs_ns) {
        v.status = Status::kImprovement;
        ++result.improvements;
      }
    }
    result.verdicts.push_back(std::move(v));
  }
  return result;
}

void print_gate(const GateResult& result, double tolerance, double min_abs_ns) {
  std::printf("machine speed ratio (median measured/baseline): %.3f\n",
              result.speed_ratio);
  std::printf("thresholds: +%.0f%% relative AND +%.0f us absolute\n\n",
              tolerance * 100.0, min_abs_ns * 1e-3);
  std::printf("%-28s %12s %12s %12s %8s  %s\n", "case", "baseline_ns",
              "measured_ns", "normalized", "ratio", "status");
  for (const Verdict& v : result.verdicts) {
    const double ratio =
        v.baseline_ns > 0 ? v.normalized_ns / v.baseline_ns : 0.0;
    std::printf("%-28s %12.0f %12.0f %12.0f %7.2fx  %s\n",
                v.key.to_string().c_str(), v.baseline_ns, v.measured_ns,
                v.normalized_ns, ratio, status_name(v.status));
  }
  std::printf("\n%d regression(s), %d improvement(s) over %zu case(s)\n",
              result.regressions, result.improvements, result.verdicts.size());
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void write_report(const std::string& path, const std::string& baseline_path,
                  const GateResult& result, double tolerance, double min_abs_ns) {
  if (path.empty()) return;
  std::string out = "{\"baseline\":\"" + baseline_path + "\",\"speed_ratio\":";
  append_double(out, result.speed_ratio);
  out += ",\"tolerance\":";
  append_double(out, tolerance);
  out += ",\"min_abs_ns\":";
  append_double(out, min_abs_ns);
  out += ",\"regressions\":" + std::to_string(result.regressions);
  out += ",\"improvements\":" + std::to_string(result.improvements);
  out += ",\"cases\":[";
  bool first = true;
  for (const Verdict& v : result.verdicts) {
    if (!first) out += ",";
    first = false;
    out += "{\"kernel\":\"" + v.key.kernel + "\",\"variant\":\"" +
           v.key.variant + "\",\"rows\":" + std::to_string(v.key.rows) +
           ",\"baseline_ns\":";
    append_double(out, v.baseline_ns);
    out += ",\"measured_ns\":";
    append_double(out, v.measured_ns);
    out += ",\"normalized_ns\":";
    append_double(out, v.normalized_ns);
    out += ",\"status\":\"";
    out += status_name(v.status);
    out += "\"}";
  }
  out += "]}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

/// Writes a fresh baseline in the exact BENCH_kernels.json row schema
/// micro_kernels emits, so either binary can produce the file the other
/// consumes.
void write_baseline_file(const std::string& path, const Table& measured) {
  std::string out = "{\"figure\":\"kernels\",\"backend\":\"sim\",\"trajectory\":[";
  bool first = true;
  for (const auto& [key, sample] : measured) {
    if (!first) out += ",";
    first = false;
    out += "{\"kernel\":\"" + key.kernel + "\",\"variant\":\"" + key.variant +
           "\",\"tier\":\"" + sample.tier +
           "\",\"rows\":" + std::to_string(key.rows) +
           ",\"radix_bits\":" + std::to_string(sample.radix_bits) + ",\"cpu_ns\":";
    append_double(out, sample.cpu_ns);
    out += ",\"items_per_sec\":";
    append_double(out, static_cast<double>(key.rows) / (sample.cpu_ns * 1e-9));
    out += "}";
  }
  out += "]}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  CJ_CHECK_MSG(f != nullptr, "cannot write baseline file");
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("wrote baseline %s (%zu cases)\n", path.c_str(), measured.size());
}

// ------------------------------------------------------------ serve gate
//
// Same philosophy applied to the serving layer's BENCH_serve.json: compare
// a current file against a baseline file row by row (keyed by the wave
// width "inflight"), direction-aware — qps regresses downward, p99_ms /
// wait_p99_ms regress upward. No re-measurement happens here (a serving
// sweep is minutes, not microseconds); the CI job produces the current
// file anyway and this gate judges it. Machine-speed normalization works
// on "slowness ratios": each latency contributes current/baseline, qps
// contributes baseline/current, and the median over every (row, metric)
// pair is divided out before judging — a uniformly slower machine shifts
// all ratios together, a real regression shifts one against the rest.
// Comparing across backends (sim virtual seconds vs rt wall seconds) is
// refused outright, like the kernel gate's backend refusal.

struct ServeRow {
  double qps = 0;
  double p99_ms = 0;
  double wait_p99_ms = 0;
};

using ServeTable = std::map<std::int64_t, ServeRow>;

std::optional<ServeTable> load_serve(const std::string& path,
                                     std::string* backend_out) {
  auto text = read_file(path);
  if (!text.has_value()) return std::nullopt;
  auto root = JsonParser(*text).parse();
  if (!root.has_value()) return std::nullopt;
  *backend_out = "sim";
  if (const JsonValue* backend = root->find("backend")) {
    if (backend->kind == JsonValue::Kind::kString) {
      *backend_out = backend->string;
    }
  }
  const JsonValue* trajectory = root->find("trajectory");
  if (trajectory == nullptr || trajectory->kind != JsonValue::Kind::kArray)
    return std::nullopt;
  ServeTable table;
  for (const JsonValue& row : trajectory->array) {
    const JsonValue* inflight = row.find("inflight");
    const JsonValue* qps = row.find("qps");
    const JsonValue* p99 = row.find("p99_ms");
    const JsonValue* wait = row.find("wait_p99_ms");
    if (inflight == nullptr || qps == nullptr || p99 == nullptr ||
        wait == nullptr) {
      continue;
    }
    table[static_cast<std::int64_t>(inflight->number)] =
        ServeRow{qps->number, p99->number, wait->number};
  }
  return table;
}

struct ServeVerdict {
  std::int64_t inflight = 0;
  const char* metric = "";
  double baseline = 0;
  double measured = 0;
  double normalized = 0;
  Status status = Status::kOk;
};

struct ServeGateResult {
  double speed_ratio = 1.0;  ///< median slowness over all (row, metric)
  std::vector<ServeVerdict> verdicts;
  int regressions = 0;
  int improvements = 0;
};

ServeGateResult apply_serve_gate(const ServeTable& baseline,
                                 const ServeTable& current, double tolerance,
                                 double min_abs_ms, double min_abs_qps) {
  ServeGateResult result;
  std::vector<double> slowness;
  for (const auto& [inflight, row] : current) {
    auto it = baseline.find(inflight);
    if (it == baseline.end()) continue;
    const ServeRow& base = it->second;
    if (base.qps > 0 && row.qps > 0) slowness.push_back(base.qps / row.qps);
    if (base.p99_ms > 0 && row.p99_ms > 0) {
      slowness.push_back(row.p99_ms / base.p99_ms);
    }
    if (base.wait_p99_ms > 0 && row.wait_p99_ms > 0) {
      slowness.push_back(row.wait_p99_ms / base.wait_p99_ms);
    }
  }
  if (!slowness.empty()) result.speed_ratio = median(slowness);

  // judge(higher_better): latencies divide the slowness out, qps multiplies
  // it back in (a slower machine yields fewer queries/sec, not more).
  const auto judge = [&](std::int64_t inflight, const char* metric,
                         double base, double measured, bool higher_better,
                         double min_abs) {
    ServeVerdict v;
    v.inflight = inflight;
    v.metric = metric;
    v.baseline = base;
    v.measured = measured;
    v.normalized = higher_better ? measured * result.speed_ratio
                                 : measured / result.speed_ratio;
    if (base > 0) {
      const double delta =
          higher_better ? base - v.normalized : v.normalized - base;
      if (delta > base * tolerance && delta > min_abs) {
        v.status = Status::kRegression;
        ++result.regressions;
      } else if (-delta > base * tolerance && -delta > min_abs) {
        v.status = Status::kImprovement;
        ++result.improvements;
      }
    }
    result.verdicts.push_back(v);
  };

  for (const auto& [inflight, row] : current) {
    auto it = baseline.find(inflight);
    if (it == baseline.end()) {
      result.verdicts.push_back(ServeVerdict{
          inflight, "row", 0, 0, 0, Status::kNoBaseline});
      continue;
    }
    const ServeRow& base = it->second;
    judge(inflight, "qps", base.qps, row.qps, /*higher_better=*/true,
          min_abs_qps);
    judge(inflight, "p99_ms", base.p99_ms, row.p99_ms,
          /*higher_better=*/false, min_abs_ms);
    judge(inflight, "wait_p99_ms", base.wait_p99_ms, row.wait_p99_ms,
          /*higher_better=*/false, min_abs_ms);
  }
  return result;
}

void print_serve_gate(const ServeGateResult& result, double tolerance) {
  std::printf("serve machine speed ratio (median slowness): %.3f\n",
              result.speed_ratio);
  std::printf("tolerance: %.0f%% (direction-aware)\n\n", tolerance * 100.0);
  std::printf("%10s %-12s %12s %12s %12s  %s\n", "inflight", "metric",
              "baseline", "measured", "normalized", "status");
  for (const ServeVerdict& v : result.verdicts) {
    std::printf("%10lld %-12s %12.3f %12.3f %12.3f  %s\n",
                static_cast<long long>(v.inflight), v.metric, v.baseline,
                v.measured, v.normalized, status_name(v.status));
  }
  std::printf("\n%d regression(s), %d improvement(s) over %zu check(s)\n",
              result.regressions, result.improvements,
              result.verdicts.size());
}

void write_serve_report(const std::string& path,
                        const std::string& baseline_path,
                        const std::string& current_path,
                        const ServeGateResult& result, double tolerance) {
  if (path.empty()) return;
  std::string out = "{\"mode\":\"serve\",\"baseline\":\"" + baseline_path +
                    "\",\"current\":\"" + current_path + "\",\"speed_ratio\":";
  append_double(out, result.speed_ratio);
  out += ",\"tolerance\":";
  append_double(out, tolerance);
  out += ",\"regressions\":" + std::to_string(result.regressions);
  out += ",\"improvements\":" + std::to_string(result.improvements);
  out += ",\"cases\":[";
  bool first = true;
  for (const ServeVerdict& v : result.verdicts) {
    if (!first) out += ",";
    first = false;
    out += "{\"inflight\":" + std::to_string(v.inflight) + ",\"metric\":\"";
    out += v.metric;
    out += "\",\"baseline\":";
    append_double(out, v.baseline);
    out += ",\"measured\":";
    append_double(out, v.measured);
    out += ",\"normalized\":";
    append_double(out, v.normalized);
    out += ",\"status\":\"";
    out += status_name(v.status);
    out += "\"}";
  }
  out += "]}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

// ------------------------------------------------------------- plan gate
//
// Gate over the planner ablation's BENCH_plan.json: rows keyed by
// (shape, variant), two metrics per row. total_s is wall time — machine
// speed matters, so the median current/baseline time ratio is divided out
// first (computed over the time pairs only). wire_mb is a byte count the
// executor either moved or did not; a "faster machine" cannot shrink it,
// so it is judged raw against the same relative tolerance. Cross-backend
// comparison (sim virtual seconds vs rt wall seconds) is refused.

struct PlanRow {
  double total_s = 0;
  double wire_mb = 0;
};

using PlanTable = std::map<std::pair<std::string, std::string>, PlanRow>;

std::optional<PlanTable> load_plan(const std::string& path,
                                   std::string* backend_out) {
  auto text = read_file(path);
  if (!text.has_value()) return std::nullopt;
  auto root = JsonParser(*text).parse();
  if (!root.has_value()) return std::nullopt;
  *backend_out = "sim";
  if (const JsonValue* backend = root->find("backend")) {
    if (backend->kind == JsonValue::Kind::kString) {
      *backend_out = backend->string;
    }
  }
  const JsonValue* trajectory = root->find("trajectory");
  if (trajectory == nullptr || trajectory->kind != JsonValue::Kind::kArray)
    return std::nullopt;
  PlanTable table;
  for (const JsonValue& row : trajectory->array) {
    const JsonValue* shape = row.find("shape");
    const JsonValue* variant = row.find("variant");
    const JsonValue* total_s = row.find("total_s");
    const JsonValue* wire_mb = row.find("wire_mb");
    if (shape == nullptr || variant == nullptr || total_s == nullptr ||
        wire_mb == nullptr) {
      continue;
    }
    table[{shape->string, variant->string}] =
        PlanRow{total_s->number, wire_mb->number};
  }
  return table;
}

struct PlanVerdict {
  std::string row;  ///< "shape/variant"
  const char* metric = "";
  double baseline = 0;
  double measured = 0;
  double normalized = 0;
  Status status = Status::kOk;
};

struct PlanGateResult {
  double speed_ratio = 1.0;  ///< median current/baseline over time pairs
  std::vector<PlanVerdict> verdicts;
  int regressions = 0;
  int improvements = 0;
};

PlanGateResult apply_plan_gate(const PlanTable& baseline,
                               const PlanTable& current, double tolerance,
                               double min_abs_s, double min_abs_mb) {
  PlanGateResult result;
  std::vector<double> slowness;
  for (const auto& [key, row] : current) {
    auto it = baseline.find(key);
    if (it == baseline.end()) continue;
    if (it->second.total_s > 0 && row.total_s > 0) {
      slowness.push_back(row.total_s / it->second.total_s);
    }
  }
  if (!slowness.empty()) result.speed_ratio = median(slowness);

  const auto judge = [&](const std::string& name, const char* metric,
                         double base, double measured, bool normalize,
                         double min_abs) {
    PlanVerdict v;
    v.row = name;
    v.metric = metric;
    v.baseline = base;
    v.measured = measured;
    v.normalized = normalize ? measured / result.speed_ratio : measured;
    if (base > 0) {
      const double delta = v.normalized - base;
      if (delta > base * tolerance && delta > min_abs) {
        v.status = Status::kRegression;
        ++result.regressions;
      } else if (-delta > base * tolerance && -delta > min_abs) {
        v.status = Status::kImprovement;
        ++result.improvements;
      }
    }
    result.verdicts.push_back(std::move(v));
  };

  for (const auto& [key, row] : current) {
    const std::string name = key.first + "/" + key.second;
    auto it = baseline.find(key);
    if (it == baseline.end()) {
      result.verdicts.push_back(
          PlanVerdict{name, "row", 0, 0, 0, Status::kNoBaseline});
      continue;
    }
    judge(name, "total_s", it->second.total_s, row.total_s,
          /*normalize=*/true, min_abs_s);
    judge(name, "wire_mb", it->second.wire_mb, row.wire_mb,
          /*normalize=*/false, min_abs_mb);
  }
  return result;
}

void print_plan_gate(const PlanGateResult& result, double tolerance) {
  std::printf("plan machine speed ratio (median time ratio): %.3f\n",
              result.speed_ratio);
  std::printf("tolerance: %.0f%% (wire bytes judged raw)\n\n",
              tolerance * 100.0);
  std::printf("%-18s %-8s %12s %12s %12s  %s\n", "row", "metric", "baseline",
              "measured", "normalized", "status");
  for (const PlanVerdict& v : result.verdicts) {
    std::printf("%-18s %-8s %12.3f %12.3f %12.3f  %s\n", v.row.c_str(),
                v.metric, v.baseline, v.measured, v.normalized,
                status_name(v.status));
  }
  std::printf("\n%d regression(s), %d improvement(s) over %zu check(s)\n",
              result.regressions, result.improvements,
              result.verdicts.size());
}

void write_plan_report(const std::string& path,
                       const std::string& baseline_path,
                       const std::string& current_path,
                       const PlanGateResult& result, double tolerance) {
  if (path.empty()) return;
  std::string out = "{\"mode\":\"plan\",\"baseline\":\"" + baseline_path +
                    "\",\"current\":\"" + current_path + "\",\"speed_ratio\":";
  append_double(out, result.speed_ratio);
  out += ",\"tolerance\":";
  append_double(out, tolerance);
  out += ",\"regressions\":" + std::to_string(result.regressions);
  out += ",\"improvements\":" + std::to_string(result.improvements);
  out += ",\"cases\":[";
  bool first = true;
  for (const PlanVerdict& v : result.verdicts) {
    if (!first) out += ",";
    first = false;
    out += "{\"row\":\"" + v.row + "\",\"metric\":\"";
    out += v.metric;
    out += "\",\"baseline\":";
    append_double(out, v.baseline);
    out += ",\"measured\":";
    append_double(out, v.measured);
    out += ",\"normalized\":";
    append_double(out, v.normalized);
    out += ",\"status\":\"";
    out += status_name(v.status);
    out += "\"}";
  }
  out += "]}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

/// --inject_slowdown=kernel[/variant]:PCT — multiplies the matching
/// measured times. Returns false on a malformed spec.
bool apply_injection(Table& measured, const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  const std::string target = spec.substr(0, colon);
  char* end = nullptr;
  const double pct = std::strtod(spec.c_str() + colon + 1, &end);
  if (end == nullptr || *end != '\0') return false;
  const double factor = 1.0 + pct / 100.0;
  bool matched = false;
  for (auto& [key, sample] : measured) {
    if (key.kernel == target || key.kernel + "/" + key.variant == target) {
      sample.cpu_ns *= factor;
      matched = true;
    }
  }
  if (matched) {
    std::printf("injected %+.0f%% slowdown into '%s'\n", pct, target.c_str());
  } else {
    std::fprintf(stderr, "inject_slowdown: no case matches '%s'\n",
                 target.c_str());
  }
  return matched;
}

/// Deterministic in-process test of the gate logic itself (registered as a
/// ctest): one set of measurements serves as its own baseline — the clean
/// compare must pass with ratio exactly 1 — then a +20% injection into one
/// kernel must be flagged even though the tolerance is 10%. No file I/O,
/// no dependence on machine speed.
int self_check(const std::vector<std::int64_t>& sizes, int reps) {
  std::printf("== regress --self_check ==\n");
  const Table baseline = measure(sizes, reps, nullptr);

  GateResult clean = apply_gate(baseline, baseline, /*tolerance=*/0.10,
                                /*min_abs_ns=*/1000.0);
  if (clean.regressions != 0 || clean.improvements != 0 ||
      clean.speed_ratio != 1.0) {
    std::printf("FAIL: self-compare not clean (ratio %.3f, %d regressions, "
                "%d improvements)\n",
                clean.speed_ratio, clean.regressions, clean.improvements);
    return 1;
  }
  std::printf("clean self-compare: ok (%zu cases)\n", clean.verdicts.size());

  Table injected = baseline;
  CJ_CHECK(apply_injection(injected, "hash_build:20"));
  GateResult gate = apply_gate(baseline, injected, /*tolerance=*/0.10,
                               /*min_abs_ns=*/1000.0);
  // Both hash_build variants were slowed at every size.
  const int expected = static_cast<int>(sizes.size()) * 2;
  if (gate.regressions != expected) {
    std::printf("FAIL: injected +20%% on hash_build, expected %d flagged, "
                "got %d\n",
                expected, gate.regressions);
    print_gate(gate, 0.10, 1000.0);
    return 1;
  }
  // The injection must not drag other kernels over the line via the
  // normalization (median ratio stays at the unslowed majority).
  for (const Verdict& v : gate.verdicts) {
    if (v.status == Status::kRegression && v.key.kernel != "hash_build") {
      std::printf("FAIL: '%s' flagged but was not injected\n",
                  v.key.to_string().c_str());
      return 1;
    }
  }
  std::printf("injected +20%% on hash_build: flagged %d/%d case(s)\n",
              gate.regressions, expected);

  // -- serve gate: synthetic tables, no files, no machine dependence.
  std::printf("\n-- serve gate --\n");
  ServeTable serve_base;
  serve_base[1] = ServeRow{10.0, 100.0, 40.0};
  serve_base[2] = ServeRow{18.0, 120.0, 70.0};
  serve_base[4] = ServeRow{30.0, 150.0, 90.0};
  serve_base[8] = ServeRow{40.0, 200.0, 140.0};

  ServeGateResult serve_clean =
      apply_serve_gate(serve_base, serve_base, /*tolerance=*/0.10,
                       /*min_abs_ms=*/1.0, /*min_abs_qps=*/0.5);
  if (serve_clean.regressions != 0 || serve_clean.improvements != 0 ||
      serve_clean.speed_ratio != 1.0) {
    std::printf("FAIL: serve self-compare not clean\n");
    print_serve_gate(serve_clean, 0.10);
    return 1;
  }
  std::printf("clean serve self-compare: ok (%zu checks)\n",
              serve_clean.verdicts.size());

  // A uniformly 1.5x-slower machine — every latency up, qps down by the
  // same factor — must normalize away completely.
  ServeTable uniform = serve_base;
  for (auto& [inflight, row] : uniform) {
    row.qps /= 1.5;
    row.p99_ms *= 1.5;
    row.wait_p99_ms *= 1.5;
  }
  ServeGateResult absorbed =
      apply_serve_gate(serve_base, uniform, 0.10, 1.0, 0.5);
  if (absorbed.regressions != 0) {
    std::printf("FAIL: uniform 1.5x slowdown not absorbed (ratio %.3f)\n",
                absorbed.speed_ratio);
    print_serve_gate(absorbed, 0.10);
    return 1;
  }
  std::printf("uniform 1.5x slowdown absorbed: ok (ratio %.3f)\n",
              absorbed.speed_ratio);

  // A single-row tail blowup must be flagged — and nothing else.
  ServeTable spiked = serve_base;
  spiked[4].p99_ms *= 1.4;
  ServeGateResult spike = apply_serve_gate(serve_base, spiked, 0.10, 1.0, 0.5);
  bool spike_ok = spike.regressions == 1;
  for (const ServeVerdict& v : spike.verdicts) {
    if (v.status == Status::kRegression &&
        (v.inflight != 4 || std::strcmp(v.metric, "p99_ms") != 0)) {
      spike_ok = false;
    }
  }
  if (!spike_ok) {
    std::printf("FAIL: +40%% p99 at inflight=4 not isolated\n");
    print_serve_gate(spike, 0.10);
    return 1;
  }
  std::printf("injected +40%% p99 at inflight=4: flagged exactly it\n");

  // A throughput collapse on one row — qps is higher-better, so the drop
  // itself must regress, not its reciprocal.
  ServeTable throttled = serve_base;
  throttled[2].qps *= 0.6;
  ServeGateResult drop =
      apply_serve_gate(serve_base, throttled, 0.10, 1.0, 0.5);
  bool drop_ok = drop.regressions == 1;
  for (const ServeVerdict& v : drop.verdicts) {
    if (v.status == Status::kRegression &&
        (v.inflight != 2 || std::strcmp(v.metric, "qps") != 0)) {
      drop_ok = false;
    }
  }
  if (!drop_ok) {
    std::printf("FAIL: -40%% qps at inflight=2 not isolated\n");
    print_serve_gate(drop, 0.10);
    return 1;
  }
  std::printf("injected -40%% qps at inflight=2: flagged exactly it\n");

  // -- plan gate: synthetic tables, same philosophy.
  std::printf("\n-- plan gate --\n");
  PlanTable plan_base;
  plan_base[{"chain", "planner"}] = PlanRow{0.5, 48.0};
  plan_base[{"chain", "worst"}] = PlanRow{0.8, 60.0};
  plan_base[{"star", "planner"}] = PlanRow{0.1, 0.7};
  plan_base[{"star", "worst"}] = PlanRow{0.4, 28.0};

  PlanGateResult plan_clean = apply_plan_gate(
      plan_base, plan_base, /*tolerance=*/0.10, /*min_abs_s=*/0.01,
      /*min_abs_mb=*/1.0);
  if (plan_clean.regressions != 0 || plan_clean.improvements != 0 ||
      plan_clean.speed_ratio != 1.0) {
    std::printf("FAIL: plan self-compare not clean\n");
    print_plan_gate(plan_clean, 0.10);
    return 1;
  }
  std::printf("clean plan self-compare: ok (%zu checks)\n",
              plan_clean.verdicts.size());

  // A uniformly 2x-slower machine shifts every time together and must
  // normalize away; the wire bytes it cannot touch stay clean too.
  PlanTable plan_slow = plan_base;
  for (auto& [key, row] : plan_slow) row.total_s *= 2.0;
  PlanGateResult plan_absorbed =
      apply_plan_gate(plan_base, plan_slow, 0.10, 0.01, 1.0);
  if (plan_absorbed.regressions != 0) {
    std::printf("FAIL: uniform 2x plan slowdown not absorbed (ratio %.3f)\n",
                plan_absorbed.speed_ratio);
    print_plan_gate(plan_absorbed, 0.10);
    return 1;
  }
  std::printf("uniform 2x slowdown absorbed: ok (ratio %.3f)\n",
              plan_absorbed.speed_ratio);

  // Extra wire traffic on one row is a plan-quality regression no machine
  // normalization may excuse — e.g. the DP starts picking a worse order.
  PlanTable plan_chatty = plan_base;
  plan_chatty[{"star", "planner"}].wire_mb = 14.0;
  PlanGateResult chatty =
      apply_plan_gate(plan_base, plan_chatty, 0.10, 0.01, 1.0);
  bool chatty_ok = chatty.regressions == 1;
  for (const PlanVerdict& v : chatty.verdicts) {
    if (v.status == Status::kRegression &&
        (v.row != "star/planner" || std::strcmp(v.metric, "wire_mb") != 0)) {
      chatty_ok = false;
    }
  }
  if (!chatty_ok) {
    std::printf("FAIL: star/planner wire blowup not isolated\n");
    print_plan_gate(chatty, 0.10);
    return 1;
  }
  std::printf("injected 20x wire on star/planner: flagged exactly it\nPASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cj::bench::pin_allocator_for_measurement();
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::string baseline_path = flags.get_string("baseline", "");
  const auto rows_flag = flags.get_int_list("rows", {});
  const int reps = static_cast<int>(flags.get_int("reps", 5));
  const double tolerance = flags.get_double("tolerance", 0.25);
  const double min_abs_ns = flags.get_double("min_abs_ns", 50000.0);
  const std::string inject = flags.get_string("inject_slowdown", "");
  const std::string write_baseline = flags.get_string("write_baseline", "");
  const bool run_self_check = flags.get_bool("self_check", false);
  const std::string report_out =
      flags.get_string("report_out", "REGRESS_report.json");
  const std::string profile_out =
      flags.get_string("profile_out", "REGRESS_profile.json");
  const std::string serve_baseline_path =
      flags.get_string("serve_baseline", "");
  const std::string serve_current_path = flags.get_string("serve_current", "");
  const double serve_min_abs_ms = flags.get_double("serve_min_abs_ms", 1.0);
  const double serve_min_abs_qps = flags.get_double("serve_min_abs_qps", 0.5);
  const std::string plan_baseline_path = flags.get_string("plan_baseline", "");
  const std::string plan_current_path = flags.get_string("plan_current", "");
  const double plan_min_abs_s = flags.get_double("plan_min_abs_s", 0.01);
  const double plan_min_abs_mb = flags.get_double("plan_min_abs_mb", 1.0);
  bench::check_unused_flags(flags);

  std::vector<std::int64_t> sizes(rows_flag.begin(), rows_flag.end());

  if (run_self_check) {
    if (sizes.empty()) sizes = {1 << 14};
    return self_check(sizes, reps);
  }

  if (!serve_baseline_path.empty() || !serve_current_path.empty()) {
    if (serve_baseline_path.empty() || serve_current_path.empty()) {
      std::fprintf(stderr,
                   "serve mode needs both --serve_baseline and "
                   "--serve_current\n");
      return 2;
    }
    std::string base_backend;
    std::string cur_backend;
    auto serve_base = load_serve(serve_baseline_path, &base_backend);
    auto serve_cur = load_serve(serve_current_path, &cur_backend);
    if (!serve_base.has_value() || serve_base->empty()) {
      std::fprintf(stderr, "cannot load serve baseline from %s\n",
                   serve_baseline_path.c_str());
      return 2;
    }
    if (!serve_cur.has_value() || serve_cur->empty()) {
      std::fprintf(stderr, "cannot load serve current from %s\n",
                   serve_current_path.c_str());
      return 2;
    }
    // Same refusal as the kernel gate: sim virtual seconds and rt wall
    // seconds are different quantities; the normalization would silently
    // absorb most of a backend switch and judge the residue as perf.
    if (base_backend != cur_backend) {
      std::fprintf(stderr,
                   "serve baseline %s is tagged backend=\"%s\" but current "
                   "%s is backend=\"%s\"; refusing to cross-compare\n",
                   serve_baseline_path.c_str(), base_backend.c_str(),
                   serve_current_path.c_str(), cur_backend.c_str());
      return 2;
    }
    std::printf("== serve-regression gate (%s vs %s, backend %s) ==\n",
                serve_current_path.c_str(), serve_baseline_path.c_str(),
                cur_backend.c_str());
    ServeGateResult result = apply_serve_gate(
        *serve_base, *serve_cur, tolerance, serve_min_abs_ms,
        serve_min_abs_qps);
    print_serve_gate(result, tolerance);
    write_serve_report(report_out, serve_baseline_path, serve_current_path,
                       result, tolerance);
    return result.regressions > 0 ? 1 : 0;
  }

  if (!plan_baseline_path.empty() || !plan_current_path.empty()) {
    if (plan_baseline_path.empty() || plan_current_path.empty()) {
      std::fprintf(stderr,
                   "plan mode needs both --plan_baseline and "
                   "--plan_current\n");
      return 2;
    }
    std::string base_backend;
    std::string cur_backend;
    auto plan_base = load_plan(plan_baseline_path, &base_backend);
    auto plan_cur = load_plan(plan_current_path, &cur_backend);
    if (!plan_base.has_value() || plan_base->empty()) {
      std::fprintf(stderr, "cannot load plan baseline from %s\n",
                   plan_baseline_path.c_str());
      return 2;
    }
    if (!plan_cur.has_value() || plan_cur->empty()) {
      std::fprintf(stderr, "cannot load plan current from %s\n",
                   plan_current_path.c_str());
      return 2;
    }
    if (base_backend != cur_backend) {
      std::fprintf(stderr,
                   "plan baseline %s is tagged backend=\"%s\" but current "
                   "%s is backend=\"%s\"; refusing to cross-compare\n",
                   plan_baseline_path.c_str(), base_backend.c_str(),
                   plan_current_path.c_str(), cur_backend.c_str());
      return 2;
    }
    std::printf("== plan-regression gate (%s vs %s, backend %s) ==\n",
                plan_current_path.c_str(), plan_baseline_path.c_str(),
                cur_backend.c_str());
    PlanGateResult result =
        apply_plan_gate(*plan_base, *plan_cur, tolerance, plan_min_abs_s,
                        plan_min_abs_mb);
    print_plan_gate(result, tolerance);
    write_plan_report(report_out, plan_baseline_path, plan_current_path,
                      result, tolerance);
    return result.regressions > 0 ? 1 : 0;
  }

  if (!write_baseline.empty()) {
    if (sizes.empty()) sizes = {1 << 16, 1 << 20, 1 << 22};
    write_baseline_file(write_baseline, measure(sizes, reps, nullptr));
    return 0;
  }

  if (baseline_path.empty()) {
    std::fprintf(stderr,
                 "usage: regress --baseline=BENCH_kernels.json "
                 "[--rows=...] [--reps=N] [--tolerance=F] [--min_abs_ns=N]\n"
                 "       regress --serve_baseline=BENCH_serve.json "
                 "--serve_current=BENCH_serve.json\n"
                 "       regress --plan_baseline=BENCH_plan.json "
                 "--plan_current=BENCH_plan.json\n"
                 "       regress --write_baseline=PATH [--rows=...]\n"
                 "       regress --self_check\n");
    return 2;
  }
  std::string baseline_backend;
  auto baseline = load_baseline(baseline_path, &baseline_backend);
  if (!baseline.has_value() || baseline->empty()) {
    std::fprintf(stderr, "cannot load baseline from %s\n",
                 baseline_path.c_str());
    return 2;
  }
  // The gate re-measures sim-backend kernel costs; judging them against a
  // wall-clock (rt) baseline would compare different quantities and either
  // mask real regressions or flag phantom ones. Refuse outright.
  if (baseline_backend != "sim") {
    std::fprintf(stderr,
                 "baseline %s is tagged backend=\"%s\" but this gate "
                 "measures sim-backend kernels; refusing to cross-compare "
                 "(re-create the baseline without --backend=rt)\n",
                 baseline_path.c_str(), baseline_backend.c_str());
    return 2;
  }
  if (sizes.empty()) {
    // Default: every size the baseline covers.
    std::vector<std::int64_t> all;
    for (const auto& [key, sample] : *baseline) all.push_back(key.rows);
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    sizes = std::move(all);
  } else {
    // Gate only the sizes we will measure.
    for (auto it = baseline->begin(); it != baseline->end();) {
      const std::int64_t r = it->first.rows;
      if (std::find(sizes.begin(), sizes.end(), r) == sizes.end()) {
        it = baseline->erase(it);
      } else {
        ++it;
      }
    }
  }

  std::printf("== perf-regression gate (median of %d, thread CPU time) ==\n",
              reps);
  obs::prof::KernelProfiler profiler;
  std::printf("counters: %s\n\n", profiler.hardware() ? "hw" : "fallback");
  Table measured = measure(sizes, reps, &profiler);
  if (!inject.empty() && !apply_injection(measured, inject)) return 2;

  // Cross-tier refusal, the SIMD sibling of the backend refusal above: a
  // baseline measured at one dispatch tier (say avx2) judged against a
  // re-measurement at another (a scalar-forced CI job, a different
  // machine) compares different code paths, and the machine-speed
  // normalization would silently absorb most of the difference. Refuse;
  // pre-tier baseline rows (no "tier" key) are exempt.
  for (const auto& [key, sample] : measured) {
    auto it = baseline->find(key);
    if (it == baseline->end() || it->second.tier.empty()) continue;
    if (it->second.tier != sample.tier) {
      std::fprintf(stderr,
                   "baseline case %s was measured at SIMD tier \"%s\" but "
                   "this run dispatches to \"%s\"; refusing to cross-compare "
                   "(re-create the baseline at this tier, or match it via "
                   "CJ_SIMD=%s)\n",
                   key.to_string().c_str(), it->second.tier.c_str(),
                   sample.tier.c_str(), it->second.tier.c_str());
      return 2;
    }
  }

  GateResult result = apply_gate(*baseline, measured, tolerance, min_abs_ns);
  print_gate(result, tolerance, min_abs_ns);
  write_report(report_out, baseline_path, result, tolerance, min_abs_ns);
  if (!profile_out.empty()) {
    const std::string json = profiler.snapshot().to_json();
    std::FILE* f = std::fopen(profile_out.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("wrote %s\n", profile_out.c_str());
    }
  }
  return result.regressions > 0 ? 1 : 0;
}
