// Figure 3: decomposition of the host-CPU overhead of network I/O at
// 10 Gb/s — everything-on-CPU (kernel TCP) vs TCP-offload-engine vs RDMA.
//
// Expected shape (paper Sec. III-A/B, after Foong et al.): data copying is
// ~half of the kernel-TCP cost, protocol processing only a minor slice — so
// a TOE barely helps; only RDMA (zero copy + direct placement + full
// offload) collapses the overhead. The analytical model is cross-checked
// against the tcpsim substrate's measured per-tag core-busy ledger, which
// bills the same constants through an actual simulated transfer.
//
// The second half carries the figure's *consequence* (Sec. III/V): with
// RDMA's overhead gone, join work overlaps the ring transfers. A traced
// 3-host cyclo-join measures that overlap directly from the span trace.
#include "harness.h"
#include "model/cost_model.h"
#include "net/link.h"
#include "obs/analysis.h"
#include "sim/core_pool.h"
#include "sim/engine.h"
#include "tcpsim/tcp.h"

namespace {

using namespace cj;

void print_bar(const char* label, double value, double reference_total) {
  const double pct = value / reference_total * 100.0;
  std::printf("  %-18s %6.2f ns/B  %5.1f%%  ", label, value, pct);
  const int blocks = static_cast<int>(pct / 2.0 + 0.5);
  for (int i = 0; i < blocks; ++i) std::printf("#");
  std::printf("\n");
}

/// Pushes `bytes` through one simulated kernel-TCP connection and returns
/// the measured host CPU ns per payload byte (both endpoints).
double measured_tcp_ns_per_byte(std::uint64_t bytes) {
  sim::Engine engine;
  sim::CorePool tx_cores(engine, 4);
  sim::CorePool rx_cores(engine, 4);
  net::DuplexLink link(engine, net::LinkSpec{}, "fig3");
  tcpsim::TcpConnection conn(engine, tx_cores, rx_cores, link.forward, {});

  std::vector<std::byte> payload(1 << 20);
  auto sender = [&]() -> sim::Task<void> {
    for (std::uint64_t sent = 0; sent < bytes; sent += payload.size()) {
      co_await conn.send(payload);
    }
    conn.close();
  };
  auto receiver = [&]() -> sim::Task<void> {
    std::vector<std::byte> sink(1 << 20);
    for (std::uint64_t got = 0; got < bytes; got += sink.size()) {
      co_await conn.recv(sink);
    }
  };
  engine.spawn(sender(), "sender");
  engine.spawn(receiver(), "receiver");
  engine.run();
  engine.check_all_complete();

  const double busy =
      static_cast<double>(tx_cores.busy_total() + rx_cores.busy_total());
  return busy / static_cast<double>(bytes);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::int64_t volume_mb = flags.get_int("volume_mb", 256);
  const std::int64_t scale = flags.get_int("scale", 64);
  bench::BenchJson json(flags, "fig03_cpu_overhead");
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Figure 3 — I/O overhead decomposition at 10 Gb/s",
      "copying ~50% of kernel-TCP CPU cost; stack offload (TOE) barely "
      "helps; only RDMA removes the overhead", 1);

  const model::CostModelParams params;
  const auto tcp = model::cpu_overhead(model::StackKind::kKernelTcp, params);
  const auto toe = model::cpu_overhead(model::StackKind::kToeOffload, params);
  const auto rdma = model::cpu_overhead(model::StackKind::kRdma, params);
  const double ref = tcp.total();

  std::printf("everything on CPU (kernel TCP):      total %5.2f ns/B = 100%%\n",
              tcp.total());
  print_bar("data copying", tcp.data_copying, ref);
  print_bar("context switches", tcp.context_switches, ref);
  print_bar("network stack", tcp.network_stack, ref);
  print_bar("driver", tcp.driver, ref);

  std::printf("\nnetwork stack on NIC (TOE):          total %5.2f ns/B = %4.1f%%\n",
              toe.total(), toe.total() / ref * 100.0);
  print_bar("data copying", toe.data_copying, ref);
  print_bar("context switches", toe.context_switches, ref);
  print_bar("driver", toe.driver, ref);

  std::printf("\nRDMA:                                total %5.2f ns/B = %4.1f%%\n",
              rdma.total(), rdma.total() / ref * 100.0);
  print_bar("wr posting", rdma.driver, ref);

  // Rule-of-thumb check: 1 GHz per 1 Gb/s on the era CPU (Sec. III-A).
  // ns/B at 2.33 GHz -> cycles/B; 1 Gb/s = 0.125e9 B/s.
  const double cycles_per_byte = tcp.total() * 2.33;
  const double ghz_per_gbps = cycles_per_byte * 0.125;
  std::printf("\nrule of thumb: %.2f GHz per Gb/s of kernel TCP (paper: ~1)\n",
              ghz_per_gbps);

  const double measured = measured_tcp_ns_per_byte(
      static_cast<std::uint64_t>(volume_mb) * 1024 * 1024);
  std::printf("cross-check vs tcpsim substrate: measured %.2f ns/B "
              "(model %.2f ns/B)\n", measured, tcp.total());

  json.row({{"tcp_ns_per_byte", tcp.total()},
            {"toe_ns_per_byte", toe.total()},
            {"rdma_ns_per_byte", rdma.total()},
            {"measured_tcp_ns_per_byte", measured}});

  // The consequence of the collapsed overhead: on RDMA the join keeps the
  // cores while the ring moves data. A traced 3-host run measures, per
  // host, how much join-tagged core time falls inside the transmitter's
  // send windows (docs/OBSERVABILITY.md).
  std::printf("\noverlap check — 3-host cyclo-join (RDMA ring, traced, "
              "workload at 1/%lld):\n", static_cast<long long>(scale));
  auto [r, s] = bench::uniform_pair(bench::kRowsFig9, scale);
  cyclo::ClusterConfig cfg = bench::paper_cluster(3, scale);
  cfg.trace.enabled = true;
  cyclo::CycloJoin cyclo(cfg, cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kHashJoin});
  const cyclo::RunReport rep = cyclo.run(r, s);
  std::printf("  %4s  %12s  %14s  %14s  %7s\n", "host", "transfer[ms]",
              "join busy[ms]", "in transfer[ms]", "ratio");
  for (const auto& ov : obs::overlap_by_host(*rep.trace)) {
    std::printf("  %4d  %12.3f  %14.3f  %14.3f  %7.2f\n", ov.host,
                to_seconds(ov.transfer_time) * 1e3,
                to_seconds(ov.join_busy_total) * 1e3,
                to_seconds(ov.join_busy_in_transfer) * 1e3, ov.ratio);
    json.row({{"host", static_cast<double>(ov.host)},
              {"transfer_ms", to_seconds(ov.transfer_time) * 1e3},
              {"join_busy_ms", to_seconds(ov.join_busy_total) * 1e3},
              {"in_transfer_ms", to_seconds(ov.join_busy_in_transfer) * 1e3},
              {"overlap_ratio", ov.ratio}});
  }
  std::printf("  ratio > 0: cores keep joining during transfers — the "
              "network cost RDMA leaves behind is hidden (paper Sec. V)\n");
  json.set_metrics(rep.metrics);
  json.write();
  return 0;
}
