// Bench: multi-query serving throughput under open-loop arrivals.
//
// Queries arrive Poisson-style (seeded exponential inter-arrivals) from two
// weighted tenants and flow through serve::QueryScheduler onto one
// roundabout. The sweep varies the wave width (max_inflight): width 1
// degenerates to one rotation per query, wider waves multiplex queries onto
// a shared rotation and pay the rotating relation's network cost once per
// wave — so queries/sec rises and bytes_ratio (wire bytes per retired
// query, relative to a solo run) falls below 1.
//
// Works on both backends: --backend=sim reports virtual time on the
// calibrated cluster, --backend=rt runs the same protocol on real threads
// and reports this machine's wall clock. --short shrinks the workload for
// CI smoke runs.
#include <random>

#include "harness.h"
#include "serve/scheduler.h"

int main(int argc, char** argv) {
  using namespace cj;
  bench::pin_allocator_for_measurement();
  auto flags = bench::parse_flags_or_die(argc, argv);
  const cyclo::Backend backend = bench::backend_flag(flags);
  const bool short_mode = flags.get_bool("short", false);
  const std::int64_t scale =
      flags.get_int("scale", short_mode ? 256 : bench::kDefaultScale);
  const int hosts = static_cast<int>(flags.get_int("hosts", 4));
  const std::int64_t num_queries =
      flags.get_int("queries", short_mode ? 12 : 48);
  const std::int64_t mean_gap_us = flags.get_int("mean_gap_us", 2'000);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 20260808));
  const auto widths = flags.get_int_list(
      "inflight", short_mode ? std::vector<std::int64_t>{1, 4}
                             : std::vector<std::int64_t>{1, 2, 4, 8});
  bench::BenchJson json(flags, "serve");
  json.set_backend(backend);
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Serving — queries/sec and latency vs wave width (open-loop arrivals)",
      "queries hooked into one rotating hot set share its revolution: wider "
      "waves amortize the wire cost across queries (Data Cyclotron "
      "direction, paper Sec. VII)",
      scale);

  auto [r, s0] = bench::uniform_pair(bench::kRowsFig9, scale);
  // A small catalog of stationary tables; queries cycle through it.
  std::vector<rel::Relation> tables;
  for (int t = 0; t < 6; ++t) {
    tables.push_back(rel::generate({.rows = s0.rows() / 2,
                                    .key_domain = r.rows(),
                                    .seed = 100 + static_cast<std::uint64_t>(t)},
                                   "S" + std::to_string(t),
                                   static_cast<std::uint64_t>(t) + 2));
  }

  cyclo::ClusterConfig cluster = bench::paper_cluster(hosts, scale);
  cluster.backend = backend;
  const cyclo::JoinSpec spec{.algorithm = cyclo::Algorithm::kHashJoin};

  // Solo baseline: wire bytes one query pays for its own revolution.
  const cyclo::RunReport solo = cyclo::CycloJoin(cluster, spec).run(r, tables[0]);
  const double solo_bytes = static_cast<double>(solo.bytes_on_wire);

  std::printf("%8s  %10s  %10s  %10s  %12s  %6s  %11s\n", "inflight", "q/s",
              "p50[ms]", "p99[ms]", "wait_p99[ms]", "waves", "bytes_ratio");
  obs::MetricsSnapshot last_metrics;
  for (const std::int64_t width : widths) {
    serve::ServeConfig cfg;
    cfg.cluster = cluster;
    cfg.spec = spec;
    cfg.max_inflight = static_cast<int>(width);
    cfg.max_queue_depth = static_cast<int>(num_queries) + 8;
    serve::QueryScheduler scheduler(cfg);

    // Identical arrival sequence for every width: seeded open loop.
    std::mt19937_64 rng(seed);
    std::exponential_distribution<double> gap(
        1.0 / (static_cast<double>(mean_gap_us) * 1'000.0));
    SimTime arrival = 0;
    for (std::int64_t q = 0; q < num_queries; ++q) {
      arrival += static_cast<SimTime>(gap(rng));
      const bool gold = (rng() % 4) != 0;  // 3:1 gold-to-bronze mix
      scheduler.submit(
          serve::QuerySpec{
              .stationary = &tables[static_cast<std::size_t>(q) % tables.size()],
              .tenant = gold ? "gold" : "bronze",
              .weight = gold ? 3.0 : 1.0},
          arrival);
    }
    const serve::ServeReport report = scheduler.drain(r);

    const std::int64_t retired = report.metrics.counters.at("serve.retired");
    const obs::HistogramSummary& lat =
        report.metrics.histograms.at("serve.latency_ns");
    const obs::HistogramSummary& wait =
        report.metrics.histograms.at("serve.queue_wait_ns");
    const double qps =
        static_cast<double>(retired) / to_seconds(report.end_time);
    // Wire bytes per retired query, relative to what a solo run moves.
    const double bytes_ratio =
        solo_bytes > 0.0 ? static_cast<double>(report.bytes_on_wire) /
                               (solo_bytes * static_cast<double>(retired))
                         : 0.0;

    std::printf("%8lld  %10.1f  %10.2f  %10.2f  %12.2f  %6d  %11.3f\n",
                static_cast<long long>(width), qps,
                static_cast<double>(lat.p50) / 1e6,
                static_cast<double>(lat.p99) / 1e6,
                static_cast<double>(wait.p99) / 1e6, report.waves, bytes_ratio);
    json.row({{"inflight", static_cast<double>(width)},
              {"qps", qps},
              {"p50_ms", static_cast<double>(lat.p50) / 1e6},
              {"p99_ms", static_cast<double>(lat.p99) / 1e6},
              {"wait_p99_ms", static_cast<double>(wait.p99) / 1e6},
              {"waves", static_cast<double>(report.waves)},
              {"bytes_ratio", bytes_ratio}});
    last_metrics = report.metrics;
  }
  json.set_metrics(std::move(last_metrics));
  json.write();

  std::printf("\nwider waves amortize the revolution: bytes_ratio ~1 at "
              "width 1, well below 1 once queries share rotations\n");
  return 0;
}
