// Figure 8: scale-up — each node adds 3.2 GB to the data set (1.6 GB per
// relation per node), partitioned hash join.
//
// Expected shape (paper Sec. V-C): the setup phase becomes
// size-independent (the per-host volume is constant) while the join phase
// grows linearly with |R| — confirming Equation (*): the join phase costs
// |R| hash lookups per host no matter how the data is spread.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::int64_t scale = flags.get_int("scale", bench::kDefaultScale);
  const auto nodes = flags.get_int_list("nodes", {1, 2, 3, 4, 5, 6});
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Figure 8 — scale-up, +3.2 GB per node, partitioned hash join",
      "setup constant (per-host volume fixed); join phase linear in |R|", scale);

  std::printf("%6s  %12s  %10s  %10s  %10s  %12s\n", "nodes", "volume",
              "setup[s]", "join[s]", "sync[s]", "matches");
  for (const auto n : nodes) {
    auto [r, s] = bench::uniform_pair(
        bench::kRowsPerNodeFig8 * static_cast<std::uint64_t>(n), scale);
    cyclo::CycloJoin cyclo(bench::paper_cluster(static_cast<int>(n), scale),
                           cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kHashJoin});
    const cyclo::RunReport rep = cyclo.run(r, s);
    SimDuration sync = 0;
    for (const auto& h : rep.hosts) sync = std::max(sync, h.sync);
    std::printf("%6lld  %12s  %10.3f  %10.3f  %10.3f  %12llu\n",
                static_cast<long long>(n),
                human_bytes(r.bytes() + s.bytes()).c_str(),
                bench::seconds(rep.setup_wall), bench::seconds(rep.join_wall - sync),
                bench::seconds(sync),
                static_cast<unsigned long long>(rep.matches));
  }
  std::printf("\npaper (full scale): 3.2 GB/1 node ... 19.2 GB/6 nodes; setup "
              "flat, join linear, no sync\n");
  return 0;
}
