// Figure 12: hash join over RDMA versus kernel TCP, varying the number of
// join threads (1..4) per quad-core host. 2 x 6.7 GB over 6 hosts.
//
// Expected shape (paper Sec. V-G): RDMA wins in every configuration. With
// few join threads, TCP's stack work steals the remaining cores and still
// cannot fully hide synchronization; with all four cores joining, TCP's
// copies, context switches and cache pollution collide head-on with the
// join and the gap is largest.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::int64_t scale = flags.get_int("scale", bench::kDefaultScale);
  const int ring = static_cast<int>(flags.get_int("ring", 6));
  const auto threads = flags.get_int_list("threads", {1, 2, 3, 4});
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Figure 12 — hash join on RDMA vs kernel TCP, 1..4 join threads",
      "RDMA outperforms TCP everywhere; the gap is largest when all cores "
      "compute the join", scale);

  auto [r, s] = bench::uniform_pair(bench::kRowsFig12, scale);
  std::printf("|R| = |S| = %llu rows (%s per relation), %d hosts\n\n",
              static_cast<unsigned long long>(r.rows()),
              human_bytes(r.bytes()).c_str(), ring);

  std::printf("%8s  %12s  %12s  %12s  %12s\n", "threads", "tcp-join[s]",
              "tcp-sync[s]", "rdma-join[s]", "rdma-sync[s]");
  for (const auto t : threads) {
    cyclo::JoinSpec spec{.algorithm = cyclo::Algorithm::kHashJoin,
                         .join_threads = static_cast<int>(t)};

    cyclo::CycloJoin tcp(bench::paper_cluster_tcp(ring, scale), spec);
    const cyclo::RunReport rep_tcp = tcp.run(r, s);
    cyclo::CycloJoin rdma(bench::paper_cluster(ring, scale), spec);
    const cyclo::RunReport rep_rdma = rdma.run(r, s);
    CJ_CHECK(rep_tcp.matches == rep_rdma.matches);

    SimDuration tcp_sync = 0;
    for (const auto& h : rep_tcp.hosts) tcp_sync = std::max(tcp_sync, h.sync);
    SimDuration rdma_sync = 0;
    for (const auto& h : rep_rdma.hosts) rdma_sync = std::max(rdma_sync, h.sync);

    std::printf("%8lld  %12.3f  %12.3f  %12.3f  %12.3f\n",
                static_cast<long long>(t),
                bench::seconds(rep_tcp.join_wall - tcp_sync),
                bench::seconds(tcp_sync),
                bench::seconds(rep_rdma.join_wall - rdma_sync),
                bench::seconds(rdma_sync));
  }
  std::printf("\npaper (full scale): RDMA faster at every thread count; TCP "
              "cannot hide sync even with 3 cores free for communication\n");
  return 0;
}
