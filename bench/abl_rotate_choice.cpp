// Ablation: which relation should rotate?
//
// Paper Sec. IV-B: "this may be easier to achieve if the smaller of the two
// input relations is chosen as the one that is kept rotating." Rotating the
// smaller relation moves fewer bytes per revolution, so the join entity is
// easier to keep fed. We join |R| = 4 x |S| both ways around.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::int64_t scale = flags.get_int("scale", bench::kDefaultScale);
  const int ring = static_cast<int>(flags.get_int("ring", 6));
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Ablation — rotate the smaller vs the larger relation (|big| = 4x|small|)",
      "rotating the smaller relation moves fewer bytes and hides the network "
      "more easily (paper Sec. IV-B)", scale);

  const std::uint64_t small_rows =
      bench::kRowsFig9 / static_cast<std::uint64_t>(scale);
  const std::uint64_t big_rows = small_rows * 4;
  auto small = rel::generate(
      {.rows = small_rows, .key_domain = small_rows, .seed = 1}, "small", 1);
  auto big = rel::generate(
      {.rows = big_rows, .key_domain = small_rows, .seed = 2}, "big", 2);

  std::printf("%24s  %10s  %10s  %10s  %12s\n", "rotating relation",
              "setup[s]", "join[s]", "sync[s]", "wire-bytes");
  for (const bool rotate_small : {true, false}) {
    // Sort-merge stresses the network hardest (fast join phase).
    cyclo::CycloJoin cyclo(
        bench::paper_cluster(ring, scale),
        cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kSortMergeJoin});
    const cyclo::RunReport rep =
        rotate_small ? cyclo.run(small, big) : cyclo.run(big, small);
    SimDuration sync = 0;
    for (const auto& h : rep.hosts) sync = std::max(sync, h.sync);
    std::printf("%24s  %10.3f  %10.3f  %10.3f  %12s\n",
                rotate_small ? "small (recommended)" : "large",
                bench::seconds(rep.setup_wall), bench::seconds(rep.join_wall - sync),
                bench::seconds(sync), human_bytes(rep.bytes_on_wire).c_str());
  }
  std::printf("\nboth orders compute the same join; the rotation choice only "
              "changes traffic and sync\n");
  return 0;
}
