// Ablation: memory-registration strategy.
//
// Paper Sec. III-C: "the registration process is rather CPU intensive ...
// the cost of registration renders on-demand allocation and registration of
// memory buffers infeasible." The Data Roundabout therefore registers its
// ring buffers once and reuses them. This bench quantifies that choice on
// the simulated RNIC: registering every transfer's buffer on demand versus
// one up-front registration, across transfer-unit sizes.
#include "harness.h"
#include "net/link.h"
#include "rdma/verbs.h"
#include "sim/core_pool.h"
#include "sim/engine.h"

namespace {

using namespace cj;

struct Outcome {
  double seconds;
  double reg_cpu_seconds;
};

Outcome run(std::uint64_t chunk, std::uint64_t messages, bool register_once) {
  sim::Engine engine;
  sim::CorePool tx_cores(engine, 4);
  sim::CorePool rx_cores(engine, 4);
  net::DuplexLink link(engine, net::LinkSpec{}, "mr");
  rdma::Device tx_dev(engine, tx_cores, {}, "tx");
  rdma::Device rx_dev(engine, rx_cores, {}, "rx");
  rdma::CompletionQueue tx_scq(engine, 4096), tx_rcq(engine, 4096);
  rdma::CompletionQueue rx_scq(engine, 4096), rx_rcq(engine, 4096);
  rdma::QueuePair& tx_qp = tx_dev.create_qp(&tx_scq, &tx_rcq);
  rdma::QueuePair& rx_qp = rx_dev.create_qp(&rx_scq, &rx_rcq);
  rdma::connect(tx_qp, rx_qp, link.forward, link.backward);

  std::vector<std::byte> send_buf(chunk);
  std::vector<std::byte> recv_buf(chunk * 4);

  SimTime elapsed = 0;
  auto driver = [&]() -> sim::Task<void> {
    const SimTime start = engine.now();
    rdma::MemoryRegion* recv_mr = co_await rx_dev.pd().register_memory(recv_buf);
    for (int i = 0; i < 4; ++i) {
      rdma::WorkRequest wr;
      wr.wr_id = static_cast<std::uint64_t>(i);
      wr.mr = recv_mr;
      wr.offset = static_cast<std::size_t>(i) * chunk;
      wr.length = chunk;
      CJ_CHECK(rx_qp.post_recv(wr).is_ok());
    }

    rdma::MemoryRegion* send_mr = nullptr;
    if (register_once) send_mr = co_await tx_dev.pd().register_memory(send_buf);
    for (std::uint64_t m = 0; m < messages; ++m) {
      if (!register_once) {
        // On-demand: pin + translate for every transfer, then tear down.
        send_mr = co_await tx_dev.pd().register_memory(send_buf);
      }
      rdma::WorkRequest wr;
      wr.wr_id = m;
      wr.mr = send_mr;
      wr.length = chunk;
      CJ_CHECK(tx_qp.post_send(wr).is_ok());
      co_await tx_scq.next();
      const rdma::Completion c = co_await rx_rcq.next();
      rdma::WorkRequest repost;
      repost.wr_id = c.wr_id;
      repost.mr = recv_mr;
      repost.offset = static_cast<std::size_t>(c.wr_id) * chunk;
      repost.length = chunk;
      CJ_CHECK(rx_qp.post_recv(repost).is_ok());
      if (!register_once) tx_dev.pd().deregister(send_mr);
    }
    elapsed = engine.now() - start;
    tx_qp.close();
    rx_qp.close();
  };
  engine.spawn(driver(), "driver");
  engine.run();
  engine.check_all_complete();
  return Outcome{to_seconds(elapsed),
                 to_seconds(tx_cores.busy_for("mr-reg"))};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::int64_t messages = flags.get_int("messages", 512);
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Ablation — register-once vs register-per-transfer (simulated RNIC)",
      "registration is CPU-intensive; on-demand registration is infeasible "
      "on the data path (paper Sec. III-C)", 1);

  std::printf("%10s  %14s  %14s  %10s  %16s\n", "chunk", "once[s]",
              "per-xfer[s]", "slowdown", "reg-cpu/xfer");
  for (const std::uint64_t chunk : {4096ULL, 65536ULL, 1048576ULL, 16777216ULL}) {
    const Outcome once = run(chunk, static_cast<std::uint64_t>(messages), true);
    const Outcome per = run(chunk, static_cast<std::uint64_t>(messages), false);
    std::printf("%10s  %14.4f  %14.4f  %9.2fx  %13.1f us\n",
                human_bytes(chunk).c_str(), once.seconds, per.seconds,
                per.seconds / once.seconds,
                per.reg_cpu_seconds / static_cast<double>(messages) * 1e6);
  }
  std::printf("\nthe roundabout registers ring buffers and chunk slabs exactly "
              "once per run and reuses them for every transfer\n");
  return 0;
}
