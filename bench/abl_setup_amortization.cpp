// Ablation: setup-cost amortization — hash join vs sort-merge join as the
// ring grows beyond the paper's 6-node testbed.
//
// Paper Sec. V-E predicts: "we expect that [sort-merge join] would overpass
// [the hash join] in Data Roundabout configurations of ~30 nodes upward
// (i.e., for data volumes >~ 100 GB)" — the one-time sort investment is
// amortized over more in-memory merge passes while the hash join's probe
// phase dominates at scale. The paper could not run this (6 RDMA machines);
// the simulator can. Scale-up workload: +1.6 GB per relation per node.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::int64_t scale = flags.get_int("scale", 256);
  const auto nodes = flags.get_int_list("nodes", {2, 6, 12, 18, 24, 30, 36});
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Ablation — hash vs sort-merge total time on rings beyond the testbed",
      "the paper predicts sort-merge overtakes hash at ~30 nodes / ~100 GB "
      "(extrapolated; simulated here)", scale);

  std::printf("%6s  %12s  %12s  %12s  %10s\n", "nodes", "volume",
              "hash[s]", "sortmerge[s]", "winner");
  for (const auto n : nodes) {
    auto [r, s] = bench::uniform_pair(
        bench::kRowsPerNodeFig8 * static_cast<std::uint64_t>(n), scale);

    cyclo::CycloJoin hash(bench::paper_cluster(static_cast<int>(n), scale),
                          cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kHashJoin});
    const cyclo::RunReport rep_hash = hash.run(r, s);

    cyclo::CycloJoin merge(
        bench::paper_cluster(static_cast<int>(n), scale),
        cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kSortMergeJoin});
    const cyclo::RunReport rep_merge = merge.run(r, s);
    CJ_CHECK(rep_hash.matches == rep_merge.matches);

    const double hash_total = bench::seconds(rep_hash.setup_wall + rep_hash.join_wall);
    const double merge_total =
        bench::seconds(rep_merge.setup_wall + rep_merge.join_wall);
    std::printf("%6lld  %12s  %12.3f  %12.3f  %10s\n", static_cast<long long>(n),
                human_bytes(r.bytes() + s.bytes()).c_str(), hash_total,
                merge_total, hash_total <= merge_total ? "hash" : "sort-merge");
  }
  std::printf("\n(with highly tuned kernels — Kim et al. [17] — the paper "
              "expects the crossover to move to much smaller rings)\n");
  return 0;
}
