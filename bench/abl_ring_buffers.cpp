// Ablation: ring-buffer provisioning.
//
// The paper attributes two roles to the statically allocated ring buffers:
// large transfer units keep per-message overhead negligible (Sec. III-C)
// and buffer depth absorbs speed differences between hosts (Sec. V-D).
// This sweep varies both dimensions and reports join-phase wall and sync
// time on the 6-host hash-join workload.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::int64_t scale = flags.get_int("scale", bench::kDefaultScale);
  const int ring = static_cast<int>(flags.get_int("ring", 6));
  const auto counts = flags.get_int_list("buffers", {2, 4, 8, 16, 32});
  const auto sizes_kb = flags.get_int_list("size_kb", {8, 32, 128});
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Ablation — ring buffer count x element size (hash join, 6 hosts)",
      "too few/too small buffers stall the join entity (sync); depth "
      "absorbs jitter", scale);

  auto [r, s] = bench::uniform_pair(bench::kRowsFig7, scale);

  std::printf("%8s  %10s  %10s  %10s  %12s\n", "buffers", "size", "join[s]",
              "sync[s]", "wire-msgs");
  for (const auto size_kb : sizes_kb) {
    for (const auto count : counts) {
      cyclo::ClusterConfig cfg = bench::paper_cluster(ring, scale);
      cfg.node.num_buffers = static_cast<int>(count);
      cfg.node.buffer_bytes = static_cast<std::size_t>(size_kb) * 1024;
      cyclo::CycloJoin cyclo(cfg,
                             cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kHashJoin});
      const cyclo::RunReport rep = cyclo.run(r, s);
      SimDuration sync = 0;
      for (const auto& h : rep.hosts) sync = std::max(sync, h.sync);
      std::printf("%8lld  %10s  %10.3f  %10.3f  %12llu\n",
                  static_cast<long long>(count),
                  human_bytes(static_cast<std::uint64_t>(size_kb) * 1024).c_str(),
                  bench::seconds(rep.join_wall - sync), bench::seconds(sync),
                  static_cast<unsigned long long>(rep.bytes_on_wire /
                                                  cfg.node.buffer_bytes));
    }
    std::printf("\n");
  }
  return 0;
}
