// Ablation: what fault tolerance costs when nothing goes wrong, and what
// recovery costs when something does.
//
// The paper's protocol (Sec. III) assumes a reliable fabric and fail-free
// hosts. This harness measures the resilient Data Roundabout variant
// (frame headers, retire acks, origin re-injection, crash bypass — see
// docs/FAULTS.md) against the baseline on the same workload:
//
//   none        fault-free run of the *baseline* protocol
//   clean       fault-free run with resilience armed (frames + acks only;
//               the injector is enabled by a 1.0x no-op slowdown)
//   repl-clean  fault-free run with resilience + ring-neighbor replication
//               armed — the pure cost of streaming every S_i and R slab
//               one hop during the replication phase
//   transient   seeded message drops + corruptions on every link
//   crash       one host fails at join start; survivors splice the ring
//               and finish degraded
//   crash+repl  same crash with replication on: the successor adopts the
//               dead host's partition and the result is the EXACT R ⋈ S
//
// Reported makespans are join-phase wall clock; crash rows also show how
// many R/S rows the dead host took with it (0/0 when recovered) and the
// replica bytes shipped.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::int64_t scale = flags.get_int("scale", bench::kDefaultScale);
  const double drop = flags.get_double("drop", 0.01);
  const double corrupt = flags.get_double("corrupt", 0.01);
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto rings = flags.get_int_list("rings", {3, 4, 5, 6});
  // The retire-ack timeout must exceed the worst-case chunk round trip
  // (full revolution including per-hop join time) or healthy chunks get
  // re-injected spuriously, wasting a revolution of bandwidth each.
  const std::int64_t ack_ms = flags.get_int("ack_timeout_ms", 100);
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Ablation — fault-recovery overhead (hash join)",
      "resilience is ~free when idle; recovery costs bandwidth, not "
      "correctness (extension of paper Sec. III)", scale);

  auto [r, s] = bench::uniform_pair(bench::kRowsFig7, scale);
  std::printf("transient faults: drop %.2f%%, corrupt %.2f%% per message, "
              "seed %llu\n\n",
              drop * 100.0, corrupt * 100.0,
              static_cast<unsigned long long>(seed));

  std::printf("%5s  %-10s  %10s  %9s  %8s  %9s  %9s  %10s  %14s\n", "ring",
              "scenario", "join[s]", "overhead", "retrans", "reinject",
              "recovered", "repl[MB]", "lost rows R/S");

  for (const auto ring_ll : rings) {
    const int ring = static_cast<int>(ring_ll);
    double baseline = 0.0;
    for (int scenario = 0; scenario < 6; ++scenario) {
      cyclo::ClusterConfig cfg = bench::paper_cluster(ring, scale);
      cfg.node.resilience.ack_timeout = ack_ms * kMillisecond;
      cfg.node.resilience.max_reinjections = 64;
      const char* name = "none";
      switch (scenario) {
        case 0:
          break;
        case 1:
          name = "clean";
          // A 1.0x slowdown at t=0 makes the plan non-empty (arming the
          // resilient protocol) without perturbing anything.
          cfg.fault.seed = seed;
          cfg.fault.slowdowns.push_back({.host = 0, .at = 0, .factor = 1.0});
          break;
        case 2:
          name = "repl-clean";
          cfg.fault.seed = seed;
          cfg.fault.slowdowns.push_back({.host = 0, .at = 0, .factor = 1.0});
          cfg.node.resilience.replicate = true;
          break;
        case 3:
          name = "transient";
          cfg.fault.seed = seed;
          cfg.fault.link.drop_prob = drop;
          cfg.fault.link.corrupt_prob = corrupt;
          break;
        case 4:
          name = "crash";
          cfg.fault.seed = seed;
          cfg.fault.crashes.push_back({.host = ring / 2, .at = 0});
          break;
        case 5:
          name = "crash+repl";
          cfg.fault.seed = seed;
          cfg.fault.crashes.push_back({.host = ring / 2, .at = 0});
          cfg.node.resilience.replicate = true;
          break;
      }

      cyclo::CycloJoin cyclo(
          cfg, cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kHashJoin});
      const cyclo::RunReport rep = cyclo.run(r, s);
      const double wall = bench::seconds(rep.join_wall);
      if (scenario == 0) baseline = wall;

      char lost[32] = "-";
      if (rep.fault.degraded) {
        std::snprintf(lost, sizeof(lost), "%llu/%llu",
                      static_cast<unsigned long long>(rep.fault.lost_r_rows),
                      static_cast<unsigned long long>(rep.fault.lost_s_rows));
      } else if (rep.fault.recovered) {
        std::snprintf(lost, sizeof(lost), "0/0 (exact)");
      }
      char repl[16] = "-";
      if (rep.fault.replica_bytes > 0) {
        std::snprintf(repl, sizeof(repl), "%.1f",
                      static_cast<double>(rep.fault.replica_bytes) / 1e6);
      }
      std::printf("%5d  %-10s  %10.3f  %8.1f%%  %8llu  %9llu  %9llu  %10s  "
                  "%14s\n",
                  ring, name, wall, (wall / baseline - 1.0) * 100.0,
                  static_cast<unsigned long long>(rep.fault.retransmissions),
                  static_cast<unsigned long long>(rep.fault.chunks_reinjected),
                  static_cast<unsigned long long>(rep.fault.chunks_recovered),
                  repl, lost);
    }
    std::printf("\n");
  }
  std::printf("overhead is vs the baseline ('none') row of the same ring "
              "size; 'crash' completes degraded: the result is exactly "
              "(R \\ R_dead) JOIN (S \\ S_dead); 'crash+repl' recovers the "
              "full R JOIN S from the ring-neighbor replica\n");
  return 0;
}
