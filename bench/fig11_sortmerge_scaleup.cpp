// Figure 11: scale-up (+3.2 GB per node) with the sort-merge join.
//
// Expected shape (paper Sec. V-F): the merge phase is so fast that the
// network can no longer hide behind it — join threads visibly *synchronize*
// (wait for data). The paper's 6-host point moves |R| = 9.6 GB across each
// link in join+sync = 8.7 s, i.e. ~1.1 GB/s — essentially wire speed of
// 10 GbE. This harness prints the same implied per-link throughput.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::int64_t scale = flags.get_int("scale", bench::kDefaultScale);
  const auto nodes = flags.get_int_list("nodes", {1, 2, 3, 4, 5, 6});
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Figure 11 — scale-up, +3.2 GB per node, sort-merge join",
      "join phase too fast to hide the network: sync time appears; links run "
      "at ~wire speed", scale);

  std::printf("%6s  %12s  %10s  %10s  %10s  %12s\n", "nodes", "volume",
              "setup[s]", "join[s]", "sync[s]", "link-rate");
  for (const auto n : nodes) {
    auto [r, s] = bench::uniform_pair(
        bench::kRowsPerNodeFig8 * static_cast<std::uint64_t>(n), scale);
    cyclo::CycloJoin cyclo(
        bench::paper_cluster(static_cast<int>(n), scale),
        cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kSortMergeJoin});
    const cyclo::RunReport rep = cyclo.run(r, s);
    SimDuration sync = 0;
    for (const auto& h : rep.hosts) sync = std::max(sync, h.sync);
    std::printf("%6lld  %12s  %10.3f  %10.3f  %10.3f  %12s\n",
                static_cast<long long>(n),
                human_bytes(r.bytes() + s.bytes()).c_str(),
                bench::seconds(rep.setup_wall), bench::seconds(rep.join_wall - sync),
                bench::seconds(sync),
                n > 1 ? human_rate(rep.link_throughput_bps).c_str() : "-");
  }
  std::printf("\npaper (full scale, 6 nodes): join 6.4 s + sync 2.3 s -> "
              "1.1 GB/s per link, close to the 1.25 GB/s wire limit\n");
  return 0;
}
