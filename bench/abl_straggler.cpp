// Ablation: straggler absorption by the ring buffers.
//
// Paper Sec. V-D attributes part of cyclo-join's skew tolerance to the
// transport: "the ring buffer mechanism of Data Roundabout balances
// differences in the execution speeds of the participating hosts. A host
// that is stuck ... will not immediately slow down the remainder of the
// ring. A follower will only have to start waiting once it has fully
// consumed all data in its ring buffer." The paper never isolates this
// claim; here we do: one host runs its CPU `slowdown`x slower than the
// rest, and we sweep the buffer depth. Deeper buffer pools should absorb
// the jitter (less sync at the fast hosts) until the slow host's raw
// compute deficit dominates.
// The always-on flight recorder adds a second, direct lens: per-host
// residency records feed the straggler detector (live on --backend=rt,
// replayed post-run on sim), so each row also reports how often — and how
// loudly — host 0 was flagged. With --resilient the wire carries frames and
// the run's chunk journeys are reconstructed and summarized into
// BENCH_journeys.json (--journey_flow adds a Perfetto flow trace).
#include <cstdio>
#include <string>

#include "harness.h"
#include "obs/journey.h"

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::int64_t scale = flags.get_int("scale", bench::kDefaultScale);
  const int ring = static_cast<int>(flags.get_int("ring", 6));
  const double slowdown = flags.get_double("slowdown", 1.5);
  const auto buffer_counts = flags.get_int_list("buffers", {2, 4, 8, 16, 32});
  const bool trace = flags.get_bool("trace", false);
  const bool resilient = flags.get_bool("resilient", false);
  const std::string journeys_out =
      flags.get_string("journeys_out", "BENCH_journeys.json");
  const std::string journey_flow = flags.get_string("journey_flow", "");
  const cyclo::Backend backend = bench::backend_flag(flags);
  bench::BenchJson json(flags, "abl_straggler");
  json.set_backend(backend);
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Ablation — one straggler host, ring-buffer depth sweep (hash join)",
      "deeper ring buffers decouple fast hosts from a slow one "
      "(paper Sec. V-D)", scale);

  auto [r, s] = bench::uniform_pair(bench::kRowsFig7, scale);
  std::printf("host 0 runs %.1fx slower than the others (backend %s)\n\n",
              slowdown, bench::backend_name(backend));

  std::printf("%8s  %12s  %16s  %16s  %8s  %8s%s\n", "buffers", "join[s]",
              "sync fast[s]", "sync slow[s]", "flags", "z(h0)",
              trace ? "  ovl slow  ovl fast" : "");
  cyclo::RunReport last_report;
  for (const auto buffers : buffer_counts) {
    cyclo::ClusterConfig cfg = bench::paper_cluster(ring, scale);
    cfg.backend = backend;
    cfg.node.num_buffers = static_cast<int>(buffers);
    cfg.per_host_cpu_scale.assign(static_cast<std::size_t>(ring), 1.0);
    cfg.per_host_cpu_scale[0] = slowdown;
    cfg.trace.enabled = trace;
    // Frames on the wire give chunks identity: journeys reconstruct. The
    // ack timeout opens wide: this run wants tracing, not recovery, and a
    // deliberately slowed host would otherwise trip re-injection storms.
    cfg.fault.force_resilient = resilient;
    if (resilient) cfg.node.resilience.ack_timeout = 60 * kSecond;

    cyclo::CycloJoin cyclo(cfg, cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kHashJoin});
    const cyclo::RunReport rep = cyclo.run(r, s);

    SimDuration fast_sync = 0;
    for (std::size_t h = 1; h < rep.hosts.size(); ++h) {
      fast_sync = std::max(fast_sync, rep.hosts[h].sync);
    }
    // Straggler detector verdict (live sampler on rt, replay on sim): how
    // often residency on some host sat z_threshold sigmas above the rest,
    // and host 0's final z-score.
    const auto flag_it = rep.metrics.counters.find("obs.straggler_flags");
    const std::int64_t straggler_flags =
        flag_it == rep.metrics.counters.end() ? 0 : flag_it->second;
    const auto z_it = rep.metrics.gauges.find("host0.straggler_z");
    const double z_slow = z_it == rep.metrics.gauges.end() ? 0.0 : z_it->second;

    std::printf("%8lld  %12.3f  %16.3f  %16.3f  %8lld  %8.2f",
                static_cast<long long>(buffers),
                bench::seconds(rep.join_wall), bench::seconds(fast_sync),
                bench::seconds(rep.hosts[0].sync),
                static_cast<long long>(straggler_flags), z_slow);
    // The straggler's overlap ratio should *exceed* the fast hosts': its
    // slower cores stretch join work over the same transfer windows, so the
    // ring buffers — not the straggler's NIC — carry the absorption.
    double slow_overlap = 0.0;
    double fast_overlap = 0.0;
    if (trace) {
      auto it = rep.metrics.gauges.find("host0.overlap_ratio");
      slow_overlap = it == rep.metrics.gauges.end() ? 0.0 : it->second;
      double sum = 0.0;
      int n = 0;
      for (int h = 1; h < ring; ++h) {
        it = rep.metrics.gauges.find("host" + std::to_string(h) +
                                     ".overlap_ratio");
        if (it != rep.metrics.gauges.end()) {
          sum += it->second;
          ++n;
        }
      }
      fast_overlap = n == 0 ? 0.0 : sum / n;
      std::printf("  %8.2f  %8.2f", slow_overlap, fast_overlap);
    }
    std::printf("\n");
    json.row({{"buffers", static_cast<double>(buffers)},
              {"join_s", bench::seconds(rep.join_wall)},
              {"sync_fast_s", bench::seconds(fast_sync)},
              {"sync_slow_s", bench::seconds(rep.hosts[0].sync)},
              {"straggler_flags", static_cast<double>(straggler_flags)},
              {"z_slow", z_slow},
              {"overlap_slow", slow_overlap},
              {"overlap_fast", fast_overlap}});
    json.set_metrics(rep.metrics);
    last_report = rep;
  }
  std::printf("\nthe slow host never waits (it is the bottleneck); the fast "
              "hosts' waiting shrinks as buffers deepen\n");
  json.write();

  // Chunk journeys from the last (deepest-buffer) run: only meaningful
  // when frames carry identity on the wire.
  if (resilient && last_report.flight != nullptr) {
    const auto journeys = obs::reconstruct_journeys(*last_report.flight);
    obs::JourneySummary summary =
        obs::summarize_journeys(journeys, ring);
    for (const auto& rec : last_report.flight->snapshot_all()) {
      summary.unkeyed_records += rec.origin == obs::kNoOrigin;
    }
    const std::string body =
        obs::journeys_json(summary, bench::backend_name(backend));
    if (std::FILE* f = std::fopen(journeys_out.c_str(), "w")) {
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
      std::printf("wrote %s (%zu journeys, %zu retired)\n",
                  journeys_out.c_str(), summary.journeys, summary.retired);
    } else {
      std::fprintf(stderr, "cannot write %s\n", journeys_out.c_str());
    }
    if (!journey_flow.empty()) {
      const std::string flow = obs::journey_flow_json(journeys);
      if (std::FILE* f = std::fopen(journey_flow.c_str(), "w")) {
        std::fwrite(flow.data(), 1, flow.size(), f);
        std::fclose(f);
        std::printf("wrote %s (Perfetto flow trace)\n", journey_flow.c_str());
      }
    }
  } else if (resilient) {
    std::fprintf(stderr, "no flight recorder in the report; %s not written\n",
                 journeys_out.c_str());
  }
  return 0;
}
