// Ablation: straggler absorption by the ring buffers.
//
// Paper Sec. V-D attributes part of cyclo-join's skew tolerance to the
// transport: "the ring buffer mechanism of Data Roundabout balances
// differences in the execution speeds of the participating hosts. A host
// that is stuck ... will not immediately slow down the remainder of the
// ring. A follower will only have to start waiting once it has fully
// consumed all data in its ring buffer." The paper never isolates this
// claim; here we do: one host runs its CPU `slowdown`x slower than the
// rest, and we sweep the buffer depth. Deeper buffer pools should absorb
// the jitter (less sync at the fast hosts) until the slow host's raw
// compute deficit dominates.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::int64_t scale = flags.get_int("scale", bench::kDefaultScale);
  const int ring = static_cast<int>(flags.get_int("ring", 6));
  const double slowdown = flags.get_double("slowdown", 1.5);
  const auto buffer_counts = flags.get_int_list("buffers", {2, 4, 8, 16, 32});
  const bool trace = flags.get_bool("trace", false);
  bench::BenchJson json(flags, "abl_straggler");
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Ablation — one straggler host, ring-buffer depth sweep (hash join)",
      "deeper ring buffers decouple fast hosts from a slow one "
      "(paper Sec. V-D)", scale);

  auto [r, s] = bench::uniform_pair(bench::kRowsFig7, scale);
  std::printf("host 0 runs %.1fx slower than the others\n\n", slowdown);

  std::printf("%8s  %12s  %16s  %16s%s\n", "buffers", "join[s]",
              "sync fast[s]", "sync slow[s]",
              trace ? "  ovl slow  ovl fast" : "");
  for (const auto buffers : buffer_counts) {
    cyclo::ClusterConfig cfg = bench::paper_cluster(ring, scale);
    cfg.node.num_buffers = static_cast<int>(buffers);
    cfg.per_host_cpu_scale.assign(static_cast<std::size_t>(ring), 1.0);
    cfg.per_host_cpu_scale[0] = slowdown;
    cfg.trace.enabled = trace;

    cyclo::CycloJoin cyclo(cfg, cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kHashJoin});
    const cyclo::RunReport rep = cyclo.run(r, s);

    SimDuration fast_sync = 0;
    for (std::size_t h = 1; h < rep.hosts.size(); ++h) {
      fast_sync = std::max(fast_sync, rep.hosts[h].sync);
    }
    std::printf("%8lld  %12.3f  %16.3f  %16.3f", static_cast<long long>(buffers),
                bench::seconds(rep.join_wall), bench::seconds(fast_sync),
                bench::seconds(rep.hosts[0].sync));
    // The straggler's overlap ratio should *exceed* the fast hosts': its
    // slower cores stretch join work over the same transfer windows, so the
    // ring buffers — not the straggler's NIC — carry the absorption.
    double slow_overlap = 0.0;
    double fast_overlap = 0.0;
    if (trace) {
      auto it = rep.metrics.gauges.find("host0.overlap_ratio");
      slow_overlap = it == rep.metrics.gauges.end() ? 0.0 : it->second;
      double sum = 0.0;
      int n = 0;
      for (int h = 1; h < ring; ++h) {
        it = rep.metrics.gauges.find("host" + std::to_string(h) +
                                     ".overlap_ratio");
        if (it != rep.metrics.gauges.end()) {
          sum += it->second;
          ++n;
        }
      }
      fast_overlap = n == 0 ? 0.0 : sum / n;
      std::printf("  %8.2f  %8.2f", slow_overlap, fast_overlap);
    }
    std::printf("\n");
    json.row({{"buffers", static_cast<double>(buffers)},
              {"join_s", bench::seconds(rep.join_wall)},
              {"sync_fast_s", bench::seconds(fast_sync)},
              {"sync_slow_s", bench::seconds(rep.hosts[0].sync)},
              {"overlap_slow", slow_overlap},
              {"overlap_fast", fast_overlap}});
    json.set_metrics(rep.metrics);
  }
  std::printf("\nthe slow host never waits (it is the bottleneck); the fast "
              "hosts' waiting shrinks as buffers deepen\n");
  json.write();
  return 0;
}
