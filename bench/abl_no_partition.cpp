// Ablation: radix-partitioned probing vs a single global hash table.
//
// The paper inherits MonetDB's radix join [22] precisely because probing a
// table that fits the L2 cache is far cheaper than probing a
// memory-resident one. This bench isolates that choice: same data, same
// matches — partitioned (cache-sized) tables vs one big table, across
// stationary-side sizes. It also shows the flip side the paper exploits in
// cyclo-join: once S_i shrinks (more hosts), even the naive table becomes
// cache-resident — part of Fig. 9's distributed skew advantage.
#include "harness.h"
#include "common/cputime.h"
#include "join/hash_join.h"

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const auto row_counts = flags.get_int_list(
      "rows", {1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 23});
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Ablation — radix-partitioned probe vs single global hash table",
      "L2-sized partitions keep the per-probe cost flat as S grows "
      "(the radix join of [22] that the paper ports)", 1);

  std::printf("%10s  %12s  %16s  %16s  %8s\n", "|S| rows", "S bytes",
              "radix [ns/probe]", "naive [ns/probe]", "naive/radix");
  for (const auto rows : row_counts) {
    auto r = rel::generate({.rows = static_cast<std::uint64_t>(rows),
                            .key_domain = static_cast<std::uint64_t>(rows),
                            .seed = 1},
                           "R", 1);
    auto s = rel::generate({.rows = static_cast<std::uint64_t>(rows),
                            .key_domain = static_cast<std::uint64_t>(rows),
                            .seed = 2},
                           "S", 2);

    const int bits = join::choose_radix_bits(static_cast<std::size_t>(rows), {});
    const auto radix_built = join::HashJoinStationary::build(s.tuples(), bits);
    const auto r_parts = join::radix_cluster(r.tuples(), bits, 8);
    const auto naive = join::SingleTableHashJoin::build(s.tuples());

    join::JoinResult radix_result;
    const auto radix_ns = measure_cpu([&] {
      for (std::uint32_t p = 0; p < r_parts.num_partitions(); ++p) {
        radix_built.probe_partition(p, r_parts.partition(p), radix_result);
      }
    });
    join::JoinResult naive_result;
    const auto naive_ns =
        measure_cpu([&] { naive.probe(r.tuples(), naive_result); });
    CJ_CHECK(radix_result.checksum() == naive_result.checksum());

    const double per_radix = static_cast<double>(radix_ns) / rows;
    const double per_naive = static_cast<double>(naive_ns) / rows;
    std::printf("%10lld  %12s  %16.1f  %16.1f  %7.2fx\n",
                static_cast<long long>(rows),
                human_bytes(static_cast<std::uint64_t>(rows) * 12).c_str(),
                per_radix, per_naive, per_naive / per_radix);
  }
  std::printf("\nthe radix probe cost stays ~flat; the naive table degrades "
              "once it outgrows the caches\n");
  return 0;
}
