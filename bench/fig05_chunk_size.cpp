// Figure 5: raw RDMA throughput over 10 GbE as a function of the transfer
// unit (chunk) size, 1 B .. 1 GB.
//
// Expected shape (paper Sec. III-C): tiny messages are dominated by the
// RNIC's per-work-request processing and cannot saturate the link; the
// curve climbs through ~4 kB and reaches wire speed (~1.25 GB/s) for units
// of ~1 MB and larger. This is why the Data Roundabout moves whole
// ring-buffer elements, never single tuples.
#include <vector>

#include "harness.h"
#include "net/link.h"
#include "rdma/verbs.h"
#include "sim/core_pool.h"
#include "sim/engine.h"

namespace {

using namespace cj;

struct SweepPoint {
  std::uint64_t chunk;
  double gbps;
};

/// Streams `messages` back-to-back messages of `chunk` bytes over one QP
/// with a pipelined send window and pre-posted receives; returns the
/// achieved goodput.
SweepPoint measure(std::uint64_t chunk, std::uint64_t messages) {
  sim::Engine engine;
  sim::CorePool tx_cores(engine, 4);
  sim::CorePool rx_cores(engine, 4);
  net::DuplexLink link(engine, net::LinkSpec{}, "sweep");

  rdma::DeviceAttr attr;
  attr.max_send_wr = 64;
  attr.max_recv_wr = 128;
  rdma::Device tx_dev(engine, tx_cores, attr, "tx");
  rdma::Device rx_dev(engine, rx_cores, attr, "rx");
  rdma::CompletionQueue tx_scq(engine, 4096), tx_rcq(engine, 4096);
  rdma::CompletionQueue rx_scq(engine, 4096), rx_rcq(engine, 4096);
  rdma::QueuePair& tx_qp = tx_dev.create_qp(&tx_scq, &tx_rcq);
  rdma::QueuePair& rx_qp = rx_dev.create_qp(&rx_scq, &rx_rcq);
  rdma::connect(tx_qp, rx_qp, link.forward, link.backward);

  const std::uint64_t window = std::min<std::uint64_t>(32, messages);
  std::vector<std::byte> send_buf(chunk ? chunk : 1);
  const std::uint64_t rx_buffers = std::min<std::uint64_t>(64, messages);
  std::vector<std::byte> recv_slab((chunk ? chunk : 1) * rx_buffers);

  SimTime elapsed = 0;
  auto driver = [&]() -> sim::Task<void> {
    rdma::MemoryRegion* send_mr = co_await tx_dev.pd().register_memory(send_buf);
    rdma::MemoryRegion* recv_mr = co_await rx_dev.pd().register_memory(recv_slab);

    // Receiver: keep `rx_buffers` receives posted, repost on completion.
    auto receiver = [&, recv_mr]() -> sim::Task<void> {
      for (std::uint64_t i = 0; i < rx_buffers; ++i) {
        rdma::WorkRequest wr;
        wr.wr_id = i;
        wr.mr = recv_mr;
        wr.offset = static_cast<std::size_t>(i * chunk);
        wr.length = static_cast<std::size_t>(chunk);
        CJ_CHECK(rx_qp.post_recv(wr).is_ok());
      }
      for (std::uint64_t got = 0; got < messages; ++got) {
        const rdma::Completion c = co_await rx_rcq.next();
        if (got + rx_buffers < messages) {
          rdma::WorkRequest wr;
          wr.wr_id = c.wr_id;
          wr.mr = recv_mr;
          wr.offset = static_cast<std::size_t>(c.wr_id * chunk);
          wr.length = static_cast<std::size_t>(chunk);
          CJ_CHECK(rx_qp.post_recv(wr).is_ok());
        }
      }
    };
    engine.spawn(receiver(), "receiver");

    const SimTime start = engine.now();
    std::uint64_t completed = 0;
    std::uint64_t posted = 0;
    while (completed < messages) {
      while (posted < messages && posted - completed < window) {
        rdma::WorkRequest wr;
        wr.wr_id = posted;
        wr.mr = send_mr;
        wr.length = static_cast<std::size_t>(chunk);
        const Status st = tx_qp.post_send(wr);
        if (!st.is_ok()) break;  // SQ full; drain a completion first
        ++posted;
      }
      co_await tx_scq.next();
      ++completed;
    }
    elapsed = engine.now() - start;
    tx_qp.close();
    rx_qp.close();
  };
  engine.spawn(driver(), "driver");
  engine.run();
  engine.check_all_complete();

  const double seconds = to_seconds(elapsed);
  const double bits = static_cast<double>(chunk * messages) * 8.0;
  return SweepPoint{chunk, seconds > 0 ? bits / seconds / 1e9 : 0.0};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::int64_t volume_mb = flags.get_int("volume_mb", 512);
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Figure 5 — RDMA throughput vs transfer-unit size (10 GbE)",
      "per-work-request overhead starves small messages; ~4 kB starts to "
      "saturate, >= ~1 MB reaches wire speed", 1);

  const std::uint64_t sizes[] = {1,        16,        256,       1024,
                                 4096,     16384,     65536,     262144,
                                 1048576,  16777216,  268435456, 1073741824};
  std::printf("%12s  %12s  %10s\n", "chunk", "throughput", "of 10Gb/s");
  for (const std::uint64_t chunk : sizes) {
    const std::uint64_t target_bytes =
        static_cast<std::uint64_t>(volume_mb) * 1024 * 1024;
    const std::uint64_t messages =
        std::max<std::uint64_t>(3, std::min<std::uint64_t>(4000, target_bytes / std::max<std::uint64_t>(1, chunk)));
    const SweepPoint p = measure(chunk, messages);
    std::printf("%12s  %9.3f Gb/s  %9.1f%%\n", human_bytes(chunk).c_str(), p.gbps,
                p.gbps / 10.0 * 100.0);
  }
  std::printf("\npaper: saturation from ~4 kB upward (in practice ~1 MB with "
              "application overhead); 1 B messages achieve ~nothing\n");
  return 0;
}
