// Ablation: what the multi-round query planner buys.
//
// The paper sketches multi-join pipelines (Sec. IV-A: "the join output
// could naturally be used as input to subsequent processing in a larger
// query plan") but leaves the order and the data movement between runs
// open. This harness pins both down on two query shapes — the three-table
// chain and the four-table star — by running each three ways:
//
//   planner   PlanGen::best() executed by PlanExecutor: cost-picked order
//             and per-round rotation side, intermediates stay as per-host
//             partitions and move only via keyed ring redistribution
//   worst     the most expensive connected left-deep order the exhaustive
//             enumeration finds, same distributed executor — how much the
//             order alone is worth
//   collect   the planner's order, but between rounds every host's output
//             is concatenated at a coordinator and re-split for the next
//             run (the pre-planner examples/query_pipeline.cpp approach) —
//             how much staying distributed is worth
//
// Reported: summed setup+join wall per pipeline, ring wire bytes
// (rotation + redistribution), and coordinator bytes (rows gathered into
// one process between rounds; 0 for the distributed executor). Both
// backends run via --backend=sim|rt; BENCH_plan.json rows feed the
// bench/regress --plan_baseline gate.
#include <vector>

#include "harness.h"
#include "plan/plan_exec.h"
#include "plan/plan_gen.h"
#include "rel/partitioned.h"

namespace {

using namespace cj;

struct Shape {
  const char* name;
  plan::QueryGraph graph;
  std::vector<rel::Relation> relations;
};

Shape make_chain(std::int64_t scale) {
  Shape shape;
  shape.name = "chain";
  const std::uint64_t orders = 16'000'000 / static_cast<std::uint64_t>(scale);
  shape.relations.push_back(rel::generate(
      {.rows = orders * 4, .key_domain = orders, .seed = 41}, "lineitems", 1));
  shape.relations.push_back(rel::generate(
      {.rows = orders, .key_domain = orders, .seed = 42}, "orders", 2));
  shape.relations.push_back(rel::generate(
      {.rows = orders * 2, .key_domain = orders, .seed = 43}, "shipments", 3));
  const int l = shape.graph.add_relation(
      "lineitems", rel::collect_stats(shape.relations[0]));
  const int o =
      shape.graph.add_relation("orders", rel::collect_stats(shape.relations[1]));
  const int s = shape.graph.add_relation(
      "shipments", rel::collect_stats(shape.relations[2]));
  shape.graph.add_join(l, o);
  shape.graph.add_join(o, s);
  return shape;
}

Shape make_star(std::int64_t scale) {
  Shape shape;
  shape.name = "star";
  const std::uint64_t dom = 12'000'000 / static_cast<std::uint64_t>(scale);
  shape.relations.push_back(rel::generate(
      {.rows = dom * 4, .key_domain = dom, .seed = 51}, "sales", 1));
  shape.relations.push_back(rel::generate(
      {.rows = dom, .key_domain = dom, .seed = 52}, "customers", 2));
  shape.relations.push_back(rel::generate(
      {.rows = dom / 8, .key_domain = dom, .seed = 53}, "products", 3));
  shape.relations.push_back(rel::generate(
      {.rows = dom / 100, .key_domain = dom, .seed = 54}, "promotions", 4));
  const int f =
      shape.graph.add_relation("sales", rel::collect_stats(shape.relations[0]));
  const int c = shape.graph.add_relation(
      "customers", rel::collect_stats(shape.relations[1]));
  const int p = shape.graph.add_relation(
      "products", rel::collect_stats(shape.relations[2]));
  const int m = shape.graph.add_relation(
      "promotions", rel::collect_stats(shape.relations[3]));
  shape.graph.add_join(f, c);
  shape.graph.add_join(f, p);
  shape.graph.add_join(f, m);
  return shape;
}

struct Row {
  const char* variant;
  std::uint64_t matches = 0;
  int rounds = 0;
  double total_s = 0;
  double wire_mb = 0;
  double coordinator_mb = 0;
};

/// Runs a compiled plan on the distributed executor.
Row run_distributed(const char* variant, const plan::Plan& plan,
                    const Shape& shape, const plan::ExecConfig& cfg) {
  std::vector<rel::PartitionedRelation> inputs;
  inputs.reserve(shape.relations.size());
  for (const rel::Relation& r : shape.relations) {
    inputs.push_back(rel::PartitionedRelation::split(r, cfg.cluster.num_hosts));
  }
  plan::PlanExecutor exec(cfg);
  const plan::PlanRunReport rep =
      exec.execute(plan, shape.graph, std::move(inputs));
  Row row;
  row.variant = variant;
  row.matches = rep.matches;
  row.rounds = static_cast<int>(rep.rounds.size());
  for (const plan::RoundReport& round : rep.rounds) {
    row.total_s += bench::seconds(round.setup_wall + round.join_wall);
  }
  row.wire_mb = static_cast<double>(rep.wire_bytes) / 1e6;
  return row;
}

/// The pre-planner baseline: same join order, but each round is a normal
/// CycloJoin::run whose inputs are whole relations — the previous round's
/// distributed output is concatenated into one process and re-split.
Row run_collect(const plan::Plan& plan, const Shape& shape,
                const plan::ExecConfig& cfg) {
  Row row;
  row.variant = "collect";
  row.rounds = static_cast<int>(plan.rounds.size());
  std::uint64_t wire = 0;
  rel::Relation intermediate("intermediate");
  for (std::size_t k = 0; k < plan.rounds.size(); ++k) {
    const plan::PlannedRound& round = plan.rounds[k];
    const rel::Relation& base =
        shape.relations[static_cast<std::size_t>(round.relation)];
    const rel::Relation& rotating = k == 0
        ? shape.relations[static_cast<std::size_t>(plan.order[0])]
        : intermediate;
    const bool final_round = k + 1 == plan.rounds.size();
    cyclo::JoinSpec spec;
    spec.algorithm = round.band > 0 ? cyclo::Algorithm::kSortMergeJoin
                                    : cyclo::Algorithm::kHashJoin;
    spec.band = round.band;
    spec.materialize = !final_round;
    cyclo::CycloJoin join(cfg.cluster, spec);
    const cyclo::RunReport rep = join.run(rotating, base);
    row.total_s += bench::seconds(rep.setup_wall + rep.join_wall);
    wire += rep.bytes_on_wire;
    row.matches = rep.matches;
    if (final_round) break;
    // The collect step: every host's output lands in one address space.
    rel::Relation gathered("intermediate");
    for (const join::JoinResult& host_result : rep.host_results) {
      for (const join::OutTuple& t : host_result.output()) {
        gathered.push_back(rel::Tuple{t.key, t.r_payload});
      }
    }
    row.coordinator_mb += static_cast<double>(gathered.bytes()) / 1e6;
    intermediate = std::move(gathered);
  }
  row.wire_mb = static_cast<double>(wire) / 1e6;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::int64_t scale = flags.get_int("scale", bench::kDefaultScale);
  const int hosts = static_cast<int>(flags.get_int("hosts", 5));
  const cyclo::Backend backend = bench::backend_flag(flags);
  bench::BenchJson json(flags, "plan");
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Ablation — multi-round join planning (chain + star)",
      "cost-picked join order and distributed intermediates both matter; "
      "the worst order and the collect-and-resplit baseline each lose "
      "(extension of paper Sec. IV-A)",
      scale);

  plan::ExecConfig cfg;
  cfg.cluster = bench::paper_cluster(hosts, scale);
  cfg.cluster.backend = backend;
  cfg.materialize_final = false;  // pipelines end in counts here
  model::PlanCostParams params;
  params.num_hosts = hosts;

  json.set_backend(backend);
  std::printf("%6s  %-8s  %7s  %12s  %10s  %9s  %10s\n", "shape", "variant",
              "rounds", "matches", "total[s]", "wire[MB]", "coord[MB]");

  std::vector<Shape> shapes;
  shapes.push_back(make_chain(scale));
  shapes.push_back(make_star(scale));
  for (Shape& shape : shapes) {
    plan::PlanGen gen(shape.graph, params);
    const plan::Plan best = gen.best();
    const std::vector<plan::Plan> all = gen.enumerate();
    const plan::Plan& worst = all.back();

    std::vector<Row> rows;
    rows.push_back(run_distributed("planner", best, shape, cfg));
    rows.push_back(run_distributed("worst", worst, shape, cfg));
    rows.push_back(run_collect(best, shape, cfg));

    for (const Row& row : rows) {
      CJ_CHECK_MSG(row.matches == rows.front().matches,
                   "variants disagree on the result cardinality");
      std::printf("%6s  %-8s  %7d  %12llu  %10.3f  %9.2f  %10.2f\n",
                  shape.name, row.variant, row.rounds,
                  static_cast<unsigned long long>(row.matches), row.total_s,
                  row.wire_mb, row.coordinator_mb);
      json.row({{"shape", shape.name}, {"variant", row.variant}},
               {{"rounds", static_cast<double>(row.rounds)},
                {"matches", static_cast<double>(row.matches)},
                {"total_s", row.total_s},
                {"wire_mb", row.wire_mb},
                {"coordinator_mb", row.coordinator_mb}});
    }
    std::printf("  planner order: %s\n\n", best.to_string(shape.graph).c_str());
  }

  std::printf("'worst' pays for a bad order on the same executor; 'collect' "
              "funnels every intermediate through one process — the "
              "distributed executor keeps coord[MB] at zero by construction\n");
  json.write();
  return 0;
}
