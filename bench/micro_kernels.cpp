// Micro-benchmarks of the join kernels and workload generators
// (google-benchmark). These are the raw building blocks whose measured CPU
// costs drive the simulation's virtual time.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/zipf.h"
#include "cyclo/chunk.h"
#include "join/hash_join.h"
#include "join/radix.h"
#include "join/sort_merge.h"
#include "rel/generator.h"

namespace {

using namespace cj;

rel::Relation make_rel(std::int64_t rows, double zipf = 0.0) {
  return rel::generate({.rows = static_cast<std::uint64_t>(rows),
                        .key_domain = static_cast<std::uint64_t>(rows),
                        .zipf_z = zipf,
                        .seed = 99},
                       "bench", 1);
}

void BM_RadixCluster(benchmark::State& state) {
  const auto rows = state.range(0);
  auto r = make_rel(rows);
  const int bits = join::choose_radix_bits(static_cast<std::size_t>(rows), {});
  for (auto _ : state) {
    auto parts = join::radix_cluster(r.tuples(), bits, 8);
    benchmark::DoNotOptimize(parts.rows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_RadixCluster)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_HashBuild(benchmark::State& state) {
  const auto rows = state.range(0);
  auto s = make_rel(rows);
  const int bits = join::choose_radix_bits(static_cast<std::size_t>(rows), {});
  for (auto _ : state) {
    auto stationary = join::HashJoinStationary::build(s.tuples(), bits);
    benchmark::DoNotOptimize(stationary.bytes());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_HashBuild)->Arg(1 << 16)->Arg(1 << 20);

void BM_HashProbe(benchmark::State& state) {
  const auto rows = state.range(0);
  auto r = make_rel(rows);
  auto s = make_rel(rows);
  const int bits = join::choose_radix_bits(static_cast<std::size_t>(rows), {});
  auto stationary = join::HashJoinStationary::build(s.tuples(), bits);
  auto r_parts = join::radix_cluster(r.tuples(), bits, 8);
  for (auto _ : state) {
    join::JoinResult result;
    for (std::uint32_t p = 0; p < r_parts.num_partitions(); ++p) {
      stationary.probe_partition(p, r_parts.partition(p), result);
    }
    benchmark::DoNotOptimize(result.checksum());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_HashProbe)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_Sort(benchmark::State& state) {
  const auto rows = state.range(0);
  auto r = make_rel(rows);
  for (auto _ : state) {
    std::vector<rel::Tuple> copy(r.tuples().begin(), r.tuples().end());
    join::sort_fragment(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_Sort)->Arg(1 << 16)->Arg(1 << 20);

void BM_MergeJoin(benchmark::State& state) {
  const auto rows = state.range(0);
  auto r = make_rel(rows);
  auto s = make_rel(rows);
  std::vector<rel::Tuple> r_sorted(r.tuples().begin(), r.tuples().end());
  std::vector<rel::Tuple> s_sorted(s.tuples().begin(), s.tuples().end());
  join::sort_fragment(r_sorted);
  join::sort_fragment(s_sorted);
  for (auto _ : state) {
    join::JoinResult result;
    join::merge_join(r_sorted, s_sorted, result);
    benchmark::DoNotOptimize(result.checksum());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_MergeJoin)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_BandMergeJoin(benchmark::State& state) {
  const auto rows = state.range(0);
  auto r = make_rel(rows);
  auto s = make_rel(rows);
  std::vector<rel::Tuple> r_sorted(r.tuples().begin(), r.tuples().end());
  std::vector<rel::Tuple> s_sorted(s.tuples().begin(), s.tuples().end());
  join::sort_fragment(r_sorted);
  join::sort_fragment(s_sorted);
  for (auto _ : state) {
    join::JoinResult result;
    join::band_merge_join(r_sorted, s_sorted, 2, result);
    benchmark::DoNotOptimize(result.checksum());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_BandMergeJoin)->Arg(1 << 16)->Arg(1 << 20);

void BM_ZipfGenerate(benchmark::State& state) {
  const double z = static_cast<double>(state.range(0)) / 100.0;
  ZipfGenerator zipf(1 << 22, z);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfGenerate)->Arg(0)->Arg(50)->Arg(90);

void BM_ChunkEncodeDecode(benchmark::State& state) {
  const auto rows = state.range(0);
  auto r = make_rel(rows);
  const int bits = join::choose_radix_bits(static_cast<std::size_t>(rows), {});
  auto parts = join::radix_cluster(r.tuples(), bits, 8);
  const cyclo::ChunkWriter writer(256 * 1024);
  for (auto _ : state) {
    cyclo::ChunkSlab slab = writer.from_partitioned(parts, 0);
    std::uint64_t tuples = 0;
    for (std::size_t c = 0; c < slab.num_chunks(); ++c) {
      tuples += cyclo::decode_chunk(slab.chunk(c)).tuples.size();
    }
    benchmark::DoNotOptimize(tuples);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_ChunkEncodeDecode)->Arg(1 << 18);

}  // namespace

BENCHMARK_MAIN();
