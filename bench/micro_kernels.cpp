// Micro-benchmarks of the join kernels and workload generators
// (google-benchmark). These are the raw building blocks whose measured CPU
// costs drive the simulation's virtual time.
//
// The cache-sensitive kernels (radix clustering, hash build, hash probe)
// come in legacy/optimized pairs driven by join::KernelConfig — the A/B
// that docs/KERNELS.md describes. Besides the google-benchmark suite, the
// binary runs a self-contained A/B sweep and writes its trajectory to
// BENCH_kernels.json (BenchJson): one row per kernel x variant x size,
// cross-validated by checksum. Flags, on top of the --benchmark_* ones:
//
//   --ab_only          skip google-benchmark, run just the A/B sweep (CI)
//   --ab_rows=a,b,c    A/B input sizes          (default 2^16,2^20,2^22)
//   --ab_reps=N        best-of-N repetitions    (default 5)
//   --json_out=PATH    trajectory dump          (default BENCH_kernels.json)
//   --net_cost_check=BOOL         assert optimized build+probe nets out (on)
//   --net_cost_revolutions=N      probes per revolution in that check (6)
//   --net_cost_slack=F            allowed net-cost headroom (1.1)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <limits>
#include <vector>

#include <map>
#include <string>

#include "common/assert.h"
#include "common/cputime.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "cyclo/chunk.h"
#include "harness.h"
#include "join/hash_join.h"
#include "join/radix.h"
#include "join/sort_merge.h"
#include "kernels_ab.h"
#include "obs/prof.h"
#include "rel/generator.h"

namespace {

using namespace cj;

rel::Relation make_rel(std::int64_t rows, double zipf = 0.0,
                       std::uint64_t seed = 99) {
  return rel::generate({.rows = static_cast<std::uint64_t>(rows),
                        .key_domain = static_cast<std::uint64_t>(rows),
                        .zipf_z = zipf,
                        .seed = seed},
                       "bench", 1);
}

join::RadixConfig config_for(const join::KernelConfig& kernel) {
  join::RadixConfig config;
  config.kernel = kernel;
  return config;
}

// ------------------------------------------------ legacy/optimized pairs

void BM_RadixCluster(benchmark::State& state, join::KernelConfig kernel) {
  const auto rows = state.range(0);
  auto r = make_rel(rows);
  const int bits =
      join::choose_radix_bits(static_cast<std::size_t>(rows), config_for(kernel));
  for (auto _ : state) {
    auto parts = join::radix_cluster(r.tuples(), bits, 8, kernel);
    benchmark::DoNotOptimize(parts.rows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK_CAPTURE(BM_RadixCluster, legacy, join::KernelConfig::legacy())
    ->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);
BENCHMARK_CAPTURE(BM_RadixCluster, optimized, join::KernelConfig{})
    ->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_HashBuild(benchmark::State& state, join::KernelConfig kernel) {
  const auto rows = state.range(0);
  auto s = make_rel(rows);
  const auto config = config_for(kernel);
  const int bits =
      join::choose_radix_bits(static_cast<std::size_t>(rows), config);
  for (auto _ : state) {
    auto stationary = join::HashJoinStationary::build(s.tuples(), bits, config);
    benchmark::DoNotOptimize(stationary.bytes());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK_CAPTURE(BM_HashBuild, legacy, join::KernelConfig::legacy())
    ->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK_CAPTURE(BM_HashBuild, optimized, join::KernelConfig{})
    ->Arg(1 << 16)->Arg(1 << 20);

void BM_HashProbe(benchmark::State& state, join::KernelConfig kernel) {
  const auto rows = state.range(0);
  auto r = make_rel(rows, 0.0, 99);
  auto s = make_rel(rows, 0.0, 98);
  const auto config = config_for(kernel);
  const int bits =
      join::choose_radix_bits(static_cast<std::size_t>(rows), config);
  auto stationary = join::HashJoinStationary::build(s.tuples(), bits, config);
  auto r_parts = join::radix_cluster(r.tuples(), bits, 8, kernel);
  for (auto _ : state) {
    join::JoinResult result;
    for (std::uint32_t p = 0; p < r_parts.num_partitions(); ++p) {
      stationary.probe_partition(p, r_parts.partition(p), result);
    }
    benchmark::DoNotOptimize(result.checksum());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK_CAPTURE(BM_HashProbe, legacy, join::KernelConfig::legacy())
    ->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);
BENCHMARK_CAPTURE(BM_HashProbe, optimized, join::KernelConfig{})
    ->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

// ------------------------------------------------------- other kernels

void BM_Sort(benchmark::State& state) {
  const auto rows = state.range(0);
  auto r = make_rel(rows);
  for (auto _ : state) {
    std::vector<rel::Tuple> copy(r.tuples().begin(), r.tuples().end());
    join::sort_fragment(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_Sort)->Arg(1 << 16)->Arg(1 << 20);

void BM_MergeJoin(benchmark::State& state) {
  const auto rows = state.range(0);
  auto r = make_rel(rows);
  auto s = make_rel(rows);
  std::vector<rel::Tuple> r_sorted(r.tuples().begin(), r.tuples().end());
  std::vector<rel::Tuple> s_sorted(s.tuples().begin(), s.tuples().end());
  join::sort_fragment(r_sorted);
  join::sort_fragment(s_sorted);
  for (auto _ : state) {
    join::JoinResult result;
    join::merge_join(r_sorted, s_sorted, result);
    benchmark::DoNotOptimize(result.checksum());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_MergeJoin)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_BandMergeJoin(benchmark::State& state) {
  const auto rows = state.range(0);
  auto r = make_rel(rows);
  auto s = make_rel(rows);
  std::vector<rel::Tuple> r_sorted(r.tuples().begin(), r.tuples().end());
  std::vector<rel::Tuple> s_sorted(s.tuples().begin(), s.tuples().end());
  join::sort_fragment(r_sorted);
  join::sort_fragment(s_sorted);
  for (auto _ : state) {
    join::JoinResult result;
    join::band_merge_join(r_sorted, s_sorted, 2, result);
    benchmark::DoNotOptimize(result.checksum());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_BandMergeJoin)->Arg(1 << 16)->Arg(1 << 20);

void BM_ZipfGenerate(benchmark::State& state) {
  const double z = static_cast<double>(state.range(0)) / 100.0;
  ZipfGenerator zipf(1 << 22, z);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfGenerate)->Arg(0)->Arg(50)->Arg(90);

void BM_ChunkEncodeDecode(benchmark::State& state) {
  const auto rows = state.range(0);
  auto r = make_rel(rows);
  const int bits = join::choose_radix_bits(static_cast<std::size_t>(rows), {});
  auto parts = join::radix_cluster(r.tuples(), bits, 8);
  const cyclo::ChunkWriter writer(256 * 1024);
  for (auto _ : state) {
    cyclo::ChunkSlab slab = writer.from_partitioned(parts, 0);
    std::uint64_t tuples = 0;
    for (std::size_t c = 0; c < slab.num_chunks(); ++c) {
      tuples += cyclo::decode_chunk(slab.chunk(c)).tuples.size();
    }
    benchmark::DoNotOptimize(tuples);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_ChunkEncodeDecode)->Arg(1 << 18);

// ------------------------------------------------------ A/B trajectory
//
// Best-of-N CPU time per kernel and variant over the shared case list
// (bench/kernels_ab.h), cross-validated: both variants of a probe must
// produce the identical order-independent checksum. This is the
// machine-readable perf baseline the CI regression gate (bench/regress)
// compares against. One extra untimed rep per case runs under the kernel
// profiler, so the JSON also carries per-phase counters ("profile" key).

double best_of(int reps, const std::function<void()>& fn) {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (int i = 0; i < reps; ++i) best = std::min<std::int64_t>(best, measure_cpu(fn));
  return static_cast<double>(best);
}

struct VariantTimes {
  double legacy_ns = 0;
  double optimized_ns = 0;
  std::string legacy_tier;
  std::string optimized_tier;
};

void emit(bench::BenchJson& json, const char* kernel, std::int64_t rows,
          int radix_bits, const VariantTimes& t) {
  const double rows_d = static_cast<double>(rows);
  json.row({{"kernel", kernel},
            {"variant", "legacy"},
            {"tier", t.legacy_tier.c_str()}},
           {{"rows", rows_d},
            {"radix_bits", static_cast<double>(radix_bits)},
            {"cpu_ns", t.legacy_ns},
            {"items_per_sec", rows_d / (t.legacy_ns * 1e-9)}});
  json.row({{"kernel", kernel},
            {"variant", "optimized"},
            {"tier", t.optimized_tier.c_str()}},
           {{"rows", rows_d},
            {"radix_bits", static_cast<double>(radix_bits)},
            {"cpu_ns", t.optimized_ns},
            {"items_per_sec", rows_d / (t.optimized_ns * 1e-9)}});
  std::printf("%-16s %9" PRId64 " rows  bits %2d  legacy %7.1f Mit/s"
              "   optimized %7.1f Mit/s   speedup %.2fx\n",
              kernel, rows, radix_bits, rows_d / (t.legacy_ns * 1e-3),
              rows_d / (t.optimized_ns * 1e-3), t.legacy_ns / t.optimized_ns);
}

/// The build-cost tradeoff guard (docs/KERNELS.md): the fingerprint table
/// build is deliberately slower than the legacy chained build, paid back by
/// faster probes over every revolution of the ring. This asserts the trade
/// nets out — build + `revolutions` probes must not be more than `slack`
/// above legacy — so a future "optimization" of the build that wrecks the
/// probe side (or vice versa) fails the bench even when each kernel's own
/// A/B row still looks plausible.
void check_net_cost(std::int64_t rows, const VariantTimes& build,
                    const VariantTimes& probe, int revolutions, double slack) {
  const double legacy = build.legacy_ns + revolutions * probe.legacy_ns;
  const double optimized = build.optimized_ns + revolutions * probe.optimized_ns;
  std::printf("net cost @%d revolutions: legacy %.2f ms, optimized %.2f ms "
              "(%.2fx)\n",
              revolutions, legacy * 1e-6, optimized * 1e-6, legacy / optimized);
  CJ_CHECK_MSG(optimized <= legacy * slack,
               "optimized build+probe net cost regressed past the legacy "
               "kernels — the fingerprint build's cost is no longer paid "
               "back by its probes (docs/KERNELS.md)");
  (void)rows;
}

void run_kernel_ab(bench::BenchJson& json, const std::vector<std::int64_t>& sizes,
                   int reps, int revolutions, double slack, bool net_cost) {
  std::printf("\n== kernel A/B (best of %d, thread CPU time) ==\n", reps);
  obs::prof::KernelProfiler profiler;
  for (const std::int64_t rows : sizes) {
    auto cases = bench::make_kernel_cases(rows);
    std::map<std::string, std::uint64_t> checksums;
    std::map<std::string, VariantTimes> times;  // kernel -> pair
    std::map<std::string, int> bits_of;
    std::vector<std::string> order;
    for (const bench::KernelCase& c : cases) {
      // One profiled (untimed) rep first — it warms the freshly generated
      // inputs and the arena, and its per-phase counters (attributed under
      // entity = "kernel/variant") end up in the JSON's "profile" key.
      {
        const std::string entity = c.label();
        obs::prof::ScopedContext ctx(&profiler, /*host=*/0, entity);
        c.run();
      }
      std::uint64_t checksum = 0;
      const double ns = best_of(reps, [&] {
        checksum = c.run();
        benchmark::DoNotOptimize(checksum);
      });
      if (c.cross_validate) {
        auto [it, inserted] = checksums.emplace(c.kernel, checksum);
        CJ_CHECK_MSG(inserted || it->second == checksum,
                     "kernel A/B checksum mismatch: the variants disagree");
      }
      if (times.find(c.kernel) == times.end()) order.push_back(c.kernel);
      auto& t = times[c.kernel];
      if (c.variant == "legacy") {
        t.legacy_ns = ns;
        t.legacy_tier = c.tier;
      } else {
        t.optimized_ns = ns;
        t.optimized_tier = c.tier;
      }
      bits_of[c.kernel] = c.radix_bits;
    }
    for (const std::string& kernel : order) {
      emit(json, kernel.c_str(), rows, bits_of[kernel], times[kernel]);
    }
    if (net_cost) {
      check_net_cost(rows, times["hash_build"], times["probe_partition"],
                     revolutions, slack);
    }
  }
  std::printf("profile counters: %s\n", profiler.hardware() ? "hw" : "fallback");
  json.set_profile(profiler.snapshot().to_json());
}

}  // namespace

int main(int argc, char** argv) {
  cj::bench::pin_allocator_for_measurement();
  benchmark::Initialize(&argc, argv);  // strips --benchmark_* from argv
  auto flags = bench::parse_flags_or_die(argc, argv);
  const bool ab_only = flags.get_bool("ab_only", false);
  const auto ab_rows =
      flags.get_int_list("ab_rows", {1 << 16, 1 << 20, 1 << 22});
  const int ab_reps = static_cast<int>(flags.get_int("ab_reps", 5));
  // Net-cost guard: a ring revolution probes each resident table about
  // num_hosts times per full rotation of R (paper testbed: 6 hosts).
  const bool net_cost = flags.get_bool("net_cost_check", true);
  const int revolutions = static_cast<int>(flags.get_int("net_cost_revolutions", 6));
  const double slack = flags.get_double("net_cost_slack", 1.1);
  bench::BenchJson json(flags, "kernels");
  bench::check_unused_flags(flags);

  if (!ab_only) benchmark::RunSpecifiedBenchmarks();
  run_kernel_ab(json, ab_rows, ab_reps, revolutions, slack, net_cost);
  json.write();
  return 0;
}
