// Figure 10: joining the fixed 2 x 1.6 GB data set with the sort-merge
// join on rings of 1..6 nodes.
//
// Expected shape (paper Sec. V-E): sorting makes the setup phase far more
// expensive than hash-table generation, so small rings are much slower than
// with the hash join — but setup still scales ~1/n, and the investment pays
// off with a faster, strictly sequential join phase.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::int64_t scale = flags.get_int("scale", bench::kDefaultScale);
  const auto nodes = flags.get_int_list("nodes", {1, 2, 3, 4, 5, 6});
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Figure 10 — fixed data set, sort-merge join, ring size 1..6",
      "high sort cost dominates small rings; setup ~ 1/n; fast join phase",
      scale);

  auto [r, s] = bench::uniform_pair(bench::kRowsFig7, scale);
  std::printf("|R| = |S| = %llu rows (%s per relation)\n\n",
              static_cast<unsigned long long>(r.rows()),
              human_bytes(r.bytes()).c_str());

  std::printf("%6s  %10s  %10s  %10s  %10s  %12s\n", "nodes", "setup[s]",
              "join[s]", "sync[s]", "total[s]", "matches");
  for (const auto n : nodes) {
    cyclo::CycloJoin cyclo(
        bench::paper_cluster(static_cast<int>(n), scale),
        cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kSortMergeJoin});
    const cyclo::RunReport rep = cyclo.run(r, s);
    SimDuration sync = 0;
    for (const auto& h : rep.hosts) sync = std::max(sync, h.sync);
    std::printf("%6lld  %10.3f  %10.3f  %10.3f  %10.3f  %12llu\n",
                static_cast<long long>(n), bench::seconds(rep.setup_wall),
                bench::seconds(rep.join_wall - sync), bench::seconds(sync),
                bench::seconds(rep.setup_wall + rep.join_wall),
                static_cast<unsigned long long>(rep.matches));
  }
  std::printf("\npaper (full scale): setup dominates at small rings and "
              "scales down with n; join phase faster than hash join's\n");
  return 0;
}
