// Figure 9: join phase under skew — Zipf-distributed keys with factor z in
// {0, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9}, 2 x 412 MB (36 M rows), hash join.
// Local single-host execution vs a 6-host cyclo-join ring (log-scale plot
// in the paper; join phase only, setup is skew-independent).
//
// Expected shape (paper Sec. V-D): from z ~ 0.6 the duplicate explosion
// degrades the local hash join toward nested-loops behavior; cyclo-join
// absorbs skew much better (ring buffers decouple slow hosts; smaller S_i
// partitions stay cache-resident), reaching ~5x at z = 0.9.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::int64_t scale = flags.get_int("scale", bench::kDefaultScale);
  const int ring = static_cast<int>(flags.get_int("ring", 6));
  const auto zipfs =
      flags.get_double_list("zipf", {0.0, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9});
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Figure 9 — join phase on skewed (Zipf) data, local vs cyclo-join",
      "local hash join degrades sharply for z >= 0.6; 6-host cyclo-join "
      "handles skew ~5x better at z = 0.9", scale);

  std::printf("%6s  %12s  %12s  %8s  %16s\n", "zipf", "local[s]",
              "cyclo-6[s]", "ratio", "matches");
  for (const double z : zipfs) {
    auto [r, s] = bench::uniform_pair(bench::kRowsFig9, scale, z);

    cyclo::CycloJoin local(bench::paper_cluster(1, scale),
                           cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kHashJoin});
    const cyclo::RunReport rep_local = local.run(r, s);

    cyclo::CycloJoin distributed(
        bench::paper_cluster(ring, scale),
        cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kHashJoin});
    const cyclo::RunReport rep_dist = distributed.run(r, s);

    CJ_CHECK(rep_local.matches == rep_dist.matches &&
             rep_local.checksum == rep_dist.checksum);
    const double local_s = bench::seconds(rep_local.join_wall);
    const double dist_s = bench::seconds(rep_dist.join_wall);
    std::printf("%6.2f  %12.3f  %12.3f  %7.2fx  %16llu\n", z, local_s, dist_s,
                local_s / dist_s,
                static_cast<unsigned long long>(rep_local.matches));
  }
  std::printf("\npaper (full scale): uniform data gains nothing; z = 0.9 "
              "runs ~5x faster on the 6-host ring (log-scale figure)\n");
  return 0;
}
