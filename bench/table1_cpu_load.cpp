// Table I: CPU load during the join phase of the hash join — kernel TCP vs
// RDMA, 1..4 join threads on quad-core hosts (100% = all four cores busy).
//
// Paper's measurements:
//     threads   TCP    RDMA
//        1      31%     25%
//        2      59%     50%
//        3      84%     76%
//        4      86%    100%
//
// RDMA's load tracks the join-thread count exactly (the network costs the
// CPU nothing); TCP burns extra cycles on copies/stack/switches, yet at
// four threads cannot reach full utilization — join threads stall while
// communication competes for their cores.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::int64_t scale = flags.get_int("scale", bench::kDefaultScale);
  const int ring = static_cast<int>(flags.get_int("ring", 6));
  const auto threads = flags.get_int_list("threads", {1, 2, 3, 4});
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Table I — CPU load during the hash-join phase (100% = 4 cores busy)",
      "TCP burns extra CPU on the stack yet stalls below 100%; RDMA load "
      "matches the join-thread count exactly", scale);

  auto [r, s] = bench::uniform_pair(bench::kRowsFig12, scale);

  std::printf("%8s  %14s  %14s      (paper: tcp/rdma)\n", "threads",
              "cpu load TCP", "cpu load RDMA");
  const char* paper[] = {"31% / 25%", "59% / 50%", "84% / 76%", "86% / 100%"};
  for (const auto t : threads) {
    cyclo::JoinSpec spec{.algorithm = cyclo::Algorithm::kHashJoin,
                         .join_threads = static_cast<int>(t)};

    cyclo::CycloJoin tcp(bench::paper_cluster_tcp(ring, scale), spec);
    const double tcp_load = tcp.run(r, s).cpu_load_join;
    cyclo::CycloJoin rdma(bench::paper_cluster(ring, scale), spec);
    const double rdma_load = rdma.run(r, s).cpu_load_join;

    const int idx = static_cast<int>(t) - 1;
    std::printf("%8lld  %13.0f%%  %13.0f%%      (%s)\n",
                static_cast<long long>(t), tcp_load * 100.0, rdma_load * 100.0,
                idx >= 0 && idx < 4 ? paper[idx] : "-");
  }
  return 0;
}
