// The kernel A/B cases shared by bench/micro_kernels (baseline producer)
// and bench/regress (regression gate): one measurable closure per
// kernel x variant x size, over identical inputs (same generator seeds),
// so a BENCH_kernels.json written by one binary is comparable with a
// re-measurement taken by the other.
//
// Cases cross-validate: both variants of a probe case compute an
// order-independent checksum, and checksum() lets callers assert the
// variants agree before trusting the timings.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "join/hash_join.h"
#include "join/radix.h"
#include "join/simd.h"
#include "rel/generator.h"

namespace cj::bench {

/// One measurable kernel configuration. `run` executes exactly one rep of
/// the kernel (allocation included, like the virtual-time closures in the
/// simulator) and returns a checksum when the kernel produces join output
/// (0 otherwise). Inputs are owned by the closure (shared with the other
/// cases of the same size).
struct KernelCase {
  std::string kernel;   ///< "radix_cluster", "hash_build", "hash_build_staged",
                        ///< "probe_partition", "probe_cached", "probe_simd"
  std::string variant;  ///< "legacy" | "optimized"
  std::int64_t rows = 0;
  int radix_bits = 0;
  /// Resolved SIMD dispatch tier this case's kernels execute under
  /// ("scalar" | "neon" | "avx2"). Stamped into the BENCH row; the
  /// regression gate refuses to compare a baseline taken at one tier with
  /// a measurement taken at another — kernel times across tiers are
  /// different code paths, not noise.
  std::string tier;
  /// True when run()'s return value is an order-independent join checksum
  /// that must agree across this kernel's variants (probe cases). False
  /// where the variants legitimately return different values (e.g.
  /// hash_build returns table bytes, and the layouts differ by design).
  bool cross_validate = false;
  std::function<std::uint64_t()> run;

  std::string label() const { return kernel + "/" + variant; }
};

namespace internal {

/// Inputs shared by every case of one size (kept alive via shared_ptr
/// captures in the case closures).
struct AbInputs {
  rel::Relation r;
  rel::Relation s;
  // Pre-built probe state: the probe cases measure the table walk, not the
  // build that precedes it.
  join::HashJoinStationary legacy_single, opt_single;    // radix_bits = 0
  join::PartitionedData legacy_single_r, opt_single_r;
  join::HashJoinStationary legacy_cached, opt_cached;    // cache-budget bits
  join::PartitionedData legacy_cached_r, opt_cached_r;
  join::HashJoinStationary scalar_cached;  // simd forced off, same layout
};

}  // namespace internal

/// Builds the full A/B case list for one input size. Seeds match the
/// historical micro_kernels sweep (41/42) so fresh measurements are
/// comparable with checked-in baselines.
inline std::vector<KernelCase> make_kernel_cases(std::int64_t rows) {
  const join::KernelConfig legacy_kernel = join::KernelConfig::legacy();
  const join::KernelConfig opt_kernel{};
  join::RadixConfig legacy_cfg;
  legacy_cfg.kernel = legacy_kernel;
  join::RadixConfig opt_cfg;
  opt_cfg.kernel = opt_kernel;

  auto in = std::make_shared<internal::AbInputs>();
  const auto n = static_cast<std::uint64_t>(rows);
  in->r = rel::generate({.rows = n, .key_domain = n, .seed = 41}, "bench", 1);
  in->s = rel::generate({.rows = n, .key_domain = n, .seed = 42}, "bench", 2);

  // One bit choice for both variants (the optimized layout's slightly
  // coarser pick) so items/sec compares like for like.
  const int bits = join::choose_radix_bits(static_cast<std::size_t>(rows), opt_cfg);

  const std::string legacy_tier =
      join::simd_tier_name(join::resolve_simd(legacy_kernel.simd));
  const std::string opt_tier =
      join::simd_tier_name(join::resolve_simd(opt_kernel.simd));

  std::vector<KernelCase> cases;
  const auto add = [&](const char* kernel, const char* variant, int case_bits,
                       std::function<std::uint64_t()> run,
                       bool cross_validate = false) {
    const bool legacy = std::string_view(variant) == "legacy";
    cases.push_back(KernelCase{kernel, variant, rows, case_bits,
                               legacy ? legacy_tier : opt_tier, cross_validate,
                               std::move(run)});
  };

  add("radix_cluster", "legacy", bits, [in, bits, legacy_kernel] {
    auto parts = join::radix_cluster(in->r.tuples(), bits, 8, legacy_kernel);
    return static_cast<std::uint64_t>(parts.rows());
  });
  add("radix_cluster", "optimized", bits, [in, bits, opt_kernel] {
    auto parts = join::radix_cluster(in->r.tuples(), bits, 8, opt_kernel);
    return static_cast<std::uint64_t>(parts.rows());
  });

  add("hash_build", "legacy", bits, [in, bits, legacy_cfg] {
    auto t = join::HashJoinStationary::build(in->s.tuples(), bits, legacy_cfg);
    return static_cast<std::uint64_t>(t.bytes());
  });
  add("hash_build", "optimized", bits, [in, bits, opt_cfg] {
    auto t = join::HashJoinStationary::build(in->s.tuples(), bits, opt_cfg);
    return static_cast<std::uint64_t>(t.bytes());
  });

  // Staged-build A/B: same bucket-group layout on both sides, but the
  // "legacy" variant switches the write-combining machinery off
  // (buffered_scatter = false disables both the staged scatter of the radix
  // pass and the fused region-staged table build), so this pair isolates
  // what the software write-combining path buys over random direct stores.
  // Below the staged-build size gate both variants run the direct build and
  // the ratio is ~1 by construction.
  join::RadixConfig unstaged_cfg = opt_cfg;
  unstaged_cfg.kernel.buffered_scatter = false;
  add("hash_build_staged", "legacy", bits, [in, bits, unstaged_cfg] {
    auto t = join::HashJoinStationary::build(in->s.tuples(), bits, unstaged_cfg);
    return static_cast<std::uint64_t>(t.bytes());
  });
  add("hash_build_staged", "optimized", bits, [in, bits, opt_cfg] {
    auto t = join::HashJoinStationary::build(in->s.tuples(), bits, opt_cfg);
    return static_cast<std::uint64_t>(t.bytes());
  });

  // Probe A/B, two shapes (docs/KERNELS.md): `probe_partition` at
  // radix_bits = 0 — one table far larger than L2, isolating the table
  // walk the fingerprint layout and prefetch pipeline redesign —
  // and `probe_cached` at the cache-budget bits the system would pick.
  in->legacy_single = join::HashJoinStationary::build(in->s.tuples(), 0, legacy_cfg);
  in->opt_single = join::HashJoinStationary::build(in->s.tuples(), 0, opt_cfg);
  in->legacy_single_r = join::radix_cluster(in->r.tuples(), 0, 8, legacy_kernel);
  in->opt_single_r = join::radix_cluster(in->r.tuples(), 0, 8, opt_kernel);
  in->legacy_cached =
      join::HashJoinStationary::build(in->s.tuples(), bits, legacy_cfg);
  in->opt_cached = join::HashJoinStationary::build(in->s.tuples(), bits, opt_cfg);
  in->legacy_cached_r = join::radix_cluster(in->r.tuples(), bits, 8, legacy_kernel);
  in->opt_cached_r = join::radix_cluster(in->r.tuples(), bits, 8, opt_kernel);

  const auto probe_all = [](const join::HashJoinStationary& built,
                            const join::PartitionedData& parts) {
    join::JoinResult result;
    for (std::uint32_t p = 0; p < parts.num_partitions(); ++p) {
      built.probe_partition(p, parts.partition(p), result);
    }
    return result.checksum();
  };
  add("probe_partition", "legacy", 0,
      [in, probe_all] { return probe_all(in->legacy_single, in->legacy_single_r); },
      /*cross_validate=*/true);
  add("probe_partition", "optimized", 0,
      [in, probe_all] { return probe_all(in->opt_single, in->opt_single_r); },
      /*cross_validate=*/true);
  add("probe_cached", "legacy", bits,
      [in, probe_all] { return probe_all(in->legacy_cached, in->legacy_cached_r); },
      /*cross_validate=*/true);
  add("probe_cached", "optimized", bits,
      [in, probe_all] { return probe_all(in->opt_cached, in->opt_cached_r); },
      /*cross_validate=*/true);

  // SIMD-tier A/B over identical bucket-group tables: the layout does not
  // depend on KernelConfig::simd, so forcing the scalar tier ("legacy")
  // against the resolved best tier ("optimized") isolates the vector
  // fingerprint compare itself. On a machine whose best tier IS scalar the
  // pair degenerates to a self-compare at ratio ~1 — which is what makes
  // the scalar-fallback CI job's numbers comparable.
  join::RadixConfig scalar_cfg = opt_cfg;
  scalar_cfg.kernel.simd = join::Simd::kScalar;
  in->scalar_cached =
      join::HashJoinStationary::build(in->s.tuples(), bits, scalar_cfg);
  add("probe_simd", "legacy", bits,
      [in, probe_all] { return probe_all(in->scalar_cached, in->opt_cached_r); },
      /*cross_validate=*/true);
  add("probe_simd", "optimized", bits,
      [in, probe_all] { return probe_all(in->opt_cached, in->opt_cached_r); },
      /*cross_validate=*/true);
  return cases;
}

}  // namespace cj::bench
