// Figure 7: joining a fixed data set (2 x 1.6 GB, 140 M rows per relation,
// uniform keys) with the partitioned hash join on rings of 1..6 nodes.
//
// Expected shape (paper Sec. V-B): the setup phase scales down ~1/n with
// the ring size (16.2 s -> 2.7 s across 6 hosts) while the total join
// phase stays constant — every host probes all of R exactly once, and the
// per-probe cost is independent of |S_i| (Equation (*)). Network cost is
// fully hidden behind the join (no sync time).
#include "harness.h"

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::int64_t scale = flags.get_int("scale", bench::kDefaultScale);
  const auto nodes = flags.get_int_list("nodes", {1, 2, 3, 4, 5, 6});
  const bool trace = flags.get_bool("trace", false);
  const cyclo::Backend backend = bench::backend_flag(flags);
  bench::BenchJson json(flags, "fig07_hash_scaleout");
  json.set_backend(backend);
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Figure 7 — fixed data set, partitioned hash join, ring size 1..6",
      "setup cost ~ 1/n; join phase constant; network fully hidden", scale);
  if (backend == cyclo::Backend::kRt) {
    std::printf("backend: rt — real threads and shared-memory wires; the "
                "time columns are THIS machine's wall clock, not the "
                "calibrated testbed's virtual time\n\n");
  }

  auto [r, s] = bench::uniform_pair(bench::kRowsFig7, scale);
  std::printf("|R| = |S| = %llu rows (%s per relation)\n\n",
              static_cast<unsigned long long>(r.rows()),
              human_bytes(r.bytes()).c_str());

  std::printf("%6s  %10s  %10s  %10s  %10s  %12s%s\n", "nodes", "setup[s]",
              "join[s]", "sync[s]", "total[s]", "matches",
              trace ? "  overlap" : "");
  for (const auto n : nodes) {
    cyclo::ClusterConfig cfg = bench::paper_cluster(static_cast<int>(n), scale);
    cfg.backend = backend;
    cfg.trace.enabled = trace;
    cyclo::CycloJoin cyclo(cfg,
                           cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kHashJoin});
    const cyclo::RunReport rep = cyclo.run(r, s);
    SimDuration sync = 0;
    for (const auto& h : rep.hosts) sync = std::max(sync, h.sync);
    std::printf("%6lld  %10.3f  %10.3f  %10.3f  %10.3f  %12llu",
                static_cast<long long>(n), bench::seconds(rep.setup_wall),
                bench::seconds(rep.join_wall - sync), bench::seconds(sync),
                bench::seconds(rep.setup_wall + rep.join_wall),
                static_cast<unsigned long long>(rep.matches));
    const double overlap = bench::mean_overlap_ratio(rep.metrics);
    if (trace) std::printf("  %7.2f", overlap);
    std::printf("\n");
    json.row({{"nodes", static_cast<double>(n)},
              {"setup_s", bench::seconds(rep.setup_wall)},
              {"join_s", bench::seconds(rep.join_wall - sync)},
              {"sync_s", bench::seconds(sync)},
              {"total_s", bench::seconds(rep.setup_wall + rep.join_wall)},
              {"matches", static_cast<double>(rep.matches)},
              {"overlap_ratio", overlap}});
    json.set_metrics(rep.metrics);  // largest ring wins
  }
  std::printf("\npaper (full scale): setup 16.2 s on 1 node -> 2.7 s on 6; "
              "join phase flat; sync ~ 0\n");
  json.write();
  return 0;
}
