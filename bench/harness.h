// Shared harness for the per-figure bench binaries.
//
// Every binary reproduces one table/figure of the paper's evaluation
// (Sec. V) and prints the same rows/series the paper reports. The workload
// runs at a configurable scale (default 1/32 of the paper's data volumes:
// same generators, same shapes, laptop-sized) on a simulated cluster
// calibrated to the paper's testbed:
//
//   6x IBM HS21 blades, quad-core Xeon 2.33 GHz, 4 MB L2, 6 GB RAM,
//   Chelsio T3 RNICs on 10 Gb Ethernet through one switch.
//
// kPaperCpuScale maps this machine's measured kernel costs onto the 2008
// Xeon (measured: hash build/probe ~1.35x faster here per core), keeping
// the CPU-vs-network balance — which several of the paper's findings hinge
// on — era-faithful. See EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/log.h"
#include "common/units.h"
#include "cyclo/cyclo_join.h"
#include "obs/metrics.h"
#include "rel/generator.h"

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace cj::bench {

/// Pins glibc malloc into sbrk-arena mode for the process. The kernels
/// allocate their outputs inside measured regions (deliberately — the
/// simulator bills that work as virtual time), and glibc's dynamic
/// mmap threshold makes those allocations flip between warm arena reuse
/// and mmap/munmap with fresh-page faults depending on what the process
/// happened to allocate earlier (e.g. parsing a baseline JSON first
/// fragments the arena and roughly doubled the measured chained-build
/// time). Forcing every allocation through the arena and disabling trim
/// makes a rep's cost depend on the kernel, not on allocation history.
inline void pin_allocator_for_measurement() {
#if defined(__GLIBC__)
  mallopt(M_MMAP_THRESHOLD, 1 << 30);
  mallopt(M_TRIM_THRESHOLD, 1 << 30);
#endif
}

/// Calibration of this machine's cores to the paper's 2.33 GHz Xeon.
inline constexpr double kPaperCpuScale = 1.35;

/// Default scale-down of the paper's data volumes (rows divided by this).
inline constexpr std::int64_t kDefaultScale = 32;

/// Paper workload constants (Sec. V-B): 12-byte tuples, 4-byte keys.
inline constexpr std::uint64_t kRowsFig7 = 140'000'000;  // per relation
inline constexpr std::uint64_t kRowsPerNodeFig8 = 140'000'000;  // 1.6 GB/relation/node
inline constexpr std::uint64_t kRowsFig9 = 36'000'000;   // 412 MB per relation
inline constexpr std::uint64_t kRowsFig12 = 160'000'000; // 6.7 GB per relation

/// Ring-buffer element size for a given workload scale. The paper uses
/// 1 MB transfer units (Sec. III-C); shrinking the data by `scale` without
/// shrinking the buffers would collapse a ~1600-chunk/host pipeline into a
/// handful of chunks whose drain tail dominates — so the element scales
/// with the data (floored where per-message overhead would start to bite).
inline std::size_t scaled_buffer_bytes(std::int64_t scale) {
  const std::int64_t scaled = (1LL << 20) / std::max<std::int64_t>(1, scale);
  return static_cast<std::size_t>(std::max<std::int64_t>(32 * 1024, scaled));
}

/// The paper's testbed as a ClusterConfig (RDMA transport).
inline cyclo::ClusterConfig paper_cluster(int num_hosts, std::int64_t scale,
                                          double cpu_scale = kPaperCpuScale) {
  cyclo::ClusterConfig cfg;
  cfg.num_hosts = num_hosts;
  cfg.cores_per_host = 4;
  cfg.cpu_scale = cpu_scale;
  cfg.link.bandwidth_bytes_per_sec = 1.25e9;  // 10 GbE
  cfg.link.propagation_delay = 5 * kMicrosecond;
  cfg.node.num_buffers = 16;
  cfg.node.buffer_bytes = scaled_buffer_bytes(scale);
  return cfg;
}

/// Kernel-TCP variant of the same testbed. Context switches are billed on
/// tag changes (join threads vs stack work sharing cores, paper Sec. V-G).
inline cyclo::ClusterConfig paper_cluster_tcp(int num_hosts, std::int64_t scale,
                                              double cpu_scale = kPaperCpuScale) {
  cyclo::ClusterConfig cfg = paper_cluster(num_hosts, scale, cpu_scale);
  cfg.transport = cyclo::Transport::kTcp;
  cfg.context_switch_cost = 12 * kMicrosecond;
  return cfg;
}

/// Generates the paper's uniform workload pair at 1/scale of `paper_rows`.
inline std::pair<rel::Relation, rel::Relation> uniform_pair(
    std::uint64_t paper_rows, std::int64_t scale, double zipf = 0.0) {
  const std::uint64_t rows = paper_rows / static_cast<std::uint64_t>(scale);
  rel::GenSpec spec_r{.rows = rows, .key_domain = rows, .zipf_z = zipf, .seed = 1};
  rel::GenSpec spec_s{.rows = rows, .key_domain = rows, .zipf_z = zipf, .seed = 2};
  return {rel::generate(spec_r, "R", 1), rel::generate(spec_s, "S", 2)};
}

/// Standard bench prologue: parse flags, set log level, reject typos.
inline Flags parse_flags_or_die(int argc, char** argv) {
  auto flags = Flags::parse(argc, argv);
  if (!flags.is_ok()) {
    std::fprintf(stderr, "flag error: %s\n", flags.status().to_string().c_str());
    std::exit(2);
  }
  return std::move(flags).value();
}

inline const char* backend_name(cyclo::Backend backend) {
  return backend == cyclo::Backend::kRt ? "rt" : "sim";
}

/// Parses --backend=sim|rt (default sim). sim reports virtual time on the
/// calibrated simulated testbed; rt executes the same protocol as real
/// threads and reports THIS machine's wall clock — the two are different
/// quantities, which is why BenchJson tags its output and the regression
/// gate refuses to compare across backends.
inline cyclo::Backend backend_flag(Flags& flags) {
  const std::string name = flags.get_string("backend", "sim");
  if (name == "sim") return cyclo::Backend::kSim;
  if (name == "rt") return cyclo::Backend::kRt;
  std::fprintf(stderr, "unknown --backend=%s (expected sim or rt)\n",
               name.c_str());
  std::exit(2);
}

inline void check_unused_flags(const Flags& flags) {
  for (const auto& name : flags.unused()) {
    std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
    std::exit(2);
  }
}

/// Header shared by all harnesses: what is being reproduced, at what scale.
inline void print_banner(const char* figure, const char* claim,
                         std::int64_t scale) {
  std::printf("== %s ==\n", figure);
  std::printf("paper claim: %s\n", claim);
  std::printf("workload at 1/%lld of the paper's volume; simulated cluster: "
              "quad-core 2.33 GHz hosts, 10 GbE ring\n\n",
              static_cast<long long>(scale));
}

inline double seconds(SimDuration d) { return to_seconds(d); }

/// Mean of the per-host "host<i>.overlap_ratio" gauges a traced run leaves
/// in its metrics snapshot. 0.0 for untraced runs (no such gauges).
inline double mean_overlap_ratio(const obs::MetricsSnapshot& metrics) {
  constexpr std::string_view kSuffix = ".overlap_ratio";
  double sum = 0.0;
  int n = 0;
  for (const auto& [name, value] : metrics.gauges) {
    if (name.starts_with("host") && name.ends_with(kSuffix)) {
      sum += value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

/// Machine-readable result sink for one bench binary. Rows accumulate the
/// figure's trajectory (one row per printed line of the result table) and
/// write() dumps BENCH_<figure>.json next to the human-readable stdout:
///
///   {"figure": "...", "trajectory": [{"nodes": 3, "total_s": 1.2}, ...],
///    "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}}
///
/// The output path comes from --json_out (default BENCH_<figure>.json;
/// empty string disables the dump entirely).
class BenchJson {
 public:
  BenchJson(Flags& flags, std::string figure)
      : figure_(std::move(figure)),
        path_(flags.get_string("json_out", "BENCH_" + figure_ + ".json")) {}

  void row(std::initializer_list<std::pair<const char*, double>> cells) {
    row({}, cells);
  }

  /// Row with leading string-valued cells, e.g. kernel/variant labels:
  /// row({{"kernel", "radix_cluster"}, {"variant", "legacy"}}, {{"rows", n}}).
  void row(std::initializer_list<std::pair<const char*, const char*>> labels,
           std::initializer_list<std::pair<const char*, double>> cells) {
    std::vector<Cell> out;
    out.reserve(labels.size() + cells.size());
    for (const auto& [name, value] : labels) {
      out.push_back(Cell{name, std::string("\"") + value + "\""});
    }
    for (const auto& [name, value] : cells) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", value);
      out.push_back(Cell{name, buf});
    }
    rows_.push_back(std::move(out));
  }

  /// Metrics of the run that best represents the figure (usually the last
  /// or largest configuration).
  void set_metrics(obs::MetricsSnapshot metrics) { metrics_ = std::move(metrics); }

  /// Pre-rendered kernel-profile JSON (obs::prof::KernelProfile::to_json())
  /// of a profiled rep; emitted as a "profile" key when set.
  void set_profile(std::string profile_json) { profile_ = std::move(profile_json); }

  /// Tags the dump with the backend the numbers came from. Defaults to
  /// "sim"; a bench that honors --backend must call this so sim virtual
  /// time and rt wall time can never be mistaken for each other downstream.
  void set_backend(cyclo::Backend backend) { backend_ = backend_name(backend); }

  void write() const {
    if (path_.empty()) return;
    std::string out = "{\"figure\":\"" + figure_ + "\",\"backend\":\"" +
                      backend_ + "\",\"trajectory\":[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (r > 0) out += ",";
      out += "{";
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        if (c > 0) out += ",";
        out += "\"" + rows_[r][c].name + "\":" + rows_[r][c].json;
      }
      out += "}";
    }
    out += "]";
    // Benches that never call set_metrics would otherwise dump a dead
    // {"counters":{},...} block that readers mistake for measurements.
    if (!metrics_.empty()) out += ",\"metrics\":" + metrics_.to_json();
    if (!profile_.empty()) out += ",\"profile\":" + profile_;
    out += "}\n";
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", path_.c_str());
  }

 private:
  struct Cell {
    std::string name;
    std::string json;  // pre-rendered JSON value (number or quoted string)
  };

  std::string figure_;
  std::string path_;
  std::string backend_ = "sim";
  std::vector<std::vector<Cell>> rows_;
  obs::MetricsSnapshot metrics_;
  std::string profile_;  ///< pre-rendered JSON; empty = omit
};

}  // namespace cj::bench
