// Ablation: shared rotation (Data Cyclotron mode) vs one revolution per
// query.
//
// The paper's closing direction (Sec. VII) is folding cyclo-join into the
// Data Cyclotron, where the hot set rotates continuously and queries hook
// into the stream. The payoff quantified here: k concurrent joins against
// the same rotating relation cost ONE revolution of network traffic and
// share the pipeline, instead of k sequential revolutions.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::int64_t scale = flags.get_int("scale", bench::kDefaultScale);
  const int ring = static_cast<int>(flags.get_int("ring", 6));
  const auto query_counts = flags.get_int_list("queries", {1, 2, 4, 8});
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Ablation — shared rotation: k concurrent queries on one revolution",
      "network and pipeline costs amortize across queries hooked into the "
      "same rotating hot set (Data Cyclotron direction, paper Sec. VII)",
      scale);

  auto [r, s0] = bench::uniform_pair(bench::kRowsFig9, scale);
  // Distinct stationary tables, one per query.
  std::vector<rel::Relation> tables;
  const std::uint64_t s_rows = s0.rows() / 2;
  std::int64_t max_queries = 0;
  for (const auto q : query_counts) max_queries = std::max(max_queries, q);
  for (std::int64_t q = 0; q < max_queries; ++q) {
    tables.push_back(rel::generate({.rows = s_rows,
                                    .key_domain = r.rows(),
                                    .seed = 100 + static_cast<std::uint64_t>(q)},
                                   "S" + std::to_string(q),
                                   static_cast<std::uint64_t>(q) + 2));
  }

  std::printf("%8s  %12s  %12s  %10s  %14s\n", "queries", "shared[s]",
              "separate[s]", "speedup", "wire(shared)");
  for (const auto k : query_counts) {
    cyclo::CycloJoin cyclo(bench::paper_cluster(ring, scale),
                           cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kHashJoin});

    std::vector<cyclo::SharedQuery> queries;
    for (std::int64_t q = 0; q < k; ++q) {
      queries.push_back(
          cyclo::SharedQuery{.stationary = &tables[static_cast<std::size_t>(q)]});
    }
    const cyclo::SharedRunReport shared = cyclo.run_shared(r, queries);

    // Baseline: one full cyclo-join per query, sequentially.
    SimDuration separate = 0;
    std::uint64_t check = 0;
    for (std::int64_t q = 0; q < k; ++q) {
      const cyclo::RunReport solo =
          cyclo.run(r, tables[static_cast<std::size_t>(q)]);
      separate += solo.setup_wall + solo.join_wall;
      check += solo.checksum;
    }
    CJ_CHECK(check == shared.checksum);

    const double shared_s = bench::seconds(shared.setup_wall + shared.join_wall);
    const double separate_s = bench::seconds(separate);
    std::printf("%8lld  %12.3f  %12.3f  %9.2fx  %14s\n",
                static_cast<long long>(k), shared_s, separate_s,
                separate_s / shared_s, human_bytes(shared.bytes_on_wire).c_str());
  }
  std::printf("\nsetup work is identical either way; the shared rotation "
              "removes the repeated revolutions\n");
  return 0;
}
