// Ablation: the analytical cost model (paper Sec. VII's "ongoing work")
// against the simulator — predicted vs simulated phase times per ring
// size, plus the analytical answer to the paper's crossover prediction.
#include "harness.h"
#include "model/cyclo_cost.h"

int main(int argc, char** argv) {
  using namespace cj;
  auto flags = bench::parse_flags_or_die(argc, argv);
  const std::int64_t scale = flags.get_int("scale", bench::kDefaultScale);
  const auto nodes = flags.get_int_list("nodes", {1, 2, 4, 6});
  bench::check_unused_flags(flags);

  bench::print_banner(
      "Ablation — analytical cost model vs simulation (hash join)",
      "a closed-form model of setup / join / sync, validated against the "
      "simulated execution of the real kernels", scale);

  auto [r, s] = bench::uniform_pair(bench::kRowsFig7, scale);
  const std::uint64_t rows = r.rows();

  std::printf("%6s  %22s  %22s  %12s\n", "nodes", "setup sim/model[s]",
              "join sim/model[s]", "model sync");
  for (const auto n : nodes) {
    cyclo::CycloJoin join(bench::paper_cluster(static_cast<int>(n), scale),
                          cyclo::JoinSpec{.algorithm = cyclo::Algorithm::kHashJoin});
    const cyclo::RunReport sim = join.run(r, s);
    const model::CycloCostEstimate predicted =
        model::estimate(model::JoinKind::kHash, rows, static_cast<int>(n));
    std::printf("%6lld  %10.3f / %-9.3f  %10.3f / %-9.3f  %12s\n",
                static_cast<long long>(n), bench::seconds(sim.setup_wall),
                bench::seconds(predicted.setup), bench::seconds(sim.join_wall),
                bench::seconds(predicted.join),
                predicted.network_hidden ? "hidden" : "visible");
  }

  std::printf("\nanalytical crossover (full-scale 1.6 GB/host): sort-merge "
              "overtakes hash at %d nodes (paper's expectation: ~30)\n",
              model::sort_merge_crossover_hosts(140'000'000, 100));
  const auto merge6 = model::estimate(model::JoinKind::kSortMerge, 840'000'000, 6);
  std::printf("model at the paper's Fig. 11 point (19.2 GB, 6 hosts): "
              "join %.1f s + sync %.1f s (paper measured 6.4 s + 2.3 s)\n",
              bench::seconds(merge6.join), bench::seconds(merge6.sync));
  return 0;
}
