// Point-to-point network links.
//
// A Link models one *direction* of a physical cable through the cluster
// switch: transfers serialize FIFO on the wire at the link bandwidth, then
// experience a fixed propagation/switching delay that is pipelined with the
// next transfer. A full-duplex connection between neighbors is a DuplexLink
// (two independent wires), matching 10 GbE semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/units.h"
#include "sim/core_pool.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace cj::net {

struct LinkSpec {
  /// Wire bandwidth in bytes per second. Default: 10 Gb/s Ethernet.
  double bandwidth_bytes_per_sec = 1.25e9;
  /// One-way propagation + switch latency.
  SimDuration propagation_delay = 5 * kMicrosecond;
};

/// One direction of a cable. FIFO, work-conserving, lossless.
class Link {
 public:
  Link(sim::Engine& engine, LinkSpec spec, std::string name)
      : engine_(engine), spec_(spec), name_(std::move(name)), wire_(engine, 1) {}
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Transfers `bytes` plus `extra_wire_time` of per-message overhead
  /// (e.g. the RNIC's per-work-request processing). Completes after the
  /// data has fully arrived at the far end.
  sim::Task<void> transfer(std::uint64_t bytes, SimDuration extra_wire_time = 0) {
    co_await wire_.acquire();
    const SimDuration serialize = serialization_time(bytes) + extra_wire_time;
    co_await engine_.sleep(serialize);
    busy_ += serialize;
    bytes_ += bytes;
    ++messages_;
    wire_.release();
    // Propagation overlaps with the next message's serialization.
    co_await engine_.sleep(spec_.propagation_delay);
  }

  /// Pure wire time for a payload of `bytes` at link bandwidth.
  SimDuration serialization_time(std::uint64_t bytes) const {
    return static_cast<SimDuration>(static_cast<double>(bytes) /
                                    spec_.bandwidth_bytes_per_sec * 1e9);
  }

  const LinkSpec& spec() const { return spec_; }
  const std::string& name() const { return name_; }
  std::uint64_t bytes_transferred() const { return bytes_; }
  std::uint64_t messages() const { return messages_; }
  SimDuration busy_time() const { return busy_; }

 private:
  sim::Engine& engine_;
  LinkSpec spec_;
  std::string name_;
  sim::Semaphore wire_;
  std::uint64_t bytes_ = 0;
  std::uint64_t messages_ = 0;
  SimDuration busy_ = 0;
};

/// Both directions between a pair of neighboring hosts.
struct DuplexLink {
  DuplexLink(sim::Engine& engine, LinkSpec spec, const std::string& name)
      : forward(engine, spec, name + ">"), backward(engine, spec, name + "<") {}

  Link forward;
  Link backward;
};

}  // namespace cj::net
