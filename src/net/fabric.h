// Ring fabric: the Data Roundabout's physical wiring.
//
// Hosts H0..H(n-1) are connected clockwise — each host has a duplex link to
// its successor (physically a star through one switch; the switch latency is
// folded into LinkSpec::propagation_delay, exactly as in the paper's setup
// of Chelsio RNICs through a Nortel 10 GbE switch module).
#pragma once

#include <memory>
#include <vector>

#include "common/assert.h"
#include "net/link.h"
#include "sim/engine.h"

namespace cj::net {

class RingFabric {
 public:
  RingFabric(sim::Engine& engine, int num_hosts, LinkSpec spec)
      : num_hosts_(num_hosts) {
    CJ_CHECK_MSG(num_hosts >= 1, "a ring needs at least one host");
    for (int i = 0; i < num_hosts; ++i) {
      const std::string name =
          "link[" + std::to_string(i) + "->" + std::to_string(successor(i)) + "]";
      links_.push_back(std::make_unique<DuplexLink>(engine, spec, name));
    }
  }

  int num_hosts() const { return num_hosts_; }
  int successor(int host) const { return (host + 1) % num_hosts_; }
  int predecessor(int host) const { return (host + num_hosts_ - 1) % num_hosts_; }

  /// Data direction: host → successor. (The ring rotates clockwise.)
  Link& data_link(int host) {
    CJ_CHECK(host >= 0 && host < num_hosts_);
    return links_[static_cast<std::size_t>(host)]->forward;
  }

  /// Control direction: host → predecessor (credits flow against the data).
  Link& control_link(int host) {
    CJ_CHECK(host >= 0 && host < num_hosts_);
    return links_[static_cast<std::size_t>(predecessor(host))]->backward;
  }

  /// Total payload bytes moved over all data-direction links.
  std::uint64_t total_data_bytes() const {
    std::uint64_t total = 0;
    for (const auto& l : links_) total += l->forward.bytes_transferred();
    return total;
  }

 private:
  int num_hosts_;
  std::vector<std::unique_ptr<DuplexLink>> links_;
};

}  // namespace cj::net
