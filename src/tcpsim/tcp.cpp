#include "tcpsim/tcp.h"

#include <algorithm>
#include <cstring>

namespace cj::tcpsim {

TcpConnection::TcpConnection(sim::Engine& engine, sim::CorePool& sender_cores,
                             sim::CorePool& receiver_cores, net::Link& link,
                             TcpModelConfig config)
    : engine_(engine),
      sender_cores_(sender_cores),
      receiver_cores_(receiver_cores),
      link_(link),
      config_(config) {
  CJ_CHECK(config_.segment_size > 0);
  CJ_CHECK(config_.window_segments > 0);
  tx_queue_ = std::make_unique<sim::Channel<Segment>>(engine, config_.window_segments);
  rx_queue_ = std::make_unique<sim::Channel<Segment>>(engine, config_.window_segments);
  engine_.spawn(wire_process(), "tcp-wire");
}

sim::Task<void> TcpConnection::send(std::span<const std::byte> data) {
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t len = std::min(config_.segment_size, data.size() - offset);

    // user → kernel copy plus protocol/driver work, billed to sender cores.
    Segment seg;
    const auto copy_cost = static_cast<SimDuration>(
        config_.tx_copy_ns_per_byte * static_cast<double>(len));
    co_await sender_cores_.consume(copy_cost + config_.tx_stack_cost_per_segment,
                                   "tcp-tx");
    seg.payload.resize(len);
    std::memcpy(seg.payload.data(), data.data() + offset, len);

    co_await tx_queue_->push(std::move(seg));
    offset += len;
    bytes_sent_ += len;
  }
}

sim::Task<void> TcpConnection::wire_process() {
  // The NIC DMA path: serializes segments onto the wire. Wire time itself
  // costs no host CPU (that part is hardware even for plain TCP).
  while (auto seg = co_await tx_queue_->pop()) {
    co_await link_.transfer(seg->payload.size());
    co_await rx_queue_->push(std::move(*seg));
  }
  rx_queue_->close();
}

sim::Task<void> TcpConnection::recv(std::span<std::byte> data) {
  const bool got = co_await recv_or_eof(data);
  CJ_CHECK_MSG(got, "tcp connection closed before an expected message");
}

sim::Task<bool> TcpConnection::recv_or_eof(std::span<std::byte> data) {
  std::size_t filled = 0;
  while (filled < data.size()) {
    if (rx_leftover_offset_ >= rx_leftover_.size()) {
      auto seg = co_await rx_queue_->pop();
      if (!seg.has_value()) {
        CJ_CHECK_MSG(filled == 0, "tcp connection closed mid-message");
        co_return false;
      }

      // Interrupt-driven delivery: wake-up, stack processing and the
      // kernel → user copy are all billed to the receiver's cores.
      const auto copy_cost = static_cast<SimDuration>(
          config_.rx_copy_ns_per_byte * static_cast<double>(seg->payload.size()));
      co_await receiver_cores_.consume(copy_cost + config_.rx_stack_cost_per_segment +
                                           config_.rx_wakeup_cost,
                                       "tcp-rx");
      rx_leftover_ = std::move(seg->payload);
      rx_leftover_offset_ = 0;
    }
    const std::size_t available = rx_leftover_.size() - rx_leftover_offset_;
    const std::size_t take = std::min(available, data.size() - filled);
    std::memcpy(data.data() + filled, rx_leftover_.data() + rx_leftover_offset_, take);
    rx_leftover_offset_ += take;
    filled += take;
  }
  co_return true;
}

void TcpConnection::close() {
  if (!tx_queue_->closed()) tx_queue_->close();
}

}  // namespace cj::tcpsim
