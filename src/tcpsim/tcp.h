// Kernel TCP/IP baseline transport (the paper's Fig. 2/Fig. 12 comparator).
//
// Models the software network stack of the paper's era (Linux 2.6.27 on
// 2.33 GHz Xeons) following the decomposition of Foong et al. [10] that the
// paper builds on: roughly 1 GHz of CPU per 1 Gb/s of TCP throughput, about
// half of it spent copying payload across the memory bus, the rest split
// between the protocol stack, the driver, and context switches.
//
// Unlike the RDMA substrate, every cost here is billed to the *host cores*,
// so TCP communication competes with join threads for CPU — which is
// exactly the effect the paper measures in Fig. 12 and Table I. The payload
// itself still moves (real memcpys through a kernel staging segment), so
// joins over a TCP roundabout produce bit-identical results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "net/link.h"
#include "sim/core_pool.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace cj::tcpsim {

/// Cost constants of the simulated kernel stack. Defaults are calibrated to
/// the paper's testbed: 8 cycles/byte total at 2.33 GHz ≈ 3.4 ns/byte per
/// host, split ~50 % copying / ~30 % stack+driver / ~20 % context switches
/// (paper Fig. 3).
struct TcpModelConfig {
  /// Kernel segmentation unit (socket-buffer sized batch of frames).
  std::size_t segment_size = 64 * 1024;
  /// Sender-side copy cost (user → kernel crossing), ns per byte.
  double tx_copy_ns_per_byte = 0.7;
  /// Receiver-side copy cost (kernel → user, plus the interrupt-driven
  /// delivery path which the paper notes is more expensive), ns per byte.
  double rx_copy_ns_per_byte = 1.0;
  /// Protocol stack + driver cost per segment, sender side (~43 MTU frames
  /// per 64 kB segment on era NICs without segmentation offload).
  SimDuration tx_stack_cost_per_segment = 30 * kMicrosecond;
  /// Protocol stack + driver cost per segment, receiver side.
  SimDuration rx_stack_cost_per_segment = 36 * kMicrosecond;
  /// Interrupt + scheduler wake-up work charged per segment on the
  /// receiver (coalesced interrupts, softirq, application wake-up).
  SimDuration rx_wakeup_cost = 40 * kMicrosecond;
  /// In-flight window: how many segments the connection may buffer
  /// (socket buffer / TSO unit).
  std::size_t window_segments = 8;
};

/// One reliable byte stream from a sender host to a receiver host.
///
/// send() and recv() are blocking (awaitable) and transfer whole message
/// boundaries like the roundabout needs; partial delivery is handled
/// internally by segmentation.
class TcpConnection {
 public:
  /// `sender_cores` / `receiver_cores` are the two hosts' CPU pools; all
  /// stack costs are billed there under the "tcp-tx" / "tcp-rx" tags.
  TcpConnection(sim::Engine& engine, sim::CorePool& sender_cores,
                sim::CorePool& receiver_cores, net::Link& link,
                TcpModelConfig config);

  /// Sends all of `data`. Charges sender CPU per segment, then queues the
  /// segment for wire transmission; returns once the last byte is accepted
  /// into the send window (not necessarily delivered).
  sim::Task<void> send(std::span<const std::byte> data);

  /// Receives exactly `data.size()` bytes into `data`, charging receiver
  /// CPU per segment consumed. Aborts if the stream ends mid-message.
  sim::Task<void> recv(std::span<std::byte> data);

  /// Like recv(), but a stream that ended cleanly *before any byte* of this
  /// message returns false (end-of-stream at a message boundary).
  sim::Task<bool> recv_or_eof(std::span<std::byte> data);

  /// Closes the stream after all queued data drains (sender side).
  void close();

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  const TcpModelConfig& config() const { return config_; }

 private:
  struct Segment {
    std::vector<std::byte> payload;
  };

  sim::Task<void> wire_process();

  sim::Engine& engine_;
  sim::CorePool& sender_cores_;
  sim::CorePool& receiver_cores_;
  net::Link& link_;
  TcpModelConfig config_;

  std::unique_ptr<sim::Channel<Segment>> tx_queue_;   // send buffer
  std::unique_ptr<sim::Channel<Segment>> rx_queue_;   // receive buffer
  std::vector<std::byte> rx_leftover_;                // partially consumed segment
  std::size_t rx_leftover_offset_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace cj::tcpsim
