#include "rdma/verbs.h"

#include <algorithm>
#include <cstring>

#include "obs/trace.h"

namespace cj::rdma {

// ---------------------------------------------------------------- Device

Device::Device(sim::Engine& engine, sim::CorePool& host_cores, DeviceAttr attr,
               std::string name)
    : engine_(engine),
      host_cores_(host_cores),
      attr_(attr),
      name_(std::move(name)),
      pd_(*this) {}

QueuePair& Device::create_qp(CompletionQueue* send_cq, CompletionQueue* recv_cq) {
  CJ_CHECK(send_cq != nullptr && recv_cq != nullptr);
  auto qp = std::unique_ptr<QueuePair>(new QueuePair(*this, send_cq, recv_cq));
  qp->trace_name_ = "qp" + std::to_string(qps_.size());
  qps_.push_back(std::move(qp));
  return *qps_.back();
}

std::uint64_t Device::total_retransmissions() const {
  std::uint64_t total = 0;
  for (const auto& qp : qps_) total += qp->retransmissions();
  return total;
}

std::uint64_t Device::total_rnr_retries() const {
  std::uint64_t total = 0;
  for (const auto& qp : qps_) total += qp->rnr_retries();
  return total;
}

// ------------------------------------------------------ ProtectionDomain

sim::Task<MemoryRegion*> ProtectionDomain::register_memory(std::span<std::byte> range) {
  CJ_CHECK_MSG(!range.empty(), "cannot register an empty range");
  const auto pages = static_cast<SimDuration>((range.size() + 4095) / 4096);
  const DeviceAttr& attr = device_.attr();
  const SimDuration cost =
      attr.registration_base_cost + pages * attr.registration_per_page_cost;
  co_await device_.host_cores_.consume(cost, "mr-reg");

  regions_.push_back(
      std::unique_ptr<MemoryRegion>(new MemoryRegion(range, next_lkey_++)));
  registered_bytes_ += range.size();
  co_return regions_.back().get();
}

void ProtectionDomain::deregister(MemoryRegion* mr) {
  for (auto it = regions_.begin(); it != regions_.end(); ++it) {
    if (it->get() == mr) {
      registered_bytes_ -= mr->size();
      regions_.erase(it);
      return;
    }
  }
  CJ_CHECK_MSG(false, "deregister of unknown memory region");
}

MemoryRegion* ProtectionDomain::find_region(const std::byte* ptr,
                                            std::size_t len) const {
  for (const auto& mr : regions_) {
    const std::byte* base = mr->data();
    if (ptr >= base && ptr + len <= base + mr->size()) return mr.get();
  }
  return nullptr;
}

// -------------------------------------------------------------- QueuePair

QueuePair::QueuePair(Device& device, CompletionQueue* send_cq,
                     CompletionQueue* recv_cq)
    : device_(device),
      send_cq_(send_cq),
      recv_cq_(recv_cq),
      send_queue_(std::make_unique<sim::Channel<WorkRequest>>(
          device.engine_, device.attr_.max_send_wr)) {}

void QueuePair::validate(const WorkRequest& wr) const {
  // Header-only messages (resilient retire acks) carry no payload region.
  CJ_CHECK_MSG(wr.mr != nullptr || (wr.length == 0 && wr.opcode == Opcode::kSend),
               "work request without a memory region");
  CJ_CHECK_MSG(wr.mr == nullptr || wr.offset + wr.length <= wr.mr->size(),
               "work request exceeds its memory region");
  CJ_CHECK_MSG(wr.inline_header_len <= wr.inline_header.size(),
               "inline header exceeds its fixed capacity");
  CJ_CHECK_MSG(wr.inline_header_len == 0 || wr.opcode == Opcode::kSend,
               "inline headers are only supported on kSend");
  if (wr.opcode == Opcode::kRdmaWrite || wr.opcode == Opcode::kRdmaRead) {
    CJ_CHECK_MSG(wr.remote_mr != nullptr, "one-sided op without a remote region");
    CJ_CHECK_MSG(wr.remote_offset + wr.length <= wr.remote_mr->size(),
                 "one-sided op exceeds the remote region");
  }
}

Status QueuePair::post_send(const WorkRequest& wr) {
  if (!connected()) return failed_precondition("post_send on unconnected QP");
  if (error_) return failed_precondition("post_send on QP in error state");
  if (closed()) return unavailable("post_send on closed QP");
  CJ_CHECK_MSG(wr.opcode != Opcode::kRecv, "kRecv posted to the send queue");
  validate(wr);
  if (!send_queue_->try_push(wr)) {
    return resource_exhausted("send queue full");
  }
  trace_instant("rdma.post",
                static_cast<std::int64_t>(wr.inline_header_len + wr.length));
  return Status::ok();
}

Status QueuePair::post_recv(const WorkRequest& wr) {
  CJ_CHECK_MSG(wr.opcode == Opcode::kSend || wr.opcode == Opcode::kRecv,
               "recv queue takes plain buffers");
  validate(wr);
  if (recv_queue_.size() >= device_.attr_.max_recv_wr) {
    return resource_exhausted("receive queue full");
  }
  WorkRequest recv = wr;
  recv.opcode = Opcode::kRecv;
  recv_queue_.push_back(recv);
  return Status::ok();
}

void QueuePair::close() {
  if (send_queue_ && !send_queue_->closed()) send_queue_->close();
}

void QueuePair::set_error() { error_ = true; }

void QueuePair::deliver_send(const WorkRequest& send_wr,
                             sim::FaultInjector* corruptor, int link_id) {
  // Direct data placement: the RNIC matches the incoming message against
  // the head of the pre-posted receive queue — no receiver CPU involved.
  CJ_CHECK_MSG(!recv_queue_.empty(),
               "receiver not ready: send arrived with no posted receive "
               "(flow-control protocol violated)");
  const std::size_t wire_len = send_wr.inline_header_len + send_wr.length;
  WorkRequest recv = recv_queue_.front();
  recv_queue_.pop_front();
  CJ_CHECK_MSG(recv.length >= wire_len,
               "posted receive buffer smaller than incoming message");

  std::byte* dst = recv.mr->data() + recv.offset;
  if (send_wr.inline_header_len > 0) {
    std::memcpy(dst, send_wr.inline_header.data(), send_wr.inline_header_len);
  }
  if (send_wr.length > 0) {
    std::memcpy(dst + send_wr.inline_header_len,
                send_wr.mr->data() + send_wr.offset, send_wr.length);
  }
  if (corruptor != nullptr) {
    // The sender's injector decided this message arrives damaged; flip
    // bytes in the buffer the receiver will actually read.
    corruptor->corrupt(std::span<std::byte>(dst, wire_len), link_id);
  }
  recv_cq_->push(Completion{recv.wr_id, Opcode::kRecv, wire_len});
  trace_instant("rdma.comp", static_cast<std::int64_t>(wire_len));
}

sim::Task<bool> QueuePair::send_with_retry(const WorkRequest& wr) {
  const DeviceAttr& attr = device_.attr_;
  const std::size_t wire_len = wr.inline_header_len + wr.length;
  obs::Tracer* const t = device_.engine_.tracer();
  if (t != nullptr) {
    t->begin(device_.engine_.now(), device_.trace_host_, trace_name_,
             "rdma.send", static_cast<std::int64_t>(wire_len));
  }
  SimDuration backoff = attr.retry_backoff_initial;
  for (std::uint32_t attempt = 0;; ++attempt) {
    co_await out_link_->transfer(wire_len, attr.per_wr_nic_overhead);
    // A peer in the error state (crashed host, torn-down connection) NAKs
    // immediately: no amount of retrying will get the message placed.
    if (remote_->error_) {
      if (t != nullptr) t->end(device_.engine_.now(), device_.trace_host_, trace_name_);
      co_return false;
    }

    auto verdict = sim::FaultInjector::Verdict::kDeliver;
    if (injector_ != nullptr) {
      verdict = injector_->next_message_verdict(fault_link_id_);
    }
    if (verdict != sim::FaultInjector::Verdict::kDrop) {
      if (!remote_->recv_queue_.empty() || !attr.rnr_retry) {
        // Without rnr_retry, an empty receive queue keeps the historical
        // hard abort inside deliver_send (flow-control bug, not a fault).
        const bool corrupt = verdict == sim::FaultInjector::Verdict::kCorrupt;
        remote_->deliver_send(wr, corrupt ? injector_ : nullptr, fault_link_id_);
        if (t != nullptr) t->end(device_.engine_.now(), device_.trace_host_, trace_name_);
        co_return true;
      }
      ++rnr_retries_;  // RNR NAK: receiver slow, back off and re-send
      trace_instant("rdma.rnr", static_cast<std::int64_t>(wire_len));
    }
    if (attempt >= attr.retry_limit) {
      if (t != nullptr) t->end(device_.engine_.now(), device_.trace_host_, trace_name_);
      co_return false;
    }
    if (verdict == sim::FaultInjector::Verdict::kDrop) ++retransmissions_;
    // The backoff is a nested "rdma.retry" span inside the "rdma.send"
    // span, so a viewer shows each retransmission round in place.
    if (t != nullptr) {
      t->begin(device_.engine_.now(), device_.trace_host_, trace_name_,
               "rdma.retry", attempt);
    }
    co_await device_.engine().sleep(backoff);
    if (t != nullptr) t->end(device_.engine_.now(), device_.trace_host_, trace_name_);
    backoff = std::min(backoff * 2, attr.retry_backoff_cap);
  }
}

void QueuePair::trace_instant(std::string_view name, std::int64_t arg) {
  if (obs::Tracer* t = device_.engine_.tracer()) {
    t->instant(device_.engine_.now(), device_.trace_host_, trace_name_, name, arg);
  }
}

sim::Task<void> QueuePair::sender_process() {
  const SimDuration wr_overhead = device_.attr_.per_wr_nic_overhead;
  while (auto wr = co_await send_queue_->pop()) {
    if (error_) {
      // Error state: flush everything still queued without touching the
      // wire, like a real QP transitioning through SQE/ERR.
      send_cq_->push(Completion{wr->wr_id, wr->opcode, 0, WcStatus::kFlushed});
      continue;
    }
    switch (wr->opcode) {
      case Opcode::kSend: {
        const std::size_t wire_len = wr->inline_header_len + wr->length;
        if (co_await send_with_retry(*wr)) {
          send_cq_->push(Completion{wr->wr_id, Opcode::kSend, wire_len});
        } else {
          error_ = true;
          send_cq_->push(
              Completion{wr->wr_id, Opcode::kSend, 0, WcStatus::kRetryExceeded});
        }
        break;
      }
      case Opcode::kRdmaWrite: {
        co_await out_link_->transfer(wr->length, wr_overhead);
        std::memcpy(wr->remote_mr->data() + wr->remote_offset,
                    wr->mr->data() + wr->offset, wr->length);
        send_cq_->push(Completion{wr->wr_id, Opcode::kRdmaWrite, wr->length});
        break;
      }
      case Opcode::kRdmaRead: {
        // Request travels out (header only), data returns on the in-link.
        co_await out_link_->transfer(0, wr_overhead);
        co_await in_link_->transfer(wr->length, wr_overhead);
        std::memcpy(wr->mr->data() + wr->offset,
                    wr->remote_mr->data() + wr->remote_offset, wr->length);
        send_cq_->push(Completion{wr->wr_id, Opcode::kRdmaRead, wr->length});
        break;
      }
      case Opcode::kRecv:
        CJ_CHECK_MSG(false, "kRecv in the send queue");
    }
  }
}

void connect(QueuePair& a, QueuePair& b, net::Link& a_to_b, net::Link& b_to_a) {
  CJ_CHECK_MSG(!a.connected() && !b.connected(), "QP already connected");
  a.remote_ = &b;
  a.out_link_ = &a_to_b;
  a.in_link_ = &b_to_a;
  b.remote_ = &a;
  b.out_link_ = &b_to_a;
  b.in_link_ = &a_to_b;
  a.device_.engine().spawn(a.sender_process(), a.device_.name() + "/qp-sender");
  b.device_.engine().spawn(b.sender_process(), b.device_.name() + "/qp-sender");
}

}  // namespace cj::rdma
