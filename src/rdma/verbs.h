// A verbs-style RDMA substrate on the simulated fabric.
//
// The API deliberately mirrors ibverbs/iWARP concepts — protection domains,
// registered memory regions, queue pairs, work requests, completion
// queues — because the paper's Data Roundabout is written against exactly
// this model (Chelsio T3 iWARP RNICs). Differences from real hardware:
//
//  * Transfers move data with one memcpy executed by the simulated NIC and
//    are billed to *link* time, never to host CPU — the RDMA zero-copy
//    property (paper Sec. III-B).
//  * Per-work-request NIC processing overhead produces the chunk-size
//    throughput curve of paper Fig. 5 (small messages cannot saturate the
//    wire).
//  * Memory registration bills a base + per-page CPU cost to the host's
//    cores (paper Sec. III-C: registration is expensive, so buffers must be
//    registered once and reused).
//  * Posting to a queue that lacks a matching receive aborts the simulation
//    (receiver-not-ready). Real RNICs drop the connection; in both worlds a
//    correct flow-control protocol must make this unreachable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "net/link.h"
#include "sim/core_pool.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace cj::rdma {

/// Tunable characteristics of the simulated RNIC.
struct DeviceAttr {
  /// RNIC processing time per work request (dominates small-message cost).
  SimDuration per_wr_nic_overhead = 1 * kMicrosecond;
  /// Host-CPU cost to register one memory region (syscall, pinning).
  SimDuration registration_base_cost = 10 * kMicrosecond;
  /// Host-CPU cost per 4 KiB page registered (translation + pin).
  SimDuration registration_per_page_cost = 400;  // ns
  /// Queue depths; exceeding them makes post_send/post_recv fail.
  std::uint32_t max_send_wr = 256;
  std::uint32_t max_recv_wr = 256;
  /// Completion queue capacity; overrunning a CQ aborts (as on real RNICs).
  std::uint32_t max_cq_entries = 4096;
};

enum class Opcode { kSend, kRecv, kRdmaWrite, kRdmaRead };

class MemoryRegion;

/// A work request: what to transfer from/to which registered region.
struct WorkRequest {
  std::uint64_t wr_id = 0;
  MemoryRegion* mr = nullptr;
  std::size_t offset = 0;
  std::size_t length = 0;
  Opcode opcode = Opcode::kSend;
  /// For kRdmaWrite / kRdmaRead: the target region on the remote host.
  /// The remote side must have shared it out-of-band (rkey exchange).
  MemoryRegion* remote_mr = nullptr;
  std::size_t remote_offset = 0;
};

/// Delivered when a work request finishes.
struct Completion {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::kSend;
  std::size_t byte_len = 0;
};

/// A registered, pinned memory range the RNIC may DMA from/to.
class MemoryRegion {
 public:
  std::span<std::byte> range() const { return range_; }
  std::uint32_t lkey() const { return lkey_; }
  std::byte* data() const { return range_.data(); }
  std::size_t size() const { return range_.size(); }

 private:
  friend class ProtectionDomain;
  MemoryRegion(std::span<std::byte> range, std::uint32_t lkey)
      : range_(range), lkey_(lkey) {}
  std::span<std::byte> range_;
  std::uint32_t lkey_;
};

class Device;

/// Owns memory registrations for one device.
class ProtectionDomain {
 public:
  /// Registers `range` with the RNIC. Bills the registration CPU cost to
  /// the host's cores (tag "mr-reg"). The returned region stays valid until
  /// deregistered or the PD is destroyed; `range` must outlive it.
  sim::Task<MemoryRegion*> register_memory(std::span<std::byte> range);

  /// Releases a registration. The region pointer becomes invalid.
  void deregister(MemoryRegion* mr);

  /// Finds the registered region fully containing [ptr, ptr + len), or
  /// nullptr. Work requests may only reference registered memory.
  MemoryRegion* find_region(const std::byte* ptr, std::size_t len) const;

  std::size_t registered_regions() const { return regions_.size(); }
  std::uint64_t registered_bytes() const { return registered_bytes_; }

 private:
  friend class Device;
  explicit ProtectionDomain(Device& device) : device_(device) {}

  Device& device_;
  std::uint32_t next_lkey_ = 1;
  std::uint64_t registered_bytes_ = 0;
  std::vector<std::unique_ptr<MemoryRegion>> regions_;
};

class CompletionQueue {
 public:
  CompletionQueue(sim::Engine& engine, std::uint32_t capacity)
      : queue_(engine, capacity) {}

  /// Awaits the next completion (blocking poll in verbs terms).
  sim::Task<Completion> next() {
    auto c = co_await queue_.pop();
    CJ_CHECK_MSG(c.has_value(), "completion queue destroyed while polling");
    co_return *c;
  }

  /// Non-blocking poll.
  std::optional<Completion> poll() { return queue_.try_pop(); }

  std::size_t depth() const { return queue_.size(); }

 private:
  friend class QueuePair;
  void push(Completion c) {
    CJ_CHECK_MSG(queue_.try_push(c), "completion queue overrun");
  }
  sim::Channel<Completion> queue_;
};

/// A connected, reliable queue pair. Created via Device::create_qp and
/// wired to its peer with rdma::connect().
class QueuePair {
 public:
  /// Posts a send-side work request (kSend, kRdmaWrite, kRdmaRead).
  /// Fails with kResourceExhausted when the send queue is full and with
  /// kFailedPrecondition when the QP is not connected.
  Status post_send(const WorkRequest& wr);

  /// Posts a receive buffer. Fails when the receive queue is full.
  Status post_recv(const WorkRequest& wr);

  /// Closes the send queue; in-flight work completes, then the NIC's sender
  /// process exits. Required for a clean simulation shutdown.
  void close();

  bool connected() const { return remote_ != nullptr; }
  std::size_t recv_queue_depth() const { return recv_queue_.size(); }

 private:
  friend class Device;
  friend void connect(QueuePair& a, QueuePair& b, net::Link& a_to_b,
                      net::Link& b_to_a);

  QueuePair(Device& device, CompletionQueue* send_cq, CompletionQueue* recv_cq);

  void validate(const WorkRequest& wr) const;
  sim::Task<void> sender_process();
  void deliver_send(const WorkRequest& send_wr);

  Device& device_;
  CompletionQueue* send_cq_;
  CompletionQueue* recv_cq_;
  QueuePair* remote_ = nullptr;
  net::Link* out_link_ = nullptr;
  net::Link* in_link_ = nullptr;
  std::unique_ptr<sim::Channel<WorkRequest>> send_queue_;
  std::deque<WorkRequest> recv_queue_;
};

/// One simulated RNIC, attached to one host's core pool.
class Device {
 public:
  Device(sim::Engine& engine, sim::CorePool& host_cores, DeviceAttr attr,
         std::string name);
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  ProtectionDomain& pd() { return pd_; }
  const DeviceAttr& attr() const { return attr_; }
  const std::string& name() const { return name_; }
  sim::Engine& engine() { return engine_; }
  sim::CorePool& host_cores() { return host_cores_; }

  /// Creates a queue pair completing into the given CQs (may be shared).
  QueuePair& create_qp(CompletionQueue* send_cq, CompletionQueue* recv_cq);

 private:
  friend class ProtectionDomain;
  friend class QueuePair;

  sim::Engine& engine_;
  sim::CorePool& host_cores_;
  DeviceAttr attr_;
  std::string name_;
  ProtectionDomain pd_;
  std::vector<std::unique_ptr<QueuePair>> qps_;
};

/// Wires two queue pairs together over a pair of directed links and starts
/// their NIC sender processes. Both QPs transition to "connected".
void connect(QueuePair& a, QueuePair& b, net::Link& a_to_b, net::Link& b_to_a);

}  // namespace cj::rdma
