// A verbs-style RDMA substrate on the simulated fabric.
//
// The API deliberately mirrors ibverbs/iWARP concepts — protection domains,
// registered memory regions, queue pairs, work requests, completion
// queues — because the paper's Data Roundabout is written against exactly
// this model (Chelsio T3 iWARP RNICs). Differences from real hardware:
//
//  * Transfers move data with one memcpy executed by the simulated NIC and
//    are billed to *link* time, never to host CPU — the RDMA zero-copy
//    property (paper Sec. III-B).
//  * Per-work-request NIC processing overhead produces the chunk-size
//    throughput curve of paper Fig. 5 (small messages cannot saturate the
//    wire).
//  * Memory registration bills a base + per-page CPU cost to the host's
//    cores (paper Sec. III-C: registration is expensive, so buffers must be
//    registered once and reused).
//  * Posting to a queue that lacks a matching receive aborts the simulation
//    (receiver-not-ready). Real RNICs drop the connection; in both worlds a
//    correct flow-control protocol must make this unreachable. With
//    `DeviceAttr::rnr_retry` the RNIC instead backs off and retries (RNR
//    NAK semantics), which resilient transports enable under fault
//    injection.
//  * Under an attached FaultInjector, sends can be dropped (recovered by
//    timeout-and-retransmit with capped exponential backoff, up to
//    `retry_limit`) or corrupted in flight; a QP whose retries are
//    exhausted enters an error state and flushes its queue, mirroring how
//    a real RC connection breaks.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "net/link.h"
#include "sim/core_pool.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace cj::rdma {

/// Tunable characteristics of the simulated RNIC.
struct DeviceAttr {
  /// RNIC processing time per work request (dominates small-message cost).
  SimDuration per_wr_nic_overhead = 1 * kMicrosecond;
  /// Host-CPU cost to register one memory region (syscall, pinning).
  SimDuration registration_base_cost = 10 * kMicrosecond;
  /// Host-CPU cost per 4 KiB page registered (translation + pin).
  SimDuration registration_per_page_cost = 400;  // ns
  /// Queue depths; exceeding them makes post_send/post_recv fail.
  std::uint32_t max_send_wr = 256;
  std::uint32_t max_recv_wr = 256;
  /// Completion queue capacity; overrunning a CQ puts it into an error
  /// state surfaced to pollers (or aborts, with abort_on_overrun).
  std::uint32_t max_cq_entries = 4096;

  // ----- resilience knobs (only exercised under fault injection) -------
  /// Retransmit attempts for a send the fault injector dropped before the
  /// QP gives up and enters the error state.
  std::uint32_t retry_limit = 7;
  /// First retransmit backoff; doubles per attempt up to the cap.
  SimDuration retry_backoff_initial = 20 * kMicrosecond;
  SimDuration retry_backoff_cap = 1 * kMillisecond;
  /// Treat receiver-not-ready as a transient condition (RNR NAK + retry)
  /// instead of a fatal flow-control violation.
  bool rnr_retry = false;
};

enum class Opcode { kSend, kRecv, kRdmaWrite, kRdmaRead };

class MemoryRegion;

/// A work request: what to transfer from/to which registered region.
struct WorkRequest {
  std::uint64_t wr_id = 0;
  MemoryRegion* mr = nullptr;
  std::size_t offset = 0;
  std::size_t length = 0;
  Opcode opcode = Opcode::kSend;
  /// For kRdmaWrite / kRdmaRead: the target region on the remote host.
  /// The remote side must have shared it out-of-band (rkey exchange).
  MemoryRegion* remote_mr = nullptr;
  std::size_t remote_offset = 0;
  /// Optional inline header prepended to the payload on the wire (kSend
  /// only) — models verbs inline data. The receiver sees header + payload
  /// contiguously in its posted buffer; byte_len covers both.
  std::array<std::byte, 40> inline_header{};
  std::uint32_t inline_header_len = 0;
};

/// Outcome of a work request, modeled on ibv_wc_status.
enum class WcStatus : std::uint8_t {
  kSuccess = 0,
  kRetryExceeded,  ///< transport gave up after retry_limit retransmits
  kFlushed,        ///< QP/CQ torn down with the request still queued
  kCqOverrun,      ///< the CQ overflowed; completions were lost
};

/// Delivered when a work request finishes.
struct Completion {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::kSend;
  std::size_t byte_len = 0;
  WcStatus status = WcStatus::kSuccess;

  bool ok() const { return status == WcStatus::kSuccess; }
};

/// A registered, pinned memory range the RNIC may DMA from/to.
class MemoryRegion {
 public:
  std::span<std::byte> range() const { return range_; }
  std::uint32_t lkey() const { return lkey_; }
  std::byte* data() const { return range_.data(); }
  std::size_t size() const { return range_.size(); }

 private:
  friend class ProtectionDomain;
  MemoryRegion(std::span<std::byte> range, std::uint32_t lkey)
      : range_(range), lkey_(lkey) {}
  std::span<std::byte> range_;
  std::uint32_t lkey_;
};

class Device;

/// Owns memory registrations for one device.
class ProtectionDomain {
 public:
  /// Registers `range` with the RNIC. Bills the registration CPU cost to
  /// the host's cores (tag "mr-reg"). The returned region stays valid until
  /// deregistered or the PD is destroyed; `range` must outlive it.
  sim::Task<MemoryRegion*> register_memory(std::span<std::byte> range);

  /// Releases a registration. The region pointer becomes invalid.
  void deregister(MemoryRegion* mr);

  /// Finds the registered region fully containing [ptr, ptr + len), or
  /// nullptr. Work requests may only reference registered memory.
  MemoryRegion* find_region(const std::byte* ptr, std::size_t len) const;

  std::size_t registered_regions() const { return regions_.size(); }
  std::uint64_t registered_bytes() const { return registered_bytes_; }

 private:
  friend class Device;
  explicit ProtectionDomain(Device& device) : device_(device) {}

  Device& device_;
  std::uint32_t next_lkey_ = 1;
  std::uint64_t registered_bytes_ = 0;
  std::vector<std::unique_ptr<MemoryRegion>> regions_;
};

class CompletionQueue {
 public:
  /// `abort_on_overrun` restores the historical fail-stop behavior for
  /// tests that assert an overrun is unreachable; by default an overrun is
  /// surfaced to pollers as a kCqOverrun error completion.
  CompletionQueue(sim::Engine& engine, std::uint32_t capacity,
                  bool abort_on_overrun = false)
      : queue_(engine, capacity, "cq"), abort_on_overrun_(abort_on_overrun) {}

  /// Awaits the next completion (blocking poll in verbs terms). Once the
  /// CQ has overrun or been shut down, buffered completions drain first,
  /// then every poll returns an error completion (kCqOverrun / kFlushed)
  /// instead of blocking forever on entries that were lost.
  sim::Task<Completion> next() {
    auto c = co_await queue_.pop();
    if (!c.has_value()) {
      Completion err;
      err.status = overrun_ ? WcStatus::kCqOverrun : WcStatus::kFlushed;
      co_return err;
    }
    co_return *c;
  }

  /// Non-blocking poll (nullopt covers both "empty" and "torn down").
  std::optional<Completion> poll() { return queue_.try_pop(); }

  std::size_t depth() const { return queue_.size(); }
  bool overrun() const { return overrun_; }
  bool shut_down() const { return queue_.closed(); }

  /// Tears the CQ down: pending completions still drain, further pushes
  /// are dropped, and pollers then observe kFlushed.
  void shutdown() {
    if (!queue_.closed()) queue_.close();
  }

  void set_name(std::string name) { queue_.set_name(std::move(name)); }

 private:
  friend class QueuePair;
  void push(Completion c) {
    if (queue_.closed()) return;  // torn down: completions are flushed
    if (queue_.try_push(c)) return;
    CJ_CHECK_MSG(!abort_on_overrun_, "completion queue overrun");
    overrun_ = true;
    queue_.close();  // wake pollers; they observe kCqOverrun after draining
  }
  sim::Channel<Completion> queue_;
  bool abort_on_overrun_;
  bool overrun_ = false;
};

/// A connected, reliable queue pair. Created via Device::create_qp and
/// wired to its peer with rdma::connect().
class QueuePair {
 public:
  /// Posts a send-side work request (kSend, kRdmaWrite, kRdmaRead).
  /// Fails with kResourceExhausted when the send queue is full and with
  /// kFailedPrecondition when the QP is not connected or in error.
  Status post_send(const WorkRequest& wr);

  /// Posts a receive buffer. Fails when the receive queue is full.
  Status post_recv(const WorkRequest& wr);

  /// Closes the send queue; in-flight work completes, then the NIC's sender
  /// process exits. Required for a clean simulation shutdown.
  void close();

  /// Transitions the QP to the error state: the current and all queued
  /// sends complete with kFlushed, and peers that try to reach this QP get
  /// kRetryExceeded. Models a broken RC connection (host crash, admin
  /// teardown).
  void set_error();

  bool connected() const { return remote_ != nullptr; }
  /// Entity name of this QP on its host's trace tracks ("qp0", "qp1", ...).
  const std::string& trace_name() const { return trace_name_; }
  bool in_error() const { return error_; }
  /// True once close() ran: the send queue no longer accepts work. At
  /// teardown a peer's post can legitimately race this (both ends are
  /// stopping); post_send then fails with a status instead of aborting.
  bool closed() const { return send_queue_ == nullptr || send_queue_->closed(); }
  std::size_t recv_queue_depth() const { return recv_queue_.size(); }

  /// Routes this QP's outbound messages through `injector`'s decision
  /// stream for `link_id`. Null detaches.
  void attach_fault_injector(sim::FaultInjector* injector, int link_id) {
    injector_ = injector;
    fault_link_id_ = link_id;
  }

  /// Retransmits performed after injector-dropped deliveries.
  std::uint64_t retransmissions() const { return retransmissions_; }
  /// Backoff-and-retry rounds taken on receiver-not-ready (rnr_retry mode).
  std::uint64_t rnr_retries() const { return rnr_retries_; }

 private:
  friend class Device;
  friend void connect(QueuePair& a, QueuePair& b, net::Link& a_to_b,
                      net::Link& b_to_a);

  QueuePair(Device& device, CompletionQueue* send_cq, CompletionQueue* recv_cq);

  void validate(const WorkRequest& wr) const;
  sim::Task<void> sender_process();
  sim::Task<bool> send_with_retry(const WorkRequest& wr);
  void deliver_send(const WorkRequest& send_wr, sim::FaultInjector* corruptor,
                    int link_id);
  void trace_instant(std::string_view name, std::int64_t arg);

  Device& device_;
  CompletionQueue* send_cq_;
  CompletionQueue* recv_cq_;
  QueuePair* remote_ = nullptr;
  net::Link* out_link_ = nullptr;
  net::Link* in_link_ = nullptr;
  std::unique_ptr<sim::Channel<WorkRequest>> send_queue_;
  std::deque<WorkRequest> recv_queue_;
  sim::FaultInjector* injector_ = nullptr;
  int fault_link_id_ = -1;
  std::string trace_name_;
  bool error_ = false;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t rnr_retries_ = 0;
};

/// One simulated RNIC, attached to one host's core pool.
class Device {
 public:
  Device(sim::Engine& engine, sim::CorePool& host_cores, DeviceAttr attr,
         std::string name);
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  ProtectionDomain& pd() { return pd_; }
  const DeviceAttr& attr() const { return attr_; }
  const std::string& name() const { return name_; }
  sim::Engine& engine() { return engine_; }
  sim::CorePool& host_cores() { return host_cores_; }

  /// Creates a queue pair completing into the given CQs (may be shared).
  QueuePair& create_qp(CompletionQueue* send_cq, CompletionQueue* recv_cq);

  /// Fault-report aggregates over all of this device's queue pairs.
  std::uint64_t total_retransmissions() const;
  std::uint64_t total_rnr_retries() const;

  /// Host id stamped on this device's trace events (Chrome pid).
  void set_trace_host(int host) { trace_host_ = host; }
  int trace_host() const { return trace_host_; }

 private:
  friend class ProtectionDomain;
  friend class QueuePair;

  sim::Engine& engine_;
  sim::CorePool& host_cores_;
  DeviceAttr attr_;
  std::string name_;
  int trace_host_ = 0;
  ProtectionDomain pd_;
  std::vector<std::unique_ptr<QueuePair>> qps_;
};

/// Wires two queue pairs together over a pair of directed links and starts
/// their NIC sender processes. Both QPs transition to "connected".
void connect(QueuePair& a, QueuePair& b, net::Link& a_to_b, net::Link& b_to_a);

}  // namespace cj::rdma
