// Bucket-group probe kernels, shared across SIMD tiers.
//
// Internal header: included ONLY by hash_join.cpp (scalar tier) and the
// per-ISA translation units (kernels_avx2.cpp, kernels_neon.cpp). Each of
// those instantiates the templates below with its own Ops policy, so the
// AVX2 copy is compiled under -mavx2 (full inlining of the intrinsics into
// the loop) while the scalar copy stays portable baseline code. The Ops
// policy is two static functions over one group's fingerprint array:
//
//   static std::uint32_t match_mask(const std::uint16_t* fp, std::uint16_t want);
//   static std::uint32_t empty_mask(const std::uint16_t* fp);
//
// both returning one bit per slot (bit i = slot i). Everything else —
// batching, the two-stage prefetch pipeline, overflow walks, match
// emission — is tier-independent and lives here exactly once.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>

#include "join/hash_join.h"

namespace cj::join {

namespace detail {

/// Hard cap on the probe batch size (KernelConfig::prefetch_distance is
/// clamped to it). Shared with the build pipeline in hash_join.cpp.
constexpr std::size_t kMaxProbeBatch = 64;

inline void prefetch_ro(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Portable fingerprint compare: one bit per slot, computed slot-by-slot.
/// GCC/Clang usually auto-vectorize the inner loop with the baseline ISA
/// (SSE2 on x86-64), which is exactly what the scalar tier means: no
/// hand-written intrinsics, no dispatch requirement.
template <int G>
struct ScalarGroupOps {
  static std::uint32_t match_mask(const std::uint16_t* fp, std::uint16_t want) {
    std::uint32_t m = 0;
    for (int i = 0; i < G; ++i) {
      m |= static_cast<std::uint32_t>(fp[i] == want ? 1U : 0U) << i;
    }
    return m;
  }
  static std::uint32_t empty_mask(const std::uint16_t* fp) {
    std::uint32_t m = 0;
    for (int i = 0; i < G; ++i) {
      m |= static_cast<std::uint32_t>(fp[i] == 0 ? 1U : 0U) << i;
    }
    return m;
  }
};

}  // namespace detail

/// Continues a probe's walk at group `g` after its home group turned out
/// completely full. Uncommon by construction (50% load with 16-slot groups
/// keeps most clusters inside one group), so this is the cooler tail, not
/// the hot path.
template <int G, typename Ops>
void PartitionHashTable::probe_walk(const rel::Tuple& r, std::uint32_t h,
                                    std::uint32_t g, JoinResult& result) const {
  const BucketGroup<G>* groups = groups_ptr<G>();
  const std::uint16_t want = fingerprint_of(h);
  for (;;) {
    const BucketGroup<G>& grp = groups[g];
    for (std::uint32_t cand = Ops::match_mask(grp.fp, want); cand != 0;
         cand &= cand - 1) {
      const int c = std::countr_zero(cand);
      const bool hit = grp.key[c] == r.key;
      result.add_match_if(hit, r, rel::Tuple{grp.key[c], grp.payload[c]});
    }
    if (Ops::empty_mask(grp.fp) != 0) return;
    g = next_group(g);
  }
}

/// Unpipelined probe loop (prefetch_distance == 0): one tuple at a time,
/// home group then overflow walk. This is what the batched pipeline below
/// must beat to justify its bookkeeping.
template <int G, typename Ops>
void PartitionHashTable::probe_groups(std::span<const rel::Tuple> r_run,
                                      JoinResult& result) const {
  if (prefetch_ > 0) {
    probe_groups_batched<G, Ops>(r_run, result);
    return;
  }
  const BucketGroup<G>* groups = groups_ptr<G>();
  for (const rel::Tuple& r : r_run) {
    const std::uint32_t h = hash_key(r.key);
    const std::uint32_t g = group_index(h);
    const BucketGroup<G>& grp = groups[g];
    const std::uint16_t want = fingerprint_of(h);
    for (std::uint32_t cand = Ops::match_mask(grp.fp, want); cand != 0;
         cand &= cand - 1) {
      const int c = std::countr_zero(cand);
      const bool hit = grp.key[c] == r.key;
      result.add_match_if(hit, r, rel::Tuple{grp.key[c], grp.payload[c]});
    }
    if (Ops::empty_mask(grp.fp) == 0) {
      probe_walk<G, Ops>(r, h, next_group(g), result);
    }
  }
}

/// Batched three-stage probe pipeline (AMAC-style, but with whole-batch
/// stages instead of per-probe state machines):
///
///   stage 1  hash the batch, prefetch each home group's fingerprint line;
///   stage 2  vector fingerprint compare per group → candidate and
///            group-full masks, prefetch exactly the candidate tuples'
///            key/payload lines (and the next group's line when full);
///   stage 3  key-check the candidates, emit matches, walk overflows.
///
/// Stages run one batch apart (stage 1 of batch b, stage 2 of b-1, stage 3
/// of b-2), so every prefetch has a full batch of independent work to hide
/// behind — enough to cover a memory miss for out-of-cache tables while
/// adding only mask/index bookkeeping for cache-resident ones.
template <int G, typename Ops>
void PartitionHashTable::probe_groups_batched(std::span<const rel::Tuple> r_run,
                                              JoinResult& result) const {
  const BucketGroup<G>* groups = groups_ptr<G>();
  const std::size_t n = r_run.size();
  const std::size_t batch = std::bit_floor(std::min(
      static_cast<std::size_t>(prefetch_), detail::kMaxProbeBatch));

  struct Slot {
    std::uint32_t h;
    std::uint32_t g;
    std::uint32_t cand;
    std::uint32_t full;
  };
  Slot ring[3][detail::kMaxProbeBatch];

  const std::size_t num_batches = (n + batch - 1) / batch;
  const auto bounds = [&](std::size_t b, std::size_t& lo, std::size_t& hi) {
    lo = b * batch;
    hi = std::min(n, lo + batch);
  };

  const auto stage1 = [&](std::size_t b, Slot* s) {
    std::size_t lo, hi;
    bounds(b, lo, hi);
    for (std::size_t i = lo; i < hi; ++i) {
      const std::uint32_t h = hash_key(r_run[i].key);
      const std::uint32_t g = group_index(h);
      s[i - lo] = Slot{h, g, 0, 0};
      detail::prefetch_ro(groups[g].fp);
    }
  };
  const auto stage2 = [&](std::size_t b, Slot* s) {
    std::size_t lo, hi;
    bounds(b, lo, hi);
    for (std::size_t i = lo; i < hi; ++i) {
      Slot& sl = s[i - lo];
      const BucketGroup<G>& grp = groups[sl.g];
      sl.cand = Ops::match_mask(grp.fp, fingerprint_of(sl.h));
      sl.full = Ops::empty_mask(grp.fp) == 0 ? 1U : 0U;
      for (std::uint32_t c = sl.cand; c != 0; c &= c - 1) {
        const int k = std::countr_zero(c);
        detail::prefetch_ro(&grp.key[k]);
        detail::prefetch_ro(&grp.payload[k]);
      }
      if (sl.full) detail::prefetch_ro(groups[next_group(sl.g)].fp);
    }
  };
  const auto stage3 = [&](std::size_t b, Slot* s) {
    std::size_t lo, hi;
    bounds(b, lo, hi);
    for (std::size_t i = lo; i < hi; ++i) {
      const Slot& sl = s[i - lo];
      const rel::Tuple& r = r_run[i];
      const BucketGroup<G>& grp = groups[sl.g];
      for (std::uint32_t c = sl.cand; c != 0; c &= c - 1) {
        const int k = std::countr_zero(c);
        const bool hit = grp.key[k] == r.key;
        result.add_match_if(hit, r, rel::Tuple{grp.key[k], grp.payload[k]});
      }
      if (sl.full) {
        probe_walk<G, Ops>(r, sl.h, next_group(sl.g), result);
      }
    }
  };

  for (std::size_t b = 0; b < num_batches + 2; ++b) {
    if (b < num_batches) stage1(b, ring[b % 3]);
    if (b >= 1 && b - 1 < num_batches) stage2(b - 1, ring[(b - 1) % 3]);
    if (b >= 2) stage3(b - 2, ring[(b - 2) % 3]);
  }
}

}  // namespace cj::join
