#include "join/radix.h"

#include <algorithm>
#include <utility>

namespace cj::join {

int choose_radix_bits(std::size_t s_rows, const RadixConfig& config) {
  CJ_CHECK(config.cache_budget_bytes > 0);
  // Per-tuple footprint during the probe: the tuple itself plus the hash
  // table's bucket-head and chain entries (4 bytes each, ~2x for the
  // power-of-two bucket array).
  constexpr std::size_t kBytesPerTuple = sizeof(rel::Tuple) + 12;
  int bits = 0;
  while (bits < config.max_bits) {
    const std::size_t rows_per_part = s_rows >> bits;
    if (rows_per_part * kBytesPerTuple <= config.cache_budget_bytes) break;
    ++bits;
  }
  return bits;
}

PartitionedData radix_cluster(std::span<const rel::Tuple> input, int total_bits,
                              int bits_per_pass) {
  CJ_CHECK(total_bits >= 0 && total_bits <= 24);
  CJ_CHECK(bits_per_pass >= 1);
  const std::size_t n = input.size();

  if (total_bits == 0) {
    std::vector<rel::Tuple> tuples(input.begin(), input.end());
    return PartitionedData(std::move(tuples), {0, static_cast<std::uint32_t>(n)}, 0);
  }
  CJ_CHECK_MSG(n <= 0xFFFFFFFFULL, "32-bit partition directory limits fragments to 4G rows");

  std::vector<rel::Tuple> cur(input.begin(), input.end());
  std::vector<rel::Tuple> next(n);

  // Cluster on slices of the partition id from the most-significant slice
  // down, so the final memory order is ascending by partition id.
  const std::uint32_t id_mask = (1U << total_bits) - 1;
  std::vector<std::uint32_t> boundaries = {0, static_cast<std::uint32_t>(n)};
  int consumed = 0;

  while (consumed < total_bits) {
    const int b = std::min(bits_per_pass, total_bits - consumed);
    const int slice_shift = total_bits - consumed - b;
    const std::uint32_t slice_mask = (1U << b) - 1;
    const std::uint32_t fanout = 1U << b;

    std::vector<std::uint32_t> new_boundaries;
    new_boundaries.reserve((boundaries.size() - 1) * fanout + 1);
    new_boundaries.push_back(0);

    std::vector<std::uint32_t> counts(fanout);
    for (std::size_t r = 0; r + 1 < boundaries.size(); ++r) {
      const std::uint32_t begin = boundaries[r];
      const std::uint32_t end = boundaries[r + 1];

      std::fill(counts.begin(), counts.end(), 0);
      for (std::uint32_t i = begin; i < end; ++i) {
        const std::uint32_t slice =
            ((hash_key(cur[i].key) & id_mask) >> slice_shift) & slice_mask;
        ++counts[slice];
      }
      // Exclusive prefix sum → write cursors within [begin, end).
      std::vector<std::uint32_t> cursor(fanout);
      std::uint32_t acc = begin;
      for (std::uint32_t s = 0; s < fanout; ++s) {
        cursor[s] = acc;
        acc += counts[s];
        new_boundaries.push_back(acc);
      }
      for (std::uint32_t i = begin; i < end; ++i) {
        const std::uint32_t slice =
            ((hash_key(cur[i].key) & id_mask) >> slice_shift) & slice_mask;
        next[cursor[slice]++] = cur[i];
      }
    }

    cur.swap(next);
    boundaries = std::move(new_boundaries);
    consumed += b;
  }

  CJ_CHECK(boundaries.size() == (1ULL << total_bits) + 1);
  return PartitionedData(std::move(cur), std::move(boundaries), total_bits);
}

}  // namespace cj::join
