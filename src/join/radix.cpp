#include "join/radix.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <utility>

#include "join/hash_join.h"
#include "join/scatter.h"
#include "obs/prof.h"

namespace cj::join {

int choose_radix_bits(std::size_t s_rows, const RadixConfig& config) {
  CJ_CHECK(config.cache_budget_bytes > 0);
  // Per-tuple probe-phase footprint of one S partition, derived from the
  // active table layout (group geometry and load factor live with the
  // table, not here) — a layout change resizes partitions automatically.
  const std::size_t bytes_per_tuple =
      PartitionHashTable::bytes_per_stationary_tuple(config.kernel);
  int bits = 0;
  while (bits < config.max_bits) {
    const std::size_t rows_per_part = s_rows >> bits;
    if (rows_per_part * bytes_per_tuple <= config.cache_budget_bytes) break;
    ++bits;
  }
  return bits;
}

namespace {

/// Clustering work item of the single-hash path: the tuple with its hash
/// carried alongside, so no pass ever rehashes. 16 bytes — four per cache
/// line, and unlike the bare 12-byte tuple no entry straddles a line.
struct HashedTuple {
  rel::Tuple t;
  std::uint32_t h;
};
static_assert(sizeof(HashedTuple) == 16);

using detail::kMinBufferedFanout;
using detail::kStageCap;
using detail::scatter_range;

/// The pre-optimization clustering kernel (KernelConfig::legacy()):
/// rehashes in both the count and the scatter loop of every pass and
/// scatters tuples directly to their destinations.
PartitionedData cluster_legacy(std::span<const rel::Tuple> input, int total_bits,
                               int bits_per_pass) {
  const std::size_t n = input.size();
  std::vector<rel::Tuple> cur(input.begin(), input.end());
  std::vector<rel::Tuple> next(n);

  // Cluster on slices of the partition id from the most-significant slice
  // down, so the final memory order is ascending by partition id.
  const std::uint32_t id_mask = (1U << total_bits) - 1;
  std::vector<std::uint32_t> boundaries = {0, static_cast<std::uint32_t>(n)};
  int consumed = 0;

  std::vector<std::uint32_t> counts;
  std::vector<std::uint32_t> cursor;
  while (consumed < total_bits) {
    obs::prof::ScopedProfile pass_prof(
        obs::prof::current(), consumed == 0 ? "radix_pass1" : "radix_pass2", n);
    const int b = std::min(bits_per_pass, total_bits - consumed);
    const int slice_shift = total_bits - consumed - b;
    const std::uint32_t slice_mask = (1U << b) - 1;
    const std::uint32_t fanout = 1U << b;

    std::vector<std::uint32_t> new_boundaries;
    new_boundaries.reserve((boundaries.size() - 1) * fanout + 1);
    new_boundaries.push_back(0);

    counts.resize(fanout);
    cursor.resize(fanout);
    for (std::size_t r = 0; r + 1 < boundaries.size(); ++r) {
      const std::uint32_t begin = boundaries[r];
      const std::uint32_t end = boundaries[r + 1];

      std::fill(counts.begin(), counts.end(), 0);
      for (std::uint32_t i = begin; i < end; ++i) {
        const std::uint32_t slice =
            ((hash_key(cur[i].key) & id_mask) >> slice_shift) & slice_mask;
        ++counts[slice];
      }
      // Exclusive prefix sum → write cursors within [begin, end).
      std::uint32_t acc = begin;
      for (std::uint32_t s = 0; s < fanout; ++s) {
        cursor[s] = acc;
        acc += counts[s];
        new_boundaries.push_back(acc);
      }
      for (std::uint32_t i = begin; i < end; ++i) {
        const std::uint32_t slice =
            ((hash_key(cur[i].key) & id_mask) >> slice_shift) & slice_mask;
        next[cursor[slice]++] = cur[i];
      }
    }

    cur.swap(next);
    boundaries = std::move(new_boundaries);
    consumed += b;
  }

  return PartitionedData(std::move(cur), std::move(boundaries), total_bits);
}

/// The cache-conscious kernel. The first pass hashes each key exactly once
/// (into a transient side array used by its own scatter); if more passes
/// follow, the scatter materializes HashedTuples so no later pass ever
/// rehashes, and the final pass strips the hashes while scattering bare
/// tuples into the output. A single-pass clustering therefore never pays
/// for the 16-byte representation at all. With `buffered`, every scatter
/// stages kStageCap entries per destination and flushes them in bulk.
PartitionedData cluster_single_hash(std::span<const rel::Tuple> input,
                                    int total_bits, int bits_per_pass,
                                    bool buffered) {
  const std::size_t n = input.size();
  const std::uint32_t id_mask = (1U << total_bits) - 1;
  std::vector<rel::Tuple> out(n);

  std::vector<std::uint32_t> counts;
  std::vector<std::uint32_t> cursor;
  std::vector<std::uint32_t> fill;
  std::vector<rel::Tuple> stage_t;
  std::vector<HashedTuple> stage_h;

  // ---- first pass: counts straight off the bare input, hashing once ----
  std::optional<obs::prof::ScopedProfile> pass_prof;
  pass_prof.emplace(obs::prof::current(), "radix_pass1", n);
  const int b1 = std::min(bits_per_pass, total_bits);
  const int shift1 = total_bits - b1;
  const std::uint32_t fanout1 = 1U << b1;
  const bool only_pass = b1 == total_bits;
  const bool staged1 = buffered && fanout1 >= kMinBufferedFanout;

  std::vector<std::uint32_t> hashes(n);
  counts.assign(fanout1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t h = hash_key(input[i].key);
    hashes[i] = h;
    ++counts[(h & id_mask) >> shift1];  // top slice: no further mask needed
  }

  std::vector<std::uint32_t> boundaries(static_cast<std::size_t>(fanout1) + 1);
  cursor.resize(fanout1);
  std::uint32_t acc = 0;
  for (std::uint32_t s = 0; s < fanout1; ++s) {
    cursor[s] = acc;
    acc += counts[s];
    boundaries[s + 1] = acc;
  }
  if (staged1) fill.assign(fanout1, 0);
  const auto slice1 = [&](std::size_t i) { return (hashes[i] & id_mask) >> shift1; };

  if (only_pass) {
    if (staged1) stage_t.resize(static_cast<std::size_t>(fanout1) * kStageCap);
    scatter_range<rel::Tuple>(0, n, staged1, fanout1, cursor, fill, stage_t,
                              out.data(), slice1,
                              [&](std::size_t i) { return input[i]; });
    return PartitionedData(std::move(out), std::move(boundaries), total_bits);
  }

  std::vector<HashedTuple> cur(n);
  if (staged1) stage_h.resize(static_cast<std::size_t>(fanout1) * kStageCap);
  scatter_range<HashedTuple>(0, n, staged1, fanout1, cursor, fill, stage_h,
                             cur.data(), slice1, [&](std::size_t i) {
                               return HashedTuple{input[i], hashes[i]};
                             });
  hashes = {};  // later passes carry the hash inside the HashedTuples
  pass_prof.reset();
  int consumed = b1;
  std::vector<HashedTuple> next;  // allocated only if a middle pass needs it

  // ---- remaining passes over the HashedTuple representation ----
  while (consumed < total_bits) {
    obs::prof::ScopedProfile later_prof(obs::prof::current(), "radix_pass2", n);
    const int b = std::min(bits_per_pass, total_bits - consumed);
    const int slice_shift = total_bits - consumed - b;
    const std::uint32_t slice_mask = (1U << b) - 1;
    const std::uint32_t fanout = 1U << b;
    const bool last_pass = consumed + b == total_bits;
    if (!last_pass && next.size() != n) next.resize(n);

    std::vector<std::uint32_t> new_boundaries;
    new_boundaries.reserve((boundaries.size() - 1) * fanout + 1);
    new_boundaries.push_back(0);

    counts.resize(fanout);
    cursor.resize(fanout);
    const bool staged = buffered && fanout >= kMinBufferedFanout;
    if (staged) {
      fill.assign(fanout, 0);
      if (last_pass) {
        stage_t.resize(static_cast<std::size_t>(fanout) * kStageCap);
      } else {
        stage_h.resize(static_cast<std::size_t>(fanout) * kStageCap);
      }
    }

    const auto slice_of = [&](std::size_t i) {
      return ((cur[i].h & id_mask) >> slice_shift) & slice_mask;
    };

    for (std::size_t r = 0; r + 1 < boundaries.size(); ++r) {
      const std::uint32_t begin = boundaries[r];
      const std::uint32_t end = boundaries[r + 1];

      std::fill(counts.begin(), counts.end(), 0);
      for (std::uint32_t i = begin; i < end; ++i) ++counts[slice_of(i)];

      std::uint32_t pos = begin;
      for (std::uint32_t s = 0; s < fanout; ++s) {
        cursor[s] = pos;
        pos += counts[s];
        new_boundaries.push_back(pos);
      }

      if (last_pass) {
        scatter_range<rel::Tuple>(begin, end, staged, fanout, cursor, fill,
                                  stage_t, out.data(), slice_of,
                                  [&](std::size_t i) { return cur[i].t; });
      } else {
        scatter_range<HashedTuple>(begin, end, staged, fanout, cursor, fill,
                                   stage_h, next.data(), slice_of,
                                   [&](std::size_t i) { return cur[i]; });
      }
    }

    if (!last_pass) cur.swap(next);
    boundaries = std::move(new_boundaries);
    consumed += b;
  }

  return PartitionedData(std::move(out), std::move(boundaries), total_bits);
}

}  // namespace

PartitionedData radix_cluster(std::span<const rel::Tuple> input, int total_bits,
                              int bits_per_pass, const KernelConfig& kernel) {
  CJ_CHECK(total_bits >= 0 && total_bits <= 24);
  CJ_CHECK(bits_per_pass >= 1);
  const std::size_t n = input.size();

  if (total_bits == 0) {
    std::vector<rel::Tuple> tuples(input.begin(), input.end());
    return PartitionedData(std::move(tuples), {0, static_cast<std::uint32_t>(n)}, 0);
  }
  CJ_CHECK_MSG(n <= 0xFFFFFFFFULL, "32-bit partition directory limits fragments to 4G rows");

  if (kernel.cache_hashes) {
    return cluster_single_hash(input, total_bits, bits_per_pass,
                               kernel.buffered_scatter);
  }
  // buffered_scatter rides the HashedTuple representation (the staging
  // entries carry the hash), so without cache_hashes it has no effect.
  return cluster_legacy(input, total_bits, bits_per_pass);
}

}  // namespace cj::join
