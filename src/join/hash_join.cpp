#include "join/hash_join.h"

#include <algorithm>
#include <bit>

#include "obs/prof.h"

namespace cj::join {

namespace {

/// Hard cap on the probe look-ahead ring (KernelConfig::prefetch_distance
/// is clamped to it).
constexpr std::size_t kMaxPrefetch = 64;

inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

inline void prefetch_write(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace

void PartitionHashTable::build(std::span<const rel::Tuple> s_partition,
                               int radix_bits, const KernelConfig& kernel) {
  obs::prof::ScopedProfile prof(obs::prof::current(), "hash_build",
                                s_partition.size());
  rows_ = s_partition.size();
  shift_ = radix_bits;
  fingerprint_ = kernel.fingerprint_table;
  prefetch_ = std::clamp(kernel.prefetch_distance, 0,
                         static_cast<int>(kMaxPrefetch));
  if (fingerprint_) {
    build_fingerprint(s_partition);
  } else {
    build_chained(s_partition);
  }
}

void PartitionHashTable::build_chained(std::span<const rel::Tuple> s_partition) {
  tuples_.assign(s_partition.begin(), s_partition.end());
  const std::size_t n = tuples_.size();

  const std::size_t buckets = std::bit_ceil(std::max<std::size_t>(4, n));
  mask_ = static_cast<std::uint32_t>(buckets - 1);
  heads_.assign(buckets, -1);
  next_.assign(n, -1);

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t b = bucket_index(hash_key(tuples_[i].key));
    next_[i] = heads_[b];
    heads_[b] = static_cast<std::int32_t>(i);
  }
}

void PartitionHashTable::build_fingerprint(
    std::span<const rel::Tuple> s_partition) {
  // ≤50% load factor: collision clusters stay short and at least one
  // bucket is always empty, which is what terminates a probe's walk.
  const std::size_t buckets = std::bit_ceil(std::max<std::size_t>(8, rows_ * 2));
  mask_ = static_cast<std::uint32_t>(buckets - 1);
  buckets_.assign(buckets, Bucket{});

  const auto insert = [this](const rel::Tuple& t, std::uint32_t h) {
    std::uint32_t b = bucket_index(h);
    while (buckets_[b].fp != 0) b = (b + 1) & mask_;
    buckets_[b] = Bucket{t.key, fingerprint_of(h), 0, t.payload};
  };

  // Inserts land on random buckets; pipeline them like the probe loop so
  // the (write) miss of insert i+k overlaps the work of inserts i..i+k-1.
  const std::size_t n = s_partition.size();
  const std::size_t k = std::bit_floor(
      std::min(static_cast<std::size_t>(prefetch_), n));
  if (k == 0) {
    for (const rel::Tuple& t : s_partition) insert(t, hash_key(t.key));
    return;
  }
  std::uint32_t ring[kMaxPrefetch];
  for (std::size_t j = 0; j < k; ++j) {
    ring[j] = hash_key(s_partition[j].key);
    prefetch_write(&buckets_[bucket_index(ring[j])]);
  }
  const std::size_t ring_mask = k - 1;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t h = ring[i & ring_mask];
    if (i + k < n) {
      const std::uint32_t ahead = hash_key(s_partition[i + k].key);
      ring[i & ring_mask] = ahead;
      prefetch_write(&buckets_[bucket_index(ahead)]);
    }
    insert(s_partition[i], h);
  }
}

void PartitionHashTable::probe(std::span<const rel::Tuple> r_run,
                               JoinResult& result) const {
  if (rows_ == 0) return;
  obs::prof::ScopedProfile prof(obs::prof::current(), "probe", r_run.size());
  if (!fingerprint_) {
    for (const rel::Tuple& r : r_run) probe_one_chained(r, result);
    return;
  }

  // Power-of-two look-ahead so the ring index is a mask, not a divide.
  const std::size_t n = r_run.size();
  const std::size_t k = std::bit_floor(
      std::min(static_cast<std::size_t>(prefetch_), n));
  if (k == 0) {
    for (const rel::Tuple& r : r_run) {
      probe_one_fingerprint(r, hash_key(r.key), result);
    }
    return;
  }

  // Software pipeline: hash and prefetch the bucket of the tuple k
  // positions ahead, carrying the hashes in a small ring so each is
  // computed exactly once. By the time a tuple is probed its bucket line
  // has been in flight for k probes.
  std::uint32_t ring[kMaxPrefetch];
  for (std::size_t j = 0; j < k; ++j) {
    ring[j] = hash_key(r_run[j].key);
    prefetch_read(&buckets_[bucket_index(ring[j])]);
  }
  const std::size_t ring_mask = k - 1;
  for (std::size_t i = 0; i < n - k; ++i) {  // steady state: always refills
    const std::uint32_t h = ring[i & ring_mask];
    const std::uint32_t ahead = hash_key(r_run[i + k].key);
    ring[i & ring_mask] = ahead;
    prefetch_read(&buckets_[bucket_index(ahead)]);
    probe_one_fingerprint(r_run[i], h, result);
  }
  for (std::size_t i = n - k; i < n; ++i) {  // drain the ring
    probe_one_fingerprint(r_run[i], ring[i & ring_mask], result);
  }
}

HashJoinStationary HashJoinStationary::build(std::span<const rel::Tuple> s,
                                             int radix_bits,
                                             const RadixConfig& config) {
  HashJoinStationary out;
  out.parts_ = radix_cluster(s, radix_bits, config.bits_per_pass, config.kernel);
  const std::uint32_t num_parts = out.parts_.num_partitions();
  out.tables_.resize(num_parts);
  for (std::uint32_t p = 0; p < num_parts; ++p) {
    out.tables_[p].build(out.parts_.partition(p), radix_bits, config.kernel);
  }
  return out;
}

std::size_t HashJoinStationary::bytes() const {
  std::size_t total = 0;
  for (const auto& t : tables_) total += t.bytes();
  return total;
}

}  // namespace cj::join
