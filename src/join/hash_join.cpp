#include "join/hash_join.h"

#include <bit>

namespace cj::join {

void PartitionHashTable::build(std::span<const rel::Tuple> s_partition,
                               int radix_bits) {
  tuples_.assign(s_partition.begin(), s_partition.end());
  const std::size_t n = tuples_.size();
  shift_ = radix_bits;

  const std::size_t buckets =
      std::bit_ceil(std::max<std::size_t>(4, n));
  mask_ = static_cast<std::uint32_t>(buckets - 1);
  heads_.assign(buckets, -1);
  next_.assign(n, -1);

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t b = bucket_of(tuples_[i].key);
    next_[i] = heads_[b];
    heads_[b] = static_cast<std::int32_t>(i);
  }
}

void PartitionHashTable::probe(std::span<const rel::Tuple> r_run,
                               JoinResult& result) const {
  if (tuples_.empty()) return;
  for (const rel::Tuple& r : r_run) {
    const std::uint32_t b = bucket_of(r.key);
    for (std::int32_t i = heads_[b]; i >= 0; i = next_[static_cast<std::size_t>(i)]) {
      const rel::Tuple& s = tuples_[static_cast<std::size_t>(i)];
      if (s.key == r.key) result.add_match(r, s);
    }
  }
}

HashJoinStationary HashJoinStationary::build(std::span<const rel::Tuple> s,
                                             int radix_bits,
                                             const RadixConfig& config) {
  HashJoinStationary out;
  out.parts_ = radix_cluster(s, radix_bits, config.bits_per_pass);
  const std::uint32_t num_parts = out.parts_.num_partitions();
  out.tables_.resize(num_parts);
  for (std::uint32_t p = 0; p < num_parts; ++p) {
    out.tables_[p].build(out.parts_.partition(p), radix_bits);
  }
  return out;
}

std::size_t HashJoinStationary::bytes() const {
  std::size_t total = 0;
  for (const auto& t : tables_) total += t.bytes();
  return total;
}

}  // namespace cj::join
