#include "join/hash_join.h"

#include <algorithm>
#include <bit>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <emmintrin.h>
#endif

#include "join/hash_group_impl.h"
#include "join/scatter.h"
#include "obs/prof.h"

namespace cj::join {

namespace {

using detail::kMaxProbeBatch;

inline void prefetch_write(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Stationary setups whose total table footprint is at least this large
/// take the fused (write-combining) build: the radix pass clusters on extra
/// high hash bits so every table is built region by region from an
/// L2-resident staging image and streamed out with non-temporal stores.
/// Below it the tables stay LLC-resident across the whole build and the
/// direct lean loop is cheaper.
constexpr std::size_t kStagedBuildMinTableBytes = 8U << 20;

/// Target final-table bytes per staged-build region. The compact staging
/// image is a quarter of this (16 B/slot table, 4 B/slot image), so a
/// region's random stores land in ≤ kStagedRegionTableBytes/4 of hot
/// scratch — comfortably inside L2.
constexpr std::size_t kStagedRegionTableBytes = 512U << 10;

/// Fan-out cap of the fused clustering pass (partitions × regions).
constexpr int kMaxFusedFanoutBits = 10;

/// Direct builds whose whole table fits this budget skip the batched-hash
/// + prefetch pipeline: the random inserts stay cache-resident, so the
/// pipeline's extra pass and bookkeeping is all cost and no latency hidden.
constexpr std::size_t kDirectPipelineMinTableBytes = 1U << 20;

/// Compact staging image of one bucket group: the fingerprint lanes plus a
/// 16-bit index per slot naming the tuple that will occupy it (region-slice
/// position, or carry-list position when kCarryFlag is set). One cache line
/// per group at G = 16 — a quarter of the final group — so the random
/// stores of an insert burst stay inside a scratch window that fits L2.
/// The final inline-tuple table is then written strictly sequentially.
template <int G>
struct StagedGroup {
  std::uint16_t fp[G];
  std::uint16_t idx[G];
};
static_assert(sizeof(StagedGroup<16>) == 64);
static_assert(sizeof(StagedGroup<8>) == 32);

/// idx tag: the slot's tuple lives in the carry list (spill from the
/// previous region), not the region slice.
constexpr std::uint16_t kCarryFlag = 0x8000;

}  // namespace

void PartitionHashTable::init_build(std::size_t rows, int radix_bits,
                                    const KernelConfig& kernel) {
  rows_ = rows;
  shift_ = radix_bits;
  fingerprint_ = kernel.fingerprint_table;
  prefetch_ = std::clamp(kernel.prefetch_distance, 0,
                         static_cast<int>(kMaxProbeBatch));
  group_size_ = kernel.group_size == 8 ? 8 : 16;
  tier_ = resolve_simd(kernel.simd);

  // Reset whichever layout a previous build left behind.
  slab_ = TableSlab();
  groups_ = nullptr;
  num_groups_ = 0;
  tuples_.clear();
  heads_.clear();
  next_.clear();
}

void PartitionHashTable::attach_groups(std::size_t table_bytes,
                                       std::byte* storage) {
  if (storage != nullptr) {
    groups_ = storage;
    return;
  }
  slab_ = TableSlab(table_bytes);
  groups_ = slab_.data();
}

void PartitionHashTable::build(std::span<const rel::Tuple> s_partition,
                               int radix_bits, const KernelConfig& kernel) {
  obs::prof::ScopedProfile prof(obs::prof::current(), "hash_build",
                                s_partition.size());
  init_build(s_partition.size(), radix_bits, kernel);
  if (!fingerprint_) {
    build_chained(s_partition);
  } else if (group_size_ == 8) {
    build_groups<8>(s_partition, kernel, nullptr);
  } else {
    build_groups<16>(s_partition, kernel, nullptr);
  }
}

void PartitionHashTable::build_direct(std::span<const rel::Tuple> s_partition,
                                      int radix_bits, const KernelConfig& kernel,
                                      std::byte* storage) {
  obs::prof::ScopedProfile prof(obs::prof::current(), "hash_build",
                                s_partition.size());
  init_build(s_partition.size(), radix_bits, kernel);
  CJ_DCHECK(fingerprint_);
  if (group_size_ == 8) {
    build_groups<8>(s_partition, kernel, storage);
  } else {
    build_groups<16>(s_partition, kernel, storage);
  }
}

void PartitionHashTable::build_staged(std::span<const rel::Tuple> slice,
                                      std::span<const std::uint32_t> region_offsets,
                                      int radix_bits, const KernelConfig& kernel,
                                      std::byte* storage) {
  obs::prof::ScopedProfile prof(obs::prof::current(), "hash_build", slice.size());
  init_build(slice.size(), radix_bits, kernel);
  CJ_DCHECK(fingerprint_);
  const bool ok = group_size_ == 8
                      ? build_groups_staged<8>(slice, region_offsets, storage)
                      : build_groups_staged<16>(slice, region_offsets, storage);
  if (!ok) {
    // Pathological region skew (≥ 2^15 tuples hashing into one region's
    // range): the 16-bit staging indices cannot span it, so rebuild this
    // partition with the direct pipelined path.
    if (group_size_ == 8) {
      build_groups<8>(slice, kernel, storage);
    } else {
      build_groups<16>(slice, kernel, storage);
    }
  }
}

void PartitionHashTable::build_chained(std::span<const rel::Tuple> s_partition) {
  tuples_.assign(s_partition.begin(), s_partition.end());
  const std::size_t n = tuples_.size();

  const std::size_t buckets = std::bit_ceil(std::max<std::size_t>(4, n));
  mask_ = static_cast<std::uint32_t>(buckets - 1);
  heads_.assign(buckets, -1);
  next_.assign(n, -1);

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t b = bucket_index(hash_key(tuples_[i].key));
    next_[i] = heads_[b];
    heads_[b] = static_cast<std::int32_t>(i);
  }
}

template <int G>
void PartitionHashTable::build_groups(std::span<const rel::Tuple> s_partition,
                                      const KernelConfig& kernel,
                                      std::byte* storage) {
  (void)kernel;
  const std::size_t n = s_partition.size();
  num_groups_ = groups_for(n, G);

  // Clear only the fingerprint lanes (never value-initialize the table:
  // the zero-fill of a full value-init, 32 B/slot, was the single largest
  // cost of the old build). Keys/payloads are written exactly once, by
  // their insert; fp == 0 alone defines emptiness.
  attach_groups(num_groups_ * sizeof(BucketGroup<G>), storage);
  BucketGroup<G>* groups = static_cast<BucketGroup<G>*>(groups_);
  for (std::uint32_t g = 0; g < num_groups_; ++g) {
    std::memset(groups[g].fp, 0, sizeof(groups[g].fp));
  }
  if (n == 0) return;

  // Per-group occupancy counters, one byte per group: table_bytes/256 of
  // transient state, hot in L1 throughout the build. Inserts assign slots
  // from the counter instead of scanning fingerprints for the first zero —
  // the scan's data-dependent exit was one branch mispredict per insert.
  // Slot order is identical (fps start zeroed, slots fill 0..G-1), so the
  // layout matches a scan-built table bit for bit.
  std::vector<std::uint8_t> fill(num_groups_, 0);
  const auto insert = [&](const rel::Tuple& t, std::uint32_t h) {
    std::uint32_t g = group_index(h);
    while (fill[g] == G) g = next_group(g);  // spill only if full
    const int c = fill[g]++;
    BucketGroup<G>& grp = groups[g];
    grp.fp[c] = fingerprint_of(h);
    grp.key[c] = t.key;
    grp.payload[c] = t.payload;
  };

  // Cache-resident tables (the common case: choose_radix_bits sizes
  // partitions for the cache budget) take the lean loop — hash inline,
  // insert, nothing else. The batched-hash + prefetch machinery below
  // only earns its bookkeeping when inserts actually miss.
  if (num_groups_ * sizeof(BucketGroup<G>) <= kDirectPipelineMinTableBytes ||
      prefetch_ == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      insert(s_partition[i], hash_key(s_partition[i].key));
    }
    return;
  }

  // Batched hashing: the whole slice is hashed before any bucket is
  // touched, so the hash ALU work never serializes behind bucket misses
  // and the insert loop reads hashes from a sequential array.
  std::vector<std::uint32_t> hashes(n);
  for (std::size_t i = 0; i < n; ++i) {
    hashes[i] = hash_key(s_partition[i].key);
  }

  // Pipelined build: inserts land on random groups; prefetch the group of
  // the insert k positions ahead so its (write) miss overlaps inserts
  // i..i+k-1. Builds want a much deeper pipeline than probes — a store
  // burst per insert leaves less independent work per miss — so k runs at
  // 4x the probe distance, up to the shared batch cap.
  const std::size_t k =
      std::min({static_cast<std::size_t>(4 * prefetch_), kMaxProbeBatch, n});
  for (std::size_t j = 0; j < k; ++j) {
    prefetch_write(groups[group_index(hashes[j])].fp);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (i + k < n) prefetch_write(groups[group_index(hashes[i + k])].fp);
    insert(s_partition[i], hashes[i]);
  }
}

template <int G>
bool PartitionHashTable::build_groups_staged(
    std::span<const rel::Tuple> slice,
    std::span<const std::uint32_t> region_offsets, std::byte* storage) {
  const std::size_t n = slice.size();
  const std::uint32_t nreg =
      static_cast<std::uint32_t>(region_offsets.size() - 1);
  const int rb = std::countr_zero(nreg);
  num_groups_ = groups_for(n, G);
  const std::uint32_t ng = num_groups_;

  // No fingerprint pre-clear here: the sequential finalization below
  // writes every group's full fingerprint block exactly once.
  attach_groups(ng * sizeof(BucketGroup<G>), storage);
  BucketGroup<G>* groups = static_cast<BucketGroup<G>*>(groups_);

  // Region r owns the contiguous group range [g_lo(r), g_lo(r+1)).
  // Exact because group_index is fastrange over the remixed key and the
  // regions are equal slices of that key's top bits: the smallest remixed
  // key of region r maps to precisely (r * ng) >> rb.
  const auto g_lo = [&](std::uint32_t r) {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(r) * ng) >> rb);
  };

  const std::uint32_t max_region_groups = (ng + nreg - 1) / nreg + 1;
  std::vector<StagedGroup<G>> scratch(max_region_groups);
  std::vector<std::uint8_t> fill(max_region_groups);

  // Spills that walked past a region's last group; they resume at the next
  // region's first group (everything in between was full, which also keeps
  // the probe-walk termination invariant intact).
  struct Carry {
    rel::Tuple t;
    std::uint16_t fp;
  };
  std::vector<Carry> carry_in;
  std::vector<Carry> carry_out;

  obs::prof::ScopedProfile stage_prof(obs::prof::current(), "build_stage", n);
  const std::uint32_t base_off = region_offsets.front();
  for (std::uint32_t r = 0; r < nreg; ++r) {
    const std::uint32_t lo = g_lo(r);
    const std::uint32_t ngr = g_lo(r + 1) - lo;
    const std::uint32_t rows = region_offsets[r + 1] - region_offsets[r];
    if (rows >= kCarryFlag || carry_in.size() >= kCarryFlag) return false;
    const rel::Tuple* base = slice.data() + (region_offsets[r] - base_off);

    std::memset(scratch.data(), 0, ngr * sizeof(StagedGroup<G>));
    std::fill(fill.begin(), fill.begin() + ngr, 0);
    carry_out.clear();

    const auto place = [&](std::uint32_t local, std::uint16_t fp,
                           std::uint16_t id, const rel::Tuple& t) {
      while (local < ngr && fill[local] == G) ++local;
      if (local >= ngr) {
        carry_out.push_back(Carry{t, fp});
        return;
      }
      const int c = fill[local]++;
      scratch[local].fp[c] = fp;
      scratch[local].idx[c] = id;
    };

    for (std::size_t ci = 0; ci < carry_in.size(); ++ci) {
      place(0, carry_in[ci].fp, static_cast<std::uint16_t>(kCarryFlag | ci),
            carry_in[ci].t);
    }
    for (std::uint32_t i = 0; i < rows; ++i) {
      const std::uint32_t h = hash_key(base[i].key);
      // A hash on the region's upper boundary can map to g_lo(r+1) itself
      // (fastrange rounding); place() then carries it to the next region,
      // which is exactly its home group.
      place(group_index(h) - lo, fingerprint_of(h),
            static_cast<std::uint16_t>(i), base[i]);
    }

    // Sequential finalization: stream the region's groups out in index
    // order — fingerprint block from scratch (including its zeros; empty
    // slots' key/payload lanes stay unwritten, probes never read them),
    // tuples gathered through the staging indices. Prefetch one group
    // ahead: the gather's reads wander the region slice, not the table.
    // On x86 each group is composed in a cache-hot local image and
    // streamed to the table with non-temporal stores: the table is
    // write-only DRAM traffic, no read-for-ownership of lines this build
    // never reads — the direct build cannot do this (random stores), and
    // it is the staged path's decisive edge once the tables in aggregate
    // overflow the LLC.
#if defined(__x86_64__) || defined(__i386__)
    alignas(64) BucketGroup<G> image;
#endif
    for (std::uint32_t lg = 0; lg < ngr; ++lg) {
      if (lg + 1 < ngr) {
        const StagedGroup<G>& nx = scratch[lg + 1];
        const int ncnt = fill[lg + 1];
        for (int c = 0; c < ncnt; ++c) {
          if (!(nx.idx[c] & kCarryFlag)) detail::prefetch_ro(&base[nx.idx[c]]);
        }
      }
#if defined(__x86_64__) || defined(__i386__)
      BucketGroup<G>& dst = image;
#else
      BucketGroup<G>& dst = groups[lo + lg];
#endif
      const StagedGroup<G>& src = scratch[lg];
      std::memcpy(dst.fp, src.fp, sizeof(dst.fp));
      const int cnt = fill[lg];
      for (int c = 0; c < cnt; ++c) {
        const std::uint16_t id = src.idx[c];
        const rel::Tuple& t =
            (id & kCarryFlag) ? carry_in[id & (kCarryFlag - 1U)].t : base[id];
        dst.key[c] = t.key;
        dst.payload[c] = t.payload;
      }
#if defined(__x86_64__) || defined(__i386__)
      // Stale image bytes in empty key/payload lanes are streamed along
      // with the live ones — probes never read an empty slot's lanes.
      auto* out128 = reinterpret_cast<__m128i*>(&groups[lo + lg]);
      const auto* img128 = reinterpret_cast<const __m128i*>(&image);
      for (std::size_t q = 0; q < sizeof(BucketGroup<G>) / 16; ++q) {
        _mm_stream_si128(out128 + q, _mm_load_si128(img128 + q));
      }
#endif
    }
    carry_in.swap(carry_out);
  }

#if defined(__x86_64__) || defined(__i386__)
  // Drain the non-temporal stores before anything reads the table — the
  // wrap-carry patch below scans fingerprint lanes, and the rt backend
  // probes from other threads.
  _mm_sfence();
#endif

  // Spills past the table's last group wrap to group 0, whose region is
  // long finalized — patch them straight into the table. The walk from
  // their (full) home groups wraps the same way, and every group before
  // the patched slot is full, so probes still find them. The load factor
  // guarantees an empty slot exists.
  for (const Carry& cw : carry_in) {
    std::uint32_t g = 0;
    for (;;) {
      BucketGroup<G>& dst = groups[g];
      int c = 0;
      while (c < G && dst.fp[c] != 0) ++c;
      if (c < G) {
        dst.fp[c] = cw.fp;
        dst.key[c] = cw.t.key;
        dst.payload[c] = cw.t.payload;
        break;
      }
      g = next_group(g);
    }
  }

  return true;
}

void PartitionHashTable::probe(std::span<const rel::Tuple> r_run,
                               JoinResult& result) const {
  if (rows_ == 0) return;
  obs::prof::ScopedProfile prof(obs::prof::current(), "probe", r_run.size());
  // One reserve per probe batch: with unique build keys a probe yields at
  // most one match, so this bound makes the per-match append allocation-free
  // and its capacity branch perfectly predicted.
  result.reserve_batch(r_run.size());
  if (!fingerprint_) {
    for (const rel::Tuple& r : r_run) probe_one_chained(r, result);
    return;
  }

  switch (tier_) {
#if defined(__x86_64__) || defined(__i386__)
    case SimdTier::kAvx2:
      probe_dispatch_avx2(r_run, result);
      return;
#endif
#if defined(__aarch64__) || defined(__ARM_NEON)
    case SimdTier::kNeon:
      probe_dispatch_neon(r_run, result);
      return;
#endif
    default:
      break;
  }
  if (group_size_ == 8) {
    probe_groups<8, detail::ScalarGroupOps<8>>(r_run, result);
  } else {
    probe_groups<16, detail::ScalarGroupOps<16>>(r_run, result);
  }
}

HashJoinStationary HashJoinStationary::build(std::span<const rel::Tuple> s,
                                             int radix_bits,
                                             const RadixConfig& config) {
  const KernelConfig& kernel = config.kernel;
  HashJoinStationary out;
  const std::size_t n = s.size();

  // Fused setup for large bucket-group builds: one extended-fanout
  // clustering pass serves as both the radix pass and the write-combining
  // stage of every table build. Clustering on rb extra top hash bits
  // splits each partition into 2^rb regions that map to contiguous group
  // ranges, so the staged per-table build (build_staged) inserts into an
  // L2-resident scratch and writes the final tables sequentially. rb < 0
  // selects the classic two-step setup.
  int rb = -1;
  if (kernel.fingerprint_table && kernel.cache_hashes &&
      kernel.buffered_scatter && radix_bits >= 1 &&
      radix_bits <= kMaxFusedFanoutBits && n <= 0xFFFFFFFFULL) {
    const std::size_t table_bytes =
        n * (PartitionHashTable::bytes_per_stationary_tuple(kernel) -
             sizeof(rel::Tuple));
    // Staging pays when the tables in aggregate overflow the LLC: there
    // the direct build is bound by read-for-ownership traffic on random
    // table lines, while the staged build's strictly sequential
    // finalization streams the table with non-temporal stores — write-only
    // DRAM traffic. Below the threshold the tables stay cache-resident
    // across the build and the direct path's lean loop wins.
    if (table_bytes >= kStagedBuildMinTableBytes) {
      const std::size_t part_table = table_bytes >> radix_bits;
      rb = 0;
      while (radix_bits + rb < kMaxFusedFanoutBits &&
             (part_table >> rb) > kStagedRegionTableBytes) {
        ++rb;
      }
      if ((1U << (radix_bits + rb)) < detail::kMinBufferedFanout) rb = -1;
    }
  }

  // Carves one backing range per partition table out of a single shared
  // slab (see table_slab.h) and returns the per-partition base pointers;
  // the slab itself moves into out.table_slab_. Chained tables manage
  // their own vectors — no slab.
  const auto carve_slab = [&](const PartitionedData& parts)
      -> std::vector<std::byte*> {
    const std::uint32_t num_parts = parts.num_partitions();
    std::vector<std::size_t> bytes(num_parts);
    std::size_t total = 0;
    for (std::uint32_t p = 0; p < num_parts; ++p) {
      bytes[p] =
          PartitionHashTable::table_bytes_for(parts.partition(p).size(), kernel);
      total += bytes[p];
    }
    out.table_slab_ = TableSlab(total);
    std::vector<std::byte*> bases(num_parts);
    std::byte* cursor = out.table_slab_.data();
    for (std::uint32_t p = 0; p < num_parts; ++p) {
      bases[p] = cursor;
      cursor += bytes[p];
    }
    return bases;
  };

  if (rb < 0) {
    out.parts_ =
        radix_cluster(s, radix_bits, config.bits_per_pass, kernel);
    const std::uint32_t num_parts = out.parts_.num_partitions();
    out.tables_.resize(num_parts);
    if (!kernel.fingerprint_table) {
      for (std::uint32_t p = 0; p < num_parts; ++p) {
        out.tables_[p].build(out.parts_.partition(p), radix_bits, kernel);
      }
      return out;
    }
    const std::vector<std::byte*> bases = carve_slab(out.parts_);
    for (std::uint32_t p = 0; p < num_parts; ++p) {
      out.tables_[p].build_direct(out.parts_.partition(p), radix_bits, kernel,
                                  bases[p]);
    }
    return out;
  }

  const std::uint32_t num_parts = 1U << radix_bits;
  const std::uint32_t regions = 1U << rb;
  const std::uint32_t fanout = num_parts << rb;
  const std::uint32_t pmask = num_parts - 1;
  // Extended bucket: partition id (low hash bits) majored over the region
  // id — the top rb bits of the *remixed* group-index key, so within a
  // partition the buckets are exactly the contiguous group-range regions
  // that group_index (monotone in the remixed key) assigns.
  const int xw = 32 - radix_bits;  // usable width of the remixed key
  const auto bucket_of = [&](std::uint32_t h) {
    const std::uint32_t p = h & pmask;
    if (rb == 0) return p;
    const std::uint32_t x = PartitionHashTable::remix(h, radix_bits);
    return (p << rb) | (x >> (xw - rb));
  };

  std::vector<std::uint32_t> boundaries(static_cast<std::size_t>(fanout) + 1);
  std::vector<rel::Tuple> clustered(n);
  {
    obs::prof::ScopedProfile pass_prof(obs::prof::current(), "radix_pass1", n);
    std::vector<std::uint32_t> hashes(n);
    std::vector<std::uint32_t> counts(fanout, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t h = hash_key(s[i].key);
      hashes[i] = h;
      ++counts[bucket_of(h)];
    }
    std::vector<std::uint32_t> cursor(fanout);
    std::uint32_t acc = 0;
    for (std::uint32_t b = 0; b < fanout; ++b) {
      cursor[b] = acc;
      acc += counts[b];
      boundaries[b + 1] = acc;
    }
    std::vector<std::uint32_t> fill(fanout, 0);
    std::vector<rel::Tuple> stage(static_cast<std::size_t>(fanout) *
                                  detail::kStageCap);
    detail::scatter_range<rel::Tuple>(
        0, n, /*staged=*/true, fanout, cursor, fill, stage, clustered.data(),
        [&](std::size_t i) { return bucket_of(hashes[i]); },
        [&](std::size_t i) { return s[i]; });
  }

  // Partition directory at partition granularity; tuple order within a
  // partition is region-major, which PartitionedData's contract allows.
  std::vector<std::uint32_t> offsets(static_cast<std::size_t>(num_parts) + 1);
  for (std::uint32_t p = 0; p < num_parts; ++p) {
    offsets[p] = boundaries[static_cast<std::size_t>(p) << rb];
  }
  offsets[num_parts] = static_cast<std::uint32_t>(n);
  out.parts_ =
      PartitionedData(std::move(clustered), std::move(offsets), radix_bits);

  out.tables_.resize(num_parts);
  const std::vector<std::byte*> bases = carve_slab(out.parts_);
  for (std::uint32_t p = 0; p < num_parts; ++p) {
    const auto region_offsets =
        std::span<const std::uint32_t>(boundaries)
            .subspan(static_cast<std::size_t>(p) << rb, regions + 1);
    out.tables_[p].build_staged(out.parts_.partition(p), region_offsets,
                                radix_bits, kernel, bases[p]);
  }
  return out;
}

std::size_t HashJoinStationary::bytes() const {
  std::size_t total = 0;
  for (const auto& t : tables_) total += t.bytes();
  return total;
}

}  // namespace cj::join
