// Software write-combining scatter — the staging machinery shared by the
// radix clustering passes (radix.cpp) and the staged hash-table build
// (hash_join.cpp). Extracted so both kernels amortize the same tuning:
// a high-fan-out scatter writes one interleaved stream per destination,
// more store streams than the L1/TLB keeps hot; staging kStageCap entries
// per destination in a cache-resident area and flushing each full buffer
// with one memcpy burst turns that into long sequential writes
// (Manegold, Boncz & Kersten; docs/KERNELS.md).
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "obs/prof.h"

namespace cj::join::detail {

/// Staging granularity: 16 entries x 16 B = 256 B (four cache lines) per
/// destination, flushed in bulk. At fan-out 2^8 the staging area is 64 KB —
/// resident while the destinations see long, TLB-friendly bursts instead
/// of one interleaved stream each.
constexpr std::uint32_t kStageCap = 16;

/// Below this fan-out the destination streams are few enough that direct
/// stores already combine in the cache; staging would only add copies.
constexpr std::uint32_t kMinBufferedFanout = 16;

/// Scatters `[begin, end)` source positions to `dst`, each to the write
/// cursor of its destination slice. With `staged`, entries accumulate in a
/// kStageCap-deep staging buffer per slice and move to `dst` in bulk
/// bursts (software write combining); `fill` must be zero on entry and is
/// zero again on return. slice_at(i) names the destination, entry_at(i)
/// produces the value to store.
template <typename Entry, typename SliceAt, typename EntryAt>
void scatter_range(std::size_t begin, std::size_t end, bool staged,
                   std::uint32_t fanout, std::vector<std::uint32_t>& cursor,
                   std::vector<std::uint32_t>& fill, std::vector<Entry>& stage,
                   Entry* dst, SliceAt&& slice_at, EntryAt&& entry_at) {
  if (!staged) {
    for (std::size_t i = begin; i < end; ++i) {
      dst[cursor[slice_at(i)]++] = entry_at(i);
    }
    return;
  }
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint32_t s = slice_at(i);
    std::uint32_t& f = fill[s];
    stage[static_cast<std::size_t>(s) * kStageCap + f] = entry_at(i);
    if (++f == kStageCap) {
      std::memcpy(dst + cursor[s], &stage[static_cast<std::size_t>(s) * kStageCap],
                  kStageCap * sizeof(Entry));
      cursor[s] += kStageCap;
      f = 0;
    }
  }
  // Profiled as its own phase: the drain is the part of the buffered
  // scatter that touches every destination once regardless of input size,
  // so its LLC behaviour is what decides kMinBufferedFanout. Its time is
  // also included in the enclosing pass phase.
  obs::prof::ScopedProfile prof(obs::prof::current(), "scatter_flush");
  for (std::uint32_t s = 0; s < fanout; ++s) {  // drain partial buffers
    if (fill[s] != 0) {
      std::memcpy(dst + cursor[s], &stage[static_cast<std::size_t>(s) * kStageCap],
                  fill[s] * sizeof(Entry));
      cursor[s] += fill[s];
      fill[s] = 0;
    }
  }
}

}  // namespace cj::join::detail
