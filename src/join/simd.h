// Runtime SIMD dispatch for the join kernels.
//
// The kernels carry three implementations of their innermost compare loops
// — AVX2 (x86-64), NEON (aarch64) and a portable scalar fallback — and
// pick one at table-build / join time from (a) what the CPU reports via
// CPUID-style detection and (b) what KernelConfig::simd requests. The
// tiers are held to bit-identical join results by the dispatch-tier parity
// suite in tests/join_test.cpp; CI runs the whole kernel suite once more
// under CJ_SIMD=scalar so the portable path cannot rot (docs/KERNELS.md).
#pragma once

#include "join/kernel_config.h"

namespace cj::join {

/// A concrete vector tier the running process can execute. Unlike
/// KernelConfig::Simd there is no kAuto — this is the *resolved* answer.
enum class SimdTier { kScalar = 0, kNeon, kAvx2 };

/// "scalar" | "neon" | "avx2" — the tag benches stamp into BENCH rows so
/// the regression gate can refuse cross-tier comparisons.
const char* simd_tier_name(SimdTier tier);

/// Best tier the running CPU supports, detected once per process
/// (__builtin_cpu_supports on x86, architecture baseline on aarch64).
/// The CJ_SIMD environment variable caps the result: CJ_SIMD=scalar
/// forces the portable path everywhere, CJ_SIMD=avx2/neon caps at that
/// tier (still subject to hardware support).
SimdTier detect_simd_tier();

/// True when `tier` can execute on this machine (scalar always can).
bool simd_tier_available(SimdTier tier);

/// Resolves a KernelConfig request against the hardware: kAuto becomes
/// detect_simd_tier(); a forced tier the machine lacks degrades to scalar
/// (never to a different vector ISA — results stay comparable, the test
/// suite skips what it cannot execute).
SimdTier resolve_simd(Simd requested);

}  // namespace cj::join
