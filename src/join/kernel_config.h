// Cache-consciousness knobs for the join kernels.
//
// The measured CPU time of these kernels *is* the virtual duration of every
// simulated task (DESIGN.md: "virtual time, real work"), so kernel speed
// shapes both the reproduced figures and the real wall-clock of the whole
// bench/test suite. Every optimization is individually switchable so the
// legacy and optimized paths stay A/B-comparable — bench/micro_kernels
// measures each pair, and the checksum-parity tests in tests/join_test.cpp
// hold them to identical results. See docs/KERNELS.md.
#pragma once

namespace cj::join {

struct KernelConfig {
  /// Compute hash_key once per tuple and carry the values in a side array
  /// across clustering passes, instead of rehashing in both the count and
  /// scatter loops of every pass.
  bool cache_hashes = true;

  /// Software-managed scatter: stage tuples in cache-line-sized per-partition
  /// buffers and flush them in bulk (Manegold, Boncz & Kersten), so a
  /// high-fan-out pass keeps a handful of store streams hot instead of one
  /// per partition. Only engages at fan-outs where it pays (see radix.cpp).
  bool buffered_scatter = true;

  /// Replace the bucket-chained heads/next hash-table layout with a
  /// contiguous open-addressing bucket array whose 16-bit fingerprints
  /// reject non-matches before any key comparison; tuples are stored inline
  /// in the buckets, making a probe a single dependent cache-line touch.
  bool fingerprint_table = true;

  /// Look-ahead of the probe/build pipelines: hash and software-prefetch
  /// the bucket of the tuple `prefetch_distance` positions ahead while
  /// processing the current one (0 disables; rounded down to a power of
  /// two, capped at 64). Fingerprint-table paths only. 16 gives an
  /// out-of-L2 probe enough in-flight lines to cover L3/DRAM latency
  /// without evicting its own useful prefetches (bench/micro_kernels).
  int prefetch_distance = 16;

  /// The pre-optimization kernels, kept as the A/B baseline.
  static constexpr KernelConfig legacy() {
    return KernelConfig{.cache_hashes = false,
                        .buffered_scatter = false,
                        .fingerprint_table = false,
                        .prefetch_distance = 0};
  }
};

}  // namespace cj::join
