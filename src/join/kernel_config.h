// Cache-consciousness knobs for the join kernels.
//
// The measured CPU time of these kernels *is* the virtual duration of every
// simulated task (DESIGN.md: "virtual time, real work"), so kernel speed
// shapes both the reproduced figures and the real wall-clock of the whole
// bench/test suite. Every optimization is individually switchable so the
// legacy and optimized paths stay A/B-comparable — bench/micro_kernels
// measures each pair, and the checksum-parity tests in tests/join_test.cpp
// hold them to identical results. See docs/KERNELS.md.
#pragma once

namespace cj::join {

/// Requested vector tier for the SIMD kernels (fingerprint compare in the
/// bucket-group hash table, key compares in the merge joins). The request
/// is resolved against what the running CPU supports (join/simd.h):
/// kAuto picks the best available tier; forcing a tier the machine lacks
/// falls back to the portable scalar path. The CJ_SIMD environment
/// variable ("scalar" | "neon" | "avx2") caps detection process-wide —
/// CI's scalar-fallback job runs the whole suite under CJ_SIMD=scalar.
enum class Simd {
  kAuto = 0,
  kScalar,
  kNeon,
  kAvx2,
};

struct KernelConfig {
  /// Compute hash_key once per tuple and carry the values in a side array
  /// across clustering passes, instead of rehashing in both the count and
  /// scatter loops of every pass.
  bool cache_hashes = true;

  /// Software-managed scatter: stage tuples in cache-line-sized per-partition
  /// buffers and flush them in bulk (Manegold, Boncz & Kersten), so a
  /// high-fan-out pass keeps a handful of store streams hot instead of one
  /// per partition. Only engages at fan-outs where it pays (see radix.cpp).
  /// The hash-table build reuses the same staging machinery to cluster
  /// inserts into cache-sized table regions before touching any bucket.
  bool buffered_scatter = true;

  /// Replace the bucket-chained heads/next hash-table layout with the
  /// bucket-group layout: groups of `group_size` contiguous 16-bit
  /// fingerprints packed next to their inline tuples, probed with one
  /// vector compare per group (docs/KERNELS.md).
  bool fingerprint_table = true;

  /// Look-ahead of the probe/build pipelines: hash and software-prefetch
  /// the bucket group of the tuple `prefetch_distance` positions ahead
  /// while processing the current one (0 disables the batched pipeline;
  /// rounded down to a power of two, capped at 64). Bucket-group paths
  /// only. 16 gives an out-of-L2 probe enough in-flight lines to cover
  /// L3/DRAM latency without evicting its own useful prefetches
  /// (bench/micro_kernels).
  int prefetch_distance = 16;

  /// Vector tier for the fingerprint-group compare and the merge-join key
  /// compares. kAuto resolves to the best tier the CPU supports.
  Simd simd = Simd::kAuto;

  /// Fingerprints per bucket group: 16 (one AVX2 compare, two NEON
  /// compares) or 8 (one SSE2/NEON compare). Anything else is clamped to
  /// 16. Probe cost per group is one vector compare either way; 16 keeps
  /// collision spill across groups rarer.
  int group_size = 16;

  /// The pre-optimization kernels, kept as the A/B baseline. Scalar key
  /// compares everywhere — the legacy kernels predate the SIMD tiers.
  static constexpr KernelConfig legacy() {
    return KernelConfig{.cache_hashes = false,
                        .buffered_scatter = false,
                        .fingerprint_table = false,
                        .prefetch_distance = 0,
                        .simd = Simd::kScalar};
  }
};

}  // namespace cj::join
