// Radix clustering — the setup phase of the partitioned hash join.
//
// Follows the MonetDB radix join of Manegold, Boncz & Kersten (TKDE 2002),
// which the paper ported to cyclo-join: inputs are clustered on the low
// bits of a hash of the join key in multiple passes of bounded fan-out
// (cache/TLB friendly), until each partition of the stationary relation
// plus its hash table fits the CPU cache budget.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.h"
#include "join/kernel_config.h"
#include "rel/relation.h"

namespace cj::join {

struct RadixConfig {
  /// Target: an S partition + hash table fits the L2 cache. The paper's
  /// Xeons had 4 MB of L2; this default assumes a ~2 MB L2 (common today)
  /// and leaves headroom — what matters for the paper's Equation (*) is
  /// that probes stay cache-resident at *every* ring size.
  std::size_t cache_budget_bytes = 1ULL << 20;
  /// Max fan-out per pass is 2^bits_per_pass (TLB-friendly).
  int bits_per_pass = 8;
  /// Hard cap on total radix bits (2^16 partitions is plenty).
  int max_bits = 16;
  /// Cache-consciousness knobs of the kernels themselves (docs/KERNELS.md).
  KernelConfig kernel;
};

/// 32-bit finalizer-style hash of a join key (murmur3 avalanche). Both
/// sides of the join and the per-partition hash tables share it.
inline std::uint32_t hash_key(std::uint32_t key) {
  std::uint32_t h = key;
  h ^= h >> 16;
  h *= 0x85EBCA6BU;
  h ^= h >> 13;
  h *= 0xC2B2AE35U;
  h ^= h >> 16;
  return h;
}

/// Partition of a key under `bits` total radix bits (low bits of the hash).
inline std::uint32_t partition_of(std::uint32_t key, int bits) {
  return bits == 0 ? 0 : (hash_key(key) & ((1U << bits) - 1));
}

/// Picks the number of radix bits so an even share of `s_rows` per
/// partition (plus hash-table overhead, whose per-tuple footprint depends
/// on config.kernel's table layout) fits the cache budget.
int choose_radix_bits(std::size_t s_rows, const RadixConfig& config);

/// Tuples clustered into 2^bits partitions, with a partition directory.
/// Partition p occupies [offsets[p], offsets[p+1]).
class PartitionedData {
 public:
  PartitionedData() = default;
  PartitionedData(std::vector<rel::Tuple> tuples, std::vector<std::uint32_t> offsets,
                  int bits)
      : tuples_(std::move(tuples)), offsets_(std::move(offsets)), bits_(bits) {
    CJ_CHECK(offsets_.size() == (1ULL << bits_) + 1);
    CJ_CHECK(offsets_.back() == tuples_.size());
  }

  int bits() const { return bits_; }
  std::uint32_t num_partitions() const { return 1U << bits_; }
  std::size_t rows() const { return tuples_.size(); }

  std::span<const rel::Tuple> partition(std::uint32_t p) const {
    CJ_DCHECK(p < num_partitions());
    return std::span<const rel::Tuple>(tuples_).subspan(offsets_[p],
                                                        offsets_[p + 1] - offsets_[p]);
  }

  std::span<const rel::Tuple> all_tuples() const { return tuples_; }
  std::span<const std::uint32_t> offsets() const { return offsets_; }

 private:
  std::vector<rel::Tuple> tuples_;
  std::vector<std::uint32_t> offsets_;
  int bits_ = 0;
};

/// Multi-pass radix clustering of `input` into 2^total_bits partitions.
/// Each pass has fan-out at most 2^bits_per_pass. O(passes * n) time,
/// 2n tuples of transient memory. `kernel` selects between the legacy
/// kernels (rehash per loop, direct scatter) and the cache-conscious ones
/// (hash side array, software-buffered scatter) — identical output
/// partition directory either way; tuple order *within* a partition may
/// differ between kernel configurations, like it does between pass shapes.
PartitionedData radix_cluster(std::span<const rel::Tuple> input, int total_bits,
                              int bits_per_pass, const KernelConfig& kernel = {});

}  // namespace cj::join
