// NEON tier of the join kernels — aarch64 counterpart of kernels_avx2.cpp.
// NEON is architecture baseline on aarch64, so this TU needs no special
// flags; it is only compiled (and only dispatched to) on ARM builds.
#if defined(__aarch64__) || defined(__ARM_NEON)

#include <arm_neon.h>

#include <bit>

#include "join/hash_group_impl.h"
#include "join/sort_merge_simd.h"

namespace cj::join {

namespace {

/// One probe-mask bit per 16-bit slot: narrow each 0xFFFF/0x0000 lane to a
/// byte, AND with the bit-position vector, sum across lanes.
inline std::uint32_t mask8_of(uint16x8_t eq) {
  const uint8x8_t narrowed = vmovn_u16(eq);
  const uint8x8_t bits = {1, 2, 4, 8, 16, 32, 64, 128};
  return vaddv_u8(vand_u8(narrowed, bits));
}

struct NeonOps8 {
  static std::uint32_t match_mask(const std::uint16_t* fp, std::uint16_t want) {
    return mask8_of(vceqq_u16(vld1q_u16(fp), vdupq_n_u16(want)));
  }
  static std::uint32_t empty_mask(const std::uint16_t* fp) {
    return mask8_of(vceqq_u16(vld1q_u16(fp), vdupq_n_u16(0)));
  }
};

struct NeonOps16 {
  static std::uint32_t match_mask(const std::uint16_t* fp, std::uint16_t want) {
    const uint16x8_t w = vdupq_n_u16(want);
    return mask8_of(vceqq_u16(vld1q_u16(fp), w)) |
           (mask8_of(vceqq_u16(vld1q_u16(fp + 8), w)) << 8);
  }
  static std::uint32_t empty_mask(const std::uint16_t* fp) {
    const uint16x8_t z = vdupq_n_u16(0);
    return mask8_of(vceqq_u16(vld1q_u16(fp), z)) |
           (mask8_of(vceqq_u16(vld1q_u16(fp + 8), z)) << 8);
  }
};

/// Keys of 4 consecutive 12-byte tuples: vld3q_u32 deinterleaves the 48
/// bytes at stride 3, lane array 0 holds the keys. Requires i + 4 <= n.
inline uint32x4_t load_keys4(const rel::Tuple* t, std::size_t i) {
  return vld3q_u32(reinterpret_cast<const std::uint32_t*>(t + i)).val[0];
}

/// 16 bits per lane (vmovn to u16, reinterpret as u64): all-ones means
/// every lane passed the compare.
inline std::uint64_t lanemask4_of(uint32x4_t cmp) {
  return vget_lane_u64(vreinterpret_u64_u16(vmovn_u32(cmp)), 0);
}

}  // namespace

void PartitionHashTable::probe_dispatch_neon(std::span<const rel::Tuple> r_run,
                                             JoinResult& result) const {
  if (group_size_ == 8) {
    probe_groups<8, NeonOps8>(r_run, result);
  } else {
    probe_groups<16, NeonOps16>(r_run, result);
  }
}

namespace detail {

std::size_t run_end_neon(const rel::Tuple* t, std::size_t i, std::size_t n,
                         std::uint32_t key) {
  const uint32x4_t want = vdupq_n_u32(key);
  while (i + 4 <= n) {
    const std::uint64_t m = lanemask4_of(vceqq_u32(load_keys4(t, i), want));
    if (m != ~0ULL) {
      return i + static_cast<std::size_t>(std::countr_zero(~m) >> 4);
    }
    i += 4;
  }
  while (i < n && t[i].key == key) ++i;
  return i;
}

std::size_t window_end_neon(const rel::Tuple* t, std::size_t i, std::size_t n,
                            std::uint32_t hi_key) {
  const uint32x4_t limit = vdupq_n_u32(hi_key);
  while (i + 4 <= n) {
    const std::uint64_t m = lanemask4_of(vcgtq_u32(load_keys4(t, i), limit));
    if (m != 0) {
      return i + static_cast<std::size_t>(std::countr_zero(m) >> 4);
    }
    i += 4;
  }
  while (i < n && t[i].key <= hi_key) ++i;
  return i;
}

}  // namespace detail

}  // namespace cj::join

#endif  // aarch64 / ARM NEON
