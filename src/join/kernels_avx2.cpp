// AVX2 tier of the join kernels — the only translation unit compiled with
// -mavx2 (src/join/CMakeLists.txt), so the generic templates from
// hash_group_impl.h instantiate here with the intrinsics fully inlined
// into the probe loops. Nothing in this file executes unless runtime
// detection (join/simd.cpp) resolved the tier to kAvx2, which implies the
// CPU supports every instruction used here.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <bit>

#include "join/hash_group_impl.h"
#include "join/sort_merge_simd.h"

namespace cj::join {

namespace {

/// One probe-mask bit per 16-bit slot from a 256-bit compare result.
/// packs works per 128-bit lane, so the byte order after packing is
/// slots 0-7, zeros, slots 8-15, zeros — stitched back below.
inline std::uint32_t mask16_of(__m256i eq) {
  const __m256i packed = _mm256_packs_epi16(eq, _mm256_setzero_si256());
  const auto m = static_cast<std::uint32_t>(_mm256_movemask_epi8(packed));
  return (m & 0xFFU) | ((m >> 8) & 0xFF00U);
}

/// 16-slot groups: the whole fingerprint array is one aligned 256-bit
/// load (alignas(64) on BucketGroup) and one vector compare.
struct Avx2Ops16 {
  static std::uint32_t match_mask(const std::uint16_t* fp, std::uint16_t want) {
    const __m256i v = _mm256_load_si256(reinterpret_cast<const __m256i*>(fp));
    return mask16_of(
        _mm256_cmpeq_epi16(v, _mm256_set1_epi16(static_cast<short>(want))));
  }
  static std::uint32_t empty_mask(const std::uint16_t* fp) {
    const __m256i v = _mm256_load_si256(reinterpret_cast<const __m256i*>(fp));
    return mask16_of(_mm256_cmpeq_epi16(v, _mm256_setzero_si256()));
  }
};

inline std::uint32_t mask8_of(__m128i eq) {
  const __m128i packed = _mm_packs_epi16(eq, _mm_setzero_si128());
  return static_cast<std::uint32_t>(_mm_movemask_epi8(packed)) & 0xFFU;
}

/// 8-slot groups: one 128-bit compare covers the fingerprint array.
struct Avx2Ops8 {
  static std::uint32_t match_mask(const std::uint16_t* fp, std::uint16_t want) {
    const __m128i v = _mm_load_si128(reinterpret_cast<const __m128i*>(fp));
    return mask8_of(
        _mm_cmpeq_epi16(v, _mm_set1_epi16(static_cast<short>(want))));
  }
  static std::uint32_t empty_mask(const std::uint16_t* fp) {
    const __m128i v = _mm_load_si128(reinterpret_cast<const __m128i*>(fp));
    return mask8_of(_mm_cmpeq_epi16(v, _mm_setzero_si128()));
  }
};

/// Keys of 8 consecutive 12-byte tuples, gathered as dwords at stride 3.
/// Every lane reads exactly one tuple's key field — requires i + 8 <= n.
inline __m256i gather_keys8(const rel::Tuple* t, std::size_t i) {
  const __m256i idx = _mm256_setr_epi32(0, 3, 6, 9, 12, 15, 18, 21);
  return _mm256_i32gather_epi32(reinterpret_cast<const int*>(t + i), idx, 4);
}

}  // namespace

void PartitionHashTable::probe_dispatch_avx2(std::span<const rel::Tuple> r_run,
                                             JoinResult& result) const {
  if (group_size_ == 8) {
    probe_groups<8, Avx2Ops8>(r_run, result);
  } else {
    probe_groups<16, Avx2Ops16>(r_run, result);
  }
}

namespace detail {

std::size_t run_end_avx2(const rel::Tuple* t, std::size_t i, std::size_t n,
                         std::uint32_t key) {
  const __m256i want = _mm256_set1_epi32(static_cast<int>(key));
  while (i + 8 <= n) {
    const __m256i eq = _mm256_cmpeq_epi32(gather_keys8(t, i), want);
    const auto m =
        static_cast<std::uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    if (m != 0xFFU) return i + std::countr_zero(~m & 0xFFU);
    i += 8;
  }
  while (i < n && t[i].key == key) ++i;
  return i;
}

std::size_t window_end_avx2(const rel::Tuple* t, std::size_t i, std::size_t n,
                            std::uint32_t hi_key) {
  // Keys are unsigned, cmpgt is signed: bias both sides by 2^31.
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000U));
  const __m256i limit = _mm256_set1_epi32(static_cast<int>(hi_key ^ 0x80000000U));
  while (i + 8 <= n) {
    const __m256i keys = _mm256_xor_si256(gather_keys8(t, i), bias);
    const __m256i gt = _mm256_cmpgt_epi32(keys, limit);
    const auto m =
        static_cast<std::uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(gt)));
    if (m != 0) return i + std::countr_zero(m);
    i += 8;
  }
  while (i < n && t[i].key <= hi_key) ++i;
  return i;
}

}  // namespace detail

}  // namespace cj::join

#endif  // x86
