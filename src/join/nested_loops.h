// Nested-loops join: the universal fallback for arbitrary predicates
// (paper Sec. IV-C) and the reference oracle for testing the fast joins.
#pragma once

#include <span>

#include "join/join_result.h"
#include "rel/relation.h"

namespace cj::join {

/// Joins r × s under an arbitrary predicate. O(|r| * |s|) — use only for
/// predicates the specialized algorithms cannot handle, or as a test
/// oracle on small inputs.
template <typename Predicate>
void nested_loops_join(std::span<const rel::Tuple> r, std::span<const rel::Tuple> s,
                       Predicate&& pred, JoinResult& result) {
  for (const rel::Tuple& rt : r) {
    for (const rel::Tuple& st : s) {
      if (pred(rt, st)) result.add_match(rt, st);
    }
  }
}

/// Equality predicate (the common case).
inline void nested_loops_equi_join(std::span<const rel::Tuple> r,
                                   std::span<const rel::Tuple> s,
                                   JoinResult& result) {
  nested_loops_join(
      r, s, [](const rel::Tuple& a, const rel::Tuple& b) { return a.key == b.key; },
      result);
}

/// Band predicate |r.key - s.key| <= band.
inline void nested_loops_band_join(std::span<const rel::Tuple> r,
                                   std::span<const rel::Tuple> s, std::uint32_t band,
                                   JoinResult& result) {
  nested_loops_join(
      r, s,
      [band](const rel::Tuple& a, const rel::Tuple& b) {
        const std::uint32_t d = a.key > b.key ? a.key - b.key : b.key - a.key;
        return d <= band;
      },
      result);
}

}  // namespace cj::join
