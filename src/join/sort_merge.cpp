#include "join/sort_merge.h"

#include <algorithm>

#include "common/assert.h"
#include "obs/prof.h"

namespace cj::join {

void sort_fragment(std::span<rel::Tuple> fragment) {
  obs::prof::ScopedProfile prof(obs::prof::current(), "sort", fragment.size());
  std::sort(fragment.begin(), fragment.end(),
            [](const rel::Tuple& a, const rel::Tuple& b) { return a.key < b.key; });
}

bool is_sorted_by_key(std::span<const rel::Tuple> fragment) {
  return std::is_sorted(
      fragment.begin(), fragment.end(),
      [](const rel::Tuple& a, const rel::Tuple& b) { return a.key < b.key; });
}

void merge_join(std::span<const rel::Tuple> r_sorted,
                std::span<const rel::Tuple> s_sorted, JoinResult& result) {
  obs::prof::ScopedProfile prof(obs::prof::current(), "merge", r_sorted.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < r_sorted.size() && j < s_sorted.size()) {
    const std::uint32_t rk = r_sorted[i].key;
    const std::uint32_t sk = s_sorted[j].key;
    if (rk < sk) {
      ++i;
    } else if (rk > sk) {
      ++j;
    } else {
      // Key group: emit the cross product of equal-key runs.
      std::size_t i_end = i + 1;
      while (i_end < r_sorted.size() && r_sorted[i_end].key == rk) ++i_end;
      std::size_t j_end = j + 1;
      while (j_end < s_sorted.size() && s_sorted[j_end].key == rk) ++j_end;
      for (std::size_t a = i; a < i_end; ++a) {
        for (std::size_t b = j; b < j_end; ++b) {
          result.add_match(r_sorted[a], s_sorted[b]);
        }
      }
      i = i_end;
      j = j_end;
    }
  }
}

void band_merge_join(std::span<const rel::Tuple> r_sorted,
                     std::span<const rel::Tuple> s_sorted, std::uint32_t band,
                     JoinResult& result) {
  if (band == 0) {
    merge_join(r_sorted, s_sorted, result);
    return;
  }
  obs::prof::ScopedProfile prof(obs::prof::current(), "merge", r_sorted.size());
  // For each r (ascending), the matching s window [r.key - band,
  // r.key + band] only ever slides forward at its lower edge.
  std::size_t lo = 0;
  for (const rel::Tuple& r : r_sorted) {
    const std::uint32_t lo_key = r.key >= band ? r.key - band : 0;
    // Saturating upper bound: keys are 32-bit.
    const std::uint32_t hi_key =
        r.key > 0xFFFFFFFFU - band ? 0xFFFFFFFFU : r.key + band;
    while (lo < s_sorted.size() && s_sorted[lo].key < lo_key) ++lo;
    for (std::size_t j = lo; j < s_sorted.size() && s_sorted[j].key <= hi_key; ++j) {
      result.add_match(r, s_sorted[j]);
    }
  }
}

std::span<const rel::Tuple> matching_window(std::span<const rel::Tuple> s_sorted,
                                            std::uint32_t lo_key,
                                            std::uint32_t hi_key,
                                            std::uint32_t band) {
  CJ_DCHECK(lo_key <= hi_key);
  const std::uint32_t lo = lo_key >= band ? lo_key - band : 0;
  const std::uint32_t hi = hi_key > 0xFFFFFFFFU - band ? 0xFFFFFFFFU : hi_key + band;
  const auto key_less = [](const rel::Tuple& t, std::uint32_t k) { return t.key < k; };
  const auto key_greater = [](std::uint32_t k, const rel::Tuple& t) { return k < t.key; };
  auto begin = std::lower_bound(s_sorted.begin(), s_sorted.end(), lo, key_less);
  auto end = std::upper_bound(begin, s_sorted.end(), hi, key_greater);
  return s_sorted.subspan(static_cast<std::size_t>(begin - s_sorted.begin()),
                          static_cast<std::size_t>(end - begin));
}

}  // namespace cj::join
