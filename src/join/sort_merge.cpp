#include "join/sort_merge.h"

#include <algorithm>

#include "common/assert.h"
#include "join/sort_merge_simd.h"
#include "obs/prof.h"

namespace cj::join {

namespace detail {

std::size_t run_end_scalar(const rel::Tuple* t, std::size_t i, std::size_t n,
                           std::uint32_t key) {
  while (i < n && t[i].key == key) ++i;
  return i;
}

std::size_t window_end_scalar(const rel::Tuple* t, std::size_t i, std::size_t n,
                              std::uint32_t hi_key) {
  while (i < n && t[i].key <= hi_key) ++i;
  return i;
}

MergeScanOps merge_scan_ops(SimdTier tier) {
  switch (tier) {
#if defined(__x86_64__) || defined(__i386__)
    case SimdTier::kAvx2:
      return {run_end_avx2, window_end_avx2};
#endif
#if defined(__aarch64__) || defined(__ARM_NEON)
    case SimdTier::kNeon:
      return {run_end_neon, window_end_neon};
#endif
    default:
      return {run_end_scalar, window_end_scalar};
  }
}

}  // namespace detail

namespace {

/// Scalar steps taken inline before handing a scan to the (possibly
/// vectorized) tier function: most equal-key runs are one or two tuples
/// long, where the indirect call alone would outweigh the whole scan.
/// Only scans still going after kInlineScan steps — long duplicate runs,
/// wide band windows — pay the call and reap the vector width.
constexpr std::size_t kInlineScan = 4;

inline std::size_t run_end(const detail::MergeScanOps& ops, const rel::Tuple* t,
                           std::size_t i, std::size_t n, std::uint32_t key) {
  const std::size_t quick = std::min(n, i + kInlineScan);
  while (i < quick && t[i].key == key) ++i;
  if (i == quick && i < n && t[i].key == key) return ops.run_end(t, i, n, key);
  return i;
}

inline std::size_t window_end(const detail::MergeScanOps& ops,
                              const rel::Tuple* t, std::size_t i, std::size_t n,
                              std::uint32_t hi_key) {
  const std::size_t quick = std::min(n, i + kInlineScan);
  while (i < quick && t[i].key <= hi_key) ++i;
  if (i == quick && i < n && t[i].key <= hi_key) {
    return ops.window_end(t, i, n, hi_key);
  }
  return i;
}

}  // namespace

void sort_fragment(std::span<rel::Tuple> fragment) {
  obs::prof::ScopedProfile prof(obs::prof::current(), "sort", fragment.size());
  std::sort(fragment.begin(), fragment.end(),
            [](const rel::Tuple& a, const rel::Tuple& b) { return a.key < b.key; });
}

bool is_sorted_by_key(std::span<const rel::Tuple> fragment) {
  return std::is_sorted(
      fragment.begin(), fragment.end(),
      [](const rel::Tuple& a, const rel::Tuple& b) { return a.key < b.key; });
}

void merge_join(std::span<const rel::Tuple> r_sorted,
                std::span<const rel::Tuple> s_sorted, JoinResult& result,
                const KernelConfig& kernel) {
  obs::prof::ScopedProfile prof(obs::prof::current(), "merge", r_sorted.size());
  const detail::MergeScanOps ops = detail::merge_scan_ops(resolve_simd(kernel.simd));
  const rel::Tuple* r = r_sorted.data();
  const rel::Tuple* s = s_sorted.data();
  const std::size_t rn = r_sorted.size();
  const std::size_t sn = s_sorted.size();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < rn && j < sn) {
    const std::uint32_t rk = r[i].key;
    const std::uint32_t sk = s[j].key;
    if (rk < sk) {
      ++i;
    } else if (rk > sk) {
      ++j;
    } else {
      // Key group: emit the cross product of equal-key runs.
      const std::size_t i_end = run_end(ops, r, i + 1, rn, rk);
      const std::size_t j_end = run_end(ops, s, j + 1, sn, rk);
      result.reserve_batch((i_end - i) * (j_end - j));
      for (std::size_t a = i; a < i_end; ++a) {
        for (std::size_t b = j; b < j_end; ++b) {
          result.add_match(r[a], s[b]);
        }
      }
      i = i_end;
      j = j_end;
    }
  }
}

void band_merge_join(std::span<const rel::Tuple> r_sorted,
                     std::span<const rel::Tuple> s_sorted, std::uint32_t band,
                     JoinResult& result, const KernelConfig& kernel) {
  if (band == 0) {
    merge_join(r_sorted, s_sorted, result, kernel);
    return;
  }
  obs::prof::ScopedProfile prof(obs::prof::current(), "merge", r_sorted.size());
  const detail::MergeScanOps ops = detail::merge_scan_ops(resolve_simd(kernel.simd));
  const rel::Tuple* s = s_sorted.data();
  const std::size_t sn = s_sorted.size();
  // For each r (ascending), the matching s window [r.key - band,
  // r.key + band] only ever slides forward at its lower edge.
  std::size_t lo = 0;
  for (const rel::Tuple& r : r_sorted) {
    const std::uint32_t lo_key = r.key >= band ? r.key - band : 0;
    // Saturating upper bound: keys are 32-bit.
    const std::uint32_t hi_key =
        r.key > 0xFFFFFFFFU - band ? 0xFFFFFFFFU : r.key + band;
    while (lo < sn && s[lo].key < lo_key) ++lo;
    const std::size_t j_end = window_end(ops, s, lo, sn, hi_key);
    result.reserve_batch(j_end - lo);
    for (std::size_t j = lo; j < j_end; ++j) {
      result.add_match(r, s[j]);
    }
  }
}

std::span<const rel::Tuple> matching_window(std::span<const rel::Tuple> s_sorted,
                                            std::uint32_t lo_key,
                                            std::uint32_t hi_key,
                                            std::uint32_t band) {
  CJ_DCHECK(lo_key <= hi_key);
  const std::uint32_t lo = lo_key >= band ? lo_key - band : 0;
  const std::uint32_t hi = hi_key > 0xFFFFFFFFU - band ? 0xFFFFFFFFU : hi_key + band;
  const auto key_less = [](const rel::Tuple& t, std::uint32_t k) { return t.key < k; };
  const auto key_greater = [](std::uint32_t k, const rel::Tuple& t) { return k < t.key; };
  auto begin = std::lower_bound(s_sorted.begin(), s_sorted.end(), lo, key_less);
  auto end = std::upper_bound(begin, s_sorted.end(), hi, key_greater);
  return s_sorted.subspan(static_cast<std::size_t>(begin - s_sorted.begin()),
                          static_cast<std::size_t>(end - begin));
}

}  // namespace cj::join
