#include "join/simd.h"

#include <cstdlib>
#include <cstring>

namespace cj::join {

namespace {

/// Hardware ceiling, independent of any override.
SimdTier hardware_tier() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") ? SimdTier::kAvx2 : SimdTier::kScalar;
#elif defined(__aarch64__) || defined(__ARM_NEON)
  return SimdTier::kNeon;
#else
  return SimdTier::kScalar;
#endif
}

/// CJ_SIMD cap, parsed once. An unrecognized value is ignored (the env var
/// is a test/CI hook, not user input worth failing over).
SimdTier capped_tier() {
  const SimdTier hw = hardware_tier();
  const char* env = std::getenv("CJ_SIMD");
  if (env == nullptr) return hw;
  if (std::strcmp(env, "scalar") == 0) return SimdTier::kScalar;
  if (std::strcmp(env, "neon") == 0) {
    return hw == SimdTier::kNeon ? SimdTier::kNeon : SimdTier::kScalar;
  }
  if (std::strcmp(env, "avx2") == 0) {
    return hw == SimdTier::kAvx2 ? SimdTier::kAvx2 : SimdTier::kScalar;
  }
  return hw;
}

}  // namespace

const char* simd_tier_name(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kNeon: return "neon";
    case SimdTier::kAvx2: return "avx2";
  }
  return "?";
}

SimdTier detect_simd_tier() {
  static const SimdTier tier = capped_tier();
  return tier;
}

bool simd_tier_available(SimdTier tier) {
  return tier == SimdTier::kScalar || tier == detect_simd_tier();
}

SimdTier resolve_simd(Simd requested) {
  switch (requested) {
    case Simd::kAuto: return detect_simd_tier();
    case Simd::kScalar: return SimdTier::kScalar;
    case Simd::kNeon:
      return simd_tier_available(SimdTier::kNeon) ? SimdTier::kNeon
                                                  : SimdTier::kScalar;
    case Simd::kAvx2:
      return simd_tier_available(SimdTier::kAvx2) ? SimdTier::kAvx2
                                                  : SimdTier::kScalar;
  }
  return SimdTier::kScalar;
}

}  // namespace cj::join
