// Partitioned (radix) hash join — the paper's primary local join algorithm.
//
// Setup phase:  radix-cluster S_i and build a hash table per partition
//               (HashJoinStationary::build); radix-cluster R_j with the
//               same radix bits so probes hit exactly one table.
// Join phase:   scan R partitions, probe the matching S partition's table
//               (probe_partition). When the radix bits were chosen so an S
//               partition + table fits the L2 budget, probes run from cache.
//
// Two table layouts live behind KernelConfig (docs/KERNELS.md):
//
//   fingerprint (default)  a contiguous open-addressing bucket array;
//                          each 16-byte bucket holds the tuple inline plus
//                          a 16-bit hash fingerprint that rejects
//                          non-matches before any key comparison. Probes
//                          take whole tuple slices and software-prefetch
//                          the bucket prefetch_distance tuples ahead.
//   chained (legacy)       the original bucket-chained heads/next layout,
//                          kept as the A/B baseline.
//
// The join phase is embarrassingly parallel across partitions — the cyclo
// layer schedules disjoint partition ranges on the host's (virtual) cores,
// like the paper's four join threads.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "join/join_result.h"
#include "join/kernel_config.h"
#include "join/radix.h"
#include "rel/relation.h"

namespace cj::join {

/// Compact hash table over one partition of S. Buckets index on the high
/// hash bits (the low bits are constant within a radix partition). Stores
/// its own copy of the tuples so probes are a single structure walk.
class PartitionHashTable {
 public:
  PartitionHashTable() = default;

  /// Builds over the tuples of one S partition. `kernel` picks the layout
  /// and the probe prefetch distance.
  void build(std::span<const rel::Tuple> s_partition, int radix_bits,
             const KernelConfig& kernel = {});

  /// Probes every tuple of `r_run` (all from this partition) against the
  /// table, emitting matches. This is the single chain/cluster-walk
  /// implementation — batched, with software prefetch in the fingerprint
  /// layout.
  void probe(std::span<const rel::Tuple> r_run, JoinResult& result) const;

  std::size_t rows() const { return rows_; }

  /// Memory footprint (cache-budget accounting).
  std::size_t bytes() const {
    return tuples_.size() * sizeof(rel::Tuple) +
           (heads_.size() + next_.size()) * sizeof(std::int32_t) +
           buckets_.size() * sizeof(Bucket);
  }

 private:
  /// Fingerprint-layout bucket: the tuple inline plus a fingerprint tag.
  /// fp == 0 marks an empty bucket (occupied fingerprints have their top
  /// bit set), so a probe is one load, a 2-byte reject, and linear steps
  /// within the (≤50% loaded) bucket array.
  struct Bucket {
    std::uint32_t key = 0;
    std::uint16_t fp = 0;
    std::uint16_t pad = 0;
    std::uint64_t payload = 0;
  };
  static_assert(sizeof(Bucket) == 16);

  static std::uint16_t fingerprint_of(std::uint32_t h) {
    return static_cast<std::uint16_t>(h >> 16) | 0x8000U;
  }

  std::uint32_t bucket_index(std::uint32_t h) const {
    // High hash bits: independent of the radix partition (low) bits.
    return (h >> shift_) & mask_;
  }

  void probe_one_chained(const rel::Tuple& r, JoinResult& result) const {
    const std::uint32_t b = bucket_index(hash_key(r.key));
    for (std::int32_t i = heads_[b]; i >= 0; i = next_[static_cast<std::size_t>(i)]) {
      const rel::Tuple& s = tuples_[static_cast<std::size_t>(i)];
      if (s.key == r.key) result.add_match(r, s);
    }
  }

  void probe_one_fingerprint(const rel::Tuple& r, std::uint32_t h,
                             JoinResult& result) const {
    const std::uint16_t want = fingerprint_of(h);
    for (std::uint32_t b = bucket_index(h);; b = (b + 1) & mask_) {
      const Bucket& bucket = buckets_[b];
      if (bucket.fp == 0) return;  // end of this collision cluster
      // Whether a visited bucket matches is data-dependent noise; fold it
      // in branch-free instead of paying a mispredict per match.
      const bool hit = bucket.fp == want && bucket.key == r.key;
      result.add_match_if(hit, r, rel::Tuple{bucket.key, bucket.payload});
    }
  }

  void build_chained(std::span<const rel::Tuple> s_partition);
  void build_fingerprint(std::span<const rel::Tuple> s_partition);

  // Fingerprint layout.
  std::vector<Bucket> buckets_;
  // Chained (legacy) layout.
  std::vector<rel::Tuple> tuples_;
  std::vector<std::int32_t> heads_;
  std::vector<std::int32_t> next_;

  std::size_t rows_ = 0;
  std::uint32_t mask_ = 0;
  int shift_ = 0;
  bool fingerprint_ = true;
  int prefetch_ = 0;
};

/// Baseline: a single hash table over the whole fragment, no radix
/// clustering. Cheaper setup, but probes walk a table far larger than any
/// cache — this is what the Manegold/Boncz/Kersten partitioning fixes, and
/// `bench/abl_no_partition` quantifies the difference.
class SingleTableHashJoin {
 public:
  static SingleTableHashJoin build(std::span<const rel::Tuple> s,
                                   const KernelConfig& kernel = {}) {
    SingleTableHashJoin out;
    out.table_.build(s, /*radix_bits=*/0, kernel);
    return out;
  }

  void probe(std::span<const rel::Tuple> r, JoinResult& result) const {
    table_.probe(r, result);
  }

  std::size_t bytes() const { return table_.bytes(); }

 private:
  PartitionHashTable table_;
};

/// The setup product over a stationary fragment S_i: clustered data plus a
/// hash table per radix partition. Built once per cyclo-join run and probed
/// by every rotating fragment (paper Sec. IV-D: setup is amortized over the
/// whole revolution).
class HashJoinStationary {
 public:
  /// Clusters `s` into 2^radix_bits partitions and builds the tables.
  /// config.kernel selects the clustering and table kernels.
  static HashJoinStationary build(std::span<const rel::Tuple> s, int radix_bits,
                                  const RadixConfig& config = {});

  int radix_bits() const { return parts_.bits(); }
  std::uint32_t num_partitions() const { return parts_.num_partitions(); }
  std::size_t rows() const { return parts_.rows(); }

  /// Probes a whole run of R tuples that all belong to radix partition `p`
  /// in one batch (prefetched in the fingerprint layout).
  void probe_partition(std::uint32_t p, std::span<const rel::Tuple> r_run,
                       JoinResult& result) const {
    tables_[p].probe(r_run, result);
  }

  const PartitionHashTable& table(std::uint32_t p) const { return tables_[p]; }
  const PartitionedData& partitions() const { return parts_; }

  /// Total memory of all hash tables (reporting).
  std::size_t bytes() const;

 private:
  PartitionedData parts_;
  std::vector<PartitionHashTable> tables_;
};

}  // namespace cj::join
