// Partitioned (radix) hash join — the paper's primary local join algorithm.
//
// Setup phase:  radix-cluster S_i and build a hash table per partition
//               (HashJoinStationary::build); radix-cluster R_j with the
//               same radix bits so probes hit exactly one table.
// Join phase:   scan R partitions, probe the matching S partition's table
//               (probe_partition). When the radix bits were chosen so an S
//               partition + table fits the L2 budget, probes run from cache.
//
// Two table layouts live behind KernelConfig (docs/KERNELS.md):
//
//   bucket-group (default)  F14/Swiss-style: groups of `group_size` 16-bit
//                           fingerprints packed contiguously next to their
//                           inline tuples, probed with one vector compare
//                           per group (AVX2 / NEON / scalar, resolved at
//                           runtime via join/simd.h). The build batches
//                           hashing ahead of any bucket touch and stages
//                           out-of-cache inserts through the same
//                           write-combining scatter as the radix pass.
//   chained (legacy)        the original bucket-chained heads/next layout,
//                           kept as the A/B baseline.
//
// The join phase is embarrassingly parallel across partitions — the cyclo
// layer schedules disjoint partition ranges on the host's (virtual) cores,
// like the paper's four join threads.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "join/join_result.h"
#include "join/kernel_config.h"
#include "join/radix.h"
#include "join/simd.h"
#include "join/table_slab.h"
#include "rel/relation.h"

namespace cj::join {

/// Compact hash table over one partition of S. Groups index on the high
/// hash bits (the low bits are constant within a radix partition). Stores
/// its own copy of the tuples so probes are a single structure walk.
class PartitionHashTable {
 public:
  PartitionHashTable() = default;

  /// Builds over the tuples of one S partition. `kernel` picks the layout,
  /// the SIMD tier, the group size and the probe prefetch distance.
  void build(std::span<const rel::Tuple> s_partition, int radix_bits,
             const KernelConfig& kernel = {});

  /// Probes every tuple of `r_run` (all from this partition) against the
  /// table, emitting matches. This is the single chain/group-walk
  /// implementation — batched, with a two-stage software-prefetch pipeline
  /// and one vector fingerprint compare per group in the group layout.
  void probe(std::span<const rel::Tuple> r_run, JoinResult& result) const;

  std::size_t rows() const { return rows_; }

  /// Memory footprint (cache-budget accounting).
  std::size_t bytes() const {
    return tuples_.size() * sizeof(rel::Tuple) +
           (heads_.size() + next_.size()) * sizeof(std::int32_t) +
           static_cast<std::size_t>(num_groups_) * group_bytes();
  }

  /// Build load factor of the bucket-group layout: kLoadNum/kLoadDen = 1/2
  /// occupied slots per slot allocated (50%). Duplicate-heavy keys (the
  /// benchmark's key_domain = |S| sampled with replacement is the common
  /// case) inflate group-occupancy variance well past Poisson: at 80% load
  /// ~40% of 16-slot groups come out completely full and nearly half the
  /// probes walk past their home group (measured ~1.5-2x probe slowdown);
  /// at 50% load <5% of groups are full and ~7% of probes walk one extra
  /// group. Probe speed is the product here, so the table buys it with
  /// space — and fastrange sizing (no power-of-two rounding) claws back
  /// most of what the old bit_ceil layout wasted anyway.
  static constexpr std::size_t kLoadNum = 1;
  static constexpr std::size_t kLoadDen = 2;

  /// Probe-phase footprint of one stationary tuple under `kernel`'s table
  /// layout — what choose_radix_bits sizes partitions with. Derived from
  /// the layout itself so a layout change resizes partitions automatically:
  ///  - chained: the tuple copy plus bucket-head and chain entries;
  ///  - bucket-group: the tuple copy the partition directory keeps plus
  ///    kLoadDen/kLoadNum slots of sizeof(group)/group_size bytes each
  ///    (16 B/slot at either group size ⇒ 32 B of table, 44 B total).
  static std::size_t bytes_per_stationary_tuple(const KernelConfig& kernel) {
    if (!kernel.fingerprint_table) return sizeof(rel::Tuple) + 12;
    const std::size_t slot = kernel.group_size == 8
                                 ? sizeof(BucketGroup<8>) / 8
                                 : sizeof(BucketGroup<16>) / 16;
    return sizeof(rel::Tuple) + slot * kLoadDen / kLoadNum;
  }

 private:
  /// One group of the bucket-group layout: G 16-bit fingerprints packed
  /// contiguously (one vector compare covers all of them) next to the G
  /// inline tuples they tag, in structure-of-arrays order. fp == 0 marks
  /// an empty slot (occupied fingerprints have their top bit set); a group
  /// with any empty slot terminates a probe's walk, because inserts only
  /// spill to the next group when a group is completely full. alignas(64)
  /// starts every fingerprint block on its own cache line (and pads
  /// sizeof to 128/256 B), so a probe touches the fingerprint line plus
  /// exactly the candidate tuple's line.
  template <int G>
  struct alignas(64) BucketGroup {
    std::uint16_t fp[G];
    std::uint32_t key[G];
    std::uint64_t payload[G];
  };
  static_assert(sizeof(BucketGroup<8>) == 128);
  static_assert(sizeof(BucketGroup<16>) == 256);

  static std::uint16_t fingerprint_of(std::uint32_t h) {
    return static_cast<std::uint16_t>(h >> 16) | 0x8000U;
  }

  /// Fibonacci multiplier (2^32/φ, odd) remixing the usable hash bits
  /// before fastrange. Load-bearing, not hygiene: the fingerprint is the
  /// top 16 hash bits, and fastrange indexes mostly on the top bits of its
  /// input — feed it the raw hash and every tuple in a group shares (up to
  /// rounding) one fingerprint, so the vector compare flags all occupied
  /// slots and each probe key-checks ~G candidates instead of ~1 (measured
  /// 2x probe slowdown). The remix decorrelates group index from
  /// fingerprint while staying a bijection on the usable bits.
  static constexpr std::uint32_t kGroupMix = 0x9E3779B9U;

  /// The remixed group-index key of hash `h`: the 32-shift usable (high)
  /// hash bits, Fibonacci-scrambled within that width. group_index is
  /// monotone in this value, which the staged build exploits: tuples
  /// pre-clustered on remix()'s top bits land in contiguous group ranges.
  static std::uint32_t remix(std::uint32_t h, int shift) {
    return ((h >> shift) * kGroupMix) & (0xFFFFFFFFU >> shift);
  }

  /// Home group of hash `h`: fastrange (Lemire) over the remixed high hash
  /// bits (the low bits are constant within a radix partition). Maps the
  /// 32-shift_ usable bits onto [0, num_groups_) with a multiply and a
  /// shift, so num_groups_ can be ceil(n/(load·G)) exactly instead of the
  /// next power of two — the table never over-allocates by up to 2x.
  std::uint32_t group_index(std::uint32_t h) const {
    const std::uint64_t x = remix(h, shift_);
    return static_cast<std::uint32_t>((x * num_groups_) >> (32 - shift_));
  }

  /// Successor in a probe/insert walk, wrapping the (arbitrary, not
  /// power-of-two) group count.
  std::uint32_t next_group(std::uint32_t g) const {
    return g + 1 == num_groups_ ? 0 : g + 1;
  }

  std::uint32_t bucket_index(std::uint32_t h) const {  // chained layout
    return (h >> shift_) & mask_;
  }

  template <int G>
  const BucketGroup<G>* groups_ptr() const {
    return static_cast<const BucketGroup<G>*>(groups_);
  }

  std::size_t group_bytes() const {
    return group_size_ == 8 ? sizeof(BucketGroup<8>) : sizeof(BucketGroup<16>);
  }

 public:
  /// Exact group-table bytes a build over `rows` tuples will use under
  /// `kernel` — what HashJoinStationary sizes its shared table slab with.
  static std::size_t table_bytes_for(std::size_t rows,
                                     const KernelConfig& kernel) {
    return kernel.group_size == 8
               ? groups_for(rows, 8) * sizeof(BucketGroup<8>)
               : groups_for(rows, 16) * sizeof(BucketGroup<16>);
  }

 private:

  void probe_one_chained(const rel::Tuple& r, JoinResult& result) const {
    const std::uint32_t b = bucket_index(hash_key(r.key));
    for (std::int32_t i = heads_[b]; i >= 0; i = next_[static_cast<std::size_t>(i)]) {
      const rel::Tuple& s = tuples_[static_cast<std::size_t>(i)];
      if (s.key == r.key) result.add_match(r, s);
    }
  }

  friend class HashJoinStationary;

  /// Shared build prologue: records the layout knobs and resets whichever
  /// layout a previous build left behind.
  void init_build(std::size_t rows, int radix_bits, const KernelConfig& kernel);

  /// Group count for `n` tuples at the build load factor (at least 1, so
  /// group_index is always valid and walks always terminate: at 50% load
  /// the table keeps ≥ n spare slots).
  static std::uint32_t groups_for(std::size_t n, int g) {
    const std::uint64_t ng = (n * kLoadDen + kLoadNum * g - 1) / (kLoadNum * g);
    return static_cast<std::uint32_t>(std::max<std::uint64_t>(1, ng));
  }

  /// Points the table at its group storage: `storage` when the caller
  /// carved a range out of a shared slab (HashJoinStationary), else a
  /// freshly allocated slab of its own (huge-page backed when large).
  void attach_groups(std::size_t table_bytes, std::byte* storage);

  void build_chained(std::span<const rel::Tuple> s_partition);
  template <int G>
  void build_groups(std::span<const rel::Tuple> s_partition,
                    const KernelConfig& kernel, std::byte* storage);

  /// Staged bucket-group build over a partition slice that was clustered
  /// into `region_offsets.size()-1` (a power of two) equal hash ranges on
  /// the top hash bits — the fused setup path of HashJoinStationary. Every
  /// region's inserts go to a compact L2-resident scratch (fingerprint +
  /// 16-bit tuple index), and the final inline-tuple table is then written
  /// strictly sequentially, so it is never the target of a random store.
  /// The 16-bit staging indices require every region to hold < 2^15 tuples;
  /// build_groups_staged reports false on (pathological) skew beyond that
  /// and build_staged falls back to the direct build.
  /// build() with caller-carved group storage (fingerprint layout only).
  void build_direct(std::span<const rel::Tuple> s_partition, int radix_bits,
                    const KernelConfig& kernel, std::byte* storage);

  void build_staged(std::span<const rel::Tuple> slice,
                    std::span<const std::uint32_t> region_offsets,
                    int radix_bits, const KernelConfig& kernel,
                    std::byte* storage);
  template <int G>
  bool build_groups_staged(std::span<const rel::Tuple> slice,
                           std::span<const std::uint32_t> region_offsets,
                           std::byte* storage);

  // Group-probe kernels, templated on the fingerprint-compare policy of
  // each SIMD tier; definitions live in join/hash_group_impl.h and are
  // instantiated by hash_join.cpp (scalar) and the per-ISA translation
  // units (kernels_avx2.cpp / kernels_neon.cpp).
  template <int G, typename Ops>
  void probe_groups(std::span<const rel::Tuple> r_run, JoinResult& result) const;
  template <int G, typename Ops>
  void probe_groups_batched(std::span<const rel::Tuple> r_run,
                            JoinResult& result) const;
  template <int G, typename Ops>
  void probe_walk(const rel::Tuple& r, std::uint32_t h, std::uint32_t g,
                  JoinResult& result) const;

#if defined(__x86_64__) || defined(__i386__)
  void probe_dispatch_avx2(std::span<const rel::Tuple> r_run,
                           JoinResult& result) const;
#endif
#if defined(__aarch64__) || defined(__ARM_NEON)
  void probe_dispatch_neon(std::span<const rel::Tuple> r_run,
                           JoinResult& result) const;
#endif

  // Bucket-group layout. groups_ is the active BucketGroup<group_size_>
  // array — slab_'s storage when this table allocated for itself, or a
  // range carved from HashJoinStationary's shared slab (which then owns
  // the bytes and outlives the table).
  TableSlab slab_;
  void* groups_ = nullptr;
  std::uint32_t num_groups_ = 0;
  int group_size_ = 16;
  SimdTier tier_ = SimdTier::kScalar;

  // Chained (legacy) layout.
  std::vector<rel::Tuple> tuples_;
  std::vector<std::int32_t> heads_;
  std::vector<std::int32_t> next_;

  std::size_t rows_ = 0;
  std::uint32_t mask_ = 0;
  int shift_ = 0;
  bool fingerprint_ = true;
  int prefetch_ = 0;
};

/// Baseline: a single hash table over the whole fragment, no radix
/// clustering. Cheaper setup, but probes walk a table far larger than any
/// cache — this is what the Manegold/Boncz/Kersten partitioning fixes, and
/// `bench/abl_no_partition` quantifies the difference.
class SingleTableHashJoin {
 public:
  static SingleTableHashJoin build(std::span<const rel::Tuple> s,
                                   const KernelConfig& kernel = {}) {
    SingleTableHashJoin out;
    out.table_.build(s, /*radix_bits=*/0, kernel);
    return out;
  }

  void probe(std::span<const rel::Tuple> r, JoinResult& result) const {
    table_.probe(r, result);
  }

  std::size_t bytes() const { return table_.bytes(); }

 private:
  PartitionHashTable table_;
};

/// The setup product over a stationary fragment S_i: clustered data plus a
/// hash table per radix partition. Built once per cyclo-join run and probed
/// by every rotating fragment (paper Sec. IV-D: setup is amortized over the
/// whole revolution).
class HashJoinStationary {
 public:
  /// Clusters `s` into 2^radix_bits partitions and builds the tables.
  /// config.kernel selects the clustering and table kernels.
  static HashJoinStationary build(std::span<const rel::Tuple> s, int radix_bits,
                                  const RadixConfig& config = {});

  int radix_bits() const { return parts_.bits(); }
  std::uint32_t num_partitions() const { return parts_.num_partitions(); }
  std::size_t rows() const { return parts_.rows(); }

  /// Probes a whole run of R tuples that all belong to radix partition `p`
  /// in one batch (prefetch-pipelined in the bucket-group layout).
  void probe_partition(std::uint32_t p, std::span<const rel::Tuple> r_run,
                       JoinResult& result) const {
    tables_[p].probe(r_run, result);
  }

  const PartitionHashTable& table(std::uint32_t p) const { return tables_[p]; }
  const PartitionedData& partitions() const { return parts_; }

  /// Total memory of all hash tables (reporting).
  std::size_t bytes() const;

 private:
  PartitionedData parts_;
  std::vector<PartitionHashTable> tables_;
  /// Shared backing store for every partition's group table: one
  /// huge-page-advised allocation instead of num_partitions small ones, so
  /// sub-2MB per-partition tables still share 2 MB pages (build faults and
  /// probe TLB reach both scale with page count; see table_slab.h).
  TableSlab table_slab_;
};

}  // namespace cj::join
