// Partitioned (radix) hash join — the paper's primary local join algorithm.
//
// Setup phase:  radix-cluster S_i and build a bucket-chained hash table per
//               partition (HashJoinStationary::build); radix-cluster R_j
//               with the same radix bits so probes hit exactly one table.
// Join phase:   scan R partitions, probe the matching S partition's table
//               (probe_partition). When the radix bits were chosen so an S
//               partition + table fits the L2 budget, probes run from cache.
//
// The join phase is embarrassingly parallel across partitions — the cyclo
// layer schedules disjoint partition ranges on the host's (virtual) cores,
// like the paper's four join threads.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "join/join_result.h"
#include "join/radix.h"
#include "rel/relation.h"

namespace cj::join {

/// Compact bucket-chained hash table over one partition of S.
/// Buckets index on the high hash bits (the low bits are constant within a
/// radix partition). Stores its own copy of the tuples so probes are a
/// single structure walk.
class PartitionHashTable {
 public:
  PartitionHashTable() = default;

  /// Builds over the tuples of one S partition.
  void build(std::span<const rel::Tuple> s_partition, int radix_bits);

  /// Probes every tuple of `r_run` (all from this partition) against the
  /// table, emitting matches.
  void probe(std::span<const rel::Tuple> r_run, JoinResult& result) const;

  std::size_t rows() const { return tuples_.size(); }

  /// Memory footprint (cache-budget accounting).
  std::size_t bytes() const {
    return tuples_.size() * sizeof(rel::Tuple) +
           (heads_.size() + next_.size()) * sizeof(std::int32_t);
  }

 private:
  std::uint32_t bucket_of(std::uint32_t key) const {
    // High hash bits: independent of the radix partition (low) bits.
    return (hash_key(key) >> shift_) & mask_;
  }

  std::vector<rel::Tuple> tuples_;
  std::vector<std::int32_t> heads_;
  std::vector<std::int32_t> next_;
  std::uint32_t mask_ = 0;
  int shift_ = 0;
};

/// Baseline: a single hash table over the whole fragment, no radix
/// clustering. Cheaper setup, but probes walk a table far larger than any
/// cache — this is what the Manegold/Boncz/Kersten partitioning fixes, and
/// `bench/abl_no_partition` quantifies the difference.
class SingleTableHashJoin {
 public:
  static SingleTableHashJoin build(std::span<const rel::Tuple> s) {
    SingleTableHashJoin out;
    out.table_.build(s, /*radix_bits=*/0);
    return out;
  }

  void probe(std::span<const rel::Tuple> r, JoinResult& result) const {
    table_.probe(r, result);
  }

  std::size_t bytes() const { return table_.bytes(); }

 private:
  PartitionHashTable table_;
};

/// The setup product over a stationary fragment S_i: clustered data plus a
/// hash table per radix partition. Built once per cyclo-join run and probed
/// by every rotating fragment (paper Sec. IV-D: setup is amortized over the
/// whole revolution).
class HashJoinStationary {
 public:
  /// Clusters `s` into 2^radix_bits partitions and builds the tables.
  static HashJoinStationary build(std::span<const rel::Tuple> s, int radix_bits,
                                  const RadixConfig& config = {});

  int radix_bits() const { return parts_.bits(); }
  std::uint32_t num_partitions() const { return parts_.num_partitions(); }
  std::size_t rows() const { return parts_.rows(); }

  /// Probes a run of R tuples that all belong to radix partition `p`.
  void probe_partition(std::uint32_t p, std::span<const rel::Tuple> r_run,
                       JoinResult& result) const {
    tables_[p].probe(r_run, result);
  }

  const PartitionHashTable& table(std::uint32_t p) const { return tables_[p]; }
  const PartitionedData& partitions() const { return parts_; }

  /// Total memory of all hash tables (reporting).
  std::size_t bytes() const;

 private:
  PartitionedData parts_;
  std::vector<PartitionHashTable> tables_;
};

}  // namespace cj::join
