// Single-host convenience joins over two in-memory fragments.
//
// These drive the same kernels the distributed cyclo-join uses, split into
// the paper's two phases (setup / join) with real CPU timing per phase.
// They are the "local join" baseline of the evaluation and the quickest way
// to use this library on one machine.
#pragma once

#include <cstdint>
#include <span>

#include "join/join_result.h"
#include "join/radix.h"
#include "rel/relation.h"

namespace cj::join {

/// Real (wall/CPU) phase timings in nanoseconds, from the executing thread.
struct LocalJoinTiming {
  std::int64_t setup_ns = 0;
  std::int64_t join_ns = 0;
};

/// Radix partitioned hash join of r ⋈ s on key equality.
JoinResult local_hash_join(std::span<const rel::Tuple> r,
                           std::span<const rel::Tuple> s,
                           const RadixConfig& config = {},
                           LocalJoinTiming* timing = nullptr,
                           bool materialize = false);

/// Sort-merge join of r ⋈ s; band > 0 evaluates |r.key - s.key| <= band.
/// kernel.simd selects the merge key-scan tier (join/sort_merge.h).
JoinResult local_sort_merge_join(std::span<const rel::Tuple> r,
                                 std::span<const rel::Tuple> s,
                                 std::uint32_t band = 0,
                                 LocalJoinTiming* timing = nullptr,
                                 bool materialize = false,
                                 const KernelConfig& kernel = {});

}  // namespace cj::join
