// Vectorized scan helpers of the merge join — internal header.
//
// The merge join's inner loops are key scans over a sorted tuple array:
// "where does this equal-key run end?" and "where does this band window
// end?". Each has one implementation per SIMD tier, picked at join time
// via merge_scan_ops(); the AVX2/NEON bodies live in kernels_avx2.cpp /
// kernels_neon.cpp (the only TUs built with those ISAs enabled), the
// scalar ones in sort_merge.cpp. All variants share the contract below so
// the dispatch-tier parity tests can hold them to identical results.
#pragma once

#include <cstddef>
#include <cstdint>

#include "join/simd.h"
#include "rel/relation.h"

namespace cj::join::detail {

/// First index in [i, n) whose key differs from `key` (end of the
/// equal-key run), or n. Requires t[i-1..] sorted by key only in the sense
/// the merge join guarantees: the caller stops at the first mismatch.
using ScanFn = std::size_t (*)(const rel::Tuple* t, std::size_t i,
                               std::size_t n, std::uint32_t key);

std::size_t run_end_scalar(const rel::Tuple* t, std::size_t i, std::size_t n,
                           std::uint32_t key);
/// First index in [i, n) whose key exceeds `hi_key` (end of the band
/// window), or n. Assumes keys ascending from i.
std::size_t window_end_scalar(const rel::Tuple* t, std::size_t i, std::size_t n,
                              std::uint32_t hi_key);

#if defined(__x86_64__) || defined(__i386__)
std::size_t run_end_avx2(const rel::Tuple* t, std::size_t i, std::size_t n,
                         std::uint32_t key);
std::size_t window_end_avx2(const rel::Tuple* t, std::size_t i, std::size_t n,
                            std::uint32_t hi_key);
#endif
#if defined(__aarch64__) || defined(__ARM_NEON)
std::size_t run_end_neon(const rel::Tuple* t, std::size_t i, std::size_t n,
                         std::uint32_t key);
std::size_t window_end_neon(const rel::Tuple* t, std::size_t i, std::size_t n,
                            std::uint32_t hi_key);
#endif

/// The two scans of the resolved tier.
struct MergeScanOps {
  ScanFn run_end;
  ScanFn window_end;
};
MergeScanOps merge_scan_ops(SimdTier tier);

}  // namespace cj::join::detail
