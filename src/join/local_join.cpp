#include "join/local_join.h"

#include <vector>

#include "common/cputime.h"
#include "join/hash_join.h"
#include "join/sort_merge.h"

namespace cj::join {

JoinResult local_hash_join(std::span<const rel::Tuple> r,
                           std::span<const rel::Tuple> s,
                           const RadixConfig& config, LocalJoinTiming* timing,
                           bool materialize) {
  CpuStopwatch watch;
  const int bits = choose_radix_bits(s.size(), config);
  HashJoinStationary stationary = HashJoinStationary::build(s, bits, config);
  PartitionedData r_parts =
      radix_cluster(r, bits, config.bits_per_pass, config.kernel);
  if (timing) timing->setup_ns = watch.elapsed_ns();

  watch.restart();
  JoinResult result(materialize);
  for (std::uint32_t p = 0; p < r_parts.num_partitions(); ++p) {
    stationary.probe_partition(p, r_parts.partition(p), result);
  }
  if (timing) timing->join_ns = watch.elapsed_ns();
  return result;
}

JoinResult local_sort_merge_join(std::span<const rel::Tuple> r,
                                 std::span<const rel::Tuple> s, std::uint32_t band,
                                 LocalJoinTiming* timing, bool materialize,
                                 const KernelConfig& kernel) {
  CpuStopwatch watch;
  std::vector<rel::Tuple> r_sorted(r.begin(), r.end());
  std::vector<rel::Tuple> s_sorted(s.begin(), s.end());
  sort_fragment(r_sorted);
  sort_fragment(s_sorted);
  if (timing) timing->setup_ns = watch.elapsed_ns();

  watch.restart();
  JoinResult result(materialize);
  band_merge_join(r_sorted, s_sorted, band, result, kernel);
  if (timing) timing->join_ns = watch.elapsed_ns();
  return result;
}

}  // namespace cj::join
