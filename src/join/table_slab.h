// Backing storage for bucket-group hash tables.
//
// The group tables are the largest allocations the join makes (32 B per
// stationary tuple at the build load factor) and they are rebuilt from
// scratch every setup, so how their pages come into existence is a real
// kernel cost, not an allocator detail: a fresh 4 KB-paged allocation
// charges one minor fault per 4 KB to the *build loop* that first touches
// it, and afterwards a table far larger than the TLB reach charges the
// *probe loop* a 4 KB-TLB miss per random group access. Both costs scale
// with exactly the footprint the fingerprint layout added over the chained
// one, which is how a faster table algorithm measured slower end to end.
//
// TableSlab owns one contiguous storage range for one or many tables. On
// Linux it is backed by an anonymous mapping aligned to the 2 MB huge-page
// boundary and advised MADV_HUGEPAGE, so under transparent-huge-page
// "madvise" policy (the common server default) the kernel backs it with
// 2 MB pages: ~500x fewer build-time faults and a TLB entry per 2 MB
// instead of per 4 KB on the probe side. HashJoinStationary carves every
// partition's table out of a single slab, so even 512 KB per-partition
// tables (individually below huge-page granularity) share huge pages.
// Elsewhere (non-Linux, tiny tables, mmap failure) it degrades to a
// 64 B-aligned operator new block — correctness never depends on the fast
// path.
//
// Mappings are recycled through a per-thread cache of one block: the
// destructor parks the mapping instead of unmapping it, and the next
// same-thread allocation it can satisfy adopts it, pages still resident.
// This is shaped for the roundabout: every revolution rebuilds stationary
// tables of the same sizes, so in steady state a setup faults no table
// page at all — without the cache, each rebuild's slab would re-fault its
// whole footprint 4 KB at a time, which measures as a ~1.5-2x slowdown of
// the entire build phase (faulting + kernel page-zeroing costs ~0.45 ns/B,
// ~14 ns per stationary tuple at 32 table-B/tuple). The cache holds at
// most one block per thread, bounded by the largest table footprint that
// thread builds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace cj::join {

class TableSlab {
 public:
  /// Huge-page granularity the mmap path aligns to. Allocations below it
  /// take the plain heap path (a lone sub-2 MB table cannot be backed by a
  /// huge page anyway).
  static constexpr std::size_t kHugePageBytes = 2U << 20;

  TableSlab() = default;

  explicit TableSlab(std::size_t bytes) : bytes_(bytes) {
    if (bytes_ == 0) return;
#if defined(__linux__)
    if (bytes_ >= kHugePageBytes) {
      const std::size_t ceil = (bytes_ + kPageBytes - 1) & ~(kPageBytes - 1);
      // A parked mapping from an earlier same-thread slab satisfies the
      // request with already-faulted pages (see cache note above). Only
      // adopt when the fit is not wasteful: an oversized block would pin
      // memory the current build never touches.
      CacheBlock& cache = cache_block();
      if (cache.p != nullptr && cache.mapped >= ceil &&
          cache.mapped <= 2 * ceil) {
        p_ = cache.p;
        mapped_bytes_ = cache.mapped;
        cache = CacheBlock{};
        return;
      }
      // Over-map by one huge page, then trim to a 2 MB-aligned range: an
      // unaligned VMA may contain no aligned 2 MB chunk at all, and THP
      // can only back aligned chunks.
      const std::size_t total = ceil + kHugePageBytes;
      void* raw = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
      if (raw != MAP_FAILED) {
        const auto base = reinterpret_cast<std::uintptr_t>(raw);
        const std::uintptr_t aligned =
            (base + kHugePageBytes - 1) & ~(kHugePageBytes - 1);
        if (aligned != base) {
          ::munmap(raw, aligned - base);
        }
        const std::size_t tail = total - (aligned - base) - ceil;
        if (tail != 0) {
          ::munmap(reinterpret_cast<void*>(aligned + ceil), tail);
        }
        p_ = reinterpret_cast<void*>(aligned);
        mapped_bytes_ = ceil;
        ::madvise(p_, mapped_bytes_, MADV_HUGEPAGE);
        return;
      }
    }
#endif
    p_ = ::operator new(bytes_, std::align_val_t{64});
  }

  ~TableSlab() { release(); }

  TableSlab(TableSlab&& other) noexcept { swap(other); }
  TableSlab& operator=(TableSlab&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  TableSlab(const TableSlab&) = delete;
  TableSlab& operator=(const TableSlab&) = delete;

  std::byte* data() { return static_cast<std::byte*>(p_); }
  const std::byte* data() const { return static_cast<const std::byte*>(p_); }
  std::size_t bytes() const { return bytes_; }
  explicit operator bool() const { return p_ != nullptr; }

 private:
  static constexpr std::size_t kPageBytes = 4096;

#if defined(__linux__)
  struct CacheBlock {
    void* p = nullptr;
    std::size_t mapped = 0;
  };
  /// The one parked mapping of this thread. A destructor on another thread
  /// parks into that thread's slot — a mapping is process-wide, so adopting
  /// cross-thread-built storage is safe; the cache is thread-local only to
  /// stay lock-free.
  static CacheBlock& cache_block() {
    static thread_local CacheBlock block;
    return block;
  }
#endif

  void release() {
    if (p_ == nullptr) return;
#if defined(__linux__)
    if (mapped_bytes_ != 0) {
      // Park the mapping for the next build instead of unmapping it;
      // displace a smaller parked block (the largest mapping serves the
      // widest range of future table sizes).
      CacheBlock& cache = cache_block();
      if (cache.p == nullptr || cache.mapped < mapped_bytes_) {
        std::swap(cache.p, p_);
        std::swap(cache.mapped, mapped_bytes_);
      }
      if (p_ != nullptr) ::munmap(p_, mapped_bytes_);
      p_ = nullptr;
      mapped_bytes_ = 0;
      bytes_ = 0;
      return;
    }
#endif
    ::operator delete(p_, std::align_val_t{64});
    p_ = nullptr;
    bytes_ = 0;
  }

  void swap(TableSlab& other) noexcept {
    std::swap(p_, other.p_);
    std::swap(bytes_, other.bytes_);
    std::swap(mapped_bytes_, other.mapped_bytes_);
  }

  void* p_ = nullptr;
  std::size_t bytes_ = 0;
  std::size_t mapped_bytes_ = 0;  ///< nonzero iff mmap-backed
};

}  // namespace cj::join
