// Join result accumulation.
//
// Benchmarks count and checksum matches (materializing hundreds of millions
// of output tuples would measure the allocator, not the join); examples and
// tests can request materialization. The checksum is order-independent so
// any join algorithm over any schedule must produce the identical value —
// this is how hash join, sort-merge join and the nested-loops reference
// validate each other on large inputs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "rel/relation.h"

namespace cj::join {

/// A materialized output row: join key plus both payloads.
struct OutTuple {
  std::uint32_t key;
  std::uint64_t r_payload;
  std::uint64_t s_payload;

  friend bool operator==(const OutTuple&, const OutTuple&) = default;
};

class JoinResult {
 public:
  explicit JoinResult(bool materialize = false) : materialize_(materialize) {}

  void add_match(const rel::Tuple& r, const rel::Tuple& s) {
    ++matches_;
    checksum_ += pair_hash(r.payload, s.payload);
    if (materialize_) output_.push_back(OutTuple{r.key, r.payload, s.payload});
  }

  /// Conditional add_match whose counting path is branch-free: probe inner
  /// loops call it with a data-dependent `hit` that no predictor can learn,
  /// turning what would be a mispredict per match into plain arithmetic.
  /// (Materializing results take the branch; output_.push_back needs it.)
  void add_match_if(bool hit, const rel::Tuple& r, const rel::Tuple& s) {
    if (materialize_) {
      if (hit) add_match(r, s);
      return;
    }
    const std::uint64_t mixed = pair_hash(r.payload, s.payload);
    matches_ += hit ? 1 : 0;
    checksum_ += hit ? mixed : 0;
  }

  /// Pre-sizes the output for a probe batch about to be resolved: callers
  /// pass the batch's match upper bound once, so the per-match push_back
  /// almost never hits the capacity check mid-batch. Growth stays
  /// geometric (never shrinks to the exact bound), keeping the amortized
  /// O(1) append that repeated exact reserves would destroy. Counting-only
  /// results ignore it.
  void reserve_batch(std::size_t upper_bound_matches) {
    if (!materialize_) return;
    const std::size_t want = output_.size() + upper_bound_matches;
    if (want > output_.capacity()) {
      output_.reserve(std::max(want, output_.capacity() * 2));
    }
  }

  /// Folds another (e.g. per-partition) result into this one. Counting-only
  /// results skip the output splice entirely; materializing ones reserve up
  /// front so per-partition merges don't reallocate repeatedly.
  void merge(const JoinResult& other) {
    matches_ += other.matches_;
    checksum_ += other.checksum_;
    if (materialize_ && !other.output_.empty()) {
      output_.reserve(output_.size() + other.output_.size());
      output_.insert(output_.end(), other.output_.begin(), other.output_.end());
    }
  }

  std::uint64_t matches() const { return matches_; }
  std::uint64_t checksum() const { return checksum_; }
  bool materializes() const { return materialize_; }
  std::span<const OutTuple> output() const { return output_; }

 private:
  // Mixes one (r, s) pairing into a 64-bit value; summed over all matches
  // the total is independent of match order but sensitive to pairings.
  static std::uint64_t pair_hash(std::uint64_t r, std::uint64_t s) {
    std::uint64_t x = r * 0x9E3779B97F4A7C15ULL + s * 0xC2B2AE3D27D4EB4FULL + 1;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    return x;
  }

  bool materialize_;
  std::uint64_t matches_ = 0;
  std::uint64_t checksum_ = 0;
  std::vector<OutTuple> output_;
};

}  // namespace cj::join
