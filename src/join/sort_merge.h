// Sort-merge join — the paper's second local join algorithm.
//
// Setup phase:  sort both fragments by join key (the paper uses the C
//               library's qsort; we use std::sort which plays the same
//               role). Sorting costs more than radix clustering, which is
//               exactly the setup-vs-join trade-off of paper Sec. V-E.
// Join phase:   a strictly sequential merge over the two sorted runs —
//               maximally cache-friendly — with full duplicate-group
//               handling. The inner key scans (equal-key run ends, band
//               window ends) dispatch to AVX2/NEON/scalar variants per
//               KernelConfig::simd (join/simd.h). A band variant evaluates
//               |r.key - s.key| <= band (the paper highlights band joins
//               as something hash join cannot do).
//
// Parallelism: split sorted R into contiguous chunks; each chunk merges
// against S independently starting from a binary-searched position.
#pragma once

#include <cstdint>
#include <span>

#include "join/join_result.h"
#include "join/kernel_config.h"
#include "rel/relation.h"

namespace cj::join {

/// Sorts a fragment in place by join key (setup phase).
void sort_fragment(std::span<rel::Tuple> fragment);

/// True if the span is sorted by key (debug validation).
bool is_sorted_by_key(std::span<const rel::Tuple> fragment);

/// Equi-join two sorted runs. Handles duplicate keys on both sides
/// (emits the full cross product per key group). kernel.simd selects the
/// key-scan tier; every tier produces identical results.
void merge_join(std::span<const rel::Tuple> r_sorted,
                std::span<const rel::Tuple> s_sorted, JoinResult& result,
                const KernelConfig& kernel = {});

/// Band join over sorted runs: matches where |r.key - s.key| <= band.
/// band == 0 degenerates to the equi-join.
void band_merge_join(std::span<const rel::Tuple> r_sorted,
                     std::span<const rel::Tuple> s_sorted, std::uint32_t band,
                     JoinResult& result, const KernelConfig& kernel = {});

/// The part of s_sorted that can match any key in [lo_key, hi_key] given a
/// band — used to bound per-chunk merge work when parallelizing.
std::span<const rel::Tuple> matching_window(std::span<const rel::Tuple> s_sorted,
                                            std::uint32_t lo_key,
                                            std::uint32_t hi_key,
                                            std::uint32_t band = 0);

}  // namespace cj::join
