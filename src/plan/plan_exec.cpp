#include "plan/plan_exec.h"

#include <string>
#include <utility>

#include "common/assert.h"
#include "ring/redistribute.h"

namespace cj::plan {

PlanRunReport PlanExecutor::execute(
    const Plan& plan, const QueryGraph& graph,
    std::vector<rel::PartitionedRelation> inputs) const {
  const int n = cfg_.cluster.num_hosts;
  CJ_CHECK_MSG(plan.order.size() >= 2 && plan.rounds.size() + 1 == plan.order.size(),
               "malformed plan");
  CJ_CHECK_MSG(inputs.size() == static_cast<std::size_t>(graph.num_relations()),
               "one input handle per query-graph relation");
  for (const int id : plan.order) {
    CJ_CHECK_MSG(inputs[static_cast<std::size_t>(id)].hosts() == n,
                 "input fragments must match the cluster's num_hosts");
  }

  PlanRunReport report;
  std::vector<rel::Relation> inter =
      std::move(inputs[static_cast<std::size_t>(plan.order[0])]).take_fragments();
  std::string inter_name = graph.name(plan.order[0]);

  for (std::size_t k = 0; k < plan.rounds.size(); ++k) {
    const PlannedRound& planned = plan.rounds[k];
    const bool final_round = k + 1 == plan.rounds.size();
    std::vector<rel::Relation> joined =
        std::move(inputs[static_cast<std::size_t>(planned.relation)])
            .take_fragments();

    cyclo::FragmentInputs frags;
    if (planned.intermediate_rotates) {
      frags.rotating = std::move(inter);
      frags.stationary = std::move(joined);
    } else {
      frags.rotating = std::move(joined);
      frags.stationary = std::move(inter);
    }

    cyclo::ClusterConfig cluster = cfg_.cluster;
    if (cfg_.round_config) cfg_.round_config(static_cast<int>(k), &cluster);

    cyclo::JoinSpec spec;
    spec.algorithm = planned.kind == model::JoinKind::kSortMerge
                         ? cyclo::Algorithm::kSortMergeJoin
                         : cyclo::Algorithm::kHashJoin;
    spec.band = planned.band;
    spec.join_threads = cfg_.join_threads;
    spec.materialize = !final_round || cfg_.materialize_final;

    cyclo::CycloJoin join(cluster, spec);
    const cyclo::RunReport run = join.run_fragments(std::move(frags));

    RoundReport round;
    round.relation = planned.relation;
    round.intermediate_rotated = planned.intermediate_rotates;
    round.band = planned.band;
    round.matches = run.matches;
    round.checksum = run.checksum;
    round.rotation_bytes = run.bytes_on_wire;
    round.setup_wall = run.setup_wall;
    round.join_wall = run.join_wall;
    round.recovered = run.fault.recovered;
    round.degraded = run.fault.degraded;

    inter_name = "(" + inter_name + " ⋈ " + graph.name(planned.relation) + ")";
    if (spec.materialize) {
      // Project each host's output partition in place: the intermediate
      // side's payload accumulates left-deep, the shared key stays the key.
      inter.clear();
      inter.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        rel::Relation frag(inter_name);
        const auto out = run.host_results[static_cast<std::size_t>(i)].output();
        frag.reserve(out.size());
        for (const join::OutTuple& t : out) {
          frag.push_back(rel::Tuple{
              t.key, planned.intermediate_rotates ? t.r_payload : t.s_payload});
        }
        inter.push_back(std::move(frag));
      }
      if (!final_round) {
        const ring::RedistributeStats moved = ring::redistribute_by_key(&inter);
        round.redistribute_bytes = moved.bytes_on_wire;
      }
      round.rows_per_host.reserve(static_cast<std::size_t>(n));
      for (const rel::Relation& frag : inter) {
        round.rows_per_host.push_back(frag.rows());
      }
    }

    report.wire_bytes += round.rotation_bytes + round.redistribute_bytes;
    report.rounds.push_back(std::move(round));
  }

  report.matches = report.rounds.back().matches;
  report.checksum = report.rounds.back().checksum;
  if (cfg_.materialize_final) {
    report.output = rel::PartitionedRelation(inter_name, std::move(inter));
  }
  return report;
}

}  // namespace cj::plan
