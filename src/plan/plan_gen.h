// Cost-based plan generation: left-deep join orderings over the query
// graph, chosen by dynamic programming over the src/model plan-cost model.
//
// A plan for relations {R0..Rn-1} is an order plus one cyclo-join round
// per step: round k joins the accumulated intermediate with the next
// relation, and the model decides per round which side rotates (the
// cheaper orientation of model::pick_rotation) and charges the rotation
// traffic, the build/probe compute, and — for every non-final round — the
// keyed redistribution of the round's output over the ring
// (ring/redistribute.h). Cardinalities chain through
// model::estimate_join_rows, so the cost of round k+1 is computed from
// estimates, never from measurements.
//
// best() is the classic DP over connected subsets (rdf3x's PlanGen is the
// compact exemplar, see PAPERS.md): dp[S] holds the cheapest left-deep
// plan joining exactly the relations in S, extended one connected
// relation at a time. enumerate() walks every connected left-deep order
// outright — the bench harness uses it to find the *worst* order the DP
// must beat, and tests use it to confirm the DP's minimum is the true one.
#pragma once

#include <string>
#include <vector>

#include "model/plan_cost.h"
#include "plan/query_graph.h"

namespace cj::plan {

/// One cyclo-join round of a compiled plan.
struct PlannedRound {
  int relation = -1;  ///< id of the relation this round joins in
  /// True when the accumulated intermediate is the rotating side (the
  /// newly joined relation is stationary); false for the opposite.
  bool intermediate_rotates = true;
  std::uint32_t band = 0;
  model::JoinKind kind = model::JoinKind::kHash;
  double est_out_rows = 0;  ///< estimated output cardinality of the round
  model::RoundCost cost;
};

/// A complete left-deep plan: the join order plus its per-round choices.
struct Plan {
  std::vector<int> order;            ///< relation ids; order[0] seeds round 0
  std::vector<PlannedRound> rounds;  ///< order.size() − 1 rounds
  double total_ns = 0;               ///< modeled end-to-end cost
  double wire_bytes = 0;             ///< rotation + redistribution traffic

  /// "((A ⋈ B) ⋈ C) — round 0: A rotates vs B, est 1.2e5 rows; ..."
  std::string to_string(const QueryGraph& graph) const;
};

class PlanGen {
 public:
  PlanGen(const QueryGraph& graph, model::PlanCostParams params,
          model::JoinKind equi_kind = model::JoinKind::kHash);

  /// Cheapest connected left-deep plan (DP over subsets).
  Plan best() const;

  /// Every connected left-deep order, costed, cheapest first. Exhaustive —
  /// meant for small N (tests, the worst-order ablation).
  std::vector<Plan> enumerate() const;

 private:
  const QueryGraph& graph_;
  model::PlanCostParams params_;
  model::JoinKind equi_kind_;
};

}  // namespace cj::plan
