// Plan execution: runs a compiled left-deep plan as a sequence of
// cyclo-join rounds with every intermediate staying distributed.
//
// Round k joins the accumulated intermediate with the plan's next base
// relation via CycloJoin::run_fragments — host i's inputs are exactly the
// per-host fragments it already holds, so the distribute step of a normal
// run never happens. The round's per-host output partitions are projected
// in place to the paper's (key, payload) tuple format (the payload of the
// intermediate side survives, accumulating left-deep), rebalanced by key
// over the ring itself (ring/redistribute.h — the same hop-by-hop record
// streaming the replication phase of the resilient protocol uses, see
// docs/FAULTS.md), and become round k+1's rotating or stationary
// fragments. No step concatenates an intermediate relation into a single
// process: the executor only ever moves per-host handles.
//
// Both backends run unchanged (the round is an ordinary cyclo-join run),
// and PR 6 crash recovery composes per round: a host crash during round k
// is adopted/replayed inside that round, and the recovered output
// partitions feed round k+1 like any other.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"
#include "cyclo/cyclo_join.h"
#include "plan/plan_gen.h"
#include "rel/partitioned.h"

namespace cj::plan {

struct ExecConfig {
  cyclo::ClusterConfig cluster;
  /// Join tasks per host per round (JoinSpec::join_threads).
  int join_threads = 4;
  /// Materialize the final round's distributed output partitions into
  /// PlanRunReport::output. Off = the final round only counts/checksums
  /// (the bench mode; intermediates always materialize regardless).
  bool materialize_final = true;
  /// Per-round config hook, called with the round index before the round's
  /// CycloJoin is built — tests use it to arm a fault plan for one round
  /// of a plan (mid-plan crash recovery).
  std::function<void(int round, cyclo::ClusterConfig*)> round_config;
};

/// What one executed round did (measured, not estimated).
struct RoundReport {
  int relation = -1;                 ///< relation id joined in
  bool intermediate_rotated = false;
  std::uint32_t band = 0;
  std::uint64_t matches = 0;   ///< output rows of this round
  std::uint64_t checksum = 0;  ///< order-independent pairing checksum
  /// Rotation payload bytes this round moved over the ring.
  std::uint64_t rotation_bytes = 0;
  /// Redistribution bytes (link crossings) rebalancing the output; 0 for
  /// the final round.
  std::uint64_t redistribute_bytes = 0;
  /// Output rows per host as they enter the next round (post-rebalance;
  /// the final round reports its raw per-host output). The fragment-
  /// locality signal: no entry ever holds the whole intermediate.
  std::vector<std::uint64_t> rows_per_host;
  SimDuration setup_wall = 0;
  SimDuration join_wall = 0;
  bool recovered = false;  ///< a crash in this round was exactly recovered
  bool degraded = false;   ///< a crash in this round lost rows
};

struct PlanRunReport {
  std::uint64_t matches = 0;   ///< final result cardinality
  std::uint64_t checksum = 0;  ///< final round's pairing checksum
  std::vector<RoundReport> rounds;
  /// Rotation + redistribution traffic summed over all rounds.
  std::uint64_t wire_bytes = 0;
  /// Final output as per-host partitions (set when materialize_final).
  rel::PartitionedRelation output;
};

class PlanExecutor {
 public:
  explicit PlanExecutor(ExecConfig cfg) : cfg_(std::move(cfg)) {}

  /// Runs `plan` over `inputs`, the base relations as per-host fragment
  /// handles indexed by relation id (PartitionedRelation::split or a
  /// previous plan's output). Fragment counts must match the cluster's
  /// num_hosts. Inputs are consumed (fragments move into the rounds).
  PlanRunReport execute(const Plan& plan, const QueryGraph& graph,
                        std::vector<rel::PartitionedRelation> inputs) const;

 private:
  ExecConfig cfg_;
};

}  // namespace cj::plan
