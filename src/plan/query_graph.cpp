#include "plan/query_graph.h"

#include <utility>

#include "common/assert.h"

namespace cj::plan {

int QueryGraph::add_relation(std::string name, model::PlanRelStats stats) {
  CJ_CHECK_MSG(stats.rows >= 0 && stats.distinct_keys >= 1,
               "relation stats need rows >= 0 and distinct_keys >= 1");
  CJ_CHECK_MSG(num_relations() < 16,
               "the planner enumerates up to 16 relations");
  names_.push_back(std::move(name));
  stats_.push_back(stats);
  return num_relations() - 1;
}

int QueryGraph::add_relation(std::string name, const rel::ColumnStats& stats) {
  model::PlanRelStats s;
  s.rows = static_cast<double>(stats.rows);
  s.distinct_keys = static_cast<double>(std::max<std::uint64_t>(1, stats.distinct_keys));
  return add_relation(std::move(name), s);
}

void QueryGraph::add_join(int left, int right, std::uint32_t band) {
  check_id(left);
  check_id(right);
  CJ_CHECK_MSG(left != right, "a join edge connects two distinct relations");
  edges_.push_back(JoinEdge{left, right, band});
}

const std::string& QueryGraph::name(int id) const {
  check_id(id);
  return names_[static_cast<std::size_t>(id)];
}

const model::PlanRelStats& QueryGraph::stats(int id) const {
  check_id(id);
  return stats_[static_cast<std::size_t>(id)];
}

bool QueryGraph::connected(int rel, std::uint32_t subset_mask) const {
  check_id(rel);
  for (const JoinEdge& e : edges_) {
    const int other = e.left == rel ? e.right : e.right == rel ? e.left : -1;
    if (other >= 0 && (subset_mask >> other) & 1u) return true;
  }
  return false;
}

std::uint32_t QueryGraph::band_to(int rel, std::uint32_t subset_mask) const {
  check_id(rel);
  std::uint32_t band = 0;
  bool found = false;
  for (const JoinEdge& e : edges_) {
    const int other = e.left == rel ? e.right : e.right == rel ? e.left : -1;
    if (other < 0 || !((subset_mask >> other) & 1u)) continue;
    CJ_CHECK_MSG(!found || band == e.band,
                 "edges from one relation into the join prefix must agree "
                 "on the band (a round enforces one predicate on the key)");
    band = e.band;
    found = true;
  }
  CJ_CHECK_MSG(found, "relation has no edge into the join prefix");
  return band;
}

void QueryGraph::check_id(int id) const {
  CJ_CHECK_MSG(id >= 0 && id < num_relations(), "unknown relation id");
}

}  // namespace cj::plan
