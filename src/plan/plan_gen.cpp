#include "plan/plan_gen.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/assert.h"

namespace cj::plan {
namespace {

/// Costed extension of a left-deep prefix by one relation.
struct Extension {
  PlannedRound round;
  model::PlanRelStats next_inter;  ///< stats of the extended intermediate
};

}  // namespace

PlanGen::PlanGen(const QueryGraph& graph, model::PlanCostParams params,
                 model::JoinKind equi_kind)
    : graph_(graph), params_(params), equi_kind_(equi_kind) {
  CJ_CHECK_MSG(graph.num_relations() >= 2, "a plan joins at least two relations");
}

namespace {

Extension extend(const QueryGraph& graph, const model::PlanCostParams& params,
                 model::JoinKind equi_kind, const model::PlanRelStats& inter,
                 std::uint32_t subset_mask, int rel, bool is_final) {
  Extension ext;
  ext.round.relation = rel;
  ext.round.band = graph.band_to(rel, subset_mask);
  ext.round.kind =
      ext.round.band > 0 ? model::JoinKind::kSortMerge : equi_kind;
  const model::PlanRelStats& joined = graph.stats(rel);
  ext.round.est_out_rows =
      model::estimate_join_rows(inter, joined, ext.round.band);
  ext.round.cost = model::pick_rotation(
      inter, joined, ext.round.kind, ext.round.est_out_rows,
      /*redistribute_output=*/!is_final, params,
      &ext.round.intermediate_rotates);
  ext.next_inter.rows = ext.round.est_out_rows;
  ext.next_inter.distinct_keys = model::estimate_join_distinct(inter, joined);
  return ext;
}

}  // namespace

Plan PlanGen::best() const {
  const int n = graph_.num_relations();
  const std::uint32_t full = (1u << n) - 1u;

  struct DpEntry {
    bool valid = false;
    double total_ns = 0;
    double wire_bytes = 0;
    model::PlanRelStats inter;
    std::vector<int> order;
    std::vector<PlannedRound> rounds;
  };
  std::vector<DpEntry> dp(static_cast<std::size_t>(full) + 1);

  for (int i = 0; i < n; ++i) {
    DpEntry& seed = dp[1u << i];
    seed.valid = true;
    seed.inter = graph_.stats(i);
    seed.order = {i};
  }

  // Masks ascend, and S | (1 << j) > S, so every prefix is final when read.
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    const DpEntry& cur = dp[mask];
    if (!cur.valid) continue;
    for (int j = 0; j < n; ++j) {
      if ((mask >> j) & 1u) continue;
      if (!graph_.connected(j, mask)) continue;
      const std::uint32_t next_mask = mask | (1u << j);
      const Extension ext = extend(graph_, params_, equi_kind_, cur.inter,
                                   mask, j, /*is_final=*/next_mask == full);
      const double total = cur.total_ns + ext.round.cost.total_ns;
      DpEntry& next = dp[next_mask];
      if (next.valid && total >= next.total_ns) continue;
      next.valid = true;
      next.total_ns = total;
      next.wire_bytes = cur.wire_bytes + ext.round.cost.wire_bytes();
      next.inter = ext.next_inter;
      next.order = cur.order;
      next.order.push_back(j);
      next.rounds = cur.rounds;
      next.rounds.push_back(ext.round);
    }
  }

  const DpEntry& goal = dp[full];
  CJ_CHECK_MSG(goal.valid,
               "query graph is disconnected: no left-deep order joins every "
               "relation without a cross product");
  Plan plan;
  plan.order = goal.order;
  plan.rounds = goal.rounds;
  plan.total_ns = goal.total_ns;
  plan.wire_bytes = goal.wire_bytes;
  return plan;
}

std::vector<Plan> PlanGen::enumerate() const {
  const int n = graph_.num_relations();
  CJ_CHECK_MSG(n <= 10, "exhaustive enumeration is for small N");
  const std::uint32_t full = (1u << n) - 1u;

  std::vector<Plan> plans;
  Plan partial;
  model::PlanRelStats inter;

  // DFS over left-deep prefixes; only connected extensions are explored,
  // mirroring the DP's search space exactly.
  auto dfs = [&](auto&& self, std::uint32_t mask) -> void {
    if (mask == full) {
      plans.push_back(partial);
      return;
    }
    for (int j = 0; j < n; ++j) {
      if ((mask >> j) & 1u) continue;
      if (!graph_.connected(j, mask)) continue;
      const std::uint32_t next_mask = mask | (1u << j);
      const Extension ext = extend(graph_, params_, equi_kind_, inter, mask,
                                   j, /*is_final=*/next_mask == full);
      const model::PlanRelStats saved = inter;
      inter = ext.next_inter;
      partial.order.push_back(j);
      partial.rounds.push_back(ext.round);
      partial.total_ns += ext.round.cost.total_ns;
      partial.wire_bytes += ext.round.cost.wire_bytes();
      self(self, next_mask);
      partial.total_ns -= ext.round.cost.total_ns;
      partial.wire_bytes -= ext.round.cost.wire_bytes();
      partial.rounds.pop_back();
      partial.order.pop_back();
      inter = saved;
    }
  };

  for (int i = 0; i < n; ++i) {
    inter = graph_.stats(i);
    partial.order = {i};
    partial.rounds.clear();
    partial.total_ns = 0;
    partial.wire_bytes = 0;
    dfs(dfs, 1u << i);
  }

  std::stable_sort(plans.begin(), plans.end(),
                   [](const Plan& a, const Plan& b) {
                     return a.total_ns < b.total_ns;
                   });
  return plans;
}

std::string Plan::to_string(const QueryGraph& graph) const {
  std::string shape = graph.name(order[0]);
  for (std::size_t k = 1; k < order.size(); ++k) {
    shape = "(" + shape + " ⋈ " + graph.name(order[k]) + ")";
  }
  std::string out = shape;
  for (std::size_t k = 0; k < rounds.size(); ++k) {
    const PlannedRound& r = rounds[k];
    const std::string inter_name =
        k == 0 ? graph.name(order[0]) : "intermediate";
    char line[256];
    std::snprintf(
        line, sizeof line,
        "\n  round %zu: %s rotates vs %s [%s%s], est %.3g rows, "
        "%.1f MB wire",
        k, r.intermediate_rotates ? inter_name.c_str() : graph.name(r.relation).c_str(),
        r.intermediate_rotates ? graph.name(r.relation).c_str() : inter_name.c_str(),
        r.kind == model::JoinKind::kHash ? "hash" : "sort-merge",
        r.band > 0 ? ", band" : "", r.est_out_rows,
        r.cost.wire_bytes() / 1e6);
    out += line;
  }
  return out;
}

}  // namespace cj::plan
