// Query graph: the planner's input — N relations plus the equi/band join
// predicates connecting them (paper Sec. IV-A: "the join output could
// naturally be used as input to subsequent processing in a larger query
// plan").
//
// Every predicate is over the single 4-byte join key the paper's tuple
// format carries (rel::Tuple is key + payload), so an edge (a, b, band)
// reads |a.key − b.key| <= band, with band = 0 the plain equi join. Chain
// vs star is the *topology* of declared edges: a chain declares R—S, S—T;
// a star declares fact—dim for every dimension. The planner only extends
// a left-deep prefix with relations connected to it, so cross products are
// never enumerated.
//
// Relations enter with their planner statistics (rows + distinct keys,
// from rel::collect_stats or constructed directly in tests); the graph
// itself never touches tuple data.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/plan_cost.h"
#include "rel/partitioned.h"

namespace cj::plan {

/// One join predicate |left.key − right.key| <= band (band 0 = equi).
struct JoinEdge {
  int left = 0;
  int right = 0;
  std::uint32_t band = 0;
};

class QueryGraph {
 public:
  /// Adds a relation with explicit planner stats; returns its id.
  int add_relation(std::string name, model::PlanRelStats stats);

  /// Adds a relation from measured column stats (rel::collect_stats).
  int add_relation(std::string name, const rel::ColumnStats& stats);

  /// Declares the predicate |left.key − right.key| <= band.
  void add_join(int left, int right, std::uint32_t band = 0);

  int num_relations() const { return static_cast<int>(stats_.size()); }
  const std::string& name(int id) const;
  const model::PlanRelStats& stats(int id) const;
  std::span<const JoinEdge> edges() const { return edges_; }

  /// True when `rel` has at least one declared edge into the subset
  /// (bit i of `subset_mask` = relation i is part of the prefix).
  bool connected(int rel, std::uint32_t subset_mask) const;

  /// Band of the predicate enforced when `rel` joins the subset. Multiple
  /// edges into the subset must agree on the band — a cyclo round applies
  /// exactly one band predicate to the shared key (CJ_CHECKed).
  std::uint32_t band_to(int rel, std::uint32_t subset_mask) const;

 private:
  void check_id(int id) const;

  std::vector<std::string> names_;
  std::vector<model::PlanRelStats> stats_;
  std::vector<JoinEdge> edges_;
};

}  // namespace cj::plan
