// Cyclo-join: distributed join processing on the Data Roundabout
// (paper Sec. IV). This is the library's top-level public API.
//
// One call to CycloJoin::run() simulates a full distributed execution:
//
//   1. distribute  — R and S are split evenly over the ring's hosts,
//   2. setup       — each host prepares its stationary fragment S_i (hash
//                    tables / sort) and reorganizes its rotating fragment
//                    R_i into wire-ready chunks, once (Sec. IV-D),
//   3. rotate+join — R chunks make one full revolution; every host joins
//                    every chunk against its S_i on its (virtual) cores
//                    while the roundabout moves data underneath,
//   4. collect     — per-host partial results R ⋈ S_i remain distributed;
//                    the report aggregates counts, checksums and timings.
//
// All join computation is executed for real (results are exact and
// checksummed); time, cores, NICs and wires are simulated — see DESIGN.md.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "cyclo/config.h"
#include "join/join_result.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "rel/relation.h"

namespace cj::cyclo {

/// Per-host measurements of one run.
struct HostStats {
  SimDuration setup = 0;       ///< setup-phase makespan on this host
  SimDuration join_phase = 0;  ///< join-phase makespan (includes sync)
  SimDuration sync = 0;        ///< join entity starved for data (Fig. 11)
  std::uint64_t matches = 0;
  std::uint64_t checksum = 0;
  std::uint64_t chunks_processed = 0;
  std::uint64_t bytes_sent = 0;
  /// Core-busy fraction during the join phase (Table I).
  double cpu_load_join = 0.0;
  /// Busy time by tag over the whole run ("join", "setup", "tcp-rx", ...).
  std::map<std::string, SimDuration> busy_by_tag;

  // ----- resilient-mode counters (all zero in fault-free runs) ---------
  std::uint64_t chunks_reinjected = 0;   ///< ack-timeout re-injections
  std::uint64_t chunks_recovered = 0;    ///< re-injected and later acked
  std::uint64_t corrupt_discards = 0;    ///< frames failing their checksum
  std::uint64_t stale_query_discards = 0;  ///< frames from another serving wave
  std::uint64_t duplicates_skipped = 0;  ///< re-injected copies not re-joined
  std::uint64_t send_failures = 0;       ///< sends lost to a dead neighbor
};

/// What the fault framework did to the run, and what it cost.
struct FaultReport {
  /// True when a host crashed: the result covers the surviving hosts only,
  /// i.e. exactly (R \ R_dead) joined with (S \ S_dead).
  bool degraded = false;
  std::vector<int> crashed_hosts;
  /// Rows of R / S resident on crashed hosts, excluded from the result.
  std::uint64_t lost_r_rows = 0;
  std::uint64_t lost_s_rows = 0;
  // ----- replication / exact recovery (resilience.replicate) -----------
  /// True when a crash was fully recovered from the ring-neighbor replica:
  /// the result is the exact R ⋈ S (degraded stays false, lost rows zero).
  bool recovered = false;
  /// Surviving successor that adopted the dead host's partition (-1: none).
  int adopter = -1;
  /// Replica payload bytes streamed during the replication phase (sum over
  /// hosts, first sends only).
  std::uint64_t replica_bytes = 0;
  /// Dead host's unretired chunks the adopter re-injected / re-registered
  /// from its replica log.
  std::uint64_t chunks_adopted = 0;
  /// Replica records re-sent after an ack timeout.
  std::uint64_t replicas_resent = 0;
  /// Crash-to-adoption-complete latency (replica promotion + replay setup).
  SimDuration recovery_time = 0;
  // Transient-fault accounting (sums over hosts / links).
  std::uint64_t messages_dropped = 0;    ///< injected link drops
  std::uint64_t messages_corrupted = 0;  ///< injected payload corruptions
  std::uint64_t retransmissions = 0;     ///< RDMA-level retransmits
  std::uint64_t rnr_retries = 0;         ///< receiver-not-ready backoffs
  std::uint64_t chunks_reinjected = 0;
  std::uint64_t chunks_recovered = 0;
  std::uint64_t corrupt_discards = 0;
  std::uint64_t duplicates_skipped = 0;
};

/// Per-host size of a materialized distributed output partition.
struct OutputFragment {
  std::uint64_t rows = 0;
  std::uint64_t bytes = 0;  ///< materialized output bytes (rows × out-tuple)
};

/// Aggregated result + measurements of one cyclo-join run.
struct RunReport {
  // Global makespans (max over hosts; all hosts phase-start together).
  SimDuration setup_wall = 0;
  SimDuration join_wall = 0;
  SimDuration total_wall = 0;  ///< includes transport drain/teardown

  std::uint64_t matches = 0;
  std::uint64_t checksum = 0;

  std::vector<HostStats> hosts;

  /// Payload bytes moved over the ring's data direction.
  std::uint64_t bytes_on_wire = 0;
  /// Observed throughput of the first data link during the join phase.
  double link_throughput_bps = 0.0;
  /// Mean per-host CPU load during the join phase (Table I's number).
  double cpu_load_join = 0.0;

  /// Materialized output (only when JoinSpec::materialize), per host.
  std::vector<join::JoinResult> host_results;

  /// Stable per-host output-partition sizes (one entry per host; empty
  /// unless JoinSpec::materialize). The supported way for benches and
  /// examples to size the distributed result without iterating
  /// host_results[i].output() ad hoc.
  std::vector<OutputFragment> output_fragments() const;

  /// Fault accounting; default-constructed (all zeros) in fault-free runs.
  FaultReport fault;

  /// The run's recorded trace (null unless ClusterConfig::trace.enabled).
  /// Export with trace->chrome_json() or trace->binary().
  std::shared_ptr<obs::Tracer> trace;
  /// The always-on flight recorder's bounded hop-record window (never null
  /// after a run). Stitch with obs::reconstruct_journeys, serialize with
  /// obs::blackbox_dump, or replay through obs::StragglerDetector.
  std::shared_ptr<obs::FlightRecorder> flight;
  /// Run metrics (counters/gauges/histograms) — always populated; see
  /// docs/OBSERVABILITY.md for the name catalog.
  obs::MetricsSnapshot metrics;
  /// Per-(host, phase) kernel profile (empty unless
  /// ClusterConfig::profile.enabled). Serialize with profile.to_json().
  obs::prof::KernelProfile profile;
};

/// One query riding a shared rotation (Data Cyclotron mode): its own
/// stationary relation and predicate parameters. The algorithm and
/// thread budget come from the shared JoinSpec.
struct SharedQuery {
  const rel::Relation* stationary = nullptr;
  /// Band half-width (sort-merge algorithm only; 0 = equi).
  std::uint32_t band = 0;
  /// Predicate (nested-loops algorithm only).
  std::function<bool(const rel::Tuple&, const rel::Tuple&)> predicate;
  /// Billing tag for this query's join work: core-busy time lands in the
  /// `busy.<tag>` counter (the serving layer uses "q<id>"). Empty = the
  /// default shared "join" tag, preserving solo-run accounting.
  std::string tag;
};

struct QueryResult {
  std::uint64_t matches = 0;
  std::uint64_t checksum = 0;
};

/// Pre-placed per-host inputs for one round of a multi-round plan
/// (src/plan): host i already holds rotating[i] and stationary[i] — e.g.
/// the distributed output partitions of a previous round, rebalanced by
/// ring::redistribute_by_key. Both vectors must have exactly the cluster's
/// num_hosts fragments (empty fragments are fine).
struct FragmentInputs {
  std::vector<rel::Relation> rotating;
  std::vector<rel::Relation> stationary;
};

/// Report of a shared-rotation run: the usual transport/phase measurements
/// plus one result per query.
struct SharedRunReport : RunReport {
  std::vector<QueryResult> queries;
};

/// Configured cyclo-join executor. Reusable across runs.
class CycloJoin {
 public:
  CycloJoin(ClusterConfig cluster, JoinSpec spec);

  /// Computes r ⋈ s with r rotating and s stationary. Inputs are split
  /// evenly across hosts (the paper assumes an even distribution of S).
  RunReport run(const rel::Relation& r, const rel::Relation& s);

  /// Data Cyclotron mode (the paper's ongoing-work direction, Sec. VII):
  /// ONE revolution of `rotating` serves every query concurrently — each
  /// host joins every passing chunk against all stationary fragments it
  /// hosts. Network traffic is paid once, not once per query. All queries
  /// use the spec's algorithm; band/predicate are per query.
  /// Materialization is not supported in shared mode.
  SharedRunReport run_shared(const rel::Relation& rotating,
                             const std::vector<SharedQuery>& queries);

  /// Runs ONE round on pre-placed per-host fragments instead of splitting
  /// whole relations: the distribute step is skipped and host i's inputs
  /// are exactly inputs.rotating[i] / inputs.stationary[i]. This is the
  /// multi-round entry point PlanExecutor (src/plan) uses so intermediates
  /// never gather at a coordinator. Band/predicate come from the JoinSpec
  /// (single-query rounds only); both backends are supported.
  RunReport run_fragments(FragmentInputs inputs);

  const ClusterConfig& cluster_config() const { return cluster_; }
  const JoinSpec& spec() const { return spec_; }

 private:
  ClusterConfig cluster_;
  JoinSpec spec_;
};

}  // namespace cj::cyclo
