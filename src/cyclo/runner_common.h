// Backend-independent pieces of the cyclo-join runners.
//
// The sim runner (cyclo_join.cpp) and the rt runner (runner_rt.cpp) execute
// the same logical plan — distribute fragments over hosts, build per-query
// stationary state, chunk the rotating side, join every passing chunk
// against every query — and differ only in *where* the work runs: virtual
// cores on one deterministic DES engine versus real worker threads behind
// per-host wall-clock engines. Everything in cj::cyclo::detail is the
// shared plan/work layer: plain data plus std::function closures with no
// engine affinity. Keeping a single implementation of the validation, the
// data distribution and the kernel closures is what makes the two backends
// result-identical (the rt parity tests in tests/rt_test.cpp rely on it).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "cyclo/chunk.h"
#include "cyclo/config.h"
#include "cyclo/cyclo_join.h"
#include "join/hash_join.h"
#include "join/join_result.h"
#include "join/nested_loops.h"
#include "join/sort_merge.h"
#include "rel/relation.h"
#include "ring/frame.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace cj::cyclo::detail {

/// One query's state on one host: its stationary fragment (prepared) and
/// its partial result. With a single query this is classic cyclo-join;
/// with several, one rotation feeds them all (Data Cyclotron mode).
struct QueryState {
  rel::Relation s_frag;  // released after setup (except nested loops)

  // Exactly one is populated, per algorithm.
  std::optional<join::HashJoinStationary> hash;
  std::vector<rel::Tuple> s_sorted;
  std::vector<rel::Tuple> s_raw;

  std::uint32_t band = 0;
  const std::function<bool(const rel::Tuple&, const rel::Tuple&)>* predicate =
      nullptr;

  join::JoinResult result{false};
  /// Resilient mode only: partial results keyed by the rotating chunk's
  /// origin host. A crash retracts R_dead by dropping its bucket — the
  /// reported result is exactly (R \ R_dead) ⋈ (S \ S_dead).
  std::vector<join::JoinResult> per_origin;
};

/// One host's share of the plan: its rotating fragment, its per-query
/// stationary fragments, and (after setup) its wire-ready chunk slab.
struct HostPlan {
  rel::Relation r_frag;  // released after setup
  std::vector<QueryState> queries;
  ChunkSlab slab;  // filled by the rotating-side setup closure
};

/// The validated, distributed run: what every backend executes.
struct RunPlan {
  bool resilient = false;
  int radix_bits = 0;
  std::vector<HostPlan> hosts;
  /// Row counts per host at distribution time (degraded-loss accounting;
  /// the fragments themselves are released after setup).
  std::vector<std::uint64_t> r_rows;
  std::vector<std::uint64_t> s_rows;

  std::uint64_t global_chunks() const {
    std::uint64_t global = 0;
    for (const HostPlan& host : hosts) global += host.slab.num_chunks();
    return global;
  }
};

/// Validates the (cluster, spec, queries) combination and distributes the
/// rotating and stationary relations evenly over the hosts. `queries` must
/// outlive the plan: QueryState keeps pointers to the predicates.
inline RunPlan plan_run(const ClusterConfig& cluster, const JoinSpec& spec,
                        const rel::Relation& r,
                        const std::vector<SharedQuery>& queries) {
  const int n = cluster.num_hosts;
  CJ_CHECK_MSG(!queries.empty(), "a run needs at least one query");
  if (spec.algorithm == Algorithm::kNestedLoops) {
    for (const auto& q : queries) {
      CJ_CHECK_MSG(static_cast<bool>(q.predicate),
                   "nested-loops cyclo-join needs a predicate");
    }
  }
  CJ_CHECK_MSG(!spec.materialize || queries.size() == 1,
               "materialization is only supported for single-query runs");

  RunPlan plan;
  plan.resilient = !cluster.fault.empty() && n > 1;
  if (plan.resilient) {
    CJ_CHECK_MSG(!spec.materialize,
                 "materialization is not supported under fault injection");
  }
  if (!cluster.fault.crashes.empty()) {
    CJ_CHECK_MSG(cluster.fault.crashes.size() == 1,
                 "the fault framework supports at most one host crash");
    const sim::HostCrashSpec& crash = cluster.fault.crashes.front();
    CJ_CHECK_MSG(crash.host >= 0 && crash.host < n, "crash host out of range");
    CJ_CHECK_MSG(n >= 3, "surviving a crash needs at least three hosts");
  }

  auto r_frags = rel::split_even(r, n);
  plan.hosts.resize(static_cast<std::size_t>(n));
  plan.s_rows.assign(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    HostPlan& host = plan.hosts[static_cast<std::size_t>(i)];
    host.r_frag = std::move(r_frags[static_cast<std::size_t>(i)]);
    plan.r_rows.push_back(host.r_frag.rows());
    host.queries.resize(queries.size());
  }
  std::size_t max_s_rows = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    CJ_CHECK(queries[q].stationary != nullptr);
    auto s_frags = rel::split_even(*queries[q].stationary, n);
    for (int i = 0; i < n; ++i) {
      QueryState& state = plan.hosts[static_cast<std::size_t>(i)].queries[q];
      state.s_frag = std::move(s_frags[static_cast<std::size_t>(i)]);
      state.band = queries[q].band;
      state.predicate = &queries[q].predicate;
      state.result = join::JoinResult(spec.materialize);
      if (plan.resilient) {
        state.per_origin.reserve(static_cast<std::size_t>(n));
        for (int o = 0; o < n; ++o) state.per_origin.emplace_back(false);
      }
      plan.s_rows[static_cast<std::size_t>(i)] += state.s_frag.rows();
      max_s_rows = std::max(max_s_rows, state.s_frag.rows());
    }
  }
  // Radix bits are a global agreement (every R chunk must be partitioned
  // exactly like every host's — and every query's — S_i).
  plan.radix_bits = join::choose_radix_bits(max_s_rows, spec.radix);
  return plan;
}

/// Splits [0, n) into `parts` near-even contiguous ranges.
inline std::vector<std::pair<std::size_t, std::size_t>> split_ranges(
    std::size_t n, int parts) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const auto p = static_cast<std::size_t>(std::max(1, parts));
  for (std::size_t i = 0; i < p; ++i) {
    const std::size_t begin = n * i / p;
    const std::size_t end = n * (i + 1) / p;
    if (begin != end) out.emplace_back(begin, end);
  }
  return out;
}

/// A contiguous range of one partition's tuples within a chunk: the unit of
/// probe work handed to one join thread. Probes are per-tuple, so a run may
/// be split at any point — this is what keeps all join threads busy even
/// when a chunk holds fewer partitions than the host has cores.
struct ProbeSlice {
  std::uint32_t partition_id;
  std::size_t tuple_offset;  // offset into the chunk's tuple array
  std::size_t count;
};

inline std::vector<std::vector<ProbeSlice>> split_probe_work(
    std::span<const PartitionRun> runs, int parts) {
  std::uint64_t total = 0;
  for (const auto& run : runs) total += run.count;
  std::vector<std::vector<ProbeSlice>> groups;
  if (total == 0) return groups;

  const std::uint64_t per_group = (total + static_cast<std::uint64_t>(parts) - 1) /
                                  static_cast<std::uint64_t>(parts);
  groups.emplace_back();
  std::uint64_t group_fill = 0;
  std::size_t offset = 0;
  for (const auto& run : runs) {
    std::size_t run_offset = 0;
    while (run_offset < run.count) {
      if (group_fill >= per_group) {
        groups.emplace_back();
        group_fill = 0;
      }
      const std::size_t take = std::min<std::size_t>(
          run.count - run_offset, static_cast<std::size_t>(per_group - group_fill));
      groups.back().push_back(
          ProbeSlice{run.partition_id, offset + run_offset, take});
      group_fill += take;
      run_offset += take;
    }
    offset += run.count;
  }
  return groups;
}

/// Join work is over-decomposed (kTasksPerThread work items per join
/// thread) so that one slow item — e.g. the item that first pulls an S
/// partition into cache — does not idle the other join threads at the
/// per-chunk barrier.
inline constexpr int kTasksPerThread = 4;

/// Builds host i's setup-phase closures: one per query's stationary
/// fragment plus one for the rotating slab. The caller schedules each on a
/// core (tag "setup") and stamps the slab with patch_origin() afterwards.
/// `host` must stay at a stable address until every closure has run.
inline std::vector<std::function<void()>> setup_closures(
    const JoinSpec& spec, int radix_bits, ChunkWriter writer, HostPlan* host) {
  std::vector<std::function<void()>> out;
  const join::RadixConfig radix = spec.radix;
  for (auto& query : host->queries) {
    QueryState* state = &query;
    switch (spec.algorithm) {
      case Algorithm::kHashJoin:
        out.push_back([state, radix_bits, radix] {
          state->hash = join::HashJoinStationary::build(state->s_frag.tuples(),
                                                        radix_bits, radix);
        });
        break;
      case Algorithm::kSortMergeJoin:
        out.push_back([state] {
          state->s_sorted.assign(state->s_frag.tuples().begin(),
                                 state->s_frag.tuples().end());
          join::sort_fragment(state->s_sorted);
        });
        break;
      case Algorithm::kNestedLoops:
        out.push_back([state] {
          state->s_raw.assign(state->s_frag.tuples().begin(),
                              state->s_frag.tuples().end());
        });
        break;
    }
  }

  switch (spec.algorithm) {
    case Algorithm::kHashJoin:
      out.push_back([host, writer, radix_bits, radix] {
        join::PartitionedData r_parts = join::radix_cluster(
            host->r_frag.tuples(), radix_bits, radix.bits_per_pass,
            radix.kernel);
        host->slab = writer.from_partitioned(r_parts, /*origin_host=*/0);
      });
      break;
    case Algorithm::kSortMergeJoin:
      out.push_back([host, writer] {
        std::vector<rel::Tuple> r_sorted(host->r_frag.tuples().begin(),
                                         host->r_frag.tuples().end());
        join::sort_fragment(r_sorted);
        host->slab = writer.from_sorted(r_sorted, /*origin_host=*/0);
      });
      break;
    case Algorithm::kNestedLoops:
      out.push_back([host, writer] {
        host->slab = writer.from_raw(host->r_frag.tuples(), 0);
      });
      break;
  }
  return out;
}

/// The ChunkWriter runs inside measured closures that do not know their
/// host id; stamp it afterwards (directly in the encoded headers).
inline void patch_origin(ChunkSlab& slab, int origin) {
  for (std::size_t c = 0; c < slab.num_chunks(); ++c) {
    auto bytes = slab.chunk(c);
    auto* header =
        reinterpret_cast<ChunkHeader*>(const_cast<std::byte*>(bytes.data()));
    header->origin_host = static_cast<std::uint16_t>(origin);
  }
}

/// One chunk's join work against every query on one host: per-item
/// closures writing into per-item partial results, merged into the
/// per-query sinks after all items ran. The struct must stay at a stable
/// address while the items run (closures point into `partials`).
struct ChunkJoinWork {
  // deque: references to elements stay valid while later queries append.
  std::deque<join::JoinResult> partials;
  std::vector<join::JoinResult*> sinks;  ///< parallel to partials
  std::vector<std::function<void()>> items;

  /// Call after every item completed (single-threaded with respect to the
  /// sinks — each host merges only into its own QueryStates).
  void merge_into_sinks() {
    for (std::size_t p = 0; p < partials.size(); ++p) {
      sinks[p]->merge(partials[p]);
    }
  }
};

inline void build_chunk_work(const JoinSpec& spec, int radix_bits,
                             bool resilient, HostPlan& host,
                             const ChunkView& view, ChunkJoinWork& out) {
  const int parts = spec.join_threads * kTasksPerThread;
  for (auto& query : host.queries) {
    QueryState* state = &query;
    // Resilient mode tallies per origin so a crash can retract R_dead.
    join::JoinResult* sink =
        resilient
            ? &query.per_origin[static_cast<std::size_t>(view.origin_host)]
            : &query.result;
    const std::size_t first_partial = out.partials.size();

    switch (spec.algorithm) {
      case Algorithm::kHashJoin: {
        CJ_CHECK_MSG(view.kind == ChunkKind::kPartitioned,
                     "hash cyclo-join received a non-partitioned chunk");
        CJ_CHECK_MSG(view.radix_bits == radix_bits,
                     "chunk partitioned with different radix bits");
        auto groups = split_probe_work(view.runs, parts);
        for (std::size_t g = 0; g < groups.size(); ++g) {
          out.partials.emplace_back(spec.materialize);
          out.sinks.push_back(sink);
        }
        for (std::size_t g = 0; g < groups.size(); ++g) {
          std::vector<ProbeSlice> slices = std::move(groups[g]);
          join::JoinResult* partial = &out.partials[first_partial + g];
          out.items.push_back(
              [state, view, slices = std::move(slices), partial] {
                for (const ProbeSlice& slice : slices) {
                  state->hash->probe_partition(
                      slice.partition_id,
                      view.tuples.subspan(slice.tuple_offset, slice.count),
                      *partial);
                }
              });
        }
        break;
      }
      case Algorithm::kSortMergeJoin: {
        CJ_CHECK_MSG(view.kind == ChunkKind::kSorted,
                     "sort-merge cyclo-join received an unsorted chunk");
        const auto ranges = split_ranges(view.tuples.size(), parts);
        for (std::size_t ri = 0; ri < ranges.size(); ++ri) {
          out.partials.emplace_back(spec.materialize);
          out.sinks.push_back(sink);
        }
        for (std::size_t ri = 0; ri < ranges.size(); ++ri) {
          const auto [begin, end] = ranges[ri];
          join::JoinResult* partial = &out.partials[first_partial + ri];
          const std::uint32_t band = state->band;
          out.items.push_back([state, view, begin, end, band, partial] {
            auto r_range = view.tuples.subspan(begin, end - begin);
            auto window = join::matching_window(
                state->s_sorted, r_range.front().key, r_range.back().key, band);
            join::band_merge_join(r_range, window, band, *partial);
          });
        }
        break;
      }
      case Algorithm::kNestedLoops: {
        const auto ranges = split_ranges(view.tuples.size(), parts);
        for (std::size_t ri = 0; ri < ranges.size(); ++ri) {
          out.partials.emplace_back(spec.materialize);
          out.sinks.push_back(sink);
        }
        for (std::size_t ri = 0; ri < ranges.size(); ++ri) {
          const auto [begin, end] = ranges[ri];
          join::JoinResult* partial = &out.partials[first_partial + ri];
          out.items.push_back([state, view, begin, end, partial] {
            join::nested_loops_join(view.tuples.subspan(begin, end - begin),
                                    std::span<const rel::Tuple>(state->s_raw),
                                    *state->predicate, *partial);
          });
        }
        break;
      }
    }
  }
}

/// Runs one join work item under the host's join-thread limit.
inline sim::Task<void> guarded(sim::Semaphore& slots, sim::Task<void> inner) {
  co_await slots.acquire();
  co_await std::move(inner);
  slots.release();
}

}  // namespace cj::cyclo::detail
