// Backend-independent pieces of the cyclo-join runners.
//
// The sim runner (cyclo_join.cpp) and the rt runner (runner_rt.cpp) execute
// the same logical plan — distribute fragments over hosts, build per-query
// stationary state, chunk the rotating side, join every passing chunk
// against every query — and differ only in *where* the work runs: virtual
// cores on one deterministic DES engine versus real worker threads behind
// per-host wall-clock engines. Everything in cj::cyclo::detail is the
// shared plan/work layer: plain data plus std::function closures with no
// engine affinity. Keeping a single implementation of the validation, the
// data distribution and the kernel closures is what makes the two backends
// result-identical (the rt parity tests in tests/rt_test.cpp rely on it).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "cyclo/chunk.h"
#include "cyclo/config.h"
#include "cyclo/cyclo_join.h"
#include "join/hash_join.h"
#include "join/join_result.h"
#include "join/nested_loops.h"
#include "join/sort_merge.h"
#include "rel/relation.h"
#include "ring/frame.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace cj::cyclo::detail {

/// One query's state on one host: its stationary fragment (prepared) and
/// its partial result. With a single query this is classic cyclo-join;
/// with several, one rotation feeds them all (Data Cyclotron mode).
struct QueryState {
  rel::Relation s_frag;  // released after setup (except nested loops)

  // Exactly one is populated, per algorithm.
  std::optional<join::HashJoinStationary> hash;
  std::vector<rel::Tuple> s_sorted;
  std::vector<rel::Tuple> s_raw;

  std::uint32_t band = 0;
  const std::function<bool(const rel::Tuple&, const rel::Tuple&)>* predicate =
      nullptr;
  /// Core-busy billing tag (SharedQuery::tag; empty = the shared "join"
  /// tag). Chunk work items keep pointers into this string — HostPlan's
  /// query vector is sized once at plan time and never reallocates.
  std::string tag;

  join::JoinResult result{false};
  /// Resilient mode only: partial results keyed by the rotating chunk's
  /// origin host. A crash retracts R_dead by dropping its bucket — the
  /// reported result is exactly (R \ R_dead) ⋈ (S \ S_dead).
  std::vector<join::JoinResult> per_origin;
};

/// One host's share of the plan: its rotating fragment, its per-query
/// stationary fragments, and (after setup) its wire-ready chunk slab.
struct HostPlan {
  rel::Relation r_frag;  // released after setup
  std::vector<QueryState> queries;
  ChunkSlab slab;  // filled by the rotating-side setup closure
};

/// The validated, distributed run: what every backend executes.
struct RunPlan {
  bool resilient = false;
  /// Ring-neighbor replication (exact-result crash recovery) is active:
  /// resilient mode plus the resilience.replicate knob.
  bool replicate = false;
  int radix_bits = 0;
  std::vector<HostPlan> hosts;
  /// Row counts per host at distribution time (degraded-loss accounting;
  /// the fragments themselves are released after setup).
  std::vector<std::uint64_t> r_rows;
  std::vector<std::uint64_t> s_rows;

  std::uint64_t global_chunks() const {
    std::uint64_t global = 0;
    for (const HostPlan& host : hosts) global += host.slab.num_chunks();
    return global;
  }
};

/// Validates the (cluster, spec, queries) combination and distributes the
/// rotating and stationary relations evenly over the hosts. `queries` must
/// outlive the plan: QueryState keeps pointers to the predicates.
///
/// When `frags` is non-null the distribute step is skipped entirely: host
/// i's inputs are moved out of frags->rotating[i] / frags->stationary[i]
/// (pre-placed fragments of a multi-round plan, see CycloJoin::
/// run_fragments), `r` is ignored, and the single query's `stationary`
/// pointer may be null. Everything downstream — setup closures, chunking,
/// replication, the resilient protocol — is identical.
inline RunPlan plan_run(const ClusterConfig& cluster, const JoinSpec& spec,
                        const rel::Relation& r,
                        const std::vector<SharedQuery>& queries,
                        FragmentInputs* frags = nullptr) {
  const int n = cluster.num_hosts;
  CJ_CHECK_MSG(!queries.empty(), "a run needs at least one query");
  if (frags != nullptr) {
    CJ_CHECK_MSG(queries.size() == 1,
                 "fragment-input runs are single-query rounds");
    CJ_CHECK_MSG(frags->rotating.size() == static_cast<std::size_t>(n) &&
                     frags->stationary.size() == static_cast<std::size_t>(n),
                 "fragment inputs need exactly one fragment per host");
  }
  if (spec.algorithm == Algorithm::kNestedLoops) {
    for (const auto& q : queries) {
      CJ_CHECK_MSG(static_cast<bool>(q.predicate),
                   "nested-loops cyclo-join needs a predicate");
    }
  }
  CJ_CHECK_MSG(!spec.materialize || queries.size() == 1,
               "materialization is only supported for single-query runs");

  RunPlan plan;
  plan.resilient = !cluster.fault.empty() && n > 1;
  plan.replicate = plan.resilient && cluster.node.resilience.replicate;
  // Materialization is safe in resilient mode: every add_match happens on
  // the deduplicated join path (re-injected copies carry the duplicate
  // flag and adopted joins consult the per-origin seen-sets), so the
  // materialized multiset equals exactly what the count/checksum cover —
  // exact under crash+replication, survivors-only in degraded runs. The
  // multi-round plan executor (src/plan) relies on this to keep a crashed
  // round's distributed output partitions usable downstream.
  if (!cluster.fault.crashes.empty()) {
    CJ_CHECK_MSG(cluster.fault.crashes.size() == 1,
                 "the fault framework supports at most one host crash");
    const sim::HostCrashSpec& crash = cluster.fault.crashes.front();
    CJ_CHECK_MSG(crash.host >= 0 && crash.host < n, "crash host out of range");
    CJ_CHECK_MSG(n >= 3, "surviving a crash needs at least three hosts");
  }

  auto r_frags =
      frags != nullptr ? std::move(frags->rotating) : rel::split_even(r, n);
  plan.hosts.resize(static_cast<std::size_t>(n));
  plan.s_rows.assign(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    HostPlan& host = plan.hosts[static_cast<std::size_t>(i)];
    host.r_frag = std::move(r_frags[static_cast<std::size_t>(i)]);
    plan.r_rows.push_back(host.r_frag.rows());
    host.queries.resize(queries.size());
  }
  std::size_t max_s_rows = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    CJ_CHECK(frags != nullptr || queries[q].stationary != nullptr);
    auto s_frags = frags != nullptr
                       ? std::move(frags->stationary)
                       : rel::split_even(*queries[q].stationary, n);
    for (int i = 0; i < n; ++i) {
      QueryState& state = plan.hosts[static_cast<std::size_t>(i)].queries[q];
      state.s_frag = std::move(s_frags[static_cast<std::size_t>(i)]);
      state.band = queries[q].band;
      state.predicate = &queries[q].predicate;
      state.tag = queries[q].tag;
      state.result = join::JoinResult(spec.materialize);
      if (plan.resilient) {
        state.per_origin.reserve(static_cast<std::size_t>(n));
        for (int o = 0; o < n; ++o) {
          state.per_origin.emplace_back(spec.materialize);
        }
      }
      plan.s_rows[static_cast<std::size_t>(i)] += state.s_frag.rows();
      max_s_rows = std::max(max_s_rows, state.s_frag.rows());
    }
  }
  // Radix bits are a global agreement (every R chunk must be partitioned
  // exactly like every host's — and every query's — S_i).
  plan.radix_bits = join::choose_radix_bits(max_s_rows, spec.radix);
  return plan;
}

// ----- ring-neighbor replication (exact-result crash recovery) ------------
//
// With resilience.replicate on, every host streams its crash-relevant state
// to its ring successor during a dedicated replication phase (between
// transport bring-up and the join phase, so a scheduled crash can never
// interrupt it): the stationary fragment S_i of every query, in pieces, and
// a byte-exact copy of every encoded chunk of its rotating slab. Each
// record rides one kReplica frame (checksummed, acked, re-sent on timeout)
// and is prefixed by this header.

enum class ReplicaKind : std::uint32_t { kStationary = 0, kRotating = 1 };

struct ReplicaHeader {
  std::uint32_t kind = 0;   ///< ReplicaKind
  std::uint32_t query = 0;  ///< kStationary: query index (0 otherwise)
  /// kStationary: piece index; kRotating: the chunk's slab index, which is
  /// also its ring sequence number (the injector assigns seqs in slab
  /// order) — the key the adopter uses to match the retire board and the
  /// seen-set against the replica log.
  std::uint32_t seq = 0;
  std::uint32_t count = 0;  ///< kStationary: tuples in this piece
};
static_assert(sizeof(ReplicaHeader) == 16);

/// One host's durable copy of its predecessor's crash-relevant state.
/// Filled by the node's on_replica callback (one-hop kReplica frames,
/// deduplicated at the ring layer); promoted to a live join partition by
/// the adoption step after the predecessor crashes.
struct ReplicaStore {
  int origin = -1;  ///< predecessor that streamed this state
  /// Per query: the predecessor's stationary fragment (piece order is
  /// irrelevant — the adopter re-hashes / re-sorts during promotion).
  std::vector<std::vector<rel::Tuple>> s_tuples;
  /// Byte-exact encoded chunks of the predecessor's rotating slab, keyed
  /// by slab index == ring sequence number.
  std::map<std::uint32_t, std::vector<std::byte>> r_chunks;
  std::uint64_t bytes = 0;

  void absorb(int from, std::span<const std::byte> record) {
    CJ_CHECK_MSG(record.size() >= sizeof(ReplicaHeader),
                 "truncated replica record");
    CJ_CHECK_MSG(origin == -1 || origin == from,
                 "replica records from two different predecessors");
    origin = from;
    ReplicaHeader header;
    std::memcpy(&header, record.data(), sizeof(ReplicaHeader));
    const auto body = record.subspan(sizeof(ReplicaHeader));
    bytes += record.size();
    if (header.kind == static_cast<std::uint32_t>(ReplicaKind::kStationary)) {
      if (s_tuples.size() <= header.query) s_tuples.resize(header.query + 1);
      CJ_CHECK_MSG(body.size() == header.count * sizeof(rel::Tuple),
                   "stationary replica piece size mismatch");
      auto& dst = s_tuples[header.query];
      const std::size_t old = dst.size();
      dst.resize(old + header.count);
      std::memcpy(dst.data() + old, body.data(), body.size());
    } else {
      CJ_CHECK_MSG(
          header.kind == static_cast<std::uint32_t>(ReplicaKind::kRotating),
          "unknown replica record kind");
      r_chunks[header.seq].assign(body.begin(), body.end());
    }
  }
};

/// Serializes one replica record (header + body) into owned storage — the
/// ring node sends replica payloads by reference, so records must outlive
/// replicas_drained().
inline std::vector<std::byte> make_replica_record(
    ReplicaKind kind, std::uint32_t query, std::uint32_t seq,
    std::uint32_t count, std::span<const std::byte> body) {
  std::vector<std::byte> record(sizeof(ReplicaHeader) + body.size());
  ReplicaHeader header;
  header.kind = static_cast<std::uint32_t>(kind);
  header.query = query;
  header.seq = seq;
  header.count = count;
  std::memcpy(record.data(), &header, sizeof(ReplicaHeader));
  std::memcpy(record.data() + sizeof(ReplicaHeader), body.data(), body.size());
  return record;
}

/// Builds every replica record host `host` streams to its successor: the
/// stationary fragments split into `max_record_bytes`-sized pieces, then
/// the rotating slab chunk by chunk. Call after setup (the slab must be
/// written and origin-patched) and before the stationary fragments are
/// released; the records copy everything they need.
inline std::vector<std::vector<std::byte>> build_replica_records(
    const HostPlan& host, std::size_t max_record_bytes) {
  CJ_CHECK(max_record_bytes > sizeof(ReplicaHeader) + sizeof(rel::Tuple));
  const std::size_t body_budget = max_record_bytes - sizeof(ReplicaHeader);
  const std::size_t tuples_per_piece = body_budget / sizeof(rel::Tuple);
  std::vector<std::vector<std::byte>> records;
  for (std::size_t q = 0; q < host.queries.size(); ++q) {
    const auto tuples = host.queries[q].s_frag.tuples();
    std::uint32_t piece = 0;
    for (std::size_t off = 0; off < tuples.size(); off += tuples_per_piece) {
      const std::size_t n = std::min(tuples_per_piece, tuples.size() - off);
      records.push_back(make_replica_record(
          ReplicaKind::kStationary, static_cast<std::uint32_t>(q), piece++,
          static_cast<std::uint32_t>(n),
          std::span<const std::byte>(
              reinterpret_cast<const std::byte*>(tuples.data() + off),
              n * sizeof(rel::Tuple))));
    }
  }
  for (std::size_t c = 0; c < host.slab.num_chunks(); ++c) {
    const auto chunk = host.slab.chunk(c);
    CJ_CHECK_MSG(chunk.size() <= body_budget,
                 "slab chunk exceeds the replica record budget");
    records.push_back(make_replica_record(ReplicaKind::kRotating, 0,
                                          static_cast<std::uint32_t>(c), 0,
                                          chunk));
  }
  return records;
}

/// Prepares the adopted join partition: one QueryState per query built from
/// the replica copy of the dead host's stationary fragments. The caller
/// pre-sizes `states` (band/predicate/result set) and schedules the
/// returned closures on the adopter's cores; `s_tuples` must stay at a
/// stable address until they ran (the ReplicaStore owns it).
inline std::vector<std::function<void()>> adopted_setup_closures(
    const JoinSpec& spec, int radix_bits,
    const std::vector<std::vector<rel::Tuple>>& s_tuples,
    std::vector<QueryState>* states) {
  std::vector<std::function<void()>> out;
  const join::RadixConfig radix = spec.radix;
  static const std::vector<rel::Tuple> kNoTuples;
  for (std::size_t q = 0; q < states->size(); ++q) {
    QueryState* state = &(*states)[q];
    // A query the dead host had no S rows for simply yields an empty
    // partition (replication sends no pieces for it).
    const std::vector<rel::Tuple>* tuples =
        q < s_tuples.size() ? &s_tuples[q] : &kNoTuples;
    switch (spec.algorithm) {
      case Algorithm::kHashJoin:
        out.push_back([state, tuples, radix_bits, radix] {
          state->hash = join::HashJoinStationary::build(
              std::span<const rel::Tuple>(*tuples), radix_bits, radix);
        });
        break;
      case Algorithm::kSortMergeJoin:
        out.push_back([state, tuples] {
          state->s_sorted = *tuples;
          join::sort_fragment(state->s_sorted);
        });
        break;
      case Algorithm::kNestedLoops:
        out.push_back([state, tuples] { state->s_raw = *tuples; });
        break;
    }
  }
  return out;
}

/// Splits [0, n) into `parts` near-even contiguous ranges.
inline std::vector<std::pair<std::size_t, std::size_t>> split_ranges(
    std::size_t n, int parts) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const auto p = static_cast<std::size_t>(std::max(1, parts));
  for (std::size_t i = 0; i < p; ++i) {
    const std::size_t begin = n * i / p;
    const std::size_t end = n * (i + 1) / p;
    if (begin != end) out.emplace_back(begin, end);
  }
  return out;
}

/// A contiguous range of one partition's tuples within a chunk: the unit of
/// probe work handed to one join thread. Probes are per-tuple, so a run may
/// be split at any point — this is what keeps all join threads busy even
/// when a chunk holds fewer partitions than the host has cores.
struct ProbeSlice {
  std::uint32_t partition_id;
  std::size_t tuple_offset;  // offset into the chunk's tuple array
  std::size_t count;
};

inline std::vector<std::vector<ProbeSlice>> split_probe_work(
    std::span<const PartitionRun> runs, int parts) {
  std::uint64_t total = 0;
  for (const auto& run : runs) total += run.count;
  std::vector<std::vector<ProbeSlice>> groups;
  if (total == 0) return groups;

  const std::uint64_t per_group = (total + static_cast<std::uint64_t>(parts) - 1) /
                                  static_cast<std::uint64_t>(parts);
  groups.emplace_back();
  std::uint64_t group_fill = 0;
  std::size_t offset = 0;
  for (const auto& run : runs) {
    std::size_t run_offset = 0;
    while (run_offset < run.count) {
      if (group_fill >= per_group) {
        groups.emplace_back();
        group_fill = 0;
      }
      const std::size_t take = std::min<std::size_t>(
          run.count - run_offset, static_cast<std::size_t>(per_group - group_fill));
      groups.back().push_back(
          ProbeSlice{run.partition_id, offset + run_offset, take});
      group_fill += take;
      run_offset += take;
    }
    offset += run.count;
  }
  return groups;
}

/// Join work is over-decomposed (kTasksPerThread work items per join
/// thread) so that one slow item — e.g. the item that first pulls an S
/// partition into cache — does not idle the other join threads at the
/// per-chunk barrier.
inline constexpr int kTasksPerThread = 4;

/// Builds host i's setup-phase closures: one per query's stationary
/// fragment plus one for the rotating slab. The caller schedules each on a
/// core (tag "setup") and stamps the slab with patch_origin() afterwards.
/// `host` must stay at a stable address until every closure has run.
inline std::vector<std::function<void()>> setup_closures(
    const JoinSpec& spec, int radix_bits, ChunkWriter writer, HostPlan* host) {
  std::vector<std::function<void()>> out;
  const join::RadixConfig radix = spec.radix;
  for (auto& query : host->queries) {
    QueryState* state = &query;
    switch (spec.algorithm) {
      case Algorithm::kHashJoin:
        out.push_back([state, radix_bits, radix] {
          state->hash = join::HashJoinStationary::build(state->s_frag.tuples(),
                                                        radix_bits, radix);
        });
        break;
      case Algorithm::kSortMergeJoin:
        out.push_back([state] {
          state->s_sorted.assign(state->s_frag.tuples().begin(),
                                 state->s_frag.tuples().end());
          join::sort_fragment(state->s_sorted);
        });
        break;
      case Algorithm::kNestedLoops:
        out.push_back([state] {
          state->s_raw.assign(state->s_frag.tuples().begin(),
                              state->s_frag.tuples().end());
        });
        break;
    }
  }

  switch (spec.algorithm) {
    case Algorithm::kHashJoin:
      out.push_back([host, writer, radix_bits, radix] {
        join::PartitionedData r_parts = join::radix_cluster(
            host->r_frag.tuples(), radix_bits, radix.bits_per_pass,
            radix.kernel);
        host->slab = writer.from_partitioned(r_parts, /*origin_host=*/0);
      });
      break;
    case Algorithm::kSortMergeJoin:
      out.push_back([host, writer] {
        std::vector<rel::Tuple> r_sorted(host->r_frag.tuples().begin(),
                                         host->r_frag.tuples().end());
        join::sort_fragment(r_sorted);
        host->slab = writer.from_sorted(r_sorted, /*origin_host=*/0);
      });
      break;
    case Algorithm::kNestedLoops:
      out.push_back([host, writer] {
        host->slab = writer.from_raw(host->r_frag.tuples(), 0);
      });
      break;
  }
  return out;
}

/// The ChunkWriter runs inside measured closures that do not know their
/// host id; stamp it afterwards (directly in the encoded headers).
inline void patch_origin(ChunkSlab& slab, int origin) {
  for (std::size_t c = 0; c < slab.num_chunks(); ++c) {
    auto bytes = slab.chunk(c);
    auto* header =
        reinterpret_cast<ChunkHeader*>(const_cast<std::byte*>(bytes.data()));
    header->origin_host = static_cast<std::uint16_t>(origin);
  }
}

/// One chunk's join work against every query on one host: per-item
/// closures writing into per-item partial results, merged into the
/// per-query sinks after all items ran. The struct must stay at a stable
/// address while the items run (closures point into `partials`).
struct ChunkJoinWork {
  // deque: references to elements stay valid while later queries append.
  std::deque<join::JoinResult> partials;
  std::vector<join::JoinResult*> sinks;  ///< parallel to partials
  std::vector<std::function<void()>> items;
  /// Parallel to items: the owning query's billing tag (QueryState::tag;
  /// empty = the shared "join" tag).
  std::vector<const std::string*> tags;

  /// Call after every item completed (single-threaded with respect to the
  /// sinks — each host merges only into its own QueryStates).
  void merge_into_sinks() {
    for (std::size_t p = 0; p < partials.size(); ++p) {
      sinks[p]->merge(partials[p]);
    }
  }
};

/// One chunk's join work against a single query's stationary state, written
/// into `sink`. Shared by the regular per-host path (build_chunk_work) and
/// the adopter's promoted-replica partition.
inline void build_query_chunk_work(const JoinSpec& spec, int radix_bits,
                                   QueryState& query, join::JoinResult* sink,
                                   const ChunkView& view, ChunkJoinWork& out) {
  const int parts = spec.join_threads * kTasksPerThread;
  {
    QueryState* state = &query;
    const std::size_t first_partial = out.partials.size();

    switch (spec.algorithm) {
      case Algorithm::kHashJoin: {
        CJ_CHECK_MSG(view.kind == ChunkKind::kPartitioned,
                     "hash cyclo-join received a non-partitioned chunk");
        CJ_CHECK_MSG(view.radix_bits == radix_bits,
                     "chunk partitioned with different radix bits");
        auto groups = split_probe_work(view.runs, parts);
        for (std::size_t g = 0; g < groups.size(); ++g) {
          out.partials.emplace_back(spec.materialize);
          out.sinks.push_back(sink);
        }
        for (std::size_t g = 0; g < groups.size(); ++g) {
          std::vector<ProbeSlice> slices = std::move(groups[g]);
          join::JoinResult* partial = &out.partials[first_partial + g];
          out.items.push_back(
              [state, view, slices = std::move(slices), partial] {
                for (const ProbeSlice& slice : slices) {
                  state->hash->probe_partition(
                      slice.partition_id,
                      view.tuples.subspan(slice.tuple_offset, slice.count),
                      *partial);
                }
              });
        }
        break;
      }
      case Algorithm::kSortMergeJoin: {
        CJ_CHECK_MSG(view.kind == ChunkKind::kSorted,
                     "sort-merge cyclo-join received an unsorted chunk");
        const auto ranges = split_ranges(view.tuples.size(), parts);
        for (std::size_t ri = 0; ri < ranges.size(); ++ri) {
          out.partials.emplace_back(spec.materialize);
          out.sinks.push_back(sink);
        }
        for (std::size_t ri = 0; ri < ranges.size(); ++ri) {
          const auto [begin, end] = ranges[ri];
          join::JoinResult* partial = &out.partials[first_partial + ri];
          const std::uint32_t band = state->band;
          const join::KernelConfig kernel = spec.radix.kernel;
          out.items.push_back([state, view, begin, end, band, kernel, partial] {
            auto r_range = view.tuples.subspan(begin, end - begin);
            auto window = join::matching_window(
                state->s_sorted, r_range.front().key, r_range.back().key, band);
            join::band_merge_join(r_range, window, band, *partial, kernel);
          });
        }
        break;
      }
      case Algorithm::kNestedLoops: {
        const auto ranges = split_ranges(view.tuples.size(), parts);
        for (std::size_t ri = 0; ri < ranges.size(); ++ri) {
          out.partials.emplace_back(spec.materialize);
          out.sinks.push_back(sink);
        }
        for (std::size_t ri = 0; ri < ranges.size(); ++ri) {
          const auto [begin, end] = ranges[ri];
          join::JoinResult* partial = &out.partials[first_partial + ri];
          out.items.push_back([state, view, begin, end, partial] {
            join::nested_loops_join(view.tuples.subspan(begin, end - begin),
                                    std::span<const rel::Tuple>(state->s_raw),
                                    *state->predicate, *partial);
          });
        }
        break;
      }
    }
    while (out.tags.size() < out.items.size()) out.tags.push_back(&state->tag);
  }
}

inline void build_chunk_work(const JoinSpec& spec, int radix_bits,
                             bool resilient, HostPlan& host,
                             const ChunkView& view, ChunkJoinWork& out) {
  for (auto& query : host.queries) {
    // Resilient mode tallies per origin so a crash can retract R_dead.
    join::JoinResult* sink =
        resilient
            ? &query.per_origin[static_cast<std::size_t>(view.origin_host)]
            : &query.result;
    build_query_chunk_work(spec, radix_bits, query, sink, view, out);
  }
}

/// Runs one join work item under the host's join-thread limit.
inline sim::Task<void> guarded(sim::Semaphore& slots, sim::Task<void> inner) {
  co_await slots.acquire();
  co_await std::move(inner);
  slots.release();
}

}  // namespace cj::cyclo::detail
