#include "cyclo/cluster.h"

namespace cj::cyclo {

Cluster::Cluster(sim::Engine& engine, const ClusterConfig& config)
    : engine_(engine),
      config_(config),
      fabric_(engine, config.num_hosts, config.link) {
  CJ_CHECK(config_.num_hosts >= 1);

  CJ_CHECK_MSG(config_.per_host_cpu_scale.empty() ||
                   config_.per_host_cpu_scale.size() ==
                       static_cast<std::size_t>(config_.num_hosts),
               "per_host_cpu_scale must be empty or have one entry per host");
  if (!config_.fault.empty()) {
    CJ_CHECK_MSG(config_.transport == Transport::kRdma,
                 "fault injection requires the RDMA transport");
    injector_ = std::make_unique<sim::FaultInjector>(engine, config_.fault);
    // Under faults, receiver-not-ready is a transient condition (a repair
    // can leave a message racing a re-posted buffer), not a protocol bug.
    config_.rdma_attr.rnr_retry = true;
  }
  for (int i = 0; i < config_.num_hosts; ++i) {
    auto host = std::make_unique<Host>();
    const double host_scale =
        config_.per_host_cpu_scale.empty()
            ? 1.0
            : config_.per_host_cpu_scale[static_cast<std::size_t>(i)];
    host->cores = std::make_unique<sim::CorePool>(
        engine, config_.cores_per_host, config_.context_switch_cost,
        config_.cpu_scale * host_scale);
    host->cores->set_trace_host(i);
    if (injector_ != nullptr) injector_->arm_slowdowns(i, *host->cores);
    if (config_.transport == Transport::kRdma) {
      host->device = std::make_unique<rdma::Device>(
          engine, *host->cores, config_.rdma_attr, "rnic" + std::to_string(i));
      host->device->set_trace_host(i);
    }
    hosts_.push_back(std::move(host));
  }

  if (config_.num_hosts > 1) {
    if (config_.transport == Transport::kRdma) {
      wire_rdma(engine);
    } else {
      wire_tcp(engine);
    }
  }

  ring::NodeConfig node_cfg = config_.node;
  // Over TCP the kernel's window provides the backpressure; explicit
  // credits are an RDMA necessity (paper's TCP baseline is plain send/recv).
  node_cfg.use_credits = config_.transport == Transport::kRdma;
  node_cfg.resilience.enabled = injector_ != nullptr && config_.num_hosts > 1;
  node_cfg.resilience.num_hosts = config_.num_hosts;
  for (int i = 0; i < config_.num_hosts; ++i) {
    Host& host = *hosts_[static_cast<std::size_t>(i)];
    node_cfg.resilience.host_id = i;
    node_cfg.trace_host = i;
    host.node = std::make_unique<ring::RoundaboutNode>(
        engine, *host.cores, host.in_wire.get(), host.out_wire.get(), node_cfg);
  }
}

void Cluster::wire_rdma(sim::Engine& engine) {
  const int n = config_.num_hosts;
  for (int i = 0; i < n; ++i) {
    const int succ = fabric_.successor(i);
    Host& a = *hosts_[static_cast<std::size_t>(i)];     // sends data i -> succ
    Host& b = *hosts_[static_cast<std::size_t>(succ)];  // sends credits back

    auto make_cq = [&](Host& h) -> rdma::CompletionQueue& {
      h.cqs.push_back(std::make_unique<rdma::CompletionQueue>(
          engine, h.device->attr().max_cq_entries));
      return *h.cqs.back();
    };
    rdma::CompletionQueue& a_scq = make_cq(a);
    rdma::CompletionQueue& a_rcq = make_cq(a);
    rdma::CompletionQueue& b_scq = make_cq(b);
    rdma::CompletionQueue& b_rcq = make_cq(b);

    rdma::QueuePair& qp_a = a.device->create_qp(&a_scq, &a_rcq);
    rdma::QueuePair& qp_b = b.device->create_qp(&b_scq, &b_rcq);
    // Endpoint a transmits on the data direction; b's transmissions
    // (credits) ride the reverse direction of the same duplex link.
    net::Link& data = fabric_.data_link(i);
    net::Link& credit = fabric_.control_link(succ);
    rdma::connect(qp_a, qp_b, data, credit);
    if (injector_ != nullptr) {
      // Link ids: the data direction of edge i is link i, the credit
      // direction is link n + i (fault plans usually target the data side).
      qp_a.attach_fault_injector(injector_.get(), i);
      qp_b.attach_fault_injector(injector_.get(), n + i);
    }

    a.out_wire = std::make_unique<ring::RdmaWire>(*a.device, qp_a, a_scq, a_rcq,
                                                  config_.rdma_wire);
    b.in_wire = std::make_unique<ring::RdmaWire>(*b.device, qp_b, b_scq, b_rcq,
                                                 config_.rdma_wire);
  }
}

sim::Task<void> Cluster::splice_around(int dead) {
  CJ_CHECK_MSG(config_.transport == Transport::kRdma,
               "ring repair is only implemented for the RDMA transport");
  const int n = config_.num_hosts;
  CJ_CHECK_MSG(n >= 3, "ring repair needs at least three hosts");
  const int pred = fabric_.predecessor(dead);
  const int succ = fabric_.successor(dead);
  Host& p = *hosts_[static_cast<std::size_t>(pred)];
  Host& s = *hosts_[static_cast<std::size_t>(succ)];

  auto repair = std::make_unique<RepairPlumbing>();
  repair->link = std::make_unique<net::DuplexLink>(
      engine_, config_.link,
      "repair[" + std::to_string(pred) + "->" + std::to_string(succ) + "]");

  auto make_cq = [&](Host& h) -> rdma::CompletionQueue& {
    h.cqs.push_back(std::make_unique<rdma::CompletionQueue>(
        engine_, h.device->attr().max_cq_entries));
    return *h.cqs.back();
  };
  rdma::CompletionQueue& p_scq = make_cq(p);
  rdma::CompletionQueue& p_rcq = make_cq(p);
  rdma::CompletionQueue& s_scq = make_cq(s);
  rdma::CompletionQueue& s_rcq = make_cq(s);
  rdma::QueuePair& qp_p = p.device->create_qp(&p_scq, &p_rcq);
  rdma::QueuePair& qp_s = s.device->create_qp(&s_scq, &s_rcq);
  rdma::connect(qp_p, qp_s, repair->link->forward, repair->link->backward);
  // The replacement link carries no injected faults: its fresh link ids
  // have no specs, and a flaky repair path would just re-trigger recovery.

  repair->pred_out = std::make_unique<ring::RdmaWire>(*p.device, qp_p, p_scq,
                                                      p_rcq, config_.rdma_wire);
  repair->succ_in = std::make_unique<ring::RdmaWire>(*s.device, qp_s, s_scq,
                                                     s_rcq, config_.rdma_wire);

  if (obs::Tracer* t = engine_.tracer()) {
    t->instant(engine_.now(), obs::kGlobalHost, "fault", "fault.splice", dead);
  }

  // Inbound side first: the successor reports how many receive buffers it
  // re-posted, which is exactly the predecessor's opening credit balance.
  const int credits = co_await s.node->splice_in(repair->succ_in.get());
  co_await p.node->splice_out(repair->pred_out.get(), credits);
  repairs_.push_back(std::move(repair));
}

void Cluster::wire_tcp(sim::Engine& engine) {
  const int n = config_.num_hosts;
  tcp_plumbing_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int succ = fabric_.successor(i);
    Host& a = *hosts_[static_cast<std::size_t>(i)];
    Host& b = *hosts_[static_cast<std::size_t>(succ)];

    auto& plumbing = tcp_plumbing_[static_cast<std::size_t>(i)];
    plumbing.data = std::make_unique<tcpsim::TcpConnection>(
        engine, *a.cores, *b.cores, fabric_.data_link(i), config_.tcp);
    plumbing.credit = std::make_unique<tcpsim::TcpConnection>(
        engine, *b.cores, *a.cores, fabric_.control_link(succ), config_.tcp);

    const auto posted = static_cast<std::size_t>(config_.node.num_buffers);
    a.out_wire = std::make_unique<ring::TcpWire>(engine, *plumbing.data,
                                                 *plumbing.credit, posted);
    b.in_wire = std::make_unique<ring::TcpWire>(engine, *plumbing.credit,
                                                *plumbing.data, posted);
  }
}

}  // namespace cj::cyclo
