#include "cyclo/cyclo_join.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>
#include <set>

#include "cyclo/chunk.h"
#include "cyclo/cluster.h"
#include "obs/analysis.h"
#include "join/hash_join.h"
#include "join/nested_loops.h"
#include "join/sort_merge.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/when_all.h"

namespace cj::cyclo {

namespace {

/// Reusable all-hosts rendezvous.
class Barrier {
 public:
  Barrier(sim::Engine& engine, int parties) : remaining_(parties), event_(engine) {}

  sim::Task<void> arrive_and_wait() {
    if (--remaining_ == 0) event_.set();
    co_await event_.wait();
  }

 private:
  int remaining_;
  sim::Event event_;
};

/// One query's state on one host: its stationary fragment (prepared) and
/// its partial result. With a single query this is classic cyclo-join;
/// with several, one rotation feeds them all (Data Cyclotron mode).
struct QueryState {
  rel::Relation s_frag;  // released after setup (except nested loops)

  // Exactly one is populated, per algorithm.
  std::optional<join::HashJoinStationary> hash;
  std::vector<rel::Tuple> s_sorted;
  std::vector<rel::Tuple> s_raw;

  std::uint32_t band = 0;
  const std::function<bool(const rel::Tuple&, const rel::Tuple&)>* predicate =
      nullptr;

  join::JoinResult result{false};
  /// Resilient mode only: partial results keyed by the rotating chunk's
  /// origin host. A crash retracts R_dead by dropping its bucket — the
  /// reported result is exactly (R \ R_dead) ⋈ (S \ S_dead).
  std::vector<join::JoinResult> per_origin;
};

/// Everything one simulated host owns during a run.
struct HostRun {
  rel::Relation r_frag;  // released after setup
  std::vector<QueryState> queries;

  // The prepared rotating fragment, wire-ready.
  ChunkSlab slab;

  // Join-phase concurrency limiter: at most `join_threads` join tasks run
  // at once (the work is over-decomposed for load balancing, so the task
  // count exceeds the thread count).
  std::unique_ptr<sim::Semaphore> join_slots;

  HostStats stats;
  SimDuration busy_at_join_start = 0;
  SimTime join_started_at = 0;
};

/// Splits [0, n) into `parts` near-even contiguous ranges.
std::vector<std::pair<std::size_t, std::size_t>> split_ranges(std::size_t n,
                                                              int parts) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const auto p = static_cast<std::size_t>(std::max(1, parts));
  for (std::size_t i = 0; i < p; ++i) {
    const std::size_t begin = n * i / p;
    const std::size_t end = n * (i + 1) / p;
    if (begin != end) out.emplace_back(begin, end);
  }
  return out;
}

/// A contiguous range of one partition's tuples within a chunk: the unit of
/// probe work handed to one join thread. Probes are per-tuple, so a run may
/// be split at any point — this is what keeps all join threads busy even
/// when a chunk holds fewer partitions than the host has cores.
struct ProbeSlice {
  std::uint32_t partition_id;
  std::size_t tuple_offset;  // offset into the chunk's tuple array
  std::size_t count;
};

std::vector<std::vector<ProbeSlice>> split_probe_work(
    std::span<const PartitionRun> runs, int parts) {
  std::uint64_t total = 0;
  for (const auto& run : runs) total += run.count;
  std::vector<std::vector<ProbeSlice>> groups;
  if (total == 0) return groups;

  const std::uint64_t per_group = (total + static_cast<std::uint64_t>(parts) - 1) /
                                  static_cast<std::uint64_t>(parts);
  groups.emplace_back();
  std::uint64_t group_fill = 0;
  std::size_t offset = 0;
  for (const auto& run : runs) {
    std::size_t run_offset = 0;
    while (run_offset < run.count) {
      if (group_fill >= per_group) {
        groups.emplace_back();
        group_fill = 0;
      }
      const std::size_t take = std::min<std::size_t>(
          run.count - run_offset, static_cast<std::size_t>(per_group - group_fill));
      groups.back().push_back(
          ProbeSlice{run.partition_id, offset + run_offset, take});
      group_fill += take;
      run_offset += take;
    }
    offset += run.count;
  }
  return groups;
}

class Runner {
 public:
  Runner(const ClusterConfig& cluster_cfg, const JoinSpec& spec,
         const rel::Relation& r, const std::vector<SharedQuery>& queries)
      : cluster_cfg_(cluster_cfg),
        spec_(spec),
        cluster_(engine_, cluster_cfg),
        n_(cluster_cfg.num_hosts),
        queries_(queries),  // owned copy: QueryState keeps pointers into it
        num_queries_(queries.size()),
        setup_barrier_(engine_, n_),
        start_barrier_(engine_, n_),
        join_barrier_(engine_, n_) {
    CJ_CHECK_MSG(!queries.empty(), "a run needs at least one query");
    if (spec_.algorithm == Algorithm::kNestedLoops) {
      for (const auto& q : queries) {
        CJ_CHECK_MSG(static_cast<bool>(q.predicate),
                     "nested-loops cyclo-join needs a predicate");
      }
    }
    CJ_CHECK_MSG(!spec_.materialize || queries.size() == 1,
                 "materialization is only supported for single-query runs");

    resilient_ = !cluster_cfg_.fault.empty() && n_ > 1;
    if (resilient_) {
      CJ_CHECK_MSG(!spec_.materialize,
                   "materialization is not supported under fault injection");
      retired_board_.resize(static_cast<std::size_t>(n_));
    }
    if (!cluster_cfg_.fault.crashes.empty()) {
      CJ_CHECK_MSG(cluster_cfg_.fault.crashes.size() == 1,
                   "the fault framework supports at most one host crash");
      const sim::HostCrashSpec& crash = cluster_cfg_.fault.crashes.front();
      CJ_CHECK_MSG(crash.host >= 0 && crash.host < n_,
                   "crash host out of range");
      CJ_CHECK_MSG(n_ >= 3, "surviving a crash needs at least three hosts");
    }

    // Distribute the rotating relation and every stationary relation
    // evenly over the hosts.
    auto r_frags = rel::split_even(r, n_);
    hosts_.resize(static_cast<std::size_t>(n_));
    s_rows_.assign(static_cast<std::size_t>(n_), 0);
    for (int i = 0; i < n_; ++i) {
      auto& host = hosts_[static_cast<std::size_t>(i)];
      host = std::make_unique<HostRun>();
      host->r_frag = std::move(r_frags[static_cast<std::size_t>(i)]);
      r_rows_.push_back(host->r_frag.rows());
      host->join_slots =
          std::make_unique<sim::Semaphore>(engine_, spec_.join_threads);
      host->queries.resize(queries.size());
    }
    std::size_t max_s_rows = 0;
    for (std::size_t q = 0; q < queries_.size(); ++q) {
      CJ_CHECK(queries_[q].stationary != nullptr);
      auto s_frags = rel::split_even(*queries_[q].stationary, n_);
      for (int i = 0; i < n_; ++i) {
        QueryState& state = hosts_[static_cast<std::size_t>(i)]->queries[q];
        state.s_frag = std::move(s_frags[static_cast<std::size_t>(i)]);
        state.band = queries_[q].band;  // run() copies spec_.band here
        state.predicate = &queries_[q].predicate;
        state.result = join::JoinResult(spec_.materialize);
        if (resilient_) {
          state.per_origin.reserve(static_cast<std::size_t>(n_));
          for (int o = 0; o < n_; ++o) state.per_origin.emplace_back(false);
        }
        s_rows_[static_cast<std::size_t>(i)] += state.s_frag.rows();
        max_s_rows = std::max(max_s_rows, state.s_frag.rows());
      }
    }
    // Radix bits are a global agreement (every R chunk must be partitioned
    // exactly like every host's — and every query's — S_i).
    radix_bits_ = join::choose_radix_bits(max_s_rows, spec_.radix);
  }

  SharedRunReport execute() {
    if (cluster_cfg_.trace.enabled) {
      tracer_ = std::make_shared<obs::Tracer>();
      engine_.set_tracer(tracer_.get());
    }
    if (cluster_cfg_.profile.enabled) {
      profiler_ = std::make_unique<obs::prof::KernelProfiler>();
    }
    inject_times_.resize(static_cast<std::size_t>(n_));
    if (resilient_) {
      // The termination detector listens on every origin's retire acks; it
      // must be installed before any node starts.
      for (int i = 0; i < n_; ++i) {
        cluster_.node(i).set_on_ack([this] { maybe_finish(); });
      }
      for (const sim::HostCrashSpec& crash : cluster_cfg_.fault.crashes) {
        engine_.spawn(crash_watcher(crash),
                      "crash-watcher" + std::to_string(crash.host));
      }
    }
    for (int i = 0; i < n_; ++i) {
      engine_.spawn(host_process(i), "host" + std::to_string(i));
    }
    engine_.run();
    engine_.check_all_complete();
    return build_report();
  }

 private:
  sim::Task<void> host_process(int i) {
    HostRun& host = *hosts_[static_cast<std::size_t>(i)];
    sim::CorePool& cores = cluster_.cores(i);
    ring::RoundaboutNode& node = cluster_.node(i);

    // ---- setup phase -------------------------------------------------
    const SimTime setup_start = engine_.now();
    if (obs::Tracer* t = engine_.tracer()) t->begin(setup_start, i, "phase", "setup");
    co_await run_setup(i);
    flush_profile();
    if (obs::Tracer* t = engine_.tracer()) t->end(engine_.now(), i, "phase");
    host.stats.setup = engine_.now() - setup_start;
    host.r_frag = rel::Relation();  // originals no longer needed
    if (spec_.algorithm != Algorithm::kNestedLoops) {
      for (auto& query : host.queries) query.s_frag = rel::Relation();
    }

    co_await setup_barrier_.arrive_and_wait();

    // ---- transport bring-up -------------------------------------------
    // Counts are known only now (chunking is data-dependent).
    {
      std::vector<std::span<std::byte>> slabs;
      ring::NodeCounts counts;
      if (n_ > 1) {
        slabs.push_back(host.slab.slab());
        counts = counts_for(i);
      }
      const Status started = co_await node.start(counts, std::move(slabs));
      CJ_CHECK_MSG(started.is_ok(), started.to_string().c_str());
    }
    co_await start_barrier_.arrive_and_wait();
    if (resilient_) join_phase_started_.set();

    // ---- join phase ----------------------------------------------------
    host.join_started_at = engine_.now();
    host.busy_at_join_start = cores.busy_total();
    if (obs::Tracer* t = engine_.tracer()) {
      t->begin(host.join_started_at, i, "phase", "join");
    }

    if (n_ > 1 && host.slab.num_chunks() > 0) {
      engine_.spawn(injector(i), "injector" + std::to_string(i));
    }

    // Local chunks first (they are resident), then arrivals in ring order.
    for (std::size_t c = 0; c < host.slab.num_chunks(); ++c) {
      if (resilient_ && node.stopped()) break;  // this host died mid-run
      co_await join_chunk(i, decode_chunk(host.slab.chunk(c)));
    }
    if (resilient_) {
      // Dynamic termination: pull chunks until the retire-board detector
      // (or this host's own crash) delivers a stop chunk. An all-empty run
      // produces no acks, so kick the detector once here.
      maybe_finish();
      while (true) {
        ring::InboundChunk inbound = co_await node.next_chunk();
        if (inbound.stop) break;
        const ChunkView view = decode_chunk(inbound.payload);
        const int origin = inbound.origin;
        const std::uint32_t seq = inbound.seq;
        const bool origin_dead = crashed_.count(origin) != 0;
        if (!inbound.duplicate && !origin_dead) co_await join_chunk(i, view);
        if (origin_dead) {
          // A dead origin can neither take an ack nor re-inject; retire its
          // chunk quietly at the first surviving host that notices.
          node.retire(inbound, /*send_ack=*/false);
        } else if (surviving_successor(i) == origin) {
          node.retire(inbound);  // full revolution completed
          note_retired(origin, seq);
        } else {
          node.forward(inbound);
        }
      }
    } else {
      const std::uint64_t arrivals =
          n_ > 1 ? global_chunks() - host.slab.num_chunks() : 0;
      for (std::uint64_t k = 0; k < arrivals; ++k) {
        ring::InboundChunk inbound = co_await node.next_chunk();
        const ChunkView view = decode_chunk(inbound.payload);
        co_await join_chunk(i, view);
        if (cluster_.fabric().successor(i) == view.origin_host) {
          record_revolution(view.origin_host);
          node.retire(inbound);  // full revolution completed
        } else {
          node.forward(inbound);
        }
      }
    }

    const SimTime join_end = engine_.now();
    if (obs::Tracer* t = engine_.tracer()) t->end(join_end, i, "phase");
    host.stats.join_phase = join_end - host.join_started_at;
    host.stats.sync = node.sync_time();
    host.stats.cpu_load_join =
        cores.utilization(host.busy_at_join_start, host.stats.join_phase);

    co_await join_barrier_.arrive_and_wait();
    co_await node.drain();

    if (resilient_) {
      // A crashed host contributes nothing; surviving hosts count only the
      // surviving origins' buckets (dead R fragments are retracted).
      if (crashed_.count(i) == 0) {
        for (const auto& query : host.queries) {
          for (int o = 0; o < n_; ++o) {
            if (crashed_.count(o) != 0) continue;
            const auto& partial = query.per_origin[static_cast<std::size_t>(o)];
            host.stats.matches += partial.matches();
            host.stats.checksum += partial.checksum();
          }
        }
      }
    } else {
      for (const auto& query : host.queries) {
        host.stats.matches += query.result.matches();
        host.stats.checksum += query.result.checksum();
      }
    }
    host.stats.bytes_sent = node.bytes_sent();
    host.stats.busy_by_tag = cores.busy_by_tag();
    host.stats.chunks_reinjected = node.chunks_reinjected();
    host.stats.chunks_recovered = node.chunks_recovered();
    host.stats.corrupt_discards = node.chunks_discarded_corrupt();
    host.stats.duplicates_skipped = node.duplicates_skipped();
    host.stats.send_failures = node.send_failures();
  }

  sim::Task<void> injector(int i) {
    HostRun& host = *hosts_[static_cast<std::size_t>(i)];
    ring::RoundaboutNode& node = cluster_.node(i);
    for (std::size_t c = 0; c < host.slab.num_chunks(); ++c) {
      if (resilient_ && node.stopped()) break;  // this host died
      co_await node.send_local(host.slab.chunk(c));
      // send_local resumes us synchronously once the chunk is queued, so
      // this timestamp is the chunk's true injection time. The retire side
      // pops the front entry: the ring preserves per-origin order.
      if (!resilient_) {
        inject_times_[static_cast<std::size_t>(i)].push_back(engine_.now());
      }
    }
  }

  /// A chunk from `origin` just completed its revolution at pred(origin):
  /// sample the revolution makespan (non-resilient runs only — re-injection
  /// makes the pairing ambiguous under faults).
  void record_revolution(int origin) {
    auto& pending = inject_times_[static_cast<std::size_t>(origin)];
    if (pending.empty()) return;
    metrics_.record("revolution_ns", engine_.now() - pending.front());
    pending.pop_front();
  }

  // Wraps a measured closure so that kernel regions inside it attribute
  // their counter deltas to host i. When profiling is off the wrapper costs
  // one null test; the counter reads it enables when ON run inside the
  // measured region and perturb the virtual timings (ProfileConfig docs).
  template <typename Fn>
  auto profiled(int i, Fn fn) {
    return [this, i, fn = std::move(fn)] {
      obs::prof::ScopedContext ctx(profiler_.get(), i, "core");
      fn();
    };
  }

  // Streams the profile's changed counter tracks into the trace at the
  // current virtual time. Must be called from simulation code, never from
  // inside a measured closure (the flush itself is not kernel work).
  void flush_profile() {
    if (profiler_ != nullptr && tracer_ != nullptr) {
      profiler_->flush_to_tracer(*tracer_, engine_.now());
    }
  }

  // Prepares every query's stationary state plus the rotating slab on host
  // i's cores. One setup task per stationary fragment, one for the
  // rotating side — all compete for the host's cores like the paper's
  // parallel hash-build/sort setup.
  sim::Task<void> run_setup(int i) {
    HostRun& host = *hosts_[static_cast<std::size_t>(i)];
    sim::CorePool& cores = cluster_.cores(i);
    // Resilient frames travel in-buffer ahead of the payload; chunks must
    // leave them headroom or a full chunk would overflow the ring buffer.
    const ChunkWriter writer(cluster_cfg_.node.buffer_bytes -
                             (resilient_ ? ring::kFrameBytes : 0));

    std::vector<sim::Task<void>> tasks;
    for (auto& query : host.queries) {
      QueryState* state = &query;
      switch (spec_.algorithm) {
        case Algorithm::kHashJoin:
          tasks.push_back(cores.run(
              profiled(i,
                       [state, this] {
                         state->hash = join::HashJoinStationary::build(
                             state->s_frag.tuples(), radix_bits_, spec_.radix);
                       }),
              "setup"));
          break;
        case Algorithm::kSortMergeJoin:
          tasks.push_back(cores.run(
              profiled(i,
                       [state] {
                         state->s_sorted.assign(state->s_frag.tuples().begin(),
                                                state->s_frag.tuples().end());
                         join::sort_fragment(state->s_sorted);
                       }),
              "setup"));
          break;
        case Algorithm::kNestedLoops:
          tasks.push_back(cores.run(
              profiled(i,
                       [state] {
                         state->s_raw.assign(state->s_frag.tuples().begin(),
                                             state->s_frag.tuples().end());
                       }),
              "setup"));
          break;
      }
    }

    switch (spec_.algorithm) {
      case Algorithm::kHashJoin:
        tasks.push_back(cores.run(
            profiled(i,
                     [&host, &writer, this] {
                       join::PartitionedData r_parts = join::radix_cluster(
                           host.r_frag.tuples(), radix_bits_,
                           spec_.radix.bits_per_pass, spec_.radix.kernel);
                       host.slab =
                           writer.from_partitioned(r_parts, /*origin_host=*/0);
                     }),
            "setup"));
        break;
      case Algorithm::kSortMergeJoin:
        tasks.push_back(cores.run(
            profiled(i,
                     [&host, &writer] {
                       std::vector<rel::Tuple> r_sorted(
                           host.r_frag.tuples().begin(),
                           host.r_frag.tuples().end());
                       join::sort_fragment(r_sorted);
                       host.slab = writer.from_sorted(r_sorted, /*origin_host=*/0);
                     }),
            "setup"));
        break;
      case Algorithm::kNestedLoops:
        tasks.push_back(cores.run(
            profiled(i,
                     [&host, &writer] {
                       host.slab = writer.from_raw(host.r_frag.tuples(), 0);
                     }),
            "setup"));
        break;
    }
    co_await sim::when_all(engine_, std::move(tasks));
    patch_origin(host.slab, i);
  }

  // The ChunkWriter runs inside measured closures that do not know their
  // host id; stamp it afterwards (directly in the encoded headers).
  static void patch_origin(ChunkSlab& slab, int origin) {
    for (std::size_t c = 0; c < slab.num_chunks(); ++c) {
      auto bytes = slab.chunk(c);
      auto* header =
          reinterpret_cast<ChunkHeader*>(const_cast<std::byte*>(bytes.data()));
      header->origin_host = static_cast<std::uint16_t>(origin);
    }
  }

  std::uint64_t global_chunks() const {
    std::uint64_t global = 0;
    for (const auto& host : hosts_) global += host->slab.num_chunks();
    return global;
  }

  // With retire acks every host sends and receives exactly G messages
  // (see ring/node.h).
  ring::NodeCounts counts_for(int) const {
    const std::uint64_t g = global_chunks();
    return ring::NodeCounts{g, g};
  }

  // ----- resilient-mode termination detection & crash control ----------

  /// The next alive host downstream of i on the (possibly spliced) ring.
  int surviving_successor(int i) {
    int s = cluster_.fabric().successor(i);
    while (crashed_.count(s) != 0) s = cluster_.fabric().successor(s);
    return s;
  }

  /// Records that origin's chunk `seq` completed its revolution (retired at
  /// pred(origin)). The per-origin sets absorb duplicate re-retirements.
  void note_retired(int origin, std::uint32_t seq) {
    retired_board_[static_cast<std::size_t>(origin)].insert(seq);
    maybe_finish();
  }

  /// Every surviving origin's chunks all retired *and* all acked back — the
  /// board proves the revolutions, the outstanding count proves the acks.
  bool all_work_done() {
    for (int o = 0; o < n_; ++o) {
      if (crashed_.count(o) != 0) continue;
      const HostRun& host = *hosts_[static_cast<std::size_t>(o)];
      if (retired_board_[static_cast<std::size_t>(o)].size() <
          host.slab.num_chunks()) {
        return false;
      }
      if (cluster_.node(o).outstanding_unacked() != 0) return false;
    }
    return true;
  }

  /// Termination detector: runs on every retire and every ack. Deferred
  /// while a ring repair is splicing (stopping a node mid-splice would
  /// strand the repair handshake).
  void maybe_finish() {
    if (!resilient_ || finished_ || repairing_ || !all_work_done()) return;
    finished_ = true;
    for (int i = 0; i < n_; ++i) {
      if (crashed_.count(i) == 0) cluster_.node(i).request_stop();
    }
  }

  sim::Task<void> crash_watcher(sim::HostCrashSpec spec) {
    co_await engine_.sleep(spec.at);
    // A crash during setup degenerates to a shorter ring from the start;
    // the interesting (and supported) case is a crash of a live ring.
    co_await join_phase_started_.wait();
    if (finished_) co_return;  // the run beat the crash to the finish line
    repairing_ = true;
    crashed_.insert(spec.host);
    cluster_.node(spec.host).die();
    cluster_.injector()->mark_crashed(spec.host);
    co_await cluster_.splice_around(spec.host);
    repairing_ = false;
    // The crash may itself complete the run (the dead host's unfinished
    // work no longer counts).
    maybe_finish();
  }

  // Runs one join work item under the host's join-thread limit.
  static sim::Task<void> guarded(sim::Semaphore& slots, sim::Task<void> inner) {
    co_await slots.acquire();
    co_await std::move(inner);
    slots.release();
  }

  // Joins one chunk against every query's stationary state on host i using
  // up to spec_.join_threads virtual cores. The chunk is over-decomposed
  // (kTasksPerThread work items per thread) so that one slow item — e.g.
  // the item that first pulls an S partition into cache — does not idle
  // the other join threads at the per-chunk barrier.
  static constexpr int kTasksPerThread = 4;

  sim::Task<void> join_chunk(int i, ChunkView view) {
    HostRun& host = *hosts_[static_cast<std::size_t>(i)];
    sim::CorePool& cores = cluster_.cores(i);
    ++host.stats.chunks_processed;
    probe_tuples_ += view.tuples.size() * host.queries.size();

    // deque: references to elements stay valid while later queries append.
    std::deque<join::JoinResult> partials;
    std::vector<join::JoinResult*> partial_sink;
    std::vector<sim::Task<void>> tasks;
    const int parts = spec_.join_threads * kTasksPerThread;

    for (auto& query : host.queries) {
      QueryState* state = &query;
      // Resilient mode tallies per origin so a crash can retract R_dead.
      join::JoinResult* sink =
          resilient_
              ? &query.per_origin[static_cast<std::size_t>(view.origin_host)]
              : &query.result;
      const std::size_t first_partial = partials.size();

      switch (spec_.algorithm) {
        case Algorithm::kHashJoin: {
          CJ_CHECK_MSG(view.kind == ChunkKind::kPartitioned,
                       "hash cyclo-join received a non-partitioned chunk");
          CJ_CHECK_MSG(view.radix_bits == radix_bits_,
                       "chunk partitioned with different radix bits");
          auto groups = split_probe_work(view.runs, parts);
          for (std::size_t g = 0; g < groups.size(); ++g) {
            partials.emplace_back(spec_.materialize);
            partial_sink.push_back(sink);
          }
          for (std::size_t g = 0; g < groups.size(); ++g) {
            std::vector<ProbeSlice> slices = std::move(groups[g]);
            join::JoinResult* out = &partials[first_partial + g];
            tasks.push_back(guarded(
                *host.join_slots,
                cores.run(
                    profiled(i,
                             [state, view, slices = std::move(slices), out] {
                               for (const ProbeSlice& slice : slices) {
                                 state->hash->probe_partition(
                                     slice.partition_id,
                                     view.tuples.subspan(slice.tuple_offset,
                                                         slice.count),
                                     *out);
                               }
                             }),
                    "join")));
          }
          break;
        }
        case Algorithm::kSortMergeJoin: {
          CJ_CHECK_MSG(view.kind == ChunkKind::kSorted,
                       "sort-merge cyclo-join received an unsorted chunk");
          const auto ranges = split_ranges(view.tuples.size(), parts);
          for (std::size_t ri = 0; ri < ranges.size(); ++ri) {
            partials.emplace_back(spec_.materialize);
            partial_sink.push_back(sink);
          }
          for (std::size_t ri = 0; ri < ranges.size(); ++ri) {
            const auto [begin, end] = ranges[ri];
            join::JoinResult* out = &partials[first_partial + ri];
            const std::uint32_t band = state->band;
            tasks.push_back(guarded(
                *host.join_slots,
                cores.run(
                    profiled(i,
                             [state, view, begin, end, band, out] {
                               auto r_range =
                                   view.tuples.subspan(begin, end - begin);
                               auto window = join::matching_window(
                                   state->s_sorted, r_range.front().key,
                                   r_range.back().key, band);
                               join::band_merge_join(r_range, window, band, *out);
                             }),
                    "join")));
          }
          break;
        }
        case Algorithm::kNestedLoops: {
          const auto ranges = split_ranges(view.tuples.size(), parts);
          for (std::size_t ri = 0; ri < ranges.size(); ++ri) {
            partials.emplace_back(spec_.materialize);
            partial_sink.push_back(sink);
          }
          for (std::size_t ri = 0; ri < ranges.size(); ++ri) {
            const auto [begin, end] = ranges[ri];
            join::JoinResult* out = &partials[first_partial + ri];
            tasks.push_back(guarded(
                *host.join_slots,
                cores.run(
                    profiled(i,
                             [state, view, begin, end, out] {
                               join::nested_loops_join(
                                   view.tuples.subspan(begin, end - begin),
                                   std::span<const rel::Tuple>(state->s_raw),
                                   *state->predicate, *out);
                             }),
                    "join")));
          }
          break;
        }
      }
    }

    co_await sim::when_all(engine_, std::move(tasks));
    flush_profile();
    for (std::size_t p = 0; p < partials.size(); ++p) {
      partial_sink[p]->merge(partials[p]);
    }
  }

  SharedRunReport build_report() {
    SharedRunReport report;
    report.queries.resize(num_queries_);
    for (int i = 0; i < n_; ++i) {
      HostRun& host = *hosts_[static_cast<std::size_t>(i)];
      report.setup_wall = std::max(report.setup_wall, host.stats.setup);
      report.join_wall = std::max(report.join_wall, host.stats.join_phase);
      report.cpu_load_join += host.stats.cpu_load_join;
      for (std::size_t q = 0; q < num_queries_; ++q) {
        if (resilient_) {
          if (crashed_.count(i) != 0) continue;
          for (int o = 0; o < n_; ++o) {
            if (crashed_.count(o) != 0) continue;
            const auto& partial =
                host.queries[q].per_origin[static_cast<std::size_t>(o)];
            report.queries[q].matches += partial.matches();
            report.queries[q].checksum += partial.checksum();
          }
        } else {
          report.queries[q].matches += host.queries[q].result.matches();
          report.queries[q].checksum += host.queries[q].result.checksum();
        }
      }
      report.hosts.push_back(host.stats);
      if (spec_.materialize) {
        report.host_results.push_back(std::move(host.queries[0].result));
      }
    }
    for (const auto& query : report.queries) {
      report.matches += query.matches;
      report.checksum += query.checksum;
    }
    report.cpu_load_join /= n_;
    report.total_wall = engine_.now();
    report.bytes_on_wire = cluster_.fabric().total_data_bytes();
    if (n_ > 1 && report.join_wall > 0) {
      report.link_throughput_bps =
          static_cast<double>(cluster_.fabric().data_link(0).bytes_transferred()) /
          to_seconds(report.join_wall);
    }
    if (sim::FaultInjector* injector = cluster_.injector()) {
      FaultReport& fault = report.fault;
      fault.degraded = !crashed_.empty();
      fault.crashed_hosts.assign(crashed_.begin(), crashed_.end());
      for (const int dead : crashed_) {
        fault.lost_r_rows += r_rows_[static_cast<std::size_t>(dead)];
        fault.lost_s_rows += s_rows_[static_cast<std::size_t>(dead)];
      }
      fault.messages_dropped = injector->counters().messages_dropped;
      fault.messages_corrupted = injector->counters().messages_corrupted;
      for (const HostStats& stats : report.hosts) {
        fault.chunks_reinjected += stats.chunks_reinjected;
        fault.chunks_recovered += stats.chunks_recovered;
        fault.corrupt_discards += stats.corrupt_discards;
        fault.duplicates_skipped += stats.duplicates_skipped;
      }
      // Fault plans require the RDMA transport, so devices exist.
      for (int i = 0; i < n_; ++i) {
        fault.retransmissions += cluster_.device(i).total_retransmissions();
        fault.rnr_retries += cluster_.device(i).total_rnr_retries();
      }
    }
    fill_metrics(report);  // last: it reads the wire/fault fields above
    return report;
  }

  void fill_metrics(SharedRunReport& report) {
    metrics_.add_counter("bytes_on_wire",
                         static_cast<std::int64_t>(report.bytes_on_wire));
    metrics_.add_counter("chunks_injected",
                         static_cast<std::int64_t>(global_chunks()));
    metrics_.add_counter("probe_tuples",
                         static_cast<std::int64_t>(probe_tuples_));
    std::uint64_t rotated = 0;
    std::uint64_t switches = 0;
    for (int i = 0; i < n_; ++i) {
      rotated += hosts_[static_cast<std::size_t>(i)]->stats.chunks_processed;
      switches += cluster_.cores(i).context_switches();
      for (const auto& [tag, busy] :
           hosts_[static_cast<std::size_t>(i)]->stats.busy_by_tag) {
        metrics_.add_counter("busy." + tag, busy);
      }
    }
    metrics_.add_counter("chunks_rotated", static_cast<std::int64_t>(rotated));
    metrics_.add_counter("context_switches", static_cast<std::int64_t>(switches));
    metrics_.set_gauge("cpu_load_join", report.cpu_load_join);
    metrics_.set_gauge("link_throughput_bps", report.link_throughput_bps);
    if (cluster_.injector() != nullptr) {
      metrics_.add_counter(
          "messages_dropped",
          static_cast<std::int64_t>(report.fault.messages_dropped));
      metrics_.add_counter(
          "messages_corrupted",
          static_cast<std::int64_t>(report.fault.messages_corrupted));
      metrics_.add_counter(
          "retransmissions",
          static_cast<std::int64_t>(report.fault.retransmissions));
      metrics_.add_counter("rnr_retries",
                           static_cast<std::int64_t>(report.fault.rnr_retries));
    }
    if (tracer_ != nullptr) {
      for (const obs::HostOverlap& o : obs::overlap_by_host(*tracer_)) {
        metrics_.set_gauge("host" + std::to_string(o.host) + ".overlap_ratio",
                           o.ratio);
      }
      report.trace = tracer_;
    }
    if (profiler_ != nullptr) report.profile = profiler_->snapshot();
    report.metrics = metrics_.snapshot();
  }

  ClusterConfig cluster_cfg_;
  JoinSpec spec_;
  sim::Engine engine_;
  Cluster cluster_;
  int n_;
  std::vector<SharedQuery> queries_;
  std::size_t num_queries_;
  int radix_bits_ = 0;
  Barrier setup_barrier_;
  Barrier start_barrier_;
  Barrier join_barrier_;
  std::vector<std::unique_ptr<HostRun>> hosts_;

  // ----- resilient-mode state ------------------------------------------
  bool resilient_ = false;
  bool finished_ = false;   // termination detector fired
  bool repairing_ = false;  // a ring splice is in flight
  sim::Event join_phase_started_{engine_, "join-phase-started"};
  std::set<int> crashed_;
  /// Per origin: sequence numbers of its chunks that completed a revolution.
  std::vector<std::set<std::uint32_t>> retired_board_;
  /// Row counts per host at distribution time (degraded-loss accounting;
  /// the fragments themselves are released after setup).
  std::vector<std::uint64_t> r_rows_;
  std::vector<std::uint64_t> s_rows_;

  // ----- observability --------------------------------------------------
  /// Installed on the engine when cluster_cfg_.trace.enabled.
  std::shared_ptr<obs::Tracer> tracer_;
  /// Non-null when cluster_cfg_.profile.enabled. Shared by all hosts (the
  /// simulator runs every measured closure on one OS thread); attribution
  /// comes from the ScopedContext each closure installs.
  std::unique_ptr<obs::prof::KernelProfiler> profiler_;
  obs::MetricsRegistry metrics_;
  std::uint64_t probe_tuples_ = 0;
  /// Per origin host: injection times of its not-yet-retired chunks
  /// (revolution-makespan histogram; non-resilient runs only).
  std::vector<std::deque<SimTime>> inject_times_;
};

}  // namespace

CycloJoin::CycloJoin(ClusterConfig cluster, JoinSpec spec)
    : cluster_(std::move(cluster)), spec_(std::move(spec)) {}

RunReport CycloJoin::run(const rel::Relation& r, const rel::Relation& s) {
  SharedQuery query;
  query.stationary = &s;
  query.band = spec_.band;
  query.predicate = spec_.predicate;
  Runner runner(cluster_, spec_, r, {query});
  return runner.execute();
}

SharedRunReport CycloJoin::run_shared(const rel::Relation& rotating,
                                      const std::vector<SharedQuery>& queries) {
  Runner runner(cluster_, spec_, rotating, queries);
  return runner.execute();
}

}  // namespace cj::cyclo
