#include "cyclo/cyclo_join.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <set>
#include <utility>

#include "cyclo/chunk.h"
#include "cyclo/cluster.h"
#include "cyclo/runner_common.h"
#include "cyclo/runner_rt.h"
#include "obs/analysis.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/when_all.h"

namespace cj::cyclo {

namespace {

/// Reusable all-hosts rendezvous.
class Barrier {
 public:
  Barrier(sim::Engine& engine, int parties) : remaining_(parties), event_(engine) {}

  sim::Task<void> arrive_and_wait() {
    if (--remaining_ == 0) event_.set();
    co_await event_.wait();
  }

 private:
  int remaining_;
  sim::Event event_;
};

/// Everything one simulated host owns during a run beyond its share of the
/// plan (which lives in RunPlan::hosts at a stable address).
struct HostRun {
  detail::HostPlan* plan = nullptr;

  // Join-phase concurrency limiter: at most `join_threads` join tasks run
  // at once (the work is over-decomposed for load balancing, so the task
  // count exceeds the thread count).
  std::unique_ptr<sim::Semaphore> join_slots;

  HostStats stats;
  SimDuration busy_at_join_start = 0;
  SimTime join_started_at = 0;
};

class Runner {
 public:
  Runner(const ClusterConfig& cluster_cfg, const JoinSpec& spec,
         const rel::Relation& r, const std::vector<SharedQuery>& queries)
      : cluster_cfg_(cluster_cfg),
        spec_(spec),
        cluster_(engine_, cluster_cfg),
        n_(cluster_cfg.num_hosts),
        queries_(queries),  // owned copy: QueryState keeps pointers into it
        num_queries_(queries.size()),
        plan_(detail::plan_run(cluster_cfg_, spec_, r, queries_)),
        setup_barrier_(engine_, n_),
        start_barrier_(engine_, n_),
        join_barrier_(engine_, n_) {
    if (plan_.resilient) retired_board_.resize(static_cast<std::size_t>(n_));
    hosts_.resize(static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; ++i) {
      auto& host = hosts_[static_cast<std::size_t>(i)];
      host = std::make_unique<HostRun>();
      host->plan = &plan_.hosts[static_cast<std::size_t>(i)];
      host->join_slots =
          std::make_unique<sim::Semaphore>(engine_, spec_.join_threads);
    }
  }

  SharedRunReport execute() {
    if (cluster_cfg_.trace.enabled) {
      tracer_ = std::make_shared<obs::Tracer>();
      engine_.set_tracer(tracer_.get());
    }
    if (cluster_cfg_.profile.enabled) {
      profiler_ = std::make_unique<obs::prof::KernelProfiler>();
    }
    inject_times_.resize(static_cast<std::size_t>(n_));
    if (plan_.resilient) {
      // The termination detector listens on every origin's retire acks; it
      // must be installed before any node starts.
      for (int i = 0; i < n_; ++i) {
        cluster_.node(i).set_on_ack([this] { maybe_finish(); });
      }
      for (const sim::HostCrashSpec& crash : cluster_cfg_.fault.crashes) {
        engine_.spawn(crash_watcher(crash),
                      "crash-watcher" + std::to_string(crash.host));
      }
    }
    for (int i = 0; i < n_; ++i) {
      engine_.spawn(host_process(i), "host" + std::to_string(i));
    }
    engine_.run();
    engine_.check_all_complete();
    return build_report();
  }

 private:
  sim::Task<void> host_process(int i) {
    HostRun& host = *hosts_[static_cast<std::size_t>(i)];
    sim::CorePool& cores = cluster_.cores(i);
    ring::RoundaboutNode& node = cluster_.node(i);

    // ---- setup phase -------------------------------------------------
    const SimTime setup_start = engine_.now();
    if (obs::Tracer* t = engine_.tracer()) t->begin(setup_start, i, "phase", "setup");
    co_await run_setup(i);
    flush_profile();
    if (obs::Tracer* t = engine_.tracer()) t->end(engine_.now(), i, "phase");
    host.stats.setup = engine_.now() - setup_start;
    host.plan->r_frag = rel::Relation();  // originals no longer needed
    if (spec_.algorithm != Algorithm::kNestedLoops) {
      for (auto& query : host.plan->queries) query.s_frag = rel::Relation();
    }

    co_await setup_barrier_.arrive_and_wait();

    // ---- transport bring-up -------------------------------------------
    // Counts are known only now (chunking is data-dependent).
    {
      std::vector<std::span<std::byte>> slabs;
      ring::NodeCounts counts;
      if (n_ > 1) {
        slabs.push_back(host.plan->slab.slab());
        counts = counts_for(i);
      }
      const Status started = co_await node.start(counts, std::move(slabs));
      CJ_CHECK_MSG(started.is_ok(), started.to_string().c_str());
    }
    co_await start_barrier_.arrive_and_wait();
    if (plan_.resilient) join_phase_started_.set();

    // ---- join phase ----------------------------------------------------
    host.join_started_at = engine_.now();
    host.busy_at_join_start = cores.busy_total();
    if (obs::Tracer* t = engine_.tracer()) {
      t->begin(host.join_started_at, i, "phase", "join");
    }

    if (n_ > 1 && host.plan->slab.num_chunks() > 0) {
      engine_.spawn(injector(i), "injector" + std::to_string(i));
    }

    // Local chunks first (they are resident), then arrivals in ring order.
    for (std::size_t c = 0; c < host.plan->slab.num_chunks(); ++c) {
      if (plan_.resilient && node.stopped()) break;  // this host died mid-run
      co_await join_chunk(i, decode_chunk(host.plan->slab.chunk(c)));
    }
    if (plan_.resilient) {
      // Dynamic termination: pull chunks until the retire-board detector
      // (or this host's own crash) delivers a stop chunk. An all-empty run
      // produces no acks, so kick the detector once here.
      maybe_finish();
      while (true) {
        ring::InboundChunk inbound = co_await node.next_chunk();
        if (inbound.stop) break;
        const ChunkView view = decode_chunk(inbound.payload);
        const int origin = inbound.origin;
        const std::uint32_t seq = inbound.seq;
        const bool origin_dead = crashed_.count(origin) != 0;
        if (!inbound.duplicate && !origin_dead) co_await join_chunk(i, view);
        if (origin_dead) {
          // A dead origin can neither take an ack nor re-inject; retire its
          // chunk quietly at the first surviving host that notices.
          node.retire(inbound, /*send_ack=*/false);
        } else if (surviving_successor(i) == origin) {
          node.retire(inbound);  // full revolution completed
          note_retired(origin, seq);
        } else {
          node.forward(inbound);
        }
      }
    } else {
      const std::uint64_t arrivals =
          n_ > 1 ? plan_.global_chunks() - host.plan->slab.num_chunks() : 0;
      for (std::uint64_t k = 0; k < arrivals; ++k) {
        ring::InboundChunk inbound = co_await node.next_chunk();
        const ChunkView view = decode_chunk(inbound.payload);
        co_await join_chunk(i, view);
        if (cluster_.fabric().successor(i) == view.origin_host) {
          record_revolution(view.origin_host);
          node.retire(inbound);  // full revolution completed
        } else {
          node.forward(inbound);
        }
      }
    }

    const SimTime join_end = engine_.now();
    if (obs::Tracer* t = engine_.tracer()) t->end(join_end, i, "phase");
    host.stats.join_phase = join_end - host.join_started_at;
    host.stats.sync = node.sync_time();
    host.stats.cpu_load_join =
        cores.utilization(host.busy_at_join_start, host.stats.join_phase);

    co_await join_barrier_.arrive_and_wait();
    co_await node.drain();

    if (plan_.resilient) {
      // A crashed host contributes nothing; surviving hosts count only the
      // surviving origins' buckets (dead R fragments are retracted).
      if (crashed_.count(i) == 0) {
        for (const auto& query : host.plan->queries) {
          for (int o = 0; o < n_; ++o) {
            if (crashed_.count(o) != 0) continue;
            const auto& partial = query.per_origin[static_cast<std::size_t>(o)];
            host.stats.matches += partial.matches();
            host.stats.checksum += partial.checksum();
          }
        }
      }
    } else {
      for (const auto& query : host.plan->queries) {
        host.stats.matches += query.result.matches();
        host.stats.checksum += query.result.checksum();
      }
    }
    host.stats.bytes_sent = node.bytes_sent();
    host.stats.busy_by_tag = cores.busy_by_tag();
    host.stats.chunks_reinjected = node.chunks_reinjected();
    host.stats.chunks_recovered = node.chunks_recovered();
    host.stats.corrupt_discards = node.chunks_discarded_corrupt();
    host.stats.duplicates_skipped = node.duplicates_skipped();
    host.stats.send_failures = node.send_failures();
  }

  sim::Task<void> injector(int i) {
    HostRun& host = *hosts_[static_cast<std::size_t>(i)];
    ring::RoundaboutNode& node = cluster_.node(i);
    for (std::size_t c = 0; c < host.plan->slab.num_chunks(); ++c) {
      if (plan_.resilient && node.stopped()) break;  // this host died
      co_await node.send_local(host.plan->slab.chunk(c));
      // send_local resumes us synchronously once the chunk is queued, so
      // this timestamp is the chunk's true injection time. The retire side
      // pops the front entry: the ring preserves per-origin order.
      if (!plan_.resilient) {
        inject_times_[static_cast<std::size_t>(i)].push_back(engine_.now());
      }
    }
  }

  /// A chunk from `origin` just completed its revolution at pred(origin):
  /// sample the revolution makespan (non-resilient runs only — re-injection
  /// makes the pairing ambiguous under faults).
  void record_revolution(int origin) {
    auto& pending = inject_times_[static_cast<std::size_t>(origin)];
    if (pending.empty()) return;
    metrics_.record("revolution_ns", engine_.now() - pending.front());
    pending.pop_front();
  }

  // Wraps a measured closure so that kernel regions inside it attribute
  // their counter deltas to host i. When profiling is off the wrapper costs
  // one null test; the counter reads it enables when ON run inside the
  // measured region and perturb the virtual timings (ProfileConfig docs).
  template <typename Fn>
  auto profiled(int i, Fn fn) {
    return [this, i, fn = std::move(fn)] {
      obs::prof::ScopedContext ctx(profiler_.get(), i, "core");
      fn();
    };
  }

  // Streams the profile's changed counter tracks into the trace at the
  // current virtual time. Must be called from simulation code, never from
  // inside a measured closure (the flush itself is not kernel work).
  void flush_profile() {
    if (profiler_ != nullptr && tracer_ != nullptr) {
      profiler_->flush_to_tracer(*tracer_, engine_.now());
    }
  }

  // Prepares every query's stationary state plus the rotating slab on host
  // i's cores. One setup task per stationary fragment, one for the
  // rotating side — all compete for the host's cores like the paper's
  // parallel hash-build/sort setup.
  sim::Task<void> run_setup(int i) {
    HostRun& host = *hosts_[static_cast<std::size_t>(i)];
    sim::CorePool& cores = cluster_.cores(i);
    // Resilient frames travel in-buffer ahead of the payload; chunks must
    // leave them headroom or a full chunk would overflow the ring buffer.
    const ChunkWriter writer(cluster_cfg_.node.buffer_bytes -
                             (plan_.resilient ? ring::kFrameBytes : 0));

    std::vector<sim::Task<void>> tasks;
    for (auto& fn :
         detail::setup_closures(spec_, plan_.radix_bits, writer, host.plan)) {
      tasks.push_back(cores.run(profiled(i, std::move(fn)), "setup"));
    }
    co_await sim::when_all(engine_, std::move(tasks));
    detail::patch_origin(host.plan->slab, i);
  }

  // With retire acks every host sends and receives exactly G messages
  // (see ring/node.h).
  ring::NodeCounts counts_for(int) const {
    const std::uint64_t g = plan_.global_chunks();
    return ring::NodeCounts{g, g};
  }

  // ----- resilient-mode termination detection & crash control ----------

  /// The next alive host downstream of i on the (possibly spliced) ring.
  int surviving_successor(int i) {
    int s = cluster_.fabric().successor(i);
    while (crashed_.count(s) != 0) s = cluster_.fabric().successor(s);
    return s;
  }

  /// Records that origin's chunk `seq` completed its revolution (retired at
  /// pred(origin)). The per-origin sets absorb duplicate re-retirements.
  void note_retired(int origin, std::uint32_t seq) {
    retired_board_[static_cast<std::size_t>(origin)].insert(seq);
    maybe_finish();
  }

  /// Every surviving origin's chunks all retired *and* all acked back — the
  /// board proves the revolutions, the outstanding count proves the acks.
  bool all_work_done() {
    for (int o = 0; o < n_; ++o) {
      if (crashed_.count(o) != 0) continue;
      const HostRun& host = *hosts_[static_cast<std::size_t>(o)];
      if (retired_board_[static_cast<std::size_t>(o)].size() <
          host.plan->slab.num_chunks()) {
        return false;
      }
      if (cluster_.node(o).outstanding_unacked() != 0) return false;
    }
    return true;
  }

  /// Termination detector: runs on every retire and every ack. Deferred
  /// while a ring repair is splicing (stopping a node mid-splice would
  /// strand the repair handshake).
  void maybe_finish() {
    if (!plan_.resilient || finished_ || repairing_ || !all_work_done()) return;
    finished_ = true;
    for (int i = 0; i < n_; ++i) {
      if (crashed_.count(i) == 0) cluster_.node(i).request_stop();
    }
  }

  sim::Task<void> crash_watcher(sim::HostCrashSpec spec) {
    co_await engine_.sleep(spec.at);
    // A crash during setup degenerates to a shorter ring from the start;
    // the interesting (and supported) case is a crash of a live ring.
    co_await join_phase_started_.wait();
    if (finished_) co_return;  // the run beat the crash to the finish line
    repairing_ = true;
    crashed_.insert(spec.host);
    cluster_.node(spec.host).die();
    cluster_.injector()->mark_crashed(spec.host);
    co_await cluster_.splice_around(spec.host);
    repairing_ = false;
    // The crash may itself complete the run (the dead host's unfinished
    // work no longer counts).
    maybe_finish();
  }

  // Joins one chunk against every query's stationary state on host i using
  // up to spec_.join_threads virtual cores (work items over-decomposed per
  // detail::kTasksPerThread).
  sim::Task<void> join_chunk(int i, ChunkView view) {
    HostRun& host = *hosts_[static_cast<std::size_t>(i)];
    sim::CorePool& cores = cluster_.cores(i);
    ++host.stats.chunks_processed;
    probe_tuples_ += view.tuples.size() * host.plan->queries.size();

    detail::ChunkJoinWork work;
    detail::build_chunk_work(spec_, plan_.radix_bits, plan_.resilient,
                             *host.plan, view, work);
    std::vector<sim::Task<void>> tasks;
    for (auto& item : work.items) {
      tasks.push_back(detail::guarded(
          *host.join_slots, cores.run(profiled(i, std::move(item)), "join")));
    }
    co_await sim::when_all(engine_, std::move(tasks));
    flush_profile();
    work.merge_into_sinks();
  }

  SharedRunReport build_report() {
    SharedRunReport report;
    report.queries.resize(num_queries_);
    for (int i = 0; i < n_; ++i) {
      HostRun& host = *hosts_[static_cast<std::size_t>(i)];
      report.setup_wall = std::max(report.setup_wall, host.stats.setup);
      report.join_wall = std::max(report.join_wall, host.stats.join_phase);
      report.cpu_load_join += host.stats.cpu_load_join;
      for (std::size_t q = 0; q < num_queries_; ++q) {
        if (plan_.resilient) {
          if (crashed_.count(i) != 0) continue;
          for (int o = 0; o < n_; ++o) {
            if (crashed_.count(o) != 0) continue;
            const auto& partial =
                host.plan->queries[q].per_origin[static_cast<std::size_t>(o)];
            report.queries[q].matches += partial.matches();
            report.queries[q].checksum += partial.checksum();
          }
        } else {
          report.queries[q].matches += host.plan->queries[q].result.matches();
          report.queries[q].checksum += host.plan->queries[q].result.checksum();
        }
      }
      report.hosts.push_back(host.stats);
      if (spec_.materialize) {
        report.host_results.push_back(std::move(host.plan->queries[0].result));
      }
    }
    for (const auto& query : report.queries) {
      report.matches += query.matches;
      report.checksum += query.checksum;
    }
    report.cpu_load_join /= n_;
    report.total_wall = engine_.now();
    report.bytes_on_wire = cluster_.fabric().total_data_bytes();
    if (n_ > 1 && report.join_wall > 0) {
      report.link_throughput_bps =
          static_cast<double>(cluster_.fabric().data_link(0).bytes_transferred()) /
          to_seconds(report.join_wall);
    }
    if (sim::FaultInjector* injector = cluster_.injector()) {
      FaultReport& fault = report.fault;
      fault.degraded = !crashed_.empty();
      fault.crashed_hosts.assign(crashed_.begin(), crashed_.end());
      for (const int dead : crashed_) {
        fault.lost_r_rows += plan_.r_rows[static_cast<std::size_t>(dead)];
        fault.lost_s_rows += plan_.s_rows[static_cast<std::size_t>(dead)];
      }
      fault.messages_dropped = injector->counters().messages_dropped;
      fault.messages_corrupted = injector->counters().messages_corrupted;
      for (const HostStats& stats : report.hosts) {
        fault.chunks_reinjected += stats.chunks_reinjected;
        fault.chunks_recovered += stats.chunks_recovered;
        fault.corrupt_discards += stats.corrupt_discards;
        fault.duplicates_skipped += stats.duplicates_skipped;
      }
      // Fault plans require the RDMA transport, so devices exist.
      for (int i = 0; i < n_; ++i) {
        fault.retransmissions += cluster_.device(i).total_retransmissions();
        fault.rnr_retries += cluster_.device(i).total_rnr_retries();
      }
    }
    fill_metrics(report);  // last: it reads the wire/fault fields above
    return report;
  }

  void fill_metrics(SharedRunReport& report) {
    metrics_.add_counter("bytes_on_wire",
                         static_cast<std::int64_t>(report.bytes_on_wire));
    metrics_.add_counter("chunks_injected",
                         static_cast<std::int64_t>(plan_.global_chunks()));
    metrics_.add_counter("probe_tuples",
                         static_cast<std::int64_t>(probe_tuples_));
    std::uint64_t rotated = 0;
    std::uint64_t switches = 0;
    for (int i = 0; i < n_; ++i) {
      rotated += hosts_[static_cast<std::size_t>(i)]->stats.chunks_processed;
      switches += cluster_.cores(i).context_switches();
      for (const auto& [tag, busy] :
           hosts_[static_cast<std::size_t>(i)]->stats.busy_by_tag) {
        metrics_.add_counter("busy." + tag, busy);
      }
    }
    metrics_.add_counter("chunks_rotated", static_cast<std::int64_t>(rotated));
    metrics_.add_counter("context_switches", static_cast<std::int64_t>(switches));
    metrics_.set_gauge("cpu_load_join", report.cpu_load_join);
    metrics_.set_gauge("link_throughput_bps", report.link_throughput_bps);
    if (cluster_.injector() != nullptr) {
      metrics_.add_counter(
          "messages_dropped",
          static_cast<std::int64_t>(report.fault.messages_dropped));
      metrics_.add_counter(
          "messages_corrupted",
          static_cast<std::int64_t>(report.fault.messages_corrupted));
      metrics_.add_counter(
          "retransmissions",
          static_cast<std::int64_t>(report.fault.retransmissions));
      metrics_.add_counter("rnr_retries",
                           static_cast<std::int64_t>(report.fault.rnr_retries));
    }
    if (tracer_ != nullptr) {
      for (const obs::HostOverlap& o : obs::overlap_by_host(*tracer_)) {
        metrics_.set_gauge("host" + std::to_string(o.host) + ".overlap_ratio",
                           o.ratio);
      }
      report.trace = tracer_;
    }
    if (profiler_ != nullptr) report.profile = profiler_->snapshot();
    report.metrics = metrics_.snapshot();
  }

  ClusterConfig cluster_cfg_;
  JoinSpec spec_;
  sim::Engine engine_;
  Cluster cluster_;
  int n_;
  std::vector<SharedQuery> queries_;
  std::size_t num_queries_;
  detail::RunPlan plan_;
  Barrier setup_barrier_;
  Barrier start_barrier_;
  Barrier join_barrier_;
  std::vector<std::unique_ptr<HostRun>> hosts_;

  // ----- resilient-mode state ------------------------------------------
  bool finished_ = false;   // termination detector fired
  bool repairing_ = false;  // a ring splice is in flight
  sim::Event join_phase_started_{engine_, "join-phase-started"};
  std::set<int> crashed_;
  /// Per origin: sequence numbers of its chunks that completed a revolution.
  std::vector<std::set<std::uint32_t>> retired_board_;

  // ----- observability --------------------------------------------------
  /// Installed on the engine when cluster_cfg_.trace.enabled.
  std::shared_ptr<obs::Tracer> tracer_;
  /// Non-null when cluster_cfg_.profile.enabled. Shared by all hosts (the
  /// simulator runs every measured closure on one OS thread); attribution
  /// comes from the ScopedContext each closure installs.
  std::unique_ptr<obs::prof::KernelProfiler> profiler_;
  obs::MetricsRegistry metrics_;
  std::uint64_t probe_tuples_ = 0;
  /// Per origin host: injection times of its not-yet-retired chunks
  /// (revolution-makespan histogram; non-resilient runs only).
  std::vector<std::deque<SimTime>> inject_times_;
};

}  // namespace

CycloJoin::CycloJoin(ClusterConfig cluster, JoinSpec spec)
    : cluster_(std::move(cluster)), spec_(std::move(spec)) {}

RunReport CycloJoin::run(const rel::Relation& r, const rel::Relation& s) {
  SharedQuery query;
  query.stationary = &s;
  query.band = spec_.band;
  query.predicate = spec_.predicate;
  if (cluster_.backend == Backend::kRt) {
    return run_rt(cluster_, spec_, r, {query});
  }
  Runner runner(cluster_, spec_, r, {query});
  return runner.execute();
}

SharedRunReport CycloJoin::run_shared(const rel::Relation& rotating,
                                      const std::vector<SharedQuery>& queries) {
  if (cluster_.backend == Backend::kRt) {
    return run_rt(cluster_, spec_, rotating, queries);
  }
  Runner runner(cluster_, spec_, rotating, queries);
  return runner.execute();
}

}  // namespace cj::cyclo
