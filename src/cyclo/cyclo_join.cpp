#include "cyclo/cyclo_join.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <set>
#include <utility>

#include "cyclo/chunk.h"
#include "cyclo/cluster.h"
#include "cyclo/runner_common.h"
#include "cyclo/runner_rt.h"
#include "obs/analysis.h"
#include "obs/flight.h"
#include "obs/sampler.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/when_all.h"

namespace cj::cyclo {

namespace {

/// Default core-busy tag for untagged join work.
const std::string kJoinTag = "join";

/// Nanosecond duration -> saturating microseconds for flight-record args.
std::uint32_t duration_us(SimDuration ns) {
  if (ns <= 0) return 0;
  const SimDuration us = ns / kMicrosecond;
  return us > 0xFFFFFFFF ? 0xFFFFFFFFu : static_cast<std::uint32_t>(us);
}

/// Reusable all-hosts rendezvous.
class Barrier {
 public:
  Barrier(sim::Engine& engine, int parties) : remaining_(parties), event_(engine) {}

  sim::Task<void> arrive_and_wait() {
    if (--remaining_ == 0) event_.set();
    co_await event_.wait();
  }

 private:
  int remaining_;
  sim::Event event_;
};

/// Everything one simulated host owns during a run beyond its share of the
/// plan (which lives in RunPlan::hosts at a stable address).
struct HostRun {
  detail::HostPlan* plan = nullptr;

  // Join-phase concurrency limiter: at most `join_threads` join tasks run
  // at once (the work is over-decomposed for load balancing, so the task
  // count exceeds the thread count).
  std::unique_ptr<sim::Semaphore> join_slots;

  HostStats stats;
  SimDuration busy_at_join_start = 0;
  SimTime join_started_at = 0;

  // ----- adoption state (resilience.replicate; installed by the crash
  // watcher on the dead host's surviving successor only) -----------------
  /// Dead origin this host adopted (-1: none).
  int adopted_origin = -1;
  /// The promoted replica partition: one state per query, `result` as sink.
  std::vector<detail::QueryState> adopted;
  /// Per origin: seqs already joined against the adopted partition. At
  /// install time each surviving origin's entry is pre-marked with the
  /// seen-set snapshot — those chunks' adopted joins arrive as replay
  /// copies, so a stale original duplicate must not double-join.
  std::vector<std::set<std::uint32_t>> adopted_seen;
  /// Set once the adopted partition is built; the join loop parks until
  /// then so no post-adoption arrival misses its adopted join.
  std::unique_ptr<sim::Event> adoption_ready;
};

class Runner {
 public:
  Runner(const ClusterConfig& cluster_cfg, const JoinSpec& spec,
         const rel::Relation& r, const std::vector<SharedQuery>& queries,
         FragmentInputs* frags = nullptr)
      : cluster_cfg_(cluster_cfg),
        spec_(spec),
        cluster_(engine_, cluster_cfg),
        n_(cluster_cfg.num_hosts),
        queries_(queries),  // owned copy: QueryState keeps pointers into it
        num_queries_(queries.size()),
        plan_(detail::plan_run(cluster_cfg_, spec_, r, queries_, frags)),
        setup_barrier_(engine_, n_),
        start_barrier_(engine_, n_),
        replicate_barrier_(engine_, n_),
        join_barrier_(engine_, n_) {
    if (plan_.resilient) retired_board_.resize(static_cast<std::size_t>(n_));
    hosts_.resize(static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; ++i) {
      auto& host = hosts_[static_cast<std::size_t>(i)];
      host = std::make_unique<HostRun>();
      host->plan = &plan_.hosts[static_cast<std::size_t>(i)];
      host->join_slots =
          std::make_unique<sim::Semaphore>(engine_, spec_.join_threads);
    }
  }

  SharedRunReport execute() {
    // The flight recorder is always on: bounded memory, lock-free emits,
    // installed before any node can run (ring/node.cpp reads it per hop).
    flight_ = std::make_shared<obs::FlightRecorder>(n_, cluster_cfg_.flight);
    engine_.set_flight(flight_.get());
    if (cluster_cfg_.trace.enabled) {
      tracer_ = std::make_shared<obs::Tracer>();
      engine_.set_tracer(tracer_.get());
    }
    if (cluster_cfg_.profile.enabled) {
      profiler_ = std::make_unique<obs::prof::KernelProfiler>();
    }
    inject_times_.resize(static_cast<std::size_t>(n_));
    if (plan_.resilient) {
      // The termination detector listens on every origin's retire acks; it
      // must be installed before any node starts.
      for (int i = 0; i < n_; ++i) {
        cluster_.node(i).set_on_ack([this] { maybe_finish(); });
      }
      injector_done_.resize(static_cast<std::size_t>(n_));
      for (int i = 0; i < n_; ++i) {
        injector_done_[static_cast<std::size_t>(i)] = std::make_unique<sim::Event>(
            engine_, "injector-done" + std::to_string(i));
      }
      if (plan_.replicate) {
        replicas_.resize(static_cast<std::size_t>(n_));
        replica_records_.resize(static_cast<std::size_t>(n_));
        for (int i = 0; i < n_; ++i) {
          cluster_.node(i).set_on_replica(
              [this, i](int origin, std::span<const std::byte> record) {
                replicas_[static_cast<std::size_t>(i)].absorb(origin, record);
              });
        }
      }
      for (const sim::HostCrashSpec& crash : cluster_cfg_.fault.crashes) {
        engine_.spawn(crash_watcher(crash),
                      "crash-watcher" + std::to_string(crash.host));
      }
    }
    for (int i = 0; i < n_; ++i) {
      engine_.spawn(host_process(i), "host" + std::to_string(i));
    }
    engine_.run();
    engine_.check_all_complete();
    return build_report();
  }

 private:
  sim::Task<void> host_process(int i) {
    HostRun& host = *hosts_[static_cast<std::size_t>(i)];
    sim::CorePool& cores = cluster_.cores(i);
    ring::RoundaboutNode& node = cluster_.node(i);

    // ---- setup phase -------------------------------------------------
    const SimTime setup_start = engine_.now();
    if (obs::Tracer* t = engine_.tracer()) t->begin(setup_start, i, "phase", "setup");
    co_await run_setup(i);
    flush_profile();
    if (obs::Tracer* t = engine_.tracer()) t->end(engine_.now(), i, "phase");
    host.stats.setup = engine_.now() - setup_start;
    if (plan_.replicate && n_ > 1) {
      // Serialize this host's crash-relevant state (S_i pieces + the slab's
      // encoded chunks) while the fragments are still resident; the records
      // stream to the successor once the ring is up.
      replica_records_[static_cast<std::size_t>(i)] = detail::build_replica_records(
          *host.plan, cluster_cfg_.node.buffer_bytes - ring::kFrameBytes);
    }
    host.plan->r_frag = rel::Relation();  // originals no longer needed
    if (spec_.algorithm != Algorithm::kNestedLoops) {
      for (auto& query : host.plan->queries) query.s_frag = rel::Relation();
    }

    co_await setup_barrier_.arrive_and_wait();

    // ---- transport bring-up -------------------------------------------
    // Counts are known only now (chunking is data-dependent).
    {
      std::vector<std::span<std::byte>> slabs;
      ring::NodeCounts counts;
      if (n_ > 1) {
        slabs.push_back(host.plan->slab.slab());
        // Replica records are sent from where they were serialized, so they
        // register up front like the slab (Sec. III-C: never on the data
        // path).
        if (plan_.replicate) {
          for (auto& record : replica_records_[static_cast<std::size_t>(i)]) {
            slabs.push_back(record);
          }
        }
        counts = counts_for(i);
      }
      const Status started = co_await node.start(counts, std::move(slabs));
      CJ_CHECK_MSG(started.is_ok(), started.to_string().c_str());
    }
    co_await start_barrier_.arrive_and_wait();
    if (plan_.replicate && n_ > 1) {
      // ---- replication phase -------------------------------------------
      // Stream the replica of this host's state one hop ahead, then wait
      // until the successor acked every record. The barrier (and the crash
      // gate staying closed until after it) guarantees a crash never
      // interrupts replication: every host's replica is complete before
      // any chunk rotates.
      if (obs::Tracer* t = engine_.tracer()) {
        t->begin(engine_.now(), i, "phase", "replicate");
      }
      for (const auto& record : replica_records_[static_cast<std::size_t>(i)]) {
        co_await node.send_replica(record);
      }
      co_await node.replicas_drained();
      co_await replicate_barrier_.arrive_and_wait();
      // The records stay resident (they are registered memory; freeing them
      // would leave stale regions in the protection domain).
      if (obs::Tracer* t = engine_.tracer()) t->end(engine_.now(), i, "phase");
    }
    if (plan_.resilient) join_phase_started_.set();

    // ---- join phase ----------------------------------------------------
    host.join_started_at = engine_.now();
    host.busy_at_join_start = cores.busy_total();
    if (obs::Tracer* t = engine_.tracer()) {
      t->begin(host.join_started_at, i, "phase", "join");
    }

    if (n_ > 1 && host.plan->slab.num_chunks() > 0) {
      engine_.spawn(injector(i), "injector" + std::to_string(i));
    } else if (plan_.resilient) {
      injector_done_[static_cast<std::size_t>(i)]->set();
    }

    // Local chunks first (they are resident), then arrivals in ring order.
    // Slab order is injection order, so chunk index == wire seq.
    for (std::size_t c = 0; c < host.plan->slab.num_chunks(); ++c) {
      if (plan_.resilient && node.stopped()) break;  // this host died mid-run
      co_await join_chunk(i, decode_chunk(host.plan->slab.chunk(c)),
                          plan_.resilient ? i : -1,
                          static_cast<std::uint32_t>(c));
    }
    if (plan_.resilient) {
      // Dynamic termination: pull chunks until the retire-board detector
      // (or this host's own crash) delivers a stop chunk. An all-empty run
      // produces no acks, so kick the detector once here.
      maybe_finish();
      while (true) {
        ring::InboundChunk inbound = co_await node.next_chunk();
        if (inbound.stop) break;
        if (host.adopted_origin >= 0 && !host.adoption_ready->is_set()) {
          // Adopter with the partition still being promoted: every arrival
          // from here on may need an adopted join too — park until the
          // build finishes (the ring backs up behind this host's buffers
          // briefly; that stall is recovery's latency cost, not a
          // deadlock: promotion runs on cores, not the ring).
          co_await host.adoption_ready->wait();
        }
        const ChunkView view = decode_chunk(inbound.payload);
        const int origin = inbound.origin;
        const std::uint32_t seq = inbound.seq;
        const bool origin_dead = crashed_.count(origin) != 0;
        if (inbound.replay) {
          // Recovery replay copy: joined only at the adopter (against the
          // adopted partition), forwarded by everyone else. Never touches
          // the retire board — the original already accounted there.
          if (host.adopted_origin >= 0 &&
              host.adopted_seen[static_cast<std::size_t>(origin)]
                  .insert(seq)
                  .second) {
            co_await join_adopted_chunk(i, view, origin, seq);
          }
          if (surviving_successor(i) == origin) {
            node.retire(inbound);  // ack the replaying origin
          } else {
            node.forward(inbound);
          }
          continue;
        }
        if (origin_dead && !recovering_) {
          // PR-1 degraded mode: a dead origin can neither take an ack nor
          // re-inject; retire its chunk quietly at the first surviving
          // host that notices.
          node.retire(inbound, /*send_ack=*/false);
          continue;
        }
        if (!inbound.duplicate) co_await join_chunk(i, view, origin, seq);
        if (host.adopted_origin >= 0 && origin != host.adopted_origin &&
            host.adopted_seen[static_cast<std::size_t>(origin)]
                .insert(seq)
                .second) {
          // Post-adoption arrival not covered by the replay snapshot: this
          // is its only pass by the adopter, so its join against the
          // adopted partition happens here.
          co_await join_adopted_chunk(i, view, origin, seq);
        }
        // Under recovery a dead origin's chunks stay first-class: they are
        // joined everywhere and retire one hop before the adopter, which
        // consumes their acks on the dead host's behalf.
        const int home = origin_dead ? adopter_ : origin;
        if (surviving_successor(i) == home) {
          node.retire(inbound);  // full revolution completed
          note_retired(origin, seq);
        } else {
          node.forward(inbound);
        }
      }
    } else {
      const std::uint64_t arrivals =
          n_ > 1 ? plan_.global_chunks() - host.plan->slab.num_chunks() : 0;
      for (std::uint64_t k = 0; k < arrivals; ++k) {
        ring::InboundChunk inbound = co_await node.next_chunk();
        const ChunkView view = decode_chunk(inbound.payload);
        co_await join_chunk(i, view);
        if (cluster_.fabric().successor(i) == view.origin_host) {
          record_revolution(view.origin_host);
          node.retire(inbound);  // full revolution completed
        } else {
          node.forward(inbound);
        }
      }
    }

    const SimTime join_end = engine_.now();
    if (obs::Tracer* t = engine_.tracer()) t->end(join_end, i, "phase");
    host.stats.join_phase = join_end - host.join_started_at;
    host.stats.sync = node.sync_time();
    host.stats.cpu_load_join =
        cores.utilization(host.busy_at_join_start, host.stats.join_phase);

    co_await join_barrier_.arrive_and_wait();
    co_await node.drain();

    if (plan_.resilient) {
      // A crashed host contributes nothing. Without recovery the surviving
      // hosts count only the surviving origins' buckets (dead R fragments
      // are retracted); under exact recovery every origin's bucket counts
      // and the adopter adds the partition it recomputed for the dead host.
      if (crashed_.count(i) == 0) {
        for (const auto& query : host.plan->queries) {
          for (int o = 0; o < n_; ++o) {
            if (crashed_.count(o) != 0 && !recovering_) continue;
            const auto& partial = query.per_origin[static_cast<std::size_t>(o)];
            host.stats.matches += partial.matches();
            host.stats.checksum += partial.checksum();
          }
        }
        for (const auto& adopted : host.adopted) {
          host.stats.matches += adopted.result.matches();
          host.stats.checksum += adopted.result.checksum();
        }
      }
    } else {
      for (const auto& query : host.plan->queries) {
        host.stats.matches += query.result.matches();
        host.stats.checksum += query.result.checksum();
      }
    }
    host.stats.bytes_sent = node.bytes_sent();
    host.stats.busy_by_tag = cores.busy_by_tag();
    host.stats.chunks_reinjected = node.chunks_reinjected();
    host.stats.chunks_recovered = node.chunks_recovered();
    host.stats.corrupt_discards = node.chunks_discarded_corrupt();
    host.stats.stale_query_discards = node.stale_query_discards();
    host.stats.duplicates_skipped = node.duplicates_skipped();
    host.stats.send_failures = node.send_failures();
  }

  sim::Task<void> injector(int i) {
    HostRun& host = *hosts_[static_cast<std::size_t>(i)];
    ring::RoundaboutNode& node = cluster_.node(i);
    for (std::size_t c = 0; c < host.plan->slab.num_chunks(); ++c) {
      if (plan_.resilient && node.stopped()) break;  // this host died
      co_await node.send_local(host.plan->slab.chunk(c));
      // send_local resumes us synchronously once the chunk is queued, so
      // this timestamp is the chunk's true injection time. The retire side
      // pops the front entry: the ring preserves per-origin order.
      if (!plan_.resilient) {
        inject_times_[static_cast<std::size_t>(i)].push_back(engine_.now());
      }
    }
    // Recovery replay waits for this: once set, seq numbers handed out by
    // send_local(replay=true) cannot collide with the slab numbering.
    if (plan_.resilient) injector_done_[static_cast<std::size_t>(i)]->set();
  }

  /// A chunk from `origin` just completed its revolution at pred(origin):
  /// sample the revolution makespan (non-resilient runs only — re-injection
  /// makes the pairing ambiguous under faults).
  void record_revolution(int origin) {
    auto& pending = inject_times_[static_cast<std::size_t>(origin)];
    if (pending.empty()) return;
    metrics_.record("revolution_ns", engine_.now() - pending.front());
    pending.pop_front();
  }

  // Wraps a measured closure so that kernel regions inside it attribute
  // their counter deltas to host i. When profiling is off the wrapper costs
  // one null test; the counter reads it enables when ON run inside the
  // measured region and perturb the virtual timings (ProfileConfig docs).
  template <typename Fn>
  auto profiled(int i, Fn fn, const char* phase = "core") {
    return [this, i, phase, fn = std::move(fn)] {
      obs::prof::ScopedContext ctx(profiler_.get(), i, phase);
      fn();
    };
  }

  // Streams the profile's changed counter tracks into the trace at the
  // current virtual time. Must be called from simulation code, never from
  // inside a measured closure (the flush itself is not kernel work).
  void flush_profile() {
    if (profiler_ != nullptr && tracer_ != nullptr) {
      profiler_->flush_to_tracer(*tracer_, engine_.now());
    }
  }

  // Prepares every query's stationary state plus the rotating slab on host
  // i's cores. One setup task per stationary fragment, one for the
  // rotating side — all compete for the host's cores like the paper's
  // parallel hash-build/sort setup.
  sim::Task<void> run_setup(int i) {
    HostRun& host = *hosts_[static_cast<std::size_t>(i)];
    sim::CorePool& cores = cluster_.cores(i);
    // Resilient frames travel in-buffer ahead of the payload; chunks must
    // leave them headroom or a full chunk would overflow the ring buffer.
    // With replication on, chunks additionally ride inside replica records,
    // so they leave room for the record header too.
    const ChunkWriter writer(
        cluster_cfg_.node.buffer_bytes -
        (plan_.resilient ? ring::kFrameBytes : 0) -
        (plan_.replicate ? sizeof(detail::ReplicaHeader) : 0));

    std::vector<sim::Task<void>> tasks;
    for (auto& fn :
         detail::setup_closures(spec_, plan_.radix_bits, writer, host.plan)) {
      tasks.push_back(cores.run(profiled(i, std::move(fn)), "setup"));
    }
    co_await sim::when_all(engine_, std::move(tasks));
    detail::patch_origin(host.plan->slab, i);
  }

  // With retire acks every host sends and receives exactly G messages
  // (see ring/node.h).
  ring::NodeCounts counts_for(int) const {
    const std::uint64_t g = plan_.global_chunks();
    return ring::NodeCounts{g, g};
  }

  // ----- resilient-mode termination detection & crash control ----------

  /// The next alive host downstream of i on the (possibly spliced) ring.
  int surviving_successor(int i) {
    int s = cluster_.fabric().successor(i);
    while (crashed_.count(s) != 0) s = cluster_.fabric().successor(s);
    return s;
  }

  /// Records that origin's chunk `seq` completed its revolution (retired at
  /// pred(origin)). The per-origin sets absorb duplicate re-retirements.
  void note_retired(int origin, std::uint32_t seq) {
    retired_board_[static_cast<std::size_t>(origin)].insert(seq);
    maybe_finish();
  }

  /// Every surviving origin's chunks all retired *and* all acked back — the
  /// board proves the revolutions, the outstanding count proves the acks.
  /// Under exact recovery the dead origin's board must fill too (the
  /// adopter's re-injections retire on the dead host's behalf) and every
  /// recovery task must have registered and finished its work.
  bool all_work_done() {
    if (recovering_ && recovery_pending_ > 0) return false;
    for (int o = 0; o < n_; ++o) {
      const bool dead = crashed_.count(o) != 0;
      if (dead && !recovering_) continue;
      const HostRun& host = *hosts_[static_cast<std::size_t>(o)];
      if (retired_board_[static_cast<std::size_t>(o)].size() <
          host.plan->slab.num_chunks()) {
        return false;
      }
      if (!dead && cluster_.node(o).outstanding_unacked() != 0) return false;
    }
    return true;
  }

  /// Termination detector: runs on every retire and every ack. Deferred
  /// while a ring repair is splicing (stopping a node mid-splice would
  /// strand the repair handshake).
  void maybe_finish() {
    if (!plan_.resilient || finished_ || repairing_ || !all_work_done()) return;
    finished_ = true;
    for (int i = 0; i < n_; ++i) {
      if (crashed_.count(i) == 0) cluster_.node(i).request_stop();
    }
  }

  sim::Task<void> crash_watcher(sim::HostCrashSpec spec) {
    co_await engine_.sleep(spec.at);
    // A crash during setup degenerates to a shorter ring from the start;
    // the interesting (and supported) case is a crash of a live ring.
    co_await join_phase_started_.wait();
    if (finished_) co_return;  // the run beat the crash to the finish line
    repairing_ = true;
    crashed_.insert(spec.host);
    // Black box: snapshot the recorder's window as it stood at the crash.
    if (!cluster_cfg_.flight.blackbox_path.empty() && !blackbox_written_) {
      blackbox_written_ = obs::write_blackbox(
          *flight_, cluster_cfg_.flight.blackbox_path, "crash");
    }
    if (plan_.replicate) {
      // Published together with the crash: any host observing the origin
      // as dead also sees recovery mode and the retire home, so no chunk
      // is quiet-retired in the window before adoption installs.
      CJ_CHECK_MSG(!recovering_, "replicated recovery supports a single crash");
      recovering_ = true;
      adopter_ = surviving_successor(spec.host);
      crash_at_ = engine_.now();
    }
    cluster_.node(spec.host).die();
    cluster_.injector()->mark_crashed(spec.host);
    co_await cluster_.splice_around(spec.host);
    if (plan_.replicate) install_recovery(spec.host);
    repairing_ = false;
    // Without recovery the crash may itself complete the run (the dead
    // host's unfinished work no longer counts).
    maybe_finish();
  }

  /// Flips the run into exact-recovery mode: the dead host's surviving
  /// successor adopts its partition. Runs synchronously inside the crash
  /// watcher, before `repairing_` clears, so the termination detector never
  /// observes a half-installed recovery.
  void install_recovery(int dead) {
    HostRun& a = *hosts_[static_cast<std::size_t>(adopter_)];
    ring::RoundaboutNode& node = cluster_.node(adopter_);
    node.adopt(dead);
    a.adopted_origin = dead;
    a.adoption_ready =
        std::make_unique<sim::Event>(engine_, "adoption-ready");
    a.adopted_seen.assign(static_cast<std::size_t>(n_), {});
    // Snapshot: chunks the adopter has already seen from each surviving
    // origin get their adopted join from a replay copy, so the entry is
    // pre-marked — a stale original duplicate must not double-join.
    for (int o = 0; o < n_; ++o) {
      if (o == adopter_ || crashed_.count(o) != 0) continue;
      a.adopted_seen[static_cast<std::size_t>(o)] = node.seen(o);
    }
    // One adoption task on the adopter plus one replay task per other
    // survivor; termination stays blocked until each registered and
    // finished its share of the recovery work.
    recovery_pending_ = 1;
    engine_.spawn(adoption_task(adopter_, dead), "adopt");
    for (int o = 0; o < n_; ++o) {
      if (o == adopter_ || crashed_.count(o) != 0) continue;
      ++recovery_pending_;
      engine_.spawn(
          replay_task(o, a.adopted_seen[static_cast<std::size_t>(o)]),
          "replay" + std::to_string(o));
    }
    if (tracer_ != nullptr) {
      tracer_->instant(crash_at_, adopter_, "fault", "adopt-install");
    }
  }

  /// The adopter's recovery work: promote the replica S_dead into a live
  /// join partition, re-inject the dead origin's unretired chunks from the
  /// replica log, then run the local joins the dead host can no longer do.
  sim::Task<void> adoption_task(int a, int dead) {
    HostRun& host = *hosts_[static_cast<std::size_t>(a)];
    detail::ReplicaStore& store = replicas_[static_cast<std::size_t>(a)];
    sim::CorePool& cores = cluster_.cores(a);
    ring::RoundaboutNode& node = cluster_.node(a);
    CJ_CHECK_MSG(store.origin == dead, "replica store holds the wrong host");
    obs::Tracer* const t = engine_.tracer();
    if (t != nullptr) t->begin(engine_.now(), a, "adopt", "promote-replica");
    // 1. Promote the replica stationary fragments (re-build hash tables /
    //    re-sort on this host's cores). The join loop parks until ready.
    host.adopted.resize(num_queries_);
    for (std::size_t q = 0; q < num_queries_; ++q) {
      auto& state = host.adopted[q];
      state.band = queries_[q].band;
      state.predicate = &queries_[q].predicate;
      state.result = join::JoinResult(spec_.materialize);
    }
    {
      std::vector<sim::Task<void>> tasks;
      for (auto& fn : detail::adopted_setup_closures(
               spec_, plan_.radix_bits, store.s_tuples, &host.adopted)) {
        tasks.push_back(cores.run(profiled(a, std::move(fn), "adopt"), "adopt"));
      }
      co_await sim::when_all(engine_, std::move(tasks));
      flush_profile();
    }
    host.adoption_ready->set();
    if (t != nullptr) t->end(engine_.now(), a, "adopt");
    // 2. Re-inject the dead origin's unretired chunks under their original
    //    sequence numbers. A chunk still circulating (this host saw it
    //    before the crash) is registered for ack/timeout tracking but not
    //    pushed — the live copy completes the revolution by itself and the
    //    scanner re-injects only if its ack never lands. The replica log
    //    becomes send-worthy only now, so register it with the wire first.
    for (auto& [seq, bytes] : store.r_chunks) {
      co_await node.prepare_memory(bytes);
    }
    const std::size_t c_dead =
        plan_.hosts[static_cast<std::size_t>(dead)].slab.num_chunks();
    for (std::uint32_t seq = 0; seq < c_dead; ++seq) {
      if (retired_board_[static_cast<std::size_t>(dead)].count(seq) != 0) {
        continue;  // already completed its revolution before the crash
      }
      const auto it = store.r_chunks.find(seq);
      CJ_CHECK_MSG(it != store.r_chunks.end(),
                   "replica log is missing an unretired chunk");
      const bool circulating = node.seen(dead).count(seq) != 0;
      co_await node.send_adopted(seq, it->second, /*send_now=*/!circulating);
    }
    // 3. Local joins the dead host can no longer perform: the whole replica
    //    log against the adopted partition (R_dead ⋈ S_dead), the dead
    //    chunks this host never saw against its own queries (R_dead ⋈ S_a —
    //    post-splice they retire one hop upstream and never pass here), and
    //    this host's own slab against the adopted partition (R_a ⋈ S_dead).
    for (const auto& [seq, bytes] : store.r_chunks) {
      const ChunkView view = decode_chunk(bytes);
      co_await join_adopted_chunk(a, view, dead, seq);
      if (node.seen(dead).count(seq) == 0) {
        co_await join_chunk(a, view, dead, seq);
      }
    }
    for (std::size_t c = 0; c < host.plan->slab.num_chunks(); ++c) {
      co_await join_adopted_chunk(a, decode_chunk(host.plan->slab.chunk(c)),
                                  a, static_cast<std::uint32_t>(c));
    }
    adoption_done_at_ = engine_.now();
    --recovery_pending_;
    maybe_finish();
  }

  /// A surviving origin's recovery work: re-send every chunk the adopter
  /// had already consumed at install time as a flagged replay copy, so its
  /// join against the adopted partition is not lost. Runs after the
  /// origin's own injector so replay seqs extend the slab numbering.
  sim::Task<void> replay_task(int o, std::set<std::uint32_t> seqs) {
    co_await injector_done_[static_cast<std::size_t>(o)]->wait();
    HostRun& host = *hosts_[static_cast<std::size_t>(o)];
    ring::RoundaboutNode& node = cluster_.node(o);
    for (const std::uint32_t seq : seqs) {
      if (node.stopped()) break;
      co_await node.send_local(host.plan->slab.chunk(seq), /*replay=*/true);
    }
    --recovery_pending_;
    maybe_finish();
  }

  // One flight record from runner code (probe hops; the per-hop wire
  // records come from ring/node.cpp). Never called inside a measured
  // closure, so the emit cannot perturb virtual timings.
  void flight_probe(int i, int origin, std::uint32_t seq, SimTime start) {
    obs::FlightRecord r;
    r.ts = engine_.now();
    r.seq = seq;
    r.origin =
        origin < 0 ? obs::kNoOrigin : static_cast<std::uint16_t>(origin);
    r.query = cluster_cfg_.node.resilience.query_group;
    r.host = static_cast<std::int16_t>(i);
    r.kind = obs::HopKind::kProbe;
    r.arg_us = duration_us(engine_.now() - start);
    flight_->emit(i, r);
  }

  // Joins one chunk against every query's stationary state on host i using
  // up to spec_.join_threads virtual cores (work items over-decomposed per
  // detail::kTasksPerThread). `origin`/`seq` identify the chunk for the
  // flight recorder's probe record (-1 = no wire identity, fault-free runs).
  sim::Task<void> join_chunk(int i, ChunkView view, int origin = -1,
                             std::uint32_t seq = 0) {
    HostRun& host = *hosts_[static_cast<std::size_t>(i)];
    sim::CorePool& cores = cluster_.cores(i);
    ++host.stats.chunks_processed;
    probe_tuples_ += view.tuples.size() * host.plan->queries.size();
    const SimTime probe_start = engine_.now();

    detail::ChunkJoinWork work;
    detail::build_chunk_work(spec_, plan_.radix_bits, plan_.resilient,
                             *host.plan, view, work);
    std::vector<sim::Task<void>> tasks;
    for (std::size_t k = 0; k < work.items.size(); ++k) {
      // Busy time bills to the owning query's tag so the serving layer can
      // attribute core time per query; untagged queries share "join".
      const std::string& tag =
          work.tags[k]->empty() ? kJoinTag : *work.tags[k];
      tasks.push_back(detail::guarded(
          *host.join_slots,
          cores.run(profiled(i, std::move(work.items[k])), tag)));
    }
    co_await sim::when_all(engine_, std::move(tasks));
    flush_profile();
    work.merge_into_sinks();
    flight_probe(i, origin, seq, probe_start);
  }

  // Joins one chunk against the adopter's promoted replica partition
  // (recovery only). Same decomposition and thread limit as join_chunk,
  // but the sinks are the adopted QueryStates' own results so recovered
  // matches stay separately attributable.
  sim::Task<void> join_adopted_chunk(int i, ChunkView view, int origin = -1,
                                     std::uint32_t seq = 0) {
    HostRun& host = *hosts_[static_cast<std::size_t>(i)];
    sim::CorePool& cores = cluster_.cores(i);
    probe_tuples_ += view.tuples.size() * host.adopted.size();
    const SimTime probe_start = engine_.now();

    detail::ChunkJoinWork work;
    for (auto& query : host.adopted) {
      detail::build_query_chunk_work(spec_, plan_.radix_bits, query,
                                     &query.result, view, work);
    }
    std::vector<sim::Task<void>> tasks;
    for (auto& item : work.items) {
      tasks.push_back(detail::guarded(
          *host.join_slots,
          cores.run(profiled(i, std::move(item), "adopt"), "adopt")));
    }
    co_await sim::when_all(engine_, std::move(tasks));
    flush_profile();
    work.merge_into_sinks();
    flight_probe(i, origin, seq, probe_start);
  }

  SharedRunReport build_report() {
    SharedRunReport report;
    report.queries.resize(num_queries_);
    for (int i = 0; i < n_; ++i) {
      HostRun& host = *hosts_[static_cast<std::size_t>(i)];
      report.setup_wall = std::max(report.setup_wall, host.stats.setup);
      report.join_wall = std::max(report.join_wall, host.stats.join_phase);
      report.cpu_load_join += host.stats.cpu_load_join;
      for (std::size_t q = 0; q < num_queries_; ++q) {
        if (plan_.resilient) {
          if (crashed_.count(i) != 0) continue;
          for (int o = 0; o < n_; ++o) {
            if (crashed_.count(o) != 0 && !recovering_) continue;
            const auto& partial =
                host.plan->queries[q].per_origin[static_cast<std::size_t>(o)];
            report.queries[q].matches += partial.matches();
            report.queries[q].checksum += partial.checksum();
          }
          if (q < host.adopted.size()) {
            report.queries[q].matches += host.adopted[q].result.matches();
            report.queries[q].checksum += host.adopted[q].result.checksum();
          }
        } else {
          report.queries[q].matches += host.plan->queries[q].result.matches();
          report.queries[q].checksum += host.plan->queries[q].result.checksum();
        }
      }
      report.hosts.push_back(host.stats);
      if (spec_.materialize) {
        if (plan_.resilient) {
          // Resilient runs sink matches into per-origin partials (plus the
          // adopter's promoted partition), not queries[0].result. Stitch
          // them back into one per-host output, applying the same origin
          // filter as the count above so the materialized multiset equals
          // exactly what matches/checksum cover. A crashed host contributes
          // an empty slot — its partition's matches live on the adopter.
          join::JoinResult combined(true);
          if (crashed_.count(i) == 0) {
            auto& query = host.plan->queries[0];
            for (int o = 0; o < n_; ++o) {
              if (crashed_.count(o) != 0 && !recovering_) continue;
              combined.merge(query.per_origin[static_cast<std::size_t>(o)]);
            }
            if (!host.adopted.empty()) combined.merge(host.adopted[0].result);
          }
          report.host_results.push_back(std::move(combined));
        } else {
          report.host_results.push_back(
              std::move(host.plan->queries[0].result));
        }
      }
    }
    for (const auto& query : report.queries) {
      report.matches += query.matches;
      report.checksum += query.checksum;
    }
    report.cpu_load_join /= n_;
    report.total_wall = engine_.now();
    report.bytes_on_wire = cluster_.fabric().total_data_bytes();
    if (n_ > 1 && report.join_wall > 0) {
      report.link_throughput_bps =
          static_cast<double>(cluster_.fabric().data_link(0).bytes_transferred()) /
          to_seconds(report.join_wall);
    }
    if (sim::FaultInjector* injector = cluster_.injector()) {
      FaultReport& fault = report.fault;
      fault.recovered = recovering_;
      fault.degraded = !crashed_.empty() && !recovering_;
      fault.crashed_hosts.assign(crashed_.begin(), crashed_.end());
      if (!recovering_) {
        // Exact recovery loses nothing; degraded mode accounts the gap.
        for (const int dead : crashed_) {
          fault.lost_r_rows += plan_.r_rows[static_cast<std::size_t>(dead)];
          fault.lost_s_rows += plan_.s_rows[static_cast<std::size_t>(dead)];
        }
      }
      if (plan_.replicate) {
        for (int i = 0; i < n_; ++i) {
          fault.replica_bytes += cluster_.node(i).replica_bytes();
          fault.replicas_resent += cluster_.node(i).replicas_resent();
        }
      }
      if (recovering_) {
        fault.adopter = adopter_;
        fault.chunks_adopted = cluster_.node(adopter_).chunks_adopted();
        fault.recovery_time = adoption_done_at_ - crash_at_;
      }
      fault.messages_dropped = injector->counters().messages_dropped;
      fault.messages_corrupted = injector->counters().messages_corrupted;
      for (const HostStats& stats : report.hosts) {
        fault.chunks_reinjected += stats.chunks_reinjected;
        fault.chunks_recovered += stats.chunks_recovered;
        fault.corrupt_discards += stats.corrupt_discards;
        fault.duplicates_skipped += stats.duplicates_skipped;
      }
      // Fault plans require the RDMA transport, so devices exist.
      for (int i = 0; i < n_; ++i) {
        fault.retransmissions += cluster_.device(i).total_retransmissions();
        fault.rnr_retries += cluster_.device(i).total_rnr_retries();
      }
    }
    fill_metrics(report);  // last: it reads the wire/fault fields above
    return report;
  }

  void fill_metrics(SharedRunReport& report) {
    metrics_.add_counter("bytes_on_wire",
                         static_cast<std::int64_t>(report.bytes_on_wire));
    metrics_.add_counter("chunks_injected",
                         static_cast<std::int64_t>(plan_.global_chunks()));
    metrics_.add_counter("probe_tuples",
                         static_cast<std::int64_t>(probe_tuples_));
    std::uint64_t rotated = 0;
    std::uint64_t switches = 0;
    for (int i = 0; i < n_; ++i) {
      rotated += hosts_[static_cast<std::size_t>(i)]->stats.chunks_processed;
      switches += cluster_.cores(i).context_switches();
      for (const auto& [tag, busy] :
           hosts_[static_cast<std::size_t>(i)]->stats.busy_by_tag) {
        metrics_.add_counter("busy." + tag, busy);
      }
    }
    metrics_.add_counter("chunks_rotated", static_cast<std::int64_t>(rotated));
    metrics_.add_counter("context_switches", static_cast<std::int64_t>(switches));
    metrics_.set_gauge("cpu_load_join", report.cpu_load_join);
    metrics_.set_gauge("link_throughput_bps", report.link_throughput_bps);
    if (cluster_.injector() != nullptr) {
      metrics_.add_counter(
          "messages_dropped",
          static_cast<std::int64_t>(report.fault.messages_dropped));
      metrics_.add_counter(
          "messages_corrupted",
          static_cast<std::int64_t>(report.fault.messages_corrupted));
      metrics_.add_counter(
          "retransmissions",
          static_cast<std::int64_t>(report.fault.retransmissions));
      metrics_.add_counter("rnr_retries",
                           static_cast<std::int64_t>(report.fault.rnr_retries));
    }
    if (plan_.resilient) {
      // Summed from the per-host stats, not report.fault: the counters are
      // live even when no fault plan is configured.
      std::int64_t reinjected = 0;
      std::int64_t recovered = 0;
      std::int64_t dups = 0;
      std::int64_t corrupt = 0;
      std::int64_t stale = 0;
      for (const HostStats& stats : report.hosts) {
        reinjected += static_cast<std::int64_t>(stats.chunks_reinjected);
        recovered += static_cast<std::int64_t>(stats.chunks_recovered);
        dups += static_cast<std::int64_t>(stats.duplicates_skipped);
        corrupt += static_cast<std::int64_t>(stats.corrupt_discards);
        stale += static_cast<std::int64_t>(stats.stale_query_discards);
      }
      metrics_.add_counter("chunks_reinjected", reinjected);
      metrics_.add_counter("chunks_recovered", recovered);
      metrics_.add_counter("duplicates_skipped", dups);
      metrics_.add_counter("chunks_discarded_corrupt", corrupt);
      metrics_.add_counter("stale_query_discards", stale);
      if (plan_.replicate) {
        std::int64_t replica_bytes = 0;
        std::int64_t resent = 0;
        std::int64_t adopted = 0;
        for (int i = 0; i < n_; ++i) {
          replica_bytes +=
              static_cast<std::int64_t>(cluster_.node(i).replica_bytes());
          resent +=
              static_cast<std::int64_t>(cluster_.node(i).replicas_resent());
          adopted +=
              static_cast<std::int64_t>(cluster_.node(i).chunks_adopted());
        }
        metrics_.add_counter("replica_bytes", replica_bytes);
        metrics_.add_counter("replicas_resent", resent);
        metrics_.add_counter("chunks_adopted", adopted);
      }
      const std::int64_t end_ts = engine_.now();
      for (int i = 0; i < n_; ++i) {
        const ring::RoundaboutNode& node = cluster_.node(i);
        for (const SimDuration rtt : node.ack_rtts()) {
          metrics_.record("ack_rtt_ns", rtt);
        }
        metrics_.set_gauge(
            "host" + std::to_string(i) + ".ack_timeout_ns",
            static_cast<double>(node.current_ack_timeout()));
        if (tracer_ != nullptr) {
          // Counter tracks: one sample per host at end-of-run is enough for
          // Perfetto to draw per-host recovery bars next to the phases.
          tracer_->counter(end_ts, i, "chunks_recovered",
                           static_cast<std::int64_t>(node.chunks_recovered()));
          tracer_->counter(end_ts, i, "chunks_reinjected",
                           static_cast<std::int64_t>(node.chunks_reinjected()));
          tracer_->counter(end_ts, i, "duplicates_skipped",
                           static_cast<std::int64_t>(node.duplicates_skipped()));
          tracer_->counter(
              end_ts, i, "chunks_discarded_corrupt",
              static_cast<std::int64_t>(node.chunks_discarded_corrupt()));
        }
      }
    }
    // ----- flight-recorder / journey plane (always on) -------------------
    std::uint64_t revolutions = 0;
    int max_hops = 0;
    std::int64_t flight_dropped = 0;
    for (int i = 0; i < n_; ++i) {
      const ring::RoundaboutNode& node = cluster_.node(i);
      revolutions += node.revolutions_observed();
      max_hops = std::max(max_hops, node.max_hops_observed());
      flight_dropped += static_cast<std::int64_t>(flight_->dropped(i));
    }
    metrics_.add_counter("revolutions_observed",
                         static_cast<std::int64_t>(revolutions));
    metrics_.set_gauge("max_hops", static_cast<double>(max_hops));
    metrics_.add_counter("obs.flight_records",
                         static_cast<std::int64_t>(flight_->total_emitted()));
    metrics_.add_counter("obs.flight_dropped", flight_dropped);
    // Post-run straggler replay: the same detector the rt backend runs
    // live, fed from the recorder window, so both backends report the same
    // obs.straggler_flags / host<i>.straggler_z columns.
    obs::StragglerDetector detector(n_, cluster_cfg_.sampler);
    obs::replay_stragglers(*flight_, detector, &metrics_, tracer_.get());
    for (int i = 0; i < n_; ++i) {
      metrics_.set_gauge("host" + std::to_string(i) + ".straggler_z",
                         detector.last_z(i));
    }
    maybe_dump_retry_storm();
    report.flight = flight_;
    if (tracer_ != nullptr) {
      for (const obs::HostOverlap& o : obs::overlap_by_host(*tracer_)) {
        metrics_.set_gauge("host" + std::to_string(o.host) + ".overlap_ratio",
                           o.ratio);
      }
      report.trace = tracer_;
    }
    if (profiler_ != nullptr) report.profile = profiler_->snapshot();
    report.metrics = metrics_.snapshot();
  }

  void maybe_dump_retry_storm() {
    const obs::FlightConfig& fcfg = cluster_cfg_.flight;
    if (fcfg.retry_storm_threshold == 0 || fcfg.blackbox_path.empty() ||
        blackbox_written_) {
      return;
    }
    std::uint64_t reinjected = 0;
    for (int i = 0; i < n_; ++i) {
      reinjected += cluster_.node(i).chunks_reinjected();
    }
    if (reinjected >= fcfg.retry_storm_threshold) {
      blackbox_written_ =
          obs::write_blackbox(*flight_, fcfg.blackbox_path, "retry-storm");
    }
  }

  ClusterConfig cluster_cfg_;
  JoinSpec spec_;
  sim::Engine engine_;
  Cluster cluster_;
  int n_;
  std::vector<SharedQuery> queries_;
  std::size_t num_queries_;
  detail::RunPlan plan_;
  Barrier setup_barrier_;
  Barrier start_barrier_;
  Barrier replicate_barrier_;
  Barrier join_barrier_;
  std::vector<std::unique_ptr<HostRun>> hosts_;

  // ----- resilient-mode state ------------------------------------------
  bool finished_ = false;   // termination detector fired
  bool repairing_ = false;  // a ring splice is in flight
  sim::Event join_phase_started_{engine_, "join-phase-started"};
  std::set<int> crashed_;
  /// Per origin: sequence numbers of its chunks that completed a revolution.
  std::vector<std::set<std::uint32_t>> retired_board_;

  // ----- replication / exact-recovery state (resilience.replicate) -----
  /// Per host: the successor-held copy of its predecessor's state.
  std::vector<detail::ReplicaStore> replicas_;
  /// Per host: the serialized records it streams during the replication
  /// phase (must outlive replicas_drained — sends are by reference).
  std::vector<std::vector<std::vector<std::byte>>> replica_records_;
  /// Per host: set when its injector finished first sends. Replay waits on
  /// this so replay seqs never collide with the origin's own numbering.
  std::vector<std::unique_ptr<sim::Event>> injector_done_;
  bool recovering_ = false;  ///< a crash is being exactly recovered
  int adopter_ = -1;
  /// Recovery tasks (adoption + per-survivor replays) still registering
  /// work; termination is held off until all of them finished.
  int recovery_pending_ = 0;
  SimTime crash_at_ = 0;
  SimTime adoption_done_at_ = 0;

  // ----- observability --------------------------------------------------
  /// Always installed on the engine (ring/node.cpp emits per-hop records).
  std::shared_ptr<obs::FlightRecorder> flight_;
  /// First black-box trigger wins; a later one must not overwrite it.
  bool blackbox_written_ = false;
  /// Installed on the engine when cluster_cfg_.trace.enabled.
  std::shared_ptr<obs::Tracer> tracer_;
  /// Non-null when cluster_cfg_.profile.enabled. Shared by all hosts (the
  /// simulator runs every measured closure on one OS thread); attribution
  /// comes from the ScopedContext each closure installs.
  std::unique_ptr<obs::prof::KernelProfiler> profiler_;
  obs::MetricsRegistry metrics_;
  std::uint64_t probe_tuples_ = 0;
  /// Per origin host: injection times of its not-yet-retired chunks
  /// (revolution-makespan histogram; non-resilient runs only).
  std::vector<std::deque<SimTime>> inject_times_;
};

}  // namespace

CycloJoin::CycloJoin(ClusterConfig cluster, JoinSpec spec)
    : cluster_(std::move(cluster)), spec_(std::move(spec)) {}

RunReport CycloJoin::run(const rel::Relation& r, const rel::Relation& s) {
  SharedQuery query;
  query.stationary = &s;
  query.band = spec_.band;
  query.predicate = spec_.predicate;
  if (cluster_.backend == Backend::kRt) {
    return run_rt(cluster_, spec_, r, {query});
  }
  Runner runner(cluster_, spec_, r, {query});
  return runner.execute();
}

SharedRunReport CycloJoin::run_shared(const rel::Relation& rotating,
                                      const std::vector<SharedQuery>& queries) {
  if (cluster_.backend == Backend::kRt) {
    return run_rt(cluster_, spec_, rotating, queries);
  }
  Runner runner(cluster_, spec_, rotating, queries);
  return runner.execute();
}

RunReport CycloJoin::run_fragments(FragmentInputs inputs) {
  SharedQuery query;  // stationary stays null: the fragments are the input
  query.band = spec_.band;
  query.predicate = spec_.predicate;
  const rel::Relation no_rotating;  // ignored: plan_run moves the fragments
  if (cluster_.backend == Backend::kRt) {
    return run_rt(cluster_, spec_, no_rotating, {query}, &inputs);
  }
  Runner runner(cluster_, spec_, no_rotating, {query}, &inputs);
  return runner.execute();
}

std::vector<OutputFragment> RunReport::output_fragments() const {
  std::vector<OutputFragment> out;
  out.reserve(host_results.size());
  for (const join::JoinResult& result : host_results) {
    OutputFragment frag;
    frag.rows = result.output().size();
    frag.bytes = frag.rows * sizeof(join::OutTuple);
    out.push_back(frag);
  }
  return out;
}

}  // namespace cj::cyclo
