// Chunk format: the unit of rotation in cyclo-join.
//
// The roundabout transfers whole ring-buffer elements (paper Sec. III-D),
// so a rotating fragment R_j is cut into *chunks*, each at most one buffer
// element in size and each independently joinable against any stationary
// S_i. Chunks carry the fragment's *prepared* form (paper Sec. IV-D: the
// reorganized — partitioned or sorted — data is what rotates, spending
// network bandwidth to save CPU):
//
//   kPartitioned  radix-clustered tuples with a run directory
//                 {partition id, count}*, for the hash join,
//   kSorted       a sorted key range, for the sort-merge join,
//   kRaw          arbitrary tuples, for the nested-loops fallback.
//
// Joins read tuples directly out of the ring buffer (zero-copy; decode
// returns views, not copies). A chunk retires after visiting every host:
// the origin id in the header tells a host whether its successor is the
// chunk's birthplace.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.h"
#include "join/radix.h"
#include "rel/relation.h"

namespace cj::cyclo {

enum class ChunkKind : std::uint8_t { kRaw = 0, kPartitioned = 1, kSorted = 2 };

#pragma pack(push, 1)
struct ChunkHeader {
  std::uint32_t magic;
  std::uint16_t origin_host;
  std::uint8_t kind;
  std::uint8_t radix_bits;
  std::uint32_t num_runs;
  std::uint32_t num_tuples;
};

/// A maximal run of tuples from one radix partition within a chunk. A
/// partition larger than a chunk is split into runs across chunks.
struct PartitionRun {
  std::uint32_t partition_id;
  std::uint32_t count;
};
#pragma pack(pop)

static_assert(sizeof(ChunkHeader) == 16);
static_assert(sizeof(PartitionRun) == 8);

constexpr std::uint32_t kChunkMagic = 0xC1C707A1;  // "cyclo" chunk marker

/// Decoded, zero-copy view of one chunk. Spans alias the source buffer.
struct ChunkView {
  ChunkKind kind = ChunkKind::kRaw;
  int origin_host = 0;
  int radix_bits = 0;
  std::span<const PartitionRun> runs;   // kPartitioned only
  std::span<const rel::Tuple> tuples;
};

/// All chunks of one host's share of the rotating relation, laid out in one
/// contiguous slab (registered once with the RNIC; chunks are sent straight
/// from here).
class ChunkSlab {
 public:
  struct Entry {
    std::size_t offset;
    std::size_t size;
  };

  ChunkSlab() = default;
  ChunkSlab(std::vector<std::byte> bytes, std::vector<Entry> entries,
            std::uint64_t total_tuples)
      : bytes_(std::move(bytes)),
        entries_(std::move(entries)),
        total_tuples_(total_tuples) {}

  std::size_t num_chunks() const { return entries_.size(); }

  std::span<const std::byte> chunk(std::size_t i) const {
    const Entry& e = entries_[i];
    return std::span<const std::byte>(bytes_).subspan(e.offset, e.size);
  }

  /// The whole backing storage, for memory registration.
  std::span<std::byte> slab() { return bytes_; }

  std::uint64_t total_bytes() const { return bytes_.size(); }
  std::uint64_t total_tuples() const { return total_tuples_; }

 private:
  std::vector<std::byte> bytes_;
  std::vector<Entry> entries_;
  std::uint64_t total_tuples_ = 0;
};

/// Builds ChunkSlabs. max_payload_bytes caps each chunk (ring buffer size).
class ChunkWriter {
 public:
  explicit ChunkWriter(std::size_t max_payload_bytes)
      : max_payload_(max_payload_bytes) {}

  /// Chunks a radix-clustered fragment, splitting oversized partitions
  /// into runs as needed.
  ChunkSlab from_partitioned(const join::PartitionedData& data, int origin_host) const;

  /// Chunks a sorted fragment into contiguous sorted ranges.
  ChunkSlab from_sorted(std::span<const rel::Tuple> sorted, int origin_host) const;

  /// Chunks arbitrary tuples (nested-loops fallback).
  ChunkSlab from_raw(std::span<const rel::Tuple> tuples, int origin_host) const;

  /// Largest tuple count that fits one chunk with `runs` directory entries.
  std::size_t tuples_per_chunk(std::size_t runs) const;

 private:
  std::size_t max_payload_;
};

/// Parses and validates a chunk from a received buffer.
ChunkView decode_chunk(std::span<const std::byte> payload);

}  // namespace cj::cyclo
