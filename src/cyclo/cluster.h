// Cluster: builds the simulated Data Roundabout — hosts with core pools,
// RNICs (or kernel-TCP stacks), the ring fabric, and one RoundaboutNode per
// host, all wired together.
#pragma once

#include <memory>
#include <vector>

#include "cyclo/config.h"
#include "net/fabric.h"
#include "rdma/verbs.h"
#include "ring/node.h"
#include "ring/rdma_wire.h"
#include "ring/tcp_wire.h"
#include "sim/core_pool.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "tcpsim/tcp.h"

namespace cj::cyclo {

class Cluster {
 public:
  Cluster(sim::Engine& engine, const ClusterConfig& config);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_hosts() const { return config_.num_hosts; }
  const ClusterConfig& config() const { return config_; }

  sim::CorePool& cores(int host) { return *hosts_[static_cast<std::size_t>(host)]->cores; }
  ring::RoundaboutNode& node(int host) { return *hosts_[static_cast<std::size_t>(host)]->node; }
  rdma::Device& device(int host) { return *hosts_[static_cast<std::size_t>(host)]->device; }
  net::RingFabric& fabric() { return fabric_; }

  /// Non-null iff the config carries a fault plan.
  sim::FaultInjector* injector() { return injector_.get(); }

  /// Ring repair after `dead` fail-stopped: builds a fresh duplex link plus
  /// QPs between the dead host's neighbors and splices their nodes onto it
  /// (the survivors' in/out wires are swapped live). RDMA transport only;
  /// supports the single-crash plans the fault framework allows.
  sim::Task<void> splice_around(int dead);

 private:
  struct Host {
    std::unique_ptr<sim::CorePool> cores;
    std::unique_ptr<rdma::Device> device;  // present for RDMA transport
    // Wire endpoints (in = from predecessor, out = to successor).
    std::unique_ptr<ring::Wire> in_wire;
    std::unique_ptr<ring::Wire> out_wire;
    // RDMA plumbing owned here so lifetimes cover the run.
    std::vector<std::unique_ptr<rdma::CompletionQueue>> cqs;
    std::unique_ptr<ring::RoundaboutNode> node;
  };

  struct TcpPlumbing {
    std::unique_ptr<tcpsim::TcpConnection> data;    // i -> i+1
    std::unique_ptr<tcpsim::TcpConnection> credit;  // i+1 -> i
  };

  struct RepairPlumbing {
    std::unique_ptr<net::DuplexLink> link;
    std::unique_ptr<ring::Wire> pred_out;
    std::unique_ptr<ring::Wire> succ_in;
  };

  void wire_rdma(sim::Engine& engine);
  void wire_tcp(sim::Engine& engine);

  sim::Engine& engine_;
  ClusterConfig config_;
  net::RingFabric fabric_;
  std::unique_ptr<sim::FaultInjector> injector_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<TcpPlumbing> tcp_plumbing_;
  std::vector<std::unique_ptr<RepairPlumbing>> repairs_;
};

}  // namespace cj::cyclo
