// The rt backend: the cyclo-join cluster as real concurrency.
//
// Topology. Every host gets its own wall-clock sim::Engine (one shared
// epoch, so timestamps are comparable) driven by a dedicated OS thread; the
// host's protocol entities — the RoundaboutNode's receiver/transmitter/
// credit coroutines and the join loop — run single-threaded on that engine,
// exactly as they do on the DES engine. Join kernels leave the engine
// thread: CorePool::set_executor routes measured closures to a per-host
// rt::Executor worker pool. Ring neighbors are connected by shared-memory
// wires (rt/ShmLink) that keep RDMA's pre-posted-buffer + credit contract,
// so ring/node.cpp runs unmodified.
//
// Cross-thread protocol. A wall-clock engine's only thread-safe entry point
// is post(); everything here funnels through it: wire producers wake parked
// consumers, WallBarrier releases waiters, workers complete kernels, and
// the crash-watcher thread marshals die()/splice calls onto the victims'
// engines. Shared runner state (retire board, crash set, termination
// flags) lives behind one mutex; per-host state (plan, stats, node) is
// touched only by its host's engine thread, with barriers providing the
// happens-before edges at phase boundaries.
//
// Termination (resilient mode). The sim detector reads any node's
// outstanding_unacked() at ack time; across threads that would race, so the
// rt detector keeps a per-host "all local chunks acked" flag that is
// updated only on that host's engine thread (where the count is private)
// and combines it with the shared retire board under the runner mutex.
#include "cyclo/runner_rt.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "cyclo/chunk.h"
#include "cyclo/runner_common.h"
#include "obs/analysis.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "ring/frame.h"
#include "ring/node.h"
#include "rt/barrier.h"
#include "rt/executor.h"
#include "rt/wire.h"
#include "sim/core_pool.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/when_all.h"

namespace cj::cyclo {

namespace {

/// Default core-busy tag for untagged join work.
const std::string kJoinTag = "join";

/// Nanosecond duration -> saturating microseconds for flight-record args.
std::uint32_t duration_us(SimDuration ns) {
  if (ns <= 0) return 0;
  const SimDuration us = ns / kMicrosecond;
  return us > 0xFFFFFFFF ? 0xFFFFFFFFu : static_cast<std::uint32_t>(us);
}

/// A parked run (no events, no posts) this long is a protocol deadlock.
constexpr SimDuration kIdleAbort = 120 * kSecond;

/// ack_timeout is *wall* time on this backend; the sim default (5 virtual
/// milliseconds) is shorter than ordinary scheduler jitter and would cause
/// spurious re-injections. The runner turns on the adaptive ack-timeout
/// policy with this floor: until enough RTT samples arrive the effective
/// timeout is max(floor, configured), afterwards a multiple of the observed
/// p99 — machines faster than the floor converge down to their real RTT,
/// loaded ones move up instead of re-injecting spuriously.
constexpr SimDuration kMinAckTimeout = 200 * kMillisecond;

class RtRunner {
 public:
  RtRunner(const ClusterConfig& cfg, const JoinSpec& spec,
           const rel::Relation& r, const std::vector<SharedQuery>& queries,
           FragmentInputs* frags = nullptr)
      : cfg_(cfg),
        spec_(spec),
        n_(cfg.num_hosts),
        queries_(queries),  // owned copy: QueryState keeps pointers into it
        num_queries_(queries.size()),
        epoch_(sim::Engine::WallClock::now()),
        setup_barrier_(n_),
        start_barrier_(n_),
        replicate_barrier_(n_),
        join_barrier_(n_) {
    // The rt backend has no fault-injecting transport: messages cross a
    // mutex, not a lossy link. Crashes (fail-stop + ring repair) are the
    // supported — and the interesting — fault class.
    CJ_CHECK_MSG(
        cfg_.fault.link.drop_prob == 0.0 && cfg_.fault.link.corrupt_prob == 0.0,
        "the rt backend supports crash faults only (no link faults)");
    CJ_CHECK_MSG(cfg_.fault.slowdowns.empty(),
                 "the rt backend supports crash faults only (no slowdowns)");
    plan_ = detail::plan_run(cfg_, spec_, r, queries_, frags);
  }

  SharedRunReport execute() {
    // Always-on flight recorder: one lane per host, written concurrently
    // from every engine thread (lock-free emits; obs/flight.h).
    flight_ = std::make_shared<obs::FlightRecorder>(n_, cfg_.flight);
    if (cfg_.trace.enabled) tracer_ = std::make_shared<obs::Tracer>();
    if (cfg_.profile.enabled) {
      profiler_ = std::make_unique<obs::prof::KernelProfiler>();
    }
    if (plan_.replicate) {
      replicas_.resize(static_cast<std::size_t>(n_));
      replica_records_.resize(static_cast<std::size_t>(n_));
    }
    build_hosts();
    if (plan_.resilient) {
      retired_board_.resize(static_cast<std::size_t>(n_));
      acked_clear_.assign(static_cast<std::size_t>(n_), false);
      injector_done_.assign(static_cast<std::size_t>(n_), false);
    }
    inject_times_.resize(static_cast<std::size_t>(n_));

    // Roots are spawned before the engine threads start (an engine is
    // single-threaded; pre-start spawns are published by thread creation).
    for (int i = 0; i < n_; ++i) {
      host(i).engine->spawn(host_process(i), "host" + std::to_string(i));
    }

    std::vector<std::thread> watchers;
    for (const sim::HostCrashSpec& crash : cfg_.fault.crashes) {
      watchers.emplace_back([this, crash] { crash_watcher_main(crash); });
    }
    // Live telemetry: a background sampler thread snapshots the metrics
    // registry and runs the straggler detector over fresh recorder records
    // while the ring spins (engines share an epoch, so any host's now()
    // yields coherent sample timestamps).
    if (cfg_.sampler.enabled) {
      sampler_ = std::make_unique<obs::LiveSampler>(
          cfg_.sampler, &metrics_, flight_.get(), tracer_.get(), n_,
          [this] { return host(0).engine->now(); });
      sampler_->start();
    }
    for (int i = 0; i < n_; ++i) {
      HostRt& h = host(i);
      h.thread = std::thread([&h] {
        h.engine->run();
        h.engine->check_all_complete();
      });
    }
    for (int i = 0; i < n_; ++i) host(i).thread.join();
    {
      // Release a watcher whose crash time never arrived.
      std::lock_guard<std::mutex> lk(mu_);
      finished_ = true;
      crash_cv_.notify_all();
    }
    for (std::thread& w : watchers) w.join();
    // Final sample + lane drain happen inside stop(); the detector's
    // verdicts are read (single-threaded again) in fill_metrics.
    if (sampler_ != nullptr) sampler_->stop();
    return build_report();
  }

 private:
  struct HostRt {
    std::unique_ptr<sim::Engine> engine;
    std::unique_ptr<rt::Executor> executor;
    std::unique_ptr<sim::CorePool> cores;
    std::unique_ptr<ring::RoundaboutNode> node;
    std::unique_ptr<sim::Semaphore> join_slots;
    std::thread thread;
    detail::HostPlan* plan = nullptr;
    HostStats stats;
    SimDuration busy_at_join_start = 0;
    SimTime join_started_at = 0;
    SimTime done_at = 0;

    // ----- adoption state (resilience.replicate) -----------------------
    // All of it engine-thread private: the install closure that writes it
    // runs on this host's engine, as do the join loop and adoption task
    // that read it.
    int adopted_origin = -1;
    std::vector<detail::QueryState> adopted;
    std::vector<std::set<std::uint32_t>> adopted_seen;
    std::unique_ptr<sim::Event> adoption_ready;
    /// Set on this host's engine once its injector sent the last first
    /// copy; the replay task awaits it so replay seqs extend the slab
    /// numbering instead of colliding with it.
    std::unique_ptr<sim::Event> injector_done_ev;
  };

  HostRt& host(int i) { return *hosts_[static_cast<std::size_t>(i)]; }

  int successor(int i) const { return (i + 1) % n_; }
  int predecessor(int i) const { return (i + n_ - 1) % n_; }

  void build_hosts() {
    hosts_.reserve(static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; ++i) {
      auto h = std::make_unique<HostRt>();
      h->engine = std::make_unique<sim::Engine>(sim::ClockMode::kWall, epoch_);
      h->engine->set_idle_abort(kIdleAbort);
      h->engine->set_flight(flight_.get());
      if (tracer_ != nullptr) h->engine->set_tracer(tracer_.get());
      h->executor = std::make_unique<rt::Executor>(cfg_.cores_per_host);
      // cpu_scale / context-switch billing do not apply: wall time already
      // is real time (CorePool::set_executor docs). per_host_cpu_scale > 1
      // IS honored — see stretch_probe.
      h->cores = std::make_unique<sim::CorePool>(*h->engine, cfg_.cores_per_host);
      h->cores->set_trace_host(i);
      h->cores->set_executor(h->executor.get());
      h->join_slots =
          std::make_unique<sim::Semaphore>(*h->engine, spec_.join_threads);
      h->plan = &plan_.hosts[static_cast<std::size_t>(i)];
      hosts_.push_back(std::move(h));
    }

    if (n_ > 1) {
      for (int i = 0; i < n_; ++i) {
        links_.push_back(std::make_unique<rt::ShmLink>());
        // links_[i] is the edge i -> succ(i): endpoint a is host i's out
        // wire, endpoint b the successor's in wire. Each endpoint's engine
        // is the one running its consumer coroutines.
        links_.back()->a().attach_engine(host(i).engine.get());
        links_.back()->b().attach_engine(host(successor(i)).engine.get());
      }
    }

    ring::NodeConfig node_cfg = cfg_.node;
    // Shared-memory wires keep the posted-buffer contract, so credits are
    // as mandatory as over RDMA regardless of the configured transport.
    node_cfg.use_credits = true;
    node_cfg.resilience.enabled = plan_.resilient;
    node_cfg.resilience.num_hosts = n_;
    node_cfg.resilience.adaptive.enabled = true;
    if (node_cfg.resilience.adaptive.floor == 0) {
      node_cfg.resilience.adaptive.floor = kMinAckTimeout;
    }
    for (int i = 0; i < n_; ++i) {
      HostRt& h = host(i);
      node_cfg.resilience.host_id = i;
      node_cfg.trace_host = i;
      ring::Wire* in =
          n_ > 1 ? &links_[static_cast<std::size_t>(predecessor(i))]->b()
                 : nullptr;
      ring::Wire* out =
          n_ > 1 ? &links_[static_cast<std::size_t>(i)]->a() : nullptr;
      h.node = std::make_unique<ring::RoundaboutNode>(*h.engine, *h.cores, in,
                                                      out, node_cfg);
      if (plan_.resilient) {
        // Runs on host i's engine thread each time one of i's local chunks
        // is acknowledged (must be installed before start()).
        h.node->set_on_ack([this, i] { on_ack(i); });
        h.injector_done_ev =
            std::make_unique<sim::Event>(*h.engine, "injector-done");
      }
      if (plan_.replicate) {
        // Runs on host i's engine thread (the receiver consumes kReplica
        // frames inline), so the store needs no lock.
        h.node->set_on_replica(
            [this, i](int origin, std::span<const std::byte> record) {
              replicas_[static_cast<std::size_t>(i)].absorb(origin, record);
            });
      }
    }
  }

  sim::Task<void> host_process(int i) {
    HostRt& host = this->host(i);
    sim::Engine& engine = *host.engine;
    sim::CorePool& cores = *host.cores;
    ring::RoundaboutNode& node = *host.node;

    // ---- setup phase -------------------------------------------------
    const SimTime setup_start = engine.now();
    if (obs::Tracer* t = engine.tracer()) t->begin(setup_start, i, "phase", "setup");
    co_await run_setup(i);
    flush_profile(engine);
    if (obs::Tracer* t = engine.tracer()) t->end(engine.now(), i, "phase");
    host.stats.setup = engine.now() - setup_start;
    if (plan_.replicate && n_ > 1) {
      // Serialize this host's crash-relevant state (S_i pieces + the slab's
      // encoded chunks) while the fragments are still resident.
      replica_records_[static_cast<std::size_t>(i)] =
          detail::build_replica_records(
              *host.plan, cfg_.node.buffer_bytes - ring::kFrameBytes);
    }
    host.plan->r_frag = rel::Relation();  // originals no longer needed
    if (spec_.algorithm != Algorithm::kNestedLoops) {
      for (auto& query : host.plan->queries) query.s_frag = rel::Relation();
    }

    co_await setup_barrier_.arrive_and_wait(engine);

    // ---- transport bring-up -------------------------------------------
    // Counts are known only now (chunking is data-dependent); the barrier
    // above also publishes every host's slab for counts_for().
    {
      std::vector<std::span<std::byte>> slabs;
      ring::NodeCounts counts;
      if (n_ > 1) {
        slabs.push_back(host.plan->slab.slab());
        // Replica records are sent from where they were serialized; register
        // them up front like the slab (a no-op on shared-memory wires).
        if (plan_.replicate) {
          for (auto& record : replica_records_[static_cast<std::size_t>(i)]) {
            slabs.push_back(record);
          }
        }
        counts = counts_for();
      }
      const Status started = co_await node.start(counts, std::move(slabs));
      CJ_CHECK_MSG(started.is_ok(), started.to_string().c_str());
    }
    co_await start_barrier_.arrive_and_wait(engine);
    if (plan_.replicate && n_ > 1) {
      // ---- replication phase -------------------------------------------
      // Stream the replica one hop ahead and wait for the successor's
      // acks. The barrier (and the crash gate opening only after it)
      // guarantees a crash never interrupts replication.
      if (obs::Tracer* t = engine.tracer()) {
        t->begin(engine.now(), i, "phase", "replicate");
      }
      for (const auto& record : replica_records_[static_cast<std::size_t>(i)]) {
        co_await node.send_replica(record);
      }
      co_await node.replicas_drained();
      co_await replicate_barrier_.arrive_and_wait(engine);
      // The records stay resident (registered memory; freeing would leave
      // stale regions behind on wires that do register).
      if (obs::Tracer* t = engine.tracer()) t->end(engine.now(), i, "phase");
    }
    if (plan_.resilient) {
      std::lock_guard<std::mutex> lk(mu_);
      join_started_ = true;
      crash_cv_.notify_all();
    }

    // ---- join phase ----------------------------------------------------
    host.join_started_at = engine.now();
    host.busy_at_join_start = cores.busy_total();
    if (obs::Tracer* t = engine.tracer()) {
      t->begin(host.join_started_at, i, "phase", "join");
    }

    if (n_ > 1 && host.plan->slab.num_chunks() > 0) {
      engine.spawn(injector(i), "injector" + std::to_string(i));
    } else if (plan_.resilient) {
      mark_injector_done(i);  // nothing to inject, nothing to await acks for
    }

    // Local chunks first (they are resident), then arrivals in ring order.
    // Slab order is injection order, so chunk index == wire seq.
    for (std::size_t c = 0; c < host.plan->slab.num_chunks(); ++c) {
      if (plan_.resilient && node.stopped()) break;  // this host died mid-run
      co_await join_chunk(i, decode_chunk(host.plan->slab.chunk(c)),
                          plan_.resilient ? i : -1,
                          static_cast<std::uint32_t>(c));
    }
    if (plan_.resilient) {
      maybe_finish();  // an all-empty run produces no acks or retires
      while (true) {
        ring::InboundChunk inbound = co_await node.next_chunk();
        if (inbound.stop) break;
        if (host.adopted_origin >= 0 && !host.adoption_ready->is_set()) {
          // Adopter with the partition still being promoted: park until
          // the build finishes so no arrival misses its adopted join (the
          // ring backs up behind this host briefly — recovery's latency
          // cost, not a deadlock: promotion runs on workers).
          co_await host.adoption_ready->wait();
        }
        const ChunkView view = decode_chunk(inbound.payload);
        const int origin = inbound.origin;
        const std::uint32_t seq = inbound.seq;
        const bool origin_dead = is_crashed(origin);
        if (inbound.replay) {
          // Recovery replay copy: joined only at the adopter (against the
          // adopted partition), forwarded by everyone else; never on the
          // retire board — the original already accounted there.
          if (host.adopted_origin >= 0 &&
              host.adopted_seen[static_cast<std::size_t>(origin)]
                  .insert(seq)
                  .second) {
            co_await join_adopted_chunk(i, view, origin, seq);
          }
          if (surviving_successor(i) == origin) {
            node.retire(inbound);  // ack the replaying origin
          } else {
            node.forward(inbound);
          }
          continue;
        }
        if (origin_dead && !is_recovering()) {
          // Degraded mode: a dead origin can neither take an ack nor
          // re-inject; retire its chunk quietly at the first surviving
          // host that notices.
          node.retire(inbound, /*send_ack=*/false);
          continue;
        }
        if (!inbound.duplicate) co_await join_chunk(i, view, origin, seq);
        if (host.adopted_origin >= 0 && origin != host.adopted_origin &&
            host.adopted_seen[static_cast<std::size_t>(origin)]
                .insert(seq)
                .second) {
          // Post-adoption arrival not covered by the replay snapshot: this
          // is its only pass by the adopter.
          co_await join_adopted_chunk(i, view, origin, seq);
        }
        // Under recovery a dead origin's chunks stay first-class: joined
        // everywhere, retiring one hop before the adopter, which consumes
        // their acks on the dead host's behalf.
        const int home = origin_dead ? dead_home() : origin;
        if (surviving_successor(i) == home) {
          node.retire(inbound);  // full revolution completed
          note_retired(origin, seq);
        } else {
          node.forward(inbound);
        }
      }
    } else {
      const std::uint64_t arrivals =
          n_ > 1 ? plan_.global_chunks() - host.plan->slab.num_chunks() : 0;
      for (std::uint64_t k = 0; k < arrivals; ++k) {
        ring::InboundChunk inbound = co_await node.next_chunk();
        const ChunkView view = decode_chunk(inbound.payload);
        co_await join_chunk(i, view);
        if (successor(i) == view.origin_host) {
          record_revolution(view.origin_host, engine.now());
          node.retire(inbound);  // full revolution completed
        } else {
          node.forward(inbound);
        }
      }
    }

    const SimTime join_end = engine.now();
    if (obs::Tracer* t = engine.tracer()) t->end(join_end, i, "phase");
    host.stats.join_phase = join_end - host.join_started_at;
    host.stats.sync = node.sync_time();
    host.stats.cpu_load_join =
        cores.utilization(host.busy_at_join_start, host.stats.join_phase);

    co_await join_barrier_.arrive_and_wait(engine);
    co_await node.drain();

    if (plan_.resilient) {
      // A crashed host contributes nothing. Without recovery the surviving
      // hosts count only the surviving origins' buckets (dead R fragments
      // are retracted); under exact recovery every origin's bucket counts
      // and the adopter adds the partition it recomputed.
      if (!is_crashed(i)) {
        const bool recovering = is_recovering();
        for (const auto& query : host.plan->queries) {
          for (int o = 0; o < n_; ++o) {
            if (is_crashed(o) && !recovering) continue;
            const auto& partial = query.per_origin[static_cast<std::size_t>(o)];
            host.stats.matches += partial.matches();
            host.stats.checksum += partial.checksum();
          }
        }
        for (const auto& adopted : host.adopted) {
          host.stats.matches += adopted.result.matches();
          host.stats.checksum += adopted.result.checksum();
        }
      }
    } else {
      for (const auto& query : host.plan->queries) {
        host.stats.matches += query.result.matches();
        host.stats.checksum += query.result.checksum();
      }
    }
    host.stats.bytes_sent = node.bytes_sent();
    host.stats.busy_by_tag = cores.busy_by_tag();
    host.stats.chunks_reinjected = node.chunks_reinjected();
    host.stats.chunks_recovered = node.chunks_recovered();
    host.stats.corrupt_discards = node.chunks_discarded_corrupt();
    host.stats.stale_query_discards = node.stale_query_discards();
    host.stats.duplicates_skipped = node.duplicates_skipped();
    host.stats.send_failures = node.send_failures();
    host.done_at = engine.now();
  }

  sim::Task<void> injector(int i) {
    HostRt& host = this->host(i);
    ring::RoundaboutNode& node = *host.node;
    for (std::size_t c = 0; c < host.plan->slab.num_chunks(); ++c) {
      if (plan_.resilient && node.stopped()) break;  // this host died
      co_await node.send_local(host.plan->slab.chunk(c));
      if (!plan_.resilient) {
        std::lock_guard<std::mutex> lk(mu_);
        inject_times_[static_cast<std::size_t>(i)].push_back(
            host.engine->now());
      }
    }
    if (plan_.resilient) mark_injector_done(i);
  }

  /// Coarse revolution-makespan sample (retire order across threads is not
  /// exactly injection order, unlike the deterministic sim pairing).
  void record_revolution(int origin, SimTime now) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& pending = inject_times_[static_cast<std::size_t>(origin)];
    if (pending.empty()) return;
    metrics_.record("revolution_ns", now - pending.front());
    pending.pop_front();
  }

  template <typename Fn>
  auto profiled(int i, Fn fn, const char* phase = "core") {
    return [this, i, phase, fn = std::move(fn)] {
      // Installed on the *worker* thread the kernel runs on; the profiler
      // accumulates from all workers under its own lock.
      obs::prof::ScopedContext ctx(profiler_.get(), i, phase);
      fn();
    };
  }

  void flush_profile(sim::Engine& engine) {
    if (profiler_ != nullptr && tracer_ != nullptr) {
      profiler_->flush_to_tracer(*tracer_, engine.now());
    }
  }

  sim::Task<void> run_setup(int i) {
    HostRt& host = this->host(i);
    // Resilient frames travel in-buffer ahead of the payload; chunks must
    // leave them headroom or a full chunk would overflow the ring buffer.
    // With replication on, chunks additionally ride inside replica records,
    // so they leave room for the record header too.
    const ChunkWriter writer(
        cfg_.node.buffer_bytes - (plan_.resilient ? ring::kFrameBytes : 0) -
        (plan_.replicate ? sizeof(detail::ReplicaHeader) : 0));
    std::vector<sim::Task<void>> tasks;
    for (auto& fn :
         detail::setup_closures(spec_, plan_.radix_bits, writer, host.plan)) {
      tasks.push_back(host.cores->run(profiled(i, std::move(fn)), "setup"));
    }
    co_await sim::when_all(*host.engine, std::move(tasks));
    detail::patch_origin(host.plan->slab, i);
  }

  double cpu_scale(int i) const {
    const auto& v = cfg_.per_host_cpu_scale;
    return static_cast<std::size_t>(i) < v.size()
               ? v[static_cast<std::size_t>(i)]
               : 1.0;
  }

  // Honors per_host_cpu_scale on real hardware: a scale s > 1 stretches
  // each probe to s x its measured wall time by spinning on one of the
  // host's join cores, so a "slow host" exists on the rt backend too
  // (abl_straggler runs the same config on both backends). The spin is a
  // plain core task — it occupies a real core and bills to join busy time,
  // exactly like genuinely slower compute — and stays outside profiled()
  // so kernel profiles are unperturbed.
  sim::Task<void> stretch_probe(int i, SimTime probe_start) {
    const double scale = cpu_scale(i);
    if (scale <= 1.0) co_return;
    HostRt& host = this->host(i);
    const SimTime elapsed = host.engine->now() - probe_start;
    const SimTime extra =
        static_cast<SimTime>((scale - 1.0) * static_cast<double>(elapsed));
    if (extra <= 0) co_return;
    co_await host.cores->run(
        [extra] {
          const auto until = std::chrono::steady_clock::now() +
                             std::chrono::nanoseconds(extra);
          while (std::chrono::steady_clock::now() < until) {
          }
        },
        kJoinTag);
  }

  // One probe record from the join loop (host i's engine thread; never
  // inside a measured closure, so kernels stay unperturbed).
  void flight_probe(int i, int origin, std::uint32_t seq, SimTime start) {
    obs::FlightRecord r;
    r.ts = host(i).engine->now();
    r.seq = seq;
    r.origin =
        origin < 0 ? obs::kNoOrigin : static_cast<std::uint16_t>(origin);
    r.query = cfg_.node.resilience.query_group;
    r.host = static_cast<std::int16_t>(i);
    r.kind = obs::HopKind::kProbe;
    r.arg_us = duration_us(r.ts - start);
    flight_->emit(i, r);
  }

  sim::Task<void> join_chunk(int i, ChunkView view, int origin = -1,
                             std::uint32_t seq = 0) {
    HostRt& host = this->host(i);
    ++host.stats.chunks_processed;
    probe_tuples_ += view.tuples.size() * host.plan->queries.size();
    const SimTime probe_start = host.engine->now();

    detail::ChunkJoinWork work;
    detail::build_chunk_work(spec_, plan_.radix_bits, plan_.resilient,
                             *host.plan, view, work);
    std::vector<sim::Task<void>> tasks;
    for (std::size_t k = 0; k < work.items.size(); ++k) {
      // Busy time bills to the owning query's tag so the serving layer can
      // attribute core time per query; untagged queries share "join".
      const std::string& tag =
          work.tags[k]->empty() ? kJoinTag : *work.tags[k];
      tasks.push_back(detail::guarded(
          *host.join_slots,
          host.cores->run(profiled(i, std::move(work.items[k])), tag)));
    }
    co_await sim::when_all(*host.engine, std::move(tasks));
    co_await stretch_probe(i, probe_start);
    flush_profile(*host.engine);
    work.merge_into_sinks();
    flight_probe(i, origin, seq, probe_start);
  }

  // Joins one chunk against the adopter's promoted replica partition
  // (recovery only); the adopted QueryStates' own results keep recovered
  // matches separately attributable.
  sim::Task<void> join_adopted_chunk(int i, ChunkView view, int origin = -1,
                                     std::uint32_t seq = 0) {
    HostRt& host = this->host(i);
    probe_tuples_ += view.tuples.size() * host.adopted.size();
    const SimTime probe_start = host.engine->now();

    detail::ChunkJoinWork work;
    for (auto& query : host.adopted) {
      detail::build_query_chunk_work(spec_, plan_.radix_bits, query,
                                     &query.result, view, work);
    }
    std::vector<sim::Task<void>> tasks;
    for (auto& item : work.items) {
      tasks.push_back(detail::guarded(
          *host.join_slots,
          host.cores->run(profiled(i, std::move(item), "adopt"), "adopt")));
    }
    co_await sim::when_all(*host.engine, std::move(tasks));
    co_await stretch_probe(i, probe_start);
    flush_profile(*host.engine);
    work.merge_into_sinks();
    flight_probe(i, origin, seq, probe_start);
  }

  ring::NodeCounts counts_for() const {
    const std::uint64_t g = plan_.global_chunks();
    return ring::NodeCounts{g, g};
  }

  // ----- resilient-mode termination detection --------------------------

  bool is_crashed(int h) {
    std::lock_guard<std::mutex> lk(mu_);
    return crashed_.count(h) != 0;
  }

  bool is_recovering() {
    std::lock_guard<std::mutex> lk(mu_);
    return recovering_;
  }

  /// Where a recovered dead origin's chunks retire: at the predecessor of
  /// the adopter, which consumes their acks. Only meaningful once
  /// recovering_ is set (it is published together with crashed_).
  int dead_home() {
    std::lock_guard<std::mutex> lk(mu_);
    return adopter_;
  }

  /// The next alive host downstream of i on the (possibly spliced) ring.
  int surviving_successor(int i) {
    std::lock_guard<std::mutex> lk(mu_);
    int s = successor(i);
    while (crashed_.count(s) != 0) s = successor(s);
    return s;
  }

  /// Host i's engine thread: one of i's local chunks was acknowledged.
  /// outstanding_unacked() is engine-thread private, so this is the only
  /// place (besides mark_injector_done) allowed to read it.
  void on_ack(int i) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      acked_clear_[static_cast<std::size_t>(i)] =
          injector_done_[static_cast<std::size_t>(i)] &&
          host(i).node->outstanding_unacked() == 0;
    }
    maybe_finish();
  }

  /// Host i's engine thread: the injector sent its last local chunk (or had
  /// none). Until this, acked_clear_ stays pinned false — a transient
  /// outstanding == 0 between two injections must not look like completion.
  void mark_injector_done(int i) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      injector_done_[static_cast<std::size_t>(i)] = true;
      acked_clear_[static_cast<std::size_t>(i)] =
          host(i).node->outstanding_unacked() == 0;
    }
    host(i).injector_done_ev->set();  // on i's engine thread
    maybe_finish();
  }

  void note_retired(int origin, std::uint32_t seq) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      retired_board_[static_cast<std::size_t>(origin)].insert(seq);
    }
    maybe_finish();
  }

  /// Caller holds mu_. Slab chunk counts are safe to read: they are written
  /// before the setup barrier, which happens-before every join-phase event.
  /// Under exact recovery the dead origin's board must fill too (the
  /// adopter's re-injections retire on the dead host's behalf) and every
  /// recovery task must have finished.
  bool all_work_done_locked() {
    if (recovering_ && recovery_pending_ > 0) return false;
    for (int o = 0; o < n_; ++o) {
      const bool dead = crashed_.count(o) != 0;
      if (dead && !recovering_) continue;
      if (retired_board_[static_cast<std::size_t>(o)].size() <
          host(o).plan->slab.num_chunks()) {
        return false;
      }
      if (!dead && !acked_clear_[static_cast<std::size_t>(o)]) return false;
    }
    return true;
  }

  void maybe_finish() {
    std::vector<int> survivors;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!plan_.resilient || finished_ || repairing_ || !all_work_done_locked()) {
        return;
      }
      finished_ = true;
      crash_cv_.notify_all();  // a pending watcher stands down
      for (int i = 0; i < n_; ++i) {
        if (crashed_.count(i) == 0) survivors.push_back(i);
      }
    }
    for (const int i : survivors) {
      host(i).engine->post([this, i] { host(i).node->request_stop(); });
    }
  }

  // ----- crash control (watcher thread) -------------------------------

  /// Blocks the watcher thread until `fn` has run on `h`'s engine thread.
  void post_and_wait(int h, std::function<void()> fn) {
    auto done = std::make_shared<std::promise<void>>();
    auto ran = done->get_future();
    host(h).engine->post([fn = std::move(fn), done] {
      fn();
      done->set_value();
    });
    ran.get();
  }

  static sim::Task<void> notify_when_done(
      sim::Task<void> inner, std::shared_ptr<std::promise<void>> done) {
    co_await std::move(inner);
    done->set_value();
  }

  static sim::Task<void> splice_in_task(RtRunner* self, int succ,
                                        rt::ShmLink* link,
                                        std::shared_ptr<int> credits) {
    *credits = co_await self->host(succ).node->splice_in(&link->b());
  }

  static sim::Task<void> splice_out_task(RtRunner* self, int pred,
                                         rt::ShmLink* link,
                                         std::shared_ptr<int> credits) {
    co_await self->host(pred).node->splice_out(&link->a(), *credits);
  }

  /// Spawns the coroutine `make()` produces on `h`'s engine and blocks the
  /// watcher thread until it completes.
  void run_coro_on(int h, std::function<sim::Task<void>()> make) {
    auto done = std::make_shared<std::promise<void>>();
    auto ran = done->get_future();
    host(h).engine->post([this, h, make = std::move(make), done] {
      host(h).engine->spawn(notify_when_done(make(), done), "repair");
    });
    ran.get();
  }

  void crash_watcher_main(sim::HostCrashSpec spec) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      // spec.at is wall time since the run's epoch on this backend.
      crash_cv_.wait_until(lk, epoch_ + std::chrono::nanoseconds(spec.at),
                           [this] { return finished_; });
      if (finished_) return;
      // A crash during setup degenerates to a shorter ring from the start;
      // the interesting (and supported) case is a crash of a live ring.
      crash_cv_.wait(lk, [this] { return join_started_ || finished_; });
      if (finished_) return;  // the run beat the crash to the finish line
      repairing_ = true;
      crashed_.insert(spec.host);
      if (plan_.replicate) {
        // Published together with the crash: any host observing the origin
        // as dead also sees recovery mode and the retire home, so no chunk
        // is ever quiet-retired in the window before adoption installs.
        CJ_CHECK_MSG(!recovering_,
                     "replicated recovery supports a single crash");
        recovering_ = true;
        int s = successor(spec.host);
        while (crashed_.count(s) != 0) s = successor(s);
        adopter_ = s;
        crash_at_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        sim::Engine::WallClock::now() - epoch_)
                        .count();
      }
    }
    // Black box: snapshot the recorder's window as it stood at the crash
    // (watcher thread; the recorder is safe to read under concurrent emits).
    if (!cfg_.flight.blackbox_path.empty() &&
        !blackbox_written_.exchange(true)) {
      obs::write_blackbox(*flight_, cfg_.flight.blackbox_path, "crash");
    }
    // Fail-stop on the victim's own engine thread: wires break, entities
    // unwind, the victim's join loop sees a stop chunk.
    post_and_wait(spec.host, [this, spec] { host(spec.host).node->die(); });
    splice_around(spec.host);
    if (plan_.replicate) install_recovery(spec.host);
    {
      std::lock_guard<std::mutex> lk(mu_);
      repairing_ = false;
    }
    // Without recovery the crash may itself complete the run (the dead
    // host's unfinished work no longer counts).
    maybe_finish();
  }

  /// Watcher thread: flips the run into exact-recovery mode. The install
  /// closure runs on the adopter's engine (its node and seen-sets are
  /// engine-thread private); the recovery tasks are registered under mu_
  /// before repairing_ clears, so the termination detector never observes
  /// a half-installed recovery.
  void install_recovery(int dead) {
    int a;
    {
      std::lock_guard<std::mutex> lk(mu_);
      a = adopter_;
    }
    auto replay_sets =
        std::make_shared<std::vector<std::set<std::uint32_t>>>();
    post_and_wait(a, [this, a, dead, replay_sets] {
      HostRt& h = host(a);
      h.node->adopt(dead);
      h.adopted_origin = dead;
      h.adoption_ready =
          std::make_unique<sim::Event>(*h.engine, "adoption-ready");
      h.adopted_seen.assign(static_cast<std::size_t>(n_), {});
      replay_sets->assign(static_cast<std::size_t>(n_), {});
      for (int o = 0; o < n_; ++o) {
        if (o == a || is_crashed(o)) continue;
        // Snapshot: chunks the adopter already consumed from o get their
        // adopted join from a replay copy, so pre-mark them — a stale
        // original duplicate must not double-join.
        h.adopted_seen[static_cast<std::size_t>(o)] = h.node->seen(o);
        (*replay_sets)[static_cast<std::size_t>(o)] =
            h.adopted_seen[static_cast<std::size_t>(o)];
      }
    });
    std::vector<int> replayers;
    {
      std::lock_guard<std::mutex> lk(mu_);
      recovery_pending_ = 1;  // the adoption task
      // The tasks register fresh outstanding work; pin the flags false
      // until each task's tail recomputes them on its own engine.
      acked_clear_[static_cast<std::size_t>(a)] = false;
      for (int o = 0; o < n_; ++o) {
        if (o == a || crashed_.count(o) != 0) continue;
        ++recovery_pending_;
        acked_clear_[static_cast<std::size_t>(o)] = false;
        replayers.push_back(o);
      }
    }
    host(a).engine->post([this, a, dead] {
      host(a).engine->spawn(adoption_task(this, a, dead), "adopt");
    });
    for (const int o : replayers) {
      std::set<std::uint32_t> seqs =
          std::move((*replay_sets)[static_cast<std::size_t>(o)]);
      host(o).engine->post([this, o, seqs = std::move(seqs)]() mutable {
        host(o).engine->spawn(replay_task(this, o, std::move(seqs)),
                              "replay");
      });
    }
    if (tracer_ != nullptr) {
      tracer_->instant(host(a).engine->now(), obs::kGlobalHost, "fault",
                       "adopt-install", a);
    }
  }

  /// Tail of every recovery task, on the owning host's engine thread:
  /// refresh the host's acked-clear flag (the task may have registered no
  /// new work, in which case no ack would ever recompute it) and release
  /// the termination detector.
  void recovery_task_done(int i) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      --recovery_pending_;
      acked_clear_[static_cast<std::size_t>(i)] =
          injector_done_[static_cast<std::size_t>(i)] &&
          host(i).node->outstanding_unacked() == 0;
    }
    maybe_finish();
  }

  /// The adopter's recovery work (function coroutine: frame-owned copies
  /// survive the posted spawn closure). Promote the replica S_dead, then
  /// re-inject the dead origin's unretired chunks from the replica log,
  /// then run the local joins the dead host can no longer perform.
  static sim::Task<void> adoption_task(RtRunner* self, int a, int dead) {
    HostRt& host = self->host(a);
    detail::ReplicaStore& store = self->replicas_[static_cast<std::size_t>(a)];
    ring::RoundaboutNode& node = *host.node;
    sim::Engine& engine = *host.engine;
    CJ_CHECK_MSG(store.origin == dead, "replica store holds the wrong host");
    obs::Tracer* const t = engine.tracer();
    if (t != nullptr) t->begin(engine.now(), a, "adopt", "promote-replica");
    host.adopted.resize(self->num_queries_);
    for (std::size_t q = 0; q < self->num_queries_; ++q) {
      host.adopted[q].band = self->queries_[q].band;
      host.adopted[q].predicate = &self->queries_[q].predicate;
    }
    {
      std::vector<sim::Task<void>> tasks;
      for (auto& fn : detail::adopted_setup_closures(
               self->spec_, self->plan_.radix_bits, store.s_tuples,
               &host.adopted)) {
        tasks.push_back(host.cores->run(
            self->profiled(a, std::move(fn), "adopt"), "adopt"));
      }
      co_await sim::when_all(engine, std::move(tasks));
      self->flush_profile(engine);
    }
    host.adoption_ready->set();
    if (t != nullptr) t->end(engine.now(), a, "adopt");
    // Re-inject unretired chunks under their original seqs. A chunk this
    // host saw before the crash is still circulating: register it for
    // ack/timeout tracking without pushing — the live copy completes the
    // revolution by itself and the scanner re-injects only if needed. The
    // replica log becomes send-worthy only now; register it with the wire
    // first (no-op on shared memory).
    for (auto& [seq, bytes] : store.r_chunks) {
      co_await node.prepare_memory(bytes);
    }
    const std::size_t c_dead =
        self->plan_.hosts[static_cast<std::size_t>(dead)].slab.num_chunks();
    for (std::uint32_t seq = 0; seq < static_cast<std::uint32_t>(c_dead);
         ++seq) {
      bool retired;
      {
        std::lock_guard<std::mutex> lk(self->mu_);
        retired =
            self->retired_board_[static_cast<std::size_t>(dead)].count(seq) !=
            0;
      }
      if (retired) continue;
      const auto it = store.r_chunks.find(seq);
      CJ_CHECK_MSG(it != store.r_chunks.end(),
                   "replica log is missing an unretired chunk");
      const bool circulating = node.seen(dead).count(seq) != 0;
      co_await node.send_adopted(seq, it->second, /*send_now=*/!circulating);
    }
    // Local joins the dead host can no longer perform: the whole replica
    // log against the adopted partition (R_dead ⋈ S_dead), the dead chunks
    // this host never saw against its own queries (post-splice they retire
    // one hop upstream and never pass here), and this host's own slab
    // against the adopted partition (R_a ⋈ S_dead).
    for (const auto& [seq, bytes] : store.r_chunks) {
      const ChunkView view = decode_chunk(bytes);
      co_await self->join_adopted_chunk(a, view, dead, seq);
      if (node.seen(dead).count(seq) == 0) {
        co_await self->join_chunk(a, view, dead, seq);
      }
    }
    for (std::size_t c = 0; c < host.plan->slab.num_chunks(); ++c) {
      co_await self->join_adopted_chunk(
          a, decode_chunk(host.plan->slab.chunk(c)), a,
          static_cast<std::uint32_t>(c));
    }
    self->adoption_done_at_ = engine.now();
    self->recovery_task_done(a);
  }

  /// A surviving origin's recovery work: re-send every chunk the adopter
  /// had consumed by install time as a flagged replay copy, after the
  /// origin's own injector finished (replay seqs extend the slab
  /// numbering). Function coroutine: `seqs` lives in the frame.
  static sim::Task<void> replay_task(RtRunner* self, int o,
                                     std::set<std::uint32_t> seqs) {
    co_await self->host(o).injector_done_ev->wait();
    HostRt& host = self->host(o);
    ring::RoundaboutNode& node = *host.node;
    for (const std::uint32_t seq : seqs) {
      if (node.stopped()) break;
      co_await node.send_local(host.plan->slab.chunk(seq), /*replay=*/true);
    }
    self->recovery_task_done(o);
  }

  /// Ring repair after `dead` fail-stopped: a fresh shared-memory link
  /// between the dead host's neighbors, spliced in the same order as
  /// Cluster::splice_around — inbound side first, because the successor
  /// reports how many receive buffers it re-posted, which is exactly the
  /// predecessor's opening credit balance.
  void splice_around(int dead) {
    const int pred = predecessor(dead);
    const int succ = successor(dead);
    auto link = std::make_unique<rt::ShmLink>();
    link->a().attach_engine(host(pred).engine.get());
    link->b().attach_engine(host(succ).engine.get());
    rt::ShmLink* raw = link.get();
    repair_links_.push_back(std::move(link));

    if (tracer_ != nullptr) {
      tracer_->instant(host(pred).engine->now(), obs::kGlobalHost, "fault",
                       "fault.splice", dead);
    }

    auto credits = std::make_shared<int>(0);
    // The factories below must stay ordinary lambdas returning a task built
    // from a *function* coroutine: a capturing-lambda coroutine keeps its
    // captures in the lambda object, which dies with the posted closure
    // while the splice is still suspended. Function parameters are copied
    // into the coroutine frame and survive.
    run_coro_on(succ, [this, succ, raw, credits] {
      return splice_in_task(this, succ, raw, credits);
    });
    run_coro_on(pred, [this, pred, raw, credits] {
      return splice_out_task(this, pred, raw, credits);
    });
  }

  // ----- reporting ------------------------------------------------------

  SharedRunReport build_report() {
    // All engine and watcher threads are joined: every host's state is
    // published to this thread and the run is single-threaded again.
    SharedRunReport report;
    report.queries.resize(num_queries_);
    for (int i = 0; i < n_; ++i) {
      HostRt& host = this->host(i);
      report.setup_wall = std::max(report.setup_wall, host.stats.setup);
      report.join_wall = std::max(report.join_wall, host.stats.join_phase);
      report.total_wall = std::max(report.total_wall, host.done_at);
      report.cpu_load_join += host.stats.cpu_load_join;
      for (std::size_t q = 0; q < num_queries_; ++q) {
        if (plan_.resilient) {
          if (crashed_.count(i) != 0) continue;
          for (int o = 0; o < n_; ++o) {
            if (crashed_.count(o) != 0 && !recovering_) continue;
            const auto& partial =
                host.plan->queries[q].per_origin[static_cast<std::size_t>(o)];
            report.queries[q].matches += partial.matches();
            report.queries[q].checksum += partial.checksum();
          }
          if (q < host.adopted.size()) {
            report.queries[q].matches += host.adopted[q].result.matches();
            report.queries[q].checksum += host.adopted[q].result.checksum();
          }
        } else {
          report.queries[q].matches += host.plan->queries[q].result.matches();
          report.queries[q].checksum += host.plan->queries[q].result.checksum();
        }
      }
      report.hosts.push_back(host.stats);
      if (spec_.materialize) {
        report.host_results.push_back(std::move(host.plan->queries[0].result));
      }
    }
    for (const auto& query : report.queries) {
      report.matches += query.matches;
      report.checksum += query.checksum;
    }
    report.cpu_load_join /= n_;
    for (const auto& link : links_) report.bytes_on_wire += link->bytes_sent(0);
    for (const auto& link : repair_links_) {
      report.bytes_on_wire += link->bytes_sent(0);
    }
    if (n_ > 1 && report.join_wall > 0) {
      report.link_throughput_bps =
          static_cast<double>(links_[0]->bytes_sent(0)) /
          to_seconds(report.join_wall);
    }
    if (!cfg_.fault.empty()) {
      FaultReport& fault = report.fault;
      fault.recovered = recovering_;
      fault.degraded = !crashed_.empty() && !recovering_;
      fault.crashed_hosts.assign(crashed_.begin(), crashed_.end());
      if (!recovering_) {
        // Exact recovery loses nothing; degraded mode accounts the gap.
        for (const int dead : crashed_) {
          fault.lost_r_rows += plan_.r_rows[static_cast<std::size_t>(dead)];
          fault.lost_s_rows += plan_.s_rows[static_cast<std::size_t>(dead)];
        }
      }
      if (plan_.replicate) {
        for (int i = 0; i < n_; ++i) {
          fault.replica_bytes += host(i).node->replica_bytes();
          fault.replicas_resent += host(i).node->replicas_resent();
        }
      }
      if (recovering_) {
        fault.adopter = adopter_;
        fault.chunks_adopted = host(adopter_).node->chunks_adopted();
        fault.recovery_time = adoption_done_at_ - crash_at_;
      }
      // No lossy transport, no simulated RNIC: drop/corrupt/retransmit
      // counters are structurally zero on this backend.
      for (const HostStats& stats : report.hosts) {
        fault.chunks_reinjected += stats.chunks_reinjected;
        fault.chunks_recovered += stats.chunks_recovered;
        fault.corrupt_discards += stats.corrupt_discards;
        fault.duplicates_skipped += stats.duplicates_skipped;
      }
    }
    fill_metrics(report);
    return report;
  }

  void fill_metrics(SharedRunReport& report) {
    metrics_.add_counter("bytes_on_wire",
                         static_cast<std::int64_t>(report.bytes_on_wire));
    metrics_.add_counter("chunks_injected",
                         static_cast<std::int64_t>(plan_.global_chunks()));
    metrics_.add_counter("probe_tuples",
                         static_cast<std::int64_t>(probe_tuples_.load()));
    std::uint64_t rotated = 0;
    for (int i = 0; i < n_; ++i) {
      rotated += host(i).stats.chunks_processed;
      for (const auto& [tag, busy] : host(i).stats.busy_by_tag) {
        metrics_.add_counter("busy." + tag, busy);
      }
    }
    metrics_.add_counter("chunks_rotated", static_cast<std::int64_t>(rotated));
    metrics_.add_counter("context_switches", 0);  // real cores: not modeled
    metrics_.set_gauge("cpu_load_join", report.cpu_load_join);
    metrics_.set_gauge("link_throughput_bps", report.link_throughput_bps);
    if (plan_.resilient) {
      // Summed from the per-host stats, not report.fault: the counters are
      // live even when no fault plan is configured (e.g. spurious-timeout
      // re-injections under the adaptive policy's warm-up).
      std::int64_t reinjected = 0;
      std::int64_t recovered = 0;
      std::int64_t dups = 0;
      std::int64_t corrupt = 0;
      std::int64_t stale = 0;
      for (const HostStats& stats : report.hosts) {
        reinjected += static_cast<std::int64_t>(stats.chunks_reinjected);
        recovered += static_cast<std::int64_t>(stats.chunks_recovered);
        dups += static_cast<std::int64_t>(stats.duplicates_skipped);
        corrupt += static_cast<std::int64_t>(stats.corrupt_discards);
        stale += static_cast<std::int64_t>(stats.stale_query_discards);
      }
      metrics_.add_counter("chunks_reinjected", reinjected);
      metrics_.add_counter("chunks_recovered", recovered);
      metrics_.add_counter("duplicates_skipped", dups);
      metrics_.add_counter("chunks_discarded_corrupt", corrupt);
      metrics_.add_counter("stale_query_discards", stale);
      if (plan_.replicate) {
        std::int64_t replica_bytes = 0;
        std::int64_t resent = 0;
        std::int64_t adopted = 0;
        for (int i = 0; i < n_; ++i) {
          replica_bytes +=
              static_cast<std::int64_t>(host(i).node->replica_bytes());
          resent += static_cast<std::int64_t>(host(i).node->replicas_resent());
          adopted += static_cast<std::int64_t>(host(i).node->chunks_adopted());
        }
        metrics_.add_counter("replica_bytes", replica_bytes);
        metrics_.add_counter("replicas_resent", resent);
        metrics_.add_counter("chunks_adopted", adopted);
      }
      for (int i = 0; i < n_; ++i) {
        const ring::RoundaboutNode& node = *host(i).node;
        for (const SimDuration rtt : node.ack_rtts()) {
          metrics_.record("ack_rtt_ns", rtt);
        }
        metrics_.set_gauge("host" + std::to_string(i) + ".ack_timeout_ns",
                           static_cast<double>(node.current_ack_timeout()));
        if (tracer_ != nullptr) {
          tracer_->counter(host(i).done_at, i, "chunks_recovered",
                           static_cast<std::int64_t>(node.chunks_recovered()));
          tracer_->counter(host(i).done_at, i, "chunks_reinjected",
                           static_cast<std::int64_t>(node.chunks_reinjected()));
          tracer_->counter(host(i).done_at, i, "duplicates_skipped",
                           static_cast<std::int64_t>(node.duplicates_skipped()));
          tracer_->counter(
              host(i).done_at, i, "chunks_discarded_corrupt",
              static_cast<std::int64_t>(node.chunks_discarded_corrupt()));
        }
      }
    }
    // ----- flight-recorder / journey plane (always on) -------------------
    std::uint64_t revolutions = 0;
    int max_hops = 0;
    std::int64_t flight_dropped = 0;
    for (int i = 0; i < n_; ++i) {
      const ring::RoundaboutNode& node = *host(i).node;
      revolutions += node.revolutions_observed();
      max_hops = std::max(max_hops, node.max_hops_observed());
      flight_dropped += static_cast<std::int64_t>(flight_->dropped(i));
    }
    metrics_.add_counter("revolutions_observed",
                         static_cast<std::int64_t>(revolutions));
    metrics_.set_gauge("max_hops", static_cast<double>(max_hops));
    metrics_.add_counter("obs.flight_records",
                         static_cast<std::int64_t>(flight_->total_emitted()));
    metrics_.add_counter("obs.flight_dropped", flight_dropped);
    if (sampler_ != nullptr) {
      // The live detector already bumped obs.straggler_flags as flags were
      // raised; surface its final per-host verdicts and sampling volume.
      metrics_.add_counter(
          "obs.sampler_samples",
          static_cast<std::int64_t>(sampler_->samples_taken()));
      for (int i = 0; i < n_; ++i) {
        metrics_.set_gauge("host" + std::to_string(i) + ".straggler_z",
                           sampler_->detector().last_z(i));
      }
    } else {
      // Sampler off: fall back to the sim backend's post-run replay so the
      // straggler columns exist either way.
      obs::StragglerDetector detector(n_, cfg_.sampler);
      obs::replay_stragglers(*flight_, detector, &metrics_, tracer_.get());
      for (int i = 0; i < n_; ++i) {
        metrics_.set_gauge("host" + std::to_string(i) + ".straggler_z",
                           detector.last_z(i));
      }
    }
    maybe_dump_retry_storm();
    report.flight = flight_;
    if (tracer_ != nullptr) {
      for (const obs::HostOverlap& o : obs::overlap_by_host(*tracer_)) {
        metrics_.set_gauge("host" + std::to_string(o.host) + ".overlap_ratio",
                           o.ratio);
      }
      report.trace = tracer_;
    }
    if (profiler_ != nullptr) report.profile = profiler_->snapshot();
    report.metrics = metrics_.snapshot();
  }

  void maybe_dump_retry_storm() {
    const obs::FlightConfig& fcfg = cfg_.flight;
    if (fcfg.retry_storm_threshold == 0 || fcfg.blackbox_path.empty()) return;
    std::uint64_t reinjected = 0;
    for (int i = 0; i < n_; ++i) {
      reinjected += host(i).node->chunks_reinjected();
    }
    if (reinjected >= fcfg.retry_storm_threshold &&
        !blackbox_written_.exchange(true)) {
      obs::write_blackbox(*flight_, fcfg.blackbox_path, "retry-storm");
    }
  }

  ClusterConfig cfg_;
  JoinSpec spec_;
  int n_;
  std::vector<SharedQuery> queries_;
  std::size_t num_queries_;
  sim::Engine::WallClock::time_point epoch_;
  detail::RunPlan plan_;
  rt::WallBarrier setup_barrier_;
  rt::WallBarrier start_barrier_;
  rt::WallBarrier replicate_barrier_;
  rt::WallBarrier join_barrier_;
  std::vector<std::unique_ptr<HostRt>> hosts_;
  std::vector<std::unique_ptr<rt::ShmLink>> links_;
  std::vector<std::unique_ptr<rt::ShmLink>> repair_links_;

  // ----- replication / exact-recovery state ----------------------------
  /// Per host: the successor-held copy of its predecessor's state. Written
  /// by host i's receiver (on i's engine), read by i's adoption task.
  std::vector<detail::ReplicaStore> replicas_;
  /// Per host: serialized records for the replication phase (engine-thread
  /// private; must outlive replicas_drained — sends are by reference).
  std::vector<std::vector<std::vector<std::byte>>> replica_records_;
  SimTime crash_at_ = 0;          ///< watcher thread; read after join
  SimTime adoption_done_at_ = 0;  ///< adopter engine; read after join

  // ----- shared runner state, guarded by mu_ ---------------------------
  std::mutex mu_;
  std::condition_variable crash_cv_;
  bool join_started_ = false;
  bool finished_ = false;
  bool repairing_ = false;
  bool recovering_ = false;  ///< a crash is being exactly recovered
  int adopter_ = -1;
  /// Recovery tasks (adoption + per-survivor replays) still running;
  /// termination is held off until all of them finished.
  int recovery_pending_ = 0;
  std::set<int> crashed_;
  /// Per origin: sequence numbers of its chunks that completed a revolution.
  std::vector<std::set<std::uint32_t>> retired_board_;
  /// Per host: injector finished, and (strictly after that) all of the
  /// host's local chunks acked. Written only from that host's engine
  /// thread; read by the detector under mu_.
  std::vector<bool> acked_clear_;
  std::vector<bool> injector_done_;
  std::vector<std::deque<SimTime>> inject_times_;

  // ----- observability --------------------------------------------------
  /// Always installed on every host engine (ring/node.cpp emits per hop).
  std::shared_ptr<obs::FlightRecorder> flight_;
  /// Live telemetry thread (cfg_.sampler.enabled); stopped before reports.
  std::unique_ptr<obs::LiveSampler> sampler_;
  /// First black-box trigger wins (crash watcher threads race the end-of-
  /// run retry-storm check).
  std::atomic<bool> blackbox_written_{false};
  std::shared_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::prof::KernelProfiler> profiler_;
  obs::MetricsRegistry metrics_;
  std::atomic<std::uint64_t> probe_tuples_{0};
};

}  // namespace

SharedRunReport run_rt(const ClusterConfig& cluster, const JoinSpec& spec,
                       const rel::Relation& rotating,
                       const std::vector<SharedQuery>& queries,
                       FragmentInputs* frags) {
  RtRunner runner(cluster, spec, rotating, queries, frags);
  return runner.execute();
}

}  // namespace cj::cyclo
