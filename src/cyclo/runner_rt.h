// The wall-clock runtime backend's run entry point (Backend::kRt).
//
// run_rt() executes the same plan as the sim Runner — same validation, same
// distribution, same kernel closures (runner_common.h), same unmodified
// roundabout protocol (ring/node.cpp) — but as real concurrency: one OS
// thread and wall-clock engine per host, a real worker-thread pool per
// host's CorePool, and shared-memory wires (rt/wire.h) between ring
// neighbors. See docs/RUNTIME.md.
#pragma once

#include <vector>

#include "cyclo/cyclo_join.h"

namespace cj::cyclo {

/// Runs the query set on the rt backend and reports like the sim runner
/// (matches/checksums are identical; timings are wall-clock nanoseconds).
/// Supports crash-only fault plans; link faults and slowdowns are rejected.
/// A non-null `frags` skips the distribute step and moves the pre-placed
/// per-host fragments in (see CycloJoin::run_fragments).
SharedRunReport run_rt(const ClusterConfig& cluster, const JoinSpec& spec,
                       const rel::Relation& rotating,
                       const std::vector<SharedQuery>& queries,
                       FragmentInputs* frags = nullptr);

}  // namespace cj::cyclo
