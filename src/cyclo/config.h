// Configuration of a cyclo-join run: the simulated cluster, the transport,
// and the local join algorithm.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "join/radix.h"
#include "net/link.h"
#include "obs/flight.h"
#include "obs/prof.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "rdma/verbs.h"
#include "rel/relation.h"
#include "ring/node.h"
#include "ring/rdma_wire.h"
#include "sim/fault.h"
#include "tcpsim/tcp.h"

namespace cj::cyclo {

enum class Transport { kRdma, kTcp };

/// Execution backend. kSim runs the cluster on the deterministic
/// single-threaded DES engine (virtual time, simulated transports). kRt
/// executes the same protocol as real concurrency: one OS thread plus a
/// wall-clock engine per host, real worker threads for the join kernels,
/// and shared-memory wires between neighbors (docs/RUNTIME.md). The
/// roundabout protocol itself is backend-agnostic; results are identical.
enum class Backend { kSim, kRt };

enum class Algorithm { kHashJoin, kSortMergeJoin, kNestedLoops };

struct ClusterConfig {
  /// Execution backend; see Backend. The rt backend ignores the simulated
  /// transport/link knobs below and supports crash-only fault plans.
  Backend backend = Backend::kSim;
  /// Ring size (number of hosts). The paper's testbed has up to six.
  int num_hosts = 6;
  /// Cores per host (the paper's blades are quad-core Xeons).
  int cores_per_host = 4;
  /// Calibrates this machine's measured CPU costs to the simulated host's
  /// core speed (see sim::CorePool). >1 slows the virtual host down.
  double cpu_scale = 1.0;
  /// Optional per-host overrides (heterogeneous clusters / stragglers);
  /// host i runs at cpu_scale * per_host_cpu_scale[i]. Empty = uniform.
  /// Paper Sec. V-D: the ring buffers keep one slow host from immediately
  /// stalling the rest of the ring. The rt backend honors values > 1 by
  /// stretching each probe to scale x its measured wall time on a real
  /// core (cpu_scale itself stays sim-only: wall time is already real).
  std::vector<double> per_host_cpu_scale;
  /// Billed whenever a core switches between different work tags — models
  /// the scheduler + cache-pollution overhead the paper attributes to
  /// kernel TCP (Sec. V-G). Zero for pure-RDMA experiments.
  SimDuration context_switch_cost = 0;

  net::LinkSpec link;
  Transport transport = Transport::kRdma;
  rdma::DeviceAttr rdma_attr;
  ring::RdmaWireConfig rdma_wire;
  tcpsim::TcpModelConfig tcp;
  ring::NodeConfig node;

  /// Fault schedule for this run. A non-empty plan switches the ring into
  /// resilient mode (framed messages, retire board, ring repair) and
  /// requires the RDMA transport; an empty plan leaves every code path
  /// byte-identical to a build without fault injection. Knobs for the
  /// resilient protocol itself (ack timeout, re-injection limit) live in
  /// node.resilience; its enabled/host_id/num_hosts fields are derived.
  sim::FaultPlan fault;

  /// Tracing knobs. When enabled, the runner installs an obs::Tracer on
  /// the engine for the run and attaches it to RunReport::trace.
  obs::TraceConfig trace;

  /// Kernel profiling knobs. When enabled, measured kernel regions record
  /// hardware-counter (or fallback cpu_ns) deltas per (host, phase) into
  /// RunReport::profile. Counter reads run inside measured closures, so a
  /// profiled run's virtual timings are perturbed — use for attribution,
  /// not for golden figures (docs/OBSERVABILITY.md).
  obs::prof::ProfileConfig profile;

  /// Flight-recorder sizing + black-box triggers. Unlike the tracer the
  /// recorder is *always on*: both runners install one unconditionally
  /// (bounded memory, lock-free emits) and attach it to RunReport::flight.
  obs::FlightConfig flight;

  /// Live telemetry (rt backend): a background LiveSampler snapshots the
  /// metrics registry and runs the straggler detector while the ring spins.
  /// The sim backend replays the recorder through the same detector after
  /// the run, so both backends report the same straggler columns.
  obs::SamplerConfig sampler;
};

struct JoinSpec {
  Algorithm algorithm = Algorithm::kHashJoin;
  /// Concurrent join tasks per host during the join phase (the paper
  /// sweeps 1..4 "join threads" in Fig. 12).
  int join_threads = 4;
  /// Band half-width for sort-merge band joins (0 = equi-join).
  std::uint32_t band = 0;
  /// Predicate for the nested-loops fallback (must be set for kNestedLoops).
  std::function<bool(const rel::Tuple&, const rel::Tuple&)> predicate;
  /// Radix tuning for the hash join.
  join::RadixConfig radix;
  /// Materialize output tuples (tests/examples) instead of count+checksum.
  bool materialize = false;
};

}  // namespace cj::cyclo
