#include "cyclo/chunk.h"

#include <cstring>

#include "obs/prof.h"

namespace cj::cyclo {

namespace {

constexpr std::size_t kHeaderBytes = sizeof(ChunkHeader);
constexpr std::size_t kAlign = 8;  // chunk starts 8-aligned within the slab

std::size_t aligned(std::size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

}  // namespace

std::size_t ChunkWriter::tuples_per_chunk(std::size_t runs) const {
  const std::size_t overhead = kHeaderBytes + runs * sizeof(PartitionRun);
  CJ_CHECK_MSG(max_payload_ > overhead + sizeof(rel::Tuple),
               "ring buffer too small for even one tuple per chunk");
  return (max_payload_ - overhead) / sizeof(rel::Tuple);
}

namespace {

// Low-level emit shared by the three builders. Chunks are appended to the
// slab back-to-back (8-byte aligned).
class SlabBuilder {
 public:
  /// Pre-sizes the backing slab (an upper bound is fine) so emitting chunks
  /// appends without geometric reallocation — this code runs inside the
  /// measured setup closures, where every copy is billed as virtual time.
  void reserve(std::size_t bytes, std::size_t chunks) {
    bytes_.reserve(bytes);
    entries_.reserve(chunks);
  }

  void emit(ChunkKind kind, int origin, int radix_bits,
            std::span<const PartitionRun> runs, std::span<const rel::Tuple> tuples) {
    const std::size_t payload =
        kHeaderBytes + runs.size_bytes() + tuples.size_bytes();
    const std::size_t offset = aligned(bytes_.size());
    bytes_.resize(offset + payload);

    ChunkHeader header{};
    header.magic = kChunkMagic;
    header.origin_host = static_cast<std::uint16_t>(origin);
    header.kind = static_cast<std::uint8_t>(kind);
    header.radix_bits = static_cast<std::uint8_t>(radix_bits);
    header.num_runs = static_cast<std::uint32_t>(runs.size());
    header.num_tuples = static_cast<std::uint32_t>(tuples.size());

    std::byte* out = bytes_.data() + offset;
    std::memcpy(out, &header, kHeaderBytes);
    if (!runs.empty()) {
      std::memcpy(out + kHeaderBytes, runs.data(), runs.size_bytes());
    }
    if (!tuples.empty()) {
      std::memcpy(out + kHeaderBytes + runs.size_bytes(), tuples.data(),
                  tuples.size_bytes());
    }
    entries_.push_back({offset, payload});
    total_tuples_ += tuples.size();
  }

  ChunkSlab finish() {
    return ChunkSlab(std::move(bytes_), std::move(entries_), total_tuples_);
  }

 private:
  std::vector<std::byte> bytes_;
  std::vector<ChunkSlab::Entry> entries_;
  std::uint64_t total_tuples_ = 0;
};

}  // namespace

ChunkSlab ChunkWriter::from_partitioned(const join::PartitionedData& data,
                                        int origin_host) const {
  obs::prof::ScopedProfile prof(obs::prof::current(), "chunk_memcpy",
                                data.all_tuples().size());
  SlabBuilder builder;
  std::vector<PartitionRun> runs;
  std::size_t chunk_tuples = 0;
  std::size_t chunk_begin = 0;  // index into data.all_tuples()

  auto tuples = data.all_tuples();
  // Upper bound: every chunk full, plus one run-directory entry per chunk
  // boundary and per partition.
  const std::size_t max_chunks =
      tuples.size() / std::max<std::size_t>(1, tuples_per_chunk(1)) + 1;
  builder.reserve(tuples.size_bytes() +
                      (max_chunks + data.num_partitions()) *
                          (kHeaderBytes + sizeof(PartitionRun) + kAlign),
                  max_chunks);
  auto flush = [&] {
    if (chunk_tuples == 0) return;
    builder.emit(ChunkKind::kPartitioned, origin_host, data.bits(), runs,
                 tuples.subspan(chunk_begin, chunk_tuples));
    chunk_begin += chunk_tuples;
    chunk_tuples = 0;
    runs.clear();
  };

  // Greedy packing: walk partitions in order (they are contiguous in the
  // clustered layout) and split a partition into multiple runs when it does
  // not fit the remaining space.
  for (std::uint32_t p = 0; p < data.num_partitions(); ++p) {
    std::size_t remaining = data.partition(p).size();
    while (remaining > 0) {
      // +1 run for the piece we are about to add.
      std::size_t capacity = tuples_per_chunk(runs.size() + 1);
      if (chunk_tuples >= capacity) {
        flush();
        capacity = tuples_per_chunk(1);
      }
      const std::size_t take = std::min(remaining, capacity - chunk_tuples);
      runs.push_back(PartitionRun{p, static_cast<std::uint32_t>(take)});
      chunk_tuples += take;
      remaining -= take;
    }
  }
  flush();
  return builder.finish();
}

ChunkSlab ChunkWriter::from_sorted(std::span<const rel::Tuple> sorted,
                                   int origin_host) const {
  obs::prof::ScopedProfile prof(obs::prof::current(), "chunk_memcpy",
                                sorted.size());
  SlabBuilder builder;
  const std::size_t per_chunk = tuples_per_chunk(0);
  const std::size_t max_chunks = sorted.size() / per_chunk + 1;
  builder.reserve(sorted.size_bytes() + max_chunks * (kHeaderBytes + kAlign),
                  max_chunks);
  for (std::size_t begin = 0; begin < sorted.size(); begin += per_chunk) {
    const std::size_t count = std::min(per_chunk, sorted.size() - begin);
    builder.emit(ChunkKind::kSorted, origin_host, 0, {},
                 sorted.subspan(begin, count));
  }
  return builder.finish();
}

ChunkSlab ChunkWriter::from_raw(std::span<const rel::Tuple> tuples,
                                int origin_host) const {
  obs::prof::ScopedProfile prof(obs::prof::current(), "chunk_memcpy",
                                tuples.size());
  SlabBuilder builder;
  const std::size_t per_chunk = tuples_per_chunk(0);
  const std::size_t max_chunks = tuples.size() / per_chunk + 1;
  builder.reserve(tuples.size_bytes() + max_chunks * (kHeaderBytes + kAlign),
                  max_chunks);
  for (std::size_t begin = 0; begin < tuples.size(); begin += per_chunk) {
    const std::size_t count = std::min(per_chunk, tuples.size() - begin);
    builder.emit(ChunkKind::kRaw, origin_host, 0, {}, tuples.subspan(begin, count));
  }
  return builder.finish();
}

ChunkView decode_chunk(std::span<const std::byte> payload) {
  CJ_CHECK_MSG(payload.size() >= kHeaderBytes, "truncated chunk header");
  ChunkHeader header;
  std::memcpy(&header, payload.data(), kHeaderBytes);
  CJ_CHECK_MSG(header.magic == kChunkMagic, "bad chunk magic");

  const std::size_t runs_bytes = header.num_runs * sizeof(PartitionRun);
  const std::size_t tuples_bytes = header.num_tuples * sizeof(rel::Tuple);
  CJ_CHECK_MSG(payload.size() == kHeaderBytes + runs_bytes + tuples_bytes,
               "chunk length mismatch");

  ChunkView view;
  view.kind = static_cast<ChunkKind>(header.kind);
  view.origin_host = header.origin_host;
  view.radix_bits = header.radix_bits;
  view.runs = std::span<const PartitionRun>(
      reinterpret_cast<const PartitionRun*>(payload.data() + kHeaderBytes),
      header.num_runs);
  view.tuples = std::span<const rel::Tuple>(
      reinterpret_cast<const rel::Tuple*>(payload.data() + kHeaderBytes + runs_bytes),
      header.num_tuples);

  if (view.kind == ChunkKind::kPartitioned) {
    std::uint64_t run_total = 0;
    for (const auto& run : view.runs) run_total += run.count;
    CJ_CHECK_MSG(run_total == header.num_tuples, "chunk run directory mismatch");
  }
  return view;
}

}  // namespace cj::cyclo
