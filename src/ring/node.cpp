#include "ring/node.h"

#include <algorithm>

namespace cj::ring {

namespace {
constexpr std::size_t kCreditBytes = 8;  // tiny control message
}

RoundaboutNode::RoundaboutNode(sim::Engine& engine, sim::CorePool& cores,
                               Wire* in_wire, Wire* out_wire, NodeConfig config)
    : engine_(engine),
      cores_(cores),
      in_wire_(in_wire),
      out_wire_(out_wire),
      config_(config),
      done_receiver_(engine),
      done_transmitter_(engine),
      done_credits_(engine),
      done_recycles_(engine) {
  CJ_CHECK(config_.buffer_bytes >= 64);
  CJ_CHECK((in_wire == nullptr) == (out_wire == nullptr));
  if (in_wire != nullptr) {
    CJ_CHECK_MSG(config_.num_buffers >= 2,
                 "a connected roundabout node needs at least two ring buffers");
  } else {
    CJ_CHECK(config_.num_buffers >= 1);
  }
  if (config_.injection_window == 0) {
    config_.injection_window = std::max(1, config_.num_buffers - 1);
  }
  ring_slab_.resize(static_cast<std::size_t>(config_.num_buffers) *
                    config_.buffer_bytes);
  credit_rx_slab_.resize(static_cast<std::size_t>(config_.num_buffers) * kCreditBytes);
  credit_tx_slot_.resize(kCreditBytes);
  inbound_ = std::make_unique<sim::Channel<InboundChunk>>(
      engine, static_cast<std::size_t>(config_.num_buffers));
  credits_ = std::make_unique<sim::Semaphore>(engine, config_.num_buffers);
  injection_window_ =
      std::make_unique<sim::Semaphore>(engine, config_.injection_window);
}

sim::Task<void> RoundaboutNode::start(NodeCounts counts,
                                      std::vector<std::span<std::byte>> local_slabs) {
  CJ_CHECK_MSG(!started_, "node started twice");
  started_ = true;
  counts_ = counts;

  if (in_wire_ == nullptr) {
    // Ring of one: no transport at all.
    CJ_CHECK_MSG(counts.arrivals == 0 && counts.sends == 0,
                 "single-host ring cannot transfer data");
    done_receiver_.set();
    done_transmitter_.set();
    done_credits_.set();
    done_recycles_.set();
    co_return;
  }

  // Register everything once, up front (paper Sec. III-C: registration is
  // too expensive to do on the data path).
  co_await in_wire_->prepare(ring_slab_);
  co_await in_wire_->prepare(credit_rx_slab_);
  co_await in_wire_->prepare(credit_tx_slot_);
  for (auto slab : local_slabs) {
    if (!slab.empty()) co_await in_wire_->prepare(slab);
  }

  // Pre-post every ring buffer for incoming data; our predecessor starts
  // with a full set of credits to match.
  for (int i = 0; i < config_.num_buffers; ++i) {
    co_await in_wire_->post_recv(static_cast<std::uint64_t>(i), buffer(i));
  }
  if (config_.use_credits) {
    // Pre-post credit receive slots (credits arrive on the out-wire).
    const std::uint64_t initial_credit_posts =
        std::min<std::uint64_t>(static_cast<std::uint64_t>(config_.num_buffers),
                                counts_.sends);
    for (std::uint64_t i = 0; i < initial_credit_posts; ++i) {
      co_await out_wire_->post_recv(
          i, std::span<std::byte>(credit_rx_slab_).subspan(i * kCreditBytes,
                                                           kCreditBytes));
      ++credit_recvs_posted_;
    }
    engine_.spawn(credit_receiver_process(), "ring-credits");
  } else {
    done_credits_.set();
  }

  engine_.spawn(receiver_process(), "ring-receiver");
  engine_.spawn(transmitter_process(), "ring-transmitter");
  if (counts_.arrivals == 0) done_recycles_.set();
}

sim::Task<InboundChunk> RoundaboutNode::next_chunk() {
  const SimTime wait_start = engine_.now();
  auto chunk = co_await inbound_->pop();
  CJ_CHECK_MSG(chunk.has_value(), "inbound queue closed while joining");
  sync_time_ += engine_.now() - wait_start;
  co_return *chunk;
}

void RoundaboutNode::forward(InboundChunk chunk) {
  CJ_CHECK(chunk.buffer_idx >= 0);
  push_outbound(SendRequest{chunk.payload, chunk.buffer_idx}, /*priority=*/true);
}

void RoundaboutNode::retire(InboundChunk chunk) {
  CJ_CHECK(chunk.buffer_idx >= 0);
  engine_.spawn(recycle(chunk.buffer_idx), "ring-recycle");
  // Zero-length retire ack to the successor (the chunk's origin): reopens
  // its injection window. Rides the data wire with forward priority.
  push_outbound(
      SendRequest{std::span<const std::byte>(credit_tx_slot_.data(), 0), -1},
      /*priority=*/true);
}

sim::Task<void> RoundaboutNode::send_local(std::span<const std::byte> data) {
  CJ_CHECK_MSG(!data.empty(), "empty chunks cannot be injected");
  co_await injection_window_->acquire();
  push_outbound(SendRequest{data, -1}, /*priority=*/false);
}

void RoundaboutNode::push_outbound(SendRequest request, bool priority) {
  if (priority) {
    pending_forwards_.push_back(request);
  } else {
    pending_locals_.push_back(request);
  }
  if (!outbound_waiters_.empty()) {
    auto h = outbound_waiters_.front();
    outbound_waiters_.pop_front();
    engine_.schedule_now(h);
  }
}

RoundaboutNode::SendRequest RoundaboutNode::take_outbound() {
  // Forwards and acks drain before locals inject — the ring never clogs.
  if (!pending_forwards_.empty()) {
    SendRequest r = pending_forwards_.front();
    pending_forwards_.pop_front();
    return r;
  }
  CJ_CHECK(!pending_locals_.empty());
  SendRequest r = pending_locals_.front();
  pending_locals_.pop_front();
  return r;
}

sim::Task<void> RoundaboutNode::receiver_process() {
  for (std::uint64_t i = 0; i < counts_.arrivals; ++i) {
    const Arrival arrival = co_await in_wire_->next_arrival();
    const int idx = static_cast<int>(arrival.tag);
    if (arrival.length == 0) {
      // Retire ack: one of our local chunks completed its revolution.
      engine_.spawn(recycle(idx), "ring-recycle");
      injection_window_->release();
      continue;
    }
    ++chunks_received_;
    co_await inbound_->push(
        InboundChunk{idx, std::span<const std::byte>(buffer(idx).data(),
                                                     arrival.length)});
  }
  done_receiver_.set();
}

sim::Task<void> RoundaboutNode::transmitter_process() {
  for (std::uint64_t i = 0; i < counts_.sends; ++i) {
    // Credit first: committing to a message before a buffer is guaranteed
    // at the successor is how store-and-forward rings deadlock. (Without
    // explicit credits the transport's own backpressure plays this role.)
    if (config_.use_credits) co_await credits_->acquire();
    const SendRequest request = co_await OutboundAwaiter{this};
    co_await out_wire_->send(request.data);
    bytes_sent_ += request.data.size();
    if (request.recycle_idx >= 0) {
      engine_.spawn(recycle(request.recycle_idx), "ring-recycle");
    }
  }
  done_transmitter_.set();
}

sim::Task<void> RoundaboutNode::credit_receiver_process() {
  for (std::uint64_t received = 0; received < counts_.sends; ++received) {
    const Arrival arrival = co_await out_wire_->next_arrival();
    credits_->release();
    // Keep a credit receive slot posted while more credits are due.
    if (credit_recvs_posted_ < counts_.sends) {
      const std::uint64_t slot = arrival.tag;
      co_await out_wire_->post_recv(
          slot, std::span<std::byte>(credit_rx_slab_)
                    .subspan(slot * kCreditBytes, kCreditBytes));
      ++credit_recvs_posted_;
    }
  }
  done_credits_.set();
}

sim::Task<void> RoundaboutNode::recycle(int buffer_idx) {
  // The buffer's content has been consumed (joined and, if needed,
  // forwarded): repost it for the next incoming chunk and hand a credit
  // back to the predecessor.
  co_await in_wire_->post_recv(static_cast<std::uint64_t>(buffer_idx),
                               buffer(buffer_idx));
  if (config_.use_credits) co_await in_wire_->send(credit_tx_slot_);
  if (++recycles_done_ == counts_.arrivals) done_recycles_.set();
}

sim::Task<void> RoundaboutNode::drain() {
  co_await done_transmitter_.wait();
  co_await done_receiver_.wait();
  co_await done_recycles_.wait();
  co_await done_credits_.wait();
  if (out_wire_ != nullptr) {
    out_wire_->close_send();   // no more data to the successor
    in_wire_->close_send();    // no more credits to the predecessor
    out_wire_->close_recv();
    in_wire_->close_recv();
  }
  if (!inbound_->closed()) inbound_->close();
}

}  // namespace cj::ring
