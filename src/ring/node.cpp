#include "ring/node.h"

#include <algorithm>

#include "obs/trace.h"

namespace cj::ring {

namespace {
constexpr std::size_t kCreditBytes = 8;  // tiny control message

/// Nanoseconds -> saturated microseconds for flight-record args.
std::uint32_t to_us(SimDuration ns) {
  const SimDuration us = ns / kMicrosecond;
  if (us < 0) return 0;
  if (us > static_cast<SimDuration>(0xFFFFFFFFu)) return 0xFFFFFFFFu;
  return static_cast<std::uint32_t>(us);
}
}

RoundaboutNode::RoundaboutNode(sim::Engine& engine, sim::CorePool& cores,
                               Wire* in_wire, Wire* out_wire, NodeConfig config)
    : engine_(engine),
      cores_(cores),
      in_wire_(in_wire),
      out_wire_(out_wire),
      config_(config),
      done_receiver_(engine),
      done_transmitter_(engine),
      done_credits_(engine),
      done_recycles_(engine),
      splice_in_done_(engine, "splice-in"),
      splice_out_done_(engine, "splice-out"),
      receiver_parked_(engine, "receiver-parked"),
      credit_parked_(engine, "credit-parked"),
      done_scanner_(engine) {
  // Construction only allocates; anything questionable about the config is
  // reported by start() as a Status instead of aborting here.
  CJ_CHECK((in_wire == nullptr) == (out_wire == nullptr));
  if (config_.injection_window == 0) {
    config_.injection_window = std::max(1, config_.num_buffers - 1);
  }
  const int buffers = std::max(1, config_.num_buffers);
  ring_slab_.resize(static_cast<std::size_t>(buffers) * config_.buffer_bytes);
  credit_rx_slab_.resize(static_cast<std::size_t>(buffers) * kCreditBytes);
  credit_tx_slot_.resize(kCreditBytes);
  inbound_ = std::make_unique<sim::Channel<InboundChunk>>(
      engine, static_cast<std::size_t>(buffers), "ring-inbound");
  credits_ = std::make_unique<sim::Semaphore>(engine, buffers, "ring-credits");
  injection_window_ = std::make_unique<sim::Semaphore>(
      engine, std::max(1, config_.injection_window), "injection-window");
  replica_acked_ = std::make_unique<sim::Semaphore>(engine, 0, "replica-acked");
}

sim::Task<Status> RoundaboutNode::start(NodeCounts counts,
                                        std::vector<std::span<std::byte>> local_slabs) {
  CJ_CHECK_MSG(!started_, "node started twice");
  counts_ = counts;

  // Config validation: reject configurations that cannot run (they would
  // deadlock or corrupt memory deep inside the protocol) before any entity
  // is spawned or any memory registered.
  if (config_.buffer_bytes < 64) {
    co_return invalid_argument("buffer_bytes must be at least 64");
  }
  if (in_wire_ != nullptr) {
    if (config_.num_buffers < 2) {
      co_return invalid_argument(
          "a connected roundabout node needs at least two ring buffers");
    }
    if (config_.injection_window >= config_.num_buffers) {
      co_return invalid_argument(
          "injection_window must stay below num_buffers (deadlock freedom "
          "needs a free buffer ahead of the oldest chunk)");
    }
  } else if (config_.num_buffers < 1) {
    co_return invalid_argument("num_buffers must be positive");
  }
  started_ = true;

  if (in_wire_ == nullptr) {
    // Ring of one: no transport at all.
    CJ_CHECK_MSG(counts.arrivals == 0 && counts.sends == 0,
                 "single-host ring cannot transfer data");
    done_receiver_.set();
    done_transmitter_.set();
    done_credits_.set();
    done_recycles_.set();
    done_scanner_.set();
    co_return Status::ok();
  }

  // Register everything once, up front (paper Sec. III-C: registration is
  // too expensive to do on the data path).
  co_await in_wire_->prepare(ring_slab_);
  co_await in_wire_->prepare(credit_rx_slab_);
  co_await in_wire_->prepare(credit_tx_slot_);
  for (auto slab : local_slabs) {
    if (!slab.empty()) co_await in_wire_->prepare(slab);
  }

  // Pre-post every ring buffer for incoming data; our predecessor starts
  // with a full set of credits to match.
  for (int i = 0; i < config_.num_buffers; ++i) {
    if (resilient()) posted_idx_.insert(i);
    co_await in_wire_->post_recv(static_cast<std::uint64_t>(i), buffer(i));
  }
  if (config_.use_credits) {
    // Pre-post credit receive slots (credits arrive on the out-wire). With
    // exact counts, never more than the run will use; resilient mode has no
    // counts and keeps a full set posted.
    const std::uint64_t initial_credit_posts =
        resilient() ? static_cast<std::uint64_t>(config_.num_buffers)
                    : std::min<std::uint64_t>(
                          static_cast<std::uint64_t>(config_.num_buffers),
                          counts_.sends);
    for (std::uint64_t i = 0; i < initial_credit_posts; ++i) {
      co_await out_wire_->post_recv(
          i, std::span<std::byte>(credit_rx_slab_).subspan(i * kCreditBytes,
                                                           kCreditBytes));
      ++credit_recvs_posted_;
    }
    engine_.spawn(resilient() ? credit_receiver_resilient()
                              : credit_receiver_process(),
                  "ring-credits");
  } else {
    done_credits_.set();
  }

  if (resilient()) {
    seen_.assign(static_cast<std::size_t>(config_.resilience.num_hosts), {});
    engine_.spawn(receiver_resilient(), "ring-receiver");
    engine_.spawn(transmitter_resilient(), "ring-transmitter");
    engine_.spawn(scanner_process(), "ring-scanner");
  } else {
    engine_.spawn(receiver_process(), "ring-receiver");
    engine_.spawn(transmitter_process(), "ring-transmitter");
    done_scanner_.set();
    if (counts_.arrivals == 0) done_recycles_.set();
  }
  co_return Status::ok();
}

sim::Task<InboundChunk> RoundaboutNode::next_chunk() {
  const SimTime wait_start = engine_.now();
  obs::Tracer* const t = engine_.tracer();
  if (t != nullptr) t->begin(wait_start, config_.trace_host, "join", "sync");
  auto chunk = co_await inbound_->pop();
  CJ_CHECK_MSG(chunk.has_value(), "inbound queue closed while joining");
  if (t != nullptr) t->end(engine_.now(), config_.trace_host, "join");
  sync_time_ += engine_.now() - wait_start;
  co_return *chunk;
}

void RoundaboutNode::forward(InboundChunk chunk) {
  CJ_CHECK(chunk.buffer_idx >= 0);
  trace_instant("forward", chunk.buffer_idx);
  if (resilient()) {
    // The buffer already holds header + payload contiguously. Bump the hop
    // counter in place (re-sealing the checksum) so the frame carries how
    // far around the ring it has travelled, then forward the whole frame.
    const auto message = std::span<std::byte>(
        buffer(chunk.buffer_idx).data(), kFrameBytes + chunk.payload.size());
    const std::uint8_t hops = stamp_hop(message);
    max_hops_observed_ = std::max(max_hops_observed_, static_cast<int>(hops));
    flight_emit(obs::HopKind::kForward, chunk.origin, chunk.seq, hops,
                to_us(engine_.now() - chunk.recv_ts));
    push_outbound(SendRequest{std::span<const std::byte>(
                                  message.data(), message.size()),
                              chunk.buffer_idx},
                  /*priority=*/true);
    return;
  }
  flight_emit(obs::HopKind::kForward, chunk.origin, chunk.seq, 0,
              to_us(engine_.now() - chunk.recv_ts));
  push_outbound(SendRequest{chunk.payload, chunk.buffer_idx}, /*priority=*/true);
}

void RoundaboutNode::retire(InboundChunk chunk, bool send_ack) {
  CJ_CHECK(chunk.buffer_idx >= 0);
  trace_instant("retire", chunk.buffer_idx);
  flight_emit(obs::HopKind::kRetire, chunk.origin, chunk.seq,
              static_cast<std::uint8_t>(std::min(chunk.hops, 255)),
              to_us(engine_.now() - chunk.recv_ts));
  if (resilient()) {
    // A chunk injected at `origin` arrives here (pred(origin)) with hop
    // counter num_hosts - 2 after one full revolution: +1 for the final
    // (implicit) hop it just completed, +1 for the injection hop.
    if (config_.resilience.num_hosts > 1) {
      revolutions_observed_ += static_cast<std::uint64_t>(chunk.hops + 2) /
                               static_cast<std::uint64_t>(
                                   config_.resilience.num_hosts);
    }
    spawn_recycle(chunk.buffer_idx);
    if (send_ack && !stop_) {
      // Header-only ack naming the exact (origin, seq): survives re-orders
      // and duplicates, and a corrupted copy fails its checksum instead of
      // acknowledging the wrong chunk.
      SendRequest ack;
      ack.framed = true;
      ack.header = make_frame(FrameKind::kRetireAck, chunk.origin, chunk.seq,
                              std::span<const std::byte>());
      push_outbound(ack, /*priority=*/true);
    }
    return;
  }
  engine_.spawn(recycle(chunk.buffer_idx), "ring-recycle");
  // Zero-length retire ack to the successor (the chunk's origin): reopens
  // its injection window. Rides the data wire with forward priority.
  push_outbound(
      SendRequest{std::span<const std::byte>(credit_tx_slot_.data(), 0), -1},
      /*priority=*/true);
}

sim::Task<void> RoundaboutNode::send_local(std::span<const std::byte> data,
                                           bool replay) {
  CJ_CHECK_MSG(!data.empty(), "empty chunks cannot be injected");
  if (resilient() && stop_) co_return;  // dead/stopped node injects nothing
  co_await injection_window_->acquire();
  if (resilient()) {
    if (stop_) co_return;  // dying or stopping node: nothing more to inject
    trace_instant("inject", static_cast<std::int64_t>(data.size()));
    const std::uint32_t seq = next_seq_++;
    flight_emit(obs::HopKind::kInject, config_.resilience.host_id, seq, 0,
                static_cast<std::uint32_t>(
                    std::min<std::size_t>(data.size(), 0xFFFFFFFFu)));
    const std::uint8_t flags = replay ? kFrameFlagReplay : 0;
    SendRequest request;
    request.data = data;
    request.framed = true;
    request.header = make_frame(FrameKind::kData, config_.resilience.host_id,
                                seq, data, flags,
                                config_.resilience.query_group);
    // Hold the payload until its retire ack lands — the retransmission
    // buffer is simply the local slab the chunk already lives in.
    outstanding_[seq] =
        Outstanding{data, engine_.now(), engine_.now(), 0, flags};
    push_outbound(request, /*priority=*/false);
    co_return;
  }
  CJ_CHECK_MSG(!replay, "replay injection is a resilient-mode operation");
  trace_instant("inject", static_cast<std::int64_t>(data.size()));
  flight_emit(obs::HopKind::kInject, /*origin=*/-1, 0, 0,
              static_cast<std::uint32_t>(
                  std::min<std::size_t>(data.size(), 0xFFFFFFFFu)));
  push_outbound(SendRequest{data, -1}, /*priority=*/false);
}

sim::Task<void> RoundaboutNode::prepare_memory(std::span<std::byte> region) {
  CJ_CHECK_MSG(started_, "prepare_memory before start()");
  if (in_wire_ != nullptr && !region.empty()) {
    co_await in_wire_->prepare(region);
  }
}

sim::Task<void> RoundaboutNode::send_replica(std::span<const std::byte> data) {
  CJ_CHECK_MSG(resilient() && config_.resilience.replicate,
               "send_replica needs resilience.replicate");
  CJ_CHECK_MSG(!data.empty(), "empty replica records cannot be sent");
  if (stop_) co_return;
  co_await injection_window_->acquire();
  if (stop_) co_return;
  const std::uint32_t seq = replica_seq_++;
  ++replicas_sent_;
  replica_bytes_ += data.size();
  trace_instant("replica", static_cast<std::int64_t>(data.size()));
  SendRequest request;
  request.data = data;
  request.framed = true;
  request.header =
      make_frame(FrameKind::kReplica, config_.resilience.host_id, seq, data);
  replica_outstanding_[seq] =
      Outstanding{data, engine_.now(), engine_.now(), 0, 0};
  push_outbound(request, /*priority=*/false);
}

sim::Task<void> RoundaboutNode::replicas_drained() {
  for (std::uint64_t i = 0; i < replicas_sent_; ++i) {
    co_await replica_acked_->acquire();
  }
}

void RoundaboutNode::adopt(int origin) {
  CJ_CHECK_MSG(resilient() && config_.resilience.replicate,
               "adopt needs resilience.replicate");
  adopted_origin_ = origin;
}

sim::Task<void> RoundaboutNode::send_adopted(std::uint32_t seq,
                                             std::span<const std::byte> payload,
                                             bool send_now) {
  CJ_CHECK_MSG(adopted_origin_ >= 0, "send_adopted before adopt()");
  if (stop_) co_return;
  co_await injection_window_->acquire();
  if (stop_) co_return;
  ++adopted_injected_;
  adopted_outstanding_[seq] =
      Outstanding{payload, engine_.now(), engine_.now(), 0, 0};
  if (!send_now) co_return;  // likely still circulating; scanner takes over
  trace_instant("adopt-inject", seq);
  flight_emit(obs::HopKind::kAdopt, adopted_origin_, seq, 0, 0);
  SendRequest request;
  request.data = payload;
  request.framed = true;
  request.header = make_frame(FrameKind::kData, adopted_origin_, seq, payload,
                              /*flags=*/0, config_.resilience.query_group);
  push_outbound(request, /*priority=*/false);
}

void RoundaboutNode::trace_instant(std::string_view name, std::int64_t arg) {
  if (obs::Tracer* t = engine_.tracer()) {
    t->instant(engine_.now(), config_.trace_host, "ring", name, arg);
  }
}

void RoundaboutNode::flight_emit(obs::HopKind kind, int origin,
                                 std::uint32_t seq, std::uint8_t hops,
                                 std::uint32_t arg_us) {
  if (obs::FlightRecorder* f = engine_.flight()) {
    obs::FlightRecord r;
    r.ts = engine_.now();
    r.seq = seq;
    r.origin =
        origin < 0 ? obs::kNoOrigin : static_cast<std::uint16_t>(origin);
    r.query = config_.resilience.query_group;
    r.host = static_cast<std::int16_t>(config_.trace_host);
    r.kind = kind;
    r.revolution = hops;
    r.arg_us = arg_us;
    f->emit(config_.trace_host, r);
  }
}

void RoundaboutNode::push_outbound(SendRequest request, bool priority) {
  if (priority) {
    pending_forwards_.push_back(request);
  } else {
    pending_locals_.push_back(request);
  }
  if (!outbound_waiters_.empty()) {
    auto h = outbound_waiters_.front();
    outbound_waiters_.pop_front();
    engine_.schedule_now(h);
  }
}

RoundaboutNode::SendRequest RoundaboutNode::take_outbound() {
  // Forwards and acks drain before locals inject — the ring never clogs.
  if (!pending_forwards_.empty()) {
    SendRequest r = pending_forwards_.front();
    pending_forwards_.pop_front();
    return r;
  }
  CJ_CHECK(!pending_locals_.empty());
  SendRequest r = pending_locals_.front();
  pending_locals_.pop_front();
  return r;
}

void RoundaboutNode::spawn_recycle(int buffer_idx) {
  if (resilient()) ++recycles_inflight_;
  engine_.spawn(recycle(buffer_idx), "ring-recycle");
}

sim::Task<void> RoundaboutNode::receiver_process() {
  for (std::uint64_t i = 0; i < counts_.arrivals; ++i) {
    const Arrival arrival = co_await in_wire_->next_arrival();
    const int idx = static_cast<int>(arrival.tag);
    if (arrival.length == 0) {
      // Retire ack: one of our local chunks completed its revolution.
      trace_instant("ack", idx);
      flight_emit(obs::HopKind::kAck, /*origin=*/-1, 0, 0, 0);
      engine_.spawn(recycle(idx), "ring-recycle");
      injection_window_->release();
      continue;
    }
    ++chunks_received_;
    trace_instant("recv", static_cast<std::int64_t>(arrival.length));
    flight_emit(obs::HopKind::kRecv, /*origin=*/-1, 0, 0,
                static_cast<std::uint32_t>(arrival.length));
    InboundChunk chunk{idx, std::span<const std::byte>(buffer(idx).data(),
                                                       arrival.length)};
    chunk.recv_ts = engine_.now();
    co_await inbound_->push(chunk);
  }
  done_receiver_.set();
}

sim::Task<void> RoundaboutNode::transmitter_process() {
  for (std::uint64_t i = 0; i < counts_.sends; ++i) {
    // Credit first: committing to a message before a buffer is guaranteed
    // at the successor is how store-and-forward rings deadlock. (Without
    // explicit credits the transport's own backpressure plays this role.)
    if (config_.use_credits) co_await credits_->acquire();
    const SendRequest request = co_await OutboundAwaiter{this};
    obs::Tracer* const t = engine_.tracer();
    if (t != nullptr) {
      t->begin(engine_.now(), config_.trace_host, "tx", "send",
               static_cast<std::int64_t>(request.data.size()));
    }
    const Status status = co_await out_wire_->send(request.data);
    if (t != nullptr) t->end(engine_.now(), config_.trace_host, "tx");
    CJ_CHECK_MSG(status.is_ok(), "fault-free send failed");
    bytes_sent_ += request.data.size();
    if (request.recycle_idx >= 0) {
      engine_.spawn(recycle(request.recycle_idx), "ring-recycle");
    }
  }
  done_transmitter_.set();
}

sim::Task<void> RoundaboutNode::credit_receiver_process() {
  for (std::uint64_t received = 0; received < counts_.sends; ++received) {
    const Arrival arrival = co_await out_wire_->next_arrival();
    credits_->release();
    // Keep a credit receive slot posted while more credits are due.
    if (credit_recvs_posted_ < counts_.sends) {
      const std::uint64_t slot = arrival.tag;
      co_await out_wire_->post_recv(
          slot, std::span<std::byte>(credit_rx_slab_)
                    .subspan(slot * kCreditBytes, kCreditBytes));
      ++credit_recvs_posted_;
    }
  }
  done_credits_.set();
}

sim::Task<void> RoundaboutNode::recycle(int buffer_idx) {
  if (resilient()) {
    // Capture the wire: if a splice swaps in_wire_ while this coroutine is
    // suspended, the replacement wire already re-posted this buffer (it was
    // in posted_idx_) and counted it in the new predecessor's credits, so
    // both the post and the credit must go to the old, dead wire (where
    // they are harmless) rather than double-count on the new one.
    Wire* wire = in_wire_;
    if (!stop_) {
      posted_idx_.insert(buffer_idx);
      co_await wire->post_recv(static_cast<std::uint64_t>(buffer_idx),
                               buffer(buffer_idx));
    }
    if (!stop_ && config_.use_credits) {
      const Status status = co_await wire->send(credit_tx_slot_);
      if (!status.is_ok()) ++send_failures_;  // predecessor died; splice re-bases
    }
    if (--recycles_inflight_ == 0 && stop_) done_recycles_.set();
    co_return;
  }
  // The buffer's content has been consumed (joined and, if needed,
  // forwarded): repost it for the next incoming chunk and hand a credit
  // back to the predecessor.
  co_await in_wire_->post_recv(static_cast<std::uint64_t>(buffer_idx),
                               buffer(buffer_idx));
  if (config_.use_credits) co_await in_wire_->send(credit_tx_slot_);
  if (++recycles_done_ == counts_.arrivals) done_recycles_.set();
}

// --------------------------------------------------- resilient entities

sim::Task<void> RoundaboutNode::receiver_resilient() {
  while (!stop_) {
    const Arrival arrival = co_await in_wire_->next_arrival();
    if (!arrival.ok) {
      // The wire died under us. Either this node is stopping, or the
      // predecessor crashed and the control plane will splice a
      // replacement wire in — park until it does.
      if (stop_) break;
      receiver_parked_.set();
      co_await splice_in_done_.wait();
      continue;
    }
    const int idx = static_cast<int>(arrival.tag);
    posted_idx_.erase(idx);
    FrameHeader header;
    const auto message =
        std::span<const std::byte>(buffer(idx).data(), arrival.length);
    if (!decode_frame(message, &header)) {
      // Corrupted in flight: drop it. The origin still holds the payload
      // and re-injects after its ack timeout.
      ++discarded_corrupt_;
      trace_instant("discard", idx);
      flight_emit(obs::HopKind::kDiscard, /*origin=*/-1, 0, 0,
                  static_cast<std::uint32_t>(arrival.length));
      spawn_recycle(idx);
      continue;
    }
    if (header.kind == static_cast<std::uint8_t>(FrameKind::kRetireAck)) {
      trace_instant("ack", header.seq);
      handle_ack(header);
      spawn_recycle(idx);
      continue;
    }
    if (header.kind == static_cast<std::uint8_t>(FrameKind::kReplicaAck)) {
      if (static_cast<int>(header.origin) == config_.resilience.host_id) {
        // One of our replica records is durably stored at the successor.
        trace_instant("replica-ack", header.seq);
        if (replica_outstanding_.erase(header.seq) > 0) {
          injection_window_->release();
          replica_acked_->release();
        }
        spawn_recycle(idx);
      } else {
        // Replica acks travel the long way home (the replica's one-hop
        // sender is our topological predecessor-of-predecessor relative to
        // the ack): forward anything not addressed to us.
        push_outbound(SendRequest{std::span<const std::byte>(
                                      buffer(idx).data(), kFrameBytes),
                                  idx},
                      /*priority=*/true);
      }
      continue;
    }
    if (static_cast<int>(header.origin) >= config_.resilience.num_hosts) {
      ++discarded_corrupt_;  // valid checksum but impossible origin
      trace_instant("discard", idx);
      flight_emit(obs::HopKind::kDiscard, /*origin=*/-1, header.seq,
                  header.reserved[0], static_cast<std::uint32_t>(arrival.length));
      spawn_recycle(idx);
      continue;
    }
    if (header.kind == static_cast<std::uint8_t>(FrameKind::kReplica)) {
      // Replication is strictly one hop: store (dedup'd), ack, recycle.
      // Never enters the inbound queue — the join loop stays oblivious.
      trace_instant("replica-recv", header.seq);
      const bool fresh = replica_seen_.insert(header.seq).second;
      if (fresh && config_.resilience.on_replica) {
        config_.resilience.on_replica(static_cast<int>(header.origin),
                                      message.subspan(kFrameBytes));
      }
      spawn_recycle(idx);
      // Always (re-)ack — a lost ack makes the sender re-send, and only a
      // fresh ack can settle it.
      SendRequest ack;
      ack.framed = true;
      ack.header = make_frame(FrameKind::kReplicaAck, header.origin,
                              header.seq, std::span<const std::byte>());
      push_outbound(ack, /*priority=*/true);
      continue;
    }
    if (header.query != config_.resilience.query_group) {
      // Data frame from another serving wave: stale. Never join, ack or
      // forward it — its own wave's origin re-injection recovers the chunk
      // if it was still live there.
      ++stale_query_discards_;
      trace_instant("stale-query", header.query);
      flight_emit(obs::HopKind::kStale, static_cast<int>(header.origin),
                  header.seq, header.reserved[0], header.query);
      spawn_recycle(idx);
      continue;
    }
    if (static_cast<int>(header.origin) == config_.resilience.host_id) {
      // Our own chunk came full circle without anyone retiring it (a lost
      // ack crossed with a re-injection). Treat arrival as the ack.
      trace_instant("ack", header.seq);
      handle_ack(header);
      spawn_recycle(idx);
      continue;
    }
    InboundChunk chunk;
    chunk.buffer_idx = idx;
    chunk.payload = message.subspan(kFrameBytes);
    chunk.recv_ts = engine_.now();
    chunk.hops = static_cast<int>(header.reserved[0]);
    chunk.origin = static_cast<int>(header.origin);
    chunk.seq = header.seq;
    chunk.replay = (header.flags & kFrameFlagReplay) != 0;
    chunk.duplicate = !seen_[chunk.origin].insert(chunk.seq).second;
    max_hops_observed_ = std::max(max_hops_observed_, chunk.hops);
    if (chunk.duplicate) {
      ++duplicates_skipped_;
      trace_instant("duplicate", chunk.seq);
      flight_emit(obs::HopKind::kDuplicate, chunk.origin, chunk.seq,
                  header.reserved[0], 0);
    }
    ++chunks_received_;
    trace_instant("recv", static_cast<std::int64_t>(arrival.length));
    flight_emit(obs::HopKind::kRecv, chunk.origin, chunk.seq,
                header.reserved[0], static_cast<std::uint32_t>(arrival.length));
    co_await inbound_->push(chunk);
  }
  done_receiver_.set();
}

void RoundaboutNode::handle_ack(const FrameHeader& header) {
  const int origin = static_cast<int>(header.origin);
  if (origin == adopted_origin_) {
    // The spliced ring routes the dead origin's acks here — this node is
    // its effective home now. Settles replica-log re-injections, including
    // circulating pre-crash copies completing their revolution.
    auto it = adopted_outstanding_.find(header.seq);
    if (it == adopted_outstanding_.end()) return;  // stale or duplicate ack
    ++recovered_;
    flight_emit(obs::HopKind::kAck, origin, header.seq, 0,
                to_us(engine_.now() - it->second.first_sent));
    adopted_outstanding_.erase(it);
    injection_window_->release();
    if (config_.resilience.on_ack) config_.resilience.on_ack();
    return;
  }
  if (origin != config_.resilience.host_id) {
    return;  // an ack for someone else's chunk would be a routing bug;
             // after a splice a stray copy can pass by — ignore it
  }
  auto it = outstanding_.find(header.seq);
  if (it == outstanding_.end()) return;  // duplicate ack: already retired
  flight_emit(obs::HopKind::kAck, origin, header.seq, 0,
              to_us(engine_.now() - it->second.first_sent));
  if (it->second.reinjects > 0) {
    ++recovered_;
  } else {
    // Clean round trip: one revolution plus the ack hop. Feeds the
    // adaptive timeout; re-injected chunks are excluded (their RTT spans
    // the timeout itself and would inflate the estimate).
    ack_rtts_.push_back(engine_.now() - it->second.first_sent);
  }
  outstanding_.erase(it);
  injection_window_->release();
  if (config_.resilience.on_ack) config_.resilience.on_ack();
}

SimDuration RoundaboutNode::current_ack_timeout() const {
  const ResilienceConfig& r = config_.resilience;
  if (!r.adaptive.enabled) return r.ack_timeout;
  const SimDuration floored = std::max(r.adaptive.floor, r.ack_timeout);
  if (ack_rtts_.size() < static_cast<std::size_t>(
                             std::max(1, r.adaptive.min_samples))) {
    return floored;
  }
  std::vector<SimDuration> sorted = ack_rtts_;
  const std::size_t p99 = (sorted.size() * 99) / 100;
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(p99),
                   sorted.end());
  const auto scaled = static_cast<SimDuration>(
      r.adaptive.multiplier *
      static_cast<double>(sorted[p99]));
  return std::max(r.adaptive.floor, std::max<SimDuration>(1, scaled));
}

sim::Task<void> RoundaboutNode::transmitter_resilient() {
  while (!stop_) {
    // Take the request before the credit: the stop sentinel must unblock
    // the transmitter even when no credit will ever arrive again (crashed
    // successor). Forward-over-local priority is decided at dequeue time,
    // so the swap does not change message order.
    const SendRequest request = co_await OutboundAwaiter{this};
    if (request.stop || stop_) break;
    if (config_.use_credits) {
      co_await credits_->acquire();
      if (stop_) break;  // die()/request_stop() re-based the count to wake us
    }
    // Deliberately if/else, not a conditional expression: co_await inside
    // ?: miscompiles on this GCC (the child frame's result is not moved
    // out properly).
    obs::Tracer* const t = engine_.tracer();
    if (t != nullptr) {
      t->begin(engine_.now(), config_.trace_host, "tx", "send",
               static_cast<std::int64_t>(request.data.size() +
                                         (request.framed ? kFrameBytes : 0)));
    }
    Status status;
    if (request.framed) {
      status = co_await out_wire_->send_framed(request.header, request.data);
    } else {
      status = co_await out_wire_->send(request.data);
    }
    if (t != nullptr) t->end(engine_.now(), config_.trace_host, "tx");
    if (status.is_ok()) {
      bytes_sent_ += request.data.size() + (request.framed ? kFrameBytes : 0);
      if (request.recycle_idx >= 0) spawn_recycle(request.recycle_idx);
      continue;
    }
    // The successor is gone and the message with it. Recycle the buffer —
    // the chunk's origin re-injects after its ack timeout — and park until
    // the control plane splices a replacement wire.
    ++send_failures_;
    if (request.recycle_idx >= 0) spawn_recycle(request.recycle_idx);
    if (stop_) break;
    co_await splice_out_done_.wait();
  }
  done_transmitter_.set();
}

sim::Task<void> RoundaboutNode::credit_receiver_resilient() {
  while (!stop_) {
    const Arrival arrival = co_await out_wire_->next_arrival();
    if (!arrival.ok) {
      if (stop_) break;
      credit_parked_.set();
      co_await splice_out_done_.wait();
      continue;
    }
    credits_->release();
    const std::uint64_t slot = arrival.tag;
    co_await out_wire_->post_recv(
        slot, std::span<std::byte>(credit_rx_slab_)
                  .subspan(slot * kCreditBytes, kCreditBytes));
  }
  done_credits_.set();
}

sim::Task<void> RoundaboutNode::scanner_process() {
  while (!stop_) {
    // Both the timeout and the wake-up period are recomputed every pass:
    // with the adaptive policy on, the deadline tightens (or relaxes) as
    // ack-RTT samples accumulate.
    const SimDuration timeout = current_ack_timeout();
    const SimDuration interval = config_.resilience.scan_interval > 0
                                     ? config_.resilience.scan_interval
                                     : std::max<SimDuration>(1, timeout / 4);
    co_await engine_.sleep(interval);
    if (stop_) break;
    const SimTime now = engine_.now();
    auto overdue = [&](const Outstanding& chunk) {
      if (now - chunk.last_sent < timeout) return false;
      CJ_CHECK_MSG(chunk.reinjects < config_.resilience.max_reinjections,
                   "chunk permanently lost: re-injection limit exceeded");
      return true;
    };
    for (auto& [seq, chunk] : outstanding_) {
      if (!overdue(chunk)) continue;
      ++chunk.reinjects;
      ++reinjected_;
      trace_instant("reinject", seq);
      flight_emit(obs::HopKind::kReinject, config_.resilience.host_id, seq, 0,
                  static_cast<std::uint32_t>(chunk.reinjects));
      chunk.last_sent = now;
      SendRequest request;
      request.data = chunk.payload;
      request.framed = true;
      request.header = make_frame(FrameKind::kData, config_.resilience.host_id,
                                  seq, chunk.payload, chunk.flags,
                                  config_.resilience.query_group);
      // Re-injection reuses the window slot the original acquisition still
      // holds — it is the same chunk, not a new one.
      push_outbound(request, /*priority=*/false);
    }
    // Adopted-origin chunks: re-injected under the dead origin's identity
    // so dedup and the retire board treat them as the originals. This is
    // also the only injection path for send_adopted(send_now=false)
    // entries — chunks that were likely still circulating at crash time
    // and are re-sent only once the timeout proves them lost.
    for (auto& [seq, chunk] : adopted_outstanding_) {
      if (!overdue(chunk)) continue;
      ++chunk.reinjects;
      ++reinjected_;
      trace_instant("adopt-reinject", seq);
      flight_emit(obs::HopKind::kReinject, adopted_origin_, seq, 0,
                  static_cast<std::uint32_t>(chunk.reinjects));
      chunk.last_sent = now;
      SendRequest request;
      request.data = chunk.payload;
      request.framed = true;
      request.header =
          make_frame(FrameKind::kData, adopted_origin_, seq, chunk.payload,
                     /*flags=*/0, config_.resilience.query_group);
      push_outbound(request, /*priority=*/false);
    }
    // Replica records whose one-hop ack got lost (or whose first send was
    // eaten by a mid-replication fault): same deadline, same window slot.
    for (auto& [seq, chunk] : replica_outstanding_) {
      if (!overdue(chunk)) continue;
      ++chunk.reinjects;
      ++replicas_resent_;
      trace_instant("replica-resend", seq);
      chunk.last_sent = now;
      SendRequest request;
      request.data = chunk.payload;
      request.framed = true;
      request.header = make_frame(FrameKind::kReplica,
                                  config_.resilience.host_id, seq, chunk.payload);
      push_outbound(request, /*priority=*/false);
    }
  }
  done_scanner_.set();
}

// ------------------------------------------------------- control plane

void RoundaboutNode::request_stop() {
  CJ_CHECK_MSG(resilient(), "request_stop is a resilient-mode operation");
  if (stop_) return;
  stop_ = true;
  if (in_wire_ != nullptr) {
    push_outbound(SendRequest{.stop = true}, /*priority=*/true);
    credits_->set_count(1);           // wake a credit-blocked transmitter
    injection_window_->set_count(1);  // wake a window-blocked send_local
    // A replicas_drained() waiter must not hang on acks that will never
    // arrive now.
    replica_acked_->set_count(static_cast<int>(replicas_sent_));
    in_wire_->close_recv();
    out_wire_->close_recv();
  }
  // Unblock a receiver parked in inbound_->push (stray duplicates can still
  // circulate at stop time), then guarantee the join loop sees the stop
  // sentinel before anything buffered behind it.
  while (inbound_->try_pop().has_value()) {
  }
  InboundChunk sentinel;
  sentinel.stop = true;
  inbound_->push_front_now(sentinel);
}

void RoundaboutNode::die() {
  CJ_CHECK_MSG(resilient(), "die is a resilient-mode operation");
  if (stop_) return;
  stop_ = true;
  if (in_wire_ != nullptr) {
    in_wire_->fail();
    out_wire_->fail();
    push_outbound(SendRequest{.stop = true}, /*priority=*/true);
    credits_->set_count(1);
    injection_window_->set_count(1);
    replica_acked_->set_count(static_cast<int>(replicas_sent_));
    // A crash while parked for a splice must still unwind.
    splice_in_done_.set();
    splice_out_done_.set();
  }
  while (inbound_->try_pop().has_value()) {
  }
  InboundChunk sentinel;
  sentinel.stop = true;
  inbound_->push_front_now(sentinel);
}

sim::Task<int> RoundaboutNode::splice_in(Wire* new_in_wire) {
  CJ_CHECK_MSG(resilient() && !stop_, "splice_in on a stopped node");
  CJ_CHECK(new_in_wire != nullptr && in_wire_ != nullptr);
  // Wake the receiver off the dead wire and wait until it has drained the
  // final completions — buffers whose arrival is still queued must not be
  // counted as free below.
  in_wire_->close_recv();
  in_wire_->close_send();  // let the dead wire's NIC sender process exit
  co_await receiver_parked_.wait();
  in_wire_ = new_in_wire;
  co_await in_wire_->prepare(ring_slab_);
  co_await in_wire_->prepare(credit_rx_slab_);
  co_await in_wire_->prepare(credit_tx_slot_);
  int posted = 0;
  for (int idx : posted_idx_) {
    co_await in_wire_->post_recv(static_cast<std::uint64_t>(idx), buffer(idx));
    ++posted;
  }
  splice_in_done_.set();
  co_return posted;
}

sim::Task<void> RoundaboutNode::splice_out(Wire* new_out_wire,
                                           int initial_credits) {
  CJ_CHECK_MSG(resilient() && !stop_, "splice_out on a stopped node");
  CJ_CHECK(new_out_wire != nullptr && out_wire_ != nullptr);
  out_wire_->close_recv();
  out_wire_->close_send();  // let the dead wire's NIC sender process exit
  if (config_.use_credits) co_await credit_parked_.wait();
  out_wire_ = new_out_wire;
  co_await out_wire_->prepare(ring_slab_);
  co_await out_wire_->prepare(credit_rx_slab_);
  co_await out_wire_->prepare(credit_tx_slot_);
  if (config_.use_credits) {
    for (int i = 0; i < config_.num_buffers; ++i) {
      co_await out_wire_->post_recv(
          static_cast<std::uint64_t>(i),
          std::span<std::byte>(credit_rx_slab_)
              .subspan(static_cast<std::size_t>(i) * kCreditBytes, kCreditBytes));
    }
    // Credits counted against the dead successor are void; the new
    // successor reported its free buffers via splice_in.
    credits_->set_count(initial_credits);
  }
  splice_out_done_.set();
}

sim::Task<void> RoundaboutNode::drain() {
  if (resilient()) {
    CJ_CHECK_MSG(stop_, "resilient drain requires request_stop() or die() first");
    co_await done_transmitter_.wait();
    co_await done_receiver_.wait();
    co_await done_credits_.wait();
    co_await done_scanner_.wait();
    if (recycles_inflight_ == 0) done_recycles_.set();
    co_await done_recycles_.wait();
    if (out_wire_ != nullptr) {
      out_wire_->close_send();
      in_wire_->close_send();
      out_wire_->close_recv();
      in_wire_->close_recv();
    }
    if (!inbound_->closed()) inbound_->close();
    co_return;
  }
  co_await done_transmitter_.wait();
  co_await done_receiver_.wait();
  co_await done_recycles_.wait();
  co_await done_credits_.wait();
  if (out_wire_ != nullptr) {
    out_wire_->close_send();   // no more data to the successor
    in_wire_->close_send();    // no more credits to the predecessor
    out_wire_->close_recv();
    in_wire_->close_recv();
  }
  if (!inbound_->closed()) inbound_->close();
}

}  // namespace cj::ring
