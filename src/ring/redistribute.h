// Keyed redistribution of per-host fragments over the ring.
//
// Between two cyclo-join rounds, the distributed output partitions of
// round k become the input fragments of round k+1. Correctness never
// requires moving a row — every rotating chunk visits every host — but
// load balance does: the per-host output of a join round is as skewed as
// its inputs, and a lopsided stationary side makes one host's build/probe
// the round's critical path. This phase rebalances by key, the same way
// the replication phase of the resilient protocol streams fragments
// between neighbors (docs/FAULTS.md Layer 4): each host cuts its fragment
// into one bucket per destination (hash(key) mod n), seals every bucket
// into a checksummed record (16-byte header + tuple payload, the replica-
// record shape), and the records travel hop by hop along the ring's data
// direction until their destination absorbs them. No coordinator: a record
// from host i to host j crosses exactly (j - i + n) mod n links, and no
// process ever holds more than its own fragment plus in-flight records.
//
// The move is synchronous and deterministic — identical on the sim and rt
// backends — and reports exact per-link byte counts so the caller can
// account the wire cost (the planner charges them via model::plan_cost).
#pragma once

#include <cstdint>
#include <vector>

#include "rel/relation.h"

namespace cj::ring {

/// Exact transfer accounting of one redistribution pass.
struct RedistributeStats {
  /// Records sealed and moved (buckets that stayed home are not records).
  std::uint64_t records = 0;
  /// Payload + header bytes summed over every link crossing (a record
  /// crossing three links counts three times — the ring's real traffic).
  std::uint64_t bytes_on_wire = 0;
  /// The busiest single link's byte count (the phase's critical path).
  std::uint64_t max_link_bytes = 0;
  /// Rows that changed hosts / rows that were already home.
  std::uint64_t rows_moved = 0;
  std::uint64_t rows_kept = 0;
};

/// Hash-partition assignment of a join key to one of `hosts` destinations.
/// Exposed so tests (and the planner's balance estimate) agree with the
/// data path on where a key lands.
int home_host(std::uint32_t key, int hosts);

/// Redistributes `fragments` (one per ring host, in ring order) in place so
/// fragment i afterwards holds exactly the keys with home_host(key) == i.
/// Tuple multiplicity is preserved; within a destination, arrival order is
/// the deterministic ring order (own bucket first, then predecessors by
/// hop distance). Every record is checksum-verified on absorb.
RedistributeStats redistribute_by_key(std::vector<rel::Relation>* fragments);

}  // namespace cj::ring
