// RDMA implementation of the Wire: a thin layer over one queue-pair
// endpoint. Zero additional copies — ring buffers are registered once and
// the RNIC places data straight into them (paper Sec. III-D).
#pragma once

#include <memory>

#include "rdma/verbs.h"
#include "ring/wire.h"
#include "sim/core_pool.h"
#include "sim/sync.h"

namespace cj::ring {

struct RdmaWireConfig {
  /// Host CPU cost to post one work request (doorbell + WQE build). Small —
  /// this is precisely what RDMA keeps off the CPU-intensive path.
  SimDuration post_cpu_cost = 300;  // ns
};

class RdmaWire final : public Wire {
 public:
  /// `qp` must already be connected. CQs must be dedicated to this wire.
  /// Registrations go to the device's protection domain, so the two wires
  /// of one host share them — each slab is registered (and billed) once.
  RdmaWire(rdma::Device& device, rdma::QueuePair& qp, rdma::CompletionQueue& send_cq,
           rdma::CompletionQueue& recv_cq, RdmaWireConfig config = {})
      : device_(device),
        qp_(qp),
        send_cq_(send_cq),
        recv_cq_(recv_cq),
        config_(config),
        send_mutex_(device.engine(), 1) {}

  sim::Task<void> prepare(std::span<std::byte> slab) override {
    // Idempotent: repair re-prepares slabs on a replacement wire, but the
    // device PD already holds the registration from first bring-up.
    if (device_.pd().find_region(slab.data(), slab.size()) != nullptr) co_return;
    co_await device_.pd().register_memory(slab);
  }

  sim::Task<void> post_recv(std::uint64_t tag, std::span<std::byte> buffer) override {
    rdma::MemoryRegion* mr = locate(buffer.data(), buffer.size());
    co_await device_.host_cores().consume(config_.post_cpu_cost, "rdma-post");
    rdma::WorkRequest wr;
    wr.wr_id = tag;
    wr.mr = mr;
    wr.offset = static_cast<std::size_t>(buffer.data() - mr->data());
    wr.length = buffer.size();
    const Status status = qp_.post_recv(wr);
    CJ_CHECK_MSG(status.is_ok(), status.to_string().c_str());
  }

  sim::Task<Arrival> next_arrival() override {
    const rdma::Completion c = co_await recv_cq_.next();
    co_return Arrival{c.wr_id, c.byte_len, c.ok()};
  }

  sim::Task<Status> send(std::span<const std::byte> data) override {
    co_return co_await send_message(nullptr, data);
  }

  sim::Task<Status> send_framed(const FrameHeader& header,
                                std::span<const std::byte> payload) override {
    co_return co_await send_message(&header, payload);
  }

  void close_send() override { qp_.close(); }
  void close_recv() override { recv_cq_.shutdown(); }

  void fail() override {
    // Endpoint death: the QP breaks (peers observe retry-exceeded) and both
    // CQs flush so local pollers unblock with errors.
    qp_.set_error();
    send_cq_.shutdown();
    recv_cq_.shutdown();
  }

 private:
  /// Shared body of send / send_framed: one outstanding send at a time so
  /// completions pair with requests (callers: the transmitter plus credit
  /// recycling).
  sim::Task<Status> send_message(const FrameHeader* header,
                                 std::span<const std::byte> data) {
    co_await send_mutex_.acquire();
    rdma::WorkRequest wr;
    wr.wr_id = next_send_id_++;
    wr.opcode = rdma::Opcode::kSend;
    if (!data.empty()) {
      rdma::MemoryRegion* mr = locate(data.data(), data.size());
      wr.mr = mr;
      wr.offset = static_cast<std::size_t>(data.data() - mr->data());
      wr.length = data.size();
    }
    if (header != nullptr) {
      encode_frame(*header, wr.inline_header.data());
      wr.inline_header_len = static_cast<std::uint32_t>(kFrameBytes);
    }
    co_await device_.host_cores().consume(config_.post_cpu_cost, "rdma-post");
    const Status status = qp_.post_send(wr);
    if (!status.is_ok()) {
      send_mutex_.release();
      // Queue-full is a protocol bug in every mode; only error-state QPs
      // (injected faults) and QPs the peer already closed at teardown
      // surface as a recoverable failure.
      CJ_CHECK_MSG(qp_.in_error() || qp_.closed(), status.to_string().c_str());
      co_return status;
    }
    const rdma::Completion c = co_await send_cq_.next();
    send_mutex_.release();
    if (!c.ok()) {
      co_return unavailable(c.status == rdma::WcStatus::kRetryExceeded
                                ? "send failed: transport retries exhausted"
                                : "send failed: work request flushed");
    }
    CJ_CHECK_MSG(c.wr_id == wr.wr_id, "out-of-order send completion");
    co_return Status::ok();
  }

  rdma::MemoryRegion* locate(const std::byte* ptr, std::size_t len) const {
    rdma::MemoryRegion* mr = device_.pd().find_region(ptr, len);
    CJ_CHECK_MSG(mr != nullptr, "buffer not within any registered memory region");
    return mr;
  }

  rdma::Device& device_;
  rdma::QueuePair& qp_;
  rdma::CompletionQueue& send_cq_;
  rdma::CompletionQueue& recv_cq_;
  RdmaWireConfig config_;
  sim::Semaphore send_mutex_;
  std::uint64_t next_send_id_ = 1;
};

}  // namespace cj::ring
