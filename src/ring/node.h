// RoundaboutNode: one host's slice of the Data Roundabout transport layer.
//
// Implements the paper's Sec. III-D design: a statically allocated ring of
// receive buffers (registered once, reused for the whole run) plus three
// asynchronous entities —
//
//   receiver     keeps recv buffers posted; completed buffers flow to the
//                join entity through the inbound queue,
//   join entity  (owned by the cyclo layer) pulls chunks via next_chunk(),
//                joins them, then forwards or retires the buffer,
//   transmitter  drains the outbound queue toward the successor, gated by
//                credits (one credit == one free buffer at the successor,
//                which is what makes receiver-not-ready unreachable).
//
// Deadlock freedom. A store-and-forward ring with hop-by-hop credits can
// deadlock when every buffer holds a young chunk and no chunk can reach the
// host where it retires. Three rules make that state unreachable:
//
//   1. forwards have strict priority over local injections (drain before
//      inject), and the transmitter acquires a credit *before* it commits
//      to a message,
//   2. retiring a chunk never needs a credit (recycle is local), and
//   3. injection is window-limited end to end: a host keeps at most
//      `injection_window` un-retired local chunks in the ring. When a chunk
//      completes its revolution at pred(origin), a zero-length *retire ack*
//      message travels the one remaining hop back to the origin and reopens
//      its window. Total in-flight chunks thus stay strictly below the
//      ring's total buffer capacity, so a free buffer always exists ahead
//      of the oldest chunk.
//
// With the ack, every host sends and receives exactly G messages per run
// (G = total chunks): G - L_i data arrivals plus L_i acks in, G - L_succ
// data sends plus L_succ acks out.
//
// The node is transport-agnostic: give it RDMA wires and communication is
// zero-copy and nearly CPU-free; give it TCP wires and every byte bills
// host cores (the paper's Sec. V-G comparison).
// Resilient mode (NodeConfig::resilience.enabled, switched on only when a
// fault plan is active) wraps every message in a FrameHeader (origin, seq,
// checksum — see frame.h) and replaces the exact-count loops with dynamic
// termination driven by the orchestration layer:
//
//   * a corrupted or truncated frame is discarded (buffer recycled); the
//     origin still holds the payload and re-injects it after ack_timeout,
//   * per-origin sequence sets deduplicate re-injected chunks, so a chunk
//     is delivered to the join entity at most once per host (duplicates
//     are flagged and forwarded without joining),
//   * when a neighbor dies the wires fail fast; the node parks its
//     receiver/transmitter until the control plane splices a replacement
//     wire around the dead host (splice_in / splice_out),
//   * die() simulates this node's own fail-stop crash: wires break, all
//     entities unwind, and the join entity sees a stop chunk.
//
// With resilience disabled every path below is byte-identical to the
// original protocol: no frames, no checksums, no extra state.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "obs/flight.h"
#include "ring/frame.h"
#include "ring/wire.h"
#include "sim/core_pool.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace cj::ring {

/// Adaptive ack-timeout policy: instead of trusting a fixed ack_timeout,
/// derive the re-injection deadline from observed ack round-trip times
/// (a full revolution plus one ack hop). This removes the documented
/// false-re-injection failure mode — a static timeout tuned below the real
/// revolution time re-injects healthy chunks every scan — while still
/// reacting quickly when the ring genuinely lost a chunk.
struct AdaptiveAckConfig {
  bool enabled = false;
  /// Lower bound on the effective timeout regardless of samples (wall-clock
  /// backends need this: scheduler jitter exceeds any simulated latency).
  SimDuration floor = 0;
  /// Effective timeout = max(floor, multiplier * p99 observed ack RTT).
  double multiplier = 4.0;
  /// Below this many samples the static ack_timeout (clamped to the floor)
  /// stays in charge.
  int min_samples = 4;
};

/// Fault-tolerance knobs; enabled only when a fault plan is active.
struct ResilienceConfig {
  bool enabled = false;
  /// This host's ring position and the ring size (frame origin field and
  /// per-origin dedup tables).
  int host_id = 0;
  int num_hosts = 1;
  /// A local chunk not acked within this window is re-injected.
  SimDuration ack_timeout = 5 * kMillisecond;
  /// Scanner wake-up period (0 = effective timeout / 4).
  SimDuration scan_interval = 0;
  /// Re-injections per chunk before the node declares it permanently lost
  /// and aborts (faults must not pass silently).
  int max_reinjections = 16;
  /// Adaptive ack-timeout policy (off = static ack_timeout).
  AdaptiveAckConfig adaptive;
  /// Ring-neighbor fragment replication: during the load phase every host
  /// streams kReplica frames (stationary fragment + rotating chunk log) to
  /// its successor, enabling exact-result crash recovery (docs/FAULTS.md,
  /// Layer 4). Off = PR-1 degraded-result behavior.
  bool replicate = false;
  /// Query group stamped on this run's data frames (the serving layer
  /// allocates one group per scheduler wave). An inbound data frame whose
  /// group differs is stale — left over from another wave — and is
  /// discarded (counted) instead of joined, acked or forwarded. Acks and
  /// replica frames identify themselves by (origin, seq) and stay
  /// group-agnostic.
  std::uint16_t query_group = 0;
  /// Invoked each time one of this node's local chunks is acknowledged
  /// (the orchestration layer's termination detector listens here).
  std::function<void()> on_ack;
  /// Invoked for every fresh replica record received from the predecessor
  /// (the orchestration layer stores a copy; the span aliases the ring
  /// buffer and is only valid for the duration of the call).
  std::function<void(int, std::span<const std::byte>)> on_replica;
};

struct NodeConfig {
  /// Ring buffer elements per host (>= 2 when the ring has neighbors).
  /// The paper's buffers absorb speed differences between hosts (Sec. V-D).
  int num_buffers = 4;
  /// Size of one ring buffer element. RDMA wants large transfer units
  /// (Sec. III-C: >= ~1 MB for full throughput).
  std::size_t buffer_bytes = 1ULL << 20;
  /// Max un-retired locally-injected chunks (0 = auto: num_buffers - 1).
  /// Must stay below num_buffers — see "deadlock freedom" above.
  int injection_window = 0;
  /// Explicit credit messages. Required for RDMA (a send with no posted
  /// receive is fatal); redundant over TCP, whose window already applies
  /// backpressure — the paper's TCP baseline uses plain send/recv.
  bool use_credits = true;
  /// Fault-tolerance mode; see ResilienceConfig.
  ResilienceConfig resilience;
  /// Host id stamped on this node's trace events (Chrome pid).
  int trace_host = 0;
};

/// Exact message counts for one run, computed by the orchestration layer.
/// Exact counts let every entity run a bounded loop and shut down cleanly.
/// With retire acks both equal the global chunk count G.
struct NodeCounts {
  /// Messages that will arrive from the predecessor (data + acks).
  std::uint64_t arrivals = 0;
  /// Messages this host will send (locals + forwards + acks).
  std::uint64_t sends = 0;
};

/// A filled ring buffer handed to the join entity. The payload span aliases
/// the ring buffer — it stays valid until forward()/retire() is called.
struct InboundChunk {
  int buffer_idx = -1;
  std::span<const std::byte> payload;
  /// Engine time the receiver handed the chunk off the wire. The gap to
  /// the matching forward()/retire() is the chunk's on-host residency —
  /// the flight recorder's straggler-attribution signal.
  SimTime recv_ts = 0;
  /// Frame hop counter at arrival (reserved[0]; 0 when frames are off).
  int hops = 0;
  // ----- resilient-mode metadata (defaults in fault-free runs) ---------
  /// Host that injected the chunk (-1 when frames are off).
  int origin = -1;
  /// Per-origin sequence number.
  std::uint32_t seq = 0;
  /// True when this host already joined this (origin, seq): forward or
  /// retire it, but do not join it again.
  bool duplicate = false;
  /// Recovery replay copy (kFrameFlagReplay): only the adopter joins it,
  /// and only against the adopted partition; it stays off the retire board.
  bool replay = false;
  /// Control signal: the ring is shutting down (or this node died); no
  /// buffer is attached and the join loop must exit.
  bool stop = false;
};

class RoundaboutNode {
 public:
  /// Wires may be null for a ring of size one (no neighbors).
  RoundaboutNode(sim::Engine& engine, sim::CorePool& cores, Wire* in_wire,
                 Wire* out_wire, NodeConfig config);

  /// Registers all memory (ring buffers, credit slots, plus the caller's
  /// local chunk storage slabs), posts the initial receive buffers and
  /// starts the receiver / transmitter / credit entities. Validates the
  /// NodeConfig first and returns kInvalidArgument (starting nothing)
  /// rather than deadlocking on an unusable configuration. In resilient
  /// mode `counts` is ignored — termination is dynamic.
  sim::Task<Status> start(NodeCounts counts,
                          std::vector<std::span<std::byte>> local_slabs);

  // ----- join-entity API ---------------------------------------------

  /// Next inbound data chunk from the predecessor (acks are consumed
  /// internally). Waiting time here is the paper's "sync" time (Fig. 11):
  /// join threads starved for data.
  sim::Task<InboundChunk> next_chunk();

  /// Forwards the chunk to the successor, then recycles its buffer
  /// (repost + credit to the predecessor). Never blocks the join entity.
  void forward(InboundChunk chunk);

  /// Ends the chunk's revolution: recycles its buffer immediately and
  /// queues the retire ack to the successor (the chunk's origin).
  /// `send_ack=false` (resilient mode only) retires without acknowledging —
  /// used for chunks whose origin is dead.
  void retire(InboundChunk chunk, bool send_ack = true);

  /// Injects a locally-born chunk (sent directly from local slab memory;
  /// it must lie within a slab passed to start()). Blocks while the
  /// injection window is exhausted — forwards always jump ahead of locals.
  /// `replay=true` (recovery only) stamps kFrameFlagReplay: the chunk gets
  /// a fresh sequence number and full ack/retransmission protection, but
  /// only the adopter joins it (against the adopted partition).
  sim::Task<void> send_local(std::span<const std::byte> data,
                             bool replay = false);

  // ----- replication & adoption (resilience.replicate) -----------------

  /// Registers extra memory with the wire after start() — sends must come
  /// from registered regions, and the adopter's replica log only becomes
  /// send-worthy (via send_adopted) once a crash lands. No-op on wires
  /// without registration (rt shared memory).
  sim::Task<void> prepare_memory(std::span<std::byte> region);

  /// Streams one replica record to the ring successor (kReplica frame,
  /// checksummed, acked, re-sent on timeout like a data chunk). The payload
  /// must stay valid until replicas_drained() returns. Shares the injection
  /// window with send_local, preserving the deadlock-freedom bound.
  sim::Task<void> send_replica(std::span<const std::byte> data);

  /// Completes once every send_replica() record has been acknowledged by
  /// the successor (i.e. is durably stored off-host). Call once, after the
  /// last send_replica().
  sim::Task<void> replicas_drained();

  /// Marks `origin` as adopted by this node: retire acks naming that origin
  /// are now consumed here (the spliced ring routes them to us, the dead
  /// host's effective home), settling entries registered via send_adopted().
  void adopt(int origin);

  /// Registers (and, when send_now, immediately injects) one of the adopted
  /// origin's unretired chunks from the replica log, under the adopted
  /// origin's original sequence number. With send_now=false the chunk is
  /// assumed to still be circulating: the scanner re-injects it only if no
  /// ack lands within the timeout — exactly the dead origin's own recovery
  /// semantics. Acquires an injection-window slot either way.
  sim::Task<void> send_adopted(std::uint32_t seq,
                               std::span<const std::byte> payload,
                               bool send_now);

  /// Per-origin sequence numbers this host has received (resilient mode).
  /// The adopter snapshots these at adoption time to plan the replay.
  const std::set<std::uint32_t>& seen(int origin) const {
    return seen_[static_cast<std::size_t>(origin)];
  }

  /// Completes when every counted arrival, send, credit and recycle has
  /// happened, then shuts the wires down. Call after the join work is done.
  /// In resilient mode, call request_stop() first.
  sim::Task<void> drain();

  // ----- resilient-mode control plane ---------------------------------

  /// Asks all entities to wind down (resilient termination is decided by
  /// the orchestration layer, not by message counts). The join entity
  /// receives a stop chunk; follow with drain().
  void request_stop();

  /// Simulates this node's fail-stop crash: wires break immediately, all
  /// entities unwind, in-flight chunks are abandoned (surviving origins
  /// re-inject them). The join loop receives a stop chunk.
  void die();

  /// Ring repair, inbound side (this node's predecessor died): adopt the
  /// replacement wire to the new predecessor and re-post every currently
  /// free ring buffer on it. Returns the number of buffers posted — the
  /// new predecessor's initial credit count.
  sim::Task<int> splice_in(Wire* new_in_wire);

  /// Ring repair, outbound side (this node's successor died): adopt the
  /// replacement wire, post credit receive slots on it and re-base the
  /// credit count to the new successor's free buffers.
  sim::Task<void> splice_out(Wire* new_out_wire, int initial_credits);

  bool stopped() const { return stop_; }
  /// Local chunks injected but not yet acknowledged (adopted-origin chunks
  /// this node answers for count too).
  std::size_t outstanding_unacked() const {
    return outstanding_.size() + adopted_outstanding_.size();
  }
  /// The re-injection deadline currently in force: the static ack_timeout,
  /// or — with the adaptive policy armed and enough samples — the observed
  /// p99 ack RTT scaled by the policy multiplier (never below the floor).
  SimDuration current_ack_timeout() const;
  /// Installs the orchestration layer's ack listener (must be set before
  /// start(); the termination detector listens here).
  void set_on_ack(std::function<void()> on_ack) {
    config_.resilience.on_ack = std::move(on_ack);
  }
  /// Installs the replica-record sink (must be set before start()).
  void set_on_replica(
      std::function<void(int, std::span<const std::byte>)> on_replica) {
    config_.resilience.on_replica = std::move(on_replica);
  }
  /// Overrides the wire query group (must be called before start(); tests
  /// use this to model a node still pinned to another serving wave).
  void set_query_group(std::uint16_t group) {
    config_.resilience.query_group = group;
  }

  // ----- statistics ---------------------------------------------------

  /// Total virtual time the join entity spent waiting in next_chunk().
  SimDuration sync_time() const { return sync_time_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t chunks_received() const { return chunks_received_; }
  std::uint64_t chunks_discarded_corrupt() const { return discarded_corrupt_; }
  /// Data frames discarded because their query group named another wave.
  std::uint64_t stale_query_discards() const { return stale_query_discards_; }
  std::uint64_t duplicates_skipped() const { return duplicates_skipped_; }
  std::uint64_t chunks_reinjected() const { return reinjected_; }
  /// Re-injected chunks that were later acknowledged (recovered in-flight).
  std::uint64_t chunks_recovered() const { return recovered_; }
  std::uint64_t send_failures() const { return send_failures_; }
  /// Replica payload bytes shipped to the successor (first sends only).
  std::uint64_t replica_bytes() const { return replica_bytes_; }
  /// Replica records re-sent after an ack timeout.
  std::uint64_t replicas_resent() const { return replicas_resent_; }
  /// Adopted-origin chunks re-injected from the replica log.
  std::uint64_t chunks_adopted() const { return adopted_injected_; }
  /// Clean (first-try) ack round trips observed, in injection order.
  const std::vector<SimDuration>& ack_rtts() const { return ack_rtts_; }
  /// Completed revolutions observed at retire time, from the frame hop
  /// counter (resilient mode; fault-free wires carry no counter).
  std::uint64_t revolutions_observed() const { return revolutions_observed_; }
  /// Highest frame hop counter seen on any frame through this node.
  int max_hops_observed() const { return max_hops_observed_; }
  const NodeConfig& config() const { return config_; }

 private:
  struct SendRequest {
    std::span<const std::byte> data;
    int recycle_idx = -1;  // ring buffer to recycle once sent (-1: none)
    // Resilient-mode fields.
    bool framed = false;  // send via send_framed(header, data)
    FrameHeader header{};
    bool stop = false;  // sentinel: transmitter exits
  };

  struct OutboundAwaiter {
    RoundaboutNode* node;
    bool await_ready() {
      return !node->pending_forwards_.empty() || !node->pending_locals_.empty();
    }
    void await_suspend(std::coroutine_handle<> h) {
      node->outbound_waiters_.push_back(h);
    }
    SendRequest await_resume() { return node->take_outbound(); }
  };

  std::span<std::byte> buffer(int idx) {
    return std::span<std::byte>(ring_slab_).subspan(
        static_cast<std::size_t>(idx) * config_.buffer_bytes, config_.buffer_bytes);
  }

  SendRequest take_outbound();
  void push_outbound(SendRequest request, bool priority);

  bool resilient() const { return config_.resilience.enabled; }

  /// One ring-protocol instant ("recv", "ack", "forward", ...) on this
  /// host's "ring" trace track.
  void trace_instant(std::string_view name, std::int64_t arg);

  /// One chunk-hop record into the always-on flight recorder (single
  /// pointer test when no recorder is installed). origin < 0 maps to
  /// obs::kNoOrigin (fault-free wire: no frame identity).
  void flight_emit(obs::HopKind kind, int origin, std::uint32_t seq,
                   std::uint8_t hops, std::uint32_t arg_us);

  sim::Task<void> receiver_process();
  sim::Task<void> transmitter_process();
  sim::Task<void> credit_receiver_process();
  sim::Task<void> recycle(int buffer_idx);

  // Resilient-mode variants (dynamic termination, frame decode, repair).
  sim::Task<void> receiver_resilient();
  sim::Task<void> transmitter_resilient();
  sim::Task<void> credit_receiver_resilient();
  sim::Task<void> scanner_process();
  void handle_ack(const FrameHeader& header);
  void spawn_recycle(int buffer_idx);

  sim::Engine& engine_;
  sim::CorePool& cores_;
  Wire* in_wire_;
  Wire* out_wire_;
  NodeConfig config_;
  NodeCounts counts_{};
  bool started_ = false;

  std::vector<std::byte> ring_slab_;
  std::vector<std::byte> credit_rx_slab_;
  std::vector<std::byte> credit_tx_slot_;

  std::unique_ptr<sim::Channel<InboundChunk>> inbound_;
  std::unique_ptr<sim::Semaphore> credits_;
  std::unique_ptr<sim::Semaphore> injection_window_;

  std::deque<SendRequest> pending_forwards_;  // forwards + retire acks
  std::deque<SendRequest> pending_locals_;
  std::deque<std::coroutine_handle<>> outbound_waiters_;

  std::uint64_t credit_recvs_posted_ = 0;
  std::uint64_t recycles_done_ = 0;

  sim::Event done_receiver_;
  sim::Event done_transmitter_;
  sim::Event done_credits_;
  sim::Event done_recycles_;

  // ----- resilient-mode state (untouched when resilience is off) -------

  /// A locally injected chunk awaiting its retire ack.
  struct Outstanding {
    std::span<const std::byte> payload;
    SimTime first_sent = 0;  ///< ack-RTT sampling (adaptive timeout)
    SimTime last_sent = 0;
    int reinjects = 0;
    std::uint8_t flags = 0;  ///< frame flags, preserved across re-sends
  };
  std::map<std::uint32_t, Outstanding> outstanding_;  // keyed by seq
  /// Replica records awaiting their kReplicaAck (keyed by replica seq).
  std::map<std::uint32_t, Outstanding> replica_outstanding_;
  /// Adopted-origin chunks this node re-injected and answers acks for
  /// (keyed by the adopted origin's original seq).
  std::map<std::uint32_t, Outstanding> adopted_outstanding_;
  /// Per-origin sequence numbers already seen (dedup of re-injections).
  std::vector<std::set<std::uint32_t>> seen_;
  /// Replica seqs already stored (dedup; duplicates are re-acked).
  std::set<std::uint32_t> replica_seen_;
  /// Ring buffers currently posted on the inbound wire (repair reposts).
  std::set<int> posted_idx_;
  std::uint32_t next_seq_ = 0;
  std::uint32_t replica_seq_ = 0;
  std::uint64_t replicas_sent_ = 0;
  /// Released once per unique replica ack; replicas_drained() collects.
  std::unique_ptr<sim::Semaphore> replica_acked_;
  int adopted_origin_ = -1;
  bool stop_ = false;
  std::uint64_t recycles_inflight_ = 0;
  sim::Event splice_in_done_;
  sim::Event splice_out_done_;
  /// Parking handshake: splice waits until the entity has drained the old
  /// wire's final arrivals before counting free buffers / re-basing credits.
  sim::Event receiver_parked_;
  sim::Event credit_parked_;
  sim::Event done_scanner_;

  SimDuration sync_time_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t chunks_received_ = 0;
  std::uint64_t discarded_corrupt_ = 0;
  std::uint64_t stale_query_discards_ = 0;
  std::uint64_t duplicates_skipped_ = 0;
  std::uint64_t reinjected_ = 0;
  std::uint64_t recovered_ = 0;
  std::uint64_t send_failures_ = 0;
  std::uint64_t replica_bytes_ = 0;
  std::uint64_t replicas_resent_ = 0;
  std::uint64_t adopted_injected_ = 0;
  /// Clean (no-re-injection) ack round trips, for the adaptive timeout.
  std::vector<SimDuration> ack_rtts_;
  std::uint64_t revolutions_observed_ = 0;
  int max_hops_observed_ = 0;
};

}  // namespace cj::ring
