// Kernel-TCP implementation of the Wire (the paper's Sec. V-G baseline:
// "we changed the transmitter and receiver of Data Roundabout to use send
// and recv calls instead of their RDMA counterparts").
//
// Messages are framed with a 4-byte length prefix on a byte stream. All
// stack costs are billed to host cores by the underlying TcpConnection, so
// communication competes with join threads for CPU.
#pragma once

#include <array>
#include <memory>

#include "ring/wire.h"
#include "sim/sync.h"
#include "tcpsim/tcp.h"

namespace cj::ring {

class TcpWire final : public Wire {
 public:
  /// `send_conn` carries this wire's outbound messages; `recv_conn` is the
  /// reverse direction of the same neighbor connection.
  TcpWire(sim::Engine& engine, tcpsim::TcpConnection& send_conn,
          tcpsim::TcpConnection& recv_conn, std::size_t max_posted_buffers)
      : engine_(engine),
        send_conn_(send_conn),
        recv_conn_(recv_conn),
        posted_(engine, max_posted_buffers),
        arrivals_(engine, max_posted_buffers),
        send_mutex_(engine, 1) {
    engine_.spawn(rx_pump(), "tcp-wire-rx-pump");
  }

  /// TCP needs no registration.
  sim::Task<void> prepare(std::span<std::byte>) override { co_return; }

  sim::Task<void> post_recv(std::uint64_t tag, std::span<std::byte> buffer) override {
    co_await posted_.push(Posted{tag, buffer});
  }

  sim::Task<Arrival> next_arrival() override {
    auto a = co_await arrivals_.pop();
    CJ_CHECK_MSG(a.has_value(), "tcp wire receive side closed while polling");
    co_return *a;
  }

  sim::Task<Status> send(std::span<const std::byte> data) override {
    // Header + payload must not interleave with a concurrent send.
    co_await send_mutex_.acquire();
    std::uint32_t len = static_cast<std::uint32_t>(data.size());
    co_await send_conn_.send(
        std::span<const std::byte>(reinterpret_cast<const std::byte*>(&len), 4));
    if (len > 0) co_await send_conn_.send(data);
    send_mutex_.release();
    co_return Status::ok();
  }

  sim::Task<Status> send_framed(const FrameHeader& header,
                                std::span<const std::byte> payload) override {
    co_await send_mutex_.acquire();
    std::uint32_t len = static_cast<std::uint32_t>(kFrameBytes + payload.size());
    co_await send_conn_.send(
        std::span<const std::byte>(reinterpret_cast<const std::byte*>(&len), 4));
    std::array<std::byte, kFrameBytes> head;
    encode_frame(header, head.data());
    co_await send_conn_.send(std::span<const std::byte>(head.data(), head.size()));
    if (!payload.empty()) co_await send_conn_.send(payload);
    send_mutex_.release();
    co_return Status::ok();
  }

  void close_send() override { send_conn_.close(); }
  void close_recv() override {
    if (!posted_.closed()) posted_.close();
  }

 private:
  struct Posted {
    std::uint64_t tag;
    std::span<std::byte> buffer;
  };

  sim::Task<void> rx_pump() {
    // One framed message per posted buffer. The header is read *first*:
    // when the peer closes its send side at a message boundary, the pump
    // exits cleanly even if unused buffers remain posted. The credit
    // protocol guarantees a posted buffer exists for every real message.
    while (true) {
      std::uint32_t len = 0;
      const bool open = co_await recv_conn_.recv_or_eof(
          std::span<std::byte>(reinterpret_cast<std::byte*>(&len), 4));
      if (!open) break;
      auto posted = co_await posted_.pop();
      CJ_CHECK_MSG(posted.has_value(),
                   "message arrived with no posted buffer (flow control bug)");
      CJ_CHECK_MSG(len <= posted->buffer.size(),
                   "incoming tcp message larger than the posted buffer");
      if (len > 0) co_await recv_conn_.recv(posted->buffer.subspan(0, len));
      co_await arrivals_.push(Arrival{posted->tag, len});
    }
  }

  sim::Engine& engine_;
  tcpsim::TcpConnection& send_conn_;
  tcpsim::TcpConnection& recv_conn_;
  sim::Channel<Posted> posted_;
  sim::Channel<Arrival> arrivals_;
  sim::Semaphore send_mutex_;
};

}  // namespace cj::ring
