// Resilient-mode frame header: the ring-level envelope that lets a
// RoundaboutNode detect lost and corrupted chunks.
//
// In fault-free runs no frame exists — messages are raw chunk bytes and the
// wire format is byte-identical to the pre-resilience protocol. When a
// FaultPlan is active, every ring message (data chunk or retire ack)
// carries this fixed 24-byte header: data frames prefix the chunk payload
// (the origin keeps the payload in its local slab until the retire ack
// lands, so a checksum mismatch or a lost delivery is recovered by origin
// re-injection); retire acks are header-only frames naming the exact
// (origin, seq) they acknowledge, so a lost or duplicated ack is harmless.
//
// The checksum is FNV-1a 64 over the header (with the checksum field
// zeroed) followed by the payload, so corruption of either header fields
// or payload bytes is detected and the frame discarded.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

namespace cj::ring {

enum class FrameKind : std::uint8_t {
  kData = 1,        ///< chunk payload follows the header
  kRetireAck = 2,   ///< header-only: (origin, seq) completed its revolution
  kReplica = 3,     ///< replication record for the successor (one hop, stored)
  kReplicaAck = 4,  ///< header-only: replica (origin, seq) stored durably;
                    ///< forwarded around the ring back to the origin
};

/// FrameHeader::flags bits.
enum : std::uint8_t {
  /// Replay copy injected during crash recovery: carries a fresh sequence
  /// number and is joined only by the adopter (against the adopted
  /// partition) — every other host forwards it without joining, and it
  /// never enters the retire board.
  kFrameFlagReplay = 0x1,
};

constexpr std::uint32_t kFrameMagic = 0x52DAB007;  // "ring data bot"

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint8_t kind = 0;
  std::uint8_t flags = 0;  ///< kFrameFlag* bits (checksummed like the rest)
  /// reserved[0] is the hop counter: 0 at injection, +1 at every forward
  /// (saturating at 255), re-sealed into the checksum by the forwarding
  /// host. hops / num_hosts = completed revolutions; journey reconstruction
  /// and the revolutions_observed/max_hops metrics read it per hop.
  /// reserved[1] stays zero for future use (checksummed like the rest).
  std::uint8_t reserved[2] = {0, 0};
  std::uint16_t origin = 0;  ///< host that injected the chunk
  std::uint16_t query = 0;   ///< serving-wave query group (0 = standalone run)
  std::uint32_t seq = 0;     ///< per-origin chunk sequence number
  std::uint64_t checksum = 0;
};
static_assert(sizeof(FrameHeader) == 24, "frame header is 24 bytes on the wire");

constexpr std::size_t kFrameBytes = sizeof(FrameHeader);

inline std::uint64_t fnv1a64(std::uint64_t h, std::span<const std::byte> bytes) {
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001B3ULL;
  }
  return h;
}

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;

/// Checksum over the header's non-checksum fields plus the payload.
inline std::uint64_t frame_checksum(const FrameHeader& h,
                                    std::span<const std::byte> payload) {
  FrameHeader clean = h;
  clean.checksum = 0;
  std::byte head[kFrameBytes];
  std::memcpy(head, &clean, kFrameBytes);
  return fnv1a64(fnv1a64(kFnvOffset, std::span<const std::byte>(head, kFrameBytes)),
                 payload);
}

/// Builds a sealed (checksummed) header for a frame. `query` stamps data
/// frames with the serving wave that produced them so a node can reject
/// stale chunks from a wave it is no longer (or not yet) part of; acks and
/// replica traffic identify themselves by (origin, seq) and leave it 0.
inline FrameHeader make_frame(FrameKind kind, int origin, std::uint32_t seq,
                              std::span<const std::byte> payload,
                              std::uint8_t flags = 0, std::uint16_t query = 0) {
  FrameHeader h;
  h.kind = static_cast<std::uint8_t>(kind);
  h.flags = flags;
  h.origin = static_cast<std::uint16_t>(origin);
  h.query = query;
  h.seq = seq;
  h.checksum = frame_checksum(h, payload);
  return h;
}

/// Parses and verifies a received frame (header + payload contiguous in
/// `message`). Returns false on truncation, bad magic/kind, or checksum
/// mismatch — the caller discards the message and lets origin re-injection
/// recover it.
inline bool decode_frame(std::span<const std::byte> message, FrameHeader* out) {
  if (message.size() < kFrameBytes) return false;
  FrameHeader h;
  std::memcpy(&h, message.data(), kFrameBytes);
  if (h.magic != kFrameMagic) return false;
  if (h.kind < static_cast<std::uint8_t>(FrameKind::kData) ||
      h.kind > static_cast<std::uint8_t>(FrameKind::kReplicaAck)) {
    return false;
  }
  if (h.checksum != frame_checksum(h, message.subspan(kFrameBytes))) return false;
  *out = h;
  return true;
}

/// Serializes a header into a 24-byte buffer (for transports that write it
/// inline on the wire).
inline void encode_frame(const FrameHeader& h, std::byte* dst) {
  std::memcpy(dst, &h, kFrameBytes);
}

/// Increments the hop counter (reserved[0], saturating at 255) of a sealed
/// frame in place — `message` holds header + payload contiguous — and
/// re-seals the checksum. Forwarding hosts call this so every frame carries
/// how far around the ring it has travelled. Returns the new hop count.
inline std::uint8_t stamp_hop(std::span<std::byte> message) {
  FrameHeader h;
  std::memcpy(&h, message.data(), kFrameBytes);
  if (h.reserved[0] != 0xFF) ++h.reserved[0];
  h.checksum = frame_checksum(h, message.subspan(kFrameBytes));
  std::memcpy(message.data(), &h, kFrameBytes);
  return h.reserved[0];
}

}  // namespace cj::ring
