// Wire: one duplex neighbor connection as seen from one host.
//
// The Data Roundabout's transmitter/receiver entities are transport-
// agnostic (the paper swaps RDMA verbs for kernel send/recv in Sec. V-G by
// replacing exactly this layer). A Wire sends messages toward one neighbor
// and receives messages coming back from that neighbor on the reverse
// direction of the same connection:
//
//   out-wire (toward successor):    send = data chunks, arrivals = credits
//   in-wire  (toward predecessor):  send = credits,     arrivals = data
//
// Receive semantics follow RDMA's pre-posted-buffer model for both
// implementations: the caller posts buffers (post_recv), each incoming
// message consumes the oldest posted buffer, and next_arrival() reports
// which buffer (by tag) was filled. A correct credit protocol guarantees a
// posted buffer exists for every arrival; its violation aborts.
#pragma once

#include <cstdint>
#include <span>

#include "common/units.h"
#include "sim/task.h"

namespace cj::ring {

/// A completed inbound message.
struct Arrival {
  /// Tag given at post_recv time (ring-buffer index).
  std::uint64_t tag = 0;
  /// Payload length actually received.
  std::size_t length = 0;
};

class Wire {
 public:
  virtual ~Wire() = default;

  /// Registers a memory area messages will be sent from / received into.
  /// RDMA bills registration cost and pins the region; TCP ignores this.
  /// Must cover every span later passed to send/post_recv.
  virtual sim::Task<void> prepare(std::span<std::byte> slab) = 0;

  /// Posts a receive buffer. Arrivals consume posted buffers FIFO.
  virtual sim::Task<void> post_recv(std::uint64_t tag, std::span<std::byte> buffer) = 0;

  /// Awaits the next inbound message.
  virtual sim::Task<Arrival> next_arrival() = 0;

  /// Sends one message. Returns when `data` is safe to reuse (RDMA: send
  /// completion; TCP: accepted into the send window).
  virtual sim::Task<void> send(std::span<const std::byte> data) = 0;

  /// Shuts down the send side after queued data drains.
  virtual void close_send() = 0;

  /// Shuts down the receive side once every expected arrival has been
  /// consumed (stops internal pump processes; no-op where none exist).
  virtual void close_recv() {}
};

}  // namespace cj::ring
