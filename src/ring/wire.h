// Wire: one duplex neighbor connection as seen from one host.
//
// The Data Roundabout's transmitter/receiver entities are transport-
// agnostic (the paper swaps RDMA verbs for kernel send/recv in Sec. V-G by
// replacing exactly this layer). A Wire sends messages toward one neighbor
// and receives messages coming back from that neighbor on the reverse
// direction of the same connection:
//
//   out-wire (toward successor):    send = data chunks, arrivals = credits
//   in-wire  (toward predecessor):  send = credits,     arrivals = data
//
// Receive semantics follow RDMA's pre-posted-buffer model for both
// implementations: the caller posts buffers (post_recv), each incoming
// message consumes the oldest posted buffer, and next_arrival() reports
// which buffer (by tag) was filled. A correct credit protocol guarantees a
// posted buffer exists for every arrival; its violation aborts.
#pragma once

#include <cstdint>
#include <span>

#include "common/assert.h"
#include "common/status.h"
#include "common/units.h"
#include "ring/frame.h"
#include "sim/task.h"

namespace cj::ring {

/// A completed inbound message.
struct Arrival {
  /// Tag given at post_recv time (ring-buffer index).
  std::uint64_t tag = 0;
  /// Payload length actually received.
  std::size_t length = 0;
  /// False when the wire failed or was torn down instead of delivering a
  /// message (peer crash, CQ shutdown). Protocols that expected no faults
  /// treat false as a fatal bug; resilient ones wait for repair.
  bool ok = true;
};

class Wire {
 public:
  virtual ~Wire() = default;

  /// Registers a memory area messages will be sent from / received into.
  /// RDMA bills registration cost and pins the region; TCP ignores this.
  /// Must cover every span later passed to send/post_recv. Registering a
  /// range that is already covered is a no-op (ring repair re-prepares
  /// slabs on a replacement wire).
  virtual sim::Task<void> prepare(std::span<std::byte> slab) = 0;

  /// Posts a receive buffer. Arrivals consume posted buffers FIFO.
  virtual sim::Task<void> post_recv(std::uint64_t tag, std::span<std::byte> buffer) = 0;

  /// Awaits the next inbound message.
  virtual sim::Task<Arrival> next_arrival() = 0;

  /// Sends one message. Returns ok when `data` is safe to reuse (RDMA: send
  /// completion; TCP: accepted into the send window), an error when the
  /// wire failed and the message may not have been delivered.
  virtual sim::Task<Status> send(std::span<const std::byte> data) = 0;

  /// Sends `header` + `payload` as one message (the resilient framing).
  /// The receiver sees them contiguous in its posted buffer. Only wires
  /// that participate in fault injection implement this.
  virtual sim::Task<Status> send_framed(const FrameHeader& header,
                                        std::span<const std::byte> payload) {
    (void)header;
    (void)payload;
    CJ_CHECK_MSG(false, "this transport does not support framed sends");
    return {};  // unreachable
  }

  /// Shuts down the send side after queued data drains.
  virtual void close_send() = 0;

  /// Shuts down the receive side once every expected arrival has been
  /// consumed (stops internal pump processes; pollers blocked in
  /// next_arrival observe ok=false).
  virtual void close_recv() {}

  /// Hard-fails the wire (simulated endpoint death): pending and future
  /// operations complete with errors on both this wire and, through the
  /// transport, its peer. Only wires that participate in fault injection
  /// implement this.
  virtual void fail() { CJ_CHECK_MSG(false, "this transport cannot fail"); }
};

}  // namespace cj::ring
