#include "ring/redistribute.h"

#include <algorithm>
#include <cstring>
#include <span>
#include <utility>

#include "common/assert.h"
#include "ring/frame.h"

namespace cj::ring {
namespace {

constexpr std::uint32_t kRedistMagic = 0x52DAB142;  // "ring data b142"

/// Record envelope, modeled on the replication phase's replica records
/// (cyclo/runner_common.h): a fixed header in front of a dense tuple
/// payload, sealed with the same FNV-1a 64 the resilient frames use.
struct RedistHeader {
  std::uint32_t magic = kRedistMagic;
  std::uint16_t src = 0;
  std::uint16_t dst = 0;
  std::uint32_t seq = 0;    ///< per-(src, dst) piece index
  std::uint32_t count = 0;  ///< tuples in this record
  std::uint64_t checksum = 0;
};
static_assert(sizeof(RedistHeader) == 24);

/// Tuples per record: buckets stream in bounded pieces, like the replica
/// phase's max_record_bytes pieces, so no link ever needs an unbounded
/// posted buffer (~64 KB payloads).
constexpr std::size_t kTuplesPerRecord = 5461;  // ~64 KB of 12-byte tuples

std::uint64_t record_checksum(const RedistHeader& header,
                              std::span<const std::byte> payload) {
  RedistHeader clean = header;
  clean.checksum = 0;
  std::byte head[sizeof(RedistHeader)];
  std::memcpy(head, &clean, sizeof(RedistHeader));
  return fnv1a64(fnv1a64(kFnvOffset,
                         std::span<const std::byte>(head, sizeof(RedistHeader))),
                 payload);
}

std::vector<std::byte> seal_record(int src, int dst, std::uint32_t seq,
                                   std::span<const rel::Tuple> tuples) {
  const std::size_t payload_bytes = tuples.size() * sizeof(rel::Tuple);
  std::vector<std::byte> record(sizeof(RedistHeader) + payload_bytes);
  RedistHeader header;
  header.src = static_cast<std::uint16_t>(src);
  header.dst = static_cast<std::uint16_t>(dst);
  header.seq = seq;
  header.count = static_cast<std::uint32_t>(tuples.size());
  const auto payload = std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(tuples.data()), payload_bytes);
  header.checksum = record_checksum(header, payload);
  std::memcpy(record.data(), &header, sizeof(RedistHeader));
  std::memcpy(record.data() + sizeof(RedistHeader), payload.data(),
              payload_bytes);
  return record;
}

/// Verifies and appends a record's tuples to the destination fragment.
void absorb_record(std::span<const std::byte> record, int expect_src,
                   int expect_dst, rel::Relation* dst) {
  CJ_CHECK_MSG(record.size() >= sizeof(RedistHeader),
               "truncated redistribution record");
  RedistHeader header;
  std::memcpy(&header, record.data(), sizeof(RedistHeader));
  const auto payload = record.subspan(sizeof(RedistHeader));
  CJ_CHECK_MSG(header.magic == kRedistMagic, "bad redistribution magic");
  CJ_CHECK_MSG(header.src == expect_src && header.dst == expect_dst,
               "redistribution record delivered to the wrong host");
  CJ_CHECK_MSG(payload.size() == header.count * sizeof(rel::Tuple),
               "redistribution record size mismatch");
  CJ_CHECK_MSG(header.checksum == record_checksum(header, payload),
               "redistribution record failed its checksum");
  dst->append(std::span<const rel::Tuple>(
      reinterpret_cast<const rel::Tuple*>(payload.data()), header.count));
}

}  // namespace

int home_host(std::uint32_t key, int hosts) {
  CJ_CHECK(hosts > 0);
  // Fibonacci multiplicative mix: decorrelates the destination from the
  // low key bits the join kernels' radix partitioning consumes.
  std::uint64_t h = (static_cast<std::uint64_t>(key) + 1) * 0x9E3779B97F4A7C15ULL;
  return static_cast<int>((h >> 33) % static_cast<std::uint64_t>(hosts));
}

RedistributeStats redistribute_by_key(std::vector<rel::Relation>* fragments) {
  CJ_CHECK(fragments != nullptr && !fragments->empty());
  const int n = static_cast<int>(fragments->size());
  RedistributeStats stats;
  if (n == 1) {
    stats.rows_kept = (*fragments)[0].rows();
    return stats;
  }

  // Cut every host's fragment into one bucket per destination. Each host
  // only ever materializes its own fragment's buckets — there is no global
  // view anywhere in this function.
  std::vector<std::vector<std::vector<rel::Tuple>>> buckets(
      static_cast<std::size_t>(n));
  for (int src = 0; src < n; ++src) {
    auto& mine = buckets[static_cast<std::size_t>(src)];
    mine.resize(static_cast<std::size_t>(n));
    for (const rel::Tuple& t : (*fragments)[static_cast<std::size_t>(src)].tuples()) {
      mine[static_cast<std::size_t>(home_host(t.key, n))].push_back(t);
    }
  }

  // Seal every travelling bucket into records and charge each link it
  // crosses: src -> dst follows the ring's data direction, (dst - src + n)
  // mod n hops, link h being the (src + h) -> (src + h + 1) wire.
  std::vector<std::uint64_t> link_bytes(static_cast<std::size_t>(n), 0);
  std::vector<rel::Relation> rebuilt;
  rebuilt.reserve(static_cast<std::size_t>(n));
  for (int dst = 0; dst < n; ++dst) {
    rel::Relation frag((*fragments)[static_cast<std::size_t>(dst)].name());
    // Own bucket lands first, then sources by hop distance — the order
    // records drain off the ring, and deterministic on both backends.
    auto& home = buckets[static_cast<std::size_t>(dst)][static_cast<std::size_t>(dst)];
    stats.rows_kept += home.size();
    frag.append(home);
    home.clear();
    home.shrink_to_fit();
    for (int hops = 1; hops < n; ++hops) {
      const int src = (dst - hops + n) % n;
      auto& bucket =
          buckets[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)];
      std::uint32_t seq = 0;
      for (std::size_t off = 0; off < bucket.size(); off += kTuplesPerRecord) {
        const std::size_t take = std::min(kTuplesPerRecord, bucket.size() - off);
        const std::vector<std::byte> record = seal_record(
            src, dst, seq++,
            std::span<const rel::Tuple>(bucket.data() + off, take));
        for (int h = 0; h < hops; ++h) {
          link_bytes[static_cast<std::size_t>((src + h) % n)] += record.size();
        }
        stats.bytes_on_wire +=
            static_cast<std::uint64_t>(record.size()) * static_cast<std::uint64_t>(hops);
        ++stats.records;
        absorb_record(record, src, dst, &frag);
      }
      stats.rows_moved += bucket.size();
      bucket.clear();
      bucket.shrink_to_fit();
    }
    rebuilt.push_back(std::move(frag));
  }
  stats.max_link_bytes = *std::max_element(link_bytes.begin(), link_bytes.end());
  *fragments = std::move(rebuilt);
  return stats;
}

}  // namespace cj::ring
