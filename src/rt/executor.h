// Executor: the rt backend's real core pool — N OS worker threads feeding
// from one queue. Implements sim::CoreExecutor, so a CorePool with an
// attached Executor runs its execute() closures as true parallel work while
// the host's protocol coroutines keep running on the engine thread.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/core_pool.h"

namespace cj::rt {

class Executor final : public sim::CoreExecutor {
 public:
  explicit Executor(int workers);
  ~Executor() override;  ///< drains nothing: all work must have completed
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  void submit(std::function<void(int worker)> fn) override;
  int workers() const override { return static_cast<int>(threads_.size()); }

 private:
  void worker_main(int id);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void(int)>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace cj::rt
