// Shared-memory wires: the rt backend's transport between host threads.
//
// One ShmLink is a duplex connection between two neighboring hosts that run
// on different OS threads; its two ShmWire endpoints implement ring::Wire,
// so the Data Roundabout entities drive them exactly like the simulated
// RDMA/TCP wires. The receive side keeps RDMA's pre-posted-buffer model:
// post_recv() queues a buffer, each inbound message is copied into the
// oldest posted buffer, and next_arrival() reports the buffer's tag. The
// credit protocol above (ring/node.cpp) guarantees a posted buffer exists
// for every arrival; a message with no buffer posted aborts, same as the
// simulated RNIC.
//
// Concurrency: one mutex per link guards both directions' queues. A send
// completes synchronously — the payload is copied under the lock, so the
// caller's buffer is immediately reusable (RDMA send-completion semantics).
// At most one coroutine per endpoint may be parked in next_arrival(); a
// producer that finds one consumes the message straight into the waiter's
// Arrival slot and wakes it via Engine::post(), the only cross-thread entry
// point a wall-clock engine has.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "ring/wire.h"
#include "sim/engine.h"

namespace cj::rt {

class ShmLink;

class ShmWire final : public ring::Wire {
 public:
  /// The engine that runs this endpoint's consumer coroutines. Must be set
  /// (by the ring builder) before the protocol starts; producers on other
  /// threads use it to wake a parked next_arrival().
  void attach_engine(sim::Engine* engine) { engine_ = engine; }

  sim::Task<void> prepare(std::span<std::byte> slab) override;
  sim::Task<void> post_recv(std::uint64_t tag,
                            std::span<std::byte> buffer) override;
  sim::Task<ring::Arrival> next_arrival() override;
  sim::Task<Status> send(std::span<const std::byte> data) override;
  sim::Task<Status> send_framed(const ring::FrameHeader& header,
                                std::span<const std::byte> payload) override;
  void close_send() override;
  void close_recv() override;
  void fail() override;

 private:
  friend class ShmLink;
  ShmWire() = default;

  Status push_message(std::vector<std::byte> bytes);

  ShmLink* link_ = nullptr;
  int side_ = 0;  ///< 0 = endpoint a, 1 = endpoint b
  sim::Engine* engine_ = nullptr;
};

class ShmLink {
 public:
  ShmLink() {
    a_.link_ = this;
    a_.side_ = 0;
    b_.link_ = this;
    b_.side_ = 1;
  }
  ShmLink(const ShmLink&) = delete;
  ShmLink& operator=(const ShmLink&) = delete;

  ShmWire& a() { return a_; }
  ShmWire& b() { return b_; }

  /// Payload bytes ever enqueued from endpoint a toward b (0) or b toward
  /// a (1). Read after the run for wire-volume accounting.
  std::uint64_t bytes_sent(int direction) const;

 private:
  friend class ShmWire;

  /// One direction of the link. All fields are guarded by mu_.
  struct Direction {
    std::deque<std::vector<std::byte>> messages;
    struct Posted {
      std::uint64_t tag;
      std::span<std::byte> buffer;
    };
    std::deque<Posted> posted;
    std::coroutine_handle<> waiter;
    sim::Engine* waiter_engine = nullptr;
    ring::Arrival* waiter_slot = nullptr;
    bool failed = false;
    bool send_closed = false;
    bool recv_closed = false;
    std::uint64_t bytes = 0;
  };

  /// Fills *out from the direction's state if an arrival (or a teardown
  /// ok=false) is deliverable right now. Caller holds mu_.
  static bool try_consume(Direction& d, ring::Arrival* out);

  mutable std::mutex mu_;
  Direction dir_[2];  ///< [0]: a -> b, [1]: b -> a
  ShmWire a_;
  ShmWire b_;
};

}  // namespace cj::rt
