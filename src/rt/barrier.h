// WallBarrier: a rendezvous for coroutines running on different wall-clock
// engines (one per host thread in the rt backend).
//
// std::barrier would block the whole engine thread — and a host parked in a
// blocking barrier cannot run its buffer-recycle coroutines, which starves
// its predecessor of credits and deadlocks the ring. This barrier parks
// only the awaiting coroutine: the engine keeps processing its other
// events, and the last arriver wakes every parked peer through
// Engine::post(). One-shot; create one per rendezvous point.
#pragma once

#include <coroutine>
#include <mutex>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "sim/engine.h"

namespace cj::rt {

class WallBarrier {
 public:
  explicit WallBarrier(int parties) : remaining_(parties) {
    CJ_CHECK(parties >= 1);
  }
  WallBarrier(const WallBarrier&) = delete;
  WallBarrier& operator=(const WallBarrier&) = delete;

  /// Awaitable: suspends until all parties have arrived. `engine` must be
  /// the engine the awaiting coroutine runs on.
  auto arrive_and_wait(sim::Engine& engine) {
    struct Awaiter {
      WallBarrier* barrier;
      sim::Engine* engine;

      bool await_ready() { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        // Decrement and (if not last) registration happen under one lock:
        // a ready-check before suspension would let the last arriver's
        // wake-up race our own parking.
        std::vector<std::pair<sim::Engine*, std::coroutine_handle<>>> wake;
        {
          std::lock_guard<std::mutex> lk(barrier->mu_);
          CJ_CHECK_MSG(barrier->remaining_ > 0,
                       "WallBarrier is one-shot and already released");
          if (--barrier->remaining_ > 0) {
            barrier->waiters_.emplace_back(engine, h);
            return true;
          }
          wake.swap(barrier->waiters_);
        }
        for (auto& [e, waiter] : wake) e->post(waiter);
        return false;  // last arriver continues inline
      }
      void await_resume() {}
    };
    return Awaiter{this, &engine};
  }

 private:
  std::mutex mu_;
  int remaining_;
  std::vector<std::pair<sim::Engine*, std::coroutine_handle<>>> waiters_;
};

}  // namespace cj::rt
