#include "rt/wire.h"

#include <cstring>
#include <utility>

#include "common/assert.h"

namespace cj::rt {

std::uint64_t ShmLink::bytes_sent(int direction) const {
  CJ_CHECK(direction == 0 || direction == 1);
  std::lock_guard<std::mutex> lk(mu_);
  return dir_[direction].bytes;
}

bool ShmLink::try_consume(Direction& d, ring::Arrival* out) {
  if (d.failed || d.recv_closed) {
    *out = ring::Arrival{0, 0, false};
    return true;
  }
  if (d.messages.empty()) {
    if (d.send_closed) {
      // The only producer of this direction hung up: no message will ever
      // come, so a poller gets the teardown signal instead of parking.
      *out = ring::Arrival{0, 0, false};
      return true;
    }
    return false;
  }
  CJ_CHECK_MSG(!d.posted.empty(),
               "arrival with no posted receive buffer (credit protocol "
               "violation)");
  const Direction::Posted slot = d.posted.front();
  const std::vector<std::byte>& msg = d.messages.front();
  CJ_CHECK_MSG(msg.size() <= slot.buffer.size(),
               "message larger than its posted buffer");
  if (!msg.empty()) std::memcpy(slot.buffer.data(), msg.data(), msg.size());
  *out = ring::Arrival{slot.tag, msg.size(), true};
  d.posted.pop_front();
  d.messages.pop_front();
  return true;
}

sim::Task<void> ShmWire::prepare(std::span<std::byte> slab) {
  // Nothing to register: both endpoints live in one address space.
  (void)slab;
  co_return;
}

sim::Task<void> ShmWire::post_recv(std::uint64_t tag,
                                   std::span<std::byte> buffer) {
  {
    std::lock_guard<std::mutex> lk(link_->mu_);
    ShmLink::Direction& d = link_->dir_[1 - side_];
    if (!d.failed && !d.recv_closed) {
      d.posted.push_back(ShmLink::Direction::Posted{tag, buffer});
    }
  }
  co_return;
}

sim::Task<ring::Arrival> ShmWire::next_arrival() {
  ring::Arrival out;
  struct Awaiter {
    ShmWire* wire;
    ring::Arrival* out;
    bool await_ready() { return false; }
    bool await_suspend(std::coroutine_handle<> h) {
      // Consume-or-park must be one atomic step: checking first and parking
      // later would let a producer slip a message (and find no waiter)
      // between the two.
      std::lock_guard<std::mutex> lk(wire->link_->mu_);
      ShmLink::Direction& d = wire->link_->dir_[1 - wire->side_];
      if (ShmLink::try_consume(d, out)) return false;
      CJ_CHECK_MSG(d.waiter == nullptr,
                   "one pending next_arrival per wire endpoint");
      CJ_CHECK_MSG(wire->engine_ != nullptr,
                   "ShmWire polled before attach_engine");
      d.waiter = h;
      d.waiter_slot = out;
      d.waiter_engine = wire->engine_;
      return true;
    }
    void await_resume() {}
  };
  co_await Awaiter{this, &out};
  co_return out;
}

Status ShmWire::push_message(std::vector<std::byte> bytes) {
  std::coroutine_handle<> wake;
  sim::Engine* wake_engine = nullptr;
  {
    std::lock_guard<std::mutex> lk(link_->mu_);
    ShmLink::Direction& d = link_->dir_[side_];
    if (d.failed) return unavailable("send failed: shm wire is down");
    if (d.recv_closed) return Status::ok();  // receiver torn down: dropped
    d.bytes += bytes.size();
    d.messages.push_back(std::move(bytes));
    if (d.waiter != nullptr && ShmLink::try_consume(d, d.waiter_slot)) {
      wake = d.waiter;
      wake_engine = d.waiter_engine;
      d.waiter = nullptr;
      d.waiter_slot = nullptr;
      d.waiter_engine = nullptr;
    }
  }
  if (wake != nullptr) wake_engine->post(wake);
  return Status::ok();
}

sim::Task<Status> ShmWire::send(std::span<const std::byte> data) {
  co_return push_message(
      std::vector<std::byte>(data.begin(), data.end()));
}

sim::Task<Status> ShmWire::send_framed(const ring::FrameHeader& header,
                                       std::span<const std::byte> payload) {
  std::vector<std::byte> bytes(ring::kFrameBytes + payload.size());
  ring::encode_frame(header, bytes.data());
  if (!payload.empty()) {
    std::memcpy(bytes.data() + ring::kFrameBytes, payload.data(),
                payload.size());
  }
  co_return push_message(std::move(bytes));
}

void ShmWire::close_send() {
  std::coroutine_handle<> wake;
  sim::Engine* wake_engine = nullptr;
  {
    std::lock_guard<std::mutex> lk(link_->mu_);
    ShmLink::Direction& d = link_->dir_[side_];
    d.send_closed = true;
    if (d.waiter != nullptr && ShmLink::try_consume(d, d.waiter_slot)) {
      wake = d.waiter;
      wake_engine = d.waiter_engine;
      d.waiter = nullptr;
      d.waiter_slot = nullptr;
      d.waiter_engine = nullptr;
    }
  }
  if (wake != nullptr) wake_engine->post(wake);
}

void ShmWire::close_recv() {
  std::coroutine_handle<> wake;
  sim::Engine* wake_engine = nullptr;
  {
    std::lock_guard<std::mutex> lk(link_->mu_);
    ShmLink::Direction& d = link_->dir_[1 - side_];
    d.recv_closed = true;
    if (d.waiter != nullptr) {
      *d.waiter_slot = ring::Arrival{0, 0, false};
      wake = d.waiter;
      wake_engine = d.waiter_engine;
      d.waiter = nullptr;
      d.waiter_slot = nullptr;
      d.waiter_engine = nullptr;
    }
  }
  if (wake != nullptr) wake_engine->post(wake);
}

void ShmWire::fail() {
  std::pair<sim::Engine*, std::coroutine_handle<>> wake[2] = {};
  {
    std::lock_guard<std::mutex> lk(link_->mu_);
    for (int i = 0; i < 2; ++i) {
      ShmLink::Direction& d = link_->dir_[i];
      d.failed = true;
      if (d.waiter != nullptr) {
        *d.waiter_slot = ring::Arrival{0, 0, false};
        wake[i] = {d.waiter_engine, d.waiter};
        d.waiter = nullptr;
        d.waiter_slot = nullptr;
        d.waiter_engine = nullptr;
      }
    }
  }
  for (auto& [engine, handle] : wake) {
    if (handle != nullptr) engine->post(handle);
  }
}

}  // namespace cj::rt
