#include "rt/executor.h"

#include <utility>

#include "common/assert.h"

namespace cj::rt {

Executor::Executor(int workers) {
  CJ_CHECK_MSG(workers >= 1, "an executor needs at least one worker");
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  // Work left in the queue at teardown would mean a coroutine is still
  // suspended waiting for its completion — a shutdown-ordering bug.
  CJ_CHECK_MSG(queue_.empty(), "executor destroyed with queued work");
}

void Executor::submit(std::function<void(int worker)> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    CJ_CHECK_MSG(!stop_, "submit on a stopped executor");
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void Executor::worker_main(int id) {
  for (;;) {
    std::function<void(int)> fn;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn(id);
  }
}

}  // namespace cj::rt
