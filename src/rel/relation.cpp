#include "rel/relation.h"

namespace cj::rel {

std::vector<Relation> split_even(const Relation& relation, int n) {
  CJ_CHECK_MSG(n >= 1, "cannot split into zero fragments");
  std::vector<Relation> fragments;
  fragments.reserve(static_cast<std::size_t>(n));
  const std::size_t rows = relation.rows();
  for (int i = 0; i < n; ++i) {
    const std::size_t begin = rows * static_cast<std::size_t>(i) / static_cast<std::size_t>(n);
    const std::size_t end =
        rows * (static_cast<std::size_t>(i) + 1) / static_cast<std::size_t>(n);
    auto slice = relation.tuples().subspan(begin, end - begin);
    Relation frag(relation.name() + "[" + std::to_string(i) + "]");
    frag.reserve(slice.size());
    frag.append(slice);
    fragments.push_back(std::move(frag));
  }
  return fragments;
}

}  // namespace cj::rel
