#include "rel/generator.h"

#include "common/assert.h"
#include "common/rng.h"
#include "common/zipf.h"

namespace cj::rel {

Relation generate(const GenSpec& spec, const std::string& name,
                  std::uint64_t payload_tag) {
  CJ_CHECK_MSG(spec.rows > 0, "generator needs a positive row count");
  const std::uint64_t domain = spec.key_domain == 0 ? spec.rows : spec.key_domain;
  CJ_CHECK_MSG(domain <= (1ULL << 32), "4-byte keys limit the domain to 2^32");

  Relation out(name);
  out.reserve(spec.rows);
  Rng rng(spec.seed);

  if (spec.zipf_z == 0.0) {
    for (std::uint64_t i = 0; i < spec.rows; ++i) {
      const auto key = static_cast<std::uint32_t>(rng.next_below(domain));
      out.push_back(Tuple{key, (payload_tag << 48) | i});
    }
  } else {
    ZipfGenerator zipf(domain, spec.zipf_z);
    for (std::uint64_t i = 0; i < spec.rows; ++i) {
      // Zipf ranks are 1-based; map to [0, domain).
      const auto key = static_cast<std::uint32_t>(zipf(rng) - 1);
      out.push_back(Tuple{key, (payload_tag << 48) | i});
    }
  }
  return out;
}

}  // namespace cj::rel
