// Workload generators matching the paper's experiments.
//
// The evaluation populates 4-byte join keys either uniformly (Figs. 7, 8,
// 10, 11, 12) or Zipf-distributed with factor z (Fig. 9). Payloads carry a
// unique row id so join results can be checksummed.
#pragma once

#include <cstdint>
#include <string>

#include "rel/relation.h"

namespace cj::rel {

struct GenSpec {
  /// Number of rows to generate.
  std::uint64_t rows = 0;
  /// Keys are drawn from [0, key_domain). Defaults to `rows` when 0 —
  /// roughly one match per key for uniform data, as in the paper.
  std::uint64_t key_domain = 0;
  /// Zipf exponent; 0 means uniform.
  double zipf_z = 0.0;
  /// PRNG seed (fully reproducible streams).
  std::uint64_t seed = 42;
};

/// Generates a relation per the spec. Payload of row i is i (combined with a
/// relation tag in the upper bits so R and S payloads differ).
Relation generate(const GenSpec& spec, const std::string& name,
                  std::uint64_t payload_tag = 0);

/// Data volume of `rows` tuples, in bytes (12 bytes/tuple).
constexpr std::uint64_t volume_bytes(std::uint64_t rows) { return rows * 12; }

/// Rows that fit a target data volume — the paper states sizes in GB
/// (e.g. "3.2 GB per node" == ~140 M rows per relation per node pair).
constexpr std::uint64_t rows_for_volume(std::uint64_t bytes) { return bytes / 12; }

}  // namespace cj::rel
