// Relation storage: the paper's 12-byte tuples (4-byte join key + 8-byte
// payload) kept densely packed in main memory.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/assert.h"

namespace cj::rel {

#pragma pack(push, 1)
/// One tuple, exactly 12 bytes as in the paper's experiments. The payload
/// stands in for a row id / rest-of-row reference.
struct Tuple {
  std::uint32_t key;
  std::uint64_t payload;

  friend bool operator==(const Tuple&, const Tuple&) = default;
};
#pragma pack(pop)

static_assert(sizeof(Tuple) == 12, "paper workload uses 12-byte tuples");

/// An in-memory relation (or fragment of one). Move-only value type: copies
/// of multi-gigabyte tables must be explicit (use clone()).
class Relation {
 public:
  Relation() = default;
  explicit Relation(std::string name) : name_(std::move(name)) {}
  Relation(std::string name, std::vector<Tuple> tuples)
      : name_(std::move(name)), tuples_(std::move(tuples)) {}

  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  /// Explicit deep copy.
  Relation clone() const { return Relation(name_, tuples_); }

  const std::string& name() const { return name_; }
  std::size_t rows() const { return tuples_.size(); }
  std::uint64_t bytes() const { return tuples_.size() * sizeof(Tuple); }
  bool empty() const { return tuples_.empty(); }

  std::span<const Tuple> tuples() const { return tuples_; }
  std::span<Tuple> mutable_tuples() { return tuples_; }

  const Tuple& operator[](std::size_t i) const {
    CJ_DCHECK(i < tuples_.size());
    return tuples_[i];
  }

  void reserve(std::size_t n) { tuples_.reserve(n); }
  void push_back(Tuple t) { tuples_.push_back(t); }
  void append(std::span<const Tuple> ts) {
    tuples_.insert(tuples_.end(), ts.begin(), ts.end());
  }

 private:
  std::string name_;
  std::vector<Tuple> tuples_;
};

/// Splits a relation into `n` fragments of near-equal size (contiguous
/// ranges; the paper only assumes the distribution of S is "reasonably
/// even"). Fragment i gets rows [i*rows/n, (i+1)*rows/n).
std::vector<Relation> split_even(const Relation& relation, int n);

}  // namespace cj::rel
