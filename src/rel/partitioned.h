// Per-host partitioned relation handles + simple column statistics.
//
// The planner (src/plan) works over relations that live as one fragment
// per ring host — either the even split a cyclo-join run would perform
// anyway, or the distributed output partitions of a previous round. A
// PartitionedRelation is exactly that: a named set of per-host fragments
// that is never concatenated back into one address space. ColumnStats are
// the planner's cardinality inputs: row count, key range, and a KMV
// (k-minimum-values) distinct-count sketch that is exact below the sketch
// size and an unbiased estimate above it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rel/relation.h"

namespace cj::rel {

/// Single-column (the join key) statistics of a relation or fragment set.
struct ColumnStats {
  std::uint64_t rows = 0;
  std::uint32_t min_key = 0;
  std::uint32_t max_key = 0;
  /// Distinct join keys: exact when the relation has fewer than the KMV
  /// sketch size (1024) distinct keys, a KMV estimate otherwise.
  std::uint64_t distinct_keys = 0;
};

/// Collects key statistics over one tuple span.
ColumnStats collect_stats(std::span<const Tuple> tuples);

/// Collects key statistics over a relation.
ColumnStats collect_stats(const Relation& relation);

/// Collects key statistics over a fragment set (one logical relation kept
/// as per-host pieces): a single sketch absorbs every fragment, so the
/// distinct count is over the union, not a sum of per-fragment counts.
ColumnStats collect_stats(std::span<const Relation> fragments);

/// One logical relation held as per-host fragments. Move-only, like
/// Relation: a multi-gigabyte table is never copied implicitly, and —
/// deliberately — there is no accessor that concatenates the fragments
/// into one Relation. Multi-round plans keep intermediates in this form.
class PartitionedRelation {
 public:
  PartitionedRelation() = default;
  PartitionedRelation(std::string name, std::vector<Relation> fragments);

  PartitionedRelation(PartitionedRelation&&) = default;
  PartitionedRelation& operator=(PartitionedRelation&&) = default;
  PartitionedRelation(const PartitionedRelation&) = delete;
  PartitionedRelation& operator=(const PartitionedRelation&) = delete;

  /// Splits a relation into `hosts` even fragments (rel::split_even) and
  /// collects its stats — how base relations enter a plan.
  static PartitionedRelation split(const Relation& relation, int hosts);

  const std::string& name() const { return name_; }
  int hosts() const { return static_cast<int>(fragments_.size()); }
  std::uint64_t rows() const;
  std::uint64_t bytes() const { return rows() * sizeof(Tuple); }
  const ColumnStats& stats() const { return stats_; }

  std::span<const Relation> fragments() const { return fragments_; }
  std::span<Relation> mutable_fragments() { return fragments_; }
  const Relation& fragment(int host) const {
    return fragments_[static_cast<std::size_t>(host)];
  }

  /// Rows held by each host — the planner's skew signal and the fragment-
  /// locality invariant the tests assert (no host holds everything).
  std::vector<std::uint64_t> rows_per_host() const;

  /// Consumes the handle, releasing the fragments to the caller (a round's
  /// rotating/stationary inputs are moved, not copied).
  std::vector<Relation> take_fragments() &&;

  /// Recomputes stats after fragments were mutated in place (e.g. after a
  /// redistribution pass or an in-place projection).
  void refresh_stats();

 private:
  std::string name_;
  std::vector<Relation> fragments_;
  ColumnStats stats_;
};

}  // namespace cj::rel
