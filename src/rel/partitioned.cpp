#include "rel/partitioned.h"

#include <algorithm>
#include <limits>
#include <unordered_set>
#include <utility>

#include "common/assert.h"

namespace cj::rel {
namespace {

/// KMV sketch size: distinct counts are exact below k, estimated above.
constexpr std::size_t kSketchK = 1024;

/// Mixes a 32-bit key into a well-distributed 64-bit hash (splitmix64
/// finalizer) — the KMV estimator needs hashes that behave uniformly.
std::uint64_t mix_key(std::uint32_t key) {
  std::uint64_t h = static_cast<std::uint64_t>(key) + 0x9E3779B97F4A7C15ULL;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  return h ^ (h >> 31);
}

/// Streaming KMV distinct-count sketch: keeps the k smallest distinct key
/// hashes as a max-heap; D ≈ (k-1) / U(k) where U(k) is the k-th smallest
/// hash normalized to (0, 1].
class KmvSketch {
 public:
  void add(std::uint32_t key) {
    const std::uint64_t h = mix_key(key);
    if (heap_.size() < kSketchK) {
      if (members_.insert(h).second) push(h);
      return;
    }
    if (h >= heap_.front() || !members_.insert(h).second) return;
    members_.erase(heap_.front());
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
    push(h);
  }

  std::uint64_t estimate() const {
    if (heap_.size() < kSketchK) return heap_.size();  // exact
    const double kth = static_cast<double>(heap_.front());
    const double unit =
        kth / (static_cast<double>(std::numeric_limits<std::uint64_t>::max()) + 1.0);
    if (unit <= 0.0) return heap_.size();
    return static_cast<std::uint64_t>(
        static_cast<double>(kSketchK - 1) / unit + 0.5);
  }

 private:
  void push(std::uint64_t h) {
    heap_.push_back(h);
    std::push_heap(heap_.begin(), heap_.end());
  }

  std::vector<std::uint64_t> heap_;  // max-heap of the k smallest hashes
  std::unordered_set<std::uint64_t> members_;  // mirrors heap_ for O(1) dedup
};

void absorb(std::span<const Tuple> tuples, ColumnStats* stats, KmvSketch* kmv) {
  for (const Tuple& t : tuples) {
    if (stats->rows == 0) {
      stats->min_key = stats->max_key = t.key;
    } else {
      stats->min_key = std::min(stats->min_key, t.key);
      stats->max_key = std::max(stats->max_key, t.key);
    }
    ++stats->rows;
    kmv->add(t.key);
  }
}

}  // namespace

ColumnStats collect_stats(std::span<const Tuple> tuples) {
  ColumnStats stats;
  KmvSketch kmv;
  absorb(tuples, &stats, &kmv);
  stats.distinct_keys = kmv.estimate();
  return stats;
}

ColumnStats collect_stats(const Relation& relation) {
  return collect_stats(relation.tuples());
}

ColumnStats collect_stats(std::span<const Relation> fragments) {
  ColumnStats stats;
  KmvSketch kmv;
  for (const Relation& frag : fragments) absorb(frag.tuples(), &stats, &kmv);
  stats.distinct_keys = kmv.estimate();
  return stats;
}

PartitionedRelation::PartitionedRelation(std::string name,
                                         std::vector<Relation> fragments)
    : name_(std::move(name)), fragments_(std::move(fragments)) {
  CJ_CHECK_MSG(!fragments_.empty(),
               "a partitioned relation needs at least one fragment");
  refresh_stats();
}

PartitionedRelation PartitionedRelation::split(const Relation& relation,
                                               int hosts) {
  CJ_CHECK(hosts > 0);
  return PartitionedRelation(relation.name(), split_even(relation, hosts));
}

std::uint64_t PartitionedRelation::rows() const {
  std::uint64_t total = 0;
  for (const Relation& frag : fragments_) total += frag.rows();
  return total;
}

std::vector<std::uint64_t> PartitionedRelation::rows_per_host() const {
  std::vector<std::uint64_t> out;
  out.reserve(fragments_.size());
  for (const Relation& frag : fragments_) out.push_back(frag.rows());
  return out;
}

std::vector<Relation> PartitionedRelation::take_fragments() && {
  return std::move(fragments_);
}

void PartitionedRelation::refresh_stats() {
  stats_ = collect_stats(std::span<const Relation>(fragments_));
}

}  // namespace cj::rel
