// Plan-level costing: what one cyclo-join round of an N-way plan costs.
//
// cyclo_cost.h models a single symmetric R ⋈ S round (|R| = |S|); a query
// plan needs the asymmetric version — rotating side X, stationary side Y,
// either of which may be an intermediate — plus cardinality estimation so
// the cost of round k+1 can be computed from estimates, not measurements.
// This header provides both, on top of the same CycloCostParams
// calibration the validated single-round model uses:
//
//   cardinality   |X ⋈ Y| ≈ |X|·|Y| / max(ndv(X), ndv(Y)) for an equi join
//                 on the shared key (containment-of-values assumption),
//                 × (2·band + 1) for a band join,
//   round cost    setup  = max(build Y_i, reorg X_i) per host,
//                 join   = |X| probes per host over min(cores, threads),
//                 xfer   = |X| bytes per link per revolution,
//                 total  = setup + max(join, xfer)  (the roundabout hides
//                 the wire under the join whenever it can),
//   wire bytes    rotation: |X| tuple bytes across n−1 links; output
//                 rebalance (ring/redistribute.h): uniformly hashed rows
//                 travel (n−1)/2 links on average.
//
// PlanGen (src/plan) runs its DP over these numbers; tests validate the
// ordering decisions against measured runs.
#pragma once

#include <cstdint>

#include "model/cyclo_cost.h"

namespace cj::model {

/// Planner-side statistics of one join input (base or intermediate).
struct PlanRelStats {
  double rows = 0;
  double distinct_keys = 1;
};

/// Cluster shape + kernel calibration for plan costing.
struct PlanCostParams {
  CycloCostParams kernel;
  int num_hosts = 6;
};

/// Estimated |A ⋈ B| on the shared key (band = 0 for an equi join).
double estimate_join_rows(const PlanRelStats& a, const PlanRelStats& b,
                          std::uint32_t band = 0);

/// Estimated distinct keys of A ⋈ B (containment: the smaller domain).
double estimate_join_distinct(const PlanRelStats& a, const PlanRelStats& b);

/// Cost breakdown of one round with a fixed rotating side.
struct RoundCost {
  double setup_ns = 0;
  double join_ns = 0;      ///< pure compute, spread over the join threads
  double transfer_ns = 0;  ///< time each link needs to feed one revolution
  /// Rotation traffic: rotating tuple bytes across every data link.
  double rotation_bytes = 0;
  /// Expected rebalance traffic for this round's output (0 when the
  /// output is not redistributed, i.e. the plan's final round).
  double redistribute_bytes = 0;
  double total_ns = 0;  ///< setup + max(join, transfer) + redistribute
  double wire_bytes() const { return rotation_bytes + redistribute_bytes; }
};

/// Costs one round: `rotating` spins past every host's fragment of
/// `stationary`. `out_rows` is the round's estimated output cardinality
/// (estimate_join_rows); set `redistribute_output` for every round whose
/// output feeds another round.
RoundCost cost_round(const PlanRelStats& rotating,
                     const PlanRelStats& stationary, JoinKind kind,
                     double out_rows, bool redistribute_output,
                     const PlanCostParams& params);

/// Costs both orientations of X ⋈ Y and returns the cheaper one;
/// `*rotate_first` reports whether X (the first argument) rotates.
RoundCost pick_rotation(const PlanRelStats& x, const PlanRelStats& y,
                        JoinKind kind, double out_rows,
                        bool redistribute_output, const PlanCostParams& params,
                        bool* rotate_first);

}  // namespace cj::model
