#include "model/cyclo_cost.h"

#include <algorithm>

#include "common/assert.h"

namespace cj::model {

namespace {

SimDuration ns(double v) { return static_cast<SimDuration>(v); }

}  // namespace

CycloCostEstimate estimate(JoinKind kind, std::uint64_t rows, int num_hosts,
                           const CycloCostParams& params) {
  CJ_CHECK(num_hosts >= 1);
  CJ_CHECK(params.cores_per_host >= 1);
  CycloCostEstimate out;

  const double rows_per_host =
      static_cast<double>(rows) / static_cast<double>(num_hosts);

  // ---- setup: two prep tasks per host, concurrent when cores allow ----
  double task_a = 0.0;  // prepare stationary fragment
  double task_b = 0.0;  // reorganize rotating fragment
  switch (kind) {
    case JoinKind::kHash:
      task_a = rows_per_host * params.hash_build_ns_per_tuple;
      task_b = rows_per_host * params.hash_reorg_ns_per_tuple;
      break;
    case JoinKind::kSortMerge:
      task_a = rows_per_host * params.sort_ns_per_tuple;
      task_b = rows_per_host * params.sort_ns_per_tuple;
      break;
  }
  out.setup = params.cores_per_host >= 2 ? ns(std::max(task_a, task_b))
                                         : ns(task_a + task_b);

  // ---- join phase: every host touches all of R once (Equation (*)) ----
  const int parallelism = std::min(params.cores_per_host, params.join_threads);
  const double per_tuple = kind == JoinKind::kHash
                               ? params.hash_probe_ns_per_tuple
                               : params.merge_ns_per_tuple;
  const double compute_ns =
      static_cast<double>(rows) * per_tuple / static_cast<double>(parallelism);
  out.join = ns(compute_ns);

  // ---- network: each host must take delivery of all foreign chunks ----
  if (num_hosts > 1) {
    const double inbound_bytes =
        (static_cast<double>(rows) - rows_per_host) * params.tuple_bytes;
    const double transfer_ns =
        inbound_bytes / params.link_bandwidth_bytes_per_sec * 1e9;
    out.required_link_rate = compute_ns > 0 ? inbound_bytes / (compute_ns * 1e-9) : 0;
    if (transfer_ns > compute_ns) {
      out.sync = ns(transfer_ns - compute_ns);
    }
  }
  out.network_hidden = out.sync == 0;
  return out;
}

int sort_merge_crossover_hosts(std::uint64_t rows_per_host, int max_hosts,
                               const CycloCostParams& params) {
  for (int n = 2; n <= max_hosts; ++n) {
    const std::uint64_t rows = rows_per_host * static_cast<std::uint64_t>(n);
    const CycloCostEstimate hash = estimate(JoinKind::kHash, rows, n, params);
    const CycloCostEstimate merge = estimate(JoinKind::kSortMerge, rows, n, params);
    if (merge.total() < hash.total()) return n;
  }
  return 0;
}

}  // namespace cj::model
