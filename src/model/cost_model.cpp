#include "model/cost_model.h"

#include "common/assert.h"

namespace cj::model {

std::string to_string(StackKind kind) {
  switch (kind) {
    case StackKind::kKernelTcp: return "everything-on-cpu";
    case StackKind::kToeOffload: return "network-stack-on-nic";
    case StackKind::kRdma: return "rdma";
  }
  return "?";
}

OverheadBreakdown cpu_overhead(StackKind kind, const CostModelParams& params) {
  const auto& tcp = params.tcp;
  const double seg = static_cast<double>(tcp.segment_size);

  // Kernel TCP, per byte, summed over one host's send + receive path.
  const double copying = tcp.tx_copy_ns_per_byte + tcp.rx_copy_ns_per_byte;
  const double segment_cost_ns =
      static_cast<double>(tcp.tx_stack_cost_per_segment +
                          tcp.rx_stack_cost_per_segment);
  const double stack = params.stack_share_of_segment_cost * segment_cost_ns / seg;
  const double driver =
      (1.0 - params.stack_share_of_segment_cost) * segment_cost_ns / seg;
  const double switches = static_cast<double>(tcp.rx_wakeup_cost) / seg;

  switch (kind) {
    case StackKind::kKernelTcp:
      return OverheadBreakdown{copying, stack, driver, switches};
    case StackKind::kToeOffload:
      // The NIC runs the protocol; data still crosses the memory bus into
      // kernel buffers and wake-ups still happen — which is why the paper's
      // middle bar is barely lower than the left one.
      return OverheadBreakdown{copying, 0.0, driver * 0.5, switches};
    case StackKind::kRdma: {
      // Zero copy, full offload: only work-request posting remains, and the
      // queue-based interface removes the per-segment wake-ups.
      const double post =
          params.rdma_post_cost_ns / static_cast<double>(params.rdma_message_bytes);
      return OverheadBreakdown{0.0, 0.0, post, 0.0};
    }
  }
  CJ_CHECK(false);
  return {};
}

double cpu_share_at(StackKind kind, double gbps, int cores, double core_ghz,
                    const CostModelParams& params) {
  CJ_CHECK(cores >= 1 && core_ghz > 0 && gbps >= 0);
  const double bytes_per_sec = gbps * 1e9 / 8.0;
  // Overheads are stated in reference-core (2.33 GHz) nanoseconds.
  const double ref_ns_per_byte = cpu_overhead(kind, params).total();
  const double ns_per_byte = ref_ns_per_byte * (2.33 / core_ghz);
  const double busy_cores = bytes_per_sec * ns_per_byte * 1e-9;
  return busy_cores / static_cast<double>(cores);
}

}  // namespace cj::model
