// Analytical model of per-host CPU overhead for high-speed network I/O —
// reproduces the decomposition of paper Fig. 3 (after Foong et al. [10]):
// kernel TCP burns ~1 GHz per 1 Gb/s, roughly half of it copying payload;
// offloading only the protocol stack to the NIC (TOE) barely helps; only
// RDMA (zero copy + direct data placement + full offload) removes the
// overhead.
//
// The constants are shared with the tcpsim substrate so the model and the
// measured simulation agree by construction where they overlap; the bench
// for Fig. 3 prints both.
#pragma once

#include <string>

#include "tcpsim/tcp.h"

namespace cj::model {

/// Which parts of network processing run on the host CPU.
enum class StackKind {
  kKernelTcp,   ///< everything on the CPU (Fig. 3, left bar)
  kToeOffload,  ///< protocol stack on the NIC, copies remain (middle bar)
  kRdma,        ///< full offload + zero copy (right bar)
};

std::string to_string(StackKind kind);

/// Host-CPU cost per transferred byte, decomposed. Units: ns of a
/// reference-core (2.33 GHz Xeon) per payload byte, summed over the send
/// and receive side of one host.
struct OverheadBreakdown {
  double data_copying = 0.0;
  double network_stack = 0.0;
  double driver = 0.0;
  double context_switches = 0.0;

  double total() const {
    return data_copying + network_stack + driver + context_switches;
  }
};

struct CostModelParams {
  tcpsim::TcpModelConfig tcp;
  /// Of the per-segment kernel cost, the share that is protocol stack
  /// (the rest is driver work). TOE removes the stack share.
  double stack_share_of_segment_cost = 0.6;
  /// RDMA per-work-request CPU cost and transfer unit.
  double rdma_post_cost_ns = 300.0;
  std::size_t rdma_message_bytes = 1 << 20;
};

/// Per-byte CPU overhead of one configuration.
OverheadBreakdown cpu_overhead(StackKind kind, const CostModelParams& params = {});

/// CPU share (0..1) of the reference host needed to sustain `gbps` of
/// throughput with the given stack, on `cores` cores at `core_ghz`.
double cpu_share_at(StackKind kind, double gbps, int cores, double core_ghz,
                    const CostModelParams& params = {});

}  // namespace cj::model
