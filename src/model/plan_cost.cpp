#include "model/plan_cost.h"

#include <algorithm>

#include "common/assert.h"

namespace cj::model {

double estimate_join_rows(const PlanRelStats& a, const PlanRelStats& b,
                          std::uint32_t band) {
  const double ndv = std::max({a.distinct_keys, b.distinct_keys, 1.0});
  const double equi = a.rows * b.rows / ndv;
  // A band predicate |k_a − k_b| <= band widens every key's match window
  // to 2·band + 1 neighboring keys.
  return equi * (2.0 * static_cast<double>(band) + 1.0);
}

double estimate_join_distinct(const PlanRelStats& a, const PlanRelStats& b) {
  // Containment of values: the join key survives with the smaller domain.
  return std::max(1.0, std::min(a.distinct_keys, b.distinct_keys));
}

RoundCost cost_round(const PlanRelStats& rotating,
                     const PlanRelStats& stationary, JoinKind kind,
                     double out_rows, bool redistribute_output,
                     const PlanCostParams& params) {
  const CycloCostParams& k = params.kernel;
  const int n = std::max(1, params.num_hosts);
  const double rot_per_host = rotating.rows / n;
  const double stat_per_host = stationary.rows / n;
  const double threads =
      std::max(1, std::min(k.cores_per_host, k.join_threads));

  RoundCost cost;
  switch (kind) {
    case JoinKind::kHash:
      // Setup: the stationary build and the rotating reorg run concurrently
      // on each host's cores; the slower one gates the phase.
      cost.setup_ns = std::max(stat_per_host * k.hash_build_ns_per_tuple,
                               rot_per_host * k.hash_reorg_ns_per_tuple);
      // Join: every host probes all of the rotating side once (Eq. (*)).
      cost.join_ns = rotating.rows * k.hash_probe_ns_per_tuple / threads;
      break;
    case JoinKind::kSortMerge:
      cost.setup_ns = std::max(stat_per_host, rot_per_host) *
                      k.sort_ns_per_tuple;
      cost.join_ns = rotating.rows * k.merge_ns_per_tuple / threads;
      break;
  }

  // Each data link must deliver the whole rotating side once per
  // revolution; rotation traffic totals |X| bytes on each of the n−1
  // forwarding links.
  const double rot_bytes = rotating.rows * k.tuple_bytes;
  cost.transfer_ns = n > 1
                         ? rot_bytes / k.link_bandwidth_bytes_per_sec * 1e9
                         : 0.0;
  cost.rotation_bytes = n > 1 ? rot_bytes * (n - 1) : 0.0;

  double redistribute_ns = 0.0;
  if (redistribute_output && n > 1) {
    // Uniform hash homes: (n−1)/n of the output rows move, n/2 links each
    // on average — (n−1)/2 link crossings per output row.
    cost.redistribute_bytes =
        out_rows * k.tuple_bytes * static_cast<double>(n - 1) / 2.0;
    // The phase's makespan is the busiest link's share of that traffic.
    redistribute_ns = cost.redistribute_bytes / n /
                      k.link_bandwidth_bytes_per_sec * 1e9;
  }

  cost.total_ns =
      cost.setup_ns + std::max(cost.join_ns, cost.transfer_ns) + redistribute_ns;
  return cost;
}

RoundCost pick_rotation(const PlanRelStats& x, const PlanRelStats& y,
                        JoinKind kind, double out_rows,
                        bool redistribute_output, const PlanCostParams& params,
                        bool* rotate_first) {
  CJ_CHECK(rotate_first != nullptr);
  const RoundCost x_rotates =
      cost_round(x, y, kind, out_rows, redistribute_output, params);
  const RoundCost y_rotates =
      cost_round(y, x, kind, out_rows, redistribute_output, params);
  *rotate_first = x_rotates.total_ns <= y_rotates.total_ns;
  return *rotate_first ? x_rotates : y_rotates;
}

}  // namespace cj::model
