// Analytical cost model for cyclo-join — the paper's Sec. VII names "a
// complete cost model for cyclo-join" as the project's ongoing work; this
// module provides one, and the test suite validates it against the
// simulator (which in turn runs the real kernels).
//
// The model predicts, for a ring of n hosts with c cores each joining
// |R| = |S| = `rows` tuples:
//
//   setup      one host prepares rows/n tuples of each relation; the two
//              prep tasks (build S / reorganize R) run concurrently on the
//              host's cores,
//   join       every host touches all of R once: |R| probe/merge steps at
//              the algorithm's per-tuple cost, spread over min(c, threads)
//              cores (paper Equation (*)),
//   sync       the network must deliver |R| bytes per host per revolution;
//              whenever the join consumes faster than the wire feeds, the
//              difference surfaces as synchronization time (Fig. 11),
//   total      setup + max(join, transfer) for n > 1; setup + join locally.
//
// Per-tuple kernel costs are supplied by a CycloCostParams calibration —
// defaults match this repository's measured kernels scaled to the paper's
// 2.33 GHz Xeon (see bench/harness.h). The crossover helpers answer the
// paper's "sort-merge overtakes hash at ~30 nodes" style questions
// analytically.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace cj::model {

enum class JoinKind { kHash, kSortMerge };

struct CycloCostParams {
  // Per-tuple kernel costs in ns on one reference core.
  double hash_build_ns_per_tuple = 60.0;    // radix-cluster S + table build
  double hash_reorg_ns_per_tuple = 57.0;    // radix-cluster R + chunk encode
  double hash_probe_ns_per_tuple = 78.0;
  double sort_ns_per_tuple = 313.0;         // qsort-style sort (setup)
  double merge_ns_per_tuple = 26.0;         // sequential merge (join phase)

  double tuple_bytes = 12.0;
  double link_bandwidth_bytes_per_sec = 1.25e9;
  int cores_per_host = 4;
  int join_threads = 4;
};

struct CycloCostEstimate {
  SimDuration setup = 0;
  SimDuration join = 0;   ///< pure compute part of the join phase
  SimDuration sync = 0;   ///< wire-feed deficit surfacing as waiting
  SimDuration total() const { return setup + join + sync; }
  /// Bytes/s each link must carry during the join phase.
  double required_link_rate = 0.0;
  /// True when the join phase fully hides the network (sync == 0).
  bool network_hidden = false;
};

/// Cost of joining |R| = |S| = `rows` tuples on an n-host ring.
CycloCostEstimate estimate(JoinKind kind, std::uint64_t rows, int num_hosts,
                           const CycloCostParams& params = {});

/// Smallest ring size at which the sort-merge join's total time drops below
/// the hash join's for the given per-host data volume (the paper expects
/// ~30 nodes at 1.6 GB per relation per host). Returns 0 if no crossover
/// occurs up to `max_hosts`.
int sort_merge_crossover_hosts(std::uint64_t rows_per_host, int max_hosts,
                               const CycloCostParams& params = {});

}  // namespace cj::model
