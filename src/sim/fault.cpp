#include "sim/fault.h"

#include <algorithm>

#include "common/assert.h"
#include "obs/trace.h"

namespace cj::sim {

FaultInjector::FaultInjector(Engine& engine, FaultPlan plan)
    : engine_(engine), plan_(std::move(plan)) {
  CJ_CHECK_MSG(plan_.link.drop_prob >= 0.0 && plan_.link.drop_prob <= 1.0,
               "drop_prob must be a probability");
  CJ_CHECK_MSG(plan_.link.corrupt_prob >= 0.0 && plan_.link.corrupt_prob <= 1.0,
               "corrupt_prob must be a probability");
  CJ_CHECK_MSG(plan_.link.drop_prob + plan_.link.corrupt_prob <= 1.0,
               "drop_prob + corrupt_prob must not exceed 1");
  for (const auto& c : plan_.crashes) CJ_CHECK_MSG(c.host >= 0, "crash host must be set");
  for (const auto& s : plan_.slowdowns) {
    CJ_CHECK_MSG(s.host >= 0, "slowdown host must be set");
    CJ_CHECK_MSG(s.factor >= 1.0, "slowdown factor must be >= 1");
  }
}

Rng& FaultInjector::link_rng(int link_id) {
  auto it = link_rngs_.find(link_id);
  if (it == link_rngs_.end()) {
    // Decorrelate links by mixing the link id into the seed; Rng's
    // splitmix64 seeding diffuses the remaining structure.
    const std::uint64_t link_seed =
        plan_.seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(link_id) + 1));
    it = link_rngs_.emplace(link_id, Rng(link_seed)).first;
  }
  return it->second;
}

FaultInjector::Verdict FaultInjector::next_message_verdict(int link_id) {
  const auto& spec = plan_.link;
  if (spec.drop_prob == 0.0 && spec.corrupt_prob == 0.0) return Verdict::kDeliver;
  // Always draw, even outside the active window, so the decision stream per
  // link depends only on the message index and not on the fault window.
  const double u = link_rng(link_id).next_double();
  const SimTime now = engine_.now();
  if (now < spec.active_from || now >= spec.active_until) return Verdict::kDeliver;
  if (u < spec.drop_prob) {
    ++counters_.messages_dropped;
    trace_instant("fault.drop", link_id);
    return Verdict::kDrop;
  }
  if (u < spec.drop_prob + spec.corrupt_prob) {
    ++counters_.messages_corrupted;
    trace_instant("fault.corrupt", link_id);
    return Verdict::kCorrupt;
  }
  return Verdict::kDeliver;
}

void FaultInjector::corrupt(std::span<std::byte> payload, int link_id) {
  if (payload.empty()) return;
  Rng& rng = link_rng(link_id);
  // Flip between 1 and 4 bytes with non-zero masks so the payload always
  // differs from what was sent.
  const std::uint64_t flips = 1 + rng.next_below(std::min<std::uint64_t>(4, payload.size()));
  for (std::uint64_t i = 0; i < flips; ++i) {
    const std::size_t pos = static_cast<std::size_t>(rng.next_below(payload.size()));
    const auto mask = static_cast<std::byte>(1 + rng.next_below(255));
    payload[pos] ^= mask;
  }
}

std::optional<SimTime> FaultInjector::crash_time(int host) const {
  for (const auto& c : plan_.crashes) {
    if (c.host == host) return c.at;
  }
  return std::nullopt;
}

void FaultInjector::mark_crashed(int host) {
  CJ_CHECK_MSG(crash_scheduled(host), "crash fired for a host without a crash spec");
  if (!crashed_.insert(host).second) return;
  ++counters_.hosts_crashed;
  trace_instant("fault.crash", host);
  crash_signal(host).set();
}

Event& FaultInjector::crash_signal(int host) {
  auto it = crash_signals_.find(host);
  if (it == crash_signals_.end()) {
    it = crash_signals_.emplace(host, std::make_unique<Event>(engine_)).first;
  }
  return *it->second;
}

Task<void> FaultInjector::slowdown_timer(HostSlowdownSpec spec, CorePool& cores) {
  const SimTime now = engine_.now();
  co_await engine_.sleep(spec.at > now ? spec.at - now : 0);
  cores.slow_down(spec.factor);
  ++counters_.slowdowns_applied;
  trace_instant("fault.slowdown", spec.host);
}

void FaultInjector::arm_slowdowns(int host, CorePool& cores) {
  for (const auto& spec : plan_.slowdowns) {
    if (spec.host != host) continue;
    engine_.spawn(slowdown_timer(spec, cores),
                  "fault-slowdown-h" + std::to_string(host));
  }
}

void FaultInjector::trace_instant(std::string_view name, std::int64_t arg) {
  if (obs::Tracer* t = engine_.tracer()) {
    t->instant(engine_.now(), obs::kGlobalHost, "fault", name, arg);
  }
}

}  // namespace cj::sim
