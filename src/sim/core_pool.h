// CorePool: the virtual CPU cores of one simulated host.
//
// Tasks acquire a core, occupy it for a duration, and release it. The
// duration is either measured from real inline execution of the task's
// closure ("virtual time, real work" — DESIGN.md) or given analytically.
//
// The pool keeps a busy-time ledger per tag ("join", "tcp-stack", ...) and
// counts context switches (a core picking up a task with a different tag
// than it last ran); an optional per-switch cost models the cache-pollution
// and scheduler overhead that the paper attributes to kernel TCP handling.
#pragma once

#include <coroutine>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/cputime.h"
#include "common/units.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace cj::sim {

/// Real-thread execution backend for a CorePool (rt backend). When one is
/// attached, execute() stops simulating core occupancy and instead hands the
/// closure to submit(), which must run `fn(worker)` on one of `workers()`
/// OS threads and may do so concurrently with the engine thread. The worker
/// index takes the place of the virtual core id in traces.
class CoreExecutor {
 public:
  virtual ~CoreExecutor() = default;
  virtual void submit(std::function<void(int worker)> fn) = 0;
  virtual int workers() const = 0;
};

class CorePool {
 public:
  /// A pool of `cores` identical cores. `context_switch_cost` is billed
  /// whenever a core switches to a task with a different tag. `cpu_scale`
  /// multiplies *measured* execute() durations — it calibrates this
  /// machine's core speed to the simulated host's (e.g. 3.5 to emulate a
  /// 2.33 GHz Xeon from 2008 on a modern core); analytical consume() costs
  /// are taken as-is.
  CorePool(Engine& engine, int cores, SimDuration context_switch_cost = 0,
           double cpu_scale = 1.0)
      : engine_(engine),
        context_switch_cost_(context_switch_cost),
        cpu_scale_(cpu_scale) {
    CJ_CHECK_MSG(cores >= 1, "a host needs at least one core");
    CJ_CHECK_MSG(cpu_scale > 0.0, "cpu_scale must be positive");
    last_tag_.resize(static_cast<std::size_t>(cores));
    for (int i = 0; i < cores; ++i) free_cores_.push_back(i);
  }
  CorePool(const CorePool&) = delete;
  CorePool& operator=(const CorePool&) = delete;

  int cores() const { return static_cast<int>(last_tag_.size()); }

  /// Routes execute() through real worker threads instead of simulated
  /// cores. Requires a wall-clock engine (the completion is post()ed back).
  /// Measured durations are billed raw — wall time already is real time,
  /// so cpu_scale calibration and context-switch billing do not apply.
  void set_executor(CoreExecutor* executor) {
    CJ_CHECK_MSG(executor == nullptr ||
                     engine_.clock_mode() == ClockMode::kWall,
                 "a CoreExecutor needs a wall-clock engine");
    executor_ = executor;
  }

  /// Runs `work` for real on a core and advances virtual time by its
  /// measured thread-CPU duration. Returns that duration.
  Task<SimDuration> execute(std::function<void()> work, std::string tag) {
    if (executor_ != nullptr) {
      RealRunAwaiter real{this, std::move(work), std::move(tag)};
      co_await real;
      bill(real.tag, real.measured);
      co_return real.measured;
    }
    const int core = co_await acquire();
    const SimDuration cs = charge_switch(core, tag);
    const auto measured = static_cast<double>(measure_cpu(work));
    const auto cost = static_cast<SimDuration>(measured * cpu_scale_);
    bill(tag, cost + cs);
    trace_occupy(core, tag, cost + cs);
    co_await engine_.sleep(cost + cs);
    trace_release(core);
    release(core);
    co_return cost;
  }

  /// execute() variant that discards the measured duration — convenient
  /// for when_all batches.
  Task<void> run(std::function<void()> work, std::string tag) {
    co_await execute(std::move(work), std::move(tag));
  }

  /// Occupies a core for an analytically-known duration (cost models,
  /// deterministic tests).
  Task<void> consume(SimDuration cost, std::string tag) {
    CJ_CHECK(cost >= 0);
    const int core = co_await acquire();
    const SimDuration cs = charge_switch(core, tag);
    bill(tag, cost + cs);
    trace_occupy(core, tag, cost + cs);
    co_await engine_.sleep(cost + cs);
    trace_release(core);
    release(core);
  }

  /// Total core-busy virtual time since construction (or last reset).
  SimDuration busy_total() const { return busy_total_; }

  /// Core-busy virtual time attributed to one tag.
  SimDuration busy_for(const std::string& tag) const {
    auto it = busy_by_tag_.find(tag);
    return it == busy_by_tag_.end() ? 0 : it->second;
  }

  /// All tags with their busy times (reporting).
  const std::map<std::string, SimDuration>& busy_by_tag() const {
    return busy_by_tag_;
  }

  std::uint64_t context_switches() const { return context_switches_; }

  /// Multiplies the measured-work calibration by `factor` (> 1 = slower)
  /// from now on — the fault injector's host-slowdown hook. Analytical
  /// consume() costs are unaffected, matching how `cpu_scale` already
  /// calibrates only measured execute() durations.
  void slow_down(double factor) {
    CJ_CHECK_MSG(factor > 0.0, "slowdown factor must be positive");
    cpu_scale_ *= factor;
  }

  double cpu_scale() const { return cpu_scale_; }

  void set_name(std::string name) { name_ = std::move(name); }

  /// Host id stamped on this pool's trace events (Chrome pid).
  void set_trace_host(int host) { trace_host_ = host; }

  /// Utilization of the pool over a window, given a busy snapshot taken at
  /// the window start: (busy_now - busy_at_start) / (window * cores).
  double utilization(SimDuration busy_at_start, SimDuration window) const {
    if (window <= 0) return 0.0;
    return static_cast<double>(busy_total_ - busy_at_start) /
           (static_cast<double>(window) * cores());
  }

  void reset_ledger() {
    busy_total_ = 0;
    busy_by_tag_.clear();
    context_switches_ = 0;
  }

 private:
  // Awaited at most once; lives in the coroutine frame of execute(), which
  // stays suspended until the worker posts the handle back, so `this` is
  // valid for the whole closure. The trace span is emitted from the worker
  // thread (Tracer is internally locked; engine_.now() only reads the OS
  // clock in wall mode), but billing happens in execute() on the engine
  // thread, keeping the ledger single-threaded.
  struct RealRunAwaiter {
    CorePool* pool;
    std::function<void()> work;
    std::string tag;
    SimDuration measured = 0;

    bool await_ready() { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      pool->executor_->submit([this, h](int worker) {
        obs::Tracer* t = pool->engine_.tracer();
        char entity[16];
        if (t != nullptr) {
          std::snprintf(entity, sizeof entity, "core%d", worker);
          t->begin(pool->engine_.now(), pool->trace_host_, entity, tag);
        }
        measured = static_cast<SimDuration>(measure_cpu(work));
        if (t != nullptr) {
          t->end(pool->engine_.now(), pool->trace_host_, entity);
        }
        pool->engine_.post(h);
      });
    }
    void await_resume() {}
  };

  struct CoreAwaiter {
    CorePool* pool;
    int core = -1;

    bool await_ready() {
      if (!pool->free_cores_.empty() && pool->waiters_.empty()) {
        core = pool->free_cores_.front();
        pool->free_cores_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      pool->engine_.note_blocked(h, "core-pool", &pool->name_);
      pool->waiters_.push_back({h, &core});
    }
    int await_resume() {
      CJ_CHECK(core >= 0);
      return core;
    }
  };

  CoreAwaiter acquire() { return CoreAwaiter{this}; }

  void release(int core) {
    if (!waiters_.empty()) {
      auto [handle, core_slot] = waiters_.front();
      waiters_.pop_front();
      *core_slot = core;  // hand the core directly to the next waiter
      engine_.note_unblocked(handle);
      engine_.schedule_now(handle);
      return;
    }
    free_cores_.push_back(core);
  }

  SimDuration charge_switch(int core, const std::string& tag) {
    auto& last = last_tag_[static_cast<std::size_t>(core)];
    const bool switched = !last.empty() && last != tag;
    last = tag;
    if (!switched) return 0;
    ++context_switches_;
    return context_switch_cost_;
  }

  void bill(const std::string& tag, SimDuration d) {
    busy_total_ += d;
    busy_by_tag_[tag] += d;
  }

  // Trace spans bracket exactly the sleep(cost + cs) that follows bill(),
  // so summed core-span time in a trace equals the busy ledger to the
  // nanosecond (the overlap-invariant test relies on this).
  void trace_occupy(int core, const std::string& tag, SimDuration dur) {
    obs::Tracer* t = engine_.tracer();
    if (t == nullptr) return;
    char entity[16];
    std::snprintf(entity, sizeof entity, "core%d", core);
    t->begin(engine_.now(), trace_host_, entity, tag, dur);
    t->counter(engine_.now(), trace_host_, "cores_busy", ++busy_now_);
  }

  void trace_release(int core) {
    obs::Tracer* t = engine_.tracer();
    if (t == nullptr) return;
    char entity[16];
    std::snprintf(entity, sizeof entity, "core%d", core);
    t->end(engine_.now(), trace_host_, entity);
    t->counter(engine_.now(), trace_host_, "cores_busy", --busy_now_);
  }

  Engine& engine_;
  CoreExecutor* executor_ = nullptr;
  SimDuration context_switch_cost_;
  std::string name_;
  int trace_host_ = 0;
  int busy_now_ = 0;
  double cpu_scale_ = 1.0;
  std::deque<int> free_cores_;
  std::deque<std::pair<std::coroutine_handle<>, int*>> waiters_;
  std::vector<std::string> last_tag_;
  SimDuration busy_total_ = 0;
  std::map<std::string, SimDuration> busy_by_tag_;
  std::uint64_t context_switches_ = 0;
};

}  // namespace cj::sim
