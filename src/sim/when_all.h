// when_all: run a batch of tasks concurrently and wait for all of them.
//
// sim::Task is lazy, so sequentially co_awaiting a vector of tasks would
// serialize them. when_all spawns each task as its own process and completes
// once every one has finished — the building block for "run these partition
// joins on the host's cores in parallel".
#pragma once

#include <memory>
#include <vector>

#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace cj::sim {

namespace detail {

inline Task<void> notify_when_done(Task<void> task, std::shared_ptr<int> remaining,
                                   std::shared_ptr<Event> done) {
  co_await std::move(task);
  if (--*remaining == 0) done->set();
}

}  // namespace detail

/// Starts every task concurrently; resumes the caller when all complete.
inline Task<void> when_all(Engine& engine, std::vector<Task<void>> tasks) {
  if (tasks.empty()) co_return;
  auto remaining = std::make_shared<int>(static_cast<int>(tasks.size()));
  auto done = std::make_shared<Event>(engine);
  for (auto& task : tasks) {
    engine.spawn(detail::notify_when_done(std::move(task), remaining, done),
                 "when_all-child");
  }
  co_await done->wait();
}

}  // namespace cj::sim
