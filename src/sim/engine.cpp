#include "sim/engine.h"

#include <cstdlib>
#include <sstream>

#include "common/log.h"

namespace cj::sim {

struct Engine::Root {
  std::coroutine_handle<Task<void>::promise_type> handle;
  std::shared_ptr<ProcessHandle::State> state;

  ~Root() {
    if (handle) handle.destroy();
  }
};

Engine::Engine() = default;
Engine::~Engine() = default;

void Engine::schedule_at(SimTime t, std::coroutine_handle<> h) {
  CJ_CHECK_MSG(t >= now_, "cannot schedule an event in the virtual past");
  CJ_CHECK(h != nullptr);
  queue_.push(Event{t, next_seq_++, h});
}

Task<void> Engine::drive(Task<void> inner,
                         std::shared_ptr<ProcessHandle::State> state) {
  try {
    co_await std::move(inner);
  } catch (const std::exception& e) {
    CJ_LOG(kError) << "fatal: simulation process '" << state->name
                   << "' failed: " << e.what();
    std::abort();
  } catch (...) {
    CJ_LOG(kError) << "fatal: simulation process '" << state->name
                   << "' failed with unknown error";
    std::abort();
  }
  state->done = true;
}

ProcessHandle Engine::spawn(Task<void> task, std::string name) {
  CJ_CHECK_MSG(task.valid(), "spawn of an empty Task");
  auto state = std::make_shared<ProcessHandle::State>();
  state->name = std::move(name);

  Task<void> driver = drive(std::move(task), state);
  auto root = std::make_unique<Root>();
  root->handle = driver.release_to_engine();
  root->state = state;
  schedule_now(root->handle);
  roots_.push_back(std::move(root));
  return ProcessHandle(std::move(state));
}

SimTime Engine::run() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.handle.resume();
  }
  return now_;
}

bool Engine::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    if (ev.time > deadline) {
      now_ = deadline;
      return false;
    }
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.handle.resume();
  }
  return true;
}

void Engine::dump_blocked() const {
  if (blocked_.empty()) return;
  std::ostringstream out;
  out << "blocked waiters (" << blocked_.size() << "):";
  for (const auto& [addr, info] : blocked_) {
    const char* kind = info.kind != nullptr ? info.kind : "?";
    out << "\n  coroutine " << addr << " waiting on " << kind;
    if (info.name != nullptr && !info.name->empty()) {
      out << " '" << *info.name << "'";
    }
  }
  CJ_LOG(kError) << out.str();
}

void Engine::check_all_complete() const {
  bool all_done = true;
  for (const auto& root : roots_) {
    if (!root->state->done) {
      CJ_LOG(kError) << "deadlock: process '" << root->state->name
                     << "' never completed (t=" << human_duration(now_)
                     << ", after " << events_processed_ << " events)";
      all_done = false;
    }
  }
  if (!all_done) dump_blocked();
  CJ_CHECK_MSG(all_done, "simulation ended with blocked processes");
}

}  // namespace cj::sim
