#include "sim/engine.h"

#include <cstdio>
#include <cstdlib>

namespace cj::sim {

struct Engine::Root {
  std::coroutine_handle<Task<void>::promise_type> handle;
  std::shared_ptr<ProcessHandle::State> state;

  ~Root() {
    if (handle) handle.destroy();
  }
};

Engine::Engine() = default;
Engine::~Engine() = default;

void Engine::schedule_at(SimTime t, std::coroutine_handle<> h) {
  CJ_CHECK_MSG(t >= now_, "cannot schedule an event in the virtual past");
  CJ_CHECK(h != nullptr);
  queue_.push(Event{t, next_seq_++, h});
}

Task<void> Engine::drive(Task<void> inner,
                         std::shared_ptr<ProcessHandle::State> state) {
  try {
    co_await std::move(inner);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: simulation process '%s' failed: %s\n",
                 state->name.c_str(), e.what());
    std::abort();
  } catch (...) {
    std::fprintf(stderr, "fatal: simulation process '%s' failed with unknown error\n",
                 state->name.c_str());
    std::abort();
  }
  state->done = true;
}

ProcessHandle Engine::spawn(Task<void> task, std::string name) {
  CJ_CHECK_MSG(task.valid(), "spawn of an empty Task");
  auto state = std::make_shared<ProcessHandle::State>();
  state->name = std::move(name);

  Task<void> driver = drive(std::move(task), state);
  auto root = std::make_unique<Root>();
  root->handle = driver.release_to_engine();
  root->state = state;
  schedule_now(root->handle);
  roots_.push_back(std::move(root));
  return ProcessHandle(std::move(state));
}

SimTime Engine::run() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.handle.resume();
  }
  return now_;
}

bool Engine::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    if (ev.time > deadline) {
      now_ = deadline;
      return false;
    }
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.handle.resume();
  }
  return true;
}

void Engine::dump_blocked(std::FILE* out) const {
  if (blocked_.empty()) return;
  std::fprintf(out, "blocked waiters (%zu):\n", blocked_.size());
  for (const auto& [addr, info] : blocked_) {
    const char* kind = info.kind != nullptr ? info.kind : "?";
    if (info.name != nullptr && !info.name->empty()) {
      std::fprintf(out, "  coroutine %p waiting on %s '%s'\n", addr, kind,
                   info.name->c_str());
    } else {
      std::fprintf(out, "  coroutine %p waiting on %s\n", addr, kind);
    }
  }
}

void Engine::check_all_complete() const {
  bool all_done = true;
  for (const auto& root : roots_) {
    if (!root->state->done) {
      std::fprintf(stderr, "deadlock: process '%s' never completed (t=%s)\n",
                   root->state->name.c_str(), human_duration(now_).c_str());
      all_done = false;
    }
  }
  if (!all_done) dump_blocked(stderr);
  CJ_CHECK_MSG(all_done, "simulation ended with blocked processes");
}

}  // namespace cj::sim
