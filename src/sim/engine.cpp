#include "sim/engine.h"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/log.h"

namespace cj::sim {

struct Engine::Root {
  std::coroutine_handle<Task<void>::promise_type> handle;
  std::shared_ptr<ProcessHandle::State> state;

  ~Root() {
    if (handle) handle.destroy();
  }
};

Engine::Engine() = default;

Engine::Engine(ClockMode mode, WallClock::time_point epoch)
    : mode_(mode), epoch_(epoch) {}

Engine::~Engine() = default;

void Engine::schedule_at(SimTime t, std::coroutine_handle<> h) {
  CJ_CHECK_MSG(t >= now_, "cannot schedule an event in the past");
  CJ_CHECK(h != nullptr);
  queue_.push(Event{t, next_seq_++, h});
}

Task<void> Engine::drive(Task<void> inner,
                         std::shared_ptr<ProcessHandle::State> state) {
  try {
    co_await std::move(inner);
  } catch (const std::exception& e) {
    CJ_LOG(kError) << "fatal: simulation process '" << state->name
                   << "' failed: " << e.what();
    std::abort();
  } catch (...) {
    CJ_LOG(kError) << "fatal: simulation process '" << state->name
                   << "' failed with unknown error";
    std::abort();
  }
  state->done = true;
  --live_roots_;
}

ProcessHandle Engine::spawn(Task<void> task, std::string name) {
  CJ_CHECK_MSG(task.valid(), "spawn of an empty Task");
  auto state = std::make_shared<ProcessHandle::State>();
  state->name = std::move(name);

  Task<void> driver = drive(std::move(task), state);
  auto root = std::make_unique<Root>();
  root->handle = driver.release_to_engine();
  root->state = state;
  ++live_roots_;
  schedule_now(root->handle);
  roots_.push_back(std::move(root));
  return ProcessHandle(std::move(state));
}

SimTime Engine::run() {
  if (mode_ == ClockMode::kWall) return run_wall();
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.handle.resume();
  }
  return now_;
}

bool Engine::run_until(SimTime deadline) {
  CJ_CHECK_MSG(mode_ == ClockMode::kVirtual,
               "run_until is only meaningful in virtual time");
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    if (ev.time > deadline) {
      now_ = deadline;
      return false;
    }
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.handle.resume();
  }
  return true;
}

void Engine::post(std::coroutine_handle<> h) {
  CJ_CHECK_MSG(mode_ == ClockMode::kWall,
               "post() requires a wall-clock engine");
  CJ_CHECK(h != nullptr);
  {
    std::lock_guard<std::mutex> lk(wall_mu_);
    external_.push_back(External{h, nullptr});
  }
  wall_cv_.notify_one();
}

void Engine::post(std::function<void()> fn) {
  CJ_CHECK_MSG(mode_ == ClockMode::kWall,
               "post() requires a wall-clock engine");
  CJ_CHECK(fn != nullptr);
  {
    std::lock_guard<std::mutex> lk(wall_mu_);
    external_.push_back(External{nullptr, std::move(fn)});
  }
  wall_cv_.notify_one();
}

bool Engine::drain_external() {
  std::deque<External> batch;
  {
    std::lock_guard<std::mutex> lk(wall_mu_);
    batch.swap(external_);
  }
  for (External& e : batch) {
    if (e.handle != nullptr) {
      schedule_now(e.handle);
    } else {
      e.fn();
    }
  }
  return !batch.empty();
}

SimTime Engine::run_wall() {
  for (;;) {
    drain_external();
    now_ = wall_now();
    bool resumed = false;
    while (!queue_.empty() && queue_.top().time <= now_) {
      const Event ev = queue_.top();
      queue_.pop();
      ++events_processed_;
      ev.handle.resume();
      resumed = true;
      now_ = wall_now();
    }
    // A resume may have generated posts on our own queue or finished a
    // root; loop back around before deciding to sleep or exit.
    if (resumed) continue;
    if (live_roots_ == 0) break;

    std::unique_lock<std::mutex> lk(wall_mu_);
    if (!external_.empty()) continue;
    const auto has_posts = [this] { return !external_.empty(); };
    if (!queue_.empty()) {
      const auto deadline = epoch_ + std::chrono::nanoseconds(queue_.top().time);
      wall_cv_.wait_until(lk, deadline, has_posts);
    } else if (idle_abort_ > 0) {
      if (!wall_cv_.wait_for(lk, std::chrono::nanoseconds(idle_abort_),
                             has_posts)) {
        lk.unlock();
        CJ_LOG(kError) << "wall-clock engine idle for "
                       << human_duration(idle_abort_) << " with "
                       << live_roots_ << " incomplete processes";
        dump_blocked();
        CJ_CHECK_MSG(false, "wall-clock engine deadlocked (idle watchdog)");
      }
    } else {
      wall_cv_.wait(lk, has_posts);
    }
  }
  now_ = wall_now();
  return now_;
}

void Engine::dump_blocked() const {
  if (blocked_.empty()) return;
  std::ostringstream out;
  out << "blocked waiters (" << blocked_.size() << "):";
  for (const auto& [addr, info] : blocked_) {
    const char* kind = info.kind != nullptr ? info.kind : "?";
    out << "\n  coroutine " << addr << " waiting on " << kind;
    if (info.name != nullptr && !info.name->empty()) {
      out << " '" << *info.name << "'";
    }
  }
  CJ_LOG(kError) << out.str();
}

void Engine::check_all_complete() const {
  bool all_done = true;
  for (const auto& root : roots_) {
    if (!root->state->done) {
      CJ_LOG(kError) << "deadlock: process '" << root->state->name
                     << "' never completed (t=" << human_duration(now_)
                     << ", after " << events_processed_ << " events)";
      all_done = false;
    }
  }
  if (!all_done) dump_blocked();
  CJ_CHECK_MSG(all_done, "simulation ended with blocked processes");
}

}  // namespace cj::sim
