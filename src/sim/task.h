// Coroutine task type for simulation processes.
//
// A sim::Task<T> is a lazily-started coroutine: nothing runs until the task
// is either co_awaited by another task or spawned as a root process on the
// Engine. Completion hands control back to the awaiter via symmetric
// transfer, so long co_await chains do not grow the native stack.
//
// Ownership: the Task object owns the coroutine frame. A task must be
// awaited or spawned at most once. Destroying a task that is *suspended*
// is permitted (coroutine_handle::destroy on a suspended frame is
// well-defined); it is how the Engine tears down processes that never ran
// to completion. Any handle the suspended task parked in a queue must not
// be resumed afterwards — terminal teardown satisfies this trivially.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>
#include <variant>

#include "common/assert.h"

namespace cj::sim {

template <typename T = void>
class Task;

namespace detail {

struct FinalAwaiter {
  bool await_ready() noexcept { return false; }

  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
    // Resume whoever co_awaited us; root processes have no continuation.
    auto continuation = h.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }

  void await_resume() noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::variant<std::monostate, T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
    void return_value(U&& v) {
      value.template emplace<T>(std::forward<U>(v));
    }
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  /// Awaiting a task starts it and suspends the awaiter until it finishes.
  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;

      bool await_ready() { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) {
        handle.promise().continuation = awaiting;
        return handle;  // start the child (symmetric transfer)
      }
      T await_resume() {
        auto& p = handle.promise();
        if (p.error) std::rethrow_exception(p.error);
        return std::get<T>(std::move(p.value));
      }
    };
    CJ_CHECK_MSG(handle_ != nullptr, "co_await on an empty Task");
    return Awaiter{handle_};
  }

  /// For the Engine only: the raw handle used to start a root process.
  std::coroutine_handle<promise_type> release_to_engine() {
    return std::exchange(handle_, nullptr);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void destroy() {
    if (!handle_) return;
    handle_.destroy();
    handle_ = nullptr;
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;

      bool await_ready() { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) {
        handle.promise().continuation = awaiting;
        return handle;
      }
      void await_resume() {
        auto& p = handle.promise();
        if (p.error) std::rethrow_exception(p.error);
      }
    };
    CJ_CHECK_MSG(handle_ != nullptr, "co_await on an empty Task");
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> release_to_engine() {
    return std::exchange(handle_, nullptr);
  }

 private:
  friend struct promise_type;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void destroy() {
    if (!handle_) return;
    handle_.destroy();
    handle_ = nullptr;
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace cj::sim
