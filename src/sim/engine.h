// The discrete-event simulation engine.
//
// Single-threaded and deterministic: all simulated hosts, NICs and links run
// as coroutines on one event loop ordered by (virtual time, insertion
// sequence). Real computation (join kernels) executes inline inside events
// and its measured CPU time advances the virtual clock — see DESIGN.md.
#pragma once

#include <coroutine>
#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/units.h"
#include "sim/task.h"

namespace cj::obs {
class Tracer;
}

namespace cj::sim {

/// Completion state of a spawned root process, queryable after run().
class ProcessHandle {
 public:
  bool done() const { return state_->done; }
  const std::string& name() const { return state_->name; }

 private:
  friend class Engine;
  struct State {
    std::string name;
    bool done = false;
  };
  explicit ProcessHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Engine {
 public:
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Number of events processed so far (diagnostics).
  std::uint64_t events_processed() const { return events_processed_; }

  // ----- observability ---------------------------------------------------
  //
  // The engine owns no tracer; callers (cluster setup, tests) install one
  // for the run's lifetime. Null by default, so every instrumentation site
  // in the simulator is a single pointer test when tracing is off.

  obs::Tracer* tracer() const { return tracer_; }
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Schedules a coroutine to resume at absolute virtual time t (>= now).
  void schedule_at(SimTime t, std::coroutine_handle<> h);

  /// Schedules a coroutine to resume at the current time, after all events
  /// already queued for this instant (FIFO within a timestamp).
  void schedule_now(std::coroutine_handle<> h) { schedule_at(now_, h); }

  /// Awaitable: suspends the current task for d virtual nanoseconds.
  auto sleep(SimDuration d) {
    struct Awaiter {
      Engine* engine;
      SimDuration d;
      bool await_ready() { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        engine->schedule_at(engine->now_ + d, h);
      }
      void await_resume() {}
    };
    CJ_CHECK_MSG(d >= 0, "cannot sleep for negative time");
    return Awaiter{this, d};
  }

  /// Awaitable: yields to other events pending at the current instant.
  auto yield() { return sleep(0); }

  /// Registers a root process. It starts when run() processes the queue.
  /// The returned handle reports completion; an exception escaping a root
  /// process aborts the simulation with its message.
  ProcessHandle spawn(Task<void> task, std::string name = "process");

  /// Processes events until the queue is empty. Returns the final time.
  SimTime run();

  /// Processes events until the queue is empty or virtual time would exceed
  /// `deadline`. Returns true if the queue drained.
  bool run_until(SimTime deadline);

  /// Aborts (with the stuck process names) if any spawned root process has
  /// not completed. Call after run() to catch flow-control deadlocks.
  /// Before aborting it dumps the blocked-waiter registry so the report
  /// names the primitive each stuck coroutine is parked on.
  void check_all_complete() const;

  // ----- blocked-waiter registry (deadlock watchdog) -------------------
  //
  // Synchronization primitives register each coroutine they park and
  // deregister it when they wake it, so that when the event queue drains
  // with processes still incomplete we can say *what* everyone is waiting
  // on instead of only *that* they never finished. `name` may be null or
  // point at a string owned by the primitive (it is read only at dump
  // time, which happens at most once, right before an abort).

  void note_blocked(std::coroutine_handle<> h, const char* kind,
                    const std::string* name) {
    blocked_[h.address()] = BlockInfo{kind, name};
  }
  void note_unblocked(std::coroutine_handle<> h) { blocked_.erase(h.address()); }

  /// Logs one line per currently-parked coroutine (CJ_LOG(kError), so a
  /// test-installed log sink can capture and assert on the report).
  void dump_blocked() const;

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  struct Root;
  struct BlockInfo {
    const char* kind = nullptr;
    const std::string* name = nullptr;
  };
  Task<void> drive(Task<void> inner, std::shared_ptr<ProcessHandle::State> state);

  std::map<void*, BlockInfo> blocked_;
  obs::Tracer* tracer_ = nullptr;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<std::unique_ptr<Root>> roots_;
};

}  // namespace cj::sim
