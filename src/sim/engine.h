// The discrete-event simulation engine.
//
// Single-threaded and deterministic: all simulated hosts, NICs and links run
// as coroutines on one event loop ordered by (virtual time, insertion
// sequence). Real computation (join kernels) executes inline inside events
// and its measured CPU time advances the virtual clock — see DESIGN.md.
//
// The engine also has a wall-clock mode (ClockMode::kWall) used by the rt
// backend (docs/RUNTIME.md): now() reads the monotonic OS clock instead of
// the event queue, timers wait for real time to pass, and run() exits when
// every spawned root process has completed rather than when the queue
// drains (a wall-clock engine is never "out of events" — a peer thread may
// post() more). Coroutines still execute single-threaded on whichever
// thread calls run(); post() is the only thread-safe entry point.
#pragma once

#include <chrono>
#include <condition_variable>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/units.h"
#include "sim/task.h"

namespace cj::obs {
class FlightRecorder;
class Tracer;
}

namespace cj::sim {

/// Completion state of a spawned root process, queryable after run().
class ProcessHandle {
 public:
  bool done() const { return state_->done; }
  const std::string& name() const { return state_->name; }

 private:
  friend class Engine;
  struct State {
    std::string name;
    bool done = false;
  };
  explicit ProcessHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// What now() means: virtual event time (deterministic DES) or nanoseconds
/// of real time since a shared epoch (rt backend).
enum class ClockMode { kVirtual, kWall };

class Engine {
 public:
  using WallClock = std::chrono::steady_clock;

  Engine();
  /// Wall-clock engines that should report coherent timestamps (e.g. the
  /// per-host engines of one rt cluster) are constructed with one shared
  /// `epoch`, so now() is comparable across them.
  explicit Engine(ClockMode mode, WallClock::time_point epoch = WallClock::now());
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  ClockMode clock_mode() const { return mode_; }
  WallClock::time_point epoch() const { return epoch_; }

  /// Current time: virtual nanoseconds in kVirtual mode, real nanoseconds
  /// since the epoch in kWall mode. Safe to call from any thread in kWall
  /// mode (it only reads the OS clock).
  SimTime now() const {
    if (mode_ == ClockMode::kWall) return wall_now();
    return now_;
  }

  /// Number of events processed so far (diagnostics).
  std::uint64_t events_processed() const { return events_processed_; }

  // ----- observability ---------------------------------------------------
  //
  // The engine owns no tracer; callers (cluster setup, tests) install one
  // for the run's lifetime. Null by default, so every instrumentation site
  // in the simulator is a single pointer test when tracing is off.

  obs::Tracer* tracer() const { return tracer_; }
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// The always-on flight recorder (bounded, lock-free; obs/flight.h).
  /// Runners install one unconditionally; null only in bare-engine tests.
  obs::FlightRecorder* flight() const { return flight_; }
  void set_flight(obs::FlightRecorder* flight) { flight_ = flight; }

  /// Schedules a coroutine to resume at absolute time t (>= now).
  void schedule_at(SimTime t, std::coroutine_handle<> h);

  /// Schedules a coroutine to resume at the current time, after all events
  /// already queued for this instant (FIFO within a timestamp).
  void schedule_now(std::coroutine_handle<> h) { schedule_at(now(), h); }

  /// Awaitable: suspends the current task for d nanoseconds (virtual in
  /// kVirtual mode, real in kWall mode).
  auto sleep(SimDuration d) {
    struct Awaiter {
      Engine* engine;
      SimDuration d;
      bool await_ready() { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        engine->schedule_at(engine->now() + d, h);
      }
      void await_resume() {}
    };
    CJ_CHECK_MSG(d >= 0, "cannot sleep for negative time");
    return Awaiter{this, d};
  }

  /// Awaitable: yields to other events pending at the current instant.
  auto yield() { return sleep(0); }

  /// Registers a root process. It starts when run() processes the queue.
  /// The returned handle reports completion; an exception escaping a root
  /// process aborts the simulation with its message.
  ProcessHandle spawn(Task<void> task, std::string name = "process");

  /// kVirtual: processes events until the queue is empty. kWall: processes
  /// events (sleeping through real timer gaps, waking for post()s) until
  /// every spawned root process has completed. Returns the final time.
  SimTime run();

  /// Processes events until the queue is empty or virtual time would exceed
  /// `deadline`. Returns true if the queue drained. kVirtual mode only.
  bool run_until(SimTime deadline);

  /// Aborts (with the stuck process names) if any spawned root process has
  /// not completed. Call after run() to catch flow-control deadlocks.
  /// Before aborting it dumps the blocked-waiter registry so the report
  /// names the primitive each stuck coroutine is parked on.
  void check_all_complete() const;

  // ----- cross-thread entry points (kWall mode only) ---------------------
  //
  // The only way another thread may touch a wall-clock engine. Handles and
  // thunks are queued under a mutex and executed on the engine's run()
  // thread, so everything downstream of them stays single-threaded.

  /// Resumes `h` on the engine thread as soon as it gets around to it.
  void post(std::coroutine_handle<> h);

  /// Runs `fn` on the engine thread (e.g. to spawn a process or poke a
  /// node from a controller thread).
  void post(std::function<void()> fn);

  /// Aborts (after dump_blocked()) if a wall-clock run() sees no events,
  /// posts, or timers for this long with roots still incomplete — the
  /// wall-clock analogue of the drained-queue deadlock check. 0 disables.
  void set_idle_abort(SimDuration d) { idle_abort_ = d; }

  // ----- blocked-waiter registry (deadlock watchdog) -------------------
  //
  // Synchronization primitives register each coroutine they park and
  // deregister it when they wake it, so that when the event queue drains
  // with processes still incomplete we can say *what* everyone is waiting
  // on instead of only *that* they never finished. `name` may be null or
  // point at a string owned by the primitive (it is read only at dump
  // time, which happens at most once, right before an abort).

  void note_blocked(std::coroutine_handle<> h, const char* kind,
                    const std::string* name) {
    blocked_[h.address()] = BlockInfo{kind, name};
  }
  void note_unblocked(std::coroutine_handle<> h) { blocked_.erase(h.address()); }

  /// Logs one line per currently-parked coroutine (CJ_LOG(kError), so a
  /// test-installed log sink can capture and assert on the report).
  void dump_blocked() const;

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  struct Root;
  struct BlockInfo {
    const char* kind = nullptr;
    const std::string* name = nullptr;
  };
  struct External {
    std::coroutine_handle<> handle;   // exactly one of handle/fn is set
    std::function<void()> fn;
  };
  Task<void> drive(Task<void> inner, std::shared_ptr<ProcessHandle::State> state);
  SimTime wall_now() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               WallClock::now() - epoch_)
        .count();
  }
  SimTime run_wall();
  bool drain_external();

  std::map<void*, BlockInfo> blocked_;
  obs::Tracer* tracer_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  ClockMode mode_ = ClockMode::kVirtual;
  WallClock::time_point epoch_{};
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<std::unique_ptr<Root>> roots_;
  int live_roots_ = 0;       ///< engine-thread only
  SimDuration idle_abort_ = 0;

  // Cross-thread post queue (kWall). wall_mu_ guards external_ only; every
  // other member is engine-thread private.
  std::mutex wall_mu_;
  std::condition_variable wall_cv_;
  std::deque<External> external_;
};

}  // namespace cj::sim
