// Synchronization primitives for simulation processes.
//
// All primitives resume waiters through the engine's event queue (never by
// direct recursive resume), so wake-up order is deterministic FIFO and the
// native stack stays flat.
#pragma once

#include <coroutine>
#include <cstdio>
#include <deque>
#include <optional>
#include <string>
#include <utility>

#include "common/assert.h"
#include "sim/engine.h"

namespace cj::sim {

// Every primitive carries an optional debug name and registers parked
// coroutines with the engine's blocked-waiter registry, so a drained event
// queue with stuck processes dumps "who waits on what" (see
// Engine::dump_blocked) instead of a bare abort.

/// One-shot broadcast event: wait() suspends until set() is called; waiters
/// arriving after set() proceed immediately.
class Event {
 public:
  explicit Event(Engine& engine, std::string name = {})
      : engine_(engine), name_(std::move(name)) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool is_set() const { return set_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) {
      engine_.note_unblocked(h);
      engine_.schedule_now(h);
    }
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Event* event;
      bool await_ready() { return event->set_; }
      void await_suspend(std::coroutine_handle<> h) {
        event->engine_.note_blocked(h, "event", &event->name_);
        event->waiters_.push_back(h);
      }
      void await_resume() {}
    };
    return Awaiter{this};
  }

 private:
  Engine& engine_;
  std::string name_;
  bool set_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO waiters.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::int64_t initial, std::string name = {})
      : engine_(engine), count_(initial), name_(std::move(name)) {
    CJ_CHECK(initial >= 0);
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  std::int64_t available() const { return count_; }
  std::size_t waiting() const { return waiters_.size(); }
  void set_name(std::string name) { name_ = std::move(name); }

  auto acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() {
        if (sem->count_ > 0 && sem->waiters_.empty()) {
          --sem->count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        sem->engine_.note_blocked(h, "semaphore", &sem->name_);
        sem->waiters_.push_back(h);
      }
      void await_resume() {}
    };
    return Awaiter{this};
  }

  void release() {
    ++count_;
    wake_one();
  }

  /// Forces the available count to `count` and wakes as many waiters as the
  /// new count admits. Used by ring repair to re-base credit counts after a
  /// neighbor is spliced out — not a general-purpose operation.
  void set_count(std::int64_t count) {
    CJ_CHECK(count >= 0);
    count_ = count;
    while (count_ > 0 && !waiters_.empty()) wake_one();
  }

 private:
  void wake_one() {
    if (count_ > 0 && !waiters_.empty()) {
      --count_;
      auto h = waiters_.front();
      waiters_.pop_front();
      engine_.note_unblocked(h);
      engine_.schedule_now(h);
    }
  }

  Engine& engine_;
  std::int64_t count_;
  std::string name_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Bounded FIFO channel between simulation processes. push() blocks when
/// full, pop() blocks when empty. close() wakes all poppers; pop() on a
/// closed-and-drained channel returns std::nullopt.
template <typename T>
class Channel {
 public:
  Channel(Engine& engine, std::size_t capacity, std::string name = {})
      : engine_(engine), capacity_(capacity), name_(std::move(name)) {
    CJ_CHECK_MSG(capacity >= 1, "channel capacity must be at least 1");
  }
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  std::size_t size() const { return items_.size(); }
  bool closed() const { return closed_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Pushing to a closed channel is a programming error; name the channel
  /// in the abort so the culprit is identifiable without a debugger.
  void check_open() const {
    if (closed_) {
      std::fprintf(stderr, "channel '%s':\n", name_.c_str());
    }
    CJ_CHECK_MSG(!closed_, "push on closed channel");
  }

  /// Awaitable push. Pushing to a closed channel is a programming error.
  auto push(T item) {
    struct Awaiter {
      Channel* ch;
      T item;
      bool await_ready() {
        ch->check_open();
        if (ch->items_.size() < ch->capacity_ && ch->push_waiters_.empty()) {
          ch->enqueue(std::move(item));
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ch->engine_.note_blocked(h, "channel-push", &ch->name_);
        ch->push_waiters_.push_back({h, std::move(item)});
      }
      void await_resume() {}
    };
    return Awaiter{this, std::move(item)};
  }

  /// Awaitable pop; returns nullopt once the channel is closed and empty.
  /// Items are handed directly to the oldest waiting popper (no barging:
  /// a popper that arrives while others wait queues up behind them).
  auto pop() {
    struct Awaiter {
      Channel* ch;
      std::optional<T> slot;  // filled by direct handoff when we waited

      bool await_ready() {
        if (!ch->items_.empty() && ch->pop_waiters_.empty()) {
          slot = std::move(ch->items_.front());
          ch->items_.pop_front();
          ch->admit_waiting_pusher();
          return true;
        }
        return ch->items_.empty() && ch->closed_;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ch->engine_.note_blocked(h, "channel-pop", &ch->name_);
        ch->pop_waiters_.push_back({h, &slot});
      }
      std::optional<T> await_resume() {
        if (!slot.has_value()) {
          CJ_CHECK_MSG(ch->closed_, "popper woken without an item on an open channel");
        }
        return std::move(slot);
      }
    };
    return Awaiter{this};
  }

  /// Non-blocking push: fails (returns false) when the channel is full or
  /// pushers are already queued, instead of suspending.
  bool try_push(T item) {
    check_open();
    if (items_.size() >= capacity_ || !push_waiters_.empty()) return false;
    enqueue(std::move(item));
    return true;
  }

  /// Non-blocking control-plane push that jumps the queue: hands `item` to
  /// the oldest waiting popper, or prepends it ahead of buffered items,
  /// ignoring capacity. Used to deliver stop/crash sentinels that must be
  /// seen before any still-buffered data.
  void push_front_now(T item) {
    check_open();
    if (!pop_waiters_.empty()) {
      auto [handle, slot] = pop_waiters_.front();
      pop_waiters_.pop_front();
      *slot = std::move(item);
      engine_.note_unblocked(handle);
      engine_.schedule_now(handle);
      return;
    }
    items_.push_front(std::move(item));
  }

  /// Non-blocking pop: empty optional when nothing is buffered.
  std::optional<T> try_pop() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    admit_waiting_pusher();
    return item;
  }

  /// Marks the channel closed; all pending and future pops drain remaining
  /// items then observe nullopt.
  void close() {
    CJ_CHECK_MSG(push_waiters_.empty(), "close with blocked pushers");
    closed_ = true;
    wake_all_poppers();
  }

 private:
  struct PendingPush {
    std::coroutine_handle<> handle;
    T item;
  };

  void enqueue(T item) {
    if (!pop_waiters_.empty()) {
      // Direct handoff to the oldest waiter; the item never becomes
      // visible to later-arriving poppers.
      auto [handle, slot] = pop_waiters_.front();
      pop_waiters_.pop_front();
      *slot = std::move(item);
      engine_.note_unblocked(handle);
      engine_.schedule_now(handle);
      return;
    }
    items_.push_back(std::move(item));
  }

  void admit_waiting_pusher() {
    if (push_waiters_.empty() || items_.size() >= capacity_) return;
    PendingPush p = std::move(push_waiters_.front());
    push_waiters_.pop_front();
    enqueue(std::move(p.item));
    engine_.note_unblocked(p.handle);
    engine_.schedule_now(p.handle);
  }

  void wake_all_poppers() {
    // Drain remaining items into the oldest waiters, then wake the rest
    // with empty slots (they observe closed -> nullopt).
    while (!pop_waiters_.empty() && !items_.empty()) {
      auto [handle, slot] = pop_waiters_.front();
      pop_waiters_.pop_front();
      *slot = std::move(items_.front());
      items_.pop_front();
      engine_.note_unblocked(handle);
      engine_.schedule_now(handle);
    }
    for (auto [handle, slot] : pop_waiters_) {
      engine_.note_unblocked(handle);
      engine_.schedule_now(handle);
    }
    pop_waiters_.clear();
  }

  Engine& engine_;
  std::size_t capacity_;
  std::string name_;
  bool closed_ = false;
  std::deque<T> items_;
  std::deque<PendingPush> push_waiters_;
  std::deque<std::pair<std::coroutine_handle<>, std::optional<T>*>> pop_waiters_;
};

}  // namespace cj::sim
