// Deterministic, seeded fault injection for the simulated cluster.
//
// A FaultPlan describes *what* goes wrong during a run — transient link
// faults (message drops and payload corruptions), host crashes, and host
// slowdowns — and a FaultInjector turns the plan into per-event decisions
// that are a pure function of (seed, link id, message index), so the same
// plan on the same workload always injects the same faults regardless of
// how the event loop happens to interleave processes.
//
// Layering: the injector lives in sim:: and knows nothing about RDMA or
// rings. Transport layers ask it for a verdict per message (identified by
// an opaque link id); the orchestration layer asks about crash schedules
// and arms slowdowns on core pools. With an empty plan every query returns
// "no fault" without touching any RNG, so the fault-free path is
// byte-for-byte identical to a build without fault injection.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "sim/core_pool.h"
#include "sim/engine.h"
#include "sim/sync.h"

namespace cj::sim {

/// Transient faults applied to messages crossing the fabric's links.
/// Probabilities are per message; the window bounds when faults fire.
struct LinkFaultSpec {
  double drop_prob = 0.0;     ///< message silently lost on the wire
  double corrupt_prob = 0.0;  ///< message delivered with flipped bytes
  SimTime active_from = 0;
  SimTime active_until = std::numeric_limits<SimTime>::max();
};

/// A host dies (fail-stop) at the first safe point after `at`: its compute
/// and in-memory state are lost and it stops participating in the ring.
struct HostCrashSpec {
  int host = -1;
  SimTime at = 0;
};

/// A host's cores slow down by `factor` (>1) from `at` onward — models
/// thermal throttling, a noisy neighbor, or a failing DIMM being remapped.
struct HostSlowdownSpec {
  int host = -1;
  SimTime at = 0;
  double factor = 1.0;
};

/// The full fault schedule of one run. Default-constructed = no faults.
struct FaultPlan {
  std::uint64_t seed = 1;
  LinkFaultSpec link;
  std::vector<HostCrashSpec> crashes;
  std::vector<HostSlowdownSpec> slowdowns;
  /// Arms the resilient protocol (framed messages, acked retires, dynamic
  /// termination) without scheduling any fault. Chunk-journey tracing
  /// needs frame identity on the wire, and the rt backend refuses
  /// slowdown specs — this is the backend-neutral way to get frames.
  bool force_resilient = false;

  bool empty() const {
    return !force_resilient && link.drop_prob == 0.0 &&
           link.corrupt_prob == 0.0 && crashes.empty() && slowdowns.empty();
  }
};

/// Ledger of faults actually injected (for reports and assertions).
struct FaultCounters {
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_corrupted = 0;
  std::uint64_t hosts_crashed = 0;
  std::uint64_t slowdowns_applied = 0;
};

class FaultInjector {
 public:
  /// What to do with the next message on a link.
  enum class Verdict { kDeliver, kDrop, kCorrupt };

  FaultInjector(Engine& engine, FaultPlan plan);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return !plan_.empty(); }

  /// Decides the fate of the next message on `link_id` and advances that
  /// link's deterministic decision stream. Drop wins over corrupt.
  Verdict next_message_verdict(int link_id);

  /// Flips a deterministic selection of bytes in `payload` (at least one).
  void corrupt(std::span<std::byte> payload, int link_id);

  // ----- crashes ------------------------------------------------------

  std::optional<SimTime> crash_time(int host) const;
  bool crash_scheduled(int host) const { return crash_time(host).has_value(); }

  /// Whether the crash has actually fired (the control plane marks it).
  bool crashed(int host) const { return crashed_.count(host) != 0; }
  void mark_crashed(int host);

  /// Set when `mark_crashed(host)` runs; repair processes wait on this.
  Event& crash_signal(int host);

  // ----- slowdowns ----------------------------------------------------

  /// Spawns a timer process per scheduled slowdown of `host` that rescales
  /// `cores` at the scheduled time. Call once per host during cluster
  /// bring-up; with no slowdowns for the host this is a no-op.
  void arm_slowdowns(int host, CorePool& cores);

  const FaultCounters& counters() const { return counters_; }

 private:
  Rng& link_rng(int link_id);
  Task<void> slowdown_timer(HostSlowdownSpec spec, CorePool& cores);

  /// One "fault.*" instant on the cluster-global trace track per injection.
  void trace_instant(std::string_view name, std::int64_t arg);

  Engine& engine_;
  FaultPlan plan_;
  std::map<int, Rng> link_rngs_;
  std::map<int, std::unique_ptr<Event>> crash_signals_;
  std::set<int> crashed_;
  FaultCounters counters_;
};

}  // namespace cj::sim
