// Zipf-distributed key generator for the skew experiments (paper Fig. 9).
//
// Draws values in [1, n] where rank r has probability proportional to
// 1 / r^z. z = 0 degenerates to the uniform distribution; the paper sweeps
// z in {0, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9}.
//
// Implementation: the rejection-inversion sampler of Hörmann & Derflinger
// ("Rejection-inversion to generate variates from monotone discrete
// distributions", 1996) — O(1) per draw with no O(n) table, so domains of
// hundreds of millions of keys cost nothing to set up.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace cj {

class ZipfGenerator {
 public:
  /// Distribution over [1, n] with exponent z >= 0. n must be >= 1.
  ZipfGenerator(std::uint64_t n, double z);

  /// Next sample in [1, n].
  std::uint64_t operator()(Rng& rng);

  std::uint64_t domain() const { return n_; }
  double exponent() const { return z_; }

 private:
  double h(double x) const;
  double h_integral(double x) const;
  double h_integral_inverse(double x) const;

  std::uint64_t n_;
  double z_;
  // Precomputed constants of the rejection-inversion scheme.
  double h_integral_x1_;
  double h_integral_num_elements_;
  double s_;
};

}  // namespace cj
