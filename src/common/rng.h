// Deterministic pseudo-random number generation.
//
// Workload generators must be reproducible across runs and platforms, so we
// ship our own xoshiro256** implementation rather than relying on the
// unspecified distributions of <random>.
#pragma once

#include <array>
#include <cstdint>

namespace cj {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Fast, 256-bit state, passes BigCrush; plenty for workload synthesis.
class Rng {
 public:
  /// Seeds the full state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Splits off an independent generator (for per-host generators).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace cj
