// Small statistics helpers for instrumentation and bench reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace cj {

/// Streaming summary: count / min / max / mean / (population) stddev.
/// Uses Welford's algorithm so it is stable for long streams.
class Summary {
 public:
  void add(double x) {
    ++count_;
    if (x < min_ || count_ == 1) min_ = x;
    if (x > max_ || count_ == 1) max_ = x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  std::uint64_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return mean_; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  double variance() const {
    return count_ ? m2_ / static_cast<double>(count_) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Exact percentile over a retained sample set. Intended for bench-scale
/// cardinalities (thousands of observations), not for hot paths.
class PercentileSketch {
 public:
  void add(double x) { values_.push_back(x); }

  /// p in [0, 100]; nearest-rank percentile. Returns 0 when empty.
  double percentile(double p) {
    if (values_.empty()) return 0.0;
    std::sort(values_.begin(), values_.end());
    const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
    const auto idx = static_cast<std::size_t>(rank);
    return values_[std::min(idx, values_.size() - 1)];
  }

  std::size_t count() const { return values_.size(); }

 private:
  std::vector<double> values_;
};

}  // namespace cj
