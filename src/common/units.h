// Byte-size and time-unit helpers shared across the codebase.
//
// All simulation time is kept in integer nanoseconds (SimTime) so the
// discrete-event engine is deterministic; doubles appear only at the
// reporting boundary.
#pragma once

#include <cstdint>
#include <string>

namespace cj {

/// Virtual time in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// Durations in virtual nanoseconds.
using SimDuration = std::int64_t;

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1'000;
constexpr SimDuration kMillisecond = 1'000'000;
constexpr SimDuration kSecond = 1'000'000'000;

/// Convert virtual nanoseconds to floating-point seconds (reporting only).
constexpr double to_seconds(SimDuration d) { return static_cast<double>(d) / 1e9; }

/// Convert floating-point seconds to virtual nanoseconds (rounds toward zero).
constexpr SimDuration from_seconds(double s) { return static_cast<SimDuration>(s * 1e9); }

constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v << 10; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v << 20; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v << 30; }

/// Render a byte count as a human-readable string, e.g. "3.2 GB".
std::string human_bytes(std::uint64_t bytes);

/// Render virtual nanoseconds as a human-readable duration, e.g. "2.70 s".
std::string human_duration(SimDuration d);

/// Render bytes-per-second as e.g. "1.10 GB/s".
std::string human_rate(double bytes_per_second);

}  // namespace cj
