// Lightweight invariant-checking macros.
//
// CJ_CHECK fires in all build types; it guards real invariants whose
// violation would make further execution meaningless (Core Guidelines I.6).
// CJ_DCHECK compiles away in NDEBUG builds and is for hot-path checks.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cj::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace cj::detail

#define CJ_CHECK(expr)                                                \
  do {                                                                \
    if (!(expr)) ::cj::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define CJ_CHECK_MSG(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) ::cj::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define CJ_DCHECK(expr) ((void)0)
#else
#define CJ_DCHECK(expr) CJ_CHECK(expr)
#endif
