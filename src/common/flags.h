// Tiny command-line flag parser for the bench harnesses and examples.
//
// Supports --name=value and --name value forms plus boolean --name.
// Unknown flags are reported so bench sweeps fail loudly instead of
// silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace cj {

class Flags {
 public:
  /// Parses argv. Returns an error for malformed arguments.
  static Result<Flags> parse(int argc, char** argv);

  bool has(const std::string& name) const;

  /// Typed getters with defaults. Abort on unparseable values — a bench with
  /// a mistyped flag must not silently measure the wrong thing.
  std::string get_string(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Comma-separated list of integers, e.g. --nodes=1,2,3,4,5,6.
  std::vector<std::int64_t> get_int_list(const std::string& name,
                                         std::vector<std::int64_t> def) const;
  /// Comma-separated list of doubles, e.g. --zipf=0,0.3,0.5.
  std::vector<double> get_double_list(const std::string& name,
                                      std::vector<double> def) const;

  /// Flags that were present on the command line but never queried.
  /// Call at the end of flag handling to reject typos.
  std::vector<std::string> unused() const;

 private:
  mutable std::map<std::string, std::pair<std::string, bool>> values_;  // name → (value, used)
};

}  // namespace cj
