#include "common/rng.h"

#include "common/assert.h"

namespace cj {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  CJ_DCHECK(bound > 0);
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
  CJ_DCHECK(lo <= hi);
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng Rng::split() { return Rng(next()); }

}  // namespace cj
