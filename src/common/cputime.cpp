#include "common/cputime.h"

#include <ctime>

namespace cj {

std::int64_t thread_cpu_now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace cj
