// Minimal leveled logger.
//
// Logging is for operational visibility (benches, examples); hot paths in
// the simulator and join kernels never log. Output goes to stderr so bench
// result tables on stdout stay machine-readable.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace cj {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded. Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirects log output (the raw message, without the [level file:line]
/// prefix) to `sink` instead of stderr; pass nullptr to restore stderr.
/// The level filter still applies before the sink is invoked. Tests use
/// this to capture and assert on diagnostics.
void set_log_sink(std::function<void(LogLevel, const std::string&)> sink);

namespace detail {
void log_line(LogLevel level, const char* file, int line, const std::string& msg);
}

/// Stream-style log statement: CJ_LOG(kInfo) << "ring size " << n;
#define CJ_LOG(level)                                                       \
  for (bool cj_log_once_ = ::cj::LogLevel::level >= ::cj::log_level();      \
       cj_log_once_; cj_log_once_ = false)                                  \
  ::cj::detail::LogLine(::cj::LogLevel::level, __FILE__, __LINE__).stream()

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { log_line(level_, file_, line_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace cj
