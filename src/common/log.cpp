#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace cj {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::function<void(LogLevel, const std::string&)> g_sink;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(std::function<void(LogLevel, const std::string&)> sink) {
  g_sink = std::move(sink);
}

namespace detail {

void log_line(LogLevel level, const char* file, int line, const std::string& msg) {
  if (level < log_level()) return;
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", level_tag(level), basename_of(file), line,
               msg.c_str());
}

}  // namespace detail
}  // namespace cj
