#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace cj {

namespace {

std::string format_scaled(double value, const char* const* suffixes, int count,
                          double step) {
  int idx = 0;
  while (idx + 1 < count && value >= step) {
    value /= step;
    ++idx;
  }
  char buf[64];
  if (value >= 100 || value == std::floor(value)) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, suffixes[idx]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffixes[idx]);
  }
  return buf;
}

}  // namespace

std::string human_bytes(std::uint64_t bytes) {
  static const char* const kSuffixes[] = {"B", "KB", "MB", "GB", "TB"};
  return format_scaled(static_cast<double>(bytes), kSuffixes, 5, 1000.0);
}

std::string human_duration(SimDuration d) {
  char buf[64];
  const double ns = static_cast<double>(d);
  if (d < kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(d));
  } else if (d < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
  } else if (d < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", ns / 1e9);
  }
  return buf;
}

std::string human_rate(double bytes_per_second) {
  static const char* const kSuffixes[] = {"B/s", "KB/s", "MB/s", "GB/s", "TB/s"};
  return format_scaled(bytes_per_second, kSuffixes, 5, 1000.0);
}

}  // namespace cj
