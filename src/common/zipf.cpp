#include "common/zipf.h"

#include <cmath>

#include "common/assert.h"

namespace cj {

namespace {

// (exp(x * log) - 1) / x, numerically stable near x == 0.
double helper1(double x) {
  if (std::abs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x));
}

// log1p(x) / x, numerically stable near x == 0.
double helper2(double x) {
  if (std::abs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x));
}

}  // namespace

ZipfGenerator::ZipfGenerator(std::uint64_t n, double z) : n_(n), z_(z) {
  CJ_CHECK_MSG(n >= 1, "Zipf domain must be non-empty");
  CJ_CHECK_MSG(z >= 0.0, "Zipf exponent must be non-negative");
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_num_elements_ = h_integral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

// h(x) = 1 / x^z, the unnormalized density.
double ZipfGenerator::h(double x) const { return std::exp(-z_ * std::log(x)); }

// H(x) = integral of h: (x^(1-z) - 1) / (1 - z), stable for z near 1.
double ZipfGenerator::h_integral(double x) const {
  const double log_x = std::log(x);
  return helper1((1.0 - z_) * log_x) * log_x;
}

double ZipfGenerator::h_integral_inverse(double x) const {
  double t = x * (1.0 - z_);
  if (t < -1.0) t = -1.0;  // guard against numerical round-off below -1
  return std::exp(helper2(t) * x);
}

std::uint64_t ZipfGenerator::operator()(Rng& rng) {
  if (z_ == 0.0 || n_ == 1) {
    // Uniform special case (z == 0): rejection-inversion also works but is
    // needlessly slow; and n == 1 always yields 1.
    return 1 + rng.next_below(n_);
  }
  while (true) {
    const double u =
        h_integral_num_elements_ +
        rng.next_double() * (h_integral_x1_ - h_integral_num_elements_);
    const double x = h_integral_inverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1) k = 1;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    if (k - x <= s_ || u >= h_integral(k + 0.5) - h(k)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

}  // namespace cj
