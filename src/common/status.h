// Error handling: a small Status / Result<T> pair in the style of
// std::expected (not available on this toolchain's C++20 library).
//
// Functions that can fail for reasons the caller should handle return
// Status or Result<T>; programming errors use CJ_CHECK instead.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/assert.h"

namespace cj {

/// Machine-readable error category.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kNotFound,
  kAlreadyExists,
  kUnavailable,
  kAborted,
  kInternal,
};

/// Human-readable name of an ErrorCode ("ok", "invalid_argument", ...).
constexpr std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kFailedPrecondition: return "failed_precondition";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kAborted: return "aborted";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

/// Result of an operation that can fail without a payload.
class [[nodiscard]] Status {
 public:
  /// Success value.
  Status() = default;

  /// Failure with a category and a message for humans.
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    CJ_CHECK_MSG(code != ErrorCode::kOk, "error Status requires non-ok code");
  }

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string to_string() const {
    if (is_ok()) return "ok";
    return std::string(cj::to_string(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status failed_precondition(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
inline Status resource_exhausted(std::string msg) {
  return {ErrorCode::kResourceExhausted, std::move(msg)};
}
inline Status not_found(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status unavailable(std::string msg) {
  return {ErrorCode::kUnavailable, std::move(msg)};
}
inline Status internal_error(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}

/// Either a value of T or an error Status. Accessing the wrong side aborts.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    CJ_CHECK_MSG(!std::get<Status>(data_).is_ok(),
                 "Result<T> must not be constructed from an ok Status");
  }

  bool is_ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return is_ok(); }

  /// The contained value; aborts if this holds an error.
  T& value() & {
    CJ_CHECK_MSG(is_ok(), "Result::value() on error");
    return std::get<T>(data_);
  }
  const T& value() const& {
    CJ_CHECK_MSG(is_ok(), "Result::value() on error");
    return std::get<T>(data_);
  }
  T&& value() && {
    CJ_CHECK_MSG(is_ok(), "Result::value() on error");
    return std::get<T>(std::move(data_));
  }

  /// The contained error; returns ok() if this holds a value.
  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(data_);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagate an error Status from the current function.
#define CJ_RETURN_IF_ERROR(expr)             \
  do {                                       \
    ::cj::Status cj_status_ = (expr);        \
    if (!cj_status_.is_ok()) return cj_status_; \
  } while (0)

}  // namespace cj
