// Measurement of real CPU work, used to derive virtual task durations.
//
// The simulator executes join kernels for real and advances virtual time by
// the measured thread CPU time (see DESIGN.md, "virtual time, real work").
#pragma once

#include <cstdint>

#include "common/units.h"

namespace cj {

/// Current thread's consumed CPU time in nanoseconds
/// (CLOCK_THREAD_CPUTIME_ID).
std::int64_t thread_cpu_now_ns();

/// Scoped stopwatch over thread CPU time.
class CpuStopwatch {
 public:
  CpuStopwatch() : start_(thread_cpu_now_ns()) {}

  /// CPU nanoseconds consumed by this thread since construction/restart.
  std::int64_t elapsed_ns() const { return thread_cpu_now_ns() - start_; }

  void restart() { start_ = thread_cpu_now_ns(); }

 private:
  std::int64_t start_;
};

/// Runs `fn` and returns its measured thread-CPU duration in virtual
/// nanoseconds (never negative, never zero — clamped to 1 ns so that a
/// zero-cost task still advances the simulation clock monotonically).
template <typename Fn>
SimDuration measure_cpu(Fn&& fn) {
  CpuStopwatch watch;
  fn();
  const std::int64_t ns = watch.elapsed_ns();
  return ns > 0 ? ns : 1;
}

}  // namespace cj
