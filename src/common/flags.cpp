#include "common/flags.h"

#include <cstdlib>

#include "common/assert.h"

namespace cj {

Result<Flags> Flags::parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      return invalid_argument("expected --flag, got '" + arg + "'");
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    std::string name;
    std::string value;
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // --name value form: consume the next token if it is not a flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare boolean flag
      }
    }
    if (name.empty()) return invalid_argument("empty flag name");
    flags.values_[name] = {value, false};
  }
  return flags;
}

bool Flags::has(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return false;
  it->second.second = true;
  return true;
}

std::string Flags::get_string(const std::string& name, const std::string& def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  it->second.second = true;
  return it->second.first;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  it->second.second = true;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.first.c_str(), &end, 10);
  CJ_CHECK_MSG(end && *end == '\0', ("flag --" + name + " is not an integer").c_str());
  return v;
}

double Flags::get_double(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  it->second.second = true;
  char* end = nullptr;
  const double v = std::strtod(it->second.first.c_str(), &end);
  CJ_CHECK_MSG(end && *end == '\0', ("flag --" + name + " is not a number").c_str());
  return v;
}

bool Flags::get_bool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  it->second.second = true;
  const std::string& v = it->second.first;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  CJ_CHECK_MSG(false, ("flag --" + name + " is not a boolean").c_str());
  return def;
}

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto comma = s.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

}  // namespace

std::vector<std::int64_t> Flags::get_int_list(const std::string& name,
                                              std::vector<std::int64_t> def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  it->second.second = true;
  std::vector<std::int64_t> out;
  for (const auto& part : split_csv(it->second.first)) {
    char* end = nullptr;
    const long long v = std::strtoll(part.c_str(), &end, 10);
    CJ_CHECK_MSG(end && *end == '\0' && !part.empty(),
                 ("flag --" + name + " has a non-integer element").c_str());
    out.push_back(v);
  }
  return out;
}

std::vector<double> Flags::get_double_list(const std::string& name,
                                           std::vector<double> def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  it->second.second = true;
  std::vector<double> out;
  for (const auto& part : split_csv(it->second.first)) {
    char* end = nullptr;
    const double v = std::strtod(part.c_str(), &end);
    CJ_CHECK_MSG(end && *end == '\0' && !part.empty(),
                 ("flag --" + name + " has a non-numeric element").c_str());
    out.push_back(v);
  }
  return out;
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value_used] : values_) {
    if (!value_used.second) out.push_back(name);
  }
  return out;
}

}  // namespace cj
