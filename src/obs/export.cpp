#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

namespace cj::obs {
namespace {

bool valid_metric_char(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

void append_printf(std::string& out, const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out += buf;
}

void append_double(std::string& out, double v) {
  // Integral values print without a fraction so counters stay readable.
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    append_printf(out, "%" PRId64, static_cast<std::int64_t>(v));
  } else {
    append_printf(out, "%.6g", v);
  }
}

}  // namespace

std::string prometheus_name(std::string_view name, std::string_view prefix) {
  std::string out;
  out.reserve(prefix.size() + 1 + name.size());
  out.append(prefix);
  if (!out.empty()) out.push_back('_');
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    out.push_back(valid_metric_char(c, out.empty()) ? c : '_');
  }
  return out;
}

std::string prometheus_text(const MetricsSnapshot& snapshot,
                            std::string_view prefix) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string m = prometheus_name(name, prefix);
    out += "# TYPE " + m + " counter\n";
    append_printf(out, "%s %" PRId64 "\n", m.c_str(), value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string m = prometheus_name(name, prefix);
    out += "# TYPE " + m + " gauge\n";
    out += m + " ";
    append_double(out, value);
    out.push_back('\n');
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string m = prometheus_name(name, prefix);
    out += "# TYPE " + m + " summary\n";
    append_printf(out, "%s{quantile=\"0.5\"} %" PRId64 "\n", m.c_str(), h.p50);
    append_printf(out, "%s{quantile=\"0.9\"} %" PRId64 "\n", m.c_str(), h.p90);
    append_printf(out, "%s{quantile=\"0.99\"} %" PRId64 "\n", m.c_str(),
                  h.p99);
    append_printf(out, "%s_count %" PRIu64 "\n", m.c_str(), h.count);
    append_printf(out, "%s_min %" PRId64 "\n", m.c_str(), h.min);
    append_printf(out, "%s_max %" PRId64 "\n", m.c_str(), h.max);
    out += m + "_mean ";
    append_double(out, h.mean);
    out.push_back('\n');
  }
  return out;
}

}  // namespace cj::obs
