// Prometheus-style text exposition for metrics snapshots.
//
// No HTTP server (the build has no network dependency): callers take the
// rendered page and serve / print / write it themselves — `cyclotop`
// renders it live, and `LiveSampler::latest()` gives a fresh snapshot any
// time. Format follows the Prometheus text format 0.0.4: `# TYPE` lines,
// sanitized names (dots and other invalid characters become '_'), and
// histogram summaries exposed as quantile-labelled gauges plus _count.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace cj::obs {

// "ring.bytes_sent" -> "cj_ring_bytes_sent" (with the default prefix).
std::string prometheus_name(std::string_view name,
                            std::string_view prefix = "cj");

// Render a full exposition page. Counters become `counter`, gauges
// `gauge`, histogram summaries a `summary` with p50/p90/p99 quantile
// samples plus `_count`, `_min`, `_max` and `_mean` companions.
std::string prometheus_text(const MetricsSnapshot& snapshot,
                            std::string_view prefix = "cj");

}  // namespace cj::obs
