// MetricsRegistry: named counters, gauges and histograms for one run.
//
// The registry is the write side (cheap integer adds during the run); a
// MetricsSnapshot is the read side, embedded in RunReport and serialized as
// the "metrics" object of the BENCH_*.json files the bench harness writes.
// Histograms keep raw samples until snapshot time, when the summary
// (count/min/max/mean/quantiles) is computed deterministically from the
// sorted sample set. See docs/OBSERVABILITY.md for the metric name catalog.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace cj::obs {

/// Deterministic summary of one histogram's samples.
struct HistogramSummary {
  std::uint64_t count = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  double mean = 0.0;
  std::int64_t p50 = 0;
  std::int64_t p90 = 0;
  std::int64_t p99 = 0;

  bool operator==(const HistogramSummary&) const = default;
};

/// Frozen view of a registry, safe to copy into reports.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Writes are internally locked so rt host threads can share one
  // registry; the sim backend pays only an uncontended lock.

  void add_counter(const std::string& name, std::int64_t delta) {
    std::lock_guard<std::mutex> lk(mu_);
    counters_[name] += delta;
  }
  void set_gauge(const std::string& name, double value) {
    std::lock_guard<std::mutex> lk(mu_);
    gauges_[name] = value;
  }
  void record(const std::string& name, std::int64_t sample) {
    std::lock_guard<std::mutex> lk(mu_);
    histograms_[name].push_back(sample);
  }

  std::int64_t counter(const std::string& name) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, std::vector<std::int64_t>> histograms_;
};

}  // namespace cj::obs
