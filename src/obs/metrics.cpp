#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace cj::obs {

namespace {

std::int64_t quantile(const std::vector<std::int64_t>& sorted, double q) {
  // Nearest-rank on the sorted samples: integer result, no interpolation,
  // deterministic across platforms.
  const std::size_t n = sorted.size();
  std::size_t rank = static_cast<std::size_t>(q * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  return sorted[rank];
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot snap;
  snap.counters = counters_;
  snap.gauges = gauges_;
  for (const auto& [name, samples] : histograms_) {
    HistogramSummary& h = snap.histograms[name];
    h.count = samples.size();
    if (samples.empty()) continue;
    std::vector<std::int64_t> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    h.min = sorted.front();
    h.max = sorted.back();
    std::int64_t sum = 0;
    for (const std::int64_t s : sorted) sum += s;
    h.mean = static_cast<double>(sum) / static_cast<double>(sorted.size());
    h.p50 = quantile(sorted, 0.50);
    h.p90 = quantile(sorted, 0.90);
    h.p99 = quantile(sorted, 0.99);
  }
  return snap;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_escaped(out, name);
    out += "\":";
    append_i64(out, value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_escaped(out, name);
    out += "\":";
    append_double(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_escaped(out, name);
    out += "\":{\"count\":";
    append_i64(out, static_cast<std::int64_t>(h.count));
    out += ",\"min\":";
    append_i64(out, h.min);
    out += ",\"max\":";
    append_i64(out, h.max);
    out += ",\"mean\":";
    append_double(out, h.mean);
    out += ",\"p50\":";
    append_i64(out, h.p50);
    out += ",\"p90\":";
    append_i64(out, h.p90);
    out += ",\"p99\":";
    append_i64(out, h.p99);
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace cj::obs
