#include "obs/journey.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <tuple>

#include "common/stats.h"

namespace cj::obs {
namespace {

using Key = std::tuple<std::uint16_t, std::uint32_t, std::uint16_t>;

void append_printf(std::string& out, const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out += buf;
}

}  // namespace

std::vector<ChunkJourney> reconstruct_journeys(
    const std::vector<FlightRecord>& window) {
  std::map<Key, ChunkJourney> by_key;
  for (const FlightRecord& r : window) {
    if (r.origin == kNoOrigin) continue;  // no frame identity: not stitchable
    ChunkJourney& j = by_key[Key{r.origin, r.seq, r.query}];
    j.origin = r.origin;
    j.seq = r.seq;
    j.query = r.query;
    j.hops.push_back(r);
  }
  std::vector<ChunkJourney> out;
  out.reserve(by_key.size());
  for (auto& [key, j] : by_key) {
    std::stable_sort(j.hops.begin(), j.hops.end(),
                     [](const FlightRecord& a, const FlightRecord& b) {
                       return a.ts < b.ts;
                     });
    for (const FlightRecord& r : j.hops) {
      j.max_hops = std::max(j.max_hops, static_cast<int>(r.revolution));
      switch (r.kind) {
        case HopKind::kInject:
          if (j.inject_ts < 0) j.inject_ts = r.ts;
          break;
        case HopKind::kRetire:
          j.retired = true;
          j.retire_ts = r.ts;
          j.residency_us += r.arg_us;
          break;
        case HopKind::kForward:
          j.residency_us += r.arg_us;
          break;
        case HopKind::kProbe:
          j.probe_us += r.arg_us;
          break;
        case HopKind::kReinject:
          ++j.reinjects;
          break;
        case HopKind::kAdopt:
          j.adopted = true;
          break;
        default:
          break;
      }
    }
    out.push_back(std::move(j));
  }
  return out;
}

std::vector<ChunkJourney> reconstruct_journeys(
    const FlightRecorder& recorder) {
  return reconstruct_journeys(recorder.snapshot_all());
}

JourneySummary summarize_journeys(const std::vector<ChunkJourney>& journeys,
                                  int num_hosts) {
  JourneySummary s;
  s.journeys = journeys.size();
  Summary duration;
  PercentileSketch duration_pct;
  Summary flight_frac;
  std::map<int, std::pair<Summary, PercentileSketch>> residency_by_host;
  std::map<int, std::int64_t> probe_by_host;
  for (const ChunkJourney& j : journeys) {
    if (j.retired) ++s.retired;
    if (j.reinjects > 0) ++s.reinjected;
    if (j.adopted) ++s.adopted;
    s.max_hops = std::max(s.max_hops, j.max_hops);
    const std::int64_t d = j.duration_ns();
    if (d >= 0) {
      duration.add(static_cast<double>(d));
      duration_pct.add(static_cast<double>(d));
      if (d > 0) {
        const std::int64_t wire = j.in_flight_ns();
        flight_frac.add(wire <= 0 ? 0.0
                                  : static_cast<double>(wire) /
                                        static_cast<double>(d));
      }
    }
    for (const FlightRecord& r : j.hops) {
      if (r.kind == HopKind::kForward || r.kind == HopKind::kRetire) {
        auto& [sum, pct] = residency_by_host[r.host];
        sum.add(static_cast<double>(r.arg_us));
        pct.add(static_cast<double>(r.arg_us));
      } else if (r.kind == HopKind::kProbe) {
        probe_by_host[r.host] += r.arg_us;
      }
    }
  }
  if (num_hosts > 0) s.max_revolutions = s.max_hops / num_hosts;
  s.duration_p50_ns = duration_pct.percentile(50.0);
  s.duration_p99_ns = duration_pct.percentile(99.0);
  s.duration_mean_ns = duration.mean();
  s.in_flight_fraction = flight_frac.mean();
  // One row per ring host (plus any out-of-range host ids that slipped
  // into records), so a host with zero residency hops — an origin that
  // only injected, probed and collected acks — still shows up.
  std::set<int> hosts;
  for (int h = 0; h < num_hosts; ++h) hosts.insert(h);
  for (const auto& [host, stats] : residency_by_host) hosts.insert(host);
  for (const auto& [host, probe] : probe_by_host) hosts.insert(host);
  for (const int host : hosts) {
    HostHopStats h;
    h.host = host;
    if (auto it = residency_by_host.find(host);
        it != residency_by_host.end()) {
      auto& [sum, pct] = it->second;
      h.hops = sum.count();
      h.residency_us = static_cast<std::int64_t>(sum.sum());
      h.residency_mean_us = sum.mean();
      h.residency_p99_us = pct.percentile(99.0);
    }
    if (auto it = probe_by_host.find(host); it != probe_by_host.end()) {
      h.probe_us = it->second;
    }
    s.hosts.push_back(h);
  }
  return s;
}

std::string journeys_json(const JourneySummary& s, std::string_view backend) {
  std::string out;
  out += "{\n";
  out += "  \"figure\": \"journeys\",\n";
  append_printf(out, "  \"backend\": \"%.*s\",\n",
                static_cast<int>(backend.size()), backend.data());
  out += "  \"summary\": {\n";
  append_printf(out, "    \"journeys\": %zu,\n", s.journeys);
  append_printf(out, "    \"retired\": %zu,\n", s.retired);
  append_printf(out, "    \"reinjected\": %zu,\n", s.reinjected);
  append_printf(out, "    \"adopted\": %zu,\n", s.adopted);
  append_printf(out, "    \"max_hops\": %d,\n", s.max_hops);
  append_printf(out, "    \"max_revolutions\": %d,\n", s.max_revolutions);
  append_printf(out, "    \"unkeyed_records\": %zu,\n", s.unkeyed_records);
  append_printf(out, "    \"duration_p50_ns\": %.0f,\n", s.duration_p50_ns);
  append_printf(out, "    \"duration_p99_ns\": %.0f,\n", s.duration_p99_ns);
  append_printf(out, "    \"duration_mean_ns\": %.0f,\n", s.duration_mean_ns);
  append_printf(out, "    \"in_flight_fraction\": %.4f\n",
                s.in_flight_fraction);
  out += "  },\n";
  out += "  \"hosts\": [\n";
  for (std::size_t i = 0; i < s.hosts.size(); ++i) {
    const HostHopStats& h = s.hosts[i];
    append_printf(out,
                  "    {\"host\": %d, \"hops\": %" PRIu64
                  ", \"residency_us\": %" PRId64
                  ", \"residency_mean_us\": %.1f, \"residency_p99_us\": %.1f, "
                  "\"probe_us\": %" PRId64 "}%s\n",
                  h.host, h.hops, h.residency_us, h.residency_mean_us,
                  h.residency_p99_us, h.probe_us,
                  i + 1 < s.hosts.size() ? "," : "");
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

std::string journey_flow_json(const std::vector<ChunkJourney>& journeys) {
  // Chrome trace: one "X" slice per on-host residency, flow s/t/f events
  // with id = journey index stitching consecutive hops together. ts is in
  // microseconds (Chrome convention); sub-us hops get a 1 us floor so the
  // slice is visible.
  std::string out;
  out += "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };
  for (std::size_t ji = 0; ji < journeys.size(); ++ji) {
    const ChunkJourney& j = journeys[ji];
    // Residency slices: a recv opens a hop, the matching forward/retire
    // closes it (arg_us = residency).
    int flow_step = 0;
    for (const FlightRecord& r : j.hops) {
      if (r.kind != HopKind::kForward && r.kind != HopKind::kRetire &&
          r.kind != HopKind::kInject) {
        continue;
      }
      const double end_us = static_cast<double>(r.ts) / 1000.0;
      const double dur_us =
          r.kind == HopKind::kInject ? 1.0 : std::max<double>(r.arg_us, 1.0);
      const double start_us = r.kind == HopKind::kInject ? end_us
                                                         : end_us - dur_us;
      std::string line;
      append_printf(line,
                    "{\"ph\":\"X\",\"pid\":%d,\"tid\":\"flight\","
                    "\"ts\":%.3f,\"dur\":%.3f,\"name\":\"o%u#%u%s\","
                    "\"args\":{\"hop\":%u,\"kind\":\"%.*s\"}}",
                    r.host, start_us, dur_us, j.origin, j.seq,
                    r.kind == HopKind::kRetire ? " retire" : "",
                    r.revolution,
                    static_cast<int>(hop_kind_name(r.kind).size()),
                    hop_kind_name(r.kind).data());
      emit(line);
      const char* ph = flow_step == 0 ? "s"
                       : r.kind == HopKind::kRetire ? "f"
                                                    : "t";
      std::string flow;
      append_printf(flow,
                    "{\"ph\":\"%s\",\"pid\":%d,\"tid\":\"flight\","
                    "\"ts\":%.3f,\"id\":%zu,\"cat\":\"journey\","
                    "\"name\":\"o%u#%u\"%s}",
                    ph, r.host, start_us + dur_us / 2, ji, j.origin, j.seq,
                    ph[0] == 'f' ? ",\"bp\":\"e\"" : "");
      emit(flow);
      ++flow_step;
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace cj::obs
