// Journey reconstruction: stitch flight-recorder records into end-to-end
// chunk spans.
//
// A journey is everything that happened to one injected chunk, keyed by
// (origin, seq, query): inject at the origin, then per hop a recv / probe /
// forward triple on each host, possibly re-injections after ack timeouts or
// adoption after a crash, and finally retire at pred(origin) plus the ack
// back at the origin. Reconstruction merges all host lanes by timestamp and
// groups by key; records with origin == kNoOrigin (fault-free wire, no
// frame identity) are counted but not stitched — journeys are a resilient-
// mode analysis, matching where the frame carries identity on the wire.
//
// Exports: a per-host/per-journey summary (BENCH_journeys.json) and a
// Chrome/Perfetto JSON with flow arrows following each chunk around the
// ring (hop slices linked by flow events).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight.h"

namespace cj::obs {

struct ChunkJourney {
  std::uint16_t origin = 0;
  std::uint32_t seq = 0;
  std::uint16_t query = 0;
  std::vector<FlightRecord> hops;  // ts-ordered, all kinds

  SimTime inject_ts = -1;  // first kInject (-1 if the window lost it)
  SimTime retire_ts = -1;  // last kRetire (-1 if not retired in-window)
  int max_hops = 0;        // highest frame hop counter observed
  int reinjects = 0;
  bool retired = false;
  bool adopted = false;
  std::int64_t residency_us = 0;  // sum of per-host residency (fwd+retire)
  std::int64_t probe_us = 0;      // sum of probe time across hops

  // Wall/virtual span from injection to retire; -1 when either end is
  // missing from the recorder window.
  std::int64_t duration_ns() const {
    return (inject_ts >= 0 && retire_ts >= 0) ? retire_ts - inject_ts : -1;
  }
  // Time on the wire (or queued in transport) = span minus on-host
  // residency; -1 when the span is unknown.
  std::int64_t in_flight_ns() const {
    const std::int64_t d = duration_ns();
    return d < 0 ? -1 : d - residency_us * 1000;
  }
};

// Per-host attribution across all journeys: where do spinning chunks
// spend their time? A straggling host shows up as the residency outlier.
struct HostHopStats {
  int host = -1;
  std::uint64_t hops = 0;          // forward + retire records
  std::int64_t residency_us = 0;   // total on-host time
  double residency_mean_us = 0.0;
  double residency_p99_us = 0.0;
  std::int64_t probe_us = 0;
};

struct JourneySummary {
  std::size_t journeys = 0;
  std::size_t retired = 0;
  std::size_t reinjected = 0;  // journeys with >= 1 re-injection
  std::size_t adopted = 0;
  int max_hops = 0;
  int max_revolutions = 0;  // max_hops / num_hosts (0 if unknown)
  std::size_t unkeyed_records = 0;  // origin == kNoOrigin, not stitched
  // Journey duration distribution (retired journeys only), nanoseconds.
  double duration_p50_ns = 0.0;
  double duration_p99_ns = 0.0;
  double duration_mean_ns = 0.0;
  double in_flight_fraction = 0.0;  // mean share of span not on a host
  std::vector<HostHopStats> hosts;
};

// Merge + group one recorder (or a pre-merged window) into journeys,
// ts-ordered within each journey and ordered by (origin, seq, query).
std::vector<ChunkJourney> reconstruct_journeys(
    const std::vector<FlightRecord>& window);
std::vector<ChunkJourney> reconstruct_journeys(const FlightRecorder& recorder);

// Aggregate journeys; num_hosts > 0 enables revolution counts and sizes
// `hosts` to cover every ring host (zero-hop hosts included).
JourneySummary summarize_journeys(const std::vector<ChunkJourney>& journeys,
                                  int num_hosts);

// BENCH_journeys.json body: {"figure":"journeys","backend":...,
//  "summary":{...},"hosts":[...]} with deterministic key order.
std::string journeys_json(const JourneySummary& summary,
                          std::string_view backend);

// Chrome trace JSON ({"traceEvents":[...]}) rendering each journey as hop
// slices (one per residency on a host) linked with flow arrows (s/t/f
// events, id = journey index) so Perfetto draws the chunk's path around
// the ring.
std::string journey_flow_json(const std::vector<ChunkJourney>& journeys);

}  // namespace cj::obs
