// Always-on flight recorder: per-host lock-free ring buffers of fixed-size
// chunk-hop records.
//
// Every hop in a chunk's life — inject, recv, forward, probe, retire, ack,
// re-inject, adopt, discard — appends one 24-byte record keyed by
// (origin, seq, query) to the lane of the host where it happened. The
// recorder is bounded (old records are overwritten), allocation-free on the
// hot path, and safe to write from any thread and read concurrently from a
// sampler thread: each slot is a tiny seqlock of four u64 atomics (ticket +
// three packed words), so a reader that races a wrap simply skips the slot.
//
// Unlike the Tracer (opt-in, unbounded, mutex-guarded), the flight recorder
// is installed unconditionally by both runners; its recent window is the
// black box that gets serialized (CJT1-compatible, see blackbox_dump) on a
// crash, a retry storm, or an SLO breach.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace cj::obs {

class Tracer;

// What happened to the chunk at this hop. Values are part of the blackbox
// encoding (name-interned in CJT1 dumps); append new kinds at the end.
enum class HopKind : std::uint8_t {
  kInject = 0,     // origin put the chunk on the wire (arg: payload bytes)
  kRecv = 1,       // host pulled the chunk off the wire
  kForward = 2,    // host passed it to the successor (arg: residency us)
  kProbe = 3,      // host joined it against S_i (arg: probe us)
  kRetire = 4,     // chunk completed its last hop (arg: residency us)
  kAck = 5,        // origin saw the retire ack (arg: clean ack RTT us)
  kReinject = 6,   // origin re-sent after an ack timeout (arg: attempt)
  kAdopt = 7,      // recovery host re-injected an adopted chunk
  kDiscard = 8,    // corrupt frame dropped (arg: bytes)
  kDuplicate = 9,  // already-seen (origin, seq) skipped
  kStale = 10,     // frame from a finished query group dropped
};
inline constexpr int kNumHopKinds = 11;

std::string_view hop_kind_name(HopKind kind);

// Origin id stamped when the wire carries no frame identity (fault-free
// mode sends raw chunk bytes): the emit cost is still paid, but journeys
// are only reconstructible in resilient mode.
inline constexpr std::uint16_t kNoOrigin = 0xFFFF;

struct FlightRecord {
  SimTime ts = 0;                   // engine time, ns
  std::uint32_t seq = 0;            // per-origin chunk sequence number
  std::uint16_t origin = kNoOrigin; // injecting host
  std::uint16_t query = 0;          // serving wave query group (0 = none)
  std::int16_t host = -1;           // where the hop happened
  HopKind kind = HopKind::kInject;
  std::uint8_t revolution = 0;      // frame hop counter at this hop
  std::uint32_t arg_us = 0;         // kind-specific payload (see HopKind)

  friend bool operator==(const FlightRecord&, const FlightRecord&) = default;
};

// Lossless 3-word packing used by the ring slots (exposed for tests).
std::array<std::uint64_t, 3> pack_record(const FlightRecord& r);
FlightRecord unpack_record(const std::array<std::uint64_t, 3>& w);

struct FlightConfig {
  // Slots per host lane; rounded up to a power of two. 4096 slots * 32 B
  // = 128 KiB per host — the bounded "recent window".
  std::size_t slots_per_host = 4096;
  // When non-empty, the runners write a CJT1 black-box dump of the
  // recorder window to this path on a crash ("crash") or a retry storm
  // ("retry-storm"). The serving layer has its own dump knob for SLO
  // breaches (serve::ServeConfig::blackbox_path).
  std::string blackbox_path;
  // Total re-injections in one run at or beyond which the runner writes a
  // "retry-storm" black box (0 = never). Checked at end of run on both
  // backends, so a storm that resolves itself still leaves evidence.
  std::uint64_t retry_storm_threshold = 0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(int num_hosts, FlightConfig config = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Lock-free, allocation-free; callable from any thread. Records with an
  // out-of-range host index are counted but not stored.
  void emit(int host, const FlightRecord& record);

  // Consistent snapshot of one lane's surviving window, oldest first.
  // Callable concurrently with writers; slots mid-write are skipped.
  std::vector<FlightRecord> snapshot(int host) const;
  // All lanes merged and sorted by timestamp.
  std::vector<FlightRecord> snapshot_all() const;

  // Lane cursors for incremental scans (the live sampler): appends records
  // with ticket >= *cursor to out, advances *cursor past the lane head.
  void scan(int host, std::uint64_t* cursor,
            std::vector<FlightRecord>* out) const;

  std::uint64_t emitted(int host) const;
  std::uint64_t total_emitted() const;
  // In-range host: records overwritten before they could ever be read
  // (lane head beyond capacity). Out-of-range host: the count of emits
  // that named no valid lane (stored nowhere, attributed to no host).
  std::uint64_t dropped(int host) const;

  int num_hosts() const { return num_hosts_; }
  std::size_t capacity_per_host() const { return capacity_; }

 private:
  struct Slot {
    // 0 = never written; kBusy = mid-write; else ticket+1 of the claim.
    std::atomic<std::uint64_t> ticket{0};
    std::array<std::atomic<std::uint64_t>, 3> words{};
  };
  struct Lane {
    std::atomic<std::uint64_t> head{0};
    std::unique_ptr<Slot[]> slots;
  };

  bool read_slot(const Lane& lane, std::size_t idx, std::uint64_t* ticket,
                 FlightRecord* out) const;

  int num_hosts_;
  std::size_t capacity_;  // power of two
  std::size_t mask_;
  std::vector<Lane> lanes_;
  std::atomic<std::uint64_t> out_of_range_{0};
};

// ---------------------------------------------------------------------------
// Black-box dumps (CJT1-compatible).
//
// The recorder window is re-expressed as Tracer instant events — one per
// record, name "flight.<kind>", entity = decimal seq, and the remaining
// identity (origin, query, revolution) plus arg_us packed into the 64-bit
// event arg — then serialized with Tracer::binary(). The result round-trips
// through Tracer::parse_binary and loads in any CJT1 tooling. arg_us
// saturates at 2^24-1 us (~16.7 s) in the dump encoding.

// Pack/unpack of the CJT1 event arg (exposed for tests).
std::int64_t pack_blackbox_arg(const FlightRecord& r);
void unpack_blackbox_arg(std::int64_t arg, FlightRecord* r);

// Serialize the recorder's surviving window. `reason` is interned as a
// leading instant event named "blackbox.<reason>" on the global host.
std::vector<std::uint8_t> blackbox_dump(const FlightRecorder& recorder,
                                        std::string_view reason);
// Same, but from an already-materialized record window.
std::vector<std::uint8_t> blackbox_dump(const std::vector<FlightRecord>& window,
                                        std::string_view reason);

// Write a dump to `path`; returns false on I/O failure.
bool write_blackbox(const FlightRecorder& recorder, const std::string& path,
                    std::string_view reason);

// Parse a dump back into records. Non-flight events are ignored; returns
// false if the bytes are not valid CJT1. If `reason` is non-null it
// receives the dump's reason string ("" when absent).
bool parse_blackbox(const std::vector<std::uint8_t>& bytes,
                    std::vector<FlightRecord>* out,
                    std::string* reason = nullptr);

}  // namespace cj::obs
