#include "obs/analysis.h"

#include <algorithm>
#include <map>
#include <set>

namespace cj::obs {

namespace {

bool is_core_entity(std::string_view entity) {
  if (entity.size() < 5 || entity.substr(0, 4) != "core") return false;
  for (const char c : entity.substr(4)) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

/// Merges half-open intervals into a sorted disjoint cover.
std::vector<std::pair<std::int64_t, std::int64_t>> merge_intervals(
    std::vector<std::pair<std::int64_t, std::int64_t>> intervals) {
  std::sort(intervals.begin(), intervals.end());
  std::vector<std::pair<std::int64_t, std::int64_t>> merged;
  for (const auto& [start, end] : intervals) {
    if (start >= end) continue;
    if (!merged.empty() && start <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, end);
    } else {
      merged.emplace_back(start, end);
    }
  }
  return merged;
}

std::int64_t overlap_with(
    const std::vector<std::pair<std::int64_t, std::int64_t>>& merged,
    std::int64_t start, std::int64_t end) {
  std::int64_t total = 0;
  // First interval whose end is beyond our start.
  auto it = std::lower_bound(
      merged.begin(), merged.end(), start,
      [](const auto& iv, std::int64_t s) { return iv.second <= s; });
  for (; it != merged.end() && it->first < end; ++it) {
    total += std::min(end, it->second) - std::max(start, it->first);
  }
  return total;
}

}  // namespace

std::vector<Span> extract_spans(const Tracer& trace) {
  std::vector<Span> spans;
  // Per (host, entity): indices of currently-open spans, innermost last.
  std::map<std::pair<std::int32_t, std::uint32_t>, std::vector<std::size_t>> open;
  std::int64_t last_ts = 0;
  for (const TraceEvent& e : trace.events()) {
    last_ts = std::max(last_ts, e.ts);
    if (e.kind == EventKind::kBegin) {
      auto& stack = open[{e.host, e.entity}];
      Span s;
      s.host = e.host;
      s.entity = e.entity;
      s.name = e.name;
      s.start = e.ts;
      s.end = e.ts;
      s.arg = e.arg;
      s.depth = static_cast<std::uint32_t>(stack.size());
      stack.push_back(spans.size());
      spans.push_back(s);
    } else if (e.kind == EventKind::kEnd) {
      auto it = open.find({e.host, e.entity});
      if (it == open.end() || it->second.empty()) continue;  // stray end
      spans[it->second.back()].end = e.ts;
      it->second.pop_back();
    }
  }
  // Close spans the run left open at the final timestamp.
  for (auto& [key, stack] : open) {
    for (const std::size_t idx : stack) spans[idx].end = last_ts;
  }
  return spans;
}

std::vector<HostOverlap> overlap_by_host(const Tracer& trace) {
  const std::vector<Span> spans = extract_spans(trace);
  const std::uint32_t join_name = trace.find_name("join");

  struct HostAcc {
    std::vector<std::pair<std::int64_t, std::int64_t>> tx;
    std::vector<const Span*> join;
  };
  std::map<int, HostAcc> hosts;
  for (const Span& s : spans) {
    if (s.host == kGlobalHost) continue;
    const std::string_view entity = trace.name(s.entity);
    HostAcc& acc = hosts[s.host];
    if (entity == "tx") {
      acc.tx.emplace_back(s.start, s.end);
    } else if (is_core_entity(entity) && s.name == join_name) {
      acc.join.push_back(&s);
    }
  }

  std::vector<HostOverlap> out;
  for (auto& [host, acc] : hosts) {
    HostOverlap o;
    o.host = host;
    const auto windows = merge_intervals(std::move(acc.tx));
    for (const auto& [start, end] : windows) o.transfer_time += end - start;
    for (const Span* s : acc.join) {
      o.join_busy_total += s->end - s->start;
      o.join_busy_in_transfer += overlap_with(windows, s->start, s->end);
    }
    if (o.transfer_time > 0) {
      o.ratio = static_cast<double>(o.join_busy_in_transfer) /
                static_cast<double>(o.transfer_time);
    }
    out.push_back(o);
  }
  return out;
}

CriticalPath critical_path(const Tracer& trace) {
  const std::vector<Span> spans = extract_spans(trace);

  CriticalPath cp;
  for (const Span& s : spans) {
    if (s.host == kGlobalHost || !is_core_entity(trace.name(s.entity))) continue;
    if (s.end > cp.end || (s.end == cp.end && cp.host == -1)) {
      cp.end = s.end;
      cp.host = s.host;
    }
  }
  if (cp.host == -1) return cp;

  // Sweep the critical host's core spans: each elementary interval goes to
  // the innermost active span (latest start; ties broken by record order),
  // gaps count as idle. Segments partition [0, end] exactly.
  struct Edge {
    std::int64_t t;
    bool open;
    std::size_t idx;
  };
  std::vector<Edge> edges;
  std::vector<const Span*> host_spans;
  for (const Span& s : spans) {
    if (s.host != cp.host || !is_core_entity(trace.name(s.entity))) continue;
    if (s.start >= s.end) continue;
    const std::size_t idx = host_spans.size();
    host_spans.push_back(&s);
    edges.push_back({s.start, true, idx});
    edges.push_back({s.end, false, idx});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.open < b.open;  // close before open at the same instant
  });

  std::map<std::string, std::int64_t> by_tag;
  std::set<std::pair<std::int64_t, std::size_t>> active;  // (start, idx)
  std::int64_t cursor = 0;
  for (const Edge& edge : edges) {
    if (edge.t > cursor) {
      if (active.empty()) {
        cp.idle += edge.t - cursor;
      } else {
        const Span* innermost = host_spans[active.rbegin()->second];
        by_tag[std::string(trace.name(innermost->name))] += edge.t - cursor;
      }
      cursor = edge.t;
    }
    const Span* s = host_spans[edge.idx];
    if (edge.open) {
      active.insert({s->start, edge.idx});
    } else {
      active.erase({s->start, edge.idx});
    }
  }
  cp.by_tag.assign(by_tag.begin(), by_tag.end());
  std::sort(cp.by_tag.begin(), cp.by_tag.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return cp;
}

}  // namespace cj::obs
