// Kernel-level profiling: where the real CPU cycles go.
//
// The simulator's "virtual time, real work" principle makes the *measured*
// CPU cost of the join kernels the load-bearing quantity behind every
// reproduced figure — yet cpu_ns totals alone cannot say whether a kernel
// got slower because it executes more instructions or because it misses
// the cache more. This subsystem attributes real hardware-counter deltas
// (cycles, instructions, LLC misses, branch misses) to the kernel phases
// the paper's cost model reasons about: radix passes, scatter flushes,
// hash build, the probe pipeline, sort, merge, and chunk memcpy.
//
//   PerfCounters   one perf_event_open group (cycles/instructions/
//                  LLC-misses/branch-misses) on the calling thread, with a
//                  graceful degradation to thread-CPU-time-only when the
//                  syscall is unavailable (containers, CI, non-Linux).
//   ScopedProfile  RAII region: reads the counters on entry/exit and
//                  records the delta under the current attribution
//                  context's (host, entity) and the region's phase name.
//   KernelProfiler per-(host, entity, phase) accumulation; snapshots to a
//                  KernelProfile table (JSON for BENCH_*.json / RunReport)
//                  and can stream cumulative per-phase counter tracks into
//                  an obs::Tracer for Perfetto.
//
// Profiling is strictly opt-in and the instrumented kernels pay one
// thread-local pointer test when it is off. When it is ON, the counter
// reads execute *inside* measured kernel regions and therefore perturb the
// measured CPU time that drives virtual clocks — a profiled run is for
// attribution, never for golden figures (docs/OBSERVABILITY.md).
//
// Threading: the sim backend executes all measured work on one thread; the
// rt backend runs kernels on real worker threads. Counter groups are bound
// to a thread by perf_event_open, so ScopedProfile reads a *thread-local*
// group (each worker lazily opens its own), and KernelProfiler locks its
// accumulation maps so regions from several threads can record into one
// profiler.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cj::obs {

class Tracer;

namespace prof {

/// Profiling knobs carried by cluster configs (mirrors obs::TraceConfig).
struct ProfileConfig {
  bool enabled = false;
};

/// One reading of the counter group. cpu_ns is always valid; the hardware
/// fields are meaningful only when the owning PerfCounters reports
/// hardware() == true.
struct CounterSample {
  std::int64_t cpu_ns = 0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t branch_misses = 0;
};

/// A perf_event_open counter group bound to the constructing thread.
///
/// Opens cycles (group leader), instructions, LLC misses and branch misses
/// with user-space-only scope. If any event cannot be opened — the syscall
/// is blocked (seccomp), perf_event_paranoid forbids it, or the PMU is not
/// virtualized — the group degrades as a whole: hardware() turns false and
/// read() keeps returning thread CPU time only. Opening never throws and
/// reading never fails; fallback is the expected mode on CI containers.
class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True when the hardware group is live; false in fallback mode.
  bool hardware() const { return group_fd_ >= 0; }

  /// Cumulative counters since construction (monotone). In fallback mode
  /// only cpu_ns advances.
  CounterSample read() const;

 private:
  int group_fd_ = -1;  ///< leader (cycles); -1 in fallback mode
  int fds_[3] = {-1, -1, -1};  ///< instructions, LLC misses, branch misses
};

/// Accumulated totals of one (host, entity, phase) attribution bucket.
struct PhaseTotals {
  std::uint64_t invocations = 0;
  std::uint64_t tuples = 0;  ///< work items the regions declared
  std::int64_t cpu_ns = 0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t branch_misses = 0;

  void add(const PhaseTotals& d);
};

/// Frozen profile table, safe to copy into RunReport / BenchJson.
struct KernelProfile {
  struct Row {
    int host = 0;
    std::string entity;
    std::string phase;
    PhaseTotals totals;

    double ipc() const;               ///< instructions / cycles (0 if n/a)
    double llc_misses_per_tuple() const;
    double cycles_per_tuple() const;
  };

  /// False = the run degraded to cpu_ns-only ("counters":"fallback").
  bool hardware = false;
  std::vector<Row> rows;  ///< sorted by (host, entity, phase)

  bool empty() const { return rows.empty(); }

  /// {"counters":"hw"|"fallback","phases":[{...}, ...]} with derived
  /// ipc / per-tuple rates; hardware fields are omitted in fallback mode.
  std::string to_json() const;
};

/// The accumulation side. Owns the thread's PerfCounters; regions read the
/// group through counters() and record deltas with record().
class KernelProfiler {
 public:
  KernelProfiler() = default;
  KernelProfiler(const KernelProfiler&) = delete;
  KernelProfiler& operator=(const KernelProfiler&) = delete;

  bool hardware() const { return counters_.hardware(); }
  const PerfCounters& counters() const { return counters_; }

  /// The calling thread's counter group, opened on first use. Regions read
  /// this one — never counters() — so a region measures the thread it runs
  /// on (rt workers included).
  static const PerfCounters& thread_counters();

  void record(int host, std::string_view entity, std::string_view phase,
              const PhaseTotals& delta);

  KernelProfile snapshot() const;

  /// Streams per-phase counter tracks into a trace: for every (host,
  /// phase) whose totals changed since the last flush, emits cumulative
  /// "prof.<phase>.cycles" and "prof.<phase>.llc_misses" counter samples
  /// (or "prof.<phase>.cpu_ns" in fallback mode) at virtual time `ts`.
  /// Call from simulation code *outside* measured closures.
  void flush_to_tracer(Tracer& tracer, std::int64_t ts);

 private:
  struct Key {
    int host;
    std::string entity;
    std::string phase;
    bool operator<(const Key& o) const;
  };

  PerfCounters counters_;
  mutable std::mutex mu_;
  std::map<Key, PhaseTotals> totals_;
  std::map<Key, PhaseTotals> flushed_;  ///< totals at the last tracer flush
};

/// The current thread's attribution context: which profiler (if any) the
/// instrumented kernels should record into, and as which (host, entity).
/// Null unless a ScopedContext with a non-null profiler is live — this is
/// the single pointer test every instrumentation site pays when profiling
/// is off.
KernelProfiler* current();
int current_host();
std::string_view current_entity();

/// Installs `profiler` as the thread's attribution context for its
/// lifetime (restoring the previous context on destruction, so contexts
/// nest). A null profiler leaves the context untouched, making the guard
/// free to install unconditionally.
class ScopedContext {
 public:
  ScopedContext(KernelProfiler* profiler, int host, std::string_view entity);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  bool installed_ = false;
  KernelProfiler* prev_profiler_ = nullptr;
  int prev_host_ = 0;
  std::string_view prev_entity_;
};

/// RAII measured region. Reads the counters at construction and
/// destruction and records the delta under `phase`. `phase` must outlive
/// the region (instrumentation sites pass string literals). Regions nest;
/// a nested region's delta is recorded under its own phase AND remains
/// part of every enclosing region's delta (attribution detail, documented
/// per phase in docs/OBSERVABILITY.md). No-op when `profiler` is null.
class ScopedProfile {
 public:
  ScopedProfile(KernelProfiler* profiler, std::string_view phase,
                std::uint64_t tuples = 0);
  ~ScopedProfile();
  ScopedProfile(const ScopedProfile&) = delete;
  ScopedProfile& operator=(const ScopedProfile&) = delete;

 private:
  KernelProfiler* profiler_;
  std::string_view phase_;
  std::uint64_t tuples_;
  CounterSample start_;
};

}  // namespace prof
}  // namespace cj::obs
