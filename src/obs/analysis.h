// Derived analyses over a recorded trace.
//
// The paper's central performance claim (Sec. V, Fig. 3 context) is that
// cyclo-join hides the ring's network time behind join work. The raw trace
// makes that falsifiable: overlap_by_host() measures how much join-tagged
// core time runs *while* the host's transmitter has a send in flight, and
// critical_path() attributes the makespan of the slowest host to its
// per-tag core activity plus idle gaps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace cj::obs {

/// A reconstructed span: matched kBegin/kEnd pair on one (host, entity).
struct Span {
  std::int32_t host = 0;
  std::uint32_t entity = 0;
  std::uint32_t name = 0;
  std::int64_t start = 0;
  std::int64_t end = 0;
  std::int64_t arg = 0;
  std::uint32_t depth = 0;  ///< nesting level within its (host, entity)
};

/// Pairs up every begin/end on each (host, entity) track. Ends without a
/// matching begin are ignored; begins without an end are closed at the
/// last event timestamp (a trace cut mid-run stays analyzable).
std::vector<Span> extract_spans(const Tracer& trace);

/// Communication/computation overlap of one host.
struct HostOverlap {
  int host = 0;
  /// Union length of this host's transmitter send windows ("tx" spans).
  std::int64_t transfer_time = 0;
  /// Join-tagged core-busy time over the whole run (with multiplicity:
  /// two cores joining for 1 ms contribute 2 ms).
  std::int64_t join_busy_total = 0;
  /// The part of join_busy_total that falls inside the transfer windows.
  std::int64_t join_busy_in_transfer = 0;
  /// join_busy_in_transfer / transfer_time; > 1 means several cores kept
  /// joining while the NIC moved data — the paper's "network is hidden".
  double ratio = 0.0;
};

/// Per-host overlap, ordered by host id. Hosts without any tx span (ring
/// of one) report transfer_time = 0 and ratio = 0.
std::vector<HostOverlap> overlap_by_host(const Tracer& trace);

/// Where the makespan went on the host that finishes last.
struct CriticalPath {
  int host = -1;          ///< host whose last core span ends latest
  std::int64_t end = 0;   ///< that host's last span end (the makespan)
  std::int64_t idle = 0;  ///< [0, end] time with no core span active
  /// Core-occupied time attributed to the innermost active span's name
  /// (ties: latest start wins), descending. idle + sum(by_tag) == end.
  std::vector<std::pair<std::string, std::int64_t>> by_tag;
};

CriticalPath critical_path(const Tracer& trace);

}  // namespace cj::obs
