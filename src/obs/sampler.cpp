#include "obs/sampler.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/trace.h"

namespace cj::obs {

StragglerDetector::StragglerDetector(int num_hosts,
                                     const SamplerConfig& config)
    : config_(config), hosts_(static_cast<std::size_t>(std::max(num_hosts, 1))) {}

bool StragglerDetector::observe(int host, double residency_us) {
  if (host < 0 || host >= num_hosts()) return false;
  HostWindow& w = hosts_[static_cast<std::size_t>(host)];
  w.values.push_back(residency_us);
  w.sum += residency_us;
  if (w.values.size() > static_cast<std::size_t>(config_.window)) {
    w.sum -= w.values.front();
    w.values.pop_front();
  }
  if (w.values.size() < static_cast<std::size_t>(config_.min_samples)) {
    return false;
  }
  // Leave-one-out z-score of this host's rolling mean against the other
  // hosts' rolling means. Requires at least two peers with enough samples,
  // and floors sigma at 10% of the peer mean so a perfectly uniform ring
  // (sigma ~ 0) cannot manufacture flags out of noise.
  double peer_sum = 0.0, peer_sq = 0.0;
  int peers = 0;
  for (int h = 0; h < num_hosts(); ++h) {
    if (h == host) continue;
    const HostWindow& p = hosts_[static_cast<std::size_t>(h)];
    if (p.values.size() < static_cast<std::size_t>(config_.min_samples)) {
      continue;
    }
    const double m = p.sum / static_cast<double>(p.values.size());
    peer_sum += m;
    peer_sq += m * m;
    ++peers;
  }
  if (peers < 2) return false;
  const double peer_mean = peer_sum / peers;
  const double peer_var =
      std::max(0.0, peer_sq / peers - peer_mean * peer_mean);
  const double sigma =
      std::max(std::sqrt(peer_var), 0.1 * std::max(peer_mean, 1.0));
  const double mine = w.sum / static_cast<double>(w.values.size());
  const double z = (mine - peer_mean) / sigma;
  w.last_z = z;
  if (z > config_.z_threshold) {
    ++w.flags;
    ++total_flags_;
    return true;
  }
  return false;
}

std::uint64_t StragglerDetector::flags(int host) const {
  if (host < 0 || host >= num_hosts()) return 0;
  return hosts_[static_cast<std::size_t>(host)].flags;
}

std::uint64_t StragglerDetector::total_flags() const { return total_flags_; }

double StragglerDetector::last_z(int host) const {
  if (host < 0 || host >= num_hosts()) return 0.0;
  return hosts_[static_cast<std::size_t>(host)].last_z;
}

double StragglerDetector::mean_residency_us(int host) const {
  if (host < 0 || host >= num_hosts()) return 0.0;
  const HostWindow& w = hosts_[static_cast<std::size_t>(host)];
  return w.values.empty() ? 0.0
                          : w.sum / static_cast<double>(w.values.size());
}

int StragglerDetector::hottest() const {
  int best = -1;
  std::uint64_t best_flags = 0;
  for (int h = 0; h < num_hosts(); ++h) {
    const std::uint64_t f = hosts_[static_cast<std::size_t>(h)].flags;
    if (f > best_flags) {
      best_flags = f;
      best = h;
    }
  }
  return best;
}

namespace {

void count_flag(MetricsRegistry* metrics, Tracer* tracer, int host,
                std::int64_t ts, std::uint32_t residency_us) {
  if (metrics != nullptr) {
    metrics->add_counter("obs.straggler_flags", 1);
    metrics->add_counter("host" + std::to_string(host) + ".straggler_flags",
                         1);
  }
  if (tracer != nullptr) {
    tracer->instant(ts, host, "ring", "straggler", residency_us);
  }
}

}  // namespace

std::uint64_t replay_stragglers(const FlightRecorder& recorder,
                                StragglerDetector& detector,
                                MetricsRegistry* metrics, Tracer* tracer) {
  std::uint64_t raised = 0;
  for (const FlightRecord& r : recorder.snapshot_all()) {
    if (r.kind != HopKind::kForward && r.kind != HopKind::kRetire) continue;
    if (detector.observe(r.host, static_cast<double>(r.arg_us))) {
      count_flag(metrics, tracer, r.host, r.ts, r.arg_us);
      ++raised;
    }
  }
  return raised;
}

LiveSampler::LiveSampler(const SamplerConfig& config, MetricsRegistry* metrics,
                         const FlightRecorder* recorder, Tracer* tracer,
                         int num_hosts, std::function<std::int64_t()> now_ns)
    : config_(config),
      metrics_(metrics),
      recorder_(recorder),
      tracer_(tracer),
      now_ns_(std::move(now_ns)),
      detector_(num_hosts, config),
      cursors_(static_cast<std::size_t>(std::max(num_hosts, 1)), 0) {}

LiveSampler::~LiveSampler() { stop(); }

void LiveSampler::start() {
  if (running_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { run(); });
}

void LiveSampler::stop() {
  if (!running_.load()) return;
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

void LiveSampler::run() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(wake_mu_);
      if (wake_cv_.wait_for(lk, config_.interval,
                            [this] { return stop_requested_; })) {
        break;
      }
    }
    sample_once();
  }
  sample_once();  // final sample so short runs still get a point
}

void LiveSampler::sample_once() {
  Point p;
  p.ts_ns = now_ns_ ? now_ns_() : 0;
  if (metrics_ != nullptr) p.metrics = metrics_->snapshot();
  scratch_.clear();
  if (recorder_ != nullptr) {
    for (int h = 0; h < recorder_->num_hosts(); ++h) {
      if (static_cast<std::size_t>(h) < cursors_.size()) {
        recorder_->scan(h, &cursors_[static_cast<std::size_t>(h)], &scratch_);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const FlightRecord& r : scratch_) {
      if (r.kind != HopKind::kForward && r.kind != HopKind::kRetire) continue;
      if (detector_.observe(r.host, static_cast<double>(r.arg_us))) {
        count_flag(metrics_, tracer_, r.host, r.ts, r.arg_us);
      }
    }
    series_.push_back(std::move(p));
    while (series_.size() > config_.max_points) series_.pop_front();
    ++samples_;
  }
  if (config_.on_sample) config_.on_sample(*this);
}

std::vector<LiveSampler::Point> LiveSampler::series() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {series_.begin(), series_.end()};
}

LiveSampler::Point LiveSampler::latest() const {
  std::lock_guard<std::mutex> lk(mu_);
  return series_.empty() ? Point{} : series_.back();
}

std::uint64_t LiveSampler::samples_taken() const {
  std::lock_guard<std::mutex> lk(mu_);
  return samples_;
}

}  // namespace cj::obs
