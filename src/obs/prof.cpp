#include "obs/prof.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <tuple>

#include "common/cputime.h"
#include "obs/trace.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace cj::obs::prof {

namespace {

// ----- thread-local attribution context ---------------------------------

struct Context {
  KernelProfiler* profiler = nullptr;
  int host = 0;
  std::string_view entity = "cpu";
};

thread_local Context t_context;

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

#if defined(__linux__)
int open_event(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  // User-space only: works under perf_event_paranoid <= 2 and keeps the
  // numbers about the kernels, not the OS underneath them.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.disabled = group_fd == -1 ? 1 : 0;  // leader starts the group
  attr.read_format = PERF_FORMAT_GROUP;
  return static_cast<int>(::syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                    /*cpu=*/-1, group_fd, /*flags=*/0UL));
}
#endif

}  // namespace

// ----- PerfCounters ------------------------------------------------------

PerfCounters::PerfCounters() {
#if defined(__linux__)
  const int leader = open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (leader < 0) return;  // fallback mode
  const std::uint64_t siblings[3] = {PERF_COUNT_HW_INSTRUCTIONS,
                                     PERF_COUNT_HW_CACHE_MISSES,
                                     PERF_COUNT_HW_BRANCH_MISSES};
  int fds[3];
  for (int i = 0; i < 3; ++i) {
    fds[i] = open_event(PERF_TYPE_HARDWARE, siblings[i], leader);
    if (fds[i] < 0) {
      // Degrade as a whole group: partial counter sets would make profiles
      // incomparable across machines.
      for (int j = 0; j < i; ++j) ::close(fds[j]);
      ::close(leader);
      return;
    }
  }
  if (::ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
      ::ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
    for (int fd : fds) ::close(fd);
    ::close(leader);
    return;
  }
  group_fd_ = leader;
  for (int i = 0; i < 3; ++i) fds_[i] = fds[i];
#endif
}

PerfCounters::~PerfCounters() {
#if defined(__linux__)
  if (group_fd_ >= 0) {
    for (int fd : fds_) ::close(fd);
    ::close(group_fd_);
  }
#endif
}

CounterSample PerfCounters::read() const {
  CounterSample out;
  out.cpu_ns = thread_cpu_now_ns();
#if defined(__linux__)
  if (group_fd_ >= 0) {
    // PERF_FORMAT_GROUP layout: u64 nr; u64 values[nr];
    std::uint64_t buf[1 + 4] = {};
    const ssize_t n = ::read(group_fd_, buf, sizeof buf);
    if (n == static_cast<ssize_t>(sizeof buf) && buf[0] == 4) {
      out.cycles = buf[1];
      out.instructions = buf[2];
      out.llc_misses = buf[3];
      out.branch_misses = buf[4];
    }
  }
#endif
  return out;
}

// ----- PhaseTotals / KernelProfile ---------------------------------------

void PhaseTotals::add(const PhaseTotals& d) {
  invocations += d.invocations;
  tuples += d.tuples;
  cpu_ns += d.cpu_ns;
  cycles += d.cycles;
  instructions += d.instructions;
  llc_misses += d.llc_misses;
  branch_misses += d.branch_misses;
}

double KernelProfile::Row::ipc() const {
  return totals.cycles == 0
             ? 0.0
             : static_cast<double>(totals.instructions) /
                   static_cast<double>(totals.cycles);
}

double KernelProfile::Row::llc_misses_per_tuple() const {
  return totals.tuples == 0
             ? 0.0
             : static_cast<double>(totals.llc_misses) /
                   static_cast<double>(totals.tuples);
}

double KernelProfile::Row::cycles_per_tuple() const {
  return totals.tuples == 0 ? 0.0
                            : static_cast<double>(totals.cycles) /
                                  static_cast<double>(totals.tuples);
}

std::string KernelProfile::to_json() const {
  std::string out = "{\"counters\":\"";
  out += hardware ? "hw" : "fallback";
  out += "\",\"phases\":[";
  bool first = true;
  for (const Row& row : rows) {
    if (!first) out += ",";
    first = false;
    out += "{\"host\":";
    append_i64(out, row.host);
    out += ",\"entity\":\"";
    append_escaped(out, row.entity);
    out += "\",\"phase\":\"";
    append_escaped(out, row.phase);
    out += "\",\"invocations\":";
    append_u64(out, row.totals.invocations);
    out += ",\"tuples\":";
    append_u64(out, row.totals.tuples);
    out += ",\"cpu_ns\":";
    append_i64(out, row.totals.cpu_ns);
    if (hardware) {
      out += ",\"cycles\":";
      append_u64(out, row.totals.cycles);
      out += ",\"instructions\":";
      append_u64(out, row.totals.instructions);
      out += ",\"llc_misses\":";
      append_u64(out, row.totals.llc_misses);
      out += ",\"branch_misses\":";
      append_u64(out, row.totals.branch_misses);
      out += ",\"ipc\":";
      append_double(out, row.ipc());
      out += ",\"cycles_per_tuple\":";
      append_double(out, row.cycles_per_tuple());
      out += ",\"llc_misses_per_tuple\":";
      append_double(out, row.llc_misses_per_tuple());
    }
    out += "}";
  }
  out += "]}";
  return out;
}

// ----- KernelProfiler ----------------------------------------------------

bool KernelProfiler::Key::operator<(const Key& o) const {
  return std::tie(host, entity, phase) < std::tie(o.host, o.entity, o.phase);
}

const PerfCounters& KernelProfiler::thread_counters() {
  thread_local PerfCounters counters;
  return counters;
}

void KernelProfiler::record(int host, std::string_view entity,
                            std::string_view phase, const PhaseTotals& delta) {
  std::lock_guard<std::mutex> lk(mu_);
  totals_[Key{host, std::string(entity), std::string(phase)}].add(delta);
}

KernelProfile KernelProfiler::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  KernelProfile out;
  out.hardware = hardware();
  out.rows.reserve(totals_.size());
  for (const auto& [key, totals] : totals_) {
    out.rows.push_back(KernelProfile::Row{key.host, key.entity, key.phase, totals});
  }
  return out;  // std::map iteration: already sorted by (host, entity, phase)
}

void KernelProfiler::flush_to_tracer(Tracer& tracer, std::int64_t ts) {
  std::lock_guard<std::mutex> lk(mu_);
  const bool hw = hardware();
  for (const auto& [key, totals] : totals_) {
    PhaseTotals& last = flushed_[key];
    if (std::memcmp(&last, &totals, sizeof(PhaseTotals)) == 0) continue;
    const std::string base = "prof." + key.phase;
    if (hw) {
      tracer.counter(ts, key.host, base + ".cycles",
                     static_cast<std::int64_t>(totals.cycles));
      tracer.counter(ts, key.host, base + ".llc_misses",
                     static_cast<std::int64_t>(totals.llc_misses));
    } else {
      tracer.counter(ts, key.host, base + ".cpu_ns", totals.cpu_ns);
    }
    last = totals;
  }
}

// ----- context & regions -------------------------------------------------

KernelProfiler* current() { return t_context.profiler; }
int current_host() { return t_context.host; }
std::string_view current_entity() { return t_context.entity; }

ScopedContext::ScopedContext(KernelProfiler* profiler, int host,
                             std::string_view entity) {
  if (profiler == nullptr) return;
  installed_ = true;
  prev_profiler_ = t_context.profiler;
  prev_host_ = t_context.host;
  prev_entity_ = t_context.entity;
  t_context = Context{profiler, host, entity};
}

ScopedContext::~ScopedContext() {
  if (installed_) t_context = Context{prev_profiler_, prev_host_, prev_entity_};
}

ScopedProfile::ScopedProfile(KernelProfiler* profiler, std::string_view phase,
                             std::uint64_t tuples)
    : profiler_(profiler), phase_(phase), tuples_(tuples) {
  if (profiler_ != nullptr) start_ = KernelProfiler::thread_counters().read();
}

ScopedProfile::~ScopedProfile() {
  if (profiler_ == nullptr) return;
  const CounterSample end = KernelProfiler::thread_counters().read();
  PhaseTotals delta;
  delta.invocations = 1;
  delta.tuples = tuples_;
  delta.cpu_ns = end.cpu_ns - start_.cpu_ns;
  delta.cycles = end.cycles - start_.cycles;
  delta.instructions = end.instructions - start_.instructions;
  delta.llc_misses = end.llc_misses - start_.llc_misses;
  delta.branch_misses = end.branch_misses - start_.branch_misses;
  profiler_->record(current_host(), current_entity(), phase_, delta);
}

}  // namespace cj::obs::prof
