#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <set>
#include <utility>

namespace cj::obs {

namespace {

// Chrome's ts field is microseconds; format ours from integer nanoseconds
// without going through floating point so the text is bit-stable.
void append_ts(std::string& out, std::int64_t ts_ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRId64 ".%03" PRId64, ts_ns / 1000,
                ts_ns % 1000);
  out += buf;
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

// ----- binary encoding helpers (explicit little-endian) -----------------

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

bool get_u32(const std::vector<std::uint8_t>& in, std::size_t& pos,
             std::uint32_t& v) {
  if (pos + 4 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[pos + i]) << (8 * i);
  pos += 4;
  return true;
}

bool get_u64(const std::vector<std::uint8_t>& in, std::size_t& pos,
             std::uint64_t& v) {
  if (pos + 8 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[pos + i]) << (8 * i);
  pos += 8;
  return true;
}

constexpr char kMagic[4] = {'C', 'J', 'T', '1'};

}  // namespace

std::uint32_t Tracer::intern(std::string_view s) {
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(s);
  ids_.emplace(names_.back(), id);
  return id;
}

std::uint32_t Tracer::find_name(std::string_view s) const {
  auto it = ids_.find(s);
  return it == ids_.end() ? kNoName : it->second;
}

std::string Tracer::chrome_json() const {
  std::string out;
  out.reserve(events_.size() * 96 + 1024);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Metadata: name each process (host) and each (host, entity) thread so
  // the viewer shows "host0 / core1" instead of bare numbers. std::set
  // iteration keeps the metadata block deterministic.
  std::set<std::int32_t> hosts;
  std::set<std::pair<std::int32_t, std::uint32_t>> tracks;
  for (const TraceEvent& e : events_) {
    hosts.insert(e.host);
    if (e.kind != EventKind::kCounter) tracks.insert({e.host, e.entity});
  }
  for (const std::int32_t host : hosts) {
    sep();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    append_i64(out, host);
    out += ",\"args\":{\"name\":\"";
    if (host == kGlobalHost) {
      out += "faults";
    } else {
      out += "host";
      append_i64(out, host);
    }
    out += "\"}}";
  }
  for (const auto& [host, entity] : tracks) {
    sep();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
    append_i64(out, host);
    out += ",\"tid\":";
    append_i64(out, entity);
    out += ",\"args\":{\"name\":\"";
    append_escaped(out, names_[entity]);
    out += "\"}}";
  }

  for (const TraceEvent& e : events_) {
    sep();
    switch (e.kind) {
      case EventKind::kBegin:
        out += "{\"ph\":\"B\",\"ts\":";
        append_ts(out, e.ts);
        out += ",\"pid\":";
        append_i64(out, e.host);
        out += ",\"tid\":";
        append_i64(out, e.entity);
        out += ",\"name\":\"";
        append_escaped(out, names_[e.name]);
        out += "\",\"args\":{\"v\":";
        append_i64(out, e.arg);
        out += "}}";
        break;
      case EventKind::kEnd:
        out += "{\"ph\":\"E\",\"ts\":";
        append_ts(out, e.ts);
        out += ",\"pid\":";
        append_i64(out, e.host);
        out += ",\"tid\":";
        append_i64(out, e.entity);
        out += "}";
        break;
      case EventKind::kInstant:
        out += "{\"ph\":\"i\",\"ts\":";
        append_ts(out, e.ts);
        out += ",\"pid\":";
        append_i64(out, e.host);
        out += ",\"tid\":";
        append_i64(out, e.entity);
        out += ",\"name\":\"";
        append_escaped(out, names_[e.name]);
        out += "\",\"s\":\"t\",\"args\":{\"v\":";
        append_i64(out, e.arg);
        out += "}}";
        break;
      case EventKind::kCounter:
        out += "{\"ph\":\"C\",\"ts\":";
        append_ts(out, e.ts);
        out += ",\"pid\":";
        append_i64(out, e.host);
        out += ",\"name\":\"";
        append_escaped(out, names_[e.name]);
        out += "\",\"args\":{\"value\":";
        append_i64(out, e.arg);
        out += "}}";
        break;
    }
  }
  out += "\n]}\n";
  return out;
}

std::vector<std::uint8_t> Tracer::binary() const {
  std::vector<std::uint8_t> out;
  out.reserve(16 + events_.size() * 29);
  out.insert(out.end(), kMagic, kMagic + 4);
  put_u32(out, static_cast<std::uint32_t>(names_.size()));
  for (const std::string& n : names_) {
    put_u32(out, static_cast<std::uint32_t>(n.size()));
    out.insert(out.end(), n.begin(), n.end());
  }
  put_u64(out, events_.size());
  for (const TraceEvent& e : events_) {
    put_u64(out, static_cast<std::uint64_t>(e.ts));
    put_u32(out, static_cast<std::uint32_t>(e.host));
    put_u32(out, e.entity);
    put_u32(out, e.name);
    out.push_back(static_cast<std::uint8_t>(e.kind));
    put_u64(out, static_cast<std::uint64_t>(e.arg));
  }
  return out;
}

bool Tracer::parse_binary(const std::vector<std::uint8_t>& bytes, Tracer& out) {
  if (!out.events_.empty() || !out.names_.empty()) return false;
  std::size_t pos = 0;
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kMagic, 4) != 0) return false;
  pos = 4;
  std::uint32_t num_names = 0;
  if (!get_u32(bytes, pos, num_names)) return false;
  for (std::uint32_t i = 0; i < num_names; ++i) {
    std::uint32_t len = 0;
    if (!get_u32(bytes, pos, len) || pos + len > bytes.size()) return false;
    const std::string_view name(reinterpret_cast<const char*>(bytes.data()) + pos,
                                len);
    if (out.intern(name) != i) return false;  // duplicate name in the table
    pos += len;
  }
  std::uint64_t num_events = 0;
  if (!get_u64(bytes, pos, num_events)) return false;
  out.events_.reserve(num_events);
  for (std::uint64_t i = 0; i < num_events; ++i) {
    TraceEvent e;
    std::uint64_t ts = 0, arg = 0;
    std::uint32_t host = 0;
    std::uint8_t kind = 0;
    if (!get_u64(bytes, pos, ts) || !get_u32(bytes, pos, host) ||
        !get_u32(bytes, pos, e.entity) || !get_u32(bytes, pos, e.name)) {
      return false;
    }
    if (pos + 1 > bytes.size()) return false;
    kind = bytes[pos++];
    if (!get_u64(bytes, pos, arg)) return false;
    if (kind > static_cast<std::uint8_t>(EventKind::kCounter)) return false;
    e.ts = static_cast<std::int64_t>(ts);
    e.host = static_cast<std::int32_t>(host);
    e.kind = static_cast<EventKind>(kind);
    e.arg = static_cast<std::int64_t>(arg);
    if (e.entity >= out.names_.size() ||
        (e.kind != EventKind::kEnd && e.name >= out.names_.size())) {
      return false;
    }
    out.events_.push_back(e);
  }
  return pos == bytes.size();
}

}  // namespace cj::obs
