// Tracer: the simulator's observability spine.
//
// Records spans (begin/end), instants and counter samples keyed by
// (host, entity) in *virtual* time, with all strings interned so a hot run
// appends one small POD per event. Exports Chrome trace_event JSON (loads
// in chrome://tracing and Perfetto) and a compact binary form for archival
// and byte-identity tests — see docs/OBSERVABILITY.md for the schema and
// the metric/event name catalog.
//
// Zero overhead when disabled: components reach the tracer through
// Engine::tracer(), which is null by default, and every instrumentation
// site is a single pointer test. Nothing is ever recorded from inside a
// measured execute() closure — instrumentation must not perturb the
// measured CPU time that drives the virtual clock.
//
// Determinism: events are appended in engine order and timestamps are
// integer nanoseconds, so the same seed + config produces a byte-identical
// trace (provided the run uses only analytic costs; measured execute()
// durations vary across machines by design).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cj::obs {

/// Tracing knobs carried by cluster configs. A struct (not a bool) so
/// future options (binary-only, event filters) do not churn call sites.
struct TraceConfig {
  bool enabled = false;
};

/// Host id used for cluster-global events (fault injections, ring repair)
/// that no single host owns.
inline constexpr int kGlobalHost = -1;

enum class EventKind : std::uint8_t {
  kBegin = 0,    ///< span opens on (host, entity)
  kEnd = 1,      ///< innermost open span on (host, entity) closes
  kInstant = 2,  ///< point event
  kCounter = 3,  ///< sampled value of a named series
};

/// One recorded event. Strings live in the tracer's intern table.
struct TraceEvent {
  std::int64_t ts = 0;      ///< virtual time, nanoseconds
  std::int32_t host = 0;    ///< pid in the Chrome export (kGlobalHost = -1)
  std::uint32_t entity = 0; ///< interned entity ("core0", "tx", "qp2", ...)
  std::uint32_t name = 0;   ///< interned event name (unused for kEnd)
  EventKind kind = EventKind::kInstant;
  std::int64_t arg = 0;     ///< payload: bytes, counter value, link id, ...

  bool operator==(const TraceEvent&) const = default;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // ----- recording ------------------------------------------------------
  //
  // Recording is internally locked: under the rt backend, core workers and
  // several per-host engine threads append concurrently. The sim backend is
  // single-threaded, so the uncontended lock costs a few nanoseconds per
  // event and event order — hence the golden traces — is unchanged.

  void begin(std::int64_t ts, int host, std::string_view entity,
             std::string_view name, std::int64_t arg = 0) {
    std::lock_guard<std::mutex> lk(mu_);
    events_.push_back(TraceEvent{ts, host, intern(entity), intern(name),
                                 EventKind::kBegin, arg});
  }
  void end(std::int64_t ts, int host, std::string_view entity) {
    std::lock_guard<std::mutex> lk(mu_);
    events_.push_back(
        TraceEvent{ts, host, intern(entity), 0, EventKind::kEnd, 0});
  }
  void instant(std::int64_t ts, int host, std::string_view entity,
               std::string_view name, std::int64_t arg = 0) {
    std::lock_guard<std::mutex> lk(mu_);
    events_.push_back(TraceEvent{ts, host, intern(entity), intern(name),
                                 EventKind::kInstant, arg});
  }
  void counter(std::int64_t ts, int host, std::string_view name,
               std::int64_t value) {
    std::lock_guard<std::mutex> lk(mu_);
    const std::uint32_t id = intern(name);
    events_.push_back(TraceEvent{ts, host, id, id, EventKind::kCounter, value});
  }

  // ----- inspection (not locked: read after the recording threads have
  // been joined) ---------------------------------------------------------

  const std::vector<TraceEvent>& events() const { return events_; }
  std::string_view name(std::uint32_t id) const { return names_[id]; }
  std::size_t num_names() const { return names_.size(); }
  std::uint32_t find_name(std::string_view s) const;  ///< kNoName if absent
  static constexpr std::uint32_t kNoName = 0xFFFFFFFFu;

  // ----- export ---------------------------------------------------------

  /// Chrome trace_event JSON ({"traceEvents": [...]}) with deterministic
  /// formatting: integer-derived timestamps, stable event order, interned
  /// names. Loads in chrome://tracing and ui.perfetto.dev.
  std::string chrome_json() const;

  /// Compact binary form ("CJT1" header + intern table + packed events).
  std::vector<std::uint8_t> binary() const;

  /// Parses binary() output back into `out` (which must be empty).
  /// Returns false on any structural error.
  static bool parse_binary(const std::vector<std::uint8_t>& bytes, Tracer& out);

 private:
  std::uint32_t intern(std::string_view s);  ///< caller holds mu_

  std::mutex mu_;
  std::map<std::string, std::uint32_t, std::less<>> ids_;
  std::vector<std::string> names_;
  std::vector<TraceEvent> events_;
};

}  // namespace cj::obs
