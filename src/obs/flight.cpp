#include "obs/flight.h"

#include <algorithm>
#include <fstream>

#include "common/assert.h"
#include "obs/trace.h"

namespace cj::obs {
namespace {

constexpr std::uint64_t kBusy = ~std::uint64_t{0};

constexpr std::string_view kHopNames[kNumHopKinds] = {
    "inject", "recv",     "forward", "probe",   "retire",    "ack",
    "reinject", "adopt",  "discard", "duplicate", "stale",
};

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::string_view hop_kind_name(HopKind kind) {
  auto idx = static_cast<std::size_t>(kind);
  CJ_CHECK_MSG(idx < kNumHopKinds, "bad HopKind");
  return kHopNames[idx];
}

std::array<std::uint64_t, 3> pack_record(const FlightRecord& r) {
  std::array<std::uint64_t, 3> w;
  w[0] = static_cast<std::uint64_t>(r.ts);
  w[1] = static_cast<std::uint64_t>(r.seq) |
         (static_cast<std::uint64_t>(r.origin) << 32) |
         (static_cast<std::uint64_t>(r.query) << 48);
  w[2] = static_cast<std::uint64_t>(r.arg_us) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(r.host)) << 32) |
         (static_cast<std::uint64_t>(static_cast<std::uint8_t>(r.kind)) << 48) |
         (static_cast<std::uint64_t>(r.revolution) << 56);
  return w;
}

FlightRecord unpack_record(const std::array<std::uint64_t, 3>& w) {
  FlightRecord r;
  r.ts = static_cast<SimTime>(w[0]);
  r.seq = static_cast<std::uint32_t>(w[1]);
  r.origin = static_cast<std::uint16_t>(w[1] >> 32);
  r.query = static_cast<std::uint16_t>(w[1] >> 48);
  r.arg_us = static_cast<std::uint32_t>(w[2]);
  r.host = static_cast<std::int16_t>(static_cast<std::uint16_t>(w[2] >> 32));
  r.kind = static_cast<HopKind>(static_cast<std::uint8_t>(w[2] >> 48) %
                                kNumHopKinds);
  r.revolution = static_cast<std::uint8_t>(w[2] >> 56);
  return r;
}

FlightRecorder::FlightRecorder(int num_hosts, FlightConfig config)
    : num_hosts_(std::max(num_hosts, 1)),
      capacity_(round_up_pow2(std::max<std::size_t>(config.slots_per_host, 8))),
      mask_(capacity_ - 1),
      lanes_(static_cast<std::size_t>(num_hosts_)) {
  for (Lane& lane : lanes_) {
    lane.slots = std::make_unique<Slot[]>(capacity_);
  }
}

void FlightRecorder::emit(int host, const FlightRecord& record) {
  if (host < 0 || host >= num_hosts_) {
    out_of_range_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Lane& lane = lanes_[static_cast<std::size_t>(host)];
  const std::uint64_t ticket =
      lane.head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = lane.slots[ticket & mask_];
  const auto words = pack_record(record);
  // Per-slot seqlock: mark busy, publish the words behind a release fence,
  // then publish the ticket. A reader that observes any of the new words
  // and then re-reads the ticket is guaranteed (acquire fence on its side)
  // to see at least kBusy, so it skips the slot instead of returning a mix
  // of two records. Writers only collide on a slot a full wrap apart.
  slot.ticket.store(kBusy, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.words[0].store(words[0], std::memory_order_relaxed);
  slot.words[1].store(words[1], std::memory_order_relaxed);
  slot.words[2].store(words[2], std::memory_order_relaxed);
  slot.ticket.store(ticket + 1, std::memory_order_release);
}

bool FlightRecorder::read_slot(const Lane& lane, std::size_t idx,
                               std::uint64_t* ticket,
                               FlightRecord* out) const {
  const Slot& slot = lane.slots[idx];
  const std::uint64_t t1 = slot.ticket.load(std::memory_order_acquire);
  if (t1 == 0 || t1 == kBusy) return false;
  std::array<std::uint64_t, 3> words;
  words[0] = slot.words[0].load(std::memory_order_relaxed);
  words[1] = slot.words[1].load(std::memory_order_relaxed);
  words[2] = slot.words[2].load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  const std::uint64_t t2 = slot.ticket.load(std::memory_order_relaxed);
  if (t1 != t2) return false;
  *ticket = t1 - 1;
  *out = unpack_record(words);
  return true;
}

std::vector<FlightRecord> FlightRecorder::snapshot(int host) const {
  std::vector<FlightRecord> out;
  if (host < 0 || host >= num_hosts_) return out;
  const Lane& lane = lanes_[static_cast<std::size_t>(host)];
  const std::uint64_t head = lane.head.load(std::memory_order_acquire);
  if (head == 0) return out;
  const std::uint64_t first = head > capacity_ ? head - capacity_ : 0;
  out.reserve(static_cast<std::size_t>(head - first));
  std::vector<std::pair<std::uint64_t, FlightRecord>> got;
  got.reserve(static_cast<std::size_t>(head - first));
  for (std::uint64_t t = first; t < head; ++t) {
    std::uint64_t ticket = 0;
    FlightRecord r;
    if (read_slot(lane, static_cast<std::size_t>(t & mask_), &ticket, &r) &&
        ticket >= first) {
      got.emplace_back(ticket, r);
    }
  }
  // Concurrent writers may have lapped some slots; order by claim ticket.
  std::sort(got.begin(), got.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [t, r] : got) out.push_back(r);
  return out;
}

std::vector<FlightRecord> FlightRecorder::snapshot_all() const {
  std::vector<FlightRecord> all;
  for (int h = 0; h < num_hosts_; ++h) {
    auto lane = snapshot(h);
    all.insert(all.end(), lane.begin(), lane.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const FlightRecord& a, const FlightRecord& b) {
                     return a.ts < b.ts;
                   });
  return all;
}

void FlightRecorder::scan(int host, std::uint64_t* cursor,
                          std::vector<FlightRecord>* out) const {
  if (host < 0 || host >= num_hosts_) return;
  const Lane& lane = lanes_[static_cast<std::size_t>(host)];
  const std::uint64_t head = lane.head.load(std::memory_order_acquire);
  std::uint64_t from = *cursor;
  if (head > capacity_ && from < head - capacity_) from = head - capacity_;
  for (std::uint64_t t = from; t < head; ++t) {
    std::uint64_t ticket = 0;
    FlightRecord r;
    if (read_slot(lane, static_cast<std::size_t>(t & mask_), &ticket, &r) &&
        ticket == t) {
      out->push_back(r);
    }
  }
  *cursor = head;
}

std::uint64_t FlightRecorder::emitted(int host) const {
  if (host < 0 || host >= num_hosts_) return 0;
  return lanes_[static_cast<std::size_t>(host)].head.load(
      std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::total_emitted() const {
  std::uint64_t total = 0;
  for (int h = 0; h < num_hosts_; ++h) total += emitted(h);
  return total;
}

std::uint64_t FlightRecorder::dropped(int host) const {
  if (host < 0 || host >= num_hosts_) {
    return out_of_range_.load(std::memory_order_relaxed);
  }
  const std::uint64_t head = emitted(host);
  return head > capacity_ ? head - capacity_ : 0;
}

// ---------------------------------------------------------------------------
// Black-box dumps.

std::int64_t pack_blackbox_arg(const FlightRecord& r) {
  const std::uint64_t us = std::min<std::uint64_t>(r.arg_us, 0xFFFFFF);
  const std::uint64_t packed =
      us | (static_cast<std::uint64_t>(r.revolution) << 24) |
      (static_cast<std::uint64_t>(r.origin) << 32) |
      (static_cast<std::uint64_t>(r.query) << 48);
  return static_cast<std::int64_t>(packed);
}

void unpack_blackbox_arg(std::int64_t arg, FlightRecord* r) {
  const auto packed = static_cast<std::uint64_t>(arg);
  r->arg_us = static_cast<std::uint32_t>(packed & 0xFFFFFF);
  r->revolution = static_cast<std::uint8_t>(packed >> 24);
  r->origin = static_cast<std::uint16_t>(packed >> 32);
  r->query = static_cast<std::uint16_t>(packed >> 48);
}

std::vector<std::uint8_t> blackbox_dump(const std::vector<FlightRecord>& window,
                                        std::string_view reason) {
  Tracer tracer;
  tracer.instant(0, kGlobalHost, "flight",
                 std::string("blackbox.") + std::string(reason),
                 static_cast<std::int64_t>(window.size()));
  for (const FlightRecord& r : window) {
    tracer.instant(r.ts, r.host, std::to_string(r.seq),
                   std::string("flight.") + std::string(hop_kind_name(r.kind)),
                   pack_blackbox_arg(r));
  }
  return tracer.binary();
}

std::vector<std::uint8_t> blackbox_dump(const FlightRecorder& recorder,
                                        std::string_view reason) {
  return blackbox_dump(recorder.snapshot_all(), reason);
}

bool write_blackbox(const FlightRecorder& recorder, const std::string& path,
                    std::string_view reason) {
  const std::vector<std::uint8_t> bytes = blackbox_dump(recorder, reason);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

bool parse_blackbox(const std::vector<std::uint8_t>& bytes,
                    std::vector<FlightRecord>* out, std::string* reason) {
  Tracer tracer;
  if (!Tracer::parse_binary(bytes, tracer)) return false;
  if (reason != nullptr) reason->clear();
  // Map interned names back to hop kinds once.
  std::vector<int> kind_of(tracer.num_names(), -1);
  for (std::uint32_t id = 0; id < tracer.num_names(); ++id) {
    const std::string_view name = tracer.name(id);
    if (name.substr(0, 7) == "flight.") {
      for (int k = 0; k < kNumHopKinds; ++k) {
        if (name.substr(7) == kHopNames[k]) {
          kind_of[id] = k;
          break;
        }
      }
    } else if (reason != nullptr && name.substr(0, 9) == "blackbox.") {
      *reason = std::string(name.substr(9));
    }
  }
  for (const TraceEvent& ev : tracer.events()) {
    if (ev.kind != EventKind::kInstant) continue;
    if (ev.name >= kind_of.size() || kind_of[ev.name] < 0) continue;
    FlightRecord r;
    r.ts = ev.ts;
    r.host = static_cast<std::int16_t>(ev.host);
    const std::string_view ent = tracer.name(ev.entity);
    std::uint64_t seq = 0;
    for (char c : ent) {
      if (c < '0' || c > '9') break;
      seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
    }
    r.seq = static_cast<std::uint32_t>(seq);
    r.kind = static_cast<HopKind>(kind_of[ev.name]);
    unpack_blackbox_arg(ev.arg, &r);
    out->push_back(r);
  }
  return true;
}

}  // namespace cj::obs
