// Live telemetry for the wall-clock backend, plus the straggler detector
// shared with post-run (sim) analysis.
//
// StragglerDetector is pure logic: feed it per-host chunk residencies
// (time between recv and forward/retire, the signal that isolates a slow
// host — revolution times don't, because every chunk passes through the
// straggler and inflates every origin's RTT equally) and it flags hosts
// whose rolling window sits z_threshold sigmas above the others.
//
// LiveSampler runs it live on --backend=rt: a background thread snapshots
// the MetricsRegistry on an interval into a bounded in-memory time-series,
// incrementally scans the flight recorder's lanes for fresh residency
// records, and on a flag bumps `obs.straggler_flags` (+ per-host counter)
// and drops a tracer instant. The sim backend gets identical detection by
// replaying the recorder through the same detector after the run
// (replay_stragglers), so `abl_straggler` reports the same columns on both
// backends.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/flight.h"
#include "obs/metrics.h"

namespace cj::obs {

class Tracer;
class LiveSampler;

struct SamplerConfig {
  bool enabled = true;  // rt runner starts a LiveSampler when true
  std::chrono::milliseconds interval{25};
  std::size_t max_points = 4096;  // time-series ring bound
  // Straggler detection.
  int window = 64;          // per-host rolling residency window
  int min_samples = 8;      // per-host observations before judging
  double z_threshold = 3.0; // flag when z > threshold vs the other hosts
  // Invoked after every sample, from the sampler thread (live dashboards:
  // cyclotop renders its screen here). Must be thread-safe; null = none.
  std::function<void(const LiveSampler&)> on_sample;
};

class StragglerDetector {
 public:
  StragglerDetector(int num_hosts, const SamplerConfig& config);

  // Record one residency observation; returns true when this observation
  // flags `host` as a straggler (leave-one-out z-score over per-host
  // rolling means, sigma floored at 10% of the global mean so a perfectly
  // uniform ring can't divide by ~zero).
  bool observe(int host, double residency_us);

  std::uint64_t flags(int host) const;
  std::uint64_t total_flags() const;
  double last_z(int host) const;
  double mean_residency_us(int host) const;
  // Host with the most flags; -1 when nothing has been flagged.
  int hottest() const;
  int num_hosts() const { return static_cast<int>(hosts_.size()); }

 private:
  struct HostWindow {
    std::deque<double> values;
    double sum = 0.0;
    std::uint64_t flags = 0;
    double last_z = 0.0;
  };
  SamplerConfig config_;
  std::vector<HostWindow> hosts_;
  std::uint64_t total_flags_ = 0;
};

// Replay a finished run's recorder through a detector (sim backend: same
// code path as live detection, applied post-run). Feeds kForward/kRetire
// residencies in timestamp order; bumps `obs.straggler_flags` counters on
// `metrics` and emits `straggler` instants on `tracer` when non-null.
// Returns the number of flags raised.
std::uint64_t replay_stragglers(const FlightRecorder& recorder,
                                StragglerDetector& detector,
                                MetricsRegistry* metrics, Tracer* tracer);

class LiveSampler {
 public:
  struct Point {
    std::int64_t ts_ns = 0;  // engine time of the sample
    MetricsSnapshot metrics;
  };

  // All pointers outlive the sampler; `now_ns` supplies engine time (rt
  // engines share a wall epoch, so any host's now() works). `recorder`
  // and `tracer` may be null (metrics-only sampling).
  LiveSampler(const SamplerConfig& config, MetricsRegistry* metrics,
              const FlightRecorder* recorder, Tracer* tracer, int num_hosts,
              std::function<std::int64_t()> now_ns);
  ~LiveSampler();

  LiveSampler(const LiveSampler&) = delete;
  LiveSampler& operator=(const LiveSampler&) = delete;

  void start();
  void stop();  // joins the thread; final sample + scan included

  // Safe after stop(), or concurrently (locked copies).
  std::vector<Point> series() const;
  Point latest() const;  // default-constructed when no sample yet
  std::uint64_t samples_taken() const;
  const StragglerDetector& detector() const { return detector_; }

 private:
  void run();
  void sample_once();

  SamplerConfig config_;
  MetricsRegistry* metrics_;
  const FlightRecorder* recorder_;
  Tracer* tracer_;
  std::function<std::int64_t()> now_ns_;
  StragglerDetector detector_;
  std::vector<std::uint64_t> cursors_;
  std::vector<FlightRecord> scratch_;

  mutable std::mutex mu_;  // guards series_ + detector_ against readers
  std::deque<Point> series_;
  std::uint64_t samples_ = 0;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;
};

}  // namespace cj::obs
