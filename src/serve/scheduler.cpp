#include "serve/scheduler.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/assert.h"

namespace cj::serve {

namespace {

/// Stride-scheduling scale: a tenant's pass advances by kStrideScale /
/// weight per wave slot it wins, so slot counts converge to the weight
/// ratio while every tenant is backlogged.
constexpr std::uint64_t kStrideScale = 1ULL << 20;

std::uint64_t stride_for(double weight) {
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(kStrideScale) / weight));
}

}  // namespace

QueryScheduler::QueryScheduler(ServeConfig config) : config_(std::move(config)) {
  CJ_CHECK_MSG(config_.max_inflight > 0, "max_inflight must be positive");
  CJ_CHECK_MSG(config_.max_queue_depth > 0, "max_queue_depth must be positive");
}

QueryId QueryScheduler::submit(QuerySpec spec, SimTime arrival) {
  CJ_CHECK_MSG(spec.stationary != nullptr, "a query needs a stationary side");
  CJ_CHECK_MSG(spec.weight > 0.0, "query weight must be positive");
  CJ_CHECK_MSG(arrival >= 0, "arrival time must be non-negative");
  CJ_CHECK_MSG(arrival >= last_arrival_,
               "submissions must arrive in non-decreasing time order");
  last_arrival_ = arrival;

  const QueryId id = records_.size();
  QueryRecord record;
  record.id = id;
  record.tenant = spec.tenant;
  record.weight = spec.weight;
  record.arrival = arrival;
  metrics_.add_counter("serve.submitted", 1);

  if (queued_ >= static_cast<std::size_t>(config_.max_queue_depth)) {
    record.phase = QueryPhase::kRejected;
    metrics_.add_counter("serve.rejected", 1);
    records_.push_back(std::move(record));
    specs_.push_back(std::move(spec));
    return id;
  }

  record.phase = QueryPhase::kQueued;
  auto [it, inserted] = tenants_.try_emplace(spec.tenant);
  if (inserted) it->second.pass = pass_floor_;
  it->second.fifo.push_back(id);
  ++queued_;
  records_.push_back(std::move(record));
  specs_.push_back(std::move(spec));
  return id;
}

bool QueryScheduler::cancel(QueryId id) {
  CJ_CHECK_MSG(id < records_.size(), "unknown query id");
  QueryRecord& record = records_[id];
  if (record.phase != QueryPhase::kQueued) return false;
  record.phase = QueryPhase::kCancelled;
  --queued_;  // fifo entry is skipped lazily at the next wave formation
  metrics_.add_counter("serve.cancelled", 1);
  return true;
}

QueryPhase QueryScheduler::phase(QueryId id) const {
  CJ_CHECK_MSG(id < records_.size(), "unknown query id");
  return records_[id].phase;
}

void QueryScheduler::expire_deadlines(SimTime now) {
  for (QueryRecord& record : records_) {
    if (record.phase != QueryPhase::kQueued) continue;
    const SimTime deadline = specs_[record.id].cancel_at;
    if (deadline >= 0 && deadline <= now) {
      record.phase = QueryPhase::kCancelled;
      --queued_;
      metrics_.add_counter("serve.cancelled", 1);
    }
  }
}

std::vector<QueryId> QueryScheduler::form_wave(SimTime now) {
  std::vector<QueryId> wave;
  while (wave.size() < static_cast<std::size_t>(config_.max_inflight)) {
    Tenant* best = nullptr;
    QueryId best_id = 0;
    for (auto& [name, tenant] : tenants_) {
      // Drop cancelled heads; the head is the tenant's earliest arrival
      // (submissions are time-ordered), so an un-arrived head means the
      // whole tenant waits.
      while (!tenant.fifo.empty() &&
             records_[tenant.fifo.front()].phase != QueryPhase::kQueued) {
        tenant.fifo.pop_front();
      }
      if (tenant.fifo.empty()) continue;
      const QueryId head = tenant.fifo.front();
      if (records_[head].arrival > now) continue;
      // Min pass wins; ties resolve by tenant-name map order, keeping
      // wave composition deterministic.
      if (best == nullptr || tenant.pass < best->pass) {
        best = &tenant;
        best_id = head;
      }
    }
    if (best == nullptr) break;
    pass_floor_ = best->pass;
    best->pass += stride_for(records_[best_id].weight);
    best->fifo.pop_front();
    --queued_;
    wave.push_back(best_id);
  }
  return wave;
}

ServeReport QueryScheduler::drain(const rel::Relation& rotating) {
  while (queued_ > 0) {
    // Advance the serve clock to the first queued arrival (an idle server
    // waits for work), then sweep deadlines at the wave-formation instant.
    SimTime earliest = std::numeric_limits<SimTime>::max();
    for (const QueryRecord& record : records_) {
      if (record.phase == QueryPhase::kQueued) {
        earliest = std::min(earliest, record.arrival);
      }
    }
    clock_ = std::max(clock_, earliest);
    expire_deadlines(clock_);
    if (queued_ == 0) break;

    std::vector<QueryId> wave_ids = form_wave(clock_);
    if (wave_ids.empty()) continue;  // survivors arrive later; re-advance

    // One wave = one shared rotation, stamped with its own wire query
    // group so chunks can never leak across waves.
    cyclo::ClusterConfig cluster = config_.cluster;
    cluster.node.resilience.query_group =
        static_cast<std::uint16_t>((waves_ % 0xFFFF) + 1);
    std::vector<cyclo::SharedQuery> shared;
    shared.reserve(wave_ids.size());
    for (const QueryId id : wave_ids) {
      const QuerySpec& spec = specs_[id];
      shared.push_back(cyclo::SharedQuery{
          .stationary = spec.stationary,
          .band = spec.band,
          .predicate = spec.predicate,
          .tag = "q" + std::to_string(id),
      });
      QueryRecord& record = records_[id];
      record.phase = QueryPhase::kJoining;
      record.admitted_at = clock_;
      record.started_at = clock_;
      record.wave = waves_;
      metrics_.add_counter("serve.admitted", 1);
    }

    cyclo::CycloJoin join(cluster, config_.spec);
    const cyclo::SharedRunReport report = join.run_shared(rotating, shared);
    const SimTime wave_end = clock_ + report.total_wall;
    bytes_on_wire_ += report.bytes_on_wire;
    metrics_.add_counter("serve.waves", 1);

    bool wave_breached = false;
    for (std::size_t q = 0; q < wave_ids.size(); ++q) {
      QueryRecord& record = records_[wave_ids[q]];
      record.phase = QueryPhase::kRetired;
      record.finished_at = wave_end;
      record.result = report.queries[q];
      const auto busy =
          report.metrics.counters.find("busy.q" + std::to_string(record.id));
      record.busy = busy != report.metrics.counters.end() ? busy->second : 0;
      metrics_.add_counter("busy.q" + std::to_string(record.id), record.busy);
      metrics_.record("serve.latency_ns", record.latency());
      metrics_.record("serve.queue_wait_ns", record.queue_wait());
      metrics_.record("serve.service_ns", report.total_wall);
      metrics_.add_counter("serve.retired", 1);
      if (config_.slo_target > 0 && record.latency() > config_.slo_target) {
        record.slo_violated = true;
        wave_breached = true;
        metrics_.add_counter("serve.slo_violations", 1);
      }
    }
    // Black box: on the first SLO breach, persist the breaching wave's
    // flight-recorder window (per-chunk hop records) for post-mortems.
    if (wave_breached && !blackbox_written_ && !config_.blackbox_path.empty() &&
        report.flight != nullptr) {
      blackbox_written_ = obs::write_blackbox(
          *report.flight, config_.blackbox_path, "slo-breach");
    }
    clock_ = wave_end;
    ++waves_;
  }

  ServeReport report;
  report.queries = records_;
  report.waves = waves_;
  report.bytes_on_wire = bytes_on_wire_;
  report.end_time = clock_;
  SimDuration total_busy = 0;
  for (const QueryRecord& record : records_) {
    if (record.phase != QueryPhase::kRetired) continue;
    report.busy_by_tenant[record.tenant] += record.busy;
    total_busy += record.busy;
  }
  for (const auto& [tenant, busy] : report.busy_by_tenant) {
    const double share =
        total_busy > 0 ? static_cast<double>(busy) / static_cast<double>(total_busy)
                       : 0.0;
    report.share_by_tenant[tenant] = share;
    metrics_.set_gauge("serve.share." + tenant, share);
  }
  report.metrics = metrics_.snapshot();
  return report;
}

}  // namespace cj::serve
