// Per-query serving types: what a client submits to the QueryScheduler and
// what it gets back. A query is one stationary-side join hooked into the
// spinning rotating relation (the paper's Sec. VII vision of many analysts
// sharing one hot ring); the scheduler batches admitted queries into waves
// that each ride a single shared rotation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/units.h"
#include "cyclo/cyclo_join.h"
#include "rel/relation.h"

namespace cj::serve {

/// Dense query handle: the scheduler assigns ids in submission order.
using QueryId = std::uint64_t;

/// Lifecycle: submitted → admitted → joining → retired, with the off-ramps
/// kRejected (admission control bounced it) and kCancelled (client cancel
/// or deadline expiry while still queued).
enum class QueryPhase {
  kQueued,     ///< submitted, waiting for a wave slot
  kAdmitted,   ///< picked for the next wave, not yet joining
  kJoining,    ///< its wave's rotation is in flight
  kRetired,    ///< result complete
  kCancelled,  ///< cancelled (or deadline-expired) while queued
  kRejected,   ///< bounced at submit: queue depth limit reached
};

inline const char* phase_name(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kQueued: return "queued";
    case QueryPhase::kAdmitted: return "admitted";
    case QueryPhase::kJoining: return "joining";
    case QueryPhase::kRetired: return "retired";
    case QueryPhase::kCancelled: return "cancelled";
    case QueryPhase::kRejected: return "rejected";
  }
  return "?";
}

/// One join submitted to the serving layer. The stationary relation must
/// outlive the drain that retires the query.
struct QuerySpec {
  const rel::Relation* stationary = nullptr;
  /// Band half-width (sort-merge algorithm only; 0 = equi).
  std::uint32_t band = 0;
  /// Predicate (nested-loops algorithm only).
  std::function<bool(const rel::Tuple&, const rel::Tuple&)> predicate;
  /// Fair-share tenant this query bills to. Queries of one tenant are
  /// served FIFO; across tenants the scheduler stride-schedules wave slots
  /// proportionally to weight.
  std::string tenant = "default";
  /// Fair-share weight (> 0): a tenant submitting weight-3 queries gets
  /// three wave slots for every slot of a weight-1 tenant while both are
  /// backlogged.
  double weight = 1.0;
  /// Auto-cancel if the query is still queued when a wave forms at or
  /// after this serve-clock time (-1 = never). Queries already dispatched
  /// always run to completion.
  SimTime cancel_at = -1;
};

/// Everything the scheduler knows about one query after drain().
struct QueryRecord {
  QueryId id = 0;
  std::string tenant;
  double weight = 1.0;
  QueryPhase phase = QueryPhase::kQueued;
  SimTime arrival = 0;
  SimTime admitted_at = -1;  ///< wave formation time (-1: never admitted)
  SimTime started_at = -1;   ///< wave rotation start (== admitted_at)
  SimTime finished_at = -1;  ///< wave rotation end
  int wave = -1;             ///< wave index the query rode (-1: none)
  cyclo::QueryResult result;
  /// Core-busy time attributed to this query's join work, summed over all
  /// hosts (from the wave report's busy.q<id> counter).
  SimDuration busy = 0;
  /// Latency exceeded ServeConfig::slo_target (only when a target is set).
  bool slo_violated = false;

  /// Submit-to-result latency (-1 until retired).
  SimDuration latency() const {
    return finished_at >= 0 ? finished_at - arrival : -1;
  }
  /// Time spent queued before the wave departed (-1 until dispatched).
  SimDuration queue_wait() const {
    return started_at >= 0 ? started_at - arrival : -1;
  }
};

}  // namespace cj::serve
