// QueryScheduler: admission control + weighted fair-share dispatch of many
// independently arriving joins over one Data Roundabout.
//
// Design (docs/SERVING.md). Queries are submitted open-loop with explicit
// arrival times and queue per tenant. The scheduler serves them in waves:
// each wave admits up to max_inflight queued queries — chosen by stride
// scheduling across tenants, FIFO within a tenant — and runs them as one
// CycloJoin::run_shared rotation, so an N-query wave pays the rotating
// relation's network cost once instead of N times (the Data Cyclotron
// sharing argument, paper Sec. VII). Each wave stamps a distinct query
// group on its wire frames (ring::ResilienceConfig::query_group): a node
// that somehow receives a chunk from another wave discards it as stale
// instead of joining, acking or forwarding it.
//
// Time. The serve clock is virtual on both backends: it advances to the
// earliest queued arrival, then by each wave's measured service time
// (RunReport::total_wall — virtual seconds on the sim backend, wall
// seconds on rt). Per-query latency = wave end − arrival; queue wait =
// wave start − arrival. Both land in serve.* histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "cyclo/config.h"
#include "cyclo/cyclo_join.h"
#include "obs/metrics.h"
#include "serve/query.h"

namespace cj::serve {

struct ServeConfig {
  cyclo::ClusterConfig cluster;
  cyclo::JoinSpec spec;
  /// Wave width: max queries multiplexed onto one shared rotation.
  int max_inflight = 4;
  /// Admission control: submit() rejects once this many queries queue.
  int max_queue_depth = 64;
  /// Latency SLO (0 = no SLO accounting): retired queries whose latency
  /// exceeds it are flagged and counted in serve.slo_violations.
  SimDuration slo_target = 0;
  /// When non-empty, the first wave containing an SLO violation writes a
  /// CJT1 black-box dump of that wave's flight-recorder window here
  /// (reason "slo-breach"); later breaches do not overwrite it.
  std::string blackbox_path;
};

/// What drain() returns: every query's record plus run-level accounting.
struct ServeReport {
  /// Indexed by QueryId (submission order).
  std::vector<QueryRecord> queries;
  int waves = 0;
  std::uint64_t bytes_on_wire = 0;
  /// Serve-clock time the last wave finished.
  SimTime end_time = 0;
  /// serve.* counters/gauges/histograms plus per-query busy.q<id> counters.
  obs::MetricsSnapshot metrics;
  /// Join core-busy time summed per tenant, and each tenant's fraction.
  std::map<std::string, SimDuration> busy_by_tenant;
  std::map<std::string, double> share_by_tenant;

  const QueryRecord& query(QueryId id) const { return queries.at(id); }
};

class QueryScheduler {
 public:
  explicit QueryScheduler(ServeConfig config);

  /// Registers a query arriving at `arrival` (serve-clock ns; must be
  /// non-decreasing across calls — open-loop submission order). Applies
  /// admission control: returns the query's id either way, with phase
  /// kRejected when the queue is full.
  QueryId submit(QuerySpec spec, SimTime arrival);

  /// Cancels a still-queued query. Returns false when the query already
  /// dispatched, finished, or was rejected.
  bool cancel(QueryId id);

  QueryPhase phase(QueryId id) const;
  std::size_t queue_depth() const { return queued_; }

  /// Serves every queued query to completion against `rotating` and
  /// returns the full accounting. Callable repeatedly: the serve clock
  /// carries over, so a later submit()+drain() cycle continues the
  /// timeline.
  ServeReport drain(const rel::Relation& rotating);

 private:
  struct Tenant {
    /// Stride-scheduling pass value: the tenant with the smallest pass
    /// owns the next wave slot; picking adds kStrideScale / weight.
    std::uint64_t pass = 0;
    std::deque<QueryId> fifo;
  };

  /// Picks up to max_inflight eligible queries for the wave forming at
  /// `now` (stride across tenants, FIFO within).
  std::vector<QueryId> form_wave(SimTime now);
  void expire_deadlines(SimTime now);

  ServeConfig config_;
  std::vector<QuerySpec> specs_;
  std::vector<QueryRecord> records_;
  std::map<std::string, Tenant> tenants_;
  /// Pass value of the most recently picked tenant (pre-increment): new
  /// tenants start here so a latecomer neither monopolizes nor starves.
  std::uint64_t pass_floor_ = 0;
  std::size_t queued_ = 0;
  SimTime clock_ = 0;
  SimTime last_arrival_ = 0;
  int waves_ = 0;
  std::uint64_t bytes_on_wire_ = 0;
  bool blackbox_written_ = false;
  obs::MetricsRegistry metrics_;
};

}  // namespace cj::serve
